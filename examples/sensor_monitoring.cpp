// Lossy archival of an IoT sensor feed with NeaTS-L.
//
// An edge device buffers noisy temperature readings; before shipping them to
// cold storage it keeps only an error-bounded functional sketch (NeaTS-L).
// The example sweeps the error bound and reports the space/accuracy
// trade-off, demonstrating the maximum-error guarantee of Definition 2.
//
//   $ ./build/examples/sensor_monitoring

#include <cmath>
#include <cstdio>
#include <vector>

#include "datasets/generators.hpp"
#include "neats/neats.hpp"

int main() {
  // A day of 1 Hz "IR biological temperature" readings (2 decimal digits).
  neats::Dataset ds = neats::MakeDataset("IT", 86400);
  std::printf("sensor feed: %zu readings, 2 fixed decimals "
              "(stored as value*100)\n\n",
              ds.values.size());

  std::printf("%10s %12s %12s %14s %12s\n", "eps", "fragments", "ratio(%)",
              "max|err|", "MAPE(%)");
  for (int64_t eps : {5, 25, 100, 400, 1600}) {
    neats::NeatsLossy sketch = neats::NeatsLossy::Compress(ds.values, eps);
    std::vector<int64_t> approx;
    sketch.Decompress(&approx);

    int64_t max_err = 0;
    double mape = 0;
    size_t counted = 0;
    for (size_t i = 0; i < ds.values.size(); ++i) {
      max_err = std::max(max_err, std::abs(approx[i] - ds.values[i]));
      if (ds.values[i] != 0) {
        mape += std::abs(static_cast<double>(approx[i] - ds.values[i])) /
                std::abs(static_cast<double>(ds.values[i]));
        ++counted;
      }
    }
    double ratio = 100.0 * static_cast<double>(sketch.SizeInBits()) /
                   (64.0 * static_cast<double>(ds.values.size()));
    std::printf("%10lld %12zu %12.3f %14lld %12.3f\n",
                static_cast<long long>(eps), sketch.num_fragments(), ratio,
                static_cast<long long>(max_err),
                100.0 * mape / static_cast<double>(counted));
    if (max_err > eps + 1) {
      std::printf("ERROR: eps guarantee violated!\n");
      return 1;
    }
  }

  std::printf("\nevery sketch respects |approx - value| <= eps (+1 for the "
              "floor) — Definition 2's guarantee\n");

  // Point queries on the sketch (e.g. "what was the reading at 18:30?").
  neats::NeatsLossy sketch = neats::NeatsLossy::Compress(ds.values, 100);
  size_t at = 18 * 3600 + 30 * 60;
  std::printf("reading at 18:30 ~ %.2f degC (true %.2f, eps 1.00)\n",
              static_cast<double>(sketch.Access(at)) / 100.0,
              static_cast<double>(ds.values[at]) / 100.0);
  return 0;
}
