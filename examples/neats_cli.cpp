// neats_cli — command-line front end for the NeaTS compressor.
//
//   neats_cli compress   <input.txt> <output.neats>   one decimal per line
//   neats_cli decompress <input.neats> <output.txt>
//   neats_cli access     <input.neats> <index> [count]
//   neats_cli info       <input.neats>
//   neats_cli stats      <store-dir> [probes] [--json]
//
// The text format is one decimal value per line; values are scaled to
// integers by the detected fractional precision (stored in the container).
// Flat-format (v2/v3) files are opened zero-copy: the file is mmap'd and queries run
// straight against the mapping. Legacy v1 files fall back to Deserialize.
//
// Built on the public facade (neats/neats.hpp): every open/load path is
// Status-returning, so a bad path or corrupt blob prints a diagnostic and
// exits 1 instead of crashing.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "neats/neats.hpp"
#include "obs/stats_json.hpp"

namespace {

using neats::Neats;

// Container: 8-byte digit count + the Neats blob (keeps 8-byte alignment).
std::vector<uint8_t> Pack(const Neats& compressed, int digits) {
  std::vector<uint8_t> blob;
  compressed.Serialize(&blob);
  std::vector<uint8_t> out;
  out.reserve(blob.size() + 8);
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<uint8_t>(static_cast<uint64_t>(digits) >> (8 * b)));
  }
  out.insert(out.end(), blob.begin(), blob.end());
  return out;
}

// An opened container file. When the blob is flat format v2/v3 the Neats object
// borrows the mapping (`map` must stay alive); v1 blobs are deserialized
// into owned storage.
struct OpenedBlob {
  neats::MmapFile map;
  Neats neats;
  int digits = 0;
  bool zero_copy = false;
};

/// Status-returning open (neats::Checked turns any loader rejection into a
/// failed Result instead of a crash).
neats::Result<OpenedBlob> OpenBlob(const char* path) {
  return neats::Checked([&] {
    OpenedBlob b;
    b.map = neats::MmapFile::Open(path);
    std::span<const uint8_t> bytes = b.map.bytes();
    NEATS_REQUIRE(bytes.size() >= 16, "not a NeaTS container file");
    uint64_t d = 0;
    std::memcpy(&d, bytes.data(), 8);
    b.digits = static_cast<int>(d);
    std::span<const uint8_t> blob = bytes.subspan(8);
    if (Neats::IsZeroCopyOpenable(blob)) {
      b.neats = Neats::View(blob);
      b.zero_copy = true;
    } else {
      b.neats = Neats::Deserialize(blob);
    }
    return b;
  });
}

/// Unwraps a facade Result or exits with the failure message.
template <typename T>
T MustOpen(neats::Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().message().c_str());
    std::exit(1);
  }
  return std::move(result.value());
}

void PrintValue(int64_t scaled, int digits) {
  if (digits == 0) {
    std::printf("%" PRId64 "\n", scaled);
    return;
  }
  int64_t scale = 1;
  for (int i = 0; i < digits; ++i) scale *= 10;
  int64_t whole = scaled / scale;
  int64_t frac = scaled % scale;
  if (scaled < 0 && whole == 0) {
    std::printf("-%" PRId64 ".%0*" PRId64 "\n", whole, digits, -frac);
  } else {
    if (frac < 0) frac = -frac;
    std::printf("%" PRId64 ".%0*" PRId64 "\n", whole, digits, frac);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: neats_cli compress   <input.txt> <output.neats>\n"
               "       neats_cli decompress <input.neats> <output.txt>\n"
               "       neats_cli access     <input.neats> <index> [count]\n"
               "       neats_cli info       <input.neats>\n"
               "       neats_cli stats      <store-dir> [probes] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string cmd = argv[1];

  if (cmd == "compress" && argc == 4) {
    neats::ParsedSeries series = MustOpen(neats::LoadDecimalSeries(argv[2]));
    neats::Timer timer;
    Neats compressed = Neats::Compress(series.values);
    double secs = timer.ElapsedSeconds();
    std::vector<uint8_t> packed = Pack(compressed, series.digits);
    neats::WriteFile(argv[3], packed);
    std::printf("%zu values -> %zu bytes (%.2f%% of raw, %zu fragments) "
                "in %.2f s\n",
                series.values.size(), packed.size(),
                100.0 * static_cast<double>(packed.size()) /
                    (8.0 * static_cast<double>(series.values.size())),
                compressed.num_fragments(), secs);
    return 0;
  }

  if (cmd == "decompress" && argc == 4) {
    OpenedBlob blob = MustOpen(OpenBlob(argv[2]));
    int digits = blob.digits;
    std::vector<int64_t> values;
    blob.neats.Decompress(&values);
    std::FILE* out = std::fopen(argv[3], "w");
    if (out == nullptr) return Usage();
    int64_t scale = 1;
    for (int i = 0; i < digits; ++i) scale *= 10;
    for (int64_t v : values) {
      if (digits == 0) {
        std::fprintf(out, "%" PRId64 "\n", v);
      } else {
        int64_t frac = v % scale;
        std::fprintf(out, "%s%" PRId64 ".%0*" PRId64 "\n",
                     (v < 0 && v / scale == 0) ? "-" : "", v / scale, digits,
                     frac < 0 ? -frac : frac);
      }
    }
    std::fclose(out);
    std::printf("wrote %zu values\n", values.size());
    return 0;
  }

  if (cmd == "access" && (argc == 4 || argc == 5)) {
    OpenedBlob blob = MustOpen(OpenBlob(argv[2]));
    const Neats& compressed = blob.neats;
    uint64_t index = std::strtoull(argv[3], nullptr, 10);
    uint64_t count = argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 1;
    // Overflow-safe bounds check: index + count must not wrap.
    if (index > compressed.size() || count > compressed.size() - index) {
      std::fprintf(stderr, "index out of range (n=%" PRIu64 ")\n",
                   compressed.size());
      return 1;
    }
    std::vector<int64_t> values(count);
    compressed.DecompressRange(index, count, values.data());
    for (int64_t v : values) PrintValue(v, blob.digits);
    return 0;
  }

  if (cmd == "info" && argc == 3) {
    OpenedBlob blob = MustOpen(OpenBlob(argv[2]));
    const Neats& compressed = blob.neats;
    std::printf("values:      %" PRIu64 "\n", compressed.size());
    std::printf("fragments:   %zu\n", compressed.num_fragments());
    std::printf("digits:      %d\n", blob.digits);
    std::printf("open mode:   %s\n",
                blob.zero_copy ? "zero-copy (mmap, format v2/v3)"
                               : "deserialized (legacy v1)");
    std::printf("size:        %zu bits (%.2f%% of raw)\n",
                compressed.SizeInBits(),
                100.0 * static_cast<double>(compressed.SizeInBits()) /
                    (64.0 * static_cast<double>(compressed.size())));
    std::printf("kind histogram:\n");
    size_t counts[neats::kNumFunctionKinds] = {};
    for (size_t i = 0; i < compressed.num_fragments(); ++i) {
      ++counts[static_cast<int>(compressed.GetFragment(i).kind)];
    }
    for (int k = 0; k < neats::kNumFunctionKinds; ++k) {
      if (counts[k] > 0) {
        std::printf("  %-14s %zu\n",
                    std::string(
                        neats::KindName(static_cast<neats::FunctionKind>(k)))
                        .c_str(),
                    counts[k]);
      }
    }
    return 0;
  }

  if (cmd == "stats" && (argc == 3 || argc == 4 || argc == 5)) {
    // Opens a store directory and prints its StatsSnapshot(). The optional
    // probe count runs seeded point lookups first, so a cold store shows
    // live access counters and latency percentiles, not a page of zeros.
    uint64_t probes = 0;
    bool json = false;
    for (int a = 3; a < argc; ++a) {
      if (std::strcmp(argv[a], "--json") == 0) {
        json = true;
      } else {
        probes = std::strtoull(argv[a], nullptr, 10);
      }
    }
    neats::NeatsStoreOptions options;
    options.latency_sample_every = 1;  // a CLI probe run wants every sample
    neats::NeatsStore store = MustOpen(neats::OpenStoreDir(argv[2], options));
    if (store.size() > 0 && probes > 0) {
      uint64_t state = 0x9e3779b97f4a7c15ull;
      for (uint64_t p = 0; p < probes; ++p) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        (void)store.Access((state >> 11) % store.size());
      }
    }
    const neats::obs::MetricsSnapshot snap = store.StatsSnapshot();
    if (json) {
      std::printf("%s\n", neats::obs::MetricsJson(snap).c_str());
    } else {
      std::printf("%s", neats::obs::MetricsText(snap).c_str());
      if (store.degraded()) {
        std::printf("recent trace events:\n%s",
                    neats::obs::TraceText(store.TraceDump()).c_str());
      }
    }
    return 0;
  }
  return Usage();
}
