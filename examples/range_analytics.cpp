// Real-time analytics over compressed stock data: moving averages, min/max
// breakouts, and point lookups executed directly on the NeaTS representation
// via range queries (random access + scan), without ever materialising the
// full series — the query pattern of Sec. IV-C4.
//
//   $ ./build/examples/range_analytics

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "datasets/generators.hpp"
#include "neats/neats.hpp"

namespace {

struct WindowStats {
  double mean;
  int64_t low, high;
};

WindowStats Analyze(const neats::Neats& compressed, size_t from, size_t len,
                    std::vector<int64_t>* scratch) {
  scratch->resize(len);
  compressed.DecompressRange(from, len, scratch->data());
  WindowStats stats{0, (*scratch)[0], (*scratch)[0]};
  double sum = 0;
  for (int64_t v : *scratch) {
    sum += static_cast<double>(v);
    stats.low = std::min(stats.low, v);
    stats.high = std::max(stats.high, v);
  }
  stats.mean = sum / static_cast<double>(len);
  return stats;
}

}  // namespace

int main() {
  // A year of minute-level US stock prices (2 fixed decimals).
  neats::Dataset ds = neats::MakeDataset("US", 250 * 390);
  neats::Neats compressed = neats::Neats::Compress(ds.values);
  std::printf(
      "ticks: %zu   compressed to %.2f%% of raw   (%zu fragments)\n\n",
      ds.values.size(),
      100.0 * static_cast<double>(compressed.SizeInBits()) /
          (64.0 * static_cast<double>(ds.values.size())),
      compressed.num_fragments());

  // Daily OHLC-style summaries for a week, straight off the compressed data.
  std::vector<int64_t> scratch;
  std::printf("%6s %12s %12s %12s\n", "day", "mean", "low", "high");
  for (size_t day = 100; day < 107; ++day) {
    WindowStats stats = Analyze(compressed, day * 390, 390, &scratch);
    std::printf("%6zu %12.2f %12.2f %12.2f\n", day, stats.mean / 100.0,
                static_cast<double>(stats.low) / 100.0,
                static_cast<double>(stats.high) / 100.0);
  }

  // Moving average stream over a trading month.
  std::printf("\n20-day moving average (day 120..130):\n  ");
  for (size_t day = 120; day < 131; ++day) {
    double sum = 0;
    for (size_t d = day - 20; d < day; ++d) {
      sum += Analyze(compressed, d * 390, 390, &scratch).mean;
    }
    std::printf("%.2f ", sum / 20.0 / 100.0);
  }
  std::printf("\n");

  // Throughput comparison: ranged queries on compressed data vs full
  // decompression per query.
  const size_t kQueries = 2000, kRange = 390;
  neats::Timer timer;
  double sink = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    sink += Analyze(compressed, (q * 7919) % (ds.values.size() - kRange),
                    kRange, &scratch).mean;
  }
  double ranged = timer.ElapsedSeconds();

  timer.Reset();
  std::vector<int64_t> all;
  for (size_t q = 0; q < 20; ++q) {  // 20 full decompressions for scale
    compressed.Decompress(&all);
    sink += static_cast<double>(all[q]);
  }
  double full = timer.ElapsedSeconds() / 20.0 * static_cast<double>(kQueries);

  std::printf("\n%zu window queries: %.3f s via range queries vs ~%.1f s via "
              "decompress-everything (%.0fx)\n",
              kQueries, ranged, full, full / ranged);
  return sink == 0.123 ? 1 : 0;
}
