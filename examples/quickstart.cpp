// Quickstart: compress a time series losslessly with NeaTS, inspect the
// learned fragments (the picture of Figure 1), query single values and
// ranges, and verify the round trip.
//
//   $ ./build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "neats/neats.hpp"

int main() {
  // A little synthetic series: exponential growth, then a linear ramp,
  // then a noisy plateau — the kind of mixed trends NeaTS is built for.
  std::vector<int64_t> values;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 400; ++i) {
    values.push_back(static_cast<int64_t>(100.0 * std::exp(0.012 * i)));
  }
  for (int i = 0; i < 400; ++i) {
    values.push_back(values.back() + 9);
  }
  for (int i = 0; i < 400; ++i) {
    values.push_back(12000 + static_cast<int64_t>(rng() % 32));
  }

  // --- Compress. ---
  neats::Neats compressed = neats::Neats::Compress(values);

  double ratio = 100.0 * static_cast<double>(compressed.SizeInBits()) /
                 (64.0 * static_cast<double>(values.size()));
  std::printf("compressed %zu values: %zu fragments, %.2f%% of raw size\n\n",
              values.size(), compressed.num_fragments(), ratio);

  // --- Inspect the learned fragments (compare with the paper's Figure 1). ---
  std::printf("%-8s %-8s %-14s %-10s %s\n", "start", "end", "kind",
              "corr.bits", "parameters");
  for (size_t i = 0; i < compressed.num_fragments() && i < 12; ++i) {
    auto frag = compressed.GetFragment(i);
    std::printf("%-8llu %-8llu %-14s %-10d [%.4g, %.4g, %.4g]\n",
                static_cast<unsigned long long>(frag.start),
                static_cast<unsigned long long>(frag.end),
                std::string(neats::KindName(frag.kind)).c_str(),
                frag.correction_bits, frag.params[0], frag.params[1],
                frag.params[2]);
  }

  // --- Random access (Algorithm 3): no block decompression needed. ---
  std::printf("\nrandom access: T[5]=%lld  T[500]=%lld  T[1100]=%lld\n",
              static_cast<long long>(compressed.Access(5)),
              static_cast<long long>(compressed.Access(500)),
              static_cast<long long>(compressed.Access(1100)));

  // --- Range query: one random access plus a scan. ---
  std::vector<int64_t> window(16);
  compressed.DecompressRange(395, window.size(), window.data());
  std::printf("range [395, 411): ");
  for (int64_t v : window) std::printf("%lld ", static_cast<long long>(v));
  std::printf("\n");

  // --- Sequential access: a cursor skips the per-call fragment rank. ---
  // Cursor::Next()/Seek() cache the current fragment and advance in O(1),
  // so scanning (or monotone skipping) is much cheaper than calling
  // Access(k) in a loop. Read() bulk-decodes into a buffer.
  neats::Neats::Cursor cursor(compressed, 390);
  int64_t sum = 0;
  for (int i = 0; i < 20; ++i) sum += cursor.Next();
  std::printf("cursor sum over [390, 410) = %lld\n",
              static_cast<long long>(sum));

  // --- Scaling knobs (NeatsOptions). ---
  // num_threads parallelizes the partitioner's edge rebuilds across the
  // (kind, eps) pairs — output stays bit-identical to a serial run.
  // chunk_size additionally cuts the series into blocks partitioned
  // concurrently: deterministic output, near-linear compression scaling,
  // at a tiny ratio cost (fragments cannot span block boundaries).
  neats::NeatsOptions scaled;
  scaled.num_threads = 4;   // 0 = one thread per hardware core
  scaled.chunk_size = 400;  // 0 = one global partition (best ratio)
  neats::Neats chunked = neats::Neats::Compress(values, scaled);
  double chunked_ratio = 100.0 * static_cast<double>(chunked.SizeInBits()) /
                         (64.0 * static_cast<double>(values.size()));
  std::printf("chunked (4 threads, 400/block): %zu fragments, %.2f%% of raw\n",
              chunked.num_fragments(), chunked_ratio);

  // --- Verify the lossless round trip (both compression modes). ---
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  bool ok = decoded == values;
  chunked.Decompress(&decoded);
  ok = ok && decoded == values;
  std::printf("\nlossless round trip: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
