// A miniature time-series storage engine built on the public facade
// (neats/neats.hpp) and the serving layer underneath it, the deployment
// pattern of Sec. IV-C1 grown into a subsystem: values stream into a
// write-ahead hot tail, full chunks seal into compressed shards in the
// background (thread pool) — under the `auto` seal policy each chunk is
// compressed with every candidate codec and the smallest blob wins, so one
// store mixes codecs per shard — Flush() persists one blob per shard plus a
// manifest (v2, with per-shard codec ids), and OpenStoreDir() serves the
// whole store zero-copy (where the codec supports it) through mmap: point,
// batch, multi-range and (approximate) aggregate queries all route through
// one sharded index, whatever codec holds each shard. The final act is a
// durability drill on the deterministic fault-injection filesystem: a
// power cut mid-flush on a disk whose fsync lies, a degraded reopen that
// quarantines the damaged shard while the rest keep serving, and a
// Scrub() that repairs it from the write-ahead log.
//
//   $ ./build/example_storage_engine

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "datasets/generators.hpp"
#include "io/fault_fs.hpp"
#include "neats/neats.hpp"

namespace {

// The drill's store geometry: small shards, inline seals (so a mid-seal
// crash unwinds on the appending thread), one fixed codec.
neats::NeatsStoreOptions DrillOptions(neats::io::FaultFs* fs) {
  neats::NeatsStoreOptions options;
  options.shard_size = 512;
  options.seal_threads = 1;
  options.codec = neats::CodecId::kGorilla;
  options.fs = fs;
  return options;
}

// Create "drill" on `fs`, append `values` (WAL-acked), and Flush.
void DrillIngest(neats::io::FaultFs& fs, const std::vector<int64_t>& values) {
  neats::NeatsStore store =
      neats::NeatsStore::CreateDir("drill", DrillOptions(&fs));
  store.Append(values);
  store.Flush();
}

}  // namespace

int main() {
  const size_t kShardLen = 50000;
  const size_t kShards = 6;
  neats::Dataset ds = neats::MakeDataset("AP", kShardLen * (kShards - 1));
  // Give the last shard a regime NeaTS is the wrong tool for — short runs
  // of repeated random levels, where an XOR codec pays one bit per repeat —
  // so the auto seal policy below has a real choice to make.
  {
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    std::int64_t level = 0;
    for (size_t i = 0; i < kShardLen; ++i) {
      if (i % 40 == 0) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        level = static_cast<std::int64_t>(state >> 16);
      }
      ds.values.push_back(level);
    }
  }
  const double raw_mb =
      static_cast<double>(ds.values.size()) * 8.0 / (1024.0 * 1024.0);

  // A throwaway store directory (timestamp-suffixed so concurrent runs in
  // the shared temp dir cannot collide); removed before exit.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("neats_store_" +
        std::to_string(static_cast<unsigned long long>(
            std::chrono::steady_clock::now().time_since_epoch().count()))))
          .string();

  bool ok = true;
  {
    // --- Ingestion: ragged appends, background sealing, auto codec. ---
    neats::NeatsStoreOptions options;
    options.shard_size = kShardLen;
    options.seal_threads = 0;  // one sealer per hardware thread
    options.seal_policy = neats::SealPolicy::kAuto;
    options.codec_candidates = {neats::CodecId::kNeats,
                                neats::CodecId::kLeco,
                                neats::CodecId::kGorilla};
    neats::Result<neats::NeatsStore> created =
        neats::CreateStoreDir(dir, options);
    if (!created.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   created.status().message().c_str());
      return 1;
    }
    neats::NeatsStore store = std::move(created.value());

    neats::Timer timer;
    size_t at = 0;
    const size_t slices[] = {9973, 20011, 4999, 35117};  // ragged ingest
    size_t slice = 0;
    while (at < ds.values.size()) {
      size_t n = std::min(slices[slice++ % 4], ds.values.size() - at);
      store.Append({ds.values.data() + at, n});
      at += n;
    }
    std::printf(
        "appended %zu points in %.3f s (%.2f MB/s); "
        "%zu shards sealed, %zu sealing, %llu in the hot tail\n",
        ds.values.size(), timer.ElapsedSeconds(),
        raw_mb / timer.ElapsedSeconds(), store.num_shards(),
        store.num_pending_seals(),
        static_cast<unsigned long long>(store.tail_size()));

    // Queries are served while seals are still in flight: sealed shards
    // from the compressed form, everything else from the raw chunks.
    for (size_t probe : {size_t{123}, kShardLen + 999, kShardLen * kShards - 5}) {
      ok &= store.Access(probe) == ds.values[probe];
    }
    std::printf("mid-ingest point queries: %s\n", ok ? "ok" : "MISMATCH");

    // --- Flush: seal the tail, write blobs + manifest. ---
    timer.Reset();
    store.Flush();
    std::printf("flushed to %s in %.3f s: %zu shards, %.2f%% of raw\n",
                dir.c_str(), timer.ElapsedSeconds(), store.num_shards(),
                100.0 * static_cast<double>(store.SizeInBits()) /
                    (64.0 * static_cast<double>(ds.values.size())));
  }

  // --- Reopen (zero-copy where the shard codec supports it) and serve
  // every query shape through the Status-returning facade path. ---
  neats::Result<neats::NeatsStore> reopened = neats::OpenStoreDir(dir);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().message().c_str());
    return 1;
  }
  neats::NeatsStore store = std::move(reopened.value());
  ok &= store.size() == ds.values.size();
  ok &= store.num_shards() == kShards;

  // The auto policy's per-shard choices (recorded in manifest v2).
  std::printf("per-shard codecs:");
  bool mixed = false;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    std::printf(" %s", neats::CodecName(store.shard_codec(s)));
    mixed |= store.shard_codec(s) != store.shard_codec(0);
  }
  std::printf("%s\n", mixed ? "  (mixed-codec store)" : "");
  ok &= mixed;

  // Point queries across shard boundaries.
  for (size_t probe : {size_t{0}, kShardLen - 1, kShardLen,
                       kShardLen * 3 + 17, kShardLen * kShards - 1}) {
    ok &= store.Access(probe) == ds.values[probe];
  }

  // Batched access: unsorted, duplicated, cross-shard probes in one call.
  std::vector<uint64_t> probes;
  for (size_t j = 0; j < 4096; ++j) {
    probes.push_back((j * 2654435761u) % ds.values.size());
  }
  probes.push_back(probes[0]);  // duplicate
  std::vector<int64_t> got(probes.size());
  neats::Timer timer;
  store.AccessBatch(probes, got);
  double batch_s = timer.ElapsedSeconds();
  for (size_t j = 0; j < probes.size(); ++j) {
    ok &= got[j] == ds.values[probes[j]];
  }
  std::printf("batch of %zu probes: %.0f ns/probe, %s\n", probes.size(),
              1e9 * batch_s / static_cast<double>(probes.size()),
              ok ? "ok" : "MISMATCH");

  // Multi-range decompression straddling a shard boundary.
  neats::IndexRange ranges[] = {{kShardLen - 100, 200},
                                {kShardLen * 4 - 50, 150},
                                {10, 25}};
  size_t total_len = 0;
  for (const auto& r : ranges) total_len += r.len;
  std::vector<int64_t> window(total_len);
  store.DecompressRanges(ranges, window.data());
  size_t off = 0;
  for (const auto& r : ranges) {
    for (uint64_t j = 0; j < r.len; ++j) {
      ok &= window[off + j] == ds.values[r.from + j];
    }
    off += r.len;
  }
  std::printf("multi-range decompression (3 ranges, 2 shard-spanning): %s\n",
              ok ? "ok" : "MISMATCH");

  // Exact vs approximate aggregates over a boundary-spanning window.
  const uint64_t from = kShardLen * 2 - 5000, len = 10000;
  int64_t exact = store.RangeSum(from, len);
  auto approx = store.ApproximateRangeSum(from, len);
  ok &= std::abs(approx.value - static_cast<double>(exact)) <=
        approx.error_bound + 1e-6;
  std::printf("range sum [%llu, +%llu): exact %lld, approx %.0f (±%.0f)\n",
              static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(len),
              static_cast<long long>(exact), approx.value,
              approx.error_bound);

  // Full integrity sweep over the mmap-served store.
  for (size_t k = 0; k < ds.values.size(); k += 97) {
    ok &= store.Access(k) == ds.values[k];
  }
  std::printf("zero-copy integrity sweep: %s\n", ok ? "ok" : "MISMATCH");

  // Append after reopen: the store keeps growing across sessions.
  store.Append({ds.values.data(), 1000});
  if (neats::Status flushed = neats::FlushStore(store); !flushed.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", flushed.message().c_str());
    return 1;
  }
  ok &= store.size() == ds.values.size() + 1000;
  ok &= store.Access(ds.values.size() + 123) == ds.values[123];
  std::printf("append-after-reopen (+1000 values, re-flushed): %s\n",
              ok ? "ok" : "MISMATCH");

  // --- Durability drill: power cut + lying fsync, degraded reopen,
  // Scrub() repair — on the fault-injection filesystem, so the "disk" and
  // the crash are deterministic and nothing real is harmed. ---
  std::vector<int64_t> drill(ds.values.begin(), ds.values.begin() + 1536);

  // Pass 0 on a throwaway FaultFs: trace a clean run to find the op where
  // Flush() truncates the WAL (the first op after the manifest's directory
  // sync) — the worst possible moment for the power to go out.
  uint64_t reset_op = 0;
  {
    neats::io::FaultFs probe({.seed = 7});
    DrillIngest(probe, drill);
    for (const auto& entry : probe.trace()) {
      if (entry.kind == neats::io::FaultFs::OpKind::kSyncDir) {
        reset_op = entry.index + 1;
      }
    }
  }

  neats::io::FaultFs fs({.seed = 7});
  fs.LieOnSyncPath(neats::StoreManifest::ShardFileName(0));  // fsync that lies
  fs.KillAtOp(reset_op);  // power cut after the manifest commit
  bool crashed = false;
  try {
    DrillIngest(fs, drill);
  } catch (const neats::io::CrashFault&) {
    crashed = true;  // the "process" died mid-Flush
  }
  ok &= crashed;
  fs.Crash();  // everything the lying fsync never persisted is gone
  {
    // The seeded tear may keep the whole blob by luck; make the cut real.
    const std::string shard0 = "drill/" + neats::StoreManifest::ShardFileName(0);
    std::vector<uint8_t> torn = fs.ReadRaw(shard0);
    torn.resize(torn.size() / 2);
    fs.SetRaw(shard0, std::move(torn));
  }

  // Reopen: the damaged shard is quarantined, not fatal — the store comes
  // up degraded and keeps serving everything else.
  neats::Result<neats::NeatsStore> recovered =
      neats::OpenStoreDir("drill", DrillOptions(&fs));
  if (!recovered.ok()) {
    std::fprintf(stderr, "degraded open failed: %s\n",
                 recovered.status().message().c_str());
    return 1;
  }
  neats::NeatsStore hurt = std::move(recovered.value());
  ok &= hurt.degraded();
  ok &= hurt.recovery_report().quarantined.size() == 1;
  std::printf("post-crash reopen: degraded, shard %zu quarantined (%s)\n",
              hurt.recovery_report().quarantined[0].shard,
              hurt.recovery_report().quarantined[0].error.c_str());

  // A query into the quarantined range fails with a typed, catchable
  // status; healthy shards still serve bit-identical values.
  neats::Result<int64_t> blocked =
      neats::Checked([&] { return hurt.Access(5); });
  ok &= !blocked.ok() &&
        blocked.status().code() == neats::StatusCode::kUnavailable;
  for (size_t k = 512; k < drill.size(); k += 37) {
    ok &= hurt.Access(k) == drill[k];
  }
  std::printf("degraded serving: quarantined range -> kUnavailable, "
              "healthy shards %s\n", ok ? "ok" : "MISMATCH");

  // Scrub: the WAL still covers the damaged shard (the crash landed before
  // the WAL reset), so the repair recompresses it and clears quarantine.
  neats::Status scrubbed = neats::ScrubStore(hurt);
  ok &= scrubbed.ok() && !hurt.degraded();
  for (size_t k = 0; k < drill.size(); k += 37) {
    ok &= hurt.Access(k) == drill[k];
  }
  std::printf("Scrub(): shard repaired from the WAL, full store %s\n",
              ok ? "ok" : "MISMATCH");

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
