// A miniature time-series storage engine demonstrating the deployment
// pattern suggested in Sec. IV-C1: ingest with a fast lightweight compressor
// (Gorilla), then recompress sealed segments with NeaTS in the background
// for long-term storage and efficient queries.
//
//   $ ./build/examples/storage_engine

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/blockwise.hpp"
#include "baselines/gorilla.hpp"
#include "common/timer.hpp"
#include "core/neats.hpp"
#include "datasets/generators.hpp"

namespace {

// One sealed segment of the store: hot (Gorilla) or cold (NeaTS).
class Segment {
 public:
  static Segment Ingest(std::vector<double> doubles,
                        std::vector<int64_t> ints) {
    Segment seg;
    seg.ints_ = std::move(ints);
    seg.hot_ = neats::Blockwise<neats::Gorilla>::Compress(doubles);
    seg.is_hot_ = true;
    return seg;
  }

  // Background compaction: replace the Gorilla blob with NeaTS.
  void Compact() {
    cold_ = neats::Neats::Compress(ints_);
    is_hot_ = false;
    ints_.clear();
    ints_.shrink_to_fit();
  }

  size_t SizeInBits() const {
    return is_hot_ ? hot_.SizeInBits() + ints_.size() * 64  // raw staging copy
                   : cold_.SizeInBits();
  }

  int64_t Access(size_t i, int digits) const {
    if (is_hot_) {
      double scale = 1;
      for (int d = 0; d < digits; ++d) scale *= 10;
      return static_cast<int64_t>(std::llround(hot_.Access(i) * scale));
    }
    return cold_.Access(i);
  }

  bool is_hot() const { return is_hot_; }

 private:
  bool is_hot_ = true;
  neats::Blockwise<neats::Gorilla> hot_;
  neats::Neats cold_;
  std::vector<int64_t> ints_;  // staged for compaction
};

}  // namespace

int main() {
  const size_t kSegmentLen = 50000;
  const size_t kSegments = 6;
  neats::Dataset ds = neats::MakeDataset("AP", kSegmentLen * kSegments);

  // --- Ingestion phase: fast appends, Gorilla-compressed segments. ---
  std::vector<Segment> store;
  neats::Timer timer;
  for (size_t s = 0; s < kSegments; ++s) {
    std::vector<double> dbl(ds.doubles.begin() + s * kSegmentLen,
                            ds.doubles.begin() + (s + 1) * kSegmentLen);
    std::vector<int64_t> ints(ds.values.begin() + s * kSegmentLen,
                              ds.values.begin() + (s + 1) * kSegmentLen);
    store.push_back(Segment::Ingest(std::move(dbl), std::move(ints)));
  }
  std::printf("ingested %zu segments (%zu points) in %.3f s with Gorilla\n",
              kSegments, ds.values.size(), timer.ElapsedSeconds());

  auto total_bits = [&] {
    size_t bits = 0;
    for (const auto& seg : store) bits += seg.SizeInBits();
    return bits;
  };
  std::printf("hot store size: %.2f%% of raw (incl. staging copies)\n",
              100.0 * static_cast<double>(total_bits()) /
                  (64.0 * static_cast<double>(ds.values.size())));

  // --- Background compaction: all but the newest segment go cold. ---
  timer.Reset();
  for (size_t s = 0; s + 1 < store.size(); ++s) store[s].Compact();
  std::printf("\ncompacted %zu segments to NeaTS in %.2f s\n", kSegments - 1,
              timer.ElapsedSeconds());
  std::printf("store size after compaction: %.2f%% of raw\n",
              100.0 * static_cast<double>(total_bits()) /
                  (64.0 * static_cast<double>(ds.values.size())));

  // --- Queries hit hot and cold segments transparently. ---
  bool ok = true;
  for (size_t probe : {size_t{123}, kSegmentLen * 2 + 17,
                       kSegmentLen * kSegments - 5}) {
    size_t seg = probe / kSegmentLen;
    int64_t got = store[seg].Access(probe % kSegmentLen,
                                    ds.fractional_digits);
    ok &= got == ds.values[probe];
    std::printf("point query T[%zu] -> %lld (%s segment) %s\n", probe,
                static_cast<long long>(got),
                store[seg].is_hot() ? "hot" : "cold",
                got == ds.values[probe] ? "ok" : "MISMATCH");
  }
  return ok ? 0 : 1;
}
