// A miniature time-series storage engine demonstrating the deployment
// pattern suggested in Sec. IV-C1: ingest with a fast lightweight compressor
// (Gorilla), recompress sealed segments with NeaTS in the background for
// long-term storage and efficient queries, and finally spill the coldest
// segments to disk — where they are served zero-copy through mmap and
// Neats::View, with no deserialization on open.
//
//   $ ./build/examples/storage_engine

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/blockwise.hpp"
#include "baselines/gorilla.hpp"
#include "common/timer.hpp"
#include "core/neats.hpp"
#include "datasets/generators.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"

namespace {

// One sealed segment of the store: hot (Gorilla), cold (NeaTS in memory),
// or frozen (NeaTS flat-format file opened zero-copy through mmap).
class Segment {
 public:
  static Segment Ingest(std::vector<double> doubles,
                        std::vector<int64_t> ints) {
    Segment seg;
    seg.ints_ = std::move(ints);
    seg.hot_ = neats::Blockwise<neats::Gorilla>::Compress(doubles);
    seg.tier_ = Tier::kHot;
    return seg;
  }

  // Background compaction: replace the Gorilla blob with NeaTS.
  void Compact() {
    cold_ = neats::Neats::Compress(ints_);
    tier_ = Tier::kCold;
    ints_.clear();
    ints_.shrink_to_fit();
  }

  // Spill to disk and reopen zero-copy: serialize (format v3), drop the
  // in-memory representation, mmap the file, and View the mapping.
  void Freeze(const std::string& path) {
    std::vector<uint8_t> blob;
    cold_.Serialize(&blob);
    neats::WriteFile(path, blob);
    cold_ = neats::Neats();  // release the owned representation
    map_ = neats::MmapFile::Open(path);
    cold_ = neats::Neats::View(map_.bytes());
    tier_ = Tier::kFrozen;
  }

  size_t SizeInBits() const {
    return tier_ == Tier::kHot
               ? hot_.SizeInBits() + ints_.size() * 64  // raw staging copy
               : cold_.SizeInBits();
  }

  int64_t Access(size_t i, int digits) const {
    if (tier_ == Tier::kHot) {
      double scale = 1;
      for (int d = 0; d < digits; ++d) scale *= 10;
      return static_cast<int64_t>(std::llround(hot_.Access(i) * scale));
    }
    return cold_.Access(i);
  }

  bool is_hot() const { return tier_ == Tier::kHot; }
  const char* tier_name() const {
    switch (tier_) {
      case Tier::kHot: return "hot";
      case Tier::kCold: return "cold";
      case Tier::kFrozen: return "frozen/mmap";
    }
    return "?";
  }

 private:
  enum class Tier { kHot, kCold, kFrozen };

  Tier tier_ = Tier::kHot;
  neats::Blockwise<neats::Gorilla> hot_;
  neats::Neats cold_;
  neats::MmapFile map_;        // backs `cold_` in the frozen tier
  std::vector<int64_t> ints_;  // staged for compaction
};

}  // namespace

int main() {
  const size_t kSegmentLen = 50000;
  const size_t kSegments = 6;
  neats::Dataset ds = neats::MakeDataset("AP", kSegmentLen * kSegments);

  // --- Ingestion phase: fast appends, Gorilla-compressed segments. ---
  std::vector<Segment> store;
  neats::Timer timer;
  for (size_t s = 0; s < kSegments; ++s) {
    std::vector<double> dbl(ds.doubles.begin() + s * kSegmentLen,
                            ds.doubles.begin() + (s + 1) * kSegmentLen);
    std::vector<int64_t> ints(ds.values.begin() + s * kSegmentLen,
                              ds.values.begin() + (s + 1) * kSegmentLen);
    store.push_back(Segment::Ingest(std::move(dbl), std::move(ints)));
  }
  std::printf("ingested %zu segments (%zu points) in %.3f s with Gorilla\n",
              kSegments, ds.values.size(), timer.ElapsedSeconds());

  auto total_bits = [&] {
    size_t bits = 0;
    for (const auto& seg : store) bits += seg.SizeInBits();
    return bits;
  };
  std::printf("hot store size: %.2f%% of raw (incl. staging copies)\n",
              100.0 * static_cast<double>(total_bits()) /
                  (64.0 * static_cast<double>(ds.values.size())));

  // --- Background compaction: all but the newest segment go cold. ---
  timer.Reset();
  for (size_t s = 0; s + 1 < store.size(); ++s) store[s].Compact();
  std::printf("\ncompacted %zu segments to NeaTS in %.2f s\n", kSegments - 1,
              timer.ElapsedSeconds());
  std::printf("store size after compaction: %.2f%% of raw\n",
              100.0 * static_cast<double>(total_bits()) /
                  (64.0 * static_cast<double>(ds.values.size())));

  // --- The two coldest segments spill to disk, reopened via mmap + View. ---
  // PID-suffixed paths so concurrent runs (or files left by another user in
  // the shared temp dir) cannot collide; removed before exit.
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string tag = std::to_string(
      static_cast<unsigned long long>(
          std::chrono::steady_clock::now().time_since_epoch().count()));
  std::vector<std::string> frozen_paths;
  timer.Reset();
  for (size_t s = 0; s < 2; ++s) {
    frozen_paths.push_back(dir + "/neats_segment_" + tag + "_" +
                           std::to_string(s) + ".v2");
    store[s].Freeze(frozen_paths.back());
  }
  std::printf("\nfroze 2 segments to %s (zero-copy reopen) in %.3f s\n",
              dir.c_str(), timer.ElapsedSeconds());

  // --- Queries hit hot, cold and frozen segments transparently. ---
  bool ok = true;
  for (size_t probe : {size_t{123}, kSegmentLen + 999, kSegmentLen * 2 + 17,
                       kSegmentLen * kSegments - 5}) {
    size_t seg = probe / kSegmentLen;
    int64_t got = store[seg].Access(probe % kSegmentLen,
                                    ds.fractional_digits);
    ok &= got == ds.values[probe];
    std::printf("point query T[%zu] -> %lld (%s segment) %s\n", probe,
                static_cast<long long>(got), store[seg].tier_name(),
                got == ds.values[probe] ? "ok" : "MISMATCH");
  }

  // Full integrity sweep over a frozen segment: the mmap-backed view must
  // return exactly the values the owned representation compressed.
  for (size_t k = 0; k < kSegmentLen; k += 97) {
    ok &= store[0].Access(k, ds.fractional_digits) == ds.values[k];
  }
  std::printf("frozen segment integrity sweep: %s\n", ok ? "ok" : "MISMATCH");

  // Unmap (drop the store) before deleting the backing files.
  store.clear();
  for (const std::string& path : frozen_paths) {
    std::filesystem::remove(path);
  }
  return ok ? 0 : 1;
}
