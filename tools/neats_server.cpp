// neats_server — the networked serving front-end (ROADMAP item 1).
//
// Fronts one NeatsStore over TCP: binary frames, line-delimited JSON, and
// an HTTP GET /stats route on the same port (src/net/server.hpp has the
// protocol and threading story). Serves either a store directory or a
// synthetic dataset, so a demo needs no data files:
//
//   ./neats_server --synthetic 200000                # ECG-shaped data
//   ./neats_server --dir /var/lib/neats/series0     # a flushed store
//   ./neats_server --port 7777 --workers 8 --coalesce-window-us 50
//
// Prints "listening on HOST:PORT" once ready (with --port-file the port
// also lands in a file — CI's ephemeral-port smoke step uses that), then
// serves until SIGINT/SIGTERM, which triggers a graceful drain: stop
// accepting, finish in-flight requests, flush buffers, close, and — when
// the store came from --dir — Flush() the hot tail durably.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "datasets/generators.hpp"
#include "net/server.hpp"
#include "store/neats_store.hpp"

namespace {

neats::net::NeatsServer* g_server = nullptr;
volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) {
  g_stop = 1;
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir DIR | --synthetic N] [--dataset CODE] [--host H]\n"
      "          [--port P] [--port-file FILE] [--workers N]\n"
      "          [--max-inflight N] [--coalesce-window-us U]\n"
      "          [--idle-timeout-ms MS] [--use-poll]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string dataset = "ECG";
  std::string port_file;
  uint64_t synthetic = 0;
  neats::net::NeatsServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      dir = next();
    } else if (arg == "--synthetic") {
      synthetic = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--workers") {
      options.worker_threads = std::atoi(next());
    } else if (arg == "--max-inflight") {
      options.max_inflight = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--coalesce-window-us") {
      options.coalesce_window_us =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--use-poll") {
      options.use_poll = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!dir.empty() && synthetic > 0) return Usage(argv[0]);
  if (dir.empty() && synthetic == 0) synthetic = 200000;

  try {
    neats::NeatsStore store =
        dir.empty() ? neats::NeatsStore()
                    : neats::NeatsStore::OpenDir(dir);
    if (dir.empty()) {
      const neats::Dataset ds =
          neats::MakeDataset(dataset, static_cast<size_t>(synthetic));
      store.Append(ds.values);
      std::fprintf(stderr, "serving synthetic %s: %zu values\n",
                   ds.code.c_str(), ds.values.size());
    } else {
      std::fprintf(stderr, "serving %s: %llu values%s\n", dir.c_str(),
                   static_cast<unsigned long long>(store.size()),
                   store.degraded() ? " (DEGRADED — run Scrub)" : "");
    }

    neats::net::NeatsServer server(store, options);
    server.Start();
    g_server = &server;
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);

    std::printf("listening on %s:%u\n", options.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream f(port_file, std::ios::trunc);
      f << server.port() << "\n";
    }

    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "draining...\n");
    server.Stop();
    g_server = nullptr;
    if (!dir.empty()) store.Flush();  // durable hot tail before exit
    std::fprintf(stderr, "drained; bye\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "neats_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
