#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Scans the given markdown files (and directories, recursively) for inline
links and reference definitions, and fails when a link points at a file
that does not exist in the repository or at a heading anchor that does not
exist in the target file. External links (http/https/mailto) are not
fetched — this guards the docs' internal wiring, not the internet.

Usage:  python3 tools/check_links.py README.md docs ROADMAP.md
Exit:   0 when every intra-repo link resolves, 1 otherwise.
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
FENCED_CODE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def heading_anchors(markdown_text):
    """GitHub-style anchor slugs for every heading in the text."""
    anchors = set()
    for heading in HEADING.findall(markdown_text):
        # Strip inline code/links, lowercase, drop punctuation, dash spaces.
        text = re.sub(r"`([^`]*)`", r"\1", heading)
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
        slug = re.sub(r"[^\w\- ]", "", text.strip().lower())
        slug = re.sub(r"\s", "-", slug)
        anchors.add(slug)
    return anchors


def collect_markdown_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif os.path.isfile(arg):
            files.append(arg)
        else:
            print(f"check_links: no such file or directory: {arg}")
            return None
    return sorted(set(files))


def check_file(path, anchor_cache):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    # Links inside code blocks/spans are examples, not navigation.
    text = INLINE_CODE.sub("", FENCED_CODE.sub("", raw))
    targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
    errors = []
    for target in targets:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        dest, _, fragment = target.partition("#")
        dest_path = (os.path.normpath(os.path.join(os.path.dirname(path), dest))
                     if dest else path)
        if not os.path.exists(dest_path):
            errors.append(f"{path}: dead link -> {target}")
            continue
        if fragment and dest_path.endswith(".md"):
            if dest_path not in anchor_cache:
                with open(dest_path, encoding="utf-8") as f:
                    anchor_cache[dest_path] = heading_anchors(f.read())
            if fragment.lower() not in anchor_cache[dest_path]:
                errors.append(f"{path}: dead anchor -> {target}")
    return errors


def main(argv):
    files = collect_markdown_files(argv[1:] or ["."])
    if files is None:
        return 1
    anchor_cache = {}
    errors = []
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    for error in errors:
        print(error)
    print(f"check_links: {len(files)} files, "
          f"{len(errors)} dead link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
