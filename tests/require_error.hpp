// Shared helper for the corrupt-input suites: NEATS_REQUIRE rejections are
// neats::Error throws (caught by the facade, fatal when uncaught), so the
// tests assert on the thrown message instead of forking death tests.

#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/assert.hpp"

namespace neats::testing {

/// Runs `fn`; returns the neats::Error message it throws, or nullopt if it
/// completed (any other exception propagates and fails the test).
template <typename F>
std::optional<std::string> ErrorMessageOf(F&& fn) {
  try {
    fn();
  } catch (const ::neats::Error& e) {
    return e.what();
  }
  return std::nullopt;
}

}  // namespace neats::testing

/// Expects `stmt` to throw a neats::Error whose message contains `substr`.
/// Completing without a throw fails even for an empty `substr` — "it threw
/// *something*" is the minimum the corrupt-blob sweeps assert.
#define EXPECT_NEATS_ERROR(stmt, substr)                                    \
  do {                                                                      \
    std::optional<std::string> neats_error_msg_ =                           \
        ::neats::testing::ErrorMessageOf([&] { stmt; });                    \
    EXPECT_TRUE(neats_error_msg_.has_value())                               \
        << "expected neats::Error, but the statement completed";            \
    EXPECT_TRUE(neats_error_msg_.has_value() &&                             \
                neats_error_msg_->find(substr) != std::string::npos)        \
        << "expected neats::Error containing \"" << substr << "\", got \""  \
        << neats_error_msg_.value_or("<none>") << "\"";                     \
  } while (0)
