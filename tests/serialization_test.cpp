#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "core/neats.hpp"
#include "datasets/generators.hpp"
#include "io/text_io.hpp"
#include "require_error.hpp"

namespace neats {
namespace {

std::vector<int64_t> RandomWalk(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  int64_t cur = -500;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng() % 41) - 20;
    values.push_back(cur);
  }
  return values;
}

void CheckSerializationRoundTrip(const std::vector<int64_t>& values,
                                 const NeatsOptions& options = {}) {
  Neats original = Neats::Compress(values, options);
  std::vector<uint8_t> bytes;
  original.Serialize(&bytes);
  Neats loaded = Neats::Deserialize(bytes);

  ASSERT_EQ(loaded.size(), values.size());
  ASSERT_EQ(loaded.num_fragments(), original.num_fragments());
  std::vector<int64_t> decoded;
  loaded.Decompress(&decoded);
  ASSERT_EQ(decoded, values);
  for (size_t k = 0; k < values.size(); k += 101) {
    ASSERT_EQ(loaded.Access(k), values[k]);
  }
  // Serialize the loaded copy again: byte-identical (canonical format).
  std::vector<uint8_t> bytes2;
  loaded.Serialize(&bytes2);
  EXPECT_EQ(bytes, bytes2);
}

TEST(Serialization, EmptySeries) {
  CheckSerializationRoundTrip({});
}

TEST(Serialization, SingleValue) { CheckSerializationRoundTrip({-42}); }

TEST(Serialization, RandomWalks) {
  CheckSerializationRoundTrip(RandomWalk(5000, 1));
  CheckSerializationRoundTrip(RandomWalk(20000, 2));
}

TEST(Serialization, BitVectorStartsVariant) {
  NeatsOptions options;
  options.starts_index = StartsIndex::kBitVector;
  CheckSerializationRoundTrip(RandomWalk(8000, 3), options);
}

TEST(Serialization, AllDatasets) {
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 5000);
    CheckSerializationRoundTrip(ds.values);
  }
}

TEST(Serialization, RejectsGarbage) {
  std::vector<uint8_t> junk(64, 0xAB);
  EXPECT_NEATS_ERROR(Neats::Deserialize(junk), "not a NeaTS blob");
}

TEST(TextIo, ParsesDecimalsWithMixedPrecision) {
  std::istringstream in("12.5\n-3.25\n7\n0.001\n");
  ParsedSeries series = ParseDecimalLines(in);
  EXPECT_EQ(series.digits, 3);
  ASSERT_EQ(series.values.size(), 4u);
  EXPECT_EQ(series.values[0], 12500);
  EXPECT_EQ(series.values[1], -3250);
  EXPECT_EQ(series.values[2], 7000);
  EXPECT_EQ(series.values[3], 1);
}

TEST(TextIo, ParsesIntegers) {
  std::istringstream in("5\n-17\n0\n");
  ParsedSeries series = ParseDecimalLines(in);
  EXPECT_EQ(series.digits, 0);
  EXPECT_EQ(series.values, (std::vector<int64_t>{5, -17, 0}));
}

TEST(TextIo, SkipsEmptyLinesAndCarriageReturns) {
  std::istringstream in("1.5\r\n\n2.5\r\n");
  ParsedSeries series = ParseDecimalLines(in);
  ASSERT_EQ(series.values.size(), 2u);
  EXPECT_EQ(series.values[0], 15);
  EXPECT_EQ(series.values[1], 25);
}

TEST(TextIo, FileRoundTrip) {
  std::vector<uint8_t> bytes = {0, 1, 2, 255, 128, 7};
  std::string path = ::testing::TempDir() + "/neats_io_test.bin";
  WriteFile(path, bytes);
  EXPECT_EQ(ReadFile(path), bytes);
}

}  // namespace
}  // namespace neats
