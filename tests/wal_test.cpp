// Tests for the write-ahead log grammar (src/store/wal.hpp): record round
// trips, the truncation sweep (a WAL may legally end mid-record — replay
// returns every intact prefix record and flags the tear), and a single-bit
// corruption fuzz. ReplayWal must never throw and never surface a value
// that was not written: a damaged byte only ever costs the record it lands
// in and everything after it.

#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <vector>

namespace neats {
namespace {

std::vector<WalRecord> MakeRecords(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<WalRecord> records;
  uint64_t first = 4096;  // pretend a manifest already covers a prefix
  const size_t lens[] = {1, 7, 128, 3, 57};
  for (size_t len : lens) {
    WalRecord rec;
    rec.first = first;
    rec.values.resize(len);
    for (auto& v : rec.values) v = static_cast<int64_t>(rng());
    first += len;
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<uint8_t> EncodeWal(const std::vector<WalRecord>& records) {
  std::vector<uint8_t> bytes;
  AppendWalHeader(&bytes);
  for (const WalRecord& rec : records) {
    AppendWalRecord(&bytes, rec.first, {rec.values.data(), rec.values.size()});
  }
  return bytes;
}

void ExpectPrefixIntact(const WalReplayResult& result,
                        const std::vector<WalRecord>& written) {
  ASSERT_LE(result.records.size(), written.size());
  for (size_t i = 0; i < result.records.size(); ++i) {
    ASSERT_EQ(result.records[i].first, written[i].first) << "record " << i;
    ASSERT_EQ(result.records[i].values, written[i].values) << "record " << i;
  }
}

TEST(Wal, RoundTripAndEmptyLog) {
  const std::vector<WalRecord> written = MakeRecords(31);
  const std::vector<uint8_t> bytes = EncodeWal(written);

  WalReplayResult result = ReplayWal(bytes);
  EXPECT_FALSE(result.torn);
  EXPECT_TRUE(result.warning.empty());
  ASSERT_EQ(result.records.size(), written.size());
  ExpectPrefixIntact(result, written);

  // A bare header is a valid, empty log; a zero-byte file is too (the
  // crash happened before the header landed).
  std::vector<uint8_t> header_only;
  AppendWalHeader(&header_only);
  WalReplayResult empty = ReplayWal(header_only);
  EXPECT_FALSE(empty.torn);
  EXPECT_TRUE(empty.records.empty());
  WalReplayResult none = ReplayWal(std::span<const uint8_t>{});
  EXPECT_FALSE(none.torn);
  EXPECT_TRUE(none.records.empty());

  // An empty record is legal and round-trips.
  std::vector<uint8_t> tiny;
  AppendWalHeader(&tiny);
  AppendWalRecord(&tiny, 7, std::span<const int64_t>{});
  WalReplayResult tiny_result = ReplayWal(tiny);
  EXPECT_FALSE(tiny_result.torn);
  ASSERT_EQ(tiny_result.records.size(), 1u);
  EXPECT_EQ(tiny_result.records[0].first, 7u);
  EXPECT_TRUE(tiny_result.records[0].values.empty());
}

// Every possible truncation point: replay returns exactly the records that
// still fit, flags the tear unless the cut lands on a record boundary, and
// never throws.
TEST(Wal, TruncationSweep) {
  const std::vector<WalRecord> written = MakeRecords(32);
  const std::vector<uint8_t> bytes = EncodeWal(written);

  // The record boundaries (byte offsets where a cut is a clean end).
  std::vector<size_t> boundaries = {16};
  for (const WalRecord& rec : written) {
    boundaries.push_back(boundaries.back() + (rec.values.size() + 3) * 8);
  }

  for (size_t keep = 0; keep <= bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    WalReplayResult result = ReplayWal(cut);
    ExpectPrefixIntact(result, written);
    size_t fit = 0;
    while (fit < written.size() && boundaries[fit + 1] <= keep) ++fit;
    if (keep == 0) {
      // No file at all: an empty, un-torn log.
      EXPECT_FALSE(result.torn);
      EXPECT_TRUE(result.records.empty());
    } else if (keep < 16) {
      // A torn header: nothing is trustworthy.
      EXPECT_TRUE(result.torn) << "keep=" << keep;
      EXPECT_TRUE(result.records.empty());
    } else {
      ASSERT_EQ(result.records.size(), fit) << "keep=" << keep;
      EXPECT_EQ(result.torn, keep != boundaries[fit]) << "keep=" << keep;
      if (result.torn) {
        EXPECT_NE(result.warning.find("torn"), std::string::npos);
      }
    }
  }
}

// Single-bit flips over the whole image: replay never throws, every record
// it does return is byte-identical to what was written, and any flip at or
// after the header only costs records from the flipped one onward.
TEST(Wal, SingleBitFlipFuzz) {
  const std::vector<WalRecord> written = MakeRecords(33);
  const std::vector<uint8_t> bytes = EncodeWal(written);

  std::vector<size_t> boundaries = {16};
  for (const WalRecord& rec : written) {
    boundaries.push_back(boundaries.back() + (rec.values.size() + 3) * 8);
  }

  std::mt19937_64 rng(34);
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::vector<uint8_t> evil = bytes;
    evil[offset] ^= static_cast<uint8_t>(1u << (rng() % 8));
    WalReplayResult result = ReplayWal(evil);
    // Which record does the flipped byte live in?
    size_t hit = 0;
    while (hit < written.size() && boundaries[hit + 1] <= offset) ++hit;
    if (offset < 16) {
      EXPECT_TRUE(result.torn) << "offset=" << offset;
      EXPECT_TRUE(result.records.empty());
    } else {
      // The CRC catches the flip: everything before the hit record
      // replays intact, the hit record and its successors are discarded.
      EXPECT_TRUE(result.torn) << "offset=" << offset;
      ASSERT_EQ(result.records.size(), hit) << "offset=" << offset;
      ExpectPrefixIntact(result, written);
    }
  }
}

// A forged value-count word cannot make replay read out of bounds or spin:
// impossible counts are treated as a torn tail.
TEST(Wal, ForgedCountIsTornNotFatal) {
  std::vector<uint8_t> bytes;
  AppendWalHeader(&bytes);
  AppendWalRecord(&bytes, 0, std::vector<int64_t>{1, 2, 3});
  // Overwrite the record's count word with a huge value.
  const uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(bytes.data() + 16, &huge, 8);
  WalReplayResult result = ReplayWal(bytes);
  EXPECT_TRUE(result.torn);
  EXPECT_TRUE(result.records.empty());
}

}  // namespace
}  // namespace neats
