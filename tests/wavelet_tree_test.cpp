#include "succinct/wavelet_tree.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace neats {
namespace {

void CheckAgainstNaive(const std::vector<uint32_t>& symbols,
                       uint32_t alphabet_size) {
  WaveletTree wt(symbols, alphabet_size);
  ASSERT_EQ(wt.size(), symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(wt.Access(i), symbols[i]) << "access at " << i;
  }
  uint32_t max_sym = 0;
  for (uint32_t s : symbols) max_sym = std::max(max_sym, s);
  std::vector<size_t> counts(max_sym + 1, 0);
  for (size_t i = 0; i <= symbols.size(); ++i) {
    for (uint32_t c = 0; c <= max_sym; ++c) {
      ASSERT_EQ(wt.Rank(c, i), counts[c]) << "rank of " << c << " at " << i;
    }
    if (i < symbols.size()) ++counts[symbols[i]];
  }
}

TEST(WaveletTree, SingleSymbolAlphabet) {
  CheckAgainstNaive(std::vector<uint32_t>(50, 0), 1);
}

TEST(WaveletTree, BinaryAlphabet) {
  std::mt19937 rng(3);
  std::vector<uint32_t> symbols(501);
  for (auto& s : symbols) s = rng() % 2;
  CheckAgainstNaive(symbols, 2);
}

TEST(WaveletTree, FourFunctionKinds) {
  // The exact shape NeaTS uses: |F| = 4 kinds.
  std::mt19937 rng(4);
  std::vector<uint32_t> symbols(1000);
  for (auto& s : symbols) s = rng() % 4;
  CheckAgainstNaive(symbols, 4);
}

TEST(WaveletTree, NonPowerOfTwoAlphabet) {
  std::mt19937 rng(5);
  std::vector<uint32_t> symbols(800);
  for (auto& s : symbols) s = rng() % 5;
  CheckAgainstNaive(symbols, 5);
}

TEST(WaveletTree, SkewedDistribution) {
  std::mt19937 rng(6);
  std::vector<uint32_t> symbols(700);
  for (auto& s : symbols) {
    uint32_t r = rng() % 100;
    s = r < 90 ? 0 : (r < 99 ? 1 : 7);
  }
  CheckAgainstNaive(symbols, 8);
}

TEST(WaveletTree, SingleElement) { CheckAgainstNaive({3}, 6); }

TEST(WaveletTree, DerivedAlphabetSize) {
  std::vector<uint32_t> symbols = {0, 3, 1, 3, 2};
  WaveletTree wt(symbols);
  for (size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(wt.Access(i), symbols[i]);
  }
  EXPECT_EQ(wt.Rank(3, 5), 2u);
}

class WaveletTreeAlphabetTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WaveletTreeAlphabetTest, RandomAtAlphabetSize) {
  uint32_t sigma = GetParam();
  std::mt19937 rng(sigma * 13 + 1);
  std::vector<uint32_t> symbols(603);
  for (auto& s : symbols) s = rng() % sigma;
  CheckAgainstNaive(symbols, sigma);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, WaveletTreeAlphabetTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 16, 33));

}  // namespace
}  // namespace neats
