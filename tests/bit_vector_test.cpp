#include "succinct/bit_vector.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace neats {
namespace {

// Reference implementation for differential testing.
struct NaiveRankSelect {
  std::vector<bool> bits;

  uint64_t Rank1(size_t i) const {
    uint64_t r = 0;
    for (size_t k = 0; k < i; ++k) r += bits[k];
    return r;
  }
  size_t Select1(uint64_t k) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (bits[i] && k-- == 0) return i;
    }
    return static_cast<size_t>(-1);
  }
  size_t Select0(uint64_t k) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (!bits[i] && k-- == 0) return i;
    }
    return static_cast<size_t>(-1);
  }
};

BitVector MakeBitVector(const std::vector<bool>& bits) {
  BitVector bv(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bv.Set(i);
  }
  return bv;
}

void CheckAgainstNaive(const std::vector<bool>& bits) {
  RankSelect rs(MakeBitVector(bits));
  NaiveRankSelect naive{bits};
  uint64_t ones = naive.Rank1(bits.size());
  ASSERT_EQ(rs.ones(), ones);
  for (size_t i = 0; i <= bits.size(); ++i) {
    ASSERT_EQ(rs.Rank1(i), naive.Rank1(i)) << "rank1 at " << i;
    ASSERT_EQ(rs.Rank0(i), i - naive.Rank1(i)) << "rank0 at " << i;
  }
  for (uint64_t k = 0; k < ones; ++k) {
    ASSERT_EQ(rs.Select1(k), naive.Select1(k)) << "select1 of " << k;
  }
  uint64_t zeros_total = bits.size() - ones;
  for (uint64_t k = 0; k < zeros_total; ++k) {
    ASSERT_EQ(rs.Select0(k), naive.Select0(k)) << "select0 of " << k;
  }
}

TEST(RankSelect, Empty) {
  RankSelect rs((BitVector(0)));
  EXPECT_EQ(rs.size(), 0u);
  EXPECT_EQ(rs.ones(), 0u);
  EXPECT_EQ(rs.Rank1(0), 0u);
}

TEST(RankSelect, AllZeros) {
  std::vector<bool> bits(1000, false);
  CheckAgainstNaive(bits);
}

TEST(RankSelect, AllOnes) {
  std::vector<bool> bits(1000, true);
  CheckAgainstNaive(bits);
}

TEST(RankSelect, SingleBitEachPositionSmall) {
  for (size_t n : {1u, 63u, 64u, 65u, 127u, 128u}) {
    for (size_t pos = 0; pos < n; pos += (n > 80 ? 13 : 1)) {
      std::vector<bool> bits(n, false);
      bits[pos] = true;
      CheckAgainstNaive(bits);
    }
  }
}

class RankSelectDensityTest : public ::testing::TestWithParam<int> {};

TEST_P(RankSelectDensityTest, RandomAtDensityPercent) {
  int density = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(density) * 7919 + 1);
  std::vector<bool> bits(4099);
  for (size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<int>(rng() % 100) < density;
  }
  CheckAgainstNaive(bits);
}

INSTANTIATE_TEST_SUITE_P(Densities, RankSelectDensityTest,
                         ::testing::Values(1, 5, 25, 50, 75, 95, 99));

TEST(RankSelect, SizesAroundBlockBoundaries) {
  std::mt19937_64 rng(99);
  for (size_t n : {511u, 512u, 513u, 1023u, 1024u, 1025u, 4095u, 4096u}) {
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng() & 1;
    CheckAgainstNaive(bits);
  }
}

TEST(RankSelect, SparseLargeGaps) {
  std::vector<bool> bits(100000, false);
  for (size_t i = 0; i < bits.size(); i += 9973) bits[i] = true;
  RankSelect rs(MakeBitVector(bits));
  uint64_t count = 0;
  for (size_t i = 0; i < bits.size(); i += 9973) {
    EXPECT_EQ(rs.Select1(count), i);
    ++count;
  }
  EXPECT_EQ(rs.ones(), count);
  EXPECT_EQ(rs.Rank1(bits.size()), count);
}

TEST(BitVector, PushBackMatchesSet) {
  std::mt19937_64 rng(5);
  std::vector<bool> bits(777);
  for (size_t i = 0; i < bits.size(); ++i) bits[i] = rng() & 1;
  BitVector a(bits.size());
  BitVector b;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) a.Set(i);
    b.PushBack(bits[i]);
  }
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(a.Get(i), b.Get(i));
    ASSERT_EQ(a.Get(i), bits[i]);
  }
}

}  // namespace
}  // namespace neats
