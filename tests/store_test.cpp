// Tests for the serving layer (src/store/neats_store.hpp) and its batch
// kernels: AccessBatch / DecompressRanges fuzz against scalar ground truth
// (random, duplicate, unsorted, cross-shard probe sets), shard-boundary
// range sums, append -> seal -> reopen byte identity, and the
// corrupt-manifest clobber sweep matching the blob-hardening suites.

#include "store/neats_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/neats.hpp"
#include "io/manifest.hpp"
#include "io/text_io.hpp"

namespace neats {
namespace {

// A series mixing regimes so shards get genuinely different partitions:
// exponential growth, a ramp, a noisy plateau, and a quadratic arc.
std::vector<int64_t> MixedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    values.push_back(static_cast<int64_t>(
        100.0 * std::exp(0.004 * static_cast<double>(i))));
  }
  while (values.size() < 2 * quarter) values.push_back(values.back() + 9);
  while (values.size() < 3 * quarter) {
    values.push_back(50000 + static_cast<int64_t>(rng() % 64));
  }
  while (values.size() < n) {
    double x = static_cast<double>(values.size() - 3 * quarter);
    values.push_back(60000 - static_cast<int64_t>(0.02 * x * x) +
                     static_cast<int64_t>(rng() % 8));
  }
  return values;
}

// A store directory path unique to this test process.
std::string TempStoreDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("neats_store_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(
               std::chrono::steady_clock::now().time_since_epoch().count()))))
      .string();
}

// Builds an in-memory store by appending `values` in ragged slices. With
// `flush` false the store is left mid-ingest: sealed shards, pending seals
// and a non-empty hot tail all present (shard_size chosen accordingly).
NeatsStore BuildStore(const std::vector<int64_t>& values, uint64_t shard_size,
                      bool flush) {
  NeatsStoreOptions options;
  options.shard_size = shard_size;
  options.seal_threads = 2;
  NeatsStore store(options);
  size_t at = 0;
  const size_t slices[] = {997, 2011, 499, 3517};
  size_t s = 0;
  while (at < values.size()) {
    size_t n = std::min(slices[s++ % 4], values.size() - at);
    store.Append({values.data() + at, n});
    at += n;
  }
  if (flush) store.Flush();
  return store;
}

// ---------------------------------------------------------------------------
// Neats::AccessBatch (the fragment-grouped kernel) against scalar Access.
// ---------------------------------------------------------------------------

TEST(NeatsAccessBatch, SortedProbesMatchScalarAccess) {
  std::vector<int64_t> values = MixedSeries(20000, 1);
  for (StartsIndex mode : {StartsIndex::kEliasFano, StartsIndex::kBitVector}) {
    NeatsOptions options;
    options.starts_index = mode;
    Neats compressed = Neats::Compress(values, options);
    std::mt19937_64 rng(2);
    for (int trial = 0; trial < 50; ++trial) {
      size_t count = 1 + rng() % 700;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      if (trial % 3 == 0) {  // heavy duplicates
        for (auto& k : idx) k = idx[0] + k % 40;
        for (auto& k : idx) k = std::min<uint64_t>(k, values.size() - 1);
      }
      std::sort(idx.begin(), idx.end());
      std::vector<int64_t> out(count);
      compressed.AccessBatch(idx, out.data());
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]])
            << "probe " << idx[j] << " trial " << trial;
      }
    }
    // Degenerate batches.
    std::vector<int64_t> one(1);
    compressed.AccessBatch(std::vector<uint64_t>{0}, one.data());
    EXPECT_EQ(one[0], values[0]);
    compressed.AccessBatch(std::vector<uint64_t>{values.size() - 1},
                           one.data());
    EXPECT_EQ(one[0], values.back());
    compressed.AccessBatch(std::span<const uint64_t>(), nullptr);
  }
}

TEST(NeatsDecompressRanges, MatchesPerRangeDecompression) {
  std::vector<int64_t> values = MixedSeries(15000, 3);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<IndexRange> ranges;
    size_t total = 0;
    for (int r = 0; r < 8; ++r) {
      uint64_t from = rng() % values.size();
      uint64_t len = rng() % std::min<uint64_t>(400, values.size() - from);
      ranges.push_back({from, len});
      total += len;
    }
    ranges.push_back({0, 0});  // empty range is legal anywhere in the batch
    std::vector<int64_t> got(total);
    compressed.DecompressRanges(ranges, got.data());
    size_t off = 0;
    for (const IndexRange& r : ranges) {
      for (uint64_t j = 0; j < r.len; ++j) {
        ASSERT_EQ(got[off + j], values[r.from + j])
            << "range [" << r.from << ", +" << r.len << ") at " << j;
      }
      off += r.len;
    }
  }
}

// ---------------------------------------------------------------------------
// Store queries against raw ground truth, mid-ingest and flushed.
// ---------------------------------------------------------------------------

TEST(NeatsStore, AccessBatchFuzzAllTiers) {
  std::vector<int64_t> values = MixedSeries(30000, 5);
  // Mid-ingest: ~3 sealed shards, pending seals, and a hot tail.
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    ASSERT_EQ(store.size(), values.size());
    std::mt19937_64 rng(6);
    for (int trial = 0; trial < 40; ++trial) {
      size_t count = 1 + rng() % 600;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      switch (trial % 3) {
        case 0:  // unsorted random — leave as is
          break;
        case 1:  // duplicates piled on a shard boundary
          for (size_t j = 0; j < count; ++j) {
            idx[j] = (7000 - 2 + j % 5) % values.size();
          }
          break;
        case 2:  // descending
          std::sort(idx.rbegin(), idx.rend());
          break;
      }
      std::vector<int64_t> out(count);
      store.AccessBatch(idx, out);
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]]) << "flush=" << flush << " probe "
                                          << idx[j] << " trial " << trial;
        ASSERT_EQ(store.Access(idx[j]), values[idx[j]]);
      }
    }
  }
}

TEST(NeatsStore, DecompressRangesAcrossShardsAndTiers) {
  std::vector<int64_t> values = MixedSeries(30000, 7);
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    std::mt19937_64 rng(8);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<IndexRange> ranges;
      size_t total = 0;
      for (int r = 0; r < 6; ++r) {
        uint64_t from = rng() % values.size();
        uint64_t len =
            rng() % std::min<uint64_t>(9000, values.size() - from);
        ranges.push_back({from, len});
        total += len;
      }
      std::vector<int64_t> got(total);
      store.DecompressRanges(ranges, got.data());
      size_t off = 0;
      for (const IndexRange& r : ranges) {
        for (uint64_t j = 0; j < r.len; ++j) {
          ASSERT_EQ(got[off + j], values[r.from + j])
              << "flush=" << flush << " range [" << r.from << ", +" << r.len
              << ") at " << j;
        }
        off += r.len;
      }
    }
    // The full series in one range.
    std::vector<int64_t> all(values.size());
    store.DecompressRange(0, values.size(), all.data());
    EXPECT_EQ(all, values);
  }
}

// Bounded-magnitude series for the aggregate checks: MixedSeries' exponential
// segment grows to ~1e15, whose prefix sums exceed 2^53 and stop being
// exactly representable in the double arithmetic ApproximateRangeSum uses —
// the bound check would then fail on rounding alone, not on routing bugs.
std::vector<int64_t> BoundedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t base = static_cast<int64_t>(i % 5000) * 7 - 12000;
    values.push_back(base + static_cast<int64_t>(rng() % 256));
  }
  return values;
}

TEST(NeatsStore, RangeSumsAcrossShardBoundaries) {
  std::vector<int64_t> values = BoundedSeries(30000, 9);
  std::vector<int64_t> prefix(values.size() + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    // Spans pinned to shard boundaries, spanning several shards, plus the
    // whole series.
    std::vector<IndexRange> spans = {
        {6999, 2},          // exactly straddles the first boundary
        {7000, 7000},       // exactly one shard
        {0, 21000},         // three shards
        {3500, 21000},      // misaligned, four shards
        {0, values.size()}, // everything, including pending + tail
        {20999, 2},         {13999, 7002},
    };
    std::mt19937_64 rng(10);
    for (int t = 0; t < 20; ++t) {
      uint64_t from = rng() % values.size();
      spans.push_back(
          {from, rng() % std::min<uint64_t>(12000, values.size() - from)});
    }
    for (const IndexRange& s : spans) {
      ASSERT_EQ(store.RangeSum(s.from, s.len),
                prefix[s.from + s.len] - prefix[s.from])
          << "flush=" << flush << " span [" << s.from << ", +" << s.len << ")";
      Neats::ApproximateAggregate agg = store.ApproximateRangeSum(s.from, s.len);
      double exact = static_cast<double>(prefix[s.from + s.len] - prefix[s.from]);
      ASSERT_LE(std::abs(agg.value - exact), agg.error_bound + 1e-6)
          << "flush=" << flush << " span [" << s.from << ", +" << s.len << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Durability: append -> seal -> reopen.
// ---------------------------------------------------------------------------

TEST(NeatsStore, AppendSealReopenRoundTripByteIdentity) {
  std::vector<int64_t> values = MixedSeries(25000, 11);
  const uint64_t kShard = 6000;
  std::string dir = TempStoreDir("roundtrip");
  {
    NeatsStoreOptions options;
    options.shard_size = kShard;
    options.seal_threads = 2;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    // Ragged appends must not affect the sealed bytes — only shard_size
    // decides where shards get cut.
    size_t at = 0;
    const size_t slices[] = {1, 4099, 811, 9973};
    size_t s = 0;
    while (at < values.size()) {
      size_t n = std::min(slices[s++ % 4], values.size() - at);
      store.Append({values.data() + at, n});
      at += n;
    }
    store.Flush();
    EXPECT_EQ(store.num_shards(), (values.size() + kShard - 1) / kShard);
  }

  // Every shard blob is byte-identical to compressing that slice directly:
  // the append path adds no hidden state to the sealed form.
  size_t num_shards = (values.size() + kShard - 1) / kShard;
  for (size_t s = 0; s < num_shards; ++s) {
    size_t first = s * kShard;
    size_t count = std::min<size_t>(kShard, values.size() - first);
    Neats direct = Neats::Compress({values.data() + first, count});
    std::vector<uint8_t> expected;
    direct.Serialize(&expected);
    std::vector<uint8_t> on_disk =
        ReadFile(dir + "/" + StoreManifest::ShardFileName(s));
    ASSERT_EQ(on_disk, expected) << "shard " << s;
  }

  // Reopen: zero-copy serving, values bit-identical to a one-shot
  // compression of the full series.
  NeatsStore reopened = NeatsStore::OpenDir(dir);
  ASSERT_EQ(reopened.size(), values.size());
  ASSERT_EQ(reopened.shard_size(), kShard);
  Neats one_shot = Neats::Compress(values);
  for (size_t k = 0; k < values.size(); k += 83) {
    ASSERT_EQ(reopened.Access(k), one_shot.Access(k)) << k;
    ASSERT_EQ(reopened.Access(k), values[k]) << k;
  }

  // A second Flush with no new data must rewrite the manifest verbatim.
  std::vector<uint8_t> manifest_before =
      ReadFile(dir + "/" + StoreManifest::FileName());
  reopened.Flush();
  EXPECT_EQ(ReadFile(dir + "/" + StoreManifest::FileName()), manifest_before);

  // Appending after reopen grows the store and survives another reopen.
  reopened.Append({values.data(), 1234});
  reopened.Flush();
  NeatsStore again = NeatsStore::OpenDir(dir);
  ASSERT_EQ(again.size(), values.size() + 1234);
  for (size_t k = 0; k < 1234; k += 13) {
    ASSERT_EQ(again.Access(values.size() + k), values[k]) << k;
  }
  std::filesystem::remove_all(dir);
}

TEST(NeatsStore, MoveAssignmentDrainsInFlightSeals) {
  // Overwriting a store that still has background seals in flight must not
  // free the chunks those seal tasks read (the sanitizer job would flag a
  // use-after-free here if move assignment skipped the drain).
  std::vector<int64_t> values = MixedSeries(20000, 15);
  NeatsStoreOptions options;
  options.shard_size = 4000;
  options.seal_threads = 2;
  NeatsStore dst(options);
  dst.Append(values);  // several chunks immediately handed to the sealer
  NeatsStore src(options);
  src.Append({values.data(), 5000});
  dst = std::move(src);
  dst.Flush();
  ASSERT_EQ(dst.size(), 5000u);
  for (size_t k = 0; k < 5000; k += 97) {
    ASSERT_EQ(dst.Access(k), values[k]) << k;
  }
}

// ---------------------------------------------------------------------------
// Corrupt-store hardening, matching the blob clobber-sweep suites.
// ---------------------------------------------------------------------------

TEST(NeatsStore, CorruptManifestClobberSweep) {
  std::vector<int64_t> values = MixedSeries(12000, 13);
  std::string dir = TempStoreDir("clobber");
  {
    NeatsStoreOptions options;
    options.shard_size = 5000;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append(values);
    store.Flush();
  }
  const std::string manifest_path = dir + "/" + StoreManifest::FileName();
  std::vector<uint8_t> good = ReadFile(manifest_path);

  // Truncations must die loudly.
  for (size_t keep : {size_t{0}, size_t{7}, good.size() / 2, good.size() - 8}) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(keep));
    WriteFile(manifest_path, cut);
    EXPECT_DEATH(NeatsStore::OpenDir(dir), "manifest") << "keep=" << keep;
  }

  // Flipping any word of the manifest must either abort with a diagnostic
  // or (if ever benign) still open into a store that serves correct values
  // — never a crash or silent misroute.
  auto ok_or_abort = [](int status) {
    return (WIFEXITED(status) && WEXITSTATUS(status) == 0) ||
           (WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT);
  };
  for (size_t w = 0; w + 8 <= good.size(); w += 8) {
    std::vector<uint8_t> evil = good;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] ^= 0xFF;
    WriteFile(manifest_path, evil);
    EXPECT_EXIT(
        {
          NeatsStore opened = NeatsStore::OpenDir(dir);
          for (uint64_t k = 0; k < opened.size(); k += 701) {
            if (opened.Access(k) != values[k]) std::exit(3);
          }
          std::exit(0);
        },
        ok_or_abort, "") << "clobbered manifest word at byte " << w;
  }
  WriteFile(manifest_path, good);

  // A shard blob that disagrees with the manifest (truncated file) must be
  // rejected by the size cross-check before anything is mapped.
  const std::string shard0 = dir + "/" + StoreManifest::ShardFileName(0);
  std::vector<uint8_t> blob = ReadFile(shard0);
  std::vector<uint8_t> short_blob(blob.begin(), blob.end() - 8);
  WriteFile(shard0, short_blob);
  EXPECT_DEATH(NeatsStore::OpenDir(dir), "disagrees with manifest");
  WriteFile(shard0, blob);

  // Restored, the store opens and serves again.
  NeatsStore ok = NeatsStore::OpenDir(dir);
  for (size_t k = 0; k < values.size(); k += 977) {
    ASSERT_EQ(ok.Access(k), values[k]);
  }

  // CreateDir must refuse a directory that already holds a store — a
  // fresh store's seals would clobber the existing blobs out from under
  // the surviving manifest.
  EXPECT_DEATH(NeatsStore::CreateDir(dir), "use OpenDir");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Manifest unit coverage.
// ---------------------------------------------------------------------------

TEST(StoreManifest, RoundTripAndValidation) {
  StoreManifest m;
  m.shard_size = 4096;
  m.shards = {{0, 4096, 1000}, {4096, 4096, 900}, {8192, 77, 500}};
  std::vector<uint8_t> bytes;
  m.Serialize(&bytes);
  StoreManifest back = StoreManifest::Deserialize(bytes);
  EXPECT_EQ(back.shard_size, m.shard_size);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].first, m.shards[i].first);
    EXPECT_EQ(back.shards[i].count, m.shards[i].count);
    EXPECT_EQ(back.shards[i].blob_bytes, m.shards[i].blob_bytes);
  }
  EXPECT_EQ(back.total(), 8192u + 77u);

  // Non-contiguous coverage is rejected.
  StoreManifest holey = m;
  holey.shards[1].first = 5000;
  std::vector<uint8_t> bad;
  holey.Serialize(&bad);
  EXPECT_DEATH(StoreManifest::Deserialize(bad), "corrupt");
}

}  // namespace
}  // namespace neats
