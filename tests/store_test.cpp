// Tests for the serving layer (src/store/neats_store.hpp) and its batch
// kernels: AccessBatch / DecompressRanges fuzz against scalar ground truth
// (random, duplicate, unsorted, cross-shard probe sets), shard-boundary
// range sums, append -> seal -> reopen byte identity, and the
// corrupt-manifest clobber sweep matching the blob-hardening suites.

#include "store/neats_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "codecs/codec_registry.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "io/checksum.hpp"
#include "io/manifest.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"
#include "require_error.hpp"

namespace neats {
namespace {

// A series mixing regimes so shards get genuinely different partitions:
// exponential growth, a ramp, a noisy plateau, and a quadratic arc.
std::vector<int64_t> MixedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    values.push_back(static_cast<int64_t>(
        100.0 * std::exp(0.004 * static_cast<double>(i))));
  }
  while (values.size() < 2 * quarter) values.push_back(values.back() + 9);
  while (values.size() < 3 * quarter) {
    values.push_back(50000 + static_cast<int64_t>(rng() % 64));
  }
  while (values.size() < n) {
    double x = static_cast<double>(values.size() - 3 * quarter);
    values.push_back(60000 - static_cast<int64_t>(0.02 * x * x) +
                     static_cast<int64_t>(rng() % 8));
  }
  return values;
}

// A store directory path unique to this test process.
std::string TempStoreDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("neats_store_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(
               std::chrono::steady_clock::now().time_since_epoch().count()))))
      .string();
}

// Builds an in-memory store by appending `values` in ragged slices. With
// `flush` false the store is left mid-ingest: sealed shards, pending seals
// and a non-empty hot tail all present (shard_size chosen accordingly).
NeatsStore BuildStore(const std::vector<int64_t>& values, uint64_t shard_size,
                      bool flush) {
  NeatsStoreOptions options;
  options.shard_size = shard_size;
  options.seal_threads = 2;
  NeatsStore store(options);
  size_t at = 0;
  const size_t slices[] = {997, 2011, 499, 3517};
  size_t s = 0;
  while (at < values.size()) {
    size_t n = std::min(slices[s++ % 4], values.size() - at);
    store.Append({values.data() + at, n});
    at += n;
  }
  if (flush) store.Flush();
  return store;
}

// ---------------------------------------------------------------------------
// Neats::AccessBatch (the fragment-grouped kernel) against scalar Access.
// ---------------------------------------------------------------------------

TEST(NeatsAccessBatch, SortedProbesMatchScalarAccess) {
  std::vector<int64_t> values = MixedSeries(20000, 1);
  for (StartsIndex mode : {StartsIndex::kEliasFano, StartsIndex::kBitVector}) {
    NeatsOptions options;
    options.starts_index = mode;
    Neats compressed = Neats::Compress(values, options);
    std::mt19937_64 rng(2);
    for (int trial = 0; trial < 50; ++trial) {
      size_t count = 1 + rng() % 700;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      if (trial % 3 == 0) {  // heavy duplicates
        for (auto& k : idx) k = idx[0] + k % 40;
        for (auto& k : idx) k = std::min<uint64_t>(k, values.size() - 1);
      }
      std::sort(idx.begin(), idx.end());
      std::vector<int64_t> out(count);
      compressed.AccessBatch(idx, out.data());
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]])
            << "probe " << idx[j] << " trial " << trial;
      }
    }
    // Degenerate batches.
    std::vector<int64_t> one(1);
    compressed.AccessBatch(std::vector<uint64_t>{0}, one.data());
    EXPECT_EQ(one[0], values[0]);
    compressed.AccessBatch(std::vector<uint64_t>{values.size() - 1},
                           one.data());
    EXPECT_EQ(one[0], values.back());
    compressed.AccessBatch(std::span<const uint64_t>(), nullptr);
  }
}

TEST(NeatsDecompressRanges, MatchesPerRangeDecompression) {
  std::vector<int64_t> values = MixedSeries(15000, 3);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<IndexRange> ranges;
    size_t total = 0;
    for (int r = 0; r < 8; ++r) {
      uint64_t from = rng() % values.size();
      uint64_t len = rng() % std::min<uint64_t>(400, values.size() - from);
      ranges.push_back({from, len});
      total += len;
    }
    ranges.push_back({0, 0});  // empty range is legal anywhere in the batch
    std::vector<int64_t> got(total);
    compressed.DecompressRanges(ranges, got.data());
    size_t off = 0;
    for (const IndexRange& r : ranges) {
      for (uint64_t j = 0; j < r.len; ++j) {
        ASSERT_EQ(got[off + j], values[r.from + j])
            << "range [" << r.from << ", +" << r.len << ") at " << j;
      }
      off += r.len;
    }
  }
}

// ---------------------------------------------------------------------------
// Store queries against raw ground truth, mid-ingest and flushed.
// ---------------------------------------------------------------------------

TEST(NeatsStore, AccessBatchFuzzAllTiers) {
  std::vector<int64_t> values = MixedSeries(30000, 5);
  // Mid-ingest: ~3 sealed shards, pending seals, and a hot tail.
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    ASSERT_EQ(store.size(), values.size());
    std::mt19937_64 rng(6);
    for (int trial = 0; trial < 40; ++trial) {
      size_t count = 1 + rng() % 600;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      switch (trial % 3) {
        case 0:  // unsorted random — leave as is
          break;
        case 1:  // duplicates piled on a shard boundary
          for (size_t j = 0; j < count; ++j) {
            idx[j] = (7000 - 2 + j % 5) % values.size();
          }
          break;
        case 2:  // descending
          std::sort(idx.rbegin(), idx.rend());
          break;
      }
      std::vector<int64_t> out(count);
      store.AccessBatch(idx, out);
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]]) << "flush=" << flush << " probe "
                                          << idx[j] << " trial " << trial;
        ASSERT_EQ(store.Access(idx[j]), values[idx[j]]);
      }
    }
  }
}

TEST(NeatsStore, DecompressRangesAcrossShardsAndTiers) {
  std::vector<int64_t> values = MixedSeries(30000, 7);
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    std::mt19937_64 rng(8);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<IndexRange> ranges;
      size_t total = 0;
      for (int r = 0; r < 6; ++r) {
        uint64_t from = rng() % values.size();
        uint64_t len =
            rng() % std::min<uint64_t>(9000, values.size() - from);
        ranges.push_back({from, len});
        total += len;
      }
      std::vector<int64_t> got(total);
      store.DecompressRanges(ranges, got.data());
      size_t off = 0;
      for (const IndexRange& r : ranges) {
        for (uint64_t j = 0; j < r.len; ++j) {
          ASSERT_EQ(got[off + j], values[r.from + j])
              << "flush=" << flush << " range [" << r.from << ", +" << r.len
              << ") at " << j;
        }
        off += r.len;
      }
    }
    // The full series in one range.
    std::vector<int64_t> all(values.size());
    store.DecompressRange(0, values.size(), all.data());
    EXPECT_EQ(all, values);
  }
}

// Bounded-magnitude series for the aggregate checks: MixedSeries' exponential
// segment grows to ~1e15, whose prefix sums exceed 2^53 and stop being
// exactly representable in the double arithmetic ApproximateRangeSum uses —
// the bound check would then fail on rounding alone, not on routing bugs.
std::vector<int64_t> BoundedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t base = static_cast<int64_t>(i % 5000) * 7 - 12000;
    values.push_back(base + static_cast<int64_t>(rng() % 256));
  }
  return values;
}

TEST(NeatsStore, RangeSumsAcrossShardBoundaries) {
  std::vector<int64_t> values = BoundedSeries(30000, 9);
  std::vector<int64_t> prefix(values.size() + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (bool flush : {false, true}) {
    NeatsStore store = BuildStore(values, 7000, flush);
    // Spans pinned to shard boundaries, spanning several shards, plus the
    // whole series.
    std::vector<IndexRange> spans = {
        {6999, 2},          // exactly straddles the first boundary
        {7000, 7000},       // exactly one shard
        {0, 21000},         // three shards
        {3500, 21000},      // misaligned, four shards
        {0, values.size()}, // everything, including pending + tail
        {20999, 2},         {13999, 7002},
    };
    std::mt19937_64 rng(10);
    for (int t = 0; t < 20; ++t) {
      uint64_t from = rng() % values.size();
      spans.push_back(
          {from, rng() % std::min<uint64_t>(12000, values.size() - from)});
    }
    for (const IndexRange& s : spans) {
      ASSERT_EQ(store.RangeSum(s.from, s.len),
                prefix[s.from + s.len] - prefix[s.from])
          << "flush=" << flush << " span [" << s.from << ", +" << s.len << ")";
      Neats::ApproximateAggregate agg = store.ApproximateRangeSum(s.from, s.len);
      double exact = static_cast<double>(prefix[s.from + s.len] - prefix[s.from]);
      ASSERT_LE(std::abs(agg.value - exact), agg.error_bound + 1e-6)
          << "flush=" << flush << " span [" << s.from << ", +" << s.len << ")";
    }
  }
}

TEST(NeatsStore, ParallelQueryFanOutMatchesSequential) {
  // The same multi-shard queries with the fan-out forced on (threshold 1)
  // and forced off (threshold 0) must agree exactly — per-shard int64
  // partial sums reassociate without changing the answer, and decode
  // targets are disjoint output spans. Runs under the TSan CI job.
  std::vector<int64_t> values = BoundedSeries(40000, 13);
  std::vector<int64_t> prefix(values.size() + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  for (uint64_t threshold : {uint64_t{0}, uint64_t{1}}) {
    NeatsStoreOptions options;
    options.shard_size = 5000;  // eight sealed shards
    options.seal_threads = 2;
    options.parallel_query_values = threshold;
    NeatsStore store(options);
    store.Append(values);
    store.Flush();
    std::mt19937_64 rng(14);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<IndexRange> ranges;
      size_t total = 0;
      for (int r = 0; r < 5; ++r) {
        uint64_t from = rng() % values.size();
        uint64_t len =
            1 + rng() % std::min<uint64_t>(15000, values.size() - from);
        ranges.push_back({from, len});
        total += len;
      }
      std::vector<int64_t> got(total);
      store.DecompressRanges(ranges, got.data());
      size_t off = 0;
      for (const IndexRange& r : ranges) {
        for (uint64_t j = 0; j < r.len; ++j) {
          ASSERT_EQ(got[off + j], values[r.from + j])
              << "threshold=" << threshold << " range [" << r.from << ", +"
              << r.len << ") at " << j;
        }
        off += r.len;
      }
      const IndexRange& s = ranges[0];
      ASSERT_EQ(store.RangeSum(s.from, s.len),
                prefix[s.from + s.len] - prefix[s.from])
          << "threshold=" << threshold;
    }
    // The whole series in one call covers every shard at once.
    std::vector<int64_t> all(values.size());
    store.DecompressRange(0, values.size(), all.data());
    EXPECT_EQ(all, values);
    EXPECT_EQ(store.RangeSum(0, values.size()), prefix[values.size()]);
  }
}

// ---------------------------------------------------------------------------
// Durability: append -> seal -> reopen.
// ---------------------------------------------------------------------------

TEST(NeatsStore, AppendSealReopenRoundTripByteIdentity) {
  std::vector<int64_t> values = MixedSeries(25000, 11);
  const uint64_t kShard = 6000;
  std::string dir = TempStoreDir("roundtrip");
  {
    NeatsStoreOptions options;
    options.shard_size = kShard;
    options.seal_threads = 2;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    // Ragged appends must not affect the sealed bytes — only shard_size
    // decides where shards get cut.
    size_t at = 0;
    const size_t slices[] = {1, 4099, 811, 9973};
    size_t s = 0;
    while (at < values.size()) {
      size_t n = std::min(slices[s++ % 4], values.size() - at);
      store.Append({values.data() + at, n});
      at += n;
    }
    store.Flush();
    EXPECT_EQ(store.num_shards(), (values.size() + kShard - 1) / kShard);
  }

  // Every shard blob is byte-identical to compressing that slice directly —
  // the append path adds no hidden state to the sealed form — plus the
  // 16-byte checksum trailer the durability layer appends, which must
  // verify against the payload.
  size_t num_shards = (values.size() + kShard - 1) / kShard;
  for (size_t s = 0; s < num_shards; ++s) {
    size_t first = s * kShard;
    size_t count = std::min<size_t>(kShard, values.size() - first);
    Neats direct = Neats::Compress({values.data() + first, count});
    std::vector<uint8_t> expected;
    direct.Serialize(&expected);
    std::vector<uint8_t> on_disk =
        ReadFile(dir + "/" + StoreManifest::ShardFileName(s));
    TrailerInfo trailer = CheckChecksumTrailer(on_disk);
    ASSERT_EQ(trailer.state, TrailerState::kValid) << "shard " << s;
    std::vector<uint8_t> payload(trailer.payload.begin(),
                                 trailer.payload.end());
    ASSERT_EQ(payload, expected) << "shard " << s;
  }

  // Reopen: zero-copy serving, values bit-identical to a one-shot
  // compression of the full series.
  NeatsStore reopened = NeatsStore::OpenDir(dir);
  ASSERT_EQ(reopened.size(), values.size());
  ASSERT_EQ(reopened.shard_size(), kShard);
  Neats one_shot = Neats::Compress(values);
  for (size_t k = 0; k < values.size(); k += 83) {
    ASSERT_EQ(reopened.Access(k), one_shot.Access(k)) << k;
    ASSERT_EQ(reopened.Access(k), values[k]) << k;
  }

  // A second Flush with no new data must rewrite the manifest verbatim.
  std::vector<uint8_t> manifest_before =
      ReadFile(dir + "/" + StoreManifest::FileName());
  reopened.Flush();
  EXPECT_EQ(ReadFile(dir + "/" + StoreManifest::FileName()), manifest_before);

  // Appending after reopen grows the store and survives another reopen.
  reopened.Append({values.data(), 1234});
  reopened.Flush();
  NeatsStore again = NeatsStore::OpenDir(dir);
  ASSERT_EQ(again.size(), values.size() + 1234);
  for (size_t k = 0; k < 1234; k += 13) {
    ASSERT_EQ(again.Access(values.size() + k), values[k]) << k;
  }
  std::filesystem::remove_all(dir);
}

TEST(NeatsStore, MoveAssignmentDrainsInFlightSeals) {
  // Overwriting a store that still has background seals in flight must not
  // free the chunks those seal tasks read (the sanitizer job would flag a
  // use-after-free here if move assignment skipped the drain).
  std::vector<int64_t> values = MixedSeries(20000, 15);
  NeatsStoreOptions options;
  options.shard_size = 4000;
  options.seal_threads = 2;
  NeatsStore dst(options);
  dst.Append(values);  // several chunks immediately handed to the sealer
  NeatsStore src(options);
  src.Append({values.data(), 5000});
  dst = std::move(src);
  dst.Flush();
  ASSERT_EQ(dst.size(), 5000u);
  for (size_t k = 0; k < 5000; k += 97) {
    ASSERT_EQ(dst.Access(k), values[k]) << k;
  }
}

// ---------------------------------------------------------------------------
// Corrupt-store hardening, matching the blob clobber-sweep suites.
// ---------------------------------------------------------------------------

TEST(NeatsStore, CorruptManifestClobberSweep) {
  std::vector<int64_t> values = MixedSeries(12000, 13);
  std::string dir = TempStoreDir("clobber");
  {
    NeatsStoreOptions options;
    options.shard_size = 5000;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append(values);
    store.Flush();
  }
  const std::string manifest_path = dir + "/" + StoreManifest::FileName();
  std::vector<uint8_t> good = ReadFile(manifest_path);

  // Truncations must be rejected loudly.
  for (size_t keep : {size_t{0}, size_t{7}, good.size() / 2, good.size() - 8}) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(keep));
    WriteFile(manifest_path, cut);
    EXPECT_NEATS_ERROR(NeatsStore::OpenDir(dir), "manifest");
  }

  // Flipping any word of the manifest must either throw a diagnostic or
  // (if ever benign) still open into a store that serves correct values
  // — never a crash or silent misroute.
  for (size_t w = 0; w + 8 <= good.size(); w += 8) {
    std::vector<uint8_t> evil = good;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] ^= 0xFF;
    WriteFile(manifest_path, evil);
    try {
      NeatsStore opened = NeatsStore::OpenDir(dir);
      for (uint64_t k = 0; k < opened.size(); k += 701) {
        ASSERT_EQ(opened.Access(k), values[k])
            << "clobbered manifest word at byte " << w;
      }
    } catch (const Error&) {
      // A loader check caught the clobber — the expected common case.
    }
  }
  WriteFile(manifest_path, good);

  // A shard blob that disagrees with the manifest (truncated file) no
  // longer poisons the whole store: OpenDir quarantines that shard, keeps
  // serving the healthy ones bit-identically, and reports the damage.
  // Queries routed into the quarantined range fail with a typed
  // kUnavailable error instead of a wrong answer.
  const std::string shard0 = dir + "/" + StoreManifest::ShardFileName(0);
  std::vector<uint8_t> blob = ReadFile(shard0);
  std::vector<uint8_t> short_blob(blob.begin(), blob.end() - 8);
  WriteFile(shard0, short_blob);
  {
    NeatsStore degraded = NeatsStore::OpenDir(dir);
    EXPECT_TRUE(degraded.degraded());
    ASSERT_EQ(degraded.recovery_report().quarantined.size(), 1u);
    EXPECT_EQ(degraded.recovery_report().quarantined[0].shard, 0u);
    ASSERT_EQ(degraded.size(), values.size());
    try {
      degraded.Access(17);  // shard 0's range
      FAIL() << "expected a quarantine error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), StatusCode::kUnavailable);
      EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
    }
    for (size_t k = 5000; k < values.size(); k += 977) {
      ASSERT_EQ(degraded.Access(k), values[k]);  // healthy shards serve
    }
  }
  WriteFile(shard0, blob);

  // Restored, the store opens and serves again.
  NeatsStore ok = NeatsStore::OpenDir(dir);
  for (size_t k = 0; k < values.size(); k += 977) {
    ASSERT_EQ(ok.Access(k), values[k]);
  }

  // CreateDir must refuse a directory that already holds a store — a
  // fresh store's seals would clobber the existing blobs out from under
  // the surviving manifest.
  EXPECT_NEATS_ERROR(NeatsStore::CreateDir(dir), "use OpenDir");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Manifest unit coverage.
// ---------------------------------------------------------------------------

TEST(StoreManifest, RoundTripAndValidation) {
  StoreManifest m;
  m.shard_size = 4096;
  m.shards = {{0, 4096, 1000, CodecId::kNeats},
              {4096, 4096, 900, CodecId::kGorilla},
              {8192, 77, 500, CodecId::kLeco}};
  std::vector<uint8_t> bytes;
  m.Serialize(&bytes);
  StoreManifest back = StoreManifest::Deserialize(bytes);
  EXPECT_EQ(back.shard_size, m.shard_size);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].first, m.shards[i].first);
    EXPECT_EQ(back.shards[i].count, m.shards[i].count);
    EXPECT_EQ(back.shards[i].blob_bytes, m.shards[i].blob_bytes);
    EXPECT_EQ(back.shards[i].codec, m.shards[i].codec);
  }
  EXPECT_EQ(back.total(), 8192u + 77u);

  // Non-contiguous coverage is rejected.
  StoreManifest holey = m;
  holey.shards[1].first = 5000;
  std::vector<uint8_t> bad;
  holey.Serialize(&bad);
  EXPECT_NEATS_ERROR(StoreManifest::Deserialize(bad), "corrupt");

  // An unassigned codec id is rejected.
  StoreManifest alien = m;
  alien.shards[1].codec = static_cast<CodecId>(kNumCodecIds + 7);
  std::vector<uint8_t> bad_codec;
  alien.Serialize(&bad_codec);
  EXPECT_NEATS_ERROR(StoreManifest::Deserialize(bad_codec), "corrupt");
}


// ---------------------------------------------------------------------------
// Codec-pluggable shards: fixed non-NeaTS codecs, the auto seal policy,
// manifest v1 -> v2 migration, and the durability/prefetch satellites.
// ---------------------------------------------------------------------------

// Every registered codec can serve a whole store: append -> seal -> flush ->
// reopen, with queries fuzzed against raw ground truth across shard
// boundaries.
TEST(NeatsStoreCodecs, FixedCodecStoresRoundTripAllCodecs) {
  std::vector<int64_t> values = MixedSeries(12000, 17);
  for (CodecId id : CodecRegistry::All()) {
    std::string dir = TempStoreDir(CodecName(id));
    {
      NeatsStoreOptions options;
      options.shard_size = 5000;
      options.seal_threads = 2;
      options.codec = id;
      NeatsStore store = NeatsStore::CreateDir(dir, options);
      store.Append(values);
      store.Flush();
      ASSERT_EQ(store.num_shards(), 3u);
      for (size_t s = 0; s < store.num_shards(); ++s) {
        EXPECT_EQ(store.shard_codec(s), id);
      }
    }
    NeatsStore reopened = NeatsStore::OpenDir(dir);
    ASSERT_EQ(reopened.size(), values.size()) << CodecName(id);
    std::mt19937_64 rng(18);
    for (int trial = 0; trial < 8; ++trial) {
      size_t count = 1 + rng() % 200;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      std::vector<int64_t> out(count);
      reopened.AccessBatch(idx, out);
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]]) << CodecName(id);
      }
      uint64_t from = rng() % (values.size() - 100);
      uint64_t len = 1 + rng() % std::min<uint64_t>(
                              6000, values.size() - from);
      std::vector<int64_t> got(len);
      reopened.DecompressRange(from, len, got.data());
      for (uint64_t j = 0; j < len; ++j) {
        ASSERT_EQ(got[j], values[from + j]) << CodecName(id);
      }
    }
    // The manifest records the codec per shard.
    StoreManifest manifest = StoreManifest::Deserialize(
        ReadFile(dir + "/" + StoreManifest::FileName()));
    for (const StoreManifest::Shard& row : manifest.shards) {
      EXPECT_EQ(row.codec, id);
    }
    std::filesystem::remove_all(dir);
  }
}

// A series whose regimes favour different codecs: a smooth quadratic arc
// (NeaTS stores it as a handful of functions) followed by short runs of
// random 60-bit levels (Gorilla pays one bit per repeat; NeaTS pays two
// 64-bit parameters per run).
std::vector<int64_t> CodecContrastSeries(size_t arc_n, size_t step_n,
                                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(arc_n + step_n);
  for (size_t i = 0; i < arc_n; ++i) {
    double x = static_cast<double>(i);
    values.push_back(1000 + static_cast<int64_t>(0.3 * x + 0.0004 * x * x));
  }
  int64_t level = 0;
  for (size_t i = 0; i < step_n; ++i) {
    if (i % 40 == 0) {
      level = static_cast<int64_t>(rng() & ((uint64_t{1} << 60) - 1));
    }
    values.push_back(level);
  }
  return values;
}

TEST(NeatsStoreCodecs, AutoSealPolicyPicksDistinctCodecsAndRoundTrips) {
  const size_t kShard = 6000;
  std::vector<int64_t> values = CodecContrastSeries(kShard, 2 * kShard, 19);
  std::string dir = TempStoreDir("auto");
  {
    NeatsStoreOptions options;
    options.shard_size = kShard;
    options.seal_threads = 2;
    options.seal_policy = SealPolicy::kAuto;
    options.codec_candidates = {CodecId::kNeats, CodecId::kGorilla,
                                CodecId::kChimp};
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    // Ragged appends, mid-ingest queries against all tiers.
    size_t at = 0;
    const size_t slices[] = {1763, 4099, 811, 2973};
    size_t sl = 0;
    while (at < values.size()) {
      size_t n = std::min(slices[sl++ % 4], values.size() - at);
      store.Append({values.data() + at, n});
      at += n;
      ASSERT_EQ(store.Access(at - 1), values[at - 1]);
    }
    store.Flush();
    ASSERT_EQ(store.num_shards(), 3u);
    // The arc shard compresses best with NeaTS, the step shards with an
    // XOR codec — the auto policy must have mixed codecs in one store.
    EXPECT_EQ(store.shard_codec(0), CodecId::kNeats);
    EXPECT_NE(store.shard_codec(1), CodecId::kNeats);
    std::set<CodecId> distinct;
    for (size_t s = 0; s < store.num_shards(); ++s) {
      distinct.insert(store.shard_codec(s));
    }
    EXPECT_GE(distinct.size(), 2u);
  }

  // Manifest v2 records the mixed codec ids; reopen serves bit-identical
  // values through every query shape.
  StoreManifest manifest = StoreManifest::Deserialize(
      ReadFile(dir + "/" + StoreManifest::FileName()));
  ASSERT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].codec, CodecId::kNeats);
  EXPECT_NE(manifest.shards[1].codec, CodecId::kNeats);

  NeatsStore reopened = NeatsStore::OpenDir(dir);
  ASSERT_EQ(reopened.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 37) {
    ASSERT_EQ(reopened.Access(k), values[k]) << k;
  }
  std::mt19937_64 rng(20);
  for (int trial = 0; trial < 20; ++trial) {
    size_t count = 1 + rng() % 500;
    std::vector<uint64_t> idx(count);
    for (auto& k : idx) k = rng() % values.size();
    std::vector<int64_t> out(count);
    reopened.AccessBatch(idx, out);
    for (size_t j = 0; j < count; ++j) {
      ASSERT_EQ(out[j], values[idx[j]]);
    }
    std::vector<IndexRange> ranges;
    size_t total = 0;
    for (int r = 0; r < 5; ++r) {
      uint64_t from = rng() % values.size();
      uint64_t len = rng() % std::min<uint64_t>(8000, values.size() - from);
      ranges.push_back({from, len});
      total += len;
    }
    std::vector<int64_t> got(total);
    reopened.DecompressRanges(ranges, got.data());
    size_t off = 0;
    for (const IndexRange& r : ranges) {
      for (uint64_t j = 0; j < r.len; ++j) {
        ASSERT_EQ(got[off + j], values[r.from + j]);
      }
      off += r.len;
    }
  }
  std::filesystem::remove_all(dir);
}

// The manifest persists per-shard geometry and codec ids, not the seal
// policy — a caller reopening with kAuto options keeps choosing codecs per
// shard, and one reopening with defaults seals kFixed/kNeats.
TEST(NeatsStoreCodecs, SealPolicyComesFromOpenOptionsAfterReopen) {
  const size_t kShard = 6000;
  std::vector<int64_t> values = CodecContrastSeries(kShard, kShard, 25);
  std::string dir = TempStoreDir("reopen_policy");
  NeatsStoreOptions options;
  options.shard_size = kShard;
  options.seal_policy = SealPolicy::kAuto;
  options.codec_candidates = {CodecId::kNeats, CodecId::kGorilla};
  {
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append(values);
    store.Flush();
    ASSERT_EQ(store.num_shards(), 2u);
    ASSERT_NE(store.shard_codec(1), CodecId::kNeats);  // the step shard
  }
  // Reopen with the same options: appending another step shard must again
  // go through the auto policy and pick the XOR codec.
  {
    NeatsStore store = NeatsStore::OpenDir(dir, options);
    std::vector<int64_t> more(values.begin() + static_cast<ptrdiff_t>(kShard),
                              values.end());
    store.Append(more);
    store.Flush();
    ASSERT_EQ(store.num_shards(), 3u);
    EXPECT_NE(store.shard_codec(2), CodecId::kNeats);
    for (size_t k = 0; k < more.size(); k += 101) {
      ASSERT_EQ(store.Access(values.size() + k), more[k]);
    }
  }
  // Reopen with default options: the policy is NOT persisted, so the next
  // sealed shard is kFixed/kNeats — the documented contract.
  {
    NeatsStore store = NeatsStore::OpenDir(dir);
    store.Append({values.data(), kShard});
    store.Flush();
    ASSERT_EQ(store.num_shards(), 4u);
    EXPECT_EQ(store.shard_codec(3), CodecId::kNeats);
  }
  std::filesystem::remove_all(dir);
}

// Exact range sums and approximate aggregates hold across mixed-codec
// boundaries: NeaTS shards answer from the learned functions with a bound,
// non-NeaTS shards answer exactly with a zero bound, and the not-yet-sealed
// tiers contribute exactly. Magnitudes are bounded so the double arithmetic
// of the aggregate stays exact (see BoundedSeries).
TEST(NeatsStoreCodecs, AggregatesAcrossMixedCodecShards) {
  // Bounded contrast series: a quadratic arc shard (NeaTS wins) followed by
  // step shards of 40-value runs at random 17-bit levels (Gorilla wins).
  std::mt19937_64 gen(21);
  std::vector<int64_t> values;
  for (size_t i = 0; i < 6000; ++i) {
    double x = static_cast<double>(i);
    values.push_back(1000 + static_cast<int64_t>(0.3 * x + 0.0004 * x * x));
  }
  int64_t level = 0;
  while (values.size() < 18000) {
    if (values.size() % 40 == 0) {
      level = static_cast<int64_t>(gen() & 0x1FFFF);
    }
    values.push_back(level);
  }
  NeatsStoreOptions options;
  options.shard_size = 6000;
  options.seal_threads = 2;
  options.seal_policy = SealPolicy::kAuto;
  options.codec_candidates = {CodecId::kNeats, CodecId::kGorilla};
  NeatsStore store(options);
  store.Append({values.data(), 13000});
  store.Flush();  // two sealed shards (arc -> NeaTS, steps -> Gorilla)
  store.Append({values.data() + 13000, values.size() - 13000});
  // Mid-ingest: one pending/sealing chunk plus a raw tail remain.
  ASSERT_EQ(store.size(), values.size());
  std::set<CodecId> distinct;
  for (size_t sh = 0; sh < store.num_shards(); ++sh) {
    distinct.insert(store.shard_codec(sh));
  }
  EXPECT_GE(distinct.size(), 2u);

  std::vector<int64_t> prefix(values.size() + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i + 1] = prefix[i] + values[i];
  }
  std::mt19937_64 rng(22);
  for (int t = 0; t < 25; ++t) {
    uint64_t from = rng() % values.size();
    uint64_t len = rng() % std::min<uint64_t>(9000, values.size() - from);
    ASSERT_EQ(store.RangeSum(from, len), prefix[from + len] - prefix[from]);
    Neats::ApproximateAggregate agg = store.ApproximateRangeSum(from, len);
    double exact = static_cast<double>(prefix[from + len] - prefix[from]);
    ASSERT_LE(std::abs(agg.value - exact), agg.error_bound + 1e-6);
  }
  ASSERT_EQ(store.RangeSum(0, values.size()), prefix[values.size()]);
}

// A version-1 manifest (three words per shard, written before codec ids
// and checksums existed) opens forever: every shard defaults to NeaTS, the
// open reports an upgrade warning, queries serve, and the next Flush
// upgrades the file to the current checksummed version 3 in place.
TEST(NeatsStoreCodecs, ManifestV1MigratesForward) {
  std::vector<int64_t> values = MixedSeries(11000, 23);
  std::string dir = TempStoreDir("migrate");
  {
    NeatsStoreOptions options;
    options.shard_size = 4000;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append(values);
    store.Flush();
  }
  const std::string manifest_path = dir + "/" + StoreManifest::FileName();
  StoreManifest parsed =
      StoreManifest::Deserialize(ReadFile(manifest_path));

  // Rewrite the manifest in the legacy v1 layout by hand.
  std::vector<uint8_t> v1;
  WordWriter w(&v1);
  uint64_t magic;
  std::memcpy(&magic, ReadFile(manifest_path).data(), 8);
  w.Put(magic);
  w.Put(1);  // version
  w.Put(parsed.shard_size);
  w.Put(parsed.shards.size());
  for (const StoreManifest::Shard& row : parsed.shards) {
    w.Put(row.first);
    w.Put(row.count);
    w.Put(row.blob_bytes);
  }
  WriteFile(manifest_path, v1);

  // The v1 parse defaults every shard to NeaTS and warns about the old
  // version instead of rejecting it.
  std::vector<std::string> warnings;
  StoreManifest migrated = StoreManifest::Deserialize(v1, &warnings);
  ASSERT_EQ(migrated.shards.size(), parsed.shards.size());
  for (const StoreManifest::Shard& row : migrated.shards) {
    EXPECT_EQ(row.codec, CodecId::kNeats);
    EXPECT_FALSE(row.has_crc);
  }
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("version 1"), std::string::npos);

  NeatsStore reopened = NeatsStore::OpenDir(dir);
  ASSERT_EQ(reopened.size(), values.size());
  EXPECT_FALSE(reopened.degraded());
  ASSERT_FALSE(reopened.recovery_report().warnings.empty());
  for (size_t k = 0; k < values.size(); k += 233) {
    ASSERT_EQ(reopened.Access(k), values[k]);
  }
  // Flush rewrites the manifest as checksummed v3, backfilling per-shard
  // CRCs from the blobs — and it round-trips idempotently.
  reopened.Flush();
  std::vector<uint8_t> after = ReadFile(manifest_path);
  EXPECT_NE(after, v1);
  warnings.clear();
  StoreManifest upgraded = StoreManifest::Deserialize(after, &warnings);
  EXPECT_TRUE(warnings.empty());  // current version: no upgrade nag
  ASSERT_EQ(upgraded.shards.size(), parsed.shards.size());
  for (const StoreManifest::Shard& row : upgraded.shards) {
    EXPECT_TRUE(row.has_crc);
  }
  reopened.Flush();
  EXPECT_EQ(ReadFile(manifest_path), after);
  std::filesystem::remove_all(dir);
}

// A version-2 manifest (four words per shard: codec ids, but no checksums)
// also loads forever: the mixed per-shard codecs are preserved, the open
// warns, and the next Flush upgrades to v3 with backfilled blob CRCs.
TEST(NeatsStoreCodecs, ManifestV2MigratesForward) {
  std::vector<int64_t> values = CodecContrastSeries(4000, 8000, 27);
  std::string dir = TempStoreDir("migrate_v2");
  {
    NeatsStoreOptions options;
    options.shard_size = 4000;
    options.seal_policy = SealPolicy::kAuto;
    options.codec_candidates = {CodecId::kNeats, CodecId::kGorilla};
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append(values);
    store.Flush();
  }
  const std::string manifest_path = dir + "/" + StoreManifest::FileName();
  StoreManifest parsed = StoreManifest::Deserialize(ReadFile(manifest_path));
  ASSERT_GE(parsed.shards.size(), 2u);
  ASSERT_NE(parsed.shards[0].codec, parsed.shards[1].codec);

  // Rewrite the manifest in the legacy v2 layout by hand.
  std::vector<uint8_t> v2;
  WordWriter w(&v2);
  uint64_t magic;
  std::memcpy(&magic, ReadFile(manifest_path).data(), 8);
  w.Put(magic);
  w.Put(2);  // version
  w.Put(parsed.shard_size);
  w.Put(parsed.shards.size());
  for (const StoreManifest::Shard& row : parsed.shards) {
    w.Put(row.first);
    w.Put(row.count);
    w.Put(row.blob_bytes);
    w.Put(static_cast<uint64_t>(row.codec));
  }
  WriteFile(manifest_path, v2);

  std::vector<std::string> warnings;
  StoreManifest migrated = StoreManifest::Deserialize(v2, &warnings);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("version 2"), std::string::npos);
  ASSERT_EQ(migrated.shards.size(), parsed.shards.size());
  for (size_t i = 0; i < migrated.shards.size(); ++i) {
    EXPECT_EQ(migrated.shards[i].codec, parsed.shards[i].codec);
    EXPECT_FALSE(migrated.shards[i].has_crc);
  }

  NeatsStore reopened = NeatsStore::OpenDir(dir);
  EXPECT_FALSE(reopened.degraded());
  ASSERT_EQ(reopened.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 311) {
    ASSERT_EQ(reopened.Access(k), values[k]) << k;
  }
  reopened.Flush();
  StoreManifest upgraded =
      StoreManifest::Deserialize(ReadFile(manifest_path));
  ASSERT_EQ(upgraded.shards.size(), parsed.shards.size());
  for (size_t i = 0; i < upgraded.shards.size(); ++i) {
    EXPECT_EQ(upgraded.shards[i].codec, parsed.shards[i].codec);
    EXPECT_TRUE(upgraded.shards[i].has_crc);
  }
  std::filesystem::remove_all(dir);
}

// Durability satellite: the fsync'd write path round-trips bytes exactly
// (behavioural fsync coverage needs power-loss injection; this pins the
// plumbing) and the prefetch satellite: every Advise hint is accepted on a
// real mapping.
TEST(NeatsStoreCodecs, DurableWriteAndAdviseSmoke) {
  std::string dir = TempStoreDir("durable");
  std::filesystem::create_directories(dir);
  std::vector<uint8_t> payload(12345);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131);
  }
  WriteFileDurable(dir + "/blob", payload);
  SyncDir(dir);
  EXPECT_EQ(ReadFile(dir + "/blob"), payload);
  // Overwrite must truncate, not append.
  std::vector<uint8_t> shorter(100, 0x5A);
  WriteFileDurable(dir + "/blob", shorter);
  EXPECT_EQ(ReadFile(dir + "/blob"), shorter);

  MmapFile map = MmapFile::Open(dir + "/blob");
  map.Advise(MmapFile::Advice::kWillNeed);
  map.Advise(MmapFile::Advice::kSequential);
  map.Advise(MmapFile::Advice::kRandom);
  map.Advise(MmapFile::Advice::kNormal);
  EXPECT_EQ(map.size(), shorter.size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace neats
