// The scenario engine's own suite (ISSUE: scenario engine).
//
// Covers the three layers: the latency histogram (bucketing math,
// percentile accuracy, merging), the registry/runner contract (named,
// seeded, deterministic — same seed, same workload trace), and a smoke
// run of every built-in scenario at ctest scale. Plus the two store-layer
// satellites the scenarios lean on: block_cache_stats() accuracy under
// concurrent Access, and reopen-under-load bit-identity on the real
// filesystem.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "datasets/generators.hpp"
#include "scenario/scenarios.hpp"

namespace neats {
namespace {

using scenario::BuiltinScenarios;
using scenario::LatencyHistogram;
using scenario::Rng;
using scenario::RunScenario;
using scenario::Scenario;
using scenario::ScenarioOptions;
using scenario::ScenarioRegistry;
using scenario::ScenarioResult;
using scenario::TaskGroup;

// ---------------------------------------------------------------------------
// LatencyHistogram.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSub; ++v) h.Record(v);
  EXPECT_EQ(h.count(), LatencyHistogram::kSub);
  EXPECT_EQ(h.max(), LatencyHistogram::kSub - 1);
  // With one sample per unit bucket, every quantile is the exact value.
  EXPECT_EQ(h.Percentile(1.0 / LatencyHistogram::kSub), 0u);
  EXPECT_EQ(h.p50(), LatencyHistogram::kSub / 2 - 1);
  EXPECT_EQ(h.Percentile(1.0), LatencyHistogram::kSub - 1);
}

TEST(LatencyHistogram, PercentilesWithinRelativeErrorBound) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  // Bucket width / value <= 2^-kSubBits, so any reported percentile sits
  // within ~3.2% of the true rank value.
  const double bound = 1.0 / (1 << LatencyHistogram::kSubBits);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double want = q * 100000;
    const double got = static_cast<double>(h.Percentile(q));
    EXPECT_NEAR(got, want, want * bound) << "q=" << q;
  }
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  Rng rng(99, 0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max(), both.max());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Percentile(q), both.Percentile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, HugeValuesBucketSanely) {
  LatencyHistogram h;
  const uint64_t huge = uint64_t{1} << 62;
  h.Record(huge);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge);
  const double got = static_cast<double>(h.Percentile(1.0));
  EXPECT_NEAR(got, static_cast<double>(huge), static_cast<double>(huge) * 0.04);
}

// ---------------------------------------------------------------------------
// Registry and runner.
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, BuiltinsRegisteredOnceEach) {
  const ScenarioRegistry& reg = BuiltinScenarios();
  EXPECT_GE(reg.All().size(), 6u);
  for (const char* name :
       {"steady_ingest_point_storm", "dashboard_fanout",
        "burst_append_during_seal", "reopen_under_load",
        "mixed_codec_auto_churn", "corrupt_shard_recovery"}) {
    const Scenario* s = reg.Find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name, name);
    EXPECT_FALSE(s->description.empty());
  }
  EXPECT_EQ(reg.Find("no_such_scenario"), nullptr);
  // Registration is idempotent through the public entry point.
  scenario::RegisterBuiltinScenarios();
  EXPECT_EQ(BuiltinScenarios().All().size(), reg.All().size());
}

TEST(ScenarioRegistry, DuplicateNameRejected) {
  scenario::RegisterBuiltinScenarios();
  EXPECT_THROW(ScenarioRegistry::Instance().Register(
                   {"dashboard_fanout", "dup", [](auto&) {}}),
               Error);
}

// Every built-in runs clean at smoke scale, verifies reads, and reports
// coherent percentiles for every op it timed.
TEST(Scenarios, AllBuiltinsSmoke) {
  ScenarioOptions options;
  options.seed = 3;
  options.scale = 1;
  options.readers = 2;
  for (const Scenario& s : BuiltinScenarios().All()) {
    SCOPED_TRACE(s.name);
    const ScenarioResult r = RunScenario(s, options);
    EXPECT_EQ(r.name, s.name);
    EXPECT_EQ(r.options.seed, options.seed);
    EXPECT_GT(r.values_ingested, 0u);
    EXPECT_GT(r.reads_verified, 0u);
    EXPECT_FALSE(r.ops.empty());
    for (const auto& [op, h] : r.ops) {
      SCOPED_TRACE(op);
      EXPECT_GT(h.count(), 0u);
      EXPECT_LE(h.p50(), h.p99());
      EXPECT_LE(h.p99(), h.p999());
      EXPECT_LE(h.p999(), h.max());
    }
    if (s.name == "corrupt_shard_recovery") {
      // The quarantine window is part of the script: typed failures are
      // counted, never silent.
      EXPECT_GT(r.unavailable_reads, 0u);
    } else {
      EXPECT_EQ(r.unavailable_reads, 0u);
    }
  }
}

// The determinism contract: the workload trace is a pure function of the
// options — same seed, same schedule-independent fingerprint, on every
// built-in; a different seed diverges.
TEST(Scenarios, SameSeedSameTrace) {
  ScenarioOptions options;
  options.seed = 11;
  options.scale = 1;
  options.readers = 2;
  for (const Scenario& s : BuiltinScenarios().All()) {
    SCOPED_TRACE(s.name);
    const ScenarioResult first = RunScenario(s, options);
    const ScenarioResult second = RunScenario(s, options);
    EXPECT_EQ(first.trace_fingerprint, second.trace_fingerprint);
    EXPECT_EQ(first.values_ingested, second.values_ingested);
  }
}

TEST(Scenarios, DifferentSeedDifferentTrace) {
  const Scenario* s = BuiltinScenarios().Find("steady_ingest_point_storm");
  ASSERT_NE(s, nullptr);
  ScenarioOptions options;
  options.readers = 2;
  options.seed = 11;
  const ScenarioResult a = RunScenario(*s, options);
  options.seed = 12;
  const ScenarioResult b = RunScenario(*s, options);
  EXPECT_NE(a.trace_fingerprint, b.trace_fingerprint);
}

// A failing verification must print the one-line repro.
TEST(Scenarios, FailureCarriesReproLine) {
  Scenario bad{"always_fails", "test-only",
               [](scenario::ScenarioContext& ctx) {
                 ctx.Check(false, "synthetic failure");
               }};
  ScenarioOptions options;
  options.seed = 77;
  try {
    RunScenario(bad, options);
    FAIL() << "expected a scenario failure";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario=always_fails"), std::string::npos) << what;
    EXPECT_NE(what.find("seed=77"), std::string::npos) << what;
    EXPECT_NE(what.find("synthetic failure"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Satellite: block_cache_stats() accuracy under concurrent Access.
// ---------------------------------------------------------------------------

// N threads of scalar Access against block-codec shards with a tiny
// eviction budget: every probe is exactly one cache consult, so
// hits + misses must equal the probe count, and the accounted bytes must
// never exceed the budget even while eviction churns.
TEST(BlockCacheStats, AccurateUnderConcurrentAccess) {
  constexpr uint64_t kN = 16000;
  constexpr uint64_t kShard = 2000;     // 2 Gorilla blocks (1000 values) each
  constexpr uint64_t kBudget = 25000;   // ~3 decoded blocks: constant churn
  constexpr int kThreads = 4;
  constexpr uint64_t kProbesPerThread = 4000;

  const std::vector<int64_t> values =
      scenario::scenarios_internal::StepSeries(kN, 5);
  NeatsStoreOptions options;
  options.shard_size = kShard;
  options.codec = CodecId::kGorilla;
  options.seal_threads = 1;
  options.block_cache_bytes = kBudget;
  NeatsStore store(options);
  store.Append({values.data(), values.size()});
  store.Flush();
  ASSERT_EQ(store.num_shards(), kN / kShard);  // fully sealed: every probe
                                               // goes through the cache

  TaskGroup group(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    group.Spawn([&, t] {
      Rng rng(17, static_cast<uint64_t>(t));
      for (uint64_t p = 0; p < kProbesPerThread; ++p) {
        const uint64_t idx = rng.Below(kN);
        const int64_t got = store.Access(idx);
        if (got != values[idx]) {
          throw Error("cache-path read diverges at " + std::to_string(idx));
        }
      }
    });
  }
  group.Wait();

  const DecodedBlockCache::Stats stats = store.block_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kProbesPerThread);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);  // the budget is 3 blocks of 16: churn
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GT(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: reopen-under-load on the real filesystem.
// ---------------------------------------------------------------------------

// Flush + OpenDir of the same directory while readers drain the old
// handle: both handles must serve bit-identical values throughout.
TEST(ReopenUnderLoad, OldAndFreshHandlesBitIdentical) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("neats_scenario_reopen_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  struct Cleanup {
    std::filesystem::path dir;
    ~Cleanup() { std::filesystem::remove_all(dir); }
  } cleanup{dir};

  constexpr uint64_t kN = 8192;
  const Dataset ds = MakeDataset("GE", kN, 21);
  NeatsStoreOptions options;
  options.shard_size = 1024;
  options.codec = CodecId::kGorilla;
  options.seal_threads = 1;
  NeatsStore store = NeatsStore::CreateDir(dir.string(), options);
  store.Append({ds.values.data(), ds.values.size()});
  store.Flush();

  std::atomic<uint64_t> mismatches{0};
  TaskGroup group(3);
  for (int r = 0; r < 2; ++r) {
    group.Spawn([&, r] {  // drain the old handle
      Rng rng(21, static_cast<uint64_t>(r) + 1);
      for (uint64_t p = 0; p < 4096; ++p) {
        const uint64_t idx = rng.Below(kN);
        if (store.Access(idx) != ds.values[idx]) ++mismatches;
      }
    });
  }
  group.Spawn([&] {  // reopen the same directory, repeatedly, while loaded
    Rng rng(21, 99);
    for (int round = 0; round < 3; ++round) {
      NeatsStore fresh = NeatsStore::OpenDir(dir.string(), options);
      if (fresh.degraded() || fresh.size() != kN) {
        ++mismatches;
        return;
      }
      std::vector<int64_t> sweep(kN);
      fresh.DecompressRange(0, kN, sweep.data());
      for (uint64_t i = 0; i < kN; ++i) {
        if (sweep[i] != ds.values[i]) ++mismatches;
      }
      for (uint64_t p = 0; p < 1024; ++p) {
        const uint64_t idx = rng.Below(kN);
        if (fresh.Access(idx) != ds.values[idx]) ++mismatches;
      }
    }
  });
  group.Wait();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: the generator seed is explicit and recorded.
// ---------------------------------------------------------------------------

TEST(Generators, SeedIsExplicitAndRecorded) {
  const Dataset a = MakeDataset("CT", 4096, 1);
  const Dataset b = MakeDataset("CT", 4096, 1);
  const Dataset c = MakeDataset("CT", 4096, 2);
  EXPECT_EQ(a.seed, 1u);
  EXPECT_EQ(c.seed, 2u);
  EXPECT_EQ(a.values, b.values);   // same seed, same data
  EXPECT_NE(a.values, c.values);   // different seed, different data
}

}  // namespace
}  // namespace neats
