// Randomized and adversarial coverage for the overhauled succinct layer:
//   - EliasFano::Rank/Access fuzz against std::upper_bound on dense, sparse,
//     single-bucket pile-up and empty distributions (the word-wise bucket
//     scan and the sampled select directories both get exercised),
//   - RankSelect sampled Select1/Select0 at scale via rank/select inverse
//     invariants, plus OnesRunLength on constructed runs,
//   - format v1/v2 -> v3 migration (legacy blobs still deserialize,
//     re-serialize canonically as v3) and view-vs-owned byte identity,
//   - the interleaved fragment directory against the legacy S/B/O/K/D
//     metadata path (equality fuzz on owned, heap-view and mmap-view opens)
//     and a clobber sweep over the v3 directory section,
//   - Cursor::Seek backward hops against Access ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <random>
#include <vector>

#include "core/neats.hpp"
#include "core/neats_lossy.hpp"
#include "datasets/generators.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"
#include "require_error.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/elias_fano.hpp"

namespace neats {

/// Test-only backdoor: emits the legacy v1 and v2 serializations (the
/// formats shipped before v3's interleaved directory section) so the
/// migration paths stay covered without keeping old writers in production
/// code.
class NeatsTestPeer {
 public:
  /// The flat v2 layout: identical to the v3 writer minus the trailing
  /// fragment-directory section, with the version word at 2.
  static std::vector<uint8_t> SerializeV2(const Neats& c) {
    std::vector<uint8_t> out;
    WordWriter w(&out);
    w.Put(Neats::kMagicV2);
    w.Put(2);  // the pre-directory version word
    w.Put(c.n_);
    w.Put(static_cast<uint64_t>(c.m_));
    w.Put(static_cast<uint64_t>(c.shift_));
    w.Put(c.starts_mode_ == StartsIndex::kEliasFano ? 0 : 1);
    w.Put(c.kind_table_.size());
    for (FunctionKind kind : c.kind_table_) w.Put(static_cast<uint64_t>(kind));
    if (c.m_ > 0) {
      if (c.starts_mode_ == StartsIndex::kEliasFano) {
        c.starts_ef_.Serialize(w);
      } else {
        c.starts_bv_.Serialize(w);
      }
      c.widths_.Serialize(w);
      c.displacement_.Serialize(w);
      c.offsets_.Serialize(w);
      c.kinds_wt_.Serialize(w);
    }
    w.PutArray(c.corrections_);
    w.Put(c.params_.size());
    for (const auto& p : c.params_) w.PutArray(p);
    return out;
  }
  static std::vector<uint8_t> SerializeV1(const Neats& c) {
    std::vector<uint8_t> out;
    auto put64 = [&out](uint64_t v) {
      for (int b = 0; b < 8; ++b) out.push_back(static_cast<uint8_t>(v >> (8 * b)));
    };
    put64(Neats::kMagicV1);
    put64(c.n_);
    put64(static_cast<uint64_t>(c.m_));
    put64(static_cast<uint64_t>(c.shift_));
    put64(c.starts_mode_ == StartsIndex::kEliasFano ? 0 : 1);
    put64(c.kind_table_.size());
    for (FunctionKind kind : c.kind_table_) put64(static_cast<uint64_t>(kind));
    for (size_t i = 0; i < c.m_; ++i) {
      put64(c.FragmentStart(i));
      put64(c.kinds_wt_.Access(i));
      put64(c.widths_[i]);
      put64(c.displacement_[i]);
    }
    for (const auto& p : c.params_) {
      put64(p.size());
      for (size_t i = 0; i < p.size(); ++i) put64(std::bit_cast<uint64_t>(p[i]));
    }
    put64(c.offsets_.size() == 0 ? 0 : c.offsets_.Access(c.m_));
    put64(c.corrections_.size());
    for (size_t i = 0; i < c.corrections_.size(); ++i) put64(c.corrections_[i]);
    return out;
  }
};

namespace {

// ---------------------------------------------------------------------------
// EliasFano fuzz vs std::upper_bound.
// ---------------------------------------------------------------------------

size_t NaiveRank(const std::vector<uint64_t>& values, uint64_t x) {
  return static_cast<size_t>(
      std::upper_bound(values.begin(), values.end(), x) - values.begin());
}

void FuzzSequence(const std::vector<uint64_t>& values, uint64_t seed) {
  EliasFano ef(values);
  ASSERT_EQ(ef.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(ef.Access(i), values[i]) << "access at " << i;
  }
  auto check_probe = [&](uint64_t x) {
    size_t r = NaiveRank(values, x);
    ASSERT_EQ(ef.Rank(x), r) << "rank of " << x;
    if (r > 0) {  // fused predecessor must agree with rank + access
      auto [pi, pv] = ef.Predecessor(x);
      ASSERT_EQ(pi, r - 1) << "predecessor index of " << x;
      ASSERT_EQ(pv, values[r - 1]) << "predecessor value of " << x;
    }
  };
  // Adversarial probes: every value and its neighbours...
  for (uint64_t v : values) {
    for (uint64_t x : {v == 0 ? 0 : v - 1, v, v + 1}) check_probe(x);
  }
  // ... plus uniform random probes over a slightly padded universe.
  if (!values.empty()) {
    std::mt19937_64 rng(seed);
    for (int t = 0; t < 2000; ++t) check_probe(rng() % (values.back() + 3));
  }
}

TEST(EliasFanoFuzz, Empty) {
  EliasFano ef{std::vector<uint64_t>{}};
  EXPECT_EQ(ef.Rank(0), 0u);
  EXPECT_EQ(ef.Rank(~0ULL), 0u);
}

TEST(EliasFanoFuzz, DenseConsecutiveAndNearConsecutive) {
  std::vector<uint64_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  FuzzSequence(values, 1);
  std::mt19937_64 rng(2);
  uint64_t cur = 0;
  for (auto& v : values) v = (cur += rng() % 2);  // duplicates + steps
  FuzzSequence(values, 3);
}

TEST(EliasFanoFuzz, SparseHugeGaps) {
  std::mt19937_64 rng(4);
  std::vector<uint64_t> values;
  uint64_t cur = 0;
  for (int i = 0; i < 1500; ++i) {
    cur += 1 + (rng() % (1ULL << 40));
    values.push_back(cur);
  }
  FuzzSequence(values, 5);
}

TEST(EliasFanoFuzz, SingleBucketPileUps) {
  // Long runs of equal values land in one high bucket and stress the
  // in-bucket binary search (bucket length >> linear-probe threshold).
  std::vector<uint64_t> values;
  for (uint64_t v : {uint64_t{7}, uint64_t{7000}, uint64_t{1} << 35}) {
    for (int i = 0; i < 700; ++i) values.push_back(v);
  }
  FuzzSequence(values, 6);
  // All-equal corner: one bucket holds the entire sequence.
  FuzzSequence(std::vector<uint64_t>(3000, 42), 7);
}

TEST(EliasFanoFuzz, MixedAdversarialRounds) {
  std::mt19937_64 rng(8);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> values;
    uint64_t cur = 0;
    int len = 500 + static_cast<int>(rng() % 2500);
    for (int i = 0; i < len; ++i) {
      switch (rng() % 4) {
        case 0: break;                         // duplicate
        case 1: cur += rng() % 3; break;       // dense
        case 2: cur += rng() % 1000; break;    // medium
        default: cur += rng() % (1ULL << 33);  // sparse jump
      }
      values.push_back(cur);
    }
    FuzzSequence(values, 100 + static_cast<uint64_t>(round));
  }
}

// ---------------------------------------------------------------------------
// RankSelect sampled select directories at scale.
// ---------------------------------------------------------------------------

void CheckSelectInverse(const RankSelect& rs) {
  const uint64_t ones = rs.ones();
  const uint64_t zeros = rs.size() - ones;
  // Dense probe of the first/last few plus a stride across the middle; the
  // inverse invariants pin Select to the exact bit.
  auto probe1 = [&](uint64_t k) {
    size_t pos = rs.Select1(k);
    ASSERT_TRUE(rs.Get(pos)) << "select1(" << k << ")";
    ASSERT_EQ(rs.Rank1(pos), k);
  };
  auto probe0 = [&](uint64_t k) {
    size_t pos = rs.Select0(k);
    ASSERT_FALSE(rs.Get(pos)) << "select0(" << k << ")";
    ASSERT_EQ(rs.Rank0(pos), k);
  };
  for (uint64_t k = 0; k < std::min<uint64_t>(ones, 700); ++k) probe1(k);
  for (uint64_t k = 0; k < ones; k += 509) probe1(k);
  if (ones > 0) probe1(ones - 1);
  for (uint64_t k = 0; k < std::min<uint64_t>(zeros, 700); ++k) probe0(k);
  for (uint64_t k = 0; k < zeros; k += 509) probe0(k);
  if (zeros > 0) probe0(zeros - 1);
}

TEST(RankSelectSampled, LargeAtExtremeDensities) {
  for (int permille : {1, 50, 500, 950, 999}) {
    std::mt19937_64 rng(static_cast<uint64_t>(permille) * 31 + 5);
    BitVector bv(300000);
    for (size_t i = 0; i < bv.size(); ++i) {
      if (static_cast<int>(rng() % 1000) < permille) bv.Set(i);
    }
    RankSelect rs{std::move(bv)};
    CheckSelectInverse(rs);
  }
}

TEST(RankSelectSampled, ClusteredRuns) {
  // Alternating solid runs of ones and zeros make the sampled directories
  // maximally uneven (many superblocks between consecutive samples).
  BitVector bv(200000);
  bool on = false;
  size_t i = 0;
  std::mt19937_64 rng(17);
  while (i < bv.size()) {
    size_t run = 1 + rng() % 3000;
    for (size_t j = 0; j < run && i < bv.size(); ++j, ++i) {
      if (on) bv.Set(i);
    }
    on = !on;
  }
  RankSelect rs{std::move(bv)};
  CheckSelectInverse(rs);
}

TEST(RankSelectSampled, OnesRunLength) {
  BitVector bv(1000);
  // Runs at word-straddling offsets: [5,9), [60,200), [500,1000).
  for (size_t i = 5; i < 9; ++i) bv.Set(i);
  for (size_t i = 60; i < 200; ++i) bv.Set(i);
  for (size_t i = 500; i < 1000; ++i) bv.Set(i);
  RankSelect rs{std::move(bv)};
  EXPECT_EQ(rs.OnesRunLength(5), 4u);
  EXPECT_EQ(rs.OnesRunLength(7), 2u);
  EXPECT_EQ(rs.OnesRunLength(60), 140u);
  EXPECT_EQ(rs.OnesRunLength(63), 137u);
  EXPECT_EQ(rs.OnesRunLength(64), 136u);
  EXPECT_EQ(rs.OnesRunLength(199), 1u);
  EXPECT_EQ(rs.OnesRunLength(500), 500u);  // run ends at the vector's end
  EXPECT_EQ(rs.OnesRunLength(999), 1u);
}

// ---------------------------------------------------------------------------
// Format migration and zero-copy views.
// ---------------------------------------------------------------------------

std::vector<int64_t> TestSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  int64_t cur = -1000;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng() % 61) - 30;
    values.push_back(cur);
  }
  return values;
}

TEST(FormatV2, V1BlobsStillDeserialize) {
  for (auto mode : {StartsIndex::kEliasFano, StartsIndex::kBitVector}) {
    NeatsOptions options;
    options.starts_index = mode;
    std::vector<int64_t> values = TestSeries(12000, 21);
    Neats original = Neats::Compress(values, options);

    std::vector<uint8_t> v1 = NeatsTestPeer::SerializeV1(original);
    Neats from_v1 = Neats::Deserialize(v1);
    ASSERT_EQ(from_v1.size(), values.size());
    std::vector<int64_t> decoded;
    from_v1.Decompress(&decoded);
    EXPECT_EQ(decoded, values);
    for (size_t k = 0; k < values.size(); k += 173) {
      ASSERT_EQ(from_v1.Access(k), values[k]);
    }

    // A v1-loaded object re-serializes canonically as v2, byte-identical to
    // the v2 serialization of the originally compressed object.
    std::vector<uint8_t> v2_direct, v2_migrated;
    original.Serialize(&v2_direct);
    from_v1.Serialize(&v2_migrated);
    EXPECT_EQ(v2_direct, v2_migrated);
    EXPECT_TRUE(Neats::IsZeroCopyOpenable(v2_direct));
    EXPECT_FALSE(Neats::IsZeroCopyOpenable(v1));
  }
}

TEST(FormatV2, ViewMatchesOwnedByteForByte) {
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 4000);
    Neats original = Neats::Compress(ds.values);
    std::vector<uint8_t> bytes;
    original.Serialize(&bytes);

    Neats owned = Neats::Deserialize(bytes);
    Neats viewed = Neats::View(bytes);
    EXPECT_FALSE(owned.borrowed());
    EXPECT_TRUE(viewed.borrowed());

    // Identical query results...
    std::vector<int64_t> a, b;
    owned.Decompress(&a);
    viewed.Decompress(&b);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, ds.values);
    for (size_t k = 0; k < ds.values.size(); k += 97) {
      ASSERT_EQ(viewed.Access(k), ds.values[k]);
    }
    EXPECT_EQ(viewed.RangeSum(7, 1000), owned.RangeSum(7, 1000));

    // ... and byte-identical re-serialization from both open paths.
    std::vector<uint8_t> from_owned, from_view;
    owned.Serialize(&from_owned);
    viewed.Serialize(&from_view);
    EXPECT_EQ(bytes, from_owned);
    EXPECT_EQ(bytes, from_view);
  }
}

TEST(FormatV2, EmptyAndTinySeries) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}}) {
    std::vector<int64_t> values = TestSeries(n, 33);
    Neats original = Neats::Compress(values);
    std::vector<uint8_t> bytes;
    original.Serialize(&bytes);
    Neats viewed = Neats::View(bytes);
    Neats owned = Neats::Deserialize(bytes);
    EXPECT_EQ(viewed.size(), n);
    std::vector<int64_t> decoded;
    owned.Decompress(&decoded);
    EXPECT_EQ(decoded, values);
    viewed.Decompress(&decoded);
    EXPECT_EQ(decoded, values);
  }
}

TEST(FormatV2, SizeInBitsMatchesSerializedBytes) {
  // SizeInBits is documented as exactly the serialized size; benches and
  // the CLI report it as on-disk footprint.
  for (size_t n : {size_t{0}, size_t{1}, size_t{500}, size_t{12000}}) {
    for (auto mode : {StartsIndex::kEliasFano, StartsIndex::kBitVector}) {
      NeatsOptions options;
      options.starts_index = mode;
      Neats c = Neats::Compress(TestSeries(n, 13 + n), options);
      std::vector<uint8_t> bytes;
      c.Serialize(&bytes);
      EXPECT_EQ(c.SizeInBits(), bytes.size() * 8) << "n=" << n;
    }
  }
  Dataset ds = MakeDataset("AP", 4000);
  NeatsLossy lossy = NeatsLossy::Compress(ds.values, 50);
  std::vector<uint8_t> bytes;
  lossy.Serialize(&bytes);
  EXPECT_EQ(lossy.SizeInBits(), bytes.size() * 8);
}

TEST(FormatV2, MagicIsAsciiReadable) {
  // The first bytes of a blob are the ASCII format name — the property
  // file sniffers and docs/FORMAT.md rely on.
  Neats c = Neats::Compress(TestSeries(100, 99));
  std::vector<uint8_t> bytes;
  c.Serialize(&bytes);
  EXPECT_EQ(std::memcmp(bytes.data(), "NEATSv2\0", 8), 0);
}

TEST(FormatV2, RejectsTruncatedAndCorruptBlobs) {
  Neats original = Neats::Compress(TestSeries(8000, 77));
  std::vector<uint8_t> bytes;
  original.Serialize(&bytes);

  // Truncation anywhere past the magic must die loudly, not load partially.
  for (size_t keep : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 8}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_NEATS_ERROR(Neats::Deserialize(cut), "NeaTS blob");
    EXPECT_NEATS_ERROR(Neats::View(cut), "NeaTS blob");
  }

  // An inflated n (header word 2) must be rejected outright — both the
  // direct bound (n <= 2^56, closing multiplication-wrap forgeries) and
  // the fragment-walk consistency check stand behind it.
  for (uint64_t evil_n : {uint64_t{1} << 60, uint64_t{8000 * 2}}) {
    std::vector<uint8_t> evil = bytes;
    std::memcpy(evil.data() + 16, &evil_n, 8);
    EXPECT_NEATS_ERROR(Neats::Deserialize(evil), "corrupt NeaTS blob");
    EXPECT_NEATS_ERROR(Neats::View(evil), "corrupt NeaTS blob");
  }

  // Clobbering a count/size word must either be caught by a loader
  // REQUIRE (throw) or — when the word was plain payload — load fine and
  // stay queryable. Sweep word positions across the blob; every outcome
  // other than clean-load-or-throw (e.g. a segfault from an unchecked
  // count) fails. The sanitizer CI job backs up the payload-word case.
  for (size_t w = 8; w + 8 <= bytes.size(); w += 8 * 97) {
    std::vector<uint8_t> evil = bytes;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] = 0xFF;
    try {
      Neats loaded = Neats::Deserialize(evil);
      for (uint64_t k = 0; k < loaded.size(); k += 1 + loaded.size() / 13) {
        loaded.Access(k);
      }
    } catch (const Error&) {
      // A loader check caught the clobber — the expected common case.
    }
  }
}

TEST(FormatV2, ViewRejectsV1AndGarbage) {
  Neats original = Neats::Compress(TestSeries(2000, 44));
  std::vector<uint8_t> v1 = NeatsTestPeer::SerializeV1(original);
  EXPECT_NEATS_ERROR(Neats::View(v1), "format-v2");
  std::vector<uint8_t> junk(64, 0xAB);
  EXPECT_NEATS_ERROR(Neats::View(junk), "format-v2");
  EXPECT_NEATS_ERROR(Neats::Deserialize(junk), "not a NeaTS blob");
}

TEST(FormatV2, LossyRoundTripAndView) {
  Dataset ds = MakeDataset("AP", 6000);
  NeatsLossy original = NeatsLossy::Compress(ds.values, 50);
  std::vector<uint8_t> bytes;
  original.Serialize(&bytes);
  NeatsLossy owned = NeatsLossy::Deserialize(bytes);
  NeatsLossy viewed = NeatsLossy::View(bytes);
  ASSERT_EQ(owned.size(), ds.values.size());
  ASSERT_EQ(owned.epsilon(), 50);
  std::vector<int64_t> a, b;
  owned.Decompress(&a);
  viewed.Decompress(&b);
  ASSERT_EQ(a, b);
  for (size_t k = 0; k < ds.values.size(); k += 61) {
    ASSERT_EQ(owned.Access(k), viewed.Access(k));
    ASSERT_LE(std::abs(a[k] - ds.values[k]), 51);  // eps + 1 (floor slack)
  }
  std::vector<uint8_t> again;
  viewed.Serialize(&again);
  EXPECT_EQ(bytes, again);
}

// ---------------------------------------------------------------------------
// Format v3: the interleaved fragment directory.
// ---------------------------------------------------------------------------

TEST(FormatV3, V2BlobsStillDeserialize) {
  for (auto mode : {StartsIndex::kEliasFano, StartsIndex::kBitVector}) {
    for (size_t n : {size_t{0}, size_t{15000}}) {
      NeatsOptions options;
      options.starts_index = mode;
      std::vector<int64_t> values = TestSeries(n, 91);
      Neats original = Neats::Compress(values, options);

      std::vector<uint8_t> v2 = NeatsTestPeer::SerializeV2(original);
      // Deserialize (copy) and View (borrow) both accept v2; the directory
      // is rebuilt on load, so queries serve identically.
      Neats owned = Neats::Deserialize(v2);
      Neats viewed = Neats::View(v2);
      ASSERT_EQ(owned.size(), n);
      std::vector<int64_t> decoded;
      owned.Decompress(&decoded);
      EXPECT_EQ(decoded, values);
      for (size_t k = 0; k < n; k += 131) {
        ASSERT_EQ(owned.Access(k), values[k]);
        ASSERT_EQ(viewed.Access(k), values[k]);
      }

      // A v2-loaded object re-serializes canonically as v3, byte-identical
      // to the direct v3 serialization; v3 is exactly v2 plus the trailing
      // directory section and the bumped version word (bytes 8..16).
      std::vector<uint8_t> v3_direct, v3_owned, v3_viewed;
      original.Serialize(&v3_direct);
      owned.Serialize(&v3_owned);
      viewed.Serialize(&v3_viewed);
      EXPECT_EQ(v3_direct, v3_owned);
      EXPECT_EQ(v3_direct, v3_viewed);
      ASSERT_LT(v2.size(), v3_direct.size());
      EXPECT_TRUE(std::equal(v2.begin(), v2.begin() + 8, v3_direct.begin()));
      EXPECT_TRUE(std::equal(v2.begin() + 16, v2.end(), v3_direct.begin() + 16));
    }
  }
}

TEST(FormatV3, DirectoryMatchesLegacyPath) {
  // The directory is redundant metadata; on every open path its records
  // must resolve queries exactly like the separate S/B/O/K/D structures.
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 6000);
    Neats c = Neats::Compress(ds.values);
    std::vector<uint8_t> bytes;
    c.Serialize(&bytes);
    Neats viewed = Neats::View(bytes);
    std::mt19937_64 rng(7);
    for (int t = 0; t < 1200; ++t) {
      uint64_t k = rng() % ds.values.size();
      ASSERT_EQ(c.Access(k), c.AccessViaLegacyStructures(k))
          << code << " k=" << k;
      ASSERT_EQ(viewed.Access(k), viewed.AccessViaLegacyStructures(k))
          << code << " k=" << k;
      ASSERT_EQ(c.Access(k), ds.values[k]) << code << " k=" << k;
    }
  }
}

TEST(FormatV3, DirectoryMatchesLegacyPathMmap) {
  std::vector<int64_t> values = TestSeries(20000, 101);
  Neats c = Neats::Compress(values);
  std::vector<uint8_t> bytes;
  c.Serialize(&bytes);
  std::string path = ::testing::TempDir() + "/neats_dir_fuzz.v3";
  WriteFile(path, bytes);
  {
    MmapFile map = MmapFile::Open(path);
    Neats view = Neats::View(map.bytes());
    EXPECT_TRUE(view.borrowed());
    std::mt19937_64 rng(8);
    for (int t = 0; t < 2000; ++t) {
      uint64_t k = rng() % values.size();
      ASSERT_EQ(view.Access(k), values[k]) << "k=" << k;
      ASSERT_EQ(view.AccessViaLegacyStructures(k), values[k]) << "k=" << k;
    }
  }
  std::remove(path.c_str());
}

TEST(FormatV3, LossyDirectoryMatchesLegacyPath) {
  Dataset ds = MakeDataset("AP", 6000);
  NeatsLossy lossy = NeatsLossy::Compress(ds.values, 50);
  std::vector<uint8_t> bytes;
  lossy.Serialize(&bytes);
  NeatsLossy viewed = NeatsLossy::View(bytes);
  std::mt19937_64 rng(9);
  for (int t = 0; t < 1200; ++t) {
    uint64_t k = rng() % ds.values.size();
    ASSERT_EQ(lossy.Access(k), lossy.AccessViaLegacyStructures(k)) << k;
    ASSERT_EQ(viewed.Access(k), lossy.Access(k)) << k;
  }
}

TEST(FormatV3, ClobberSweepDirectorySection) {
  // Flip every word of the trailing directory section: the count word, the
  // five width words, the alignment pad (zero on the wire) and the packed
  // records are all covered by loader checks, so every flip must throw a
  // diagnostic (or, at worst, load into a still-consistent structure) —
  // never load a directory that disagrees with the S/B/O/K/D ground truth.
  Neats original = Neats::Compress(TestSeries(5000, 123));
  std::vector<uint8_t> bytes;
  original.Serialize(&bytes);
  const size_t dir_start = NeatsTestPeer::SerializeV2(original).size();
  ASSERT_LT(dir_start, bytes.size());
  for (size_t w = dir_start; w + 8 <= bytes.size(); w += 8) {
    std::vector<uint8_t> evil = bytes;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] ^= 0xFF;
    try {
      Neats loaded = Neats::Deserialize(evil);
      Neats viewed = Neats::View(evil);
      for (uint64_t k = 0; k < loaded.size(); k += 1 + loaded.size() / 13) {
        ASSERT_EQ(loaded.Access(k), loaded.AccessViaLegacyStructures(k))
            << "clobbered directory word at byte " << w;
        ASSERT_EQ(viewed.Access(k), loaded.Access(k))
            << "clobbered directory word at byte " << w;
      }
    } catch (const Error&) {
      // The loader rejected the clobbered directory — the expected case.
    }
  }
}

// ---------------------------------------------------------------------------
// Cursor seeks, both directions, vs Access ground truth.
// ---------------------------------------------------------------------------

TEST(CursorSeek, RandomBidirectionalSeeks) {
  std::vector<int64_t> values = TestSeries(30000, 55);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(56);
  Neats::Cursor cursor(compressed);
  uint64_t pos = 0;
  for (int t = 0; t < 4000; ++t) {
    switch (rng() % 3) {
      case 0:  // local jitter around the current position (hop path)
        pos = std::min<uint64_t>(
            values.size() - 1,
            static_cast<uint64_t>(std::max<int64_t>(
                0, static_cast<int64_t>(pos) +
                       static_cast<int64_t>(rng() % 2001) - 1000)));
        break;
      case 1:  // short backward step (retreat path)
        pos = pos >= 37 ? pos - 37 : 0;
        break;
      default:  // far jump (rank fallback)
        pos = rng() % values.size();
    }
    cursor.Seek(pos);
    ASSERT_EQ(cursor.position(), pos);
    ASSERT_EQ(cursor.Value(), values[pos]) << "seek to " << pos;
  }
}

TEST(CursorSeek, BackwardSweepMatchesAccess) {
  std::vector<int64_t> values = TestSeries(20000, 57);
  Neats compressed = Neats::Compress(values);
  Neats::Cursor cursor(compressed, values.size() - 1);
  for (uint64_t k = values.size(); k-- > 0;) {
    cursor.Seek(k);
    ASSERT_EQ(cursor.Value(), values[k]) << "backward seek to " << k;
  }
}

}  // namespace
}  // namespace neats
