// The block-codec random-access suite (ISSUE 7): the skip-index / offset-
// index point queries, the block-grouped batch kernels and the store's
// decoded-block cache, fuzzed against raw-value ground truth for the three
// block-structured codecs (AlpCodec, GorillaCodec, ChimpCodec).
//
//   - block surface: BlockValues/DecodeBlock reassemble the series exactly
//     (partial last block, single-block and empty series included);
//   - Access / sorted AccessBatch / DecompressRange vs the raw values, with
//     probe sets hammering block boundaries and duplicates;
//   - owned Deserialize vs View on the block surface;
//   - v1 -> v2 migration: legacy blobs (no index section) load, serve
//     identically, and re-serialize byte-identical to fresh v2 bytes;
//   - clobber sweep concentrated on the new serialized index sections;
//   - store level: the decoded-block cache on/off/tiny (hit/miss/eviction
//     stats, unsorted/duplicate/descending probes), and a mixed-codec
//     directory store with batches crossing Neats <-> ALP <-> XOR shard
//     boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "codecs/alp_codec.hpp"
#include "codecs/codec_registry.hpp"
#include "codecs/xor_codec.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"
#include "require_error.hpp"
#include "store/neats_store.hpp"

namespace neats {
namespace {

// The block surface is a compile-time property; these are the codecs it
// exists for (and the non-block codecs must NOT model it).
static_assert(BlockStructuredCodec<AlpCodec>);
static_assert(BlockStructuredCodec<GorillaCodec>);
static_assert(BlockStructuredCodec<ChimpCodec>);
static_assert(!BlockStructuredCodec<Neats>);
static_assert(!BlockStructuredCodec<LecoCodec>);

// A series mixing regimes (exponential growth, ramp, noisy plateau,
// quadratic arc) so blocks get genuinely different content.
std::vector<int64_t> MixedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    values.push_back(static_cast<int64_t>(
        100.0 * std::exp(0.004 * static_cast<double>(i))));
  }
  while (values.size() < 2 * quarter) values.push_back(values.back() + 9);
  while (values.size() < 3 * quarter) {
    values.push_back(50000 + static_cast<int64_t>(rng() % 64));
  }
  while (values.size() < n) {
    double x = static_cast<double>(values.size() - 3 * quarter);
    values.push_back(60000 - static_cast<int64_t>(0.02 * x * x) +
                     static_cast<int64_t>(rng() % 8));
  }
  return values;
}

std::string TempStoreDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("neats_block_codec_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(
               std::chrono::steady_clock::now().time_since_epoch().count()))))
      .string();
}

// The legacy (v1, index-free) framing of each codec, via its test peer.
void SerializeLegacy(const AlpCodec& c, std::vector<uint8_t>* out) {
  AlpCodecTestPeer::SerializeV1(c, out);
}
template <typename Xor, uint64_t kMagic>
void SerializeLegacy(const XorSeriesCodec<Xor, kMagic>& c,
                     std::vector<uint8_t>* out) {
  XorCodecTestPeer::SerializeV1(c, out);
}

template <typename C>
class BlockCodecTest : public ::testing::Test {
 protected:
  std::vector<int64_t> series_ = MixedSeries(12000, 7);
};

using BlockCodecs = ::testing::Types<AlpCodec, GorillaCodec, ChimpCodec>;
TYPED_TEST_SUITE(BlockCodecTest, BlockCodecs);

// DecodeBlock over every block reassembles the series exactly, including
// the partial last block; single-block and empty series hold up too.
TYPED_TEST(BlockCodecTest, BlockSurfaceReassemblesSeries) {
  for (size_t n : {this->series_.size(), size_t{257}, size_t{1}, size_t{0}}) {
    std::vector<int64_t> values(this->series_.begin(),
                                this->series_.begin() + n);
    TypeParam c = TypeParam::Compress(values, {});
    const uint64_t bv = c.BlockValues();
    ASSERT_GT(bv, 0u);
    std::vector<int64_t> reassembled;
    std::vector<int64_t> block(bv);
    for (uint64_t b = 0; b * bv < n; ++b) {
      const uint64_t count = c.DecodeBlock(b, block.data());
      ASSERT_EQ(count, std::min<uint64_t>(bv, n - b * bv)) << b;
      reassembled.insert(reassembled.end(), block.begin(),
                         block.begin() + static_cast<ptrdiff_t>(count));
    }
    ASSERT_EQ(reassembled, values);
  }
}

// Scalar Access hammered at block boundaries (first/last value of every
// block) plus random probes.
TYPED_TEST(BlockCodecTest, AccessMatchesValuesAtBlockBoundaries) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  const uint64_t bv = c.BlockValues();
  const uint64_t n = this->series_.size();
  for (uint64_t b = 0; b * bv < n; ++b) {
    for (uint64_t k : {b * bv, std::min(n, (b + 1) * bv) - 1}) {
      ASSERT_EQ(c.Access(k), this->series_[k]) << k;
    }
  }
  std::mt19937_64 rng(23);
  for (int t = 0; t < 3000; ++t) {
    uint64_t k = rng() % n;
    ASSERT_EQ(c.Access(k), this->series_[k]) << k;
  }
}

// The block-grouped batch kernel vs scalar ground truth: sorted probe sets
// of varying density (sparse spreads, dense clusters inside one block,
// heavy duplicates, block-boundary straddles).
TYPED_TEST(BlockCodecTest, SortedBatchFuzzMatchesValues) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  const uint64_t bv = c.BlockValues();
  const uint64_t n = this->series_.size();
  std::mt19937_64 rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    size_t count = 1 + rng() % 600;
    std::vector<uint64_t> idx(count);
    switch (trial % 4) {
      case 0:  // uniform spread
        for (auto& k : idx) k = rng() % n;
        break;
      case 1: {  // dense cluster inside one block
        uint64_t base = (rng() % (n / bv)) * bv;
        for (auto& k : idx) k = base + rng() % std::min<uint64_t>(bv, n - base);
        break;
      }
      case 2: {  // straddle a block boundary
        uint64_t edge = (1 + rng() % (n / bv)) * bv;
        for (auto& k : idx) {
          uint64_t span = 1 + rng() % 64;
          k = std::min<uint64_t>(n - 1, edge - std::min(edge, span) + rng() % (2 * span));
        }
        break;
      }
      default:  // heavy duplicates
        for (auto& k : idx) k = (rng() % n) / 40 * 40 % n;
        break;
    }
    std::sort(idx.begin(), idx.end());
    std::vector<int64_t> out(count);
    c.AccessBatch(idx, out.data());
    for (size_t j = 0; j < count; ++j) {
      ASSERT_EQ(out[j], this->series_[idx[j]])
          << "probe " << idx[j] << " trial " << trial;
    }
  }
}

// DecompressRange slices starting and ending mid-block, spanning several
// blocks, and hugging block edges.
TYPED_TEST(BlockCodecTest, RangesCrossBlockBoundaries) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  const uint64_t bv = c.BlockValues();
  const uint64_t n = this->series_.size();
  std::mt19937_64 rng(31);
  std::vector<std::pair<uint64_t, uint64_t>> slices = {
      {bv - 1, 2},       // one value each side of the first boundary
      {bv, 1},           // block-aligned single value
      {0, n},            // everything
      {n - 1, 1},        // last value
      {bv / 2, 3 * bv},  // mid-block start spanning multiple blocks
  };
  for (int t = 0; t < 40; ++t) {
    uint64_t from = rng() % n;
    slices.push_back({from, rng() % std::min<uint64_t>(4 * bv, n - from)});
  }
  for (auto [from, len] : slices) {
    std::vector<int64_t> got(len);
    c.DecompressRange(from, len, got.data());
    for (uint64_t j = 0; j < len; ++j) {
      ASSERT_EQ(got[j], this->series_[from + j]) << from << "+" << j;
    }
  }
}

// View (zero-copy for ALP, owning fallback for the XOR streams) serves the
// identical block surface as Deserialize.
TYPED_TEST(BlockCodecTest, ViewMatchesDeserializeOnBlockSurface) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  std::vector<uint8_t> blob;
  c.Serialize(&blob);
  std::vector<uint64_t> aligned((blob.size() + 7) / 8);
  std::memcpy(aligned.data(), blob.data(), blob.size());
  std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(aligned.data()), blob.size());
  TypeParam owned = TypeParam::Deserialize(blob);
  TypeParam viewed = TypeParam::View(bytes);
  ASSERT_EQ(owned.BlockValues(), viewed.BlockValues());
  const uint64_t bv = owned.BlockValues();
  std::vector<int64_t> a(bv), b(bv);
  for (uint64_t blk = 0; blk * bv < this->series_.size(); ++blk) {
    const uint64_t ca = owned.DecodeBlock(blk, a.data());
    const uint64_t cb = viewed.DecodeBlock(blk, b.data());
    ASSERT_EQ(ca, cb);
    for (uint64_t j = 0; j < ca; ++j) {
      ASSERT_EQ(a[j], b[j]);
      ASSERT_EQ(a[j], this->series_[blk * bv + j]);
    }
  }
}

// A legacy v1 blob (no index section) loads, serves every value, and
// re-serializes byte-identical to a fresh v2 compression — the migration
// path is a pure upgrade.
TYPED_TEST(BlockCodecTest, LegacyV1BlobsUpgradeToV2) {
  for (size_t n : {this->series_.size(), size_t{129}, size_t{1}, size_t{0}}) {
    std::vector<int64_t> values(this->series_.begin(),
                                this->series_.begin() + n);
    TypeParam fresh = TypeParam::Compress(values, {});
    std::vector<uint8_t> v1;
    SerializeLegacy(fresh, &v1);
    TypeParam upgraded = TypeParam::Deserialize(v1);
    ASSERT_EQ(upgraded.size(), values.size());
    for (size_t k = 0; k < n; k += 1 + n / 500) {
      ASSERT_EQ(upgraded.Access(k), values[k]) << k;
    }
    std::vector<uint8_t> v2_fresh, v2_upgraded;
    fresh.Serialize(&v2_fresh);
    upgraded.Serialize(&v2_upgraded);
    EXPECT_EQ(v2_fresh, v2_upgraded);
    EXPECT_GT(v2_fresh.size(), v1.size());  // the index section is real
  }
}

// Clobber sweep concentrated on the new index sections: every word from
// the version word and the whole region the v2 format appends after the v1
// payload gets flipped; the loader must throw or produce an object that
// serves without out-of-bounds access (the sanitizer CI job runs this).
TYPED_TEST(BlockCodecTest, IndexSectionClobberSweep) {
  TypeParam c = TypeParam::Compress(MixedSeries(4000, 41), {});
  std::vector<uint8_t> blob, v1;
  c.Serialize(&blob);
  SerializeLegacy(c, &v1);
  ASSERT_LT(v1.size(), blob.size());
  std::vector<size_t> words = {8};  // the version word
  for (size_t w = v1.size(); w + 8 <= blob.size(); w += 8) words.push_back(w);
  for (size_t w : words) {
    std::vector<uint8_t> evil = blob;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] ^= 0xFF;
    try {
      TypeParam loaded = TypeParam::Deserialize(evil);
      // A clobbered-but-validated index may decode garbage values; it must
      // never read out of bounds.
      std::vector<int64_t> sink(loaded.size());
      if (loaded.size() > 0) {
        loaded.DecompressRange(0, loaded.size(), sink.data());
        std::vector<uint64_t> idx;
        for (uint64_t k = 0; k < loaded.size(); k += 1 + loaded.size() / 97) {
          (void)loaded.Access(k);
          idx.push_back(k);
        }
        std::vector<int64_t> out(idx.size());
        loaded.AccessBatch(idx, out.data());
      }
    } catch (const Error&) {
      // The loader rejected the clobber — the expected common case.
    }
  }
}

// ---------------------------------------------------------------------------
// Store level: the decoded-block cache.
// ---------------------------------------------------------------------------

// The cache-backed Access/AccessBatch paths answer exactly like the raw
// values for every block codec, with unsorted / duplicate / descending
// probe orders, and the stats see hits once blocks are warm.
TEST(StoreBlockCache, ServesBlockCodecsExactly) {
  std::vector<int64_t> values = MixedSeries(16000, 3);
  for (CodecId id : {CodecId::kAlp, CodecId::kGorilla, CodecId::kChimp}) {
    NeatsStoreOptions options;
    options.shard_size = 5000;
    options.codec = id;
    NeatsStore store(options);
    store.Append(values);
    store.Flush();
    ASSERT_EQ(store.block_cache_stats().hits, 0u);

    std::mt19937_64 rng(47);
    for (int t = 0; t < 2000; ++t) {
      uint64_t k = rng() % values.size();
      ASSERT_EQ(store.Access(k), values[k]) << CodecName(id) << " " << k;
    }
    const DecodedBlockCache::Stats after_scalar = store.block_cache_stats();
    EXPECT_GT(after_scalar.hits, 0u) << CodecName(id);
    EXPECT_GT(after_scalar.misses, 0u) << CodecName(id);
    EXPECT_GT(after_scalar.entries, 0u) << CodecName(id);

    for (int trial = 0; trial < 30; ++trial) {
      size_t count = 1 + rng() % 700;
      std::vector<uint64_t> idx(count);
      for (auto& k : idx) k = rng() % values.size();
      if (trial % 3 == 1) {  // heavy duplicates
        for (auto& k : idx) k = idx[0] + k % 50;
        for (auto& k : idx) k = std::min<uint64_t>(k, values.size() - 1);
      }
      if (trial % 3 == 2) {  // strictly descending
        std::sort(idx.rbegin(), idx.rend());
      }
      std::vector<int64_t> out(count);
      store.AccessBatch(idx, out);
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(out[j], values[idx[j]])
            << CodecName(id) << " probe " << idx[j] << " trial " << trial;
      }
    }
    EXPECT_GT(store.block_cache_stats().hits, after_scalar.hits)
        << CodecName(id);
  }
}

// block_cache_bytes = 0 disables the cache entirely: answers stay exact,
// stats stay zero.
TEST(StoreBlockCache, DisabledCacheStaysExact) {
  std::vector<int64_t> values = MixedSeries(12000, 5);
  NeatsStoreOptions options;
  options.shard_size = 5000;
  options.codec = CodecId::kGorilla;
  options.block_cache_bytes = 0;
  NeatsStore store(options);
  store.Append(values);
  store.Flush();
  std::mt19937_64 rng(53);
  std::vector<uint64_t> idx(800);
  for (auto& k : idx) k = rng() % values.size();
  std::vector<int64_t> out(idx.size());
  store.AccessBatch(idx, out);
  for (size_t j = 0; j < idx.size(); ++j) {
    ASSERT_EQ(out[j], values[idx[j]]);
  }
  for (int t = 0; t < 500; ++t) {
    uint64_t k = rng() % values.size();
    ASSERT_EQ(store.Access(k), values[k]);
  }
  const DecodedBlockCache::Stats stats = store.block_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// A cache far smaller than the working set evicts (and keeps answering
// exactly); its footprint respects the byte budget.
TEST(StoreBlockCache, TinyCacheEvictsWithinBudget) {
  std::vector<int64_t> values = MixedSeries(16000, 9);
  NeatsStoreOptions options;
  options.shard_size = 8000;
  options.codec = CodecId::kChimp;
  options.block_cache_bytes = 20000;  // ~2 decoded 1000-value blocks
  NeatsStore store(options);
  store.Append(values);
  store.Flush();
  std::mt19937_64 rng(59);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (uint64_t k = sweep % 2 == 0 ? 0 : 500; k < values.size(); k += 997) {
      ASSERT_EQ(store.Access(k), values[k]) << k;
    }
  }
  const DecodedBlockCache::Stats stats = store.block_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.block_cache_bytes);
  EXPECT_GT(stats.entries, 0u);
}

// A directory store whose shards were sealed by different codecs (Neats,
// then ALP, then Gorilla — options govern future seals across reopens):
// batches and multi-range reads crossing every shard boundary answer
// exactly, and only the block-structured shards populate the cache.
TEST(StoreBlockCache, MixedCodecStoreBatchesCrossShardBoundaries) {
  const std::string dir = TempStoreDir("mixed");
  constexpr uint64_t kShard = 6000;
  std::vector<int64_t> values = MixedSeries(3 * kShard, 13);
  NeatsStoreOptions options;
  options.shard_size = kShard;
  {
    options.codec = CodecId::kNeats;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append({values.data(), kShard});
    store.Flush();
  }
  {
    options.codec = CodecId::kAlp;
    NeatsStore store = NeatsStore::OpenDir(dir, options);
    store.Append({values.data() + kShard, kShard});
    store.Flush();
  }
  {
    options.codec = CodecId::kGorilla;
    NeatsStore store = NeatsStore::OpenDir(dir, options);
    store.Append({values.data() + 2 * kShard, kShard});
    store.Flush();
  }

  NeatsStore store = NeatsStore::OpenDir(dir);
  ASSERT_EQ(store.size(), values.size());
  ASSERT_EQ(store.num_shards(), 3u);
  ASSERT_EQ(store.shard_codec(0), CodecId::kNeats);
  ASSERT_EQ(store.shard_codec(1), CodecId::kAlp);
  ASSERT_EQ(store.shard_codec(2), CodecId::kGorilla);

  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    // Unsorted probes deliberately spanning all three shards.
    size_t count = 3 + rng() % 500;
    std::vector<uint64_t> idx(count);
    for (size_t j = 0; j < count; ++j) {
      idx[j] = (j % 3) * kShard + rng() % kShard;
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    std::vector<int64_t> out(count);
    store.AccessBatch(idx, out);
    for (size_t j = 0; j < count; ++j) {
      ASSERT_EQ(out[j], values[idx[j]]) << idx[j] << " trial " << trial;
    }
  }
  // Ranges straddling both codec boundaries (Neats->ALP, ALP->Gorilla).
  std::vector<IndexRange> ranges = {{kShard - 700, 1400},
                                    {2 * kShard - 5, 10},
                                    {0, 0},
                                    {kShard - 1, 2}};
  size_t total = 0;
  for (const IndexRange& r : ranges) total += r.len;
  std::vector<int64_t> got(total);
  store.DecompressRanges(ranges, got.data());
  size_t off = 0;
  for (const IndexRange& r : ranges) {
    for (uint64_t j = 0; j < r.len; ++j) {
      ASSERT_EQ(got[off + j], values[r.from + j]) << r.from << "+" << j;
    }
    off += r.len;
  }
  // The ALP and Gorilla shards fed the cache; repeated batches hit it.
  const DecodedBlockCache::Stats stats = store.block_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace neats
