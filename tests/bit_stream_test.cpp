#include "succinct/bit_stream.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace neats {
namespace {

TEST(BitStream, EmptyStream) {
  BitWriter w;
  EXPECT_EQ(w.bit_size(), 0u);
  auto words = w.TakeWords();
  EXPECT_TRUE(words.empty());
}

TEST(BitStream, SingleFullWord) {
  BitWriter w;
  w.Append(0xDEADBEEFCAFEBABEULL, 64);
  EXPECT_EQ(w.bit_size(), 64u);
  auto words = w.TakeWords();
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(ReadBits(words.data(), 0, 64), 0xDEADBEEFCAFEBABEULL);
}

TEST(BitStream, ZeroWidthFieldsAreNoOps) {
  BitWriter w;
  w.Append(123, 0);
  w.Append(1, 1);
  w.Append(456, 0);
  EXPECT_EQ(w.bit_size(), 1u);
  auto words = w.TakeWords();
  EXPECT_EQ(ReadBits(words.data(), 0, 1), 1u);
}

TEST(BitStream, CrossWordBoundary) {
  BitWriter w;
  w.Append(0, 60);
  w.Append(0x1FF, 9);  // straddles the 64-bit boundary
  auto words = w.TakeWords();
  EXPECT_EQ(ReadBits(words.data(), 60, 9), 0x1FFu);
}

TEST(BitStream, ValueMaskedToWidth) {
  BitWriter w;
  w.Append(~0ULL, 5);  // only the low 5 bits must be stored
  w.Append(0, 5);
  auto words = w.TakeWords();
  EXPECT_EQ(ReadBits(words.data(), 0, 5), 31u);
  EXPECT_EQ(ReadBits(words.data(), 5, 5), 0u);
}

struct Field {
  uint64_t value;
  int width;
};

TEST(BitStream, RandomRoundTripAllWidths) {
  std::mt19937_64 rng(42);
  std::vector<Field> fields;
  BitWriter w;
  for (int i = 0; i < 20000; ++i) {
    int width = static_cast<int>(rng() % 65);
    uint64_t value = rng() & LowMask(width);
    fields.push_back({value, width});
    w.Append(value, width);
  }
  auto words = w.TakeWords();
  size_t pos = 0;
  for (const Field& f : fields) {
    ASSERT_EQ(ReadBits(words.data(), pos, f.width), f.value);
    pos += static_cast<size_t>(f.width);
  }
  EXPECT_EQ(pos, w.bit_size());
}

TEST(BitStream, ReaderSequentialAndSeek) {
  BitWriter w;
  for (uint64_t i = 0; i < 100; ++i) w.Append(i, 7);
  auto words = w.TakeWords();
  BitReader r(words.data(), 100 * 7);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(r.Read(7), i);
  r.Seek(7 * 50);
  EXPECT_EQ(r.Read(7), 50u);
  EXPECT_EQ(r.position(), 7u * 51);
}

TEST(BitStream, ReadBitsWidthZero) {
  uint64_t word = 0xFF;
  EXPECT_EQ(ReadBits(&word, 3, 0), 0u);
}

}  // namespace
}  // namespace neats
