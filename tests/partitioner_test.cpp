#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace neats {
namespace {

void CheckContiguousCover(const std::vector<Fragment>& fragments, size_t n) {
  uint64_t expected = 0;
  for (const auto& frag : fragments) {
    ASSERT_EQ(frag.start, expected);
    ASSERT_GT(frag.length(), 0u);
    ASSERT_LE(frag.origin, frag.start);
    expected = frag.end;
  }
  ASSERT_EQ(expected, n);
}

// Every fragment must eps-approximate its values with its own parameters and
// origin (this is what guarantees small corrections downstream). Allow a
// small relative slack for double rounding of the parameters.
void CheckApproximation(const std::vector<int64_t>& values,
                        const std::vector<Fragment>& fragments) {
  for (const auto& frag : fragments) {
    for (uint64_t k = frag.start; k < frag.end; ++k) {
      double pred = PredictValue(frag.kind, frag.params,
                                 static_cast<int64_t>(k - frag.origin) + 1);
      double slack = 1e-6 * (1.0 + std::abs(pred));
      ASSERT_LE(std::abs(pred - static_cast<double>(values[k])),
                static_cast<double>(frag.epsilon) + slack)
          << KindName(frag.kind) << " at " << k;
    }
  }
}

uint64_t PartitionCost(const std::vector<Fragment>& fragments,
                       const PartitionOptions& options) {
  uint64_t cost = 0;
  for (const auto& frag : fragments) {
    cost += internal::LosslessWeight(frag, options);
  }
  return cost;
}

std::vector<int64_t> RandomWalk(size_t n, uint64_t seed, int64_t step) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  int64_t cur = 1000;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng() % (2 * step + 1)) - step;
    values.push_back(cur);
  }
  return values;
}

TEST(Partitioner, CoversRandomWalk) {
  auto values = RandomWalk(20000, 3, 8);
  auto fragments = PartitionLossless(values);
  CheckContiguousCover(fragments, values.size());
  CheckApproximation(values, fragments);
}

TEST(Partitioner, SinglePoint) {
  std::vector<int64_t> values = {42};
  auto fragments = PartitionLossless(values);
  CheckContiguousCover(fragments, 1);
  EXPECT_EQ(fragments[0].Predict(0), 42);
}

TEST(Partitioner, EmptySeries) {
  std::vector<int64_t> values;
  auto fragments = PartitionLossless(values);
  EXPECT_TRUE(fragments.empty());
}

TEST(Partitioner, ConstantSeriesIsOneCheapFragment) {
  std::vector<int64_t> values(10000, 7);
  auto fragments = PartitionLossless(values);
  CheckContiguousCover(fragments, values.size());
  EXPECT_EQ(fragments.size(), 1u);
  EXPECT_EQ(CorrectionBits(fragments[0].epsilon), 0);
}

TEST(Partitioner, PiecewiseRegimesGetDifferentKinds) {
  // Exponential growth followed by a linear ramp: the partition should use
  // few fragments and approximate both regimes well.
  std::vector<int64_t> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(static_cast<int64_t>(100.0 * std::exp(0.02 * i)));
  }
  for (int i = 0; i < 400; ++i) values.push_back(values.back() + 13);
  auto fragments = PartitionLossless(values);
  CheckContiguousCover(fragments, values.size());
  CheckApproximation(values, fragments);
}

// The lazy single-sweep implementation of Algorithm 1 must find the same
// optimal cost as a transparent reference: materialise the full edge set
// (all prefixes and suffixes of every greedy-chain fragment of every
// (kind, eps) pair), then run a plain DAG shortest path over it.
TEST(Partitioner, MatchesReferenceShortestPath) {
  for (int trial = 0; trial < 8; ++trial) {
    auto values = RandomWalk(150, 100 + static_cast<uint64_t>(trial), 6);
    PartitionOptions options;
    options.kinds = {FunctionKind::kLinear, FunctionKind::kQuadratic,
                     FunctionKind::kExponential};
    options.epsilons = {0, 2, 8};

    auto fragments = PartitionLossless(values, options);
    CheckContiguousCover(fragments, values.size());
    uint64_t algo_cost = PartitionCost(fragments, options);

    struct Edge {
      uint64_t src, dst, weight;
    };
    std::vector<Edge> edges;
    const size_t n = values.size();
    for (FunctionKind kind : options.kinds) {
      for (int64_t eps : options.epsilons) {
        uint64_t k = 0;
        while (k < n) {
          Fragment frag = LongestFragment(values, k, kind, eps);
          if (frag.length() == 0) {
            ++k;
            continue;
          }
          for (uint64_t j = frag.start + 1; j <= frag.end; ++j) {
            Fragment piece = frag;
            piece.end = j;
            edges.push_back({frag.start, j,
                             internal::LosslessWeight(piece, options)});
          }
          for (uint64_t s = frag.start + 1; s < frag.end; ++s) {
            Fragment piece = frag;
            piece.start = s;
            edges.push_back({s, frag.end,
                             internal::LosslessWeight(piece, options)});
          }
          k = frag.end;
        }
      }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.src < b.src; });
    constexpr uint64_t kInf = UINT64_MAX / 2;
    std::vector<uint64_t> dp(n + 1, kInf);
    dp[0] = 0;
    for (const Edge& e : edges) {
      if (dp[e.src] == kInf) continue;
      dp[e.dst] = std::min(dp[e.dst], dp[e.src] + e.weight);
    }
    ASSERT_LT(dp[n], kInf);
    EXPECT_EQ(algo_cost, dp[n]) << "trial " << trial;
  }
}

TEST(Partitioner, LossyUsesOnlyGivenEps) {
  auto values = RandomWalk(5000, 23, 20);
  auto fragments = PartitionLossy(values, 15);
  CheckContiguousCover(fragments, values.size());
  for (const auto& frag : fragments) EXPECT_EQ(frag.epsilon, 15);
  CheckApproximation(values, fragments);
}

TEST(Partitioner, LossyFewerFragmentsWithLargerEps) {
  auto values = RandomWalk(8000, 29, 25);
  size_t prev = SIZE_MAX;
  for (int64_t eps : {10, 50, 250, 1000}) {
    auto fragments = PartitionLossy(values, eps);
    EXPECT_LE(fragments.size(), prev) << "eps=" << eps;
    prev = fragments.size();
  }
}

TEST(Partitioner, SuffixEdgesNeverHurt) {
  auto values = RandomWalk(6000, 31, 12);
  PartitionOptions with, without;
  without.use_suffix_edges = false;
  auto frag_with = PartitionLossless(values, with);
  auto frag_without = PartitionLossless(values, without);
  CheckContiguousCover(frag_with, values.size());
  CheckContiguousCover(frag_without, values.size());
  EXPECT_LE(PartitionCost(frag_with, with), PartitionCost(frag_without, without));
  // Without suffix edges no displacement survives.
  for (const auto& frag : frag_without) EXPECT_EQ(frag.origin, frag.start);
}

TEST(Partitioner, ExplicitPairsRestrictTheSearch) {
  auto values = RandomWalk(3000, 37, 10);
  PartitionOptions options;
  options.pairs = {{FunctionKind::kLinear, 4}};
  auto fragments = PartitionLossless(values, options);
  CheckContiguousCover(fragments, values.size());
  for (const auto& frag : fragments) {
    EXPECT_EQ(frag.kind, FunctionKind::kLinear);
    EXPECT_EQ(frag.epsilon, 4);
  }
}

TEST(Partitioner, NegativeValuesHandled) {
  std::vector<int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(-5000 + 3 * i + (i % 7));
  }
  // Note: exponential kinds are simply inapplicable on negative data unless
  // the caller shifts; the partitioner must still cover everything.
  auto fragments = PartitionLossless(values);
  CheckContiguousCover(fragments, values.size());
  CheckApproximation(values, fragments);
}

TEST(Partitioner, DefaultEpsilonsShape) {
  std::vector<int64_t> values = {0, 100};  // delta = 101
  auto eps = DefaultEpsilons(values);
  EXPECT_EQ(eps.front(), 0);
  EXPECT_EQ(eps.back(), 128);  // 2^ceil(log2 101) = 128
  for (size_t i = 2; i < eps.size(); ++i) EXPECT_EQ(eps[i], 2 * eps[i - 1]);
}

// The chunked partitioner's boundary-merge pass: on a series one fit covers
// entirely, the stitched per-chunk fragments must collapse back into the
// single fragment the global partitioner finds — same refit from index 0,
// so the result is identical, not merely equivalent.
TEST(PartitionChunked, BoundaryMergeRecoversGlobalPartition) {
  std::vector<int64_t> values;
  for (size_t i = 0; i < 6000; ++i) {
    values.push_back(7 * static_cast<int64_t>(i) + 13);  // exact line
  }
  PartitionOptions options;
  std::vector<Fragment> global = PartitionLossless(values, options);
  ASSERT_EQ(global.size(), 1u);
  for (uint64_t chunk : {uint64_t{700}, uint64_t{1024}, uint64_t{2999}}) {
    std::vector<Fragment> chunked =
        PartitionLosslessChunked(values, chunk, 1, options);
    ASSERT_EQ(chunked.size(), 1u) << "chunk=" << chunk;
    EXPECT_EQ(chunked[0].start, global[0].start);
    EXPECT_EQ(chunked[0].end, global[0].end);
    EXPECT_EQ(chunked[0].origin, global[0].origin);
    EXPECT_EQ(chunked[0].kind, global[0].kind);
    EXPECT_EQ(chunked[0].epsilon, global[0].epsilon);
    for (int p = 0; p < 3; ++p) {
      EXPECT_EQ(chunked[0].params[p], global[0].params[p]) << p;
    }
  }
}

// On general inputs the merge must keep every invariant: contiguous cover,
// eps-valid fits, determinism across thread counts, and a stored size never
// above the merge-free stitching (the merge is gated on the actual residual
// widths, not just feasibility).
TEST(PartitionChunked, BoundaryMergeKeepsInvariantsOnMixedSeries) {
  std::vector<int64_t> values = RandomWalk(9000, 21, 40);
  // Splice in a long exact ramp crossing several chunk boundaries so at
  // least some merges actually fire.
  for (size_t i = 3000; i < 6000; ++i) {
    values[i] = 5 * static_cast<int64_t>(i);
  }
  PartitionOptions options;
  std::vector<Fragment> chunked1 =
      PartitionLosslessChunked(values, 1000, 1, options);
  std::vector<Fragment> chunked4 =
      PartitionLosslessChunked(values, 1000, 4, options);
  CheckContiguousCover(chunked1, values.size());
  CheckApproximation(values, chunked1);
  ASSERT_EQ(chunked1.size(), chunked4.size());
  for (size_t i = 0; i < chunked1.size(); ++i) {
    EXPECT_EQ(chunked1[i].start, chunked4[i].start) << i;
    EXPECT_EQ(chunked1[i].end, chunked4[i].end) << i;
    EXPECT_EQ(chunked1[i].params[0], chunked4[i].params[0]) << i;
  }
  // The ramp spans chunks [3000, 6000): without merging there would be a
  // fragment break at every 1000-boundary inside it.
  size_t breaks_inside_ramp = 0;
  for (const Fragment& f : chunked1) {
    if (f.start > 3000 && f.start < 6000 && f.start % 1000 == 0) {
      ++breaks_inside_ramp;
    }
  }
  EXPECT_LT(breaks_inside_ramp, 2u);
  // Merging never stores more bits than the unmerged stitching.
  uint64_t merged_bits = 0;
  for (const Fragment& f : chunked1) {
    merged_bits += StoredFragmentBits(values, f, options);
  }
  uint64_t split_bits = 0;
  for (uint64_t begin = 0; begin < values.size(); begin += 1000) {
    uint64_t len = std::min<uint64_t>(1000, values.size() - begin);
    std::span<const int64_t> block(values.data() + begin, len);
    for (const Fragment& f : PartitionLossless(block, options)) {
      Fragment shifted = f;
      shifted.start += begin;
      shifted.end += begin;
      shifted.origin += begin;
      split_bits += StoredFragmentBits(values, shifted, options);
    }
  }
  EXPECT_LE(merged_bits, split_bits);
}

TEST(Partitioner, CorrectionBitsFormula) {
  EXPECT_EQ(CorrectionBits(0), 0);
  EXPECT_EQ(CorrectionBits(1), 2);   // ceil(log2 3)
  EXPECT_EQ(CorrectionBits(2), 3);   // ceil(log2 5)
  EXPECT_EQ(CorrectionBits(4), 4);   // ceil(log2 9)
  EXPECT_EQ(CorrectionBits(128), 9);
}

}  // namespace
}  // namespace neats
