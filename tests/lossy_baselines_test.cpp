#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "baselines/aa.hpp"
#include "baselines/pla.hpp"
#include "core/neats_lossy.hpp"

namespace neats {
namespace {

std::vector<int64_t> SmoothSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  for (size_t i = 0; i < n; ++i) {
    double v = 50000.0 * std::sin(static_cast<double>(i) * 0.002) +
               0.03 * static_cast<double>(i) +
               static_cast<double>(rng() % 200);
    values.push_back(static_cast<int64_t>(v));
  }
  return values;
}

int64_t MaxAbsError(const std::vector<int64_t>& a,
                    const std::vector<int64_t>& b) {
  int64_t err = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, std::abs(a[i] - b[i]));
  }
  return err;
}

class LossyEpsTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(LossyEpsTest, PlaRespectsErrorBound) {
  int64_t eps = GetParam();
  auto values = SmoothSeries(20000, 1);
  Pla pla = Pla::Compress(values, eps);
  std::vector<int64_t> approx;
  pla.Decompress(&approx);
  EXPECT_LE(MaxAbsError(values, approx), eps + 1);
}

TEST_P(LossyEpsTest, AaRespectsErrorBound) {
  int64_t eps = GetParam();
  auto values = SmoothSeries(20000, 2);
  AdaptiveApproximation aa = AdaptiveApproximation::Compress(values, eps);
  std::vector<int64_t> approx;
  aa.Decompress(&approx);
  EXPECT_LE(MaxAbsError(values, approx), eps + 1);
}

TEST_P(LossyEpsTest, NeatsLRespectsErrorBound) {
  int64_t eps = GetParam();
  auto values = SmoothSeries(20000, 3);
  NeatsLossy lossy = NeatsLossy::Compress(values, eps);
  std::vector<int64_t> approx;
  lossy.Decompress(&approx);
  EXPECT_LE(MaxAbsError(values, approx), eps + 1);
}

INSTANTIATE_TEST_SUITE_P(Eps, LossyEpsTest,
                         ::testing::Values(1, 8, 64, 512, 4096));

// The paper's headline lossy ordering: under the same eps, NeaTS-L never
// needs more space than the optimal PLA (it has linear among its kinds and
// an optimal partitioner), and PLA uses no more segments than AA's heuristic
// in terms of covered space cost.
TEST(LossyComparison, NeatsLNeverLargerThanPla) {
  for (uint64_t seed : {10u, 11u, 12u}) {
    auto values = SmoothSeries(30000, seed);
    int64_t eps = 300;
    Pla pla = Pla::Compress(values, eps);
    PartitionOptions options;
    options.bits_per_parameter = 64;
    // Match the PLA per-segment cost model (start + two params = 3 words).
    options.fragment_overhead_bits = 64;
    NeatsLossy lossy = NeatsLossy::Compress(values, eps, options);
    EXPECT_LE(lossy.SizeInBits(), pla.SizeInBits() + 64) << "seed " << seed;
  }
}

TEST(LossyComparison, AaProducesMoreSegmentsThanPla) {
  // AA anchors each segment through its first point, a strictly harder
  // constraint, so it cannot produce fewer segments than optimal PLA when
  // restricted to comparable families. (It may tie on easy data.)
  auto values = SmoothSeries(50000, 21);
  int64_t eps = 150;
  Pla pla = Pla::Compress(values, eps);
  AdaptiveApproximation aa = AdaptiveApproximation::Compress(values, eps);
  EXPECT_GE(aa.num_segments() + 1, pla.num_segments());
}

TEST(LossyAccess, PlaAccessMatchesDecompress) {
  auto values = SmoothSeries(10000, 31);
  Pla pla = Pla::Compress(values, 100);
  std::vector<int64_t> approx;
  pla.Decompress(&approx);
  for (size_t k = 0; k < values.size(); k += 37) {
    EXPECT_EQ(pla.Access(k), approx[k]);
  }
}

TEST(LossyAccess, AaAccessMatchesDecompress) {
  auto values = SmoothSeries(10000, 33);
  AdaptiveApproximation aa = AdaptiveApproximation::Compress(values, 100);
  std::vector<int64_t> approx;
  aa.Decompress(&approx);
  for (size_t k = 0; k < values.size(); k += 41) {
    EXPECT_EQ(aa.Access(k), approx[k]);
  }
}

TEST(LossyEdgeCases, SinglePointSeries) {
  std::vector<int64_t> values = {123};
  Pla pla = Pla::Compress(values, 5);
  EXPECT_EQ(pla.num_segments(), 1u);
  EXPECT_NEAR(static_cast<double>(pla.Access(0)), 123.0, 6.0);
  AdaptiveApproximation aa = AdaptiveApproximation::Compress(values, 5);
  EXPECT_EQ(aa.num_segments(), 1u);
  EXPECT_EQ(aa.Access(0), 123);
}

TEST(LossyEdgeCases, NegativeValues) {
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(-100000 + 13 * i + (i % 10));
  }
  for (int64_t eps : {2, 50}) {
    Pla pla = Pla::Compress(values, eps);
    AdaptiveApproximation aa = AdaptiveApproximation::Compress(values, eps);
    NeatsLossy nl = NeatsLossy::Compress(values, eps);
    std::vector<int64_t> a, b, c;
    pla.Decompress(&a);
    aa.Decompress(&b);
    nl.Decompress(&c);
    EXPECT_LE(MaxAbsError(values, a), eps + 1);
    EXPECT_LE(MaxAbsError(values, b), eps + 1);
    EXPECT_LE(MaxAbsError(values, c), eps + 1);
  }
}

TEST(LossyEdgeCases, StepSeries) {
  std::vector<int64_t> values;
  for (int s = 0; s < 50; ++s) {
    for (int i = 0; i < 200; ++i) values.push_back(s * 10000);
  }
  Pla pla = Pla::Compress(values, 10);
  // Each plateau is one segment (steps exceed eps).
  EXPECT_EQ(pla.num_segments(), 50u);
}

TEST(LossyMape, NeatsLBetterAccuracyThanPla) {
  // MAPE ordering from the paper (Sec. IV-B): AA < NeaTS-L < PLA.
  // We check the robust half: NeaTS-L (nonlinear, optimal) is never much
  // worse than PLA at equal eps on nonlinear data.
  std::vector<int64_t> values;
  for (int i = 0; i < 30000; ++i) {
    values.push_back(static_cast<int64_t>(
        2000.0 * std::exp(0.0001 * i) + 500.0 * std::sin(i * 0.01)));
  }
  int64_t eps = 200;
  auto mape = [&](const std::vector<int64_t>& approx) {
    double total = 0;
    size_t counted = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] == 0) continue;
      total += std::abs(static_cast<double>(approx[i] - values[i])) /
               std::abs(static_cast<double>(values[i]));
      ++counted;
    }
    return 100.0 * total / static_cast<double>(counted);
  };
  Pla pla = Pla::Compress(values, eps);
  NeatsLossy nl = NeatsLossy::Compress(values, eps);
  std::vector<int64_t> a, c;
  pla.Decompress(&a);
  nl.Decompress(&c);
  EXPECT_LE(mape(c), mape(a) * 1.5);
}

}  // namespace
}  // namespace neats
