#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>
#include <vector>

#include "baselines/alp.hpp"
#include "baselines/blockwise.hpp"
#include "baselines/dac.hpp"
#include "baselines/general_purpose.hpp"
#include "baselines/leco.hpp"

namespace neats {
namespace {

std::vector<int64_t> ScaledWalk(size_t n, uint64_t seed, int64_t step) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  int64_t cur = 100000;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng() % (2 * step + 1)) - step;
    values.push_back(cur);
  }
  return values;
}

// ---- DAC ----

TEST(Dac, RoundTripAndAccess) {
  auto values = ScaledWalk(20000, 3, 500);
  values[0] = -77;  // exercise negatives through zigzag
  values[100] = INT64_MAX / 4;
  values[200] = INT64_MIN / 4;
  Dac dac = Dac::Compress(values);
  std::vector<int64_t> decoded;
  dac.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    size_t i = rng() % values.size();
    ASSERT_EQ(dac.Access(i), values[i]);
  }
}

TEST(Dac, EmptyAndSingle) {
  Dac empty = Dac::Compress(std::vector<int64_t>{});
  EXPECT_EQ(empty.size(), 0u);
  Dac one = Dac::Compress(std::vector<int64_t>{{-123456}});
  EXPECT_EQ(one.Access(0), -123456);
}

class DacChunkTest : public ::testing::TestWithParam<int> {};

TEST_P(DacChunkTest, RoundTripAtChunkWidth) {
  auto values = ScaledWalk(5000, 7, 100);
  Dac dac = Dac::Compress(values, GetParam());
  std::vector<int64_t> decoded;
  dac.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  for (size_t i = 0; i < values.size(); i += 131) {
    ASSERT_EQ(dac.Access(i), values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, DacChunkTest, ::testing::Values(4, 8, 16, 32));

TEST(Dac, SmallValuesCompressWell) {
  std::mt19937_64 rng(11);
  std::vector<int64_t> values(50000);
  for (auto& v : values) v = static_cast<int64_t>(rng() % 100);
  Dac dac = Dac::Compress(values);
  double bits_per_value =
      static_cast<double>(dac.SizeInBits()) / static_cast<double>(values.size());
  EXPECT_LT(bits_per_value, 12.0);  // ~1 byte + continuation bit + rank
}

// ---- LeCo ----

TEST(Leco, RoundTripAndAccess) {
  auto values = ScaledWalk(30000, 13, 50);
  Leco leco = Leco::Compress(values);
  std::vector<int64_t> decoded;
  leco.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    size_t i = rng() % values.size();
    ASSERT_EQ(leco.Access(i), values[i]);
  }
}

TEST(Leco, LinearDataCompressesExtremelyWell) {
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) values.push_back(7 * i + 3);
  Leco leco = Leco::Compress(values);
  double bits_per_value =
      static_cast<double>(leco.SizeInBits()) / static_cast<double>(values.size());
  EXPECT_LT(bits_per_value, 1.0);
}

TEST(Leco, EmptyAndTiny) {
  Leco empty = Leco::Compress(std::vector<int64_t>{});
  EXPECT_EQ(empty.size(), 0u);
  std::vector<int64_t> tiny = {5, -9, 100};
  Leco leco = Leco::Compress(tiny);
  std::vector<int64_t> decoded;
  leco.Decompress(&decoded);
  EXPECT_EQ(decoded, tiny);
}

TEST(Leco, StepsForcePartitioning) {
  std::vector<int64_t> values;
  for (int s = 0; s < 20; ++s) {
    for (int i = 0; i < 2000; ++i) values.push_back(s * 1000000);
  }
  Leco leco = Leco::Compress(values);
  std::vector<int64_t> decoded;
  leco.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  EXPECT_GE(leco.num_fragments(), 10u);
}

// ---- ALP ----

std::vector<double> DecimalDoubles(size_t n, uint64_t seed, int digits) {
  std::mt19937_64 rng(seed);
  double scale = std::pow(10.0, digits);
  std::vector<double> values;
  double cur = 500.0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<double>(static_cast<int>(rng() % 2001) - 1000) / scale;
    values.push_back(std::round(cur * scale) / scale);
  }
  return values;
}

TEST(Alp, RoundTripDecimalData) {
  for (int digits : {1, 2, 5, 7}) {
    auto values = DecimalDoubles(10000, static_cast<uint64_t>(digits), digits);
    Alp alp = Alp::Compress(values);
    std::vector<double> decoded;
    alp.Decompress(&decoded);
    ASSERT_EQ(decoded.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(std::bit_cast<uint64_t>(decoded[i]),
                std::bit_cast<uint64_t>(values[i]))
          << "digits=" << digits << " i=" << i;
    }
  }
}

TEST(Alp, RoundTripNonDecimalFallsBackToExceptions) {
  std::mt19937_64 rng(31);
  std::vector<double> values(5000);
  for (auto& v : values) {
    v = std::bit_cast<double>(rng());
    if (std::isnan(v)) v = 1.0;
  }
  Alp alp = Alp::Compress(values);
  std::vector<double> decoded;
  alp.Decompress(&decoded);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(decoded[i]),
              std::bit_cast<uint64_t>(values[i]));
  }
}

TEST(Alp, AccessMatchesDecompress) {
  auto values = DecimalDoubles(8000, 41, 3);
  Alp alp = Alp::Compress(values);
  std::vector<double> decoded;
  alp.Decompress(&decoded);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    size_t i = rng() % values.size();
    ASSERT_EQ(std::bit_cast<uint64_t>(alp.Access(i)),
              std::bit_cast<uint64_t>(decoded[i]));
  }
}

TEST(Alp, DecimalDataCompressesWell) {
  auto values = DecimalDoubles(50000, 43, 2);
  Alp alp = Alp::Compress(values);
  double ratio = static_cast<double>(alp.SizeInBits()) /
                 (64.0 * static_cast<double>(values.size()));
  EXPECT_LT(ratio, 0.45) << "2-decimal data should pack well below raw";
}

TEST(Alp, EmptyInput) {
  Alp alp = Alp::Compress(std::vector<double>{});
  EXPECT_EQ(alp.size(), 0u);
  std::vector<double> decoded;
  alp.Decompress(&decoded);
  EXPECT_TRUE(decoded.empty());
}

// ---- General-purpose LZ ----

template <typename Policy>
class GeneralPurposeTest : public ::testing::Test {};

using Policies =
    ::testing::Types<FastLzPolicy, LzHufFastPolicy, LzHufStrongPolicy>;
TYPED_TEST_SUITE(GeneralPurposeTest, Policies);

TYPED_TEST(GeneralPurposeTest, RawBytesRoundTrip) {
  std::mt19937_64 rng(51);
  for (size_t n : {0u, 1u, 7u, 100u, 10000u}) {
    std::vector<uint8_t> input(n);
    for (auto& b : input) b = static_cast<uint8_t>(rng() % 7);  // repetitive
    auto compressed = TypeParam::CompressBytes(input);
    std::vector<uint8_t> output(n);
    TypeParam::DecompressBytes(compressed, output);
    ASSERT_EQ(output, input) << "n=" << n;
  }
}

TYPED_TEST(GeneralPurposeTest, IncompressibleBytesRoundTrip) {
  std::mt19937_64 rng(53);
  std::vector<uint8_t> input(20000);
  for (auto& b : input) b = static_cast<uint8_t>(rng());
  auto compressed = TypeParam::CompressBytes(input);
  std::vector<uint8_t> output(input.size());
  TypeParam::DecompressBytes(compressed, output);
  ASSERT_EQ(output, input);
}

TYPED_TEST(GeneralPurposeTest, BlockwiseValuesRoundTrip) {
  auto values = ScaledWalk(12345, 57, 30);
  auto wrapped = BlockwiseBytes<TypeParam>::Compress(values);
  std::vector<int64_t> decoded;
  wrapped.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    size_t i = rng() % values.size();
    ASSERT_EQ(wrapped.Access(i), values[i]);
  }
  std::vector<int64_t> out(999);
  wrapped.DecompressRange(2000, out.size(), out.data());
  for (size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(out[j], values[2000 + j]);
  }
}

TEST(GeneralPurposeComparison, StrongBeatsFastOnText) {
  // Repetitive structured bytes: the entropy-coded LZ must win clearly.
  std::vector<uint8_t> input;
  std::mt19937_64 rng(61);
  const char* words[] = {"sensor", "reading", "temp", "2024-01-0", "value="};
  for (int i = 0; i < 3000; ++i) {
    const char* w = words[rng() % 5];
    input.insert(input.end(), w, w + std::strlen(w));
  }
  auto strong = LzHufStrongPolicy::CompressBytes(input);
  auto fast = FastLzPolicy::CompressBytes(input);
  EXPECT_LT(strong.size(), fast.size());
  std::vector<uint8_t> out(input.size());
  LzHufStrongPolicy::DecompressBytes(strong, out);
  EXPECT_EQ(out, input);
}

}  // namespace
}  // namespace neats
