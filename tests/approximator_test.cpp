#include "functions/approximator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "functions/kinds.hpp"

namespace neats {
namespace {

// Checks that the fragment's fitted function is within eps of every covered
// value, modulo the floor (so the allowed band is [-eps-1, eps] around the
// floored prediction... we check the un-floored prediction with 1 ULP slack).
void CheckFragmentApproximates(const std::vector<int64_t>& values,
                               const Fragment& frag, double slack = 1e-6) {
  for (uint64_t k = frag.start; k < frag.end; ++k) {
    double pred =
        PredictValue(frag.kind, frag.params,
                     static_cast<int64_t>(k - frag.origin) + 1);
    double err = std::abs(pred - static_cast<double>(values[k]));
    EXPECT_LE(err, static_cast<double>(frag.epsilon) +
                       slack * (1.0 + std::abs(pred)))
        << "kind=" << KindName(frag.kind) << " k=" << k;
  }
}

std::vector<int64_t> FromDoubles(const std::vector<double>& xs) {
  std::vector<int64_t> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) out[i] = std::llround(xs[i]);
  return out;
}

// --- Exact-generation tests: data generated from each kind (plus noise
// within eps) must be covered by a single fragment of that kind. ---

class ExactKindTest : public ::testing::TestWithParam<FunctionKind> {};

TEST_P(ExactKindTest, SingleFragmentCoversGeneratedData) {
  FunctionKind kind = GetParam();
  const int n = 300;
  const int64_t eps = 8;
  std::mt19937_64 rng(static_cast<uint64_t>(kind) + 17);
  std::uniform_int_distribution<int64_t> noise(-6, 6);

  std::vector<double> raw(n);
  for (int i = 0; i < n; ++i) {
    double x = i + 1;  // local coordinate, matches a fragment starting at 0
    double v = 0;
    switch (kind) {
      case FunctionKind::kLinear: v = 3.5 * x + 1000; break;
      case FunctionKind::kQuadratic: v = 0.25 * x * x + 500; break;
      case FunctionKind::kRadical: v = 120 * std::sqrt(x) + 40; break;
      case FunctionKind::kExponential: v = 900 * std::exp(0.018 * x); break;
      case FunctionKind::kPower: v = 15 * std::pow(x, 1.4); break;
      case FunctionKind::kLogarithm: v = 400 * std::log(x) + 800; break;
      case FunctionKind::kQuadMixed: v = 0.3 * x * x + 11 * x; break;
      case FunctionKind::kCubicOdd: v = 0.002 * x * x * x + 7 * x; break;
      case FunctionKind::kCubicMixed: v = 0.001 * x * x * x + 0.4 * x * x; break;
      case FunctionKind::kQuadraticFull: v = 0.2 * x * x - 9 * x + 4000; break;
      case FunctionKind::kGaussian:
        // Keep the tails comfortably above eps so ln(y - eps) stays defined,
        // and the peak/first-point ratio small enough that rounding the
        // (exactly interpolated) first value cannot push the peak out of the
        // eps band.
        v = 5000 * std::exp(-0.00008 * (x - 150) * (x - 150));
        break;
    }
    raw[i] = v;
  }
  std::vector<int64_t> values = FromDoubles(raw);
  // Through-first kinds interpolate the first value exactly; noise there is
  // amplified multiplicatively (Gaussian) or quadratically (QuadraticFull),
  // so the single-fragment property only holds for noise-free data.
  if (!IsThroughFirst(kind)) {
    for (auto& v : values) v += noise(rng);
  }

  Fragment frag = LongestFragment(values, 0, kind, eps);
  EXPECT_EQ(frag.start, 0u);
  EXPECT_EQ(frag.end, static_cast<uint64_t>(n))
      << "kind " << KindName(kind) << " stopped early at " << frag.end;
  CheckFragmentApproximates(values, frag, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ExactKindTest,
    ::testing::Values(FunctionKind::kLinear, FunctionKind::kQuadratic,
                      FunctionKind::kRadical, FunctionKind::kExponential,
                      FunctionKind::kPower, FunctionKind::kLogarithm,
                      FunctionKind::kQuadMixed, FunctionKind::kCubicOdd,
                      FunctionKind::kCubicMixed, FunctionKind::kQuadraticFull,
                      FunctionKind::kGaussian),
    [](const ::testing::TestParamInfo<FunctionKind>& info) {
      return std::string(KindName(info.param));
    });

// --- Maximality: the returned fragment cannot be extended by one point. ---

TEST(Approximator, LinearFragmentIsMaximal) {
  // Line then a break: fragment must stop exactly at the break.
  std::vector<int64_t> values;
  for (int i = 0; i < 100; ++i) values.push_back(10 * i + 5);
  for (int i = 0; i < 50; ++i) values.push_back(3000 - 100 * i);
  Fragment frag = LongestFragment(values, 0, FunctionKind::kLinear, 2);
  // The fragment may include a couple of points past the corner (a line can
  // still fit them within eps), but extending to its end+1 must fail.
  Fragment retry = FitRange(values, 0, frag.end, FunctionKind::kLinear, 2);
  EXPECT_EQ(retry.end, frag.end);
  FragmentBuilder builder(0, FunctionKind::kLinear, 2, values[0]);
  for (uint64_t k = 0; k < frag.end; ++k) {
    ASSERT_TRUE(builder.TryExtend(k, values[k]));
  }
  EXPECT_FALSE(builder.TryExtend(frag.end, values[frag.end]));
}

TEST(Approximator, ZeroEpsExactLine) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(7 * i - 300);
  Fragment frag = LongestFragment(values, 0, FunctionKind::kLinear, 0);
  EXPECT_EQ(frag.end, values.size());
  for (uint64_t k = 0; k < values.size(); ++k) {
    EXPECT_EQ(frag.Predict(k), values[k]);
  }
}

TEST(Approximator, ConstantSeriesCoveredByOneFragmentAnyKind) {
  std::vector<int64_t> values(500, 42);
  for (FunctionKind kind :
       {FunctionKind::kLinear, FunctionKind::kQuadratic, FunctionKind::kRadical,
        FunctionKind::kExponential, FunctionKind::kLogarithm}) {
    Fragment frag = LongestFragment(values, 0, kind, 1);
    EXPECT_EQ(frag.end, values.size()) << KindName(kind);
    CheckFragmentApproximates(values, frag);
  }
}

TEST(Approximator, ExponentialDomainGuard) {
  // Negative values: exponential/power kinds are inapplicable at start.
  std::vector<int64_t> values = {-5, -4, -3};
  Fragment frag = LongestFragment(values, 0, FunctionKind::kExponential, 1);
  EXPECT_EQ(frag.length(), 0u);
  frag = LongestFragment(values, 0, FunctionKind::kPower, 1);
  EXPECT_EQ(frag.length(), 0u);
  // ... but fine once shifted positive.
  std::vector<int64_t> shifted = {5, 4, 3};
  frag = LongestFragment(shifted, 0, FunctionKind::kExponential, 1);
  EXPECT_GT(frag.length(), 0u);
}

TEST(Approximator, ExponentialStopsWhenLogUndefined) {
  // y - eps <= 0 at the fourth point: fragment must stop before it.
  std::vector<int64_t> values = {100, 50, 25, 2, 1, 1};
  Fragment frag = LongestFragment(values, 0, FunctionKind::kExponential, 3);
  EXPECT_LE(frag.end, 3u);
  EXPECT_GT(frag.length(), 0u);
}

TEST(Approximator, GaussianInapplicableAtNonPositiveStart) {
  std::vector<int64_t> values = {0, 5, 10};
  Fragment frag = LongestFragment(values, 0, FunctionKind::kGaussian, 1);
  EXPECT_EQ(frag.length(), 0u);
}

TEST(Approximator, ThroughFirstKindsInterpolateFirstPoint) {
  std::mt19937_64 rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(1000 + static_cast<int64_t>(rng() % 200));
  }
  for (FunctionKind kind :
       {FunctionKind::kQuadraticFull, FunctionKind::kGaussian}) {
    Fragment frag = LongestFragment(values, 0, kind, 500);
    ASSERT_GT(frag.length(), 0u) << KindName(kind);
    // The first covered value must be predicted (nearly) exactly.
    double pred = PredictValue(frag.kind, frag.params, 1);
    EXPECT_NEAR(pred, static_cast<double>(values[0]),
                1e-9 * (1 + std::abs(pred)))
        << KindName(kind);
  }
}

TEST(Approximator, SingleTrailingPointFragment) {
  std::vector<int64_t> values = {0, 1000000, 3};
  Fragment frag = LongestFragment(values, 2, FunctionKind::kLinear, 0);
  EXPECT_EQ(frag.start, 2u);
  EXPECT_EQ(frag.end, 3u);
  EXPECT_EQ(frag.Predict(2), 3);
}

TEST(Approximator, PiecewiseCoversWholeSeries) {
  std::mt19937_64 rng(9);
  std::vector<int64_t> values;
  int64_t cur = 0;
  for (int i = 0; i < 5000; ++i) {
    cur += static_cast<int64_t>(rng() % 21) - 10;
    values.push_back(cur);
  }
  for (int64_t eps : {0, 1, 4, 64}) {
    auto fragments = PiecewiseApproximation(values, FunctionKind::kLinear, eps);
    uint64_t expected_start = 0;
    for (const auto& frag : fragments) {
      EXPECT_EQ(frag.start, expected_start);
      EXPECT_GT(frag.length(), 0u);
      CheckFragmentApproximates(values, frag);
      expected_start = frag.end;
    }
    EXPECT_EQ(expected_start, values.size());
  }
}

TEST(Approximator, LargerEpsNeverMoreFragments) {
  std::mt19937_64 rng(13);
  std::vector<int64_t> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(static_cast<int64_t>(
        2000 * std::sin(i * 0.01) + static_cast<double>(rng() % 50)));
  }
  size_t prev = SIZE_MAX;
  for (int64_t eps : {1, 2, 8, 32, 128, 1024}) {
    auto fragments = PiecewiseApproximation(values, FunctionKind::kLinear, eps);
    EXPECT_LE(fragments.size(), prev) << "eps=" << eps;
    prev = fragments.size();
  }
}

// Greedy longest-prefix partitioning yields the minimum number of pieces
// (Corollary 1). Verify against an O(n^2) DP that uses the same feasibility
// primitive on small inputs.
TEST(Approximator, GreedyMatchesDPPieceCount) {
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> values;
    int64_t cur = static_cast<int64_t>(rng() % 100);
    for (int i = 0; i < 120; ++i) {
      cur += static_cast<int64_t>(rng() % 31) - 15;
      values.push_back(cur);
    }
    const int64_t eps = 3;
    auto greedy = PiecewiseApproximation(values, FunctionKind::kLinear, eps);

    // DP over prefixes: dp[j] = min pieces to cover values[0, j).
    const size_t n = values.size();
    std::vector<int> dp(n + 1, INT32_MAX);
    dp[0] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (dp[i] == INT32_MAX) continue;
      FragmentBuilder builder(i, FunctionKind::kLinear, eps, values[i]);
      for (size_t j = i; j < n && builder.TryExtend(j, values[j]); ++j) {
        dp[j + 1] = std::min(dp[j + 1], dp[i] + 1);
      }
    }
    EXPECT_EQ(greedy.size(), static_cast<size_t>(dp[n])) << "trial " << trial;
  }
}

}  // namespace
}  // namespace neats
