// Tests for the network layer (src/net/): wire-protocol units, the
// client/server loopback round trip for every opcode and dialect,
// admission-control shedding, graceful drain, the poll(2) fallback
// backend, protocol hardening (the clobber/truncation/forged-length
// sweeps mirroring the WAL/manifest fuzz pattern), and the multi-client
// loopback concurrency test that runs under the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "store/neats_store.hpp"

namespace neats::net {
namespace {

// --- Protocol units -------------------------------------------------------

TEST(Protocol, FrameRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame;
  AppendFrame(&frame, Opcode::kAccess, 0, 42, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame, &h));
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_EQ(h.opcode, static_cast<uint8_t>(Opcode::kAccess));
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(h.payload_len, payload.size());
  EXPECT_TRUE(VerifyFrameCrc({frame.data(), kFrameHeaderBytes},
                             {frame.data() + kFrameHeaderBytes,
                              payload.size()}));
}

TEST(Protocol, CrcCatchesEveryBitFlipPosition) {
  std::vector<uint8_t> payload = {10, 20, 30};
  std::vector<uint8_t> frame;
  AppendFrame(&frame, Opcode::kRangeSum, 0, 7, payload);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x40;
    FrameHeader h;
    if (!DecodeFrameHeader(bad, &h)) continue;  // magic flip: caught earlier
    EXPECT_FALSE(VerifyFrameCrc(
        {bad.data(), kFrameHeaderBytes},
        {bad.data() + kFrameHeaderBytes, bad.size() - kFrameHeaderBytes}))
        << "flip at byte " << i << " went undetected";
  }
}

TEST(Protocol, PayloadReaderBoundsChecks) {
  std::vector<uint8_t> bytes(12, 0xAB);
  PayloadReader r(bytes);
  (void)r.U64();
  EXPECT_TRUE(r.ok());
  (void)r.U64();  // only 4 bytes left
  EXPECT_FALSE(r.ok());

  PayloadReader r2(bytes);
  std::vector<uint64_t> v;
  r2.U64Vec(1u << 20, &v);  // forged count far past the buffer
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(v.empty());
}

TEST(Protocol, JsonParserAcceptsAndRejects) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(R"({"op":"access","i":5,"id":9})", &v));
  ASSERT_NE(v.Find("i"), nullptr);
  uint64_t i = 0;
  EXPECT_TRUE(v.Find("i")->AsU64(&i));
  EXPECT_EQ(i, 5u);

  EXPECT_FALSE(ParseJson("{", &v));
  EXPECT_FALSE(ParseJson(R"({"a":1} trailing)", &v));
  EXPECT_FALSE(ParseJson(R"({"a":)", &v));
  std::string deep(100, '[');
  EXPECT_FALSE(ParseJson(deep, &v));  // past the depth limit, cleanly
  ASSERT_TRUE(ParseJson(R"({"x":-3.5e2,"y":12})", &v));
  EXPECT_FALSE(v.Find("x")->AsU64(&i));  // not integral
  EXPECT_TRUE(v.Find("y")->AsU64(&i));
}

// --- Loopback fixture -----------------------------------------------------

/// A store with deterministic contents behind a running server. The value
/// at index i is Truth(i) forever (appends only ever extend), so any
/// response can be checked exactly even while an appender runs.
class NetTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kInitial = 20000;

  static int64_t Truth(uint64_t i) {
    return static_cast<int64_t>((i * 2654435761u) % 100003u) - 50000;
  }

  void StartServer(NeatsServerOptions options = {},
                   uint64_t initial = kInitial) {
    NeatsStoreOptions store_options;
    store_options.shard_size = 4096;  // several sealed shards at this size
    store_options.log_sink = obs::NullLogSink();
    store_ = std::make_unique<NeatsStore>(store_options);
    std::vector<int64_t> values;
    values.reserve(initial);
    for (uint64_t i = 0; i < initial; ++i) values.push_back(Truth(i));
    store_->Append(values);
    server_ = std::make_unique<NeatsServer>(*store_, options);
    server_->Start();
  }

  Client Connect() { return Client::Connect("127.0.0.1", server_->port()); }

  /// The hostile-input probe: after feeding the server garbage, a fresh
  /// connection must still serve a correct response.
  void ExpectServerAlive() {
    Client c = Connect();
    EXPECT_EQ(c.Access(17), Truth(17));
  }

  std::unique_ptr<NeatsStore> store_;
  std::unique_ptr<NeatsServer> server_;
};

TEST_F(NetTest, EveryOpcodeRoundTrips) {
  StartServer();
  Client c = Connect();
  c.Ping();
  EXPECT_EQ(c.Size(), kInitial);
  EXPECT_EQ(c.Access(0), Truth(0));
  EXPECT_EQ(c.Access(kInitial - 1), Truth(kInitial - 1));

  std::vector<uint64_t> idx = {5, 9999, 3, 12345, 5, 19999};
  std::vector<int64_t> got = c.AccessBatch(idx);
  ASSERT_EQ(got.size(), idx.size());
  for (size_t k = 0; k < idx.size(); ++k) EXPECT_EQ(got[k], Truth(idx[k]));

  got = c.DecompressRange(4090, 20);  // crosses a shard boundary
  ASSERT_EQ(got.size(), 20u);
  for (size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], Truth(4090 + k));

  std::vector<IndexRange> ranges = {{0, 10}, {8000, 5}, {4095, 3}};
  got = c.DecompressRanges(ranges);
  ASSERT_EQ(got.size(), 18u);
  size_t at = 0;
  for (const IndexRange& r : ranges) {
    for (uint64_t k = 0; k < r.len; ++k) {
      EXPECT_EQ(got[at++], Truth(r.from + k));
    }
  }

  int64_t want = 0;
  for (uint64_t k = 100; k < 9100; ++k) want += Truth(k);
  EXPECT_EQ(c.RangeSum(100, 9000), want);

  const std::string stats = c.Stats();
  JsonValue doc;
  ASSERT_TRUE(ParseJson(stats, &doc));
  ASSERT_NE(doc.Find("server"), nullptr);
  ASSERT_NE(doc.Find("store"), nullptr);
  EXPECT_NE(doc.Find("server")->Find("counters"), nullptr);
}

TEST_F(NetTest, TypedErrorsComeBackTyped) {
  StartServer();
  Client c = Connect();
  EXPECT_THROW((void)c.Access(kInitial), Error);       // out of range
  EXPECT_THROW((void)c.RangeSum(kInitial - 5, 10), Error);
  EXPECT_THROW((void)c.DecompressRange(0, uint64_t{1} << 40), Error);
  // The connection survives typed errors — they are responses, not faults.
  EXPECT_EQ(c.Access(3), Truth(3));
  try {
    (void)c.Access(kInitial + 1);
    FAIL() << "expected a typed error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kFailed);  // kOutOfRange maps to kFailed
  }
}

TEST_F(NetTest, PipelinedAccessesCoalesceAndAnswerInOrder) {
  NeatsServerOptions options;
  options.worker_threads = 0;  // inline execution: deterministic batching
  StartServer(options);

  // One write carrying 32 access frames: the server parses them into one
  // queue and feeds the run to a single store AccessBatch call.
  const int kFd = ConnectTo("127.0.0.1", server_->port());
  std::vector<uint8_t> burst;
  for (uint64_t k = 0; k < 32; ++k) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U64(k * 601 % kInitial);
    AppendFrame(&burst, Opcode::kAccess, 0, /*id=*/100 + k, payload);
  }
  SendAll(kFd, burst);
  for (uint64_t k = 0; k < 32; ++k) {
    uint8_t header[kFrameHeaderBytes];
    ASSERT_TRUE(RecvAll(kFd, header));
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(header, &h));
    ASSERT_EQ(h.status, 0u);
    ASSERT_EQ(h.id, 100 + k) << "responses must keep request order";
    std::vector<uint8_t> payload(h.payload_len);
    ASSERT_TRUE(RecvAll(kFd, payload));
    PayloadReader r(payload);
    EXPECT_EQ(r.I64(), Truth(k * 601 % kInitial));
  }
  ::close(kFd);

  // The server's own accounting saw at least one multi-request batch.
  Client c = Connect();
  JsonValue doc;
  ASSERT_TRUE(ParseJson(c.Stats(), &doc));
  const JsonValue* batches =
      doc.Find("server")->Find("counters")->Find("coalesce.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_GE(batches->number, 1.0);
}

TEST_F(NetTest, AdmissionGateShedsWithTypedOverload) {
  NeatsServerOptions options;
  options.max_inflight = 0;  // shed everything: deterministic
  StartServer(options);
  Client c = Connect();
  try {
    (void)c.Access(1);
    FAIL() << "expected the admission gate to shed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kUnavailable);  // kOverloaded maps here
  }
  JsonValue doc;
  ASSERT_TRUE(ParseJson(c.Stats(), &doc));  // stats still answers: no gate
  EXPECT_GE(doc.Find("server")->Find("counters")->Find("req.shed")->number,
            1.0);
}

TEST_F(NetTest, JsonDialectServesAndRejects) {
  StartServer();
  const int fd = ConnectTo("127.0.0.1", server_->port());
  auto ask = [&](const std::string& line) {
    SendAll(fd, {reinterpret_cast<const uint8_t*>(line.data()),
                 line.size()});
    std::string response;
    uint8_t b;
    while (RecvAll(fd, {&b, 1}) && b != '\n') {
      response.push_back(static_cast<char>(b));
    }
    return response;
  };
  JsonValue v;
  ASSERT_TRUE(ParseJson(ask("{\"op\":\"access\",\"i\":7,\"id\":3}\n"), &v));
  EXPECT_TRUE(v.Find("ok")->boolean);
  EXPECT_EQ(v.Find("value")->integer, Truth(7));
  EXPECT_EQ(v.Find("id")->integer, 3);

  ASSERT_TRUE(
      ParseJson(ask("{\"op\":\"range_sum\",\"from\":0,\"len\":3}\n"), &v));
  EXPECT_EQ(v.Find("sum")->integer, Truth(0) + Truth(1) + Truth(2));

  ASSERT_TRUE(ParseJson(ask("{\"op\":\"nope\"}\n"), &v));
  EXPECT_FALSE(v.Find("ok")->boolean);
  EXPECT_EQ(v.Find("status")->string, "bad_request");

  ASSERT_TRUE(ParseJson(ask("{\"op\":\"stats\"}\n"), &v));
  EXPECT_TRUE(v.Find("ok")->boolean);
  ASSERT_NE(v.Find("stats"), nullptr);
  EXPECT_NE(v.Find("stats")->Find("server"), nullptr);

  ASSERT_TRUE(ParseJson(ask("not json at all\n"), &v));
  EXPECT_FALSE(v.Find("ok")->boolean);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(NetTest, HttpStatsRouteAnswersCurl) {
  StartServer();
  const int fd = ConnectTo("127.0.0.1", server_->port());
  const std::string req =
      "GET /stats HTTP/1.0\r\nHost: localhost\r\nUser-Agent: curl\r\n\r\n";
  SendAll(fd, {reinterpret_cast<const uint8_t*>(req.data()), req.size()});
  std::string response;
  uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closes after the response
    response.append(reinterpret_cast<const char*>(buf),
                    static_cast<size_t>(n));
  }
  ::close(fd);
  ASSERT_TRUE(response.rfind("HTTP/1.0 200 OK\r\n", 0) == 0) << response;
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(response.substr(body_at + 4), &doc));
  EXPECT_NE(doc.Find("server"), nullptr);

  // Unknown routes 404 and close; the server stays up.
  const int fd2 = ConnectTo("127.0.0.1", server_->port());
  const std::string bad = "GET /nope HTTP/1.0\r\n\r\n";
  SendAll(fd2, {reinterpret_cast<const uint8_t*>(bad.data()), bad.size()});
  std::string r2;
  while (true) {
    const ssize_t n = ::recv(fd2, buf, sizeof(buf), 0);
    if (n <= 0) break;
    r2.append(reinterpret_cast<const char*>(buf), static_cast<size_t>(n));
  }
  ::close(fd2);
  EXPECT_TRUE(r2.rfind("HTTP/1.0 404", 0) == 0) << r2;
  ExpectServerAlive();
}

TEST_F(NetTest, GracefulDrainFinishesInFlightWork) {
  StartServer();
  Client c = Connect();
  // Queue work, then ask for a drain before reading anything back.
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(0);
  w.U64(kInitial);
  const uint64_t id = c.SendRequest(Opcode::kRangeSum, payload);
  // Wait until the IO thread has admitted the request — a stop that lands
  // before the bytes are even read is allowed to drop them.
  while (true) {
    const obs::MetricsSnapshot snap = server_->StatsSnapshot();
    const uint64_t* admitted = snap.counter("req.range_sum");
    if (admitted != nullptr && *admitted >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->RequestStop();
  Client::Response r = c.ReadResponse();  // the drain completed this
  EXPECT_EQ(r.id, id);
  EXPECT_EQ(r.status, WireStatus::kOk);
  server_->Stop();
  // The listener is gone after the drain.
  EXPECT_THROW((void)Client::Connect("127.0.0.1", server_->port()), Error);
}

TEST_F(NetTest, PollBackendServesTheSameProtocol) {
  NeatsServerOptions options;
  options.use_poll = true;
  StartServer(options);
  Client c = Connect();
  EXPECT_EQ(c.Access(11), Truth(11));
  std::vector<uint64_t> idx = {1, 2, 3};
  EXPECT_EQ(c.AccessBatch(idx).size(), 3u);
  EXPECT_EQ(c.Size(), kInitial);
  ExpectServerAlive();
}

// --- Protocol hardening sweeps (the WAL/manifest clobber pattern) ---------

/// Sends `bytes`, half-closes, and drains whatever the server answers.
/// The assertion is survival: the server must neither crash nor hang.
void FeedHostileBytes(uint16_t port, std::span<const uint8_t> bytes) {
  const int fd = ConnectTo("127.0.0.1", port);
  SendAll(fd, bytes);
  ::shutdown(fd, SHUT_WR);
  uint8_t sink[4096];
  while (true) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0) break;
  }
  ::close(fd);
}

TEST_F(NetTest, TruncationSweepEveryPrefixSurvives) {
  StartServer();
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(123);
  std::vector<uint8_t> frame;
  AppendFrame(&frame, Opcode::kAccess, 0, 5, payload);
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    FeedHostileBytes(server_->port(), {frame.data(), cut});
  }
  ExpectServerAlive();
}

TEST_F(NetTest, ClobberSweepEveryHeaderAndPayloadByteSurvives) {
  StartServer();
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U32(2);
  w.U64(1);
  w.U64(2);
  std::vector<uint8_t> frame;
  AppendFrame(&frame, Opcode::kAccessBatch, 0, 6, payload);
  for (size_t at = 0; at < frame.size(); ++at) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::vector<uint8_t> bad = frame;
      bad[at] ^= flip;
      FeedHostileBytes(server_->port(), bad);
    }
  }
  ExpectServerAlive();
}

TEST_F(NetTest, ForgedLengthWordsSurvive) {
  StartServer();
  using wire_internal::PutU32;
  // A header whose length word promises far more than max_frame_bytes:
  // the server must reject it up front, not wait for 4 GiB.
  std::vector<uint8_t> frame;
  AppendFrame(&frame, Opcode::kPing, 0, 1, {});
  PutU32(frame.data() + 16, 0xFFFFFFFFu);  // forged payload_len, stale CRC
  FeedHostileBytes(server_->port(), frame);

  // A forged length with a *recomputed* CRC — framing checks alone must
  // still bound it.
  std::vector<uint8_t> forged;
  AppendFrame(&forged, Opcode::kPing, 0, 2, {});
  PutU32(forged.data() + 16, uint32_t{1} << 30);
  uint32_t crc = Crc32c({forged.data(), 20});
  PutU32(forged.data() + 20, crc);
  FeedHostileBytes(server_->port(), forged);

  // A length word smaller than the bytes actually sent: the remainder is
  // reinterpreted as the next frame header and rejected as garbage.
  std::vector<uint8_t> payload;
  PayloadWriter w(&payload);
  w.U64(9);
  std::vector<uint8_t> shortframe;
  AppendFrame(&shortframe, Opcode::kAccess, 0, 3, payload);
  shortframe.resize(shortframe.size() + 64, 0xEE);
  FeedHostileBytes(server_->port(), shortframe);

  // Random-garbage openings in every dialect's first-byte class.
  for (uint8_t lead : {uint8_t{'N'}, uint8_t{'{'}, uint8_t{'G'},
                       uint8_t{0x00}, uint8_t{0xFF}}) {
    std::vector<uint8_t> garbage(64, lead);
    FeedHostileBytes(server_->port(), garbage);
  }
  ExpectServerAlive();
}

TEST_F(NetTest, OversizedJsonLineCloses) {
  NeatsServerOptions options;
  options.max_frame_bytes = 4096;  // small cap to keep the test quick
  StartServer(options);
  std::vector<uint8_t> line(options.max_frame_bytes + 512, '{');
  FeedHostileBytes(server_->port(), line);  // no newline, over the cap
  ExpectServerAlive();
}

// --- Loopback concurrency (runs under the TSan CI job) --------------------

TEST_F(NetTest, ConcurrentMixedClientsAgainstLiveAppender) {
  StartServer();
  const uint64_t initial = store_->size();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checks{0};

  // A live appender: the store grows while clients read. Truth(i) stays
  // the value at i forever, so every response remains exactly checkable.
  std::thread appender([&] {
    uint64_t at = kInitial;
    while (!stop.load(std::memory_order_relaxed) && at < kInitial + 40000) {
      std::vector<int64_t> chunk;
      chunk.reserve(512);
      for (uint64_t k = 0; k < 512; ++k) chunk.push_back(Truth(at + k));
      store_->Append(chunk);
      at += 512;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        Client c = Client::Connect("127.0.0.1", server_->port());
        uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
        auto next = [&rng] {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          return rng;
        };
        for (int iter = 0; iter < 300; ++iter) {
          const uint64_t size = c.Size();
          ASSERT_GE(size, initial);  // sizes only grow
          switch (iter % 4) {
            case 0: {
              const uint64_t i = next() % size;
              ASSERT_EQ(c.Access(i), Truth(i));
              break;
            }
            case 1: {
              std::vector<uint64_t> idx(16);
              for (uint64_t& v : idx) v = next() % size;
              std::vector<int64_t> got = c.AccessBatch(idx);
              for (size_t k = 0; k < idx.size(); ++k) {
                ASSERT_EQ(got[k], Truth(idx[k]));
              }
              break;
            }
            case 2: {
              const uint64_t len = 64 + next() % 256;
              const uint64_t from = next() % (size - len);
              int64_t want = 0;
              for (uint64_t k = from; k < from + len; ++k) want += Truth(k);
              ASSERT_EQ(c.RangeSum(from, len), want);
              break;
            }
            default: {
              const uint64_t from = next() % (size - 32);
              std::vector<int64_t> got = c.DecompressRange(from, 32);
              for (size_t k = 0; k < got.size(); ++k) {
                ASSERT_EQ(got[k], Truth(from + k));
              }
              break;
            }
          }
          checks.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << t << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  stop.store(true);
  appender.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(checks.load(), kClients * 300u);
}

}  // namespace
}  // namespace neats::net
