#include "succinct/elias_fano.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace neats {
namespace {

size_t NaiveRank(const std::vector<uint64_t>& values, uint64_t x) {
  return static_cast<size_t>(
      std::upper_bound(values.begin(), values.end(), x) - values.begin());
}

void CheckSequence(const std::vector<uint64_t>& values) {
  EliasFano ef(values);
  ASSERT_EQ(ef.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(ef.Access(i), values[i]) << "access at " << i;
  }
  // Rank probes: all values, their neighbours, and extremes.
  std::vector<uint64_t> probes = {0, 1};
  for (uint64_t v : values) {
    if (v > 0) probes.push_back(v - 1);
    probes.push_back(v);
    probes.push_back(v + 1);
  }
  if (!values.empty()) probes.push_back(values.back() + 100);
  for (uint64_t x : probes) {
    ASSERT_EQ(ef.Rank(x), NaiveRank(values, x)) << "rank of " << x;
  }
}

TEST(EliasFano, Empty) {
  EliasFano ef{std::vector<uint64_t>{}};
  EXPECT_EQ(ef.size(), 0u);
  EXPECT_EQ(ef.Rank(42), 0u);
}

TEST(EliasFano, SingleElement) {
  CheckSequence({0});
  CheckSequence({5});
  CheckSequence({1ULL << 40});
}

TEST(EliasFano, DenseConsecutive) {
  std::vector<uint64_t> values(2000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  CheckSequence(values);
}

TEST(EliasFano, WithDuplicates) {
  CheckSequence({3, 3, 3, 3});
  CheckSequence({0, 0, 1, 1, 1, 7, 7, 100, 100});
}

TEST(EliasFano, AllZeros) { CheckSequence(std::vector<uint64_t>(100, 0)); }

class EliasFanoRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EliasFanoRandomTest, RandomMonotoneWithGapScale) {
  uint64_t gap_scale = GetParam();
  std::mt19937_64 rng(gap_scale * 31 + 7);
  std::vector<uint64_t> values;
  uint64_t cur = 0;
  for (int i = 0; i < 3000; ++i) {
    cur += rng() % (gap_scale + 1);
    values.push_back(cur);
  }
  CheckSequence(values);
}

INSTANTIATE_TEST_SUITE_P(GapScales, EliasFanoRandomTest,
                         ::testing::Values(1, 2, 10, 1000, 1000000,
                                           1ULL << 40));

TEST(EliasFano, ExplicitUniverse) {
  std::vector<uint64_t> values = {1, 5, 9};
  EliasFano ef(values, 1000);
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(ef.Access(i), values[i]);
  EXPECT_EQ(ef.Rank(0), 0u);
  EXPECT_EQ(ef.Rank(5), 2u);
  EXPECT_EQ(ef.Rank(999), 3u);
}

// The batched predecessor entry point must agree with the scalar
// Predecessor on every query of a non-decreasing batch — across dense,
// sparse and pile-up shapes, and across local steps, long jumps (which
// trigger the scanner's resync rescan) and repeated queries.
TEST(EliasFano, PredecessorScannerMatchesScalarPredecessor) {
  std::mt19937_64 rng(17);
  for (uint64_t gap_scale : {uint64_t{1}, uint64_t{3}, uint64_t{1000},
                             uint64_t{1} << 20}) {
    std::vector<uint64_t> values = {0};  // anchor so every query has a pred
    uint64_t cur = 0;
    for (int i = 0; i < 4000; ++i) {
      cur += rng() % (gap_scale + 1);
      values.push_back(cur);
    }
    // A pile-up: many equal elements in one bucket.
    for (int i = 0; i < 200; ++i) values.push_back(cur + 5);
    EliasFano ef(values);
    std::vector<uint64_t> queries;
    uint64_t q = 0;
    const uint64_t top = values.back() + 2 * gap_scale + 10;
    while (q < top) {
      queries.push_back(q);
      if (rng() % 8 == 0) q += top / 7;  // long jump: resync path
      else q += rng() % (2 * gap_scale + 2);
      if (rng() % 5 == 0 && !queries.empty()) queries.push_back(queries.back());
    }
    queries.push_back(top + 1000);  // past the last element
    EliasFano::PredecessorScanner scanner(ef);
    for (uint64_t x : queries) {
      auto expected = ef.Predecessor(x);
      auto got = scanner.Next(x);
      ASSERT_EQ(got.first, expected.first) << "x=" << x;
      ASSERT_EQ(got.second, expected.second) << "x=" << x;
    }
  }
}

TEST(EliasFano, SpaceIsNearOptimal) {
  // m values over universe u should take about m*(2 + log(u/m)) bits.
  const size_t m = 100000;
  const uint64_t u = 1ULL << 30;
  std::mt19937_64 rng(11);
  std::vector<uint64_t> values(m);
  for (auto& v : values) v = rng() % u;
  std::sort(values.begin(), values.end());
  EliasFano ef(values);
  double bits_per_element =
      static_cast<double>(ef.SizeInBits()) / static_cast<double>(m);
  // Theory: 2 + log2(u/m) ~ 2 + 13.4 = 15.4; allow generous slack for the
  // rank directories.
  EXPECT_LT(bits_per_element, 22.0);
}

}  // namespace
}  // namespace neats
