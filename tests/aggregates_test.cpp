// Tests for aggregate queries on compressed data (the paper's future-work
// direction, Sec. VI): the exact range sum must match a naive scan, and the
// function-only approximate sum must honour its reported error bound.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/neats.hpp"
#include "datasets/generators.hpp"

namespace neats {
namespace {

int64_t NaiveSum(const std::vector<int64_t>& values, size_t from, size_t len) {
  int64_t sum = 0;
  for (size_t i = from; i < from + len; ++i) sum += values[i];
  return sum;
}

class AggregateTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AggregateTest, ExactRangeSumMatchesNaive) {
  Dataset ds = MakeDataset(GetParam(), 8000);
  Neats blob = Neats::Compress(ds.values);
  std::mt19937_64 rng(1);
  for (int t = 0; t < 50; ++t) {
    size_t from = rng() % (ds.values.size() - 1);
    size_t len = 1 + rng() % std::min<size_t>(3000, ds.values.size() - from);
    ASSERT_EQ(blob.RangeSum(from, len), NaiveSum(ds.values, from, len));
  }
}

TEST_P(AggregateTest, ApproximateSumHonoursItsBound) {
  Dataset ds = MakeDataset(GetParam(), 8000);
  Neats blob = Neats::Compress(ds.values);
  std::mt19937_64 rng(2);
  for (int t = 0; t < 50; ++t) {
    size_t from = rng() % (ds.values.size() - 1);
    size_t len = 1 + rng() % std::min<size_t>(3000, ds.values.size() - from);
    auto approx = blob.ApproximateRangeSum(from, len);
    double exact = static_cast<double>(NaiveSum(ds.values, from, len));
    ASSERT_LE(std::abs(approx.value - exact), approx.error_bound + 1e-6)
        << GetParam() << " from=" << from << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(SomeDatasets, AggregateTest,
                         ::testing::Values("IT", "US", "ECG", "AP", "BT",
                                           "WD"));

TEST(Aggregates, PerfectLineHasZeroErrorBound) {
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(3 * i + 11);
  Neats blob = Neats::Compress(values);
  auto approx = blob.ApproximateRangeSum(100, 1000);
  EXPECT_EQ(approx.error_bound, 0.0);
  EXPECT_EQ(static_cast<int64_t>(approx.value), NaiveSum(values, 100, 1000));
}

TEST(Aggregates, WholeSeriesSum) {
  std::mt19937_64 rng(3);
  std::vector<int64_t> values;
  int64_t cur = -1000;
  for (int i = 0; i < 10000; ++i) {
    cur += static_cast<int64_t>(rng() % 21) - 10;
    values.push_back(cur);
  }
  Neats blob = Neats::Compress(values);
  EXPECT_EQ(blob.RangeSum(0, values.size()),
            NaiveSum(values, 0, values.size()));
  auto approx = blob.ApproximateRangeSum(0, values.size());
  EXPECT_LE(std::abs(approx.value -
                     static_cast<double>(NaiveSum(values, 0, values.size()))),
            approx.error_bound + 1e-6);
}

TEST(Aggregates, NegativeShiftedSeries) {
  std::vector<int64_t> values;
  for (int i = 0; i < 3000; ++i) values.push_back(-500000 + 7 * i + (i % 5));
  Neats blob = Neats::Compress(values);
  for (size_t from : {size_t{0}, size_t{1234}}) {
    ASSERT_EQ(blob.RangeSum(from, 1500), NaiveSum(values, from, 1500));
    auto approx = blob.ApproximateRangeSum(from, 1500);
    ASSERT_LE(std::abs(approx.value -
                       static_cast<double>(NaiveSum(values, from, 1500))),
              approx.error_bound + 1e-6);
  }
}

}  // namespace
}  // namespace neats
