// The SeriesCodec conformance suite: one typed battery instantiated over
// every registered codec (Neats, NeatsLossyExact, LecoCodec, AlpCodec,
// GorillaCodec, ChimpCodec). Each codec must
//   - round-trip every test series exactly (full-range decompression),
//   - answer random access, sorted batches, multi-range decompression and
//     range sums identically to the raw values,
//   - serialize canonically (Serialize -> Deserialize -> Serialize is
//     byte-identical; View re-serializes byte-identically too),
//   - reject truncated and clobbered blobs by throwing (never by reading
//     out of bounds — the sanitizer CI job runs this suite),
// plus registry-level checks (dispatch by CodecId, zero-copy flags, unique
// names). This is the executable form of the SeriesCodec contract in
// src/core/series_codec.hpp.

#include "codecs/codec_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "codecs/alp_codec.hpp"
#include "codecs/leco_codec.hpp"
#include "codecs/lossy_exact_codec.hpp"
#include "codecs/xor_codec.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "core/series_codec.hpp"
#include "require_error.hpp"

namespace neats {
namespace {

// The concept is the contract; every shipped codec must model it.
static_assert(SeriesCodec<Neats>);
static_assert(SeriesCodec<NeatsLossyExact>);
static_assert(SeriesCodec<LecoCodec>);
static_assert(SeriesCodec<AlpCodec>);
static_assert(SeriesCodec<GorillaCodec>);
static_assert(SeriesCodec<ChimpCodec>);

// A series mixing regimes (exponential growth, ramp, noisy plateau,
// quadratic arc) so partition-based codecs get genuinely different
// fragments.
std::vector<int64_t> MixedSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    values.push_back(static_cast<int64_t>(
        100.0 * std::exp(0.004 * static_cast<double>(i))));
  }
  while (values.size() < 2 * quarter) values.push_back(values.back() + 9);
  while (values.size() < 3 * quarter) {
    values.push_back(50000 + static_cast<int64_t>(rng() % 64));
  }
  while (values.size() < n) {
    double x = static_cast<double>(values.size() - 3 * quarter);
    values.push_back(60000 - static_cast<int64_t>(0.02 * x * x) +
                     static_cast<int64_t>(rng() % 8));
  }
  return values;
}

// The edge shapes every codec must survive: negatives, constants, huge
// magnitudes past double's 2^53 integer range (exercising AlpCodec's
// exception list), and sign flips.
std::vector<std::vector<int64_t>> EdgeSeries() {
  std::vector<std::vector<int64_t>> all;
  all.push_back({});                // empty
  all.push_back({42});              // single value
  all.push_back({-7, -7, -7, -7});  // constant negative
  std::vector<int64_t> extremes;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 3000; ++i) {
    int64_t v = static_cast<int64_t>(rng() & ((uint64_t{1} << 60) - 1));
    extremes.push_back(i % 2 == 0 ? v : -v);
  }
  all.push_back(std::move(extremes));
  return all;
}

template <typename C>
class CodecConformanceTest : public ::testing::Test {
 protected:
  std::vector<int64_t> series_ = MixedSeries(12000, 7);
};

using AllCodecs = ::testing::Types<Neats, NeatsLossyExact, LecoCodec,
                                   AlpCodec, GorillaCodec, ChimpCodec>;
TYPED_TEST_SUITE(CodecConformanceTest, AllCodecs);

TYPED_TEST(CodecConformanceTest, RoundTripsExactly) {
  std::vector<std::vector<int64_t>> datasets = EdgeSeries();
  datasets.push_back(this->series_);
  for (const std::vector<int64_t>& values : datasets) {
    TypeParam c = TypeParam::Compress(values, {});
    ASSERT_EQ(c.size(), values.size());
    std::vector<int64_t> decoded(values.size());
    c.DecompressRange(0, values.size(), decoded.data());
    ASSERT_EQ(decoded, values);
    EXPECT_GT(c.SizeInBits(), 0u);
  }
}

TYPED_TEST(CodecConformanceTest, RandomAccessMatchesScan) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  std::mt19937_64 rng(11);
  for (int t = 0; t < 2000; ++t) {
    uint64_t k = rng() % this->series_.size();
    ASSERT_EQ(c.Access(k), this->series_[k]) << k;
  }
  EXPECT_EQ(c.Access(0), this->series_.front());
  EXPECT_EQ(c.Access(this->series_.size() - 1), this->series_.back());
}

TYPED_TEST(CodecConformanceTest, SortedAccessBatchMatchesScalar) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    size_t count = 1 + rng() % 400;
    std::vector<uint64_t> idx(count);
    for (auto& k : idx) k = rng() % this->series_.size();
    std::sort(idx.begin(), idx.end());
    std::vector<int64_t> out(count);
    c.AccessBatch(idx, out.data());
    for (size_t j = 0; j < count; ++j) {
      ASSERT_EQ(out[j], this->series_[idx[j]]) << idx[j];
    }
  }
  c.AccessBatch(std::span<const uint64_t>(), nullptr);  // empty batch legal
}

TYPED_TEST(CodecConformanceTest, DecompressRangesAndRangeSums) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  std::vector<int64_t> prefix(this->series_.size() + 1, 0);
  for (size_t i = 0; i < this->series_.size(); ++i) {
    prefix[i + 1] = prefix[i] + this->series_[i];
  }
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<IndexRange> ranges;
    size_t total = 0;
    for (int r = 0; r < 6; ++r) {
      uint64_t from = rng() % this->series_.size();
      uint64_t len =
          rng() % std::min<uint64_t>(500, this->series_.size() - from);
      ranges.push_back({from, len});
      total += len;
    }
    ranges.push_back({0, 0});  // empty range is legal anywhere
    std::vector<int64_t> got(total);
    c.DecompressRanges(ranges, got.data());
    size_t off = 0;
    for (const IndexRange& r : ranges) {
      for (uint64_t j = 0; j < r.len; ++j) {
        ASSERT_EQ(got[off + j], this->series_[r.from + j]);
      }
      off += r.len;
      ASSERT_EQ(c.RangeSum(r.from, r.len), prefix[r.from + r.len] - prefix[r.from]);
    }
  }
}

// Serialize -> Deserialize -> Serialize must reproduce the bytes, and the
// deserialized object must answer queries identically.
TYPED_TEST(CodecConformanceTest, SerializationIsCanonical) {
  for (const std::vector<int64_t>& values :
       {this->series_, std::vector<int64_t>{}, std::vector<int64_t>{5}}) {
    TypeParam c = TypeParam::Compress(values, {});
    std::vector<uint8_t> blob;
    c.Serialize(&blob);
    TypeParam back = TypeParam::Deserialize(blob);
    ASSERT_EQ(back.size(), values.size());
    for (size_t k = 0; k < values.size(); k += 1 + values.size() / 300) {
      ASSERT_EQ(back.Access(k), values[k]);
    }
    std::vector<uint8_t> again;
    back.Serialize(&again);
    EXPECT_EQ(blob, again);
  }
}

// View must serve the same values as Deserialize and re-serialize the same
// bytes, whether it borrows (kZeroCopyView) or falls back to an owning load.
TYPED_TEST(CodecConformanceTest, ViewMatchesDeserialize) {
  TypeParam c = TypeParam::Compress(this->series_, {});
  std::vector<uint8_t> blob;
  c.Serialize(&blob);
  // Word-backed copy: borrow mode requires an 8-byte-aligned buffer.
  std::vector<uint64_t> aligned((blob.size() + 7) / 8);
  std::memcpy(aligned.data(), blob.data(), blob.size());
  std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(aligned.data()), blob.size());
  TypeParam viewed = TypeParam::View(bytes);
  ASSERT_EQ(viewed.size(), this->series_.size());
  std::mt19937_64 rng(19);
  for (int t = 0; t < 500; ++t) {
    uint64_t k = rng() % this->series_.size();
    ASSERT_EQ(viewed.Access(k), this->series_[k]) << k;
  }
  std::vector<int64_t> decoded(this->series_.size());
  viewed.DecompressRange(0, this->series_.size(), decoded.data());
  EXPECT_EQ(decoded, this->series_);
  std::vector<uint8_t> again;
  viewed.Serialize(&again);
  EXPECT_EQ(blob, again);
}

// Truncations must throw; arbitrary word clobbers must either throw or load
// into an object that serves *something* without out-of-bounds access (the
// sanitizer job turns any OOB into a failure). Payload-only flips (e.g.
// correction bits) legitimately decode to different values — exactness is
// only required of intact blobs.
TYPED_TEST(CodecConformanceTest, CorruptBlobsAreRejected) {
  TypeParam c = TypeParam::Compress(MixedSeries(3000, 29), {});
  std::vector<uint8_t> blob;
  c.Serialize(&blob);
  for (size_t keep : {size_t{0}, size_t{7}, blob.size() / 3, blob.size() - 8}) {
    std::vector<uint8_t> cut(blob.begin(),
                             blob.begin() + static_cast<ptrdiff_t>(keep));
    EXPECT_NEATS_ERROR(TypeParam::Deserialize(cut), "");
  }
  // Wrong magic must name the format mismatch.
  std::vector<uint8_t> junk(64, 0xAB);
  EXPECT_NEATS_ERROR(TypeParam::Deserialize(junk), "not a");

  // Clobber sweep: flip one word at a time across the blob (strided to keep
  // the suite fast, always covering the header words).
  const size_t stride = std::max<size_t>(8, (blob.size() / 64) & ~size_t{7});
  for (size_t w = 0; w + 8 <= blob.size();
       w += (w < 128 ? 8 : stride)) {
    std::vector<uint8_t> evil = blob;
    for (int b = 0; b < 8; ++b) evil[w + static_cast<size_t>(b)] ^= 0xFF;
    try {
      TypeParam loaded = TypeParam::Deserialize(evil);
      std::vector<int64_t> sink(loaded.size());
      if (loaded.size() > 0) {
        loaded.DecompressRange(0, loaded.size(), sink.data());
        for (uint64_t k = 0; k < loaded.size(); k += 1 + loaded.size() / 17) {
          (void)loaded.Access(k);
        }
      }
    } catch (const Error&) {
      // A loader or decode check caught the clobber — the expected case.
    }
  }
}

// ---------------------------------------------------------------------------
// Registry-level dispatch.
// ---------------------------------------------------------------------------

TEST(CodecRegistry, DispatchesEveryIdAndNamesAreUnique) {
  std::vector<int64_t> values = MixedSeries(6000, 31);
  std::set<std::string> names;
  for (CodecId id : CodecRegistry::All()) {
    names.insert(CodecName(id));
    std::unique_ptr<SealedSeries> sealed =
        CodecRegistry::Compress(id, values, {});
    ASSERT_EQ(sealed->codec(), id);
    ASSERT_EQ(sealed->size(), values.size());
    std::vector<uint8_t> blob;
    sealed->Serialize(&blob);
    for (bool allow_view : {false, true}) {
      // In view mode the blob vector stays alive across the queries below.
      std::unique_ptr<SealedSeries> opened =
          CodecRegistry::Open(id, blob, allow_view);
      ASSERT_EQ(opened->size(), values.size());
      std::mt19937_64 rng(33);
      for (int t = 0; t < 200; ++t) {
        uint64_t k = rng() % values.size();
        ASSERT_EQ(opened->Access(k), values[k]) << CodecName(id);
      }
      ASSERT_EQ(opened->RangeSum(100, 1000),
                sealed->RangeSum(100, 1000));
      Neats::ApproximateAggregate agg = opened->ApproximateRangeSum(50, 500);
      int64_t exact = sealed->RangeSum(50, 500);
      EXPECT_LE(std::abs(agg.value - static_cast<double>(exact)),
                agg.error_bound + 1e-6);
    }
  }
  EXPECT_EQ(names.size(), CodecRegistry::All().size());
  // A blob opened under the wrong codec id must be rejected, not misparsed.
  std::unique_ptr<SealedSeries> neats_blob_owner =
      CodecRegistry::Compress(CodecId::kNeats, values, {});
  std::vector<uint8_t> neats_blob;
  neats_blob_owner->Serialize(&neats_blob);
  EXPECT_NEATS_ERROR(CodecRegistry::Open(CodecId::kLeco, neats_blob, false),
                     "");
  EXPECT_NEATS_ERROR(
      CodecRegistry::Open(static_cast<CodecId>(kNumCodecIds), neats_blob,
                          false),
      "unknown codec id");
}

// The zero-copy flags match reality: borrowing codecs serve a View without
// copying the payload (checked via Neats::borrowed()), and the registry
// reports them.
TEST(CodecRegistry, ZeroCopyFlags) {
  EXPECT_TRUE(CodecRegistry::ZeroCopyView(CodecId::kNeats));
  EXPECT_TRUE(CodecRegistry::ZeroCopyView(CodecId::kNeatsLossyExact));
  EXPECT_TRUE(CodecRegistry::ZeroCopyView(CodecId::kLeco));
  EXPECT_TRUE(CodecRegistry::ZeroCopyView(CodecId::kAlp));
  EXPECT_FALSE(CodecRegistry::ZeroCopyView(CodecId::kGorilla));
  EXPECT_FALSE(CodecRegistry::ZeroCopyView(CodecId::kChimp));

  std::vector<int64_t> values = MixedSeries(4000, 37);
  Neats c = Neats::Compress(values);
  std::vector<uint8_t> blob;
  c.Serialize(&blob);
  std::vector<uint64_t> aligned((blob.size() + 7) / 8);
  std::memcpy(aligned.data(), blob.data(), blob.size());
  Neats viewed = Neats::View(
      {reinterpret_cast<const uint8_t*>(aligned.data()), blob.size()});
  EXPECT_TRUE(viewed.borrowed());
}

}  // namespace
}  // namespace neats
