#include "convex/polygon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace neats {
namespace {

struct Constraint {
  long double t, alpha, omega;
};

// Independent feasibility oracle: exists (m, b) with
// alpha_k <= t_k*m + b <= omega_k for all k?  Feasible iff
// min_m [ max_k(alpha_k - t_k m) - min_k(omega_k - t_k m) ] <= 0.
// The inner expression is convex piecewise linear in m, and its minimum is
// attained at an intersection of two constraint lines (or at any m if the
// function is constant), so checking all pairwise crossings is exact.
bool OracleFeasible(const std::vector<Constraint>& cs, long double tol = 0) {
  auto gap = [&](long double m) {
    long double lo = -1e4900L, hi = 1e4900L;
    for (const auto& c : cs) {
      lo = std::max(lo, c.alpha - c.t * m);
      hi = std::min(hi, c.omega - c.t * m);
    }
    return lo - hi;  // feasible at m iff <= 0
  };
  std::vector<long double> candidates = {0.0L};
  for (size_t i = 0; i < cs.size(); ++i) {
    for (size_t j = i + 1; j < cs.size(); ++j) {
      if (cs[i].t == cs[j].t) continue;
      long double dt = cs[i].t - cs[j].t;
      candidates.push_back((cs[i].alpha - cs[j].alpha) / dt);
      candidates.push_back((cs[i].omega - cs[j].omega) / dt);
      candidates.push_back((cs[i].alpha - cs[j].omega) / dt);
      candidates.push_back((cs[i].omega - cs[j].alpha) / dt);
    }
  }
  for (long double m : candidates) {
    if (gap(m) <= tol) return true;
  }
  return false;
}

bool PointSatisfiesAll(const std::vector<Constraint>& cs, DualPoint p,
                       long double rel_tol) {
  for (const auto& c : cs) {
    long double v = c.t * p.m + p.b;
    long double slack =
        rel_tol * (1.0L + std::max(fabsl(c.alpha), fabsl(c.omega)));
    if (v < c.alpha - slack || v > c.omega + slack) return false;
  }
  return true;
}

TEST(FeasiblePolygon, SingleConstraintStrip) {
  FeasiblePolygon poly;
  EXPECT_TRUE(poly.AddConstraint(1.0L, 2.0L, 4.0L));
  DualPoint p = poly.PickPoint();
  EXPECT_GE(1.0L * p.m + p.b, 2.0L);
  EXPECT_LE(1.0L * p.m + p.b, 4.0L);
}

TEST(FeasiblePolygon, TwoConstraintsParallelogram) {
  FeasiblePolygon poly;
  ASSERT_TRUE(poly.AddConstraint(1.0L, 0.0L, 2.0L));
  ASSERT_TRUE(poly.AddConstraint(2.0L, 1.0L, 3.0L));
  DualPoint p = poly.PickPoint();
  EXPECT_TRUE(PointSatisfiesAll({{1, 0, 2}, {2, 1, 3}}, p, 1e-15L));
}

TEST(FeasiblePolygon, DetectsEmptiness) {
  // Points on a steep V shape cannot be covered by one line with eps = 0.5.
  FeasiblePolygon poly;
  // y = 10 at t=1, y = 0 at t=2, y = 10 at t=3, eps = 0.5.
  ASSERT_TRUE(poly.AddConstraint(1, 9.5L, 10.5L));
  ASSERT_TRUE(poly.AddConstraint(2, -0.5L, 0.5L));
  EXPECT_FALSE(poly.AddConstraint(3, 9.5L, 10.5L));
  // Polygon unchanged: picking a point must satisfy the first two.
  DualPoint p = poly.PickPoint();
  EXPECT_TRUE(PointSatisfiesAll({{1, 9.5L, 10.5L}, {2, -0.5L, 0.5L}}, p, 1e-15L));
}

TEST(FeasiblePolygon, ExactLineZeroEps) {
  // Degenerate strips (alpha == omega): points exactly on y = 3t + 7.
  FeasiblePolygon poly;
  for (int t = 1; t <= 50; ++t) {
    long double y = 3.0L * t + 7.0L;
    ASSERT_TRUE(poly.AddConstraint(t, y, y)) << "t=" << t;
  }
  DualPoint p = poly.PickPoint();
  EXPECT_NEAR(static_cast<double>(p.m), 3.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(p.b), 7.0, 1e-9);
}

TEST(FeasiblePolygon, ZeroEpsRejectsOffLinePoint) {
  FeasiblePolygon poly;
  ASSERT_TRUE(poly.AddConstraint(1, 10, 10));
  ASSERT_TRUE(poly.AddConstraint(2, 13, 13));
  EXPECT_FALSE(poly.AddConstraint(3, 17, 17));  // not collinear
  EXPECT_TRUE(poly.AddConstraint(3, 16, 16));   // collinear
}

TEST(FeasiblePolygon, ResetClearsState) {
  FeasiblePolygon poly;
  ASSERT_TRUE(poly.AddConstraint(1, 0, 1));
  ASSERT_TRUE(poly.AddConstraint(2, 10, 11));
  poly.Reset();
  EXPECT_EQ(poly.num_constraints(), 0u);
  ASSERT_TRUE(poly.AddConstraint(1, 5, 6));
  EXPECT_EQ(poly.num_constraints(), 1u);
}

// Differential test: feed random monotone-t constraints; the polygon must
// agree with the oracle on when the system becomes infeasible, and any
// picked point must satisfy all accepted constraints.
class PolygonRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PolygonRandomTest, AgreesWithOracle) {
  int scenario = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(scenario) * 1337 + 11);
  std::uniform_real_distribution<double> noise(-1.0, 1.0);

  for (int trial = 0; trial < 60; ++trial) {
    FeasiblePolygon poly;
    std::vector<Constraint> accepted;
    double slope = noise(rng) * 5;
    double intercept = noise(rng) * 50;
    double eps = (scenario % 3 == 0) ? 0.75 : 8.0;
    long double t = 0;
    for (int k = 1; k <= 120; ++k) {
      t += 0.5L + static_cast<long double>(rng() % 100) / 25.0L;
      // Values roughly on a line, with occasional jumps that break the fit.
      double y = slope * static_cast<double>(t) + intercept + noise(rng) * eps;
      if (rng() % 17 == 0) y += noise(rng) * 40 * eps;
      Constraint c{t, static_cast<long double>(y) - static_cast<long double>(eps),
                   static_cast<long double>(y) + static_cast<long double>(eps)};
      std::vector<Constraint> tentative = accepted;
      tentative.push_back(c);
      bool oracle_ok = OracleFeasible(tentative, 1e-12L);
      bool poly_ok = poly.AddConstraint(c.t, c.alpha, c.omega);
      ASSERT_EQ(poly_ok, oracle_ok)
          << "scenario=" << scenario << " trial=" << trial << " k=" << k;
      if (!poly_ok) break;
      accepted.push_back(c);
      DualPoint p = poly.PickPoint();
      ASSERT_TRUE(PointSatisfiesAll(accepted, p, 1e-12L))
          << "picked point violates constraints at k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PolygonRandomTest, ::testing::Range(0, 12));

TEST(FeasiblePolygon, ManyCollinearConstraintsStayFeasible) {
  FeasiblePolygon poly;
  long double t = 0;
  for (int k = 0; k < 100000; ++k) {
    t += 1;
    long double y = -2.5L * t + 1000.0L;
    ASSERT_TRUE(poly.AddConstraint(t, y - 3, y + 3));
  }
  DualPoint p = poly.PickPoint();
  EXPECT_NEAR(static_cast<double>(p.m), -2.5, 1e-6);
}

}  // namespace
}  // namespace neats
