#include "datasets/generators.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "core/neats.hpp"

namespace neats {
namespace {

TEST(Datasets, AllCodesGenerate) {
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 2000);
    EXPECT_EQ(ds.values.size(), 2000u) << code;
    EXPECT_EQ(ds.doubles.size(), 2000u) << code;
    EXPECT_EQ(ds.code, code);
  }
  EXPECT_EQ(AllDatasetCodes().size(), kNumDatasets);
}

TEST(Datasets, DeterministicForSameSeed) {
  Dataset a = MakeDataset("US", 5000, 7);
  Dataset b = MakeDataset("US", 5000, 7);
  EXPECT_EQ(a.values, b.values);
  Dataset c = MakeDataset("US", 5000, 8);
  EXPECT_NE(a.values, c.values);
}

TEST(Datasets, DoublesMatchScaledIntegers) {
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 1000);
    double scale = std::pow(10.0, ds.fractional_digits);
    for (size_t i = 0; i < ds.values.size(); ++i) {
      double expected = static_cast<double>(ds.values[i]) / scale;
      ASSERT_EQ(std::bit_cast<uint64_t>(ds.doubles[i]),
                std::bit_cast<uint64_t>(expected))
          << code << " at " << i;
    }
  }
}

TEST(Datasets, ValuesAreNotDegenerate) {
  for (const auto& code : AllDatasetCodes()) {
    Dataset ds = MakeDataset(code, 5000);
    std::set<int64_t> distinct(ds.values.begin(), ds.values.end());
    EXPECT_GT(distinct.size(), 50u) << code << " looks constant";
  }
}

TEST(Datasets, WindDirectionStaysInRange) {
  Dataset ds = MakeDataset("WD", 20000);
  for (int64_t v : ds.values) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 36000);  // 360 degrees at 2 digits
  }
}

TEST(Datasets, PrecisionDigitsMatchSpec) {
  EXPECT_EQ(MakeDataset("IT", 100).fractional_digits, 2);
  EXPECT_EQ(MakeDataset("BT", 100).fractional_digits, 9);
  EXPECT_EQ(MakeDataset("BW", 100).fractional_digits, 7);
  EXPECT_EQ(MakeDataset("UK", 100).fractional_digits, 1);
}

TEST(Datasets, DefaultSizesFollowSpec) {
  Dataset ds = MakeDataset("BP");
  EXPECT_EQ(ds.values.size(), 4096u);
}

// Integration: every dataset round-trips through NeaTS losslessly.
class DatasetRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetRoundTripTest, NeatsLossless) {
  Dataset ds = MakeDataset(GetParam(), 20000);
  Neats compressed = Neats::Compress(ds.values);
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  ASSERT_EQ(decoded, ds.values) << GetParam();
  // Spot-check random access too.
  for (size_t k = 0; k < ds.values.size(); k += 997) {
    ASSERT_EQ(compressed.Access(k), ds.values[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetRoundTripTest,
                         ::testing::Values("IT", "US", "ECG", "WD", "AP", "UK",
                                           "GE", "LAT", "LON", "DP", "CT",
                                           "DU", "BT", "BW", "BM", "BP"));

}  // namespace
}  // namespace neats
