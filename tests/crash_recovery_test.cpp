// The crash-recovery harness (ISSUE: crash-consistent stores).
//
// Every test runs a NeatsStore against the deterministic fault-injection
// filesystem (src/io/fault_fs.hpp) instead of the real disk. The central
// suite is the kill-point sweep: a fixed ingest workload is re-run once per
// syscall-boundary op, killed at exactly that op, power-cycled (FaultFs
// tears unsynced state with seeded randomness), reopened, and checked
// against the one durability contract that matters:
//
//   after reopen, every WAL-acked Append and every completed Flush is
//   readable, and no query EVER returns a wrong value — it either serves
//   the written value or fails with a typed Status.
//
// Around the sweep: the lying-fsync scenario (blob fsyncs that persist
// nothing — quarantine at open, repair via Scrub from the preserved WAL),
// bit-rot sweeps over blob / manifest / WAL, a transient WAL failure, and
// the disk-full path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "io/fault_fs.hpp"
#include "neats/neats.hpp"

namespace neats {
namespace {

constexpr const char* kDir = "store";

// Step levels with small ramps: compresses fine under Gorilla, and any
// lost/duplicated/misrouted value changes the payload detectably.
std::vector<int64_t> Series(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  int64_t level = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 64 == 0) level = static_cast<int64_t>(rng() % 1000000);
    values.push_back(level + static_cast<int64_t>(i % 7));
  }
  return values;
}

NeatsStoreOptions BaseOptions(io::FaultFs* fs) {
  NeatsStoreOptions options;
  options.shard_size = 512;
  // Inline seals: a CrashFault inside the seal's blob write unwinds on the
  // calling thread, exactly like the power cut it models.
  options.seal_threads = 1;
  options.codec = CodecId::kGorilla;
  options.fs = fs;
  return options;
}

// The sweep workload: create, ragged appends, a mid-stream Flush, more
// appends, a final Flush. `acked` tracks how many values the store has
// acknowledged (Append returned) — the recovery floor after a crash.
void RunWorkload(io::FaultFs& fs, const std::vector<int64_t>& values,
                 uint64_t* acked) {
  NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
  const size_t slices[] = {130, 512, 700, 68, 890};
  size_t at = 0;
  for (size_t i = 0; i < 5 && at < values.size(); ++i) {
    const size_t n = std::min(slices[i], values.size() - at);
    store.Append({values.data() + at, n});
    at += n;
    *acked = at;
  }
  store.Flush();
  size_t s = 0;
  while (at < values.size()) {
    const size_t n = std::min(slices[s++ % 5], values.size() - at);
    store.Append({values.data() + at, n});
    at += n;
    *acked = at;
  }
  store.Flush();
}

// ---------------------------------------------------------------------------
// The kill-point sweep.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, KillPointSweepEveryOp) {
  const std::vector<int64_t> values = Series(2700, 5);

  // Pass 0, fault-free: counts the ops — every one of them is a kill-point.
  uint64_t total_ops = 0;
  {
    io::FaultFs fs;
    uint64_t acked = 0;
    RunWorkload(fs, values, &acked);
    ASSERT_EQ(acked, values.size());
    total_ops = fs.op_count();
    NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
    ASSERT_EQ(store.size(), values.size());
    EXPECT_FALSE(store.degraded());
  }
  ASSERT_GT(total_ops, 40u);  // the workload exercises a real op surface

  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("kill at op " + std::to_string(k));
    io::FaultFs fs(io::FaultFs::Options{.seed = 1000 + k});
    fs.KillAtOp(k);
    uint64_t acked = 0;
    bool crashed = false;
    try {
      RunWorkload(fs, values, &acked);
    } catch (const io::CrashFault& fault) {
      crashed = true;
      ASSERT_EQ(fault.op, k);
    }
    ASSERT_TRUE(crashed);
    fs.Crash();  // the power cut: seeded torn state, stale handles fail

    NeatsStore store;
    try {
      store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
    } catch (const Error&) {
      // Only legal when the kill hit CreateDir itself, before its empty
      // manifest landed — nothing was ever acked, so nothing is owed.
      ASSERT_EQ(acked, 0u);
      store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
    }
    EXPECT_FALSE(store.degraded());
    ASSERT_GE(store.size(), acked);  // every acked append survived
    ASSERT_LE(store.size(), values.size());

    // Nothing the store serves may disagree with what was written.
    std::vector<int64_t> got(store.size());
    if (!got.empty()) {
      store.DecompressRange(0, got.size(), got.data());
    }
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], values[i]) << "index " << i;
    }

    // And the recovered store is fully usable: finish the ingest, flush,
    // verify end to end.
    const uint64_t have = store.size();
    store.Append({values.data() + have, values.size() - have});
    store.Flush();
    ASSERT_EQ(store.size(), values.size());
    for (size_t i = 0; i < values.size(); i += 97) {
      ASSERT_EQ(store.Access(i), values[i]) << "index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Lying fsync: the firmware-cache scenario.
// ---------------------------------------------------------------------------

// Shard 0's blob fsync reports success but persists nothing; the process
// dies after the manifest commit but before the WAL reset. The reopened
// store quarantines the torn shard, serves the rest, fails queries into the
// hole with a typed error, and Scrub() repairs the shard from the WAL
// records the reset never got to discard.
TEST(CrashRecovery, LyingFsyncQuarantineAndScrubRepair) {
  const std::vector<int64_t> values = Series(1200, 7);
  auto run = [&](io::FaultFs& fs) {
    NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
    store.Append({values.data(), values.size()});
    store.Flush();
  };

  // Pass 0: locate the WAL reset — the Create right after the last SyncDir
  // (the final manifest commit).
  uint64_t reset_op = 0;
  {
    io::FaultFs fs;
    run(fs);
    const std::vector<io::FaultFs::OpRecord> trace = fs.trace();
    for (const io::FaultFs::OpRecord& op : trace) {
      if (op.kind == io::FaultFs::OpKind::kSyncDir) reset_op = op.index + 1;
    }
    ASSERT_NE(reset_op, 0u);
    ASSERT_EQ(trace[reset_op - 1].kind, io::FaultFs::OpKind::kCreate);
    ASSERT_NE(trace[reset_op - 1].path.find(WalFileName()),
              std::string::npos);
  }

  io::FaultFs fs(io::FaultFs::Options{.seed = 99});
  fs.LieOnSyncPath(StoreManifest::ShardFileName(0));
  fs.KillAtOp(reset_op);
  bool crashed = false;
  try {
    run(fs);
  } catch (const io::CrashFault&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  fs.Crash();
  fs.LieOnSyncPath("");  // the firmware behaves from here on

  // The seeded tear may keep any prefix of the never-persisted blob —
  // including, rarely, all of it. Pin the scenario: shard 0 must be torn.
  const std::string shard0_path =
      std::string(kDir) + "/" + StoreManifest::ShardFileName(0);
  const StoreManifest manifest = StoreManifest::Deserialize(
      fs.ReadRaw(std::string(kDir) + "/" + StoreManifest::FileName()));
  ASSERT_EQ(manifest.total(), values.size());
  std::vector<uint8_t> torn = fs.ReadRaw(shard0_path);
  if (torn.size() == manifest.shards[0].blob_bytes + kChecksumTrailerBytes) {
    torn.resize(torn.size() / 2);
    fs.SetRaw(shard0_path, torn);
  }

  NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  EXPECT_TRUE(store.degraded());
  const NeatsStore::RepairReport& report = store.recovery_report();
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].shard, 0u);
  EXPECT_EQ(report.quarantined[0].first, 0u);
  EXPECT_EQ(report.quarantined[0].count, 512u);

  // Queries into the hole fail typed; everything else serves bit-identical.
  try {
    store.Access(10);
    FAIL() << "expected a kUnavailable error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
  }
  for (size_t k = 512; k < values.size(); k += 41) {
    ASSERT_EQ(store.Access(k), values[k]) << k;
  }

  // Scrub re-seals the shard from the WAL records ResetWal never discarded.
  const NeatsStore::RepairReport& after = store.Scrub();
  EXPECT_TRUE(after.quarantined.empty());
  ASSERT_EQ(after.repaired.size(), 1u);
  EXPECT_EQ(after.repaired[0], 0u);
  EXPECT_FALSE(store.degraded());
  for (size_t k = 0; k < values.size(); k += 13) {
    ASSERT_EQ(store.Access(k), values[k]) << k;
  }

  // The repair is durable: a fresh open is fully healthy.
  NeatsStore again = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  EXPECT_FALSE(again.degraded());
  ASSERT_EQ(again.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 29) {
    ASSERT_EQ(again.Access(k), values[k]) << k;
  }
}

// ---------------------------------------------------------------------------
// Bit-rot sweeps: blob, manifest, WAL.
// ---------------------------------------------------------------------------

// A flipped bit in a sealed blob quarantines exactly that shard; healthy
// shards serve, the facade reports degradation as a typed Status, and with
// the WAL already reset there is nothing to repair from — Scrub says so
// instead of inventing data.
TEST(CrashRecovery, BlobBitRotQuarantinesOnlyTheHitShard) {
  const std::vector<int64_t> values = Series(1200, 9);
  io::FaultFs fs;
  {
    NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
    store.Append({values.data(), values.size()});
    store.Flush();
  }
  const std::string shard1_path =
      std::string(kDir) + "/" + StoreManifest::ShardFileName(1);
  const size_t blob_size = fs.ReadRaw(shard1_path).size();

  const size_t offsets[] = {0, 8, blob_size / 2,
                            blob_size - kChecksumTrailerBytes - 1,
                            blob_size - 1};
  for (size_t offset : offsets) {
    SCOPED_TRACE("flipped byte " + std::to_string(offset));
    fs.CorruptByte(shard1_path, offset, 0x40);

    NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
    EXPECT_TRUE(store.degraded());
    const NeatsStore::RepairReport& report = store.recovery_report();
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].shard, 1u);
    EXPECT_NE(report.quarantined[0].error.find("checksum"),
              std::string::npos);

    try {
      store.Access(700);  // shard 1's range
      FAIL() << "expected a kUnavailable error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), StatusCode::kUnavailable);
    }
    for (size_t k = 0; k < 512; k += 37) {
      ASSERT_EQ(store.Access(k), values[k]) << k;
    }
    for (size_t k = 1024; k < values.size(); k += 37) {
      ASSERT_EQ(store.Access(k), values[k]) << k;
    }

    // The WAL was reset by the completed Flush: no repair material left.
    Status status = ScrubStore(store);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kDegraded);
    EXPECT_NE(status.message().find("1"), std::string::npos);

    fs.CorruptByte(shard1_path, offset, 0x40);  // flip it back
  }

  // Restored, a fresh open is healthy again.
  NeatsStore healthy = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  EXPECT_FALSE(healthy.degraded());
  for (size_t k = 0; k < values.size(); k += 101) {
    ASSERT_EQ(healthy.Access(k), values[k]) << k;
  }
}

// A flipped bit in the manifest — the routing root — is fatal and
// diagnosable: OpenDir throws an Error naming the manifest, never opens a
// misrouted store.
TEST(CrashRecovery, ManifestBitRotIsCaughtBeforeRouting) {
  const std::vector<int64_t> values = Series(800, 15);
  io::FaultFs fs;
  {
    NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
    store.Append({values.data(), values.size()});
    store.Flush();
  }
  const std::string manifest_path =
      std::string(kDir) + "/" + StoreManifest::FileName();
  const size_t size = fs.ReadRaw(manifest_path).size();

  const size_t offsets[] = {0, 8, 17, size / 2, size - 16, size - 1};
  for (size_t offset : offsets) {
    SCOPED_TRACE("flipped byte " + std::to_string(offset));
    fs.CorruptByte(manifest_path, offset, 0x04);
    try {
      NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
      FAIL() << "a clobbered manifest must not open";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("manifest"), std::string::npos);
    }
    fs.CorruptByte(manifest_path, offset, 0x04);
  }

  NeatsStore healthy = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  ASSERT_EQ(healthy.size(), values.size());
}

// A flipped bit in the WAL costs exactly the hit record and its successors
// — never a wrong value, never an exception — and the reopened store keeps
// ingesting normally.
TEST(CrashRecovery, WalBitRotCostsOnlyTheTailRecords) {
  const std::vector<int64_t> values = Series(1500, 11);
  io::FaultFs fs;
  {
    NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
    store.Append({values.data(), 600});
    store.Append({values.data() + 600, 500});
    store.Append({values.data() + 1100, 400});
    // No Flush: the WAL holds the only durable copy of all 1500 values.
  }
  fs.Crash();  // power cut; every Append was acked, so everything survives

  {
    NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
    ASSERT_EQ(store.size(), values.size());
    for (size_t k = 0; k < values.size(); k += 43) {
      ASSERT_EQ(store.Access(k), values[k]) << k;
    }
  }

  // Flip one byte inside the second record: replay keeps record 0 (600
  // values), discards the damaged record and the intact one after it (a
  // record is only trustworthy if everything before it is).
  const std::string wal_path = std::string(kDir) + "/" + WalFileName();
  const size_t record1_offset = 16 + (600 + 3) * 8;
  fs.CorruptByte(wal_path, record1_offset + 40, 0x10);

  NeatsStore store = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  ASSERT_EQ(store.size(), 600u);
  bool torn_warning = false;
  for (const std::string& w : store.recovery_report().warnings) {
    if (w.find("torn") != std::string::npos) torn_warning = true;
  }
  EXPECT_TRUE(torn_warning);
  for (size_t k = 0; k < 600; k += 17) {
    ASSERT_EQ(store.Access(k), values[k]) << k;
  }

  // The store keeps working: re-ingest the lost suffix and flush.
  store.Append({values.data() + 600, values.size() - 600});
  store.Flush();
  ASSERT_EQ(store.size(), values.size());

  NeatsStore again = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  ASSERT_EQ(again.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 31) {
    ASSERT_EQ(again.Access(k), values[k]) << k;
  }
}

// ---------------------------------------------------------------------------
// Transient failures: EIO on a WAL fsync, and a full disk.
// ---------------------------------------------------------------------------

// A transient WAL fsync failure fails that Append with a typed kIo Status
// and acks nothing; the next Append rebuilds the log and succeeds.
TEST(CrashRecovery, TransientWalFailureRecoversOnRetry) {
  const std::vector<int64_t> values = Series(600, 21);
  io::FaultFs fs;
  NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));
  store.Append({values.data(), 100});
  ASSERT_EQ(store.size(), 100u);

  // The next Append's WAL ops are one write then one sync; fail the sync.
  fs.FailAtOp(fs.op_count() + 2, "injected I/O failure");
  Status status =
      CheckedStatus([&] { store.Append({values.data() + 100, 100}); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIo);
  EXPECT_NE(status.message().find("injected I/O failure"), std::string::npos);
  EXPECT_EQ(store.size(), 100u);  // the failed append acked nothing

  // Retry: the dirty WAL is rebuilt wholesale, then ingest proceeds.
  store.Append({values.data() + 100, values.size() - 100});
  store.Flush();
  ASSERT_EQ(store.size(), values.size());

  fs.Crash();
  NeatsStore again = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  ASSERT_EQ(again.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 7) {
    ASSERT_EQ(again.Access(k), values[k]) << k;
  }
}

// ENOSPC mid-WAL-append: the Append fails typed (kIo, "No space"), acks
// nothing, and once space is back the store ingests and flushes normally.
TEST(CrashRecovery, DiskFullFailsTypedAndRecovers) {
  const std::vector<int64_t> values = Series(1400, 23);
  io::FaultFs fs;
  NeatsStore store = NeatsStore::CreateDir(kDir, BaseOptions(&fs));

  fs.SetCapacity(2048);  // room for the tiny manifest + WAL header, no more
  Status status =
      CheckedStatus([&] { store.Append({values.data(), 600}); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIo);
  EXPECT_NE(status.message().find("No space left"), std::string::npos);
  EXPECT_EQ(store.size(), 0u);

  fs.SetCapacity(~uint64_t{0});
  store.Append({values.data(), values.size()});
  store.Flush();
  ASSERT_EQ(store.size(), values.size());

  fs.Crash();
  NeatsStore again = NeatsStore::OpenDir(kDir, BaseOptions(&fs));
  ASSERT_EQ(again.size(), values.size());
  for (size_t k = 0; k < values.size(); k += 11) {
    ASSERT_EQ(again.Access(k), values[k]) << k;
  }
}

}  // namespace
}  // namespace neats
