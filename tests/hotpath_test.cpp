// Tests for the performance subsystem: bulk correction unpacking, the
// thread pool, parallel/chunked compression (bit-identity & determinism),
// and the sequential-access cursor.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/neats.hpp"
#include "succinct/bit_stream.hpp"

namespace neats {
namespace {

// A series that exercises several function kinds: exponential growth, a
// linear ramp, a noisy plateau, and a quadratic arc.
std::vector<int64_t> MixedKindSeries(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  values.reserve(n);
  size_t quarter = n / 4;
  for (size_t i = 0; i < quarter; ++i) {
    values.push_back(static_cast<int64_t>(
        100.0 * std::exp(0.004 * static_cast<double>(i))));
  }
  while (values.size() < 2 * quarter) values.push_back(values.back() + 9);
  while (values.size() < 3 * quarter) {
    values.push_back(50000 + static_cast<int64_t>(rng() % 64));
  }
  while (values.size() < n) {
    double x = static_cast<double>(values.size() - 3 * quarter);
    values.push_back(60000 - static_cast<int64_t>(0.02 * x * x) +
                     static_cast<int64_t>(rng() % 8));
  }
  return values;
}

TEST(UnpackBitsRun, MatchesPerElementReadBitsFuzz) {
  std::mt19937_64 rng(20260726);
  for (int trial = 0; trial < 500; ++trial) {
    const int width = static_cast<int>(rng() % 65);  // 0..64 inclusive
    const size_t count = rng() % 200;
    const size_t lead_bits = rng() % 131;  // unaligned start offset

    BitWriter writer;
    for (size_t b = 0; b < lead_bits; ++b) writer.AppendBit(rng() & 1);
    std::vector<uint64_t> expected;
    expected.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t v = rng() & LowMask(width);
      expected.push_back(v);
      writer.Append(v, width);
    }
    std::vector<uint64_t> words = writer.TakeWords();

    std::vector<uint64_t> unpacked(count, 0xABABABABABABABABULL);
    UnpackBitsRun(words.data(), lead_bits, width, count, unpacked.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(unpacked[i], expected[i])
          << "width=" << width << " lead=" << lead_bits << " i=" << i;
      ASSERT_EQ(unpacked[i],
                ReadBits(words.data(), lead_bits + i * width, width));
    }
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  // Repeated jobs on the same pool (the partitioner fires many).
  std::atomic<size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(97, [&](size_t i) { sum.fetch_add(i + 1); });
  }
  EXPECT_EQ(sum.load(), 50u * (97u * 98u) / 2u);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  size_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(100, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(Neats, ParallelPartitionerIsBitIdentical) {
  std::vector<int64_t> values = MixedKindSeries(6000, 1);
  NeatsOptions serial;
  NeatsOptions parallel;
  parallel.num_threads = 4;
  std::vector<uint8_t> bytes_serial, bytes_parallel;
  Neats::Compress(values, serial).Serialize(&bytes_serial);
  Neats::Compress(values, parallel).Serialize(&bytes_parallel);
  EXPECT_EQ(bytes_serial, bytes_parallel);
}

TEST(Neats, ChunkedCompressionIsDeterministicAndLossless) {
  std::vector<int64_t> values = MixedKindSeries(8000, 2);
  NeatsOptions chunked1;
  chunked1.chunk_size = 1500;
  chunked1.num_threads = 1;
  NeatsOptions chunked4 = chunked1;
  chunked4.num_threads = 4;

  Neats c1 = Neats::Compress(values, chunked1);
  Neats c4 = Neats::Compress(values, chunked4);
  std::vector<uint8_t> bytes1, bytes4;
  c1.Serialize(&bytes1);
  c4.Serialize(&bytes4);
  EXPECT_EQ(bytes1, bytes4);

  std::vector<int64_t> decoded;
  c4.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  for (size_t k = 0; k < values.size(); k += 37) {
    ASSERT_EQ(c4.Access(k), values[k]) << k;
  }
}

TEST(Neats, ChunkedBoundaryMergeBitIdenticalToGlobalOnMergeFriendlyInput) {
  // On a series the global partitioner covers with one fragment, the
  // chunked path's boundary-merge pass must collapse the per-chunk
  // fragments back into that exact fragment — serialized bytes and all.
  std::vector<int64_t> values;
  for (size_t i = 0; i < 5000; ++i) {
    values.push_back(3 * static_cast<int64_t>(i) + 101);
  }
  std::vector<uint8_t> global_bytes;
  Neats::Compress(values).Serialize(&global_bytes);
  for (uint64_t chunk : {uint64_t{512}, uint64_t{1700}}) {
    NeatsOptions chunked;
    chunked.chunk_size = chunk;
    std::vector<uint8_t> chunked_bytes;
    Neats::Compress(values, chunked).Serialize(&chunked_bytes);
    EXPECT_EQ(chunked_bytes, global_bytes) << "chunk=" << chunk;
  }
}

TEST(Neats, CursorIterationMatchesAccessEverywhere) {
  std::vector<int64_t> values = MixedKindSeries(5000, 3);
  Neats compressed = Neats::Compress(values);
  Neats::Cursor cursor(compressed);
  for (size_t k = 0; k < values.size(); ++k) {
    ASSERT_FALSE(cursor.done());
    ASSERT_EQ(cursor.position(), k);
    ASSERT_EQ(cursor.Next(), values[k]) << k;
    ASSERT_EQ(compressed.Access(k), values[k]) << k;
  }
  EXPECT_TRUE(cursor.done());
}

TEST(Neats, CursorMonotoneAndBackwardSeeks) {
  std::vector<int64_t> values = MixedKindSeries(5000, 4);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(99);
  Neats::Cursor cursor(compressed);
  // Monotone seeks with mixed stride lengths (within-fragment hops, short
  // fragment advances, and rank-fallback jumps).
  uint64_t k = 0;
  while (k < values.size()) {
    cursor.Seek(k);
    ASSERT_EQ(cursor.Value(), values[k]) << k;
    k += 1 + rng() % 400;
  }
  // Backward seeks fall back to the full rank.
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t j = rng() % values.size();
    cursor.Seek(j);
    ASSERT_EQ(cursor.Value(), values[j]) << j;
  }
}

TEST(Neats, CursorBulkReadMatchesValues) {
  std::vector<int64_t> values = MixedKindSeries(4000, 5);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(7);
  Neats::Cursor cursor(compressed);
  std::vector<int64_t> got;
  std::vector<int64_t> buffer(512);
  while (!cursor.done()) {
    uint64_t want = 1 + rng() % buffer.size();
    uint64_t produced = cursor.Read(want, buffer.data());
    ASSERT_GT(produced, 0u);
    got.insert(got.end(), buffer.begin(),
               buffer.begin() + static_cast<ptrdiff_t>(produced));
  }
  EXPECT_EQ(got, values);
}

TEST(Neats, StreamedRangeSumMatchesDirectSum) {
  std::vector<int64_t> values = MixedKindSeries(6000, 6);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    uint64_t from = rng() % values.size();
    uint64_t len = rng() % (values.size() - from);
    int64_t expected = 0;
    for (uint64_t j = from; j < from + len; ++j) expected += values[j];
    ASSERT_EQ(compressed.RangeSum(from, len), expected)
        << "from=" << from << " len=" << len;
  }
}

TEST(Neats, EmptyAndTinySeriesCursor) {
  Neats empty = Neats::Compress(std::vector<int64_t>{});
  Neats::Cursor cursor(empty);
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.Read(10, nullptr), 0u);

  std::vector<int64_t> one = {42};
  Neats single = Neats::Compress(one);
  Neats::Cursor c1(single);
  EXPECT_EQ(c1.Next(), 42);
  EXPECT_TRUE(c1.done());

  // Constructing at (or past) the end clamps to n instead of aborting.
  Neats::Cursor past(single, 7);
  EXPECT_TRUE(past.done());
  EXPECT_EQ(past.position(), 1u);
}

TEST(Neats, CursorConstructedMidSeries) {
  std::vector<int64_t> values = MixedKindSeries(3000, 8);
  Neats compressed = Neats::Compress(values);
  for (uint64_t start : {1ull, 500ull, 1499ull, 2999ull}) {
    Neats::Cursor cursor(compressed, start);
    ASSERT_EQ(cursor.position(), start);
    ASSERT_EQ(cursor.Value(), values[start]) << start;
  }
}

}  // namespace
}  // namespace neats
