// Tests for the observability layer (src/obs/): exact concurrent counter
// totals through the per-thread slab registry, deterministic sampling
// ticks, snapshot coherence while recording threads are live, flight-
// recorder wraparound and torn-read protection under concurrent writers,
// the store's metrics cross-checked against ground-truth op counts, and
// the dump-on-quarantine + Scrub-repair log/counter contract end to end.
// The TSan CI job runs this binary alongside store_test and scenario_test.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "io/text_io.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log_sink.hpp"
#include "scenario/scenarios.hpp"
#include "store/neats_store.hpp"
#include "store/wal.hpp"

namespace neats {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram contract.
// ---------------------------------------------------------------------------

// Pins the empty-histogram contract the exposition layer relies on: all
// percentiles (and max / count / sum) of a histogram nothing was recorded
// into are exactly zero, never a sentinel or a bucket lower bound.
TEST(LatencyHistogram, EmptyPercentilesAreZero) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------------

// Counters are exact, not sampled: N threads hammering the same counter
// through their per-thread slabs must merge to exactly N * per-thread ops
// once joined. Histograms recorded concurrently keep an exact count too.
TEST(MetricsRegistry, ExactConcurrentTotals) {
  obs::MetricsRegistry registry;
  const obs::CounterId ops = registry.AddCounter("ops");
  const obs::HistogramId lat = registry.AddHistogram("lat");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        registry.Count(ops);
        registry.Record(lat, (i % 1000) + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.CounterValue(ops), kThreads * kPerThread);
  const obs::LatencyHistogram merged = registry.HistogramValue(lat);
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_GT(merged.p50(), 0u);
  EXPECT_LE(merged.p50(), merged.max());
}

// The sampling countdown is per-thread and deterministic: with every=4 a
// thread's ticks land on its 1st, 5th, 9th, ... call — 25 per 100 calls —
// regardless of what other threads do to the same histogram id.
TEST(MetricsRegistry, TickIsPerThreadDeterministic) {
  obs::MetricsRegistry registry;
  const obs::HistogramId lat = registry.AddHistogram("lat");
  constexpr int kThreads = 4;
  std::vector<uint64_t> ticks(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool first_call_ticked = false;
      for (int i = 0; i < 100; ++i) {
        const bool tick = registry.Tick(lat, 4);
        if (i == 0) first_call_ticked = tick;
        if (tick) ++ticks[static_cast<size_t>(t)];
      }
      EXPECT_TRUE(first_call_ticked);  // countdown starts at 1
    });
  }
  for (auto& th : threads) th.join();
  for (uint64_t t : ticks) EXPECT_EQ(t, 25u);
}

// CountAndTick is the fused hot-path form of Count followed by Tick: same
// counter total, same sampling cadence.
TEST(MetricsRegistry, CountAndTickMatchesSeparateCalls) {
  obs::MetricsRegistry fused;
  const obs::CounterId fc = fused.AddCounter("ops");
  const obs::HistogramId fh = fused.AddHistogram("lat");
  obs::MetricsRegistry split;
  const obs::CounterId sc = split.AddCounter("ops");
  const obs::HistogramId sh = split.AddHistogram("lat");
  uint64_t fused_ticks = 0, split_ticks = 0;
  for (int i = 0; i < 1000; ++i) {
    if (fused.CountAndTick(fc, fh, 7)) ++fused_ticks;
    split.Count(sc);
    if (split.Tick(sh, 7)) ++split_ticks;
  }
  EXPECT_EQ(fused.CounterValue(fc), split.CounterValue(sc));
  EXPECT_EQ(fused_ticks, split_ticks);
  EXPECT_GT(fused_ticks, 0u);
}

// Snapshots taken while writers are live must be coherent (TSan-clean,
// monotone, never overshooting the final total) even though they merge
// relaxed per-thread cells.
TEST(MetricsRegistry, SnapshotWhileRecording) {
  obs::MetricsRegistry registry;
  const obs::CounterId ops = registry.AddCounter("ops");
  const obs::HistogramId lat = registry.AddHistogram("lat");
  constexpr uint64_t kTotal = 200000;
  std::thread writer([&] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      registry.Count(ops);
      if (registry.Tick(lat, 16)) registry.Record(lat, i % 512);
    }
  });
  uint64_t last = 0;
  for (int s = 0; s < 50; ++s) {
    const obs::MetricsSnapshot snap = registry.Snapshot();
    const uint64_t* v = snap.counter("ops");
    ASSERT_NE(v, nullptr);
    EXPECT_GE(*v, last);
    EXPECT_LE(*v, kTotal);
    last = *v;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  writer.join();
  EXPECT_EQ(registry.CounterValue(ops), kTotal);
}

// ---------------------------------------------------------------------------
// FlightRecorder.
// ---------------------------------------------------------------------------

// A full ring keeps exactly the newest `capacity` events, oldest-first.
TEST(FlightRecorder, WraparoundKeepsNewest) {
  obs::FlightRecorder ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(obs::EventId::kAccess, obs::TraceTier::kSealed, 0,
                /*codec=*/2, /*shard=*/i % 3, /*arg=*/i * 10, /*len=*/1,
                /*dur_ns=*/i + 100);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  const std::vector<obs::TraceEvent> events = ring.Dump();
  ASSERT_EQ(events.size(), 8u);
  for (size_t k = 0; k < events.size(); ++k) {
    const uint64_t i = 12 + k;  // survivors are tickets 12..19, in order
    EXPECT_EQ(events[k].seq, i);
    EXPECT_EQ(events[k].op, obs::EventId::kAccess);
    EXPECT_EQ(events[k].tier, obs::TraceTier::kSealed);
    EXPECT_EQ(events[k].codec, 2u);
    EXPECT_EQ(events[k].shard, i % 3);
    EXPECT_EQ(events[k].arg, i * 10);
    EXPECT_EQ(events[k].duration_ns, i + 100);
  }
  EXPECT_NE(obs::TraceText(events).find("access"), std::string::npos);
}

// Concurrent writers lapping the ring while a reader dumps: every dumped
// event must be internally consistent (the seqlock forbids stitching
// fields from two different writes together). Each write carries a
// self-checking relation between its fields.
TEST(FlightRecorder, TornReadsNeverSurface) {
  obs::FlightRecorder ring(16);
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < 20000; ++i) {
        const uint64_t x = (static_cast<uint64_t>(w) << 32) | i;
        ring.Record(obs::EventId::kAccess, obs::TraceTier::kTail, 0,
                    /*codec=*/static_cast<uint32_t>(w), /*shard=*/x,
                    /*arg=*/x * 3 + 1, /*len=*/1, /*dur_ns=*/7);
      }
    });
  }
  // While writers lap the ring at full speed a dump may legitimately come
  // back short (slots caught mid-write are skipped, never stitched) — the
  // invariant under the race is only consistency of what IS returned.
  for (int d = 0; d < 200; ++d) {
    for (const obs::TraceEvent& e : ring.Dump()) {
      EXPECT_EQ(e.arg, e.shard * 3 + 1);  // fields from one write, always
      EXPECT_LT(e.codec, static_cast<uint32_t>(kWriters));
    }
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(ring.recorded(), uint64_t{kWriters} * 20000);
  // Quiesced, the ring yields a full, ordered, consistent dump.
  const std::vector<obs::TraceEvent> final_dump = ring.Dump();
  EXPECT_EQ(final_dump.size(), ring.capacity());
  for (size_t k = 0; k < final_dump.size(); ++k) {
    const obs::TraceEvent& e = final_dump[k];
    EXPECT_EQ(e.arg, e.shard * 3 + 1);
    if (k > 0) EXPECT_GT(e.seq, final_dump[k - 1].seq);
  }
}

// ---------------------------------------------------------------------------
// Store integration: metrics vs ground truth.
// ---------------------------------------------------------------------------

std::vector<int64_t> RampSeries(size_t n) {
  std::vector<int64_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<int64_t>(i * 7 + (i % 13));
  }
  return values;
}

std::string TempDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("neats_obs_test_") + tag + "_" +
           std::to_string(static_cast<unsigned long long>(
               std::chrono::steady_clock::now().time_since_epoch().count()))))
      .string();
}

// With latency_sample_every=1 every op is timed, so the store's counters
// AND histogram counts must equal the exact number of ops the test issued.
TEST(NeatsStoreObs, MetricsMatchGroundTruth) {
  const std::vector<int64_t> values = RampSeries(4096);
  NeatsStoreOptions options;
  options.shard_size = 1024;
  options.latency_sample_every = 1;
  NeatsStore store(options);
  store.Append({values.data(), 2000});
  store.Append({values.data() + 2000, values.size() - 2000});
  store.Flush();

  constexpr uint64_t kAccesses = 300;
  for (uint64_t i = 0; i < kAccesses; ++i) {
    ASSERT_EQ(store.Access((i * 37) % values.size()),
              values[(i * 37) % values.size()]);
  }
  std::vector<uint64_t> idx = {3, 900, 1500, 2100, 4000};
  std::vector<int64_t> out(idx.size());
  store.AccessBatch(idx, out);
  std::vector<int64_t> range(512);
  store.DecompressRange(1000, range.size(), range.data());
  (void)store.RangeSum(100, 700);

  ASSERT_TRUE(store.metrics_enabled());
  const obs::MetricsSnapshot snap = store.StatsSnapshot();
  EXPECT_EQ(*snap.counter("access.ops"), kAccesses);
  EXPECT_EQ(snap.histogram("access")->count(), kAccesses);
  EXPECT_EQ(*snap.counter("access_batch.calls"), 1u);
  EXPECT_EQ(*snap.counter("access_batch.probes"), idx.size());
  EXPECT_EQ(snap.histogram("access_batch")->count(), 1u);
  EXPECT_EQ(*snap.counter("range.calls"), 1u);
  EXPECT_EQ(*snap.counter("range.values"), range.size());
  EXPECT_EQ(*snap.counter("range_sum.calls"), 1u);
  EXPECT_EQ(*snap.counter("range_sum.values"), 700u);
  EXPECT_EQ(*snap.counter("append.calls"), 2u);
  EXPECT_EQ(*snap.counter("append.values"), values.size());
  EXPECT_EQ(*snap.counter("bytes.in"), values.size() * sizeof(int64_t));
  EXPECT_EQ(*snap.counter("flush.calls"), 1u);
  EXPECT_EQ(*snap.counter("seal.count"), store.num_shards());
  EXPECT_EQ(*snap.counter("errors"), 0u);
  EXPECT_EQ(*snap.gauge("store.values"),
            static_cast<int64_t>(values.size()));
  EXPECT_EQ(*snap.gauge("store.quarantined_shards"), 0);
  // bytes.out is derived from the served-value counters at snapshot time.
  EXPECT_EQ(*snap.counter("bytes.out"),
            (kAccesses + idx.size() + range.size() + 700) * sizeof(int64_t));
  EXPECT_GT(snap.histogram("access")->p50(), 0u);
  EXPECT_GE(snap.histogram("access")->p99(),
            snap.histogram("access")->p50());

  // The trace ring saw the sampled ops; the newest events decode.
  const std::vector<obs::TraceEvent> trace = store.TraceDump();
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(obs::TraceText(trace).find("dur_ns"), std::string::npos);
}

// metrics=false is a true off switch: no registry, empty snapshots, empty
// trace, and every operation still serves correctly.
TEST(NeatsStoreObs, DisabledMetricsMeansEmptySnapshots) {
  const std::vector<int64_t> values = RampSeries(1024);
  NeatsStoreOptions options;
  options.shard_size = 512;
  options.metrics = false;
  NeatsStore store(options);
  store.Append({values.data(), values.size()});
  store.Flush();
  for (uint64_t i = 0; i < values.size(); i += 97) {
    ASSERT_EQ(store.Access(i), values[i]);
  }
  EXPECT_FALSE(store.metrics_enabled());
  const obs::MetricsSnapshot snap = store.StatsSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(store.TraceDump().empty());
}

// ---------------------------------------------------------------------------
// Dump-on-quarantine + Scrub repair: the structured-log contract.
// ---------------------------------------------------------------------------

// The incident pipeline end to end: a shard blob rots on disk after open,
// Scrub quarantines it (one kQuarantine log event carrying the shard, one
// kTraceDump event shipping the last-operations context), the hand-planted
// WAL coverage lets the same Scrub repair it (kScrubRepair), and the
// counters record exactly one entry into and one exit out of quarantine.
TEST(NeatsStoreObs, DumpOnQuarantineAndScrubRepair) {
  const std::string dir = TempDir("quarantine");
  const std::vector<int64_t> values = RampSeries(768);
  {
    NeatsStoreOptions options;
    options.shard_size = 256;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append({values.data(), values.size()});
    store.Flush();
  }

  // Plant WAL records covering shard 0's range [0, 256): the copy Scrub
  // repairs from (a clean Flush resets the WAL, so recovery of a sealed
  // shard needs exactly this shape — the crash scenarios produce it by
  // dying before the reset).
  std::vector<uint8_t> wal;
  AppendWalHeader(&wal);
  AppendWalRecord(&wal, 0, {values.data(), 256});
  WriteFile(dir + "/" + WalFileName(), wal);

  std::vector<obs::LogEvent> events;
  NeatsStoreOptions options;
  options.shard_size = 256;
  options.latency_sample_every = 1;
  options.log_sink = [&events](const obs::LogEvent& e) {
    events.push_back(e);
  };
  NeatsStore store = NeatsStore::OpenDir(dir, options);
  ASSERT_FALSE(store.degraded());
  for (uint64_t i = 300; i < 320; ++i) {  // populate the trace ring
    ASSERT_EQ(store.Access(i), values[i]);
  }

  // Bit rot: flip one payload byte of shard 0's blob on disk.
  const std::string shard0 = dir + "/" + StoreManifest::ShardFileName(0);
  std::vector<uint8_t> blob = ReadFile(shard0);
  blob[blob.size() / 2] ^= 0x40;
  WriteFile(shard0, blob);

  const NeatsStore::RepairReport& report = store.Scrub();
  ASSERT_EQ(report.repaired.size(), 1u);
  EXPECT_EQ(report.repaired[0], 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(store.degraded());
  for (uint64_t i = 0; i < values.size(); i += 17) {
    ASSERT_EQ(store.Access(i), values[i]);  // repaired shard serves again
  }

  // The log stream told the whole story, in order, with the shard id.
  auto find = [&](obs::EventId id) -> const obs::LogEvent* {
    for (const obs::LogEvent& e : events) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  const obs::LogEvent* quarantine = find(obs::EventId::kQuarantine);
  ASSERT_NE(quarantine, nullptr);
  EXPECT_EQ(quarantine->severity, obs::Severity::kError);
  EXPECT_EQ(quarantine->shard, 0u);
  const obs::LogEvent* dump = find(obs::EventId::kTraceDump);
  ASSERT_NE(dump, nullptr);
  EXPECT_NE(dump->message.find("recent operations"), std::string::npos);
  EXPECT_NE(dump->message.find("access"), std::string::npos);
  const obs::LogEvent* repair = find(obs::EventId::kScrubRepair);
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->severity, obs::Severity::kInfo);
  EXPECT_EQ(repair->shard, 0u);

  const obs::MetricsSnapshot snap = store.StatsSnapshot();
  EXPECT_EQ(*snap.counter("quarantine.entered"), 1u);
  EXPECT_EQ(*snap.counter("quarantine.exited"), 1u);
  EXPECT_EQ(*snap.counter("scrub.repaired"), 1u);
  EXPECT_EQ(*snap.counter("scrub.calls"), 1u);
  EXPECT_EQ(snap.histogram("scrub")->count(), 1u);
  std::filesystem::remove_all(dir);
}

// An access routed into a quarantined range is counted as an error and
// traced, but must NOT emit a log event per failing query (a probe storm
// into a hole would flood the sink; the quarantine itself already logged).
TEST(NeatsStoreObs, QuarantinedReadsCountErrorsWithoutLogSpam) {
  const std::string dir = TempDir("errstorm");
  const std::vector<int64_t> values = RampSeries(512);
  {
    NeatsStoreOptions options;
    options.shard_size = 256;
    NeatsStore store = NeatsStore::CreateDir(dir, options);
    store.Append({values.data(), values.size()});
    store.Flush();
  }
  const std::string shard0 = dir + "/" + StoreManifest::ShardFileName(0);
  std::vector<uint8_t> blob = ReadFile(shard0);
  blob.resize(blob.size() - 8);  // torn: quarantined at open
  WriteFile(shard0, blob);

  std::vector<obs::LogEvent> events;
  NeatsStoreOptions options;
  options.shard_size = 256;
  options.log_sink = [&events](const obs::LogEvent& e) {
    events.push_back(e);
  };
  NeatsStore store = NeatsStore::OpenDir(dir, options);
  ASSERT_TRUE(store.degraded());
  ASSERT_EQ(store.recovery_report().quarantined.size(), 1u);
  EXPECT_EQ(store.recovery_report().quarantined[0].event,
            obs::EventId::kQuarantine);
  const size_t events_after_open = events.size();

  constexpr uint64_t kProbes = 50;
  uint64_t unavailable = 0;
  for (uint64_t p = 0; p < kProbes; ++p) {
    try {
      (void)store.Access(p % 256);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(unavailable, kProbes);
  EXPECT_EQ(events.size(), events_after_open);  // no per-query log spam
  const obs::MetricsSnapshot snap = store.StatsSnapshot();
  EXPECT_EQ(*snap.counter("errors"), kProbes);
  EXPECT_EQ(*snap.counter("quarantine.entered"), 1u);
  EXPECT_EQ(*snap.gauge("store.quarantined_shards"), 1);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Scenario integration: the engine attaches the store's own snapshot.
// ---------------------------------------------------------------------------

TEST(NeatsStoreObs, ScenarioAttachesStoreMetrics) {
  const scenario::Scenario* s =
      scenario::BuiltinScenarios().Find("steady_ingest_point_storm");
  ASSERT_NE(s, nullptr);
  scenario::ScenarioOptions options;
  options.scale = 1;
  const scenario::ScenarioResult r = scenario::RunScenario(*s, options);
  const uint64_t* access = r.store_metrics.counter("access.ops");
  ASSERT_NE(access, nullptr);
  EXPECT_GT(*access, 0u);
  const obs::LatencyHistogram* h = r.store_metrics.histogram("access");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
  EXPECT_GT(h->p99(), 0u);
}

}  // namespace
}  // namespace neats
