#include "common/bits.hpp"

#include <gtest/gtest.h>

#include <random>

namespace neats {
namespace {

TEST(Bits, PopcountMatchesNaive) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    uint64_t x = rng();
    int naive = 0;
    for (int i = 0; i < 64; ++i) naive += (x >> i) & 1;
    EXPECT_EQ(Popcount(x), naive);
  }
}

TEST(Bits, BitWidthBasics) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~0ULL), 64);
}

TEST(Bits, CeilLog2Basics) {
  EXPECT_EQ(CeilLog2(0), 0);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1ULL << 40), 40);
  EXPECT_EQ(CeilLog2((1ULL << 40) + 1), 41);
}

TEST(Bits, SelectInWordExhaustiveSmall) {
  // Every 16-bit pattern, every rank: compare against a naive scan.
  for (uint32_t x = 1; x < (1u << 16); ++x) {
    uint64_t word = x;
    int rank = 0;
    for (int i = 0; i < 16; ++i) {
      if ((word >> i) & 1) {
        EXPECT_EQ(SelectInWord(word, rank), i) << "x=" << x << " rank=" << rank;
        ++rank;
      }
    }
  }
}

TEST(Bits, SelectInWordRandom64) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t x = rng();
    int rank = 0;
    for (int i = 0; i < 64; ++i) {
      if ((x >> i) & 1) {
        ASSERT_EQ(SelectInWord(x, rank), i);
        ++rank;
      }
    }
  }
}

TEST(Bits, LowMask) {
  EXPECT_EQ(LowMask(0), 0ULL);
  EXPECT_EQ(LowMask(1), 1ULL);
  EXPECT_EQ(LowMask(63), (1ULL << 63) - 1);
  EXPECT_EQ(LowMask(64), ~0ULL);
}

TEST(Bits, ZigZagRoundTrip) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    int64_t v = static_cast<int64_t>(rng());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(INT64_MAX)), INT64_MAX);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 64), 0u);
  EXPECT_EQ(CeilDiv(1, 64), 1u);
  EXPECT_EQ(CeilDiv(64, 64), 1u);
  EXPECT_EQ(CeilDiv(65, 64), 2u);
}

TEST(Bits, SelectInWordMatchesBroadword) {
  // When NEATS_ENABLE_BMI2 is on, SelectInWord dispatches to _pdep_u64;
  // either way it must agree with the portable broadword routine bit-for-bit.
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t x = rng();
    if (trial < 64) x = 1ULL << trial;       // single-bit words
    if (trial == 64) x = ~0ULL;              // full word
    int pc = Popcount(x);
    for (int k = 0; k < pc; ++k) {
      int pos = SelectInWord(x, k);
      ASSERT_EQ(pos, SelectInWordBroadword(x, k)) << "x=" << x << " k=" << k;
      ASSERT_TRUE((x >> pos) & 1);
      ASSERT_EQ(Popcount(x & LowMask(pos)), k);
    }
  }
}

}  // namespace
}  // namespace neats
