#include "succinct/packed_array.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace neats {
namespace {

TEST(PackedArray, Empty) {
  PackedArray a;
  EXPECT_EQ(a.size(), 0u);
}

TEST(PackedArray, FromValuesPicksMinimalWidth) {
  PackedArray a = PackedArray::FromValues({0, 1, 2, 3});
  EXPECT_EQ(a.width(), 2);
  PackedArray b = PackedArray::FromValues({0, 0, 0});
  EXPECT_EQ(b.width(), 0);
  EXPECT_EQ(b[1], 0u);
  PackedArray c = PackedArray::FromValues({1ULL << 63});
  EXPECT_EQ(c.width(), 64);
  EXPECT_EQ(c[0], 1ULL << 63);
}

class PackedArrayWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedArrayWidthTest, RoundTripAtWidth) {
  int width = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(width) + 1);
  std::vector<uint64_t> values(997);
  for (auto& v : values) v = rng() & LowMask(width);
  PackedArray a(values, width);
  ASSERT_EQ(a.size(), values.size());
  ASSERT_EQ(a.width(), width);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(a[i], values[i]) << "width=" << width << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedArrayWidthTest,
                         ::testing::Range(0, 65));

TEST(PackedArray, SizeInBitsIsTight) {
  std::vector<uint64_t> values(1000, 7);
  PackedArray a(values, 3);
  // 3000 payload bits rounded up to words, plus bounded metadata.
  EXPECT_LE(a.SizeInBits(), 3000u + 64u + 2 * 64u);
}

}  // namespace
}  // namespace neats
