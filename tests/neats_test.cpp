#include "core/neats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/neats_lossy.hpp"
#include "core/variants.hpp"

namespace neats {
namespace {

void CheckRoundTrip(const std::vector<int64_t>& values,
                    const NeatsOptions& options = {}) {
  Neats compressed = Neats::Compress(values, options);
  ASSERT_EQ(compressed.size(), values.size());

  // Algorithm 2: full decompression.
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  ASSERT_EQ(decoded, values);

  // Algorithm 3: random access at every position.
  for (size_t k = 0; k < values.size(); ++k) {
    ASSERT_EQ(compressed.Access(k), values[k]) << "access at " << k;
  }
}

std::vector<int64_t> RandomWalk(size_t n, uint64_t seed, int64_t step) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> values;
  int64_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng() % (2 * step + 1)) - step;
    values.push_back(cur);
  }
  return values;
}

TEST(Neats, EmptySeries) {
  Neats compressed = Neats::Compress(std::vector<int64_t>{});
  EXPECT_EQ(compressed.size(), 0u);
  std::vector<int64_t> out;
  compressed.Decompress(&out);
  EXPECT_TRUE(out.empty());
}

TEST(Neats, SingleValue) { CheckRoundTrip({12345}); }

TEST(Neats, TwoValues) { CheckRoundTrip({-7, 999}); }

TEST(Neats, ConstantSeries) { CheckRoundTrip(std::vector<int64_t>(5000, -3)); }

TEST(Neats, LinearRamp) {
  std::vector<int64_t> values;
  for (int i = 0; i < 3000; ++i) values.push_back(5 * i - 100);
  CheckRoundTrip(values);
  Neats compressed = Neats::Compress(values);
  // A perfect line: one fragment, zero correction bits, tiny output. The
  // bound is the exact v3 serialized footprint (SizeInBits == on-disk
  // bits): headers, count words, sampled select directories and the
  // interleaved fragment directory (one 32-byte record plus its count word
  // and 64-byte alignment pad) cost a few hundred bits even for a
  // one-fragment structure — under 0.2 bits/value here and amortized to
  // nothing on real series.
  EXPECT_LE(compressed.num_fragments(), 2u);
  EXPECT_LT(compressed.SizeInBits(), 5200u);
}

TEST(Neats, StepFunction) {
  std::vector<int64_t> values;
  for (int s = 0; s < 20; ++s) {
    for (int i = 0; i < 100; ++i) values.push_back(s * 1000);
  }
  CheckRoundTrip(values);
}

TEST(Neats, AlternatingExtremes) {
  std::vector<int64_t> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(i % 2 == 0 ? 1000000 : -1000000);
  }
  CheckRoundTrip(values);
}

TEST(Neats, RandomWalks) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    CheckRoundTrip(RandomWalk(10000, seed, 50));
  }
}

TEST(Neats, PureNoise) {
  std::mt19937_64 rng(11);
  std::vector<int64_t> values(5000);
  for (auto& v : values) v = static_cast<int64_t>(rng() % 100000) - 50000;
  CheckRoundTrip(values);
}

TEST(Neats, NonlinearTrends) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int64_t>(50.0 * std::exp(0.008 * i)));
  }
  for (int i = 0; i < 1000; ++i) {
    values.push_back(values.back() + static_cast<int64_t>(90.0 * std::sqrt(i)));
  }
  CheckRoundTrip(values);
}

TEST(Neats, NegativeHeavySeries) {
  std::vector<int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(-1000000000LL + 997 * i + (i * i) % 83);
  }
  CheckRoundTrip(values);
}

TEST(Neats, LargeMagnitudeValues) {
  std::vector<int64_t> values;
  int64_t base = int64_t{1} << 60;
  for (int i = 0; i < 300; ++i) values.push_back(base + i * 1000);
  for (int i = 0; i < 300; ++i) values.push_back(-base + i * 777);
  CheckRoundTrip(values);
}

TEST(Neats, BitVectorStartsVariant) {
  NeatsOptions options;
  options.starts_index = StartsIndex::kBitVector;
  CheckRoundTrip(RandomWalk(8000, 7, 30), options);
}

TEST(Neats, BothStartsVariantsAgreeOnSize) {
  auto values = RandomWalk(20000, 13, 40);
  NeatsOptions ef, bv;
  bv.starts_index = StartsIndex::kBitVector;
  Neats a = Neats::Compress(values, ef);
  Neats b = Neats::Compress(values, bv);
  EXPECT_EQ(a.num_fragments(), b.num_fragments());
  // Same corrections and fragments; only the S representation differs.
  for (size_t k = 0; k < values.size(); k += 97) {
    EXPECT_EQ(a.Access(k), b.Access(k));
  }
}

TEST(Neats, DecompressRangeMatchesSlices) {
  auto values = RandomWalk(30000, 17, 25);
  Neats compressed = Neats::Compress(values);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t k = rng() % values.size();
    uint64_t len = std::min<uint64_t>(rng() % 500, values.size() - k);
    std::vector<int64_t> out(len);
    compressed.DecompressRange(k, len, out.data());
    for (uint64_t j = 0; j < len; ++j) {
      ASSERT_EQ(out[j], values[k + j]) << "range at " << k << "+" << j;
    }
  }
}

TEST(Neats, RangeAcrossManyFragments) {
  // Force many fragments with a zig-zag that breaks every ~16 points.
  std::vector<int64_t> values;
  std::mt19937_64 rng(19);
  for (int b = 0; b < 400; ++b) {
    int64_t base = static_cast<int64_t>(rng() % 100000);
    for (int i = 0; i < 16; ++i) values.push_back(base + ((b + i) % 2) * 5000);
  }
  Neats compressed = Neats::Compress(values);
  std::vector<int64_t> out(values.size());
  compressed.DecompressRange(0, values.size(), out.data());
  EXPECT_EQ(out, values);
}

TEST(Neats, FragmentIntrospectionIsConsistent) {
  auto values = RandomWalk(5000, 23, 15);
  Neats compressed = Neats::Compress(values);
  uint64_t expected_start = 0;
  for (size_t i = 0; i < compressed.num_fragments(); ++i) {
    auto info = compressed.GetFragment(i);
    EXPECT_EQ(info.start, expected_start);
    EXPECT_GT(info.end, info.start);
    EXPECT_LE(info.origin, info.start);
    EXPECT_GE(info.correction_bits, 0);
    EXPECT_LE(info.correction_bits, 64);
    expected_start = info.end;
  }
  EXPECT_EQ(expected_start, values.size());
}

TEST(Neats, CompressionBeatsRawOnSmoothData) {
  std::vector<int64_t> values;
  std::mt19937_64 rng(29);
  for (int i = 0; i < 50000; ++i) {
    values.push_back(static_cast<int64_t>(
        100000.0 * std::sin(i * 0.001) + static_cast<double>(rng() % 32)));
  }
  Neats compressed = Neats::Compress(values);
  double ratio = static_cast<double>(compressed.SizeInBits()) /
                 (64.0 * static_cast<double>(values.size()));
  EXPECT_LT(ratio, 0.25) << "smooth data should compress below 25%";
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
}

TEST(Neats, ModelSelectionStaysLossless) {
  auto values = RandomWalk(30000, 31, 20);
  Neats compressed = CompressSNeaTS(values);
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
}

TEST(Neats, LeaTSStaysLossless) {
  auto values = RandomWalk(20000, 37, 20);
  Neats compressed = CompressLeaTS(values);
  std::vector<int64_t> decoded;
  compressed.Decompress(&decoded);
  EXPECT_EQ(decoded, values);
  for (size_t i = 0; i < compressed.num_fragments(); ++i) {
    EXPECT_EQ(compressed.GetFragment(i).kind, FunctionKind::kLinear);
  }
}

class NeatsDatasetShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(NeatsDatasetShapeTest, RoundTripOnShape) {
  int shape = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(shape) * 101 + 1);
  std::vector<int64_t> values;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    double v = 0;
    switch (shape) {
      case 0: v = 2000 * std::sin(i * 0.01); break;                  // seasonal
      case 1: v = 0.5 * i + 300 * std::sin(i * 0.05); break;         // trend+season
      case 2: v = std::exp(0.002 * i); break;                        // growth
      case 3: v = (i / 500) * 1000 + static_cast<double>(rng() % 7); break;  // steps
      case 4: v = 1e12 + static_cast<double>(rng() % 1000); break;   // huge offset
      case 5: v = static_cast<double>(rng() % 3); break;             // tiny alphabet
    }
    values.push_back(static_cast<int64_t>(v));
  }
  CheckRoundTrip(values);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NeatsDatasetShapeTest, ::testing::Range(0, 6));

// ---- Lossy variant ----

TEST(NeatsLossy, MaxErrorGuarantee) {
  auto values = RandomWalk(20000, 41, 60);
  for (int64_t eps : {1, 10, 100, 1000}) {
    NeatsLossy lossy = NeatsLossy::Compress(values, eps);
    std::vector<int64_t> approx;
    lossy.Decompress(&approx);
    ASSERT_EQ(approx.size(), values.size());
    int64_t max_err = 0;
    for (size_t k = 0; k < values.size(); ++k) {
      max_err = std::max(max_err, std::abs(approx[k] - values[k]));
    }
    // eps plus 1 slack for floor/rounding of stored double parameters.
    EXPECT_LE(max_err, eps + 1) << "eps=" << eps;
  }
}

TEST(NeatsLossy, AccessMatchesDecompress) {
  auto values = RandomWalk(10000, 43, 30);
  NeatsLossy lossy = NeatsLossy::Compress(values, 25);
  std::vector<int64_t> approx;
  lossy.Decompress(&approx);
  for (size_t k = 0; k < values.size(); k += 53) {
    EXPECT_EQ(lossy.Access(k), approx[k]);
  }
}

TEST(NeatsLossy, SmallerThanLossless) {
  auto values = RandomWalk(30000, 47, 80);
  Neats lossless = Neats::Compress(values);
  // eps at ~1% of range: lossy must be much smaller than lossless.
  int64_t lo = *std::min_element(values.begin(), values.end());
  int64_t hi = *std::max_element(values.begin(), values.end());
  int64_t eps = std::max<int64_t>(1, (hi - lo) / 100);
  NeatsLossy lossy = NeatsLossy::Compress(values, eps);
  EXPECT_LT(lossy.SizeInBits(), lossless.SizeInBits());
}

TEST(NeatsLossy, EmptyAndTiny) {
  NeatsLossy empty = NeatsLossy::Compress(std::vector<int64_t>{}, 5);
  EXPECT_EQ(empty.size(), 0u);
  NeatsLossy one = NeatsLossy::Compress(std::vector<int64_t>{{77}}, 5);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_NEAR(static_cast<double>(one.Access(0)), 77.0, 5.0);
}

}  // namespace
}  // namespace neats
