#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>
#include <vector>

#include "baselines/blockwise.hpp"
#include "baselines/chimp.hpp"
#include "baselines/gorilla.hpp"
#include "baselines/tsxor.hpp"

namespace neats {
namespace {

// Doubles must round-trip bit-exactly (including -0.0, subnormals, NaN bit
// patterns are excluded by the generators but +-inf is exercised).
void ExpectBitExact(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]))
        << "index " << i;
  }
}

std::vector<double> SensorLike(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values;
  double cur = 20.0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<double>(static_cast<int>(rng() % 200) - 100) / 100.0;
    // Two fixed decimals, like most of the paper's datasets.
    values.push_back(std::round(cur * 100.0) / 100.0);
  }
  return values;
}

std::vector<double> AdversarialDoubles(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) {
    switch (rng() % 6) {
      case 0: values.push_back(0.0); break;
      case 1: values.push_back(-0.0); break;
      case 2: values.push_back(std::bit_cast<double>(rng())); break;  // random bits
      case 3: values.push_back(1e300); break;
      case 4: values.push_back(-5e-324); break;  // subnormal
      default: values.push_back(static_cast<double>(rng() % 1000)); break;
    }
    if (std::isnan(values.back())) values.back() = 42.0;  // keep comparable
  }
  return values;
}

template <typename Codec>
void CheckCodec(const std::vector<double>& values) {
  Codec compressed = Codec::Compress(values);
  std::vector<double> decoded;
  compressed.Decompress(&decoded);
  ExpectBitExact(values, decoded);
}

template <typename Codec>
class XorCodecTest : public ::testing::Test {};

using XorCodecs = ::testing::Types<Gorilla, Chimp, Chimp128, TsXor>;
TYPED_TEST_SUITE(XorCodecTest, XorCodecs);

TYPED_TEST(XorCodecTest, EmptyInput) {
  CheckCodec<TypeParam>({});
}

TYPED_TEST(XorCodecTest, SingleValue) {
  CheckCodec<TypeParam>({3.14159});
  CheckCodec<TypeParam>({0.0});
  CheckCodec<TypeParam>({-1e308});
}

TYPED_TEST(XorCodecTest, ConstantRun) {
  CheckCodec<TypeParam>(std::vector<double>(5000, 42.5));
}

TYPED_TEST(XorCodecTest, SensorLikeRoundTrip) {
  CheckCodec<TypeParam>(SensorLike(20000, 7));
}

TYPED_TEST(XorCodecTest, AdversarialRoundTrip) {
  CheckCodec<TypeParam>(AdversarialDoubles(5000, 9));
}

TYPED_TEST(XorCodecTest, AlternatingValues) {
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(i % 2 ? 1.5 : -7.25);
  CheckCodec<TypeParam>(values);
}

TYPED_TEST(XorCodecTest, CompressesConstantsWell) {
  std::vector<double> values(10000, 123.456);
  TypeParam compressed = TypeParam::Compress(values);
  // A constant series costs a handful of bits per value (Gorilla/Chimp pay
  // 1-2 bits, Chimp128/TSXor also pay their window reference index) — in any
  // case far below the raw 64.
  EXPECT_LT(compressed.SizeInBits(), values.size() * 10);
}

TYPED_TEST(XorCodecTest, BlockwiseWrapperAccess) {
  auto values = SensorLike(5500, 13);
  auto wrapped = Blockwise<TypeParam>::Compress(values);
  ASSERT_EQ(wrapped.size(), values.size());
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    size_t i = rng() % values.size();
    EXPECT_EQ(std::bit_cast<uint64_t>(wrapped.Access(i)),
              std::bit_cast<uint64_t>(values[i]));
  }
  std::vector<double> decoded;
  wrapped.Decompress(&decoded);
  ExpectBitExact(values, decoded);
}

TYPED_TEST(XorCodecTest, BlockwiseRangeDecode) {
  auto values = SensorLike(4321, 17);
  auto wrapped = Blockwise<TypeParam>::Compress(values);
  std::vector<double> out(777);
  wrapped.DecompressRange(1500, out.size(), out.data());
  for (size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(std::bit_cast<uint64_t>(out[j]),
              std::bit_cast<uint64_t>(values[1500 + j]));
  }
}

TEST(XorFamilyComparison, ChimpBeatsGorillaOnDecimals) {
  // The Chimp paper's headline: on decimal sensor data Chimp compresses
  // better than Gorilla.
  auto values = SensorLike(50000, 23);
  Gorilla g = Gorilla::Compress(values);
  Chimp c = Chimp::Compress(values);
  EXPECT_LT(c.SizeInBits(), g.SizeInBits());
}

TEST(XorFamilyComparison, Chimp128NoWorseOnRepetitiveData) {
  // A window of references pays off when values recur.
  std::vector<double> values;
  std::mt19937_64 rng(29);
  std::vector<double> dictionary;
  for (int i = 0; i < 40; ++i) {
    dictionary.push_back(static_cast<double>(rng() % 100000) / 100.0);
  }
  for (int i = 0; i < 30000; ++i) {
    values.push_back(dictionary[rng() % dictionary.size()]);
  }
  Chimp c = Chimp::Compress(values);
  Chimp128 c128 = Chimp128::Compress(values);
  EXPECT_LT(c128.SizeInBits(), c.SizeInBits());
}

}  // namespace
}  // namespace neats
