// Cross-module integration tests: every compressor in the benchmark roster
// must agree with the ground truth on full decompression, point access, and
// range queries, over every dataset generator — the end-to-end contract the
// benchmark harness relies on.

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <vector>

#include "baselines/alp.hpp"
#include "baselines/blockwise.hpp"
#include "baselines/chimp.hpp"
#include "baselines/dac.hpp"
#include "baselines/general_purpose.hpp"
#include "baselines/gorilla.hpp"
#include "baselines/leco.hpp"
#include "baselines/tsxor.hpp"
#include "core/neats.hpp"
#include "core/variants.hpp"
#include "datasets/generators.hpp"

namespace neats {
namespace {

constexpr size_t kN = 6000;

class IntegrationTest : public ::testing::TestWithParam<const char*> {
 protected:
  Dataset ds_ = MakeDataset(GetParam(), kN);
};

template <typename C>
void CheckIntCompressor(const C& blob, const std::vector<int64_t>& truth) {
  std::vector<int64_t> out;
  blob.Decompress(&out);
  ASSERT_EQ(out, truth);
  std::mt19937_64 rng(1);
  for (int t = 0; t < 100; ++t) {
    size_t i = rng() % truth.size();
    ASSERT_EQ(blob.Access(i), truth[i]);
  }
}

template <typename C>
void CheckDoubleCompressor(const C& blob, const std::vector<double>& truth) {
  std::vector<double> out;
  blob.Decompress(&out);
  ASSERT_EQ(out.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint64_t>(out[i]), std::bit_cast<uint64_t>(truth[i]));
  }
  std::mt19937_64 rng(2);
  for (int t = 0; t < 50; ++t) {
    size_t i = rng() % truth.size();
    ASSERT_EQ(std::bit_cast<uint64_t>(blob.Access(i)),
              std::bit_cast<uint64_t>(truth[i]));
  }
}

TEST_P(IntegrationTest, NeatsContract) {
  Neats blob = Neats::Compress(ds_.values);
  CheckIntCompressor(blob, ds_.values);
  // Range queries crossing fragment boundaries.
  std::mt19937_64 rng(3);
  std::vector<int64_t> out;
  for (int t = 0; t < 50; ++t) {
    size_t from = rng() % (ds_.values.size() - 1);
    size_t len = 1 + rng() % std::min<size_t>(2000, ds_.values.size() - from);
    out.resize(len);
    blob.DecompressRange(from, len, out.data());
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(out[j], ds_.values[from + j]);
    }
  }
}

TEST_P(IntegrationTest, VariantsContract) {
  CheckIntCompressor(CompressLeaTS(ds_.values), ds_.values);
  CheckIntCompressor(CompressSNeaTS(ds_.values), ds_.values);
}

TEST_P(IntegrationTest, DacLecoContract) {
  CheckIntCompressor(Dac::Compress(ds_.values), ds_.values);
  CheckIntCompressor(Leco::Compress(ds_.values), ds_.values);
}

TEST_P(IntegrationTest, GeneralPurposeContract) {
  CheckIntCompressor(BlockwiseBytes<FastLzPolicy>::Compress(ds_.values),
                     ds_.values);
  CheckIntCompressor(BlockwiseBytes<LzHufFastPolicy>::Compress(ds_.values),
                     ds_.values);
  CheckIntCompressor(BlockwiseBytes<LzHufStrongPolicy>::Compress(ds_.values),
                     ds_.values);
}

TEST_P(IntegrationTest, XorFamilyContract) {
  CheckDoubleCompressor(Blockwise<Gorilla>::Compress(ds_.doubles), ds_.doubles);
  CheckDoubleCompressor(Blockwise<Chimp>::Compress(ds_.doubles), ds_.doubles);
  CheckDoubleCompressor(Blockwise<Chimp128>::Compress(ds_.doubles),
                        ds_.doubles);
  CheckDoubleCompressor(Blockwise<TsXor>::Compress(ds_.doubles), ds_.doubles);
}

TEST_P(IntegrationTest, AlpContract) {
  Alp blob = Alp::Compress(ds_.doubles);
  CheckDoubleCompressor(blob, ds_.doubles);
  std::vector<double> out(1500);
  size_t from = ds_.doubles.size() / 3;
  blob.DecompressRange(from, out.size(), out.data());
  for (size_t j = 0; j < out.size(); ++j) {
    ASSERT_EQ(std::bit_cast<uint64_t>(out[j]),
              std::bit_cast<uint64_t>(ds_.doubles[from + j]));
  }
}

TEST_P(IntegrationTest, SerializedNeatsContract) {
  Neats original = Neats::Compress(ds_.values);
  std::vector<uint8_t> bytes;
  original.Serialize(&bytes);
  Neats loaded = Neats::Deserialize(bytes);
  CheckIntCompressor(loaded, ds_.values);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, IntegrationTest,
                         ::testing::Values("IT", "US", "ECG", "WD", "AP", "UK",
                                           "GE", "LAT", "LON", "DP", "CT",
                                           "DU", "BT", "BW", "BM", "BP"));

}  // namespace
}  // namespace neats
