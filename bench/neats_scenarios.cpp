// neats_scenarios — the scenario-engine runner (ROADMAP item 5b).
//
// Runs named, seeded, self-verifying production-workload scenarios from
// the ScenarioRegistry against a real NeatsStore and reports per-op
// latency percentiles. Every failure prints a one-line repro
// ("scenario=X seed=Y ...") and exits non-zero.
//
//   ./neats_scenarios                        # all scenarios, smoke scale
//   ./neats_scenarios --list                 # registered scenario names
//   ./neats_scenarios --scenario dashboard_fanout --seed 7 --scale 4
//   ./neats_scenarios --scale 8 --out scenario_report.json   # soak sweep
//
// The JSON written by --out is the same per-scenario object the schema-7
// bench report embeds under "scenarios".

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/scenarios.hpp"

namespace {

using neats::scenario::BuiltinScenarios;
using neats::scenario::LatencyHistogram;
using neats::scenario::RunScenario;
using neats::scenario::Scenario;
using neats::scenario::ScenarioOptions;
using neats::scenario::ScenarioResult;

void PrintResult(const ScenarioResult& r) {
  std::printf("%-28s seed=%llu scale=%llu readers=%d wall=%.2fs "
              "ingested=%llu verified=%llu unavailable=%llu\n",
              r.name.c_str(),
              static_cast<unsigned long long>(r.options.seed),
              static_cast<unsigned long long>(r.options.scale),
              r.options.readers, r.wall_seconds,
              static_cast<unsigned long long>(r.values_ingested),
              static_cast<unsigned long long>(r.reads_verified),
              static_cast<unsigned long long>(r.unavailable_reads));
  for (const auto& [op, h] : r.ops) {
    std::printf("  %-24s n=%-9llu p50=%-8llu p99=%-8llu p999=%-8llu "
                "max=%llu ns\n",
                op.c_str(), static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.p999()),
                static_cast<unsigned long long>(h.max()));
  }
  for (const std::string& note : r.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  // The store's own view of the same run, when the scenario attached one:
  // per-op percentiles as the instrumented store measured them, next to
  // the workload-side numbers above.
  for (const auto& [op, h] : r.store_metrics.histograms) {
    if (h.count() == 0) continue;
    std::printf("  store/%-18s n=%-9llu p50=%-8llu p99=%-8llu p999=%-8llu "
                "max=%llu ns\n",
                op.c_str(), static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()),
                static_cast<unsigned long long>(h.p999()),
                static_cast<unsigned long long>(h.max()));
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--scenario NAME] [--seed S] [--scale K] "
               "[--readers R] [--out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioOptions options;
  std::string only;
  std::string out_path;
  bool list = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::exit(Usage(argv[0]));
      }
      return argv[++a];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario") {
      only = value();
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--scale") {
      options.scale = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--readers") {
      options.readers = std::atoi(value());
    } else if (arg == "--out") {
      out_path = value();
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.scale == 0 || options.readers < 1) return Usage(argv[0]);

  const neats::scenario::ScenarioRegistry& registry = BuiltinScenarios();
  if (list) {
    for (const Scenario& s : registry.All()) {
      std::printf("%-28s %s\n", s.name.c_str(), s.description.c_str());
    }
    return 0;
  }

  std::vector<const Scenario*> to_run;
  if (!only.empty()) {
    const Scenario* s = registry.Find(only);
    if (s == nullptr) {
      std::fprintf(stderr, "unknown scenario: %s (try --list)\n",
                   only.c_str());
      return 2;
    }
    to_run.push_back(s);
  } else {
    for (const Scenario& s : registry.All()) to_run.push_back(&s);
  }

  std::vector<ScenarioResult> results;
  for (const Scenario* s : to_run) {
    try {
      results.push_back(RunScenario(*s, options));
      PrintResult(results.back());
    } catch (const std::exception& e) {
      // The message already leads with the repro line (scenario=X seed=Y).
      std::fprintf(stderr, "FAILED: %s\n", e.what());
      return 1;
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    neats::scenario::WriteScenarioReport(out, results);
    std::printf("wrote %s (%zu scenarios)\n", out_path.c_str(),
                results.size());
  }
  return 0;
}
