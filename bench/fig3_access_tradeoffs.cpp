// Reproduces Figure 3: compression ratio vs decompression speed (left) and
// compression ratio vs random access speed (right), averaged over the 16
// datasets.
//
// Shapes to expect (paper): NeaTS top-left in both panels (good ratio, fast
// decompression, fast access); DAC fastest access but mediocre ratio; the
// block-wise compressors 2-3 orders of magnitude slower in random access;
// LzHuf-strong best-ratio anchor with the slowest access.

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

int main() {
  auto roster = LosslessRoster();
  std::vector<double> sum_ratio(roster.size(), 0), sum_dspeed(roster.size(), 0),
      sum_raspeed(roster.size(), 0);

  for (size_t d = 0; d < kNumDatasets; ++d) {
    Dataset ds = LoadDataset(kDatasetSpecs[d]);
    const double mb = static_cast<double>(ds.values.size()) * 8.0 / 1048576.0;
    std::mt19937_64 rng(7);
    std::vector<size_t> probes(1 << 14);
    for (auto& p : probes) p = rng() % ds.values.size();
    for (size_t c = 0; c < roster.size(); ++c) {
      auto blob = roster[c].compress(ds);
      sum_ratio[c] += RatioPct(blob->SizeInBits(), ds.values.size());
      sum_dspeed[c] += OpsPerSecond(
          [&](size_t) { return blob->DecompressAll(); }, 0.1, 64) * mb;
      sum_raspeed[c] += OpsPerSecond(
          [&](size_t i) { return blob->Access(probes[i & (probes.size() - 1)]); },
          0.1) * 8.0 / 1048576.0;
    }
  }

  const double nd = static_cast<double>(kNumDatasets);
  std::printf("== Figure 3 reproduction: ratio vs decompression / random "
              "access speed (avg over 16 datasets) ==\n\n");
  std::printf("%-14s %12s %18s %22s\n", "Compressor", "ratio (%)",
              "dec. speed (MB/s)", "rand. access (MB/s)");
  for (size_t c = 0; c < roster.size(); ++c) {
    std::printf("%-14s %12.2f %18.1f %22.3f\n", roster[c].name.c_str(),
                sum_ratio[c] / nd, sum_dspeed[c] / nd, sum_raspeed[c] / nd);
  }
  return 0;
}
