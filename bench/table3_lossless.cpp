// Reproduces Table III: compression ratio (top), decompression speed
// (middle), and random access speed (bottom) of the general-purpose and
// special-purpose lossless compressors on the 16 datasets.
//
// Shapes to expect (paper): NeaTS achieves the best special-purpose ratio on
// most datasets and the best overall on several; its decompression is among
// the fastest; its random access is orders of magnitude faster than the
// block-wise compressors and second only to DAC; the XOR family collapses on
// high-precision datasets (BT/BW).

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

int main() {
  auto roster = LosslessRoster();
  const size_t kCompressors = roster.size();

  std::vector<std::vector<double>> ratio(kNumDatasets),
      dspeed(kNumDatasets), raspeed(kNumDatasets);
  std::vector<std::string> names;
  for (const auto& c : roster) names.push_back(c.name);
  std::vector<size_t> sizes(kNumDatasets);

  for (size_t d = 0; d < kNumDatasets; ++d) {
    const DatasetSpec& spec = kDatasetSpecs[d];
    Dataset ds = LoadDataset(spec);
    sizes[d] = ds.values.size();
    const double mb =
        static_cast<double>(ds.values.size()) * 8.0 / (1024.0 * 1024.0);
    std::mt19937_64 rng(99);
    std::vector<size_t> probes(1 << 14);
    for (auto& p : probes) p = rng() % ds.values.size();

    for (const auto& comp : roster) {
      auto blob = comp.compress(ds);
      ratio[d].push_back(RatioPct(blob->SizeInBits(), ds.values.size()));
      double dec_per_s = OpsPerSecond(
          [&](size_t) { return blob->DecompressAll(); }, 0.15, 64);
      dspeed[d].push_back(dec_per_s * mb);
      double acc_per_s = OpsPerSecond(
          [&](size_t i) { return blob->Access(probes[i & (probes.size() - 1)]); },
          0.15);
      raspeed[d].push_back(acc_per_s * 8.0 / (1024.0 * 1024.0));
    }
  }

  auto print_panel = [&](const char* title,
                         const std::vector<std::vector<double>>& data,
                         const char* fmt) {
    std::printf("\n%s\n%.*s\n", title, 120, kRuler);
    std::printf("%-5s %9s", "Data", "n");
    for (const auto& name : names) std::printf(" %12s", name.c_str());
    std::printf("\n");
    for (size_t d = 0; d < kNumDatasets; ++d) {
      std::printf("%-5s %9zu", kDatasetSpecs[d].code, sizes[d]);
      for (size_t c = 0; c < kCompressors; ++c) {
        std::printf(fmt, data[d][c]);
      }
      std::printf("\n");
    }
    // Column averages (used by Figures 2-3).
    std::printf("%-5s %9s", "AVG", "");
    for (size_t c = 0; c < kCompressors; ++c) {
      double sum = 0;
      for (size_t d = 0; d < kNumDatasets; ++d) sum += data[d][c];
      std::printf(fmt, sum / static_cast<double>(kNumDatasets));
    }
    std::printf("\n");
  };

  std::printf("== Table III reproduction ==\n");
  std::printf("(general purpose: LzHuf-strong ~ Xz/Brotli, LzHuf-fast ~ Zstd, "
              "FastLz ~ Lz4/Snappy; see DESIGN.md)\n");
  print_panel("Compression ratio (%)", ratio, " %12.2f");
  print_panel("Decompression speed (MB/s)", dspeed, " %12.1f");
  print_panel("Random access speed (MB/s)", raspeed, " %12.3f");

  // Headline claims check.
  size_t neats_idx = kCompressors - 1;
  int best_special = 0, best_overall = 0;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    bool special_best = true, overall_best = true;
    for (size_t c = 0; c < kCompressors; ++c) {
      if (c == neats_idx) continue;
      if (ratio[d][c] < ratio[d][neats_idx]) {
        overall_best = false;
        if (!roster[c].general_purpose) special_best = false;
      }
    }
    best_special += special_best;
    best_overall += overall_best;
  }
  std::printf("\nNeaTS best special-purpose ratio on %d/16 datasets "
              "(paper: 14/16); best overall on %d/16 (paper: 4/16)\n",
              best_special, best_overall);
  return 0;
}
