// neats_loadgen — socket-level load driver for neats_server.
//
// Replays the scenario engine's workload shapes over real TCP connections
// and reports RPS + per-opcode p50/p99/p999 (obs::LatencyHistogram, the
// same percentile machinery the scenario runner uses). Phases run on the
// SAME server process back to back, so the headline comparison the wire
// layer exists for is apples to apples: batched access (one kAccessBatch
// carrying B probes) versus one-request-per-probe access, per-probe.
//
//   ./neats_loadgen --port 7777                          # mixed, 2s/phase
//   ./neats_loadgen --port 7777 --workload point_storm --threads 4
//   ./neats_loadgen --port 7777 --pipeline 64            # fill the window
//   ./neats_loadgen --port 7777 --out loadgen_report.json
//
// --out writes the BENCH_neats.json schema-9 "server" block: per-phase
// rps/probes-per-second/percentiles plus the server's own view (shed
// count, coalesced batch-size summary) diffed from the /stats document
// before and after the run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "obs/latency_histogram.hpp"

namespace {

using neats::IndexRange;
using neats::net::Client;
using neats::net::JsonValue;
using neats::net::Opcode;
using neats::net::ParseJson;
using neats::obs::LatencyHistogram;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct PhaseResult {
  std::string name;
  uint64_t requests = 0;
  uint64_t probes = 0;  // values touched (batch/range phases amortize)
  uint64_t errors = 0;
  double seconds = 0;
  LatencyHistogram latency;  // per request, ns

  double rps() const { return seconds > 0 ? requests / seconds : 0; }
  double probes_per_sec() const { return seconds > 0 ? probes / seconds : 0; }
  double ns_per_probe() const {
    return probes > 0 ? seconds * 1e9 / static_cast<double>(probes) : 0;
  }
};

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int threads = 2;
  double seconds_per_phase = 2.0;
  std::string workload = "mixed";
  uint32_t batch = 256;
  uint32_t range_len = 512;
  int pipeline = 1;  // requests in flight per connection (access phase)
  uint64_t seed = 42;
  std::string out;
};

/// One phase: `threads` connections each running `body(client, rng)` in a
/// closed loop until the deadline; returns merged stats.
template <typename Body>
PhaseResult RunPhase(const Config& cfg, const std::string& name,
                     uint64_t probes_per_request, Body body) {
  PhaseResult result;
  result.name = name;
  std::vector<std::thread> threads;
  std::vector<PhaseResult> parts(static_cast<size_t>(cfg.threads));
  const uint64_t t_start = NowNs();
  const uint64_t deadline =
      t_start + static_cast<uint64_t>(cfg.seconds_per_phase * 1e9);
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      PhaseResult& mine = parts[static_cast<size_t>(t)];
      try {
        Client client = Client::Connect(cfg.host, cfg.port);
        std::mt19937_64 rng(cfg.seed + static_cast<uint64_t>(t) * 7919);
        while (NowNs() < deadline) {
          const uint64_t t0 = NowNs();
          const bool ok = body(client, rng);
          mine.latency.Record(NowNs() - t0);
          ++mine.requests;
          mine.probes += probes_per_request;
          if (!ok) ++mine.errors;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen thread %d: %s\n", t, e.what());
        ++mine.errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  result.seconds = static_cast<double>(NowNs() - t_start) / 1e9;
  for (const PhaseResult& p : parts) {
    result.requests += p.requests;
    result.probes += p.probes;
    result.errors += p.errors;
    result.latency.Merge(p.latency);
  }
  return result;
}

/// The access phase honors --pipeline: K raw kAccess requests in flight
/// per connection. K > 1 is what fills the server's coalescing window —
/// a strictly serial client can never present a batchable run.
PhaseResult RunAccessPhase(const Config& cfg, uint64_t store_size) {
  const int k = cfg.pipeline < 1 ? 1 : cfg.pipeline;
  return RunPhase(
      cfg, "access", 1, [&, k](Client& client, std::mt19937_64& rng) {
        bool ok = true;
        std::vector<uint8_t> payload;
        for (int j = 0; j < k; ++j) {
          payload.clear();
          neats::net::PayloadWriter w(&payload);
          w.U64(rng() % store_size);
          client.SendRequest(Opcode::kAccess, payload);
        }
        for (int j = 0; j < k; ++j) {
          Client::Response r = client.ReadResponse();
          ok = ok && r.status == neats::net::WireStatus::kOk;
        }
        return ok;
      });
}

// --- stats-document helpers (reusing the protocol's JSON parser) ----------

double JsonPath(const JsonValue& root, const std::string& a,
                const std::string& b, const std::string& c = "") {
  const JsonValue* v = root.Find(a);
  if (v != nullptr) v = v->Find(b);
  if (v != nullptr && !c.empty()) v = v->Find(c);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number : 0;
}

void AppendPhaseJson(std::string* out, const PhaseResult& r,
                     const std::string& indent) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"requests\": %llu, \"probes\": %llu, \"errors\": %llu,\n"
      "%s \"rps\": %.0f, \"probes_per_sec\": %.0f, \"ns_per_probe\": %.1f,\n"
      "%s \"p50_ns\": %llu, \"p99_ns\": %llu, \"p999_ns\": %llu}",
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.probes),
      static_cast<unsigned long long>(r.errors), indent.c_str(), r.rps(),
      r.probes_per_sec(), r.ns_per_probe(), indent.c_str(),
      static_cast<unsigned long long>(r.latency.p50()),
      static_cast<unsigned long long>(r.latency.p99()),
      static_cast<unsigned long long>(r.latency.p999()));
  *out += buf;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--threads T] [--seconds S]\n"
               "          [--workload mixed|point_storm|dashboard]\n"
               "          [--batch B] [--range-len L] [--pipeline K]\n"
               "          [--seed S] [--out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      cfg.host = next();
    } else if (arg == "--port") {
      cfg.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(next());
    } else if (arg == "--seconds") {
      cfg.seconds_per_phase = std::atof(next());
    } else if (arg == "--workload") {
      cfg.workload = next();
    } else if (arg == "--batch") {
      cfg.batch = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--range-len") {
      cfg.range_len =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--pipeline") {
      cfg.pipeline = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      cfg.out = next();
    } else {
      return Usage(argv[0]);
    }
  }
  if (cfg.port == 0) return Usage(argv[0]);
  if (cfg.threads < 1) cfg.threads = 1;

  try {
    Client control = Client::Connect(cfg.host, cfg.port);
    control.Ping();
    const uint64_t size = control.Size();
    if (size == 0) {
      std::fprintf(stderr, "server holds an empty store\n");
      return 1;
    }
    JsonValue stats_before;
    ParseJson(control.Stats(), &stats_before);

    const bool points = cfg.workload != "dashboard";
    const bool ranges = cfg.workload != "point_storm";
    std::vector<PhaseResult> phases;

    if (points) {
      phases.push_back(RunAccessPhase(cfg, size));
      phases.push_back(RunPhase(
          cfg, "access_batch", cfg.batch,
          [&](Client& client, std::mt19937_64& rng) {
            std::vector<uint64_t> idx(cfg.batch);
            for (uint64_t& v : idx) v = rng() % size;
            client.AccessBatch(idx);
            return true;
          }));
    }
    if (ranges) {
      const uint64_t len = std::min<uint64_t>(cfg.range_len, size);
      phases.push_back(RunPhase(
          cfg, "range", len, [&](Client& client, std::mt19937_64& rng) {
            client.DecompressRange(rng() % (size - len + 1), len);
            return true;
          }));
      phases.push_back(RunPhase(
          cfg, "range_sum", len,
          [&](Client& client, std::mt19937_64& rng) {
            client.RangeSum(rng() % (size - len + 1), len);
            return true;
          }));
    }
    if (cfg.workload == "mixed") {
      phases.push_back(RunPhase(
          cfg, "stats", 1, [&](Client& client, std::mt19937_64&) {
            return !client.Stats().empty();
          }));
    }

    JsonValue stats_after;
    ParseJson(control.Stats(), &stats_after);
    const double shed =
        JsonPath(stats_after, "server", "counters", "req.shed") -
        JsonPath(stats_before, "server", "counters", "req.shed");
    const double coalesced_batches =
        JsonPath(stats_after, "server", "counters", "coalesce.batches") -
        JsonPath(stats_before, "server", "counters", "coalesce.batches");
    const double coalesced_probes =
        JsonPath(stats_after, "server", "counters", "coalesce.probes") -
        JsonPath(stats_before, "server", "counters", "coalesce.probes");
    const JsonValue* batch_hist = stats_after.Find("server");
    if (batch_hist != nullptr) batch_hist = batch_hist->Find("ops");
    if (batch_hist != nullptr) batch_hist = batch_hist->Find("coalesce.batch");

    const PhaseResult* access = nullptr;
    const PhaseResult* batched = nullptr;
    for (const PhaseResult& p : phases) {
      std::printf(
          "%-12s %8.0f req/s %10.0f probes/s %8.1f ns/probe "
          "p50=%llu p99=%llu p999=%llu ns (%llu errors)\n",
          p.name.c_str(), p.rps(), p.probes_per_sec(), p.ns_per_probe(),
          static_cast<unsigned long long>(p.latency.p50()),
          static_cast<unsigned long long>(p.latency.p99()),
          static_cast<unsigned long long>(p.latency.p999()),
          static_cast<unsigned long long>(p.errors));
      if (p.name == "access") access = &p;
      if (p.name == "access_batch") batched = &p;
    }
    if (access != nullptr && batched != nullptr &&
        batched->probes > 0 && access->probes > 0) {
      std::printf("batched access per-probe speedup: %.1fx\n",
                  access->ns_per_probe() / batched->ns_per_probe());
    }
    std::printf("server: shed=%.0f coalesced_batches=%.0f "
                "coalesced_probes=%.0f\n",
                shed, coalesced_batches, coalesced_probes);

    if (!cfg.out.empty()) {
      std::string json = "{\n  \"workload\": \"" + cfg.workload + "\",\n";
      json += "  \"threads\": " + std::to_string(cfg.threads) + ",\n";
      json += "  \"pipeline\": " + std::to_string(cfg.pipeline) + ",\n";
      json += "  \"batch\": " + std::to_string(cfg.batch) + ",\n";
      json += "  \"store_size\": " + std::to_string(size) + ",\n";
      json += "  \"phases\": {\n";
      for (size_t i = 0; i < phases.size(); ++i) {
        json += "    \"" + phases[i].name + "\": ";
        AppendPhaseJson(&json, phases[i], "    ");
        json += i + 1 < phases.size() ? ",\n" : "\n";
      }
      json += "  },\n";
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  \"shed\": %.0f,\n"
                    "  \"coalesced_batches\": %.0f,\n"
                    "  \"coalesced_probes\": %.0f,\n",
                    shed, coalesced_batches, coalesced_probes);
      json += buf;
      auto field = [&](const char* k) {
        if (batch_hist == nullptr) return 0.0;
        const JsonValue* f = batch_hist->Find(k);
        return f != nullptr && f->kind == JsonValue::Kind::kNumber
                   ? f->number
                   : 0.0;
      };
      // The batch-size histogram rides the ns-named fields of the generic
      // op schema; here the unit is probes per coalesced batch.
      std::snprintf(
          buf, sizeof(buf),
          "  \"coalesce_batch_hist\": {\"count\": %.0f, \"p50\": %.0f, "
          "\"p99\": %.0f, \"max\": %.0f}\n",
          field("count"), field("p50_ns"), field("p99_ns"),
          field("max_ns"));
      json += buf;
      json += "}\n";
      std::ofstream f(cfg.out, std::ios::trunc);
      f << json;
      std::fprintf(stderr, "wrote %s\n", cfg.out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "neats_loadgen: %s\n", e.what());
    return 1;
  }
  return 0;
}
