// Reproduces Figure 4: range-query throughput (queries/s) across range sizes
// 10*2^0 ... 10*2^16, for the best compressors in random access or
// decompression speed: ALP, DAC, FastLz (the paper's Lz4 role), and NeaTS,
// averaged over the largest datasets.
//
// Shape to expect (paper): DAC wins for ranges below ~40 points, NeaTS wins
// everywhere above, and both are at least an order of magnitude ahead of
// ALP and the LZ-family for small ranges.

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

int main() {
  // The paper averages over the 11 largest datasets; laptop scale: first 8.
  const size_t kUseDatasets = 8;

  std::vector<Compressor> roster;
  auto full = LosslessRoster();
  for (auto& c : full) {
    if (c.name == "ALP" || c.name == "DAC" || c.name == "FastLz" ||
        c.name == "NeaTS") {
      roster.push_back(std::move(c));
    }
  }

  std::vector<std::vector<std::unique_ptr<AnyCompressed>>> blobs(roster.size());
  std::vector<size_t> ns;
  for (size_t d = 0; d < kUseDatasets; ++d) {
    Dataset ds = LoadDataset(kDatasetSpecs[d]);
    ns.push_back(ds.values.size());
    for (size_t c = 0; c < roster.size(); ++c) {
      blobs[c].push_back(roster[c].compress(ds));
    }
  }

  std::printf("== Figure 4 reproduction: range query throughput (queries/s) "
              "==\n\n");
  std::printf("%-10s", "range");
  for (const auto& c : roster) std::printf(" %14s", c.name.c_str());
  std::printf("\n");

  for (int p = 0; p <= 16; p += 2) {
    size_t range = 10u * (1u << p);
    std::printf("%-10zu", range);
    for (size_t c = 0; c < roster.size(); ++c) {
      double qps_sum = 0;
      size_t counted = 0;
      for (size_t d = 0; d < kUseDatasets; ++d) {
        if (ns[d] <= range) continue;
        std::mt19937_64 rng(13 + p);
        std::vector<size_t> starts(512);
        for (auto& s : starts) s = rng() % (ns[d] - range);
        double qps = OpsPerSecond(
            [&](size_t i) {
              return blobs[c][d]->Range(starts[i & 511], range);
            },
            0.1, 4096);
        qps_sum += qps;
        ++counted;
      }
      std::printf(" %14.0f", counted ? qps_sum / static_cast<double>(counted)
                                     : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
