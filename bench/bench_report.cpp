// Machine-readable performance report: emits BENCH_neats.json with the four
// numbers every perf PR is judged against — compression MB/s (single-thread
// and, when the build supports it, multi-threaded chunked mode), random
// access ns/op, full-scan decompression MB/s, and bits per value — measured
// on a spread of the synthetic dataset generators. Schema 5 adds a nested
// per-codec table per dataset (bits_per_value + random_access_ns for every
// registered SeriesCodec), measured through the same type-erased registry
// API the store serves shards with — the paper's comparison columns from
// one uniform surface. Schema 6 extends each codec entry with the batched
// access column (sorted 512-probe blocks through the sealed AccessBatch
// kernel, asserted bit-identical to the raw values — the Release bench
// smoke run doubles as a correctness gate) and the store-served scalar
// column with its decoded-block cache hit rate. Schema 7 adds the
// "scenarios" section: the scenario engine's built-in suite (seeded
// production-workload shapes against a live NeatsStore, every read
// verified) reporting p50/p99/p999 latency per op kind per scenario.
// Schema 8 adds the observability layer's own numbers: a "store_metrics"
// block (the StatsSnapshot of an instrumented store driven through a fixed
// mixed workload — op counters plus per-op latency percentiles as the store
// itself measured them) and a "metrics_overhead" block from a paired
// metrics-on vs metrics-off store timing the NeaTS scalar access path; the
// run aborts if the median overhead ratio exceeds 1.03, so the Release
// bench smoke doubles as the instrumentation-cost gate.
//
//   $ ./build/bench_bench_report [output.json]
//
// Environment: NEATS_BENCH_N caps dataset sizes (default 120000, 0 = full);
// NEATS_BENCH_SCENARIO_SCALE scales the scenario workloads (default 1,
// 0 skips the section); NEATS_BENCH_SERVER points at a neats_loadgen --out
// report to embed as the schema-9 "server" block (absent → {}).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/neats.hpp"
#include "datasets/generators.hpp"
#include "harness.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/elias_fano.hpp"

// The store layer arrived with schema 4; guarded so this source still
// compiles against earlier builds for paired before/after runs.
#if __has_include("store/neats_store.hpp")
#include "store/neats_store.hpp"
#define NEATS_BENCH_HAS_STORE 1
#else
#define NEATS_BENCH_HAS_STORE 0
#endif

// The codec registry (and the public facade) arrived with schema 5; same
// paired-build guard.
#if __has_include("neats/neats.hpp")
#include "neats/neats.hpp"
#define NEATS_BENCH_HAS_CODECS 1
#else
#define NEATS_BENCH_HAS_CODECS 0
#endif

// The scenario engine arrived with schema 7; same paired-build guard.
#if __has_include("scenario/scenarios.hpp")
#include <sstream>

#include "scenario/scenarios.hpp"
#define NEATS_BENCH_HAS_SCENARIOS 1
#else
#define NEATS_BENCH_HAS_SCENARIOS 0
#endif

// The observability layer arrived with schema 8; same paired-build guard.
#if __has_include("obs/metrics.hpp") && NEATS_BENCH_HAS_STORE
#include "obs/stats_json.hpp"
#define NEATS_BENCH_HAS_OBS 1
#else
#define NEATS_BENCH_HAS_OBS 0
#endif

namespace neats::bench {
namespace {

// Compiled against a build without the scaling knobs (the seed), the report
// simply omits the multi-threaded columns; this keeps the binary usable for
// before/after comparisons across the feature boundary.
template <typename O>
constexpr bool kHasScalingKnobs = requires(O o) {
  o.num_threads;
  o.chunk_size;
};

struct Row {
  std::string code;
  size_t n = 0;
  double bits_per_value = 0;
  double compress_mbps_1t = 0;         // single-thread, global partition
  double compress_mbps_1t_chunked = 0; // chunked mode, 1 thread (0 if absent)
  double compress_mbps_4t_chunked = 0; // chunked mode, 4 threads (0 if absent)
  double scan_mbps = 0;                // full decompression
  double cursor_scan_mbps = 0;         // cursor chunked scan (0 if absent)
  double access_ns = 0;                // random single-value access
  double access_ns_legacy = 0;         // same, via the pre-directory
                                       // S/B/O/K/D path (0 if absent) —
                                       // the paired in-binary baseline
  double access_ns_mmap = 0;           // same, against a zero-copy mmap view
  double range_sum_mbps = 0;           // 1000-value exact range sums
  double select1_ns = 0;               // RankSelect::Select1 microbenchmark
  double ef_rank_ns = 0;               // EliasFano::Rank microbenchmark
  double dir_lines_touched = 0;        // avg distinct cache lines per access
                                       // (directory path; 0 when the
                                       // bench_dir_lines sibling is absent)
  double legacy_lines_touched = 0;     // same, legacy metadata path
  double batch_access_ns_b8 = 0;       // AccessBatch ns/probe, sorted
  double batch_access_ns_b64 = 0;      // batches of 8 / 64 / 512 probes
  double batch_access_ns_b512 = 0;     // (0 if the build lacks the kernel)
  double store_append_mbps = 0;        // NeatsStore streaming append +
                                       // Flush, end to end (0 if absent)

  /// One entry per registered SeriesCodec (schema 5): serialized bits per
  /// value and scalar random-access ns through the type-erased registry.
  /// Schema 6 adds the sorted-512-probe batch kernel, the store-served
  /// scalar path (decoded-block cache in front of block codecs) and that
  /// cache's hit rate over the measured probes (0 for non-block codecs).
  struct CodecRow {
    std::string name;
    double bits_per_value = 0;
    double random_access_ns = 0;
    double batch_access_ns_b512 = 0;  // 0 if the build lacks the kernel
    double store_access_ns = 0;       // 0 if the build lacks the store
    double cache_hit_rate = 0;
  };
  std::vector<CodecRow> codecs;
};

double RawMegabytes(size_t n) {
  return static_cast<double>(n) * 8.0 / (1024.0 * 1024.0);
}

/// Times `op` (which processes the full series once) until ~min_seconds
/// elapse and returns MB/s over the raw 64-bit series size.
template <typename Op>
double ThroughputMBps(size_t n, Op&& op, double min_seconds = 0.3) {
  op();  // warm-up
  Timer timer;
  size_t reps = 0;
  do {
    op();
    ++reps;
  } while (timer.ElapsedSeconds() < min_seconds);
  return RawMegabytes(n) * static_cast<double>(reps) / timer.ElapsedSeconds();
}

// Template so that the knob accesses are dependent names: against a seed
// build without them the branch is discarded instead of failing to compile.
template <typename Options>
void MeasureChunked(const Dataset& ds, double mb, Row* row) {
  if constexpr (kHasScalingKnobs<Options>) {
    Options chunked;
    // Scale the block size to the series so chunked mode is genuinely
    // exercised on small datasets; if even that would fall back to the
    // global partition (chunk_size >= n), leave the columns at 0 rather
    // than mislabel global-partition throughput as chunked.
    chunked.chunk_size = std::min<uint64_t>(
        16384, std::max<uint64_t>(256, ds.values.size() / 4));
    if (chunked.chunk_size >= ds.values.size()) return;
    chunked.num_threads = 1;
    Timer timer;
    Neats c1 = Neats::Compress(ds.values, chunked);
    row->compress_mbps_1t_chunked = mb / timer.ElapsedSeconds();
    chunked.num_threads = 4;
    timer.Reset();
    Neats c4 = Neats::Compress(ds.values, chunked);
    row->compress_mbps_4t_chunked = mb / timer.ElapsedSeconds();
  } else {
    (void)ds;
    (void)mb;
    (void)row;
  }
}

/// ns/op of `op` over the 4096-probe index list `idx`.
template <typename Op>
double AccessNs(const std::vector<uint64_t>& idx, Op&& op) {
  uint64_t sink = 0;
  double ops = OpsPerSecond([&](size_t rep) {
    uint64_t s = 0;
    for (uint64_t i : idx) s += op(i);
    sink += s + rep;
    return s;
  });
  if (sink == 0xDEADBEEFCAFEBABEULL) std::fprintf(stderr, "!");
  return 1e9 / (ops * static_cast<double>(idx.size()));
}

// Template guard: against builds without the v2 format there is no View and
// the mmap column stays 0.
template <typename N>
void MeasureMmapAccess(const N& compressed, const std::vector<uint64_t>& idx,
                       Row* row) {
  if constexpr (requires(std::span<const uint8_t> b) { N::View(b); }) {
    std::vector<uint8_t> blob;
    compressed.Serialize(&blob);
    // Timestamp-suffixed so concurrent bench runs cannot clobber each
    // other's mapped file.
    std::string tag = std::to_string(static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    std::string path = (std::filesystem::temp_directory_path() /
                        ("neats_bench_" + row->code + "_" + tag + ".v2"))
                           .string();
    WriteFile(path, blob);
    MmapFile map = MmapFile::Open(path);
    N view = N::View(map.bytes());
    row->access_ns_mmap = AccessNs(
        idx, [&](uint64_t i) { return static_cast<uint64_t>(view.Access(i)); });
    std::filesystem::remove(path);
  } else {
    (void)compressed;
    (void)idx;
    (void)row;
  }
}

/// Succinct-substrate microbenchmarks tied to the access path: Select1 on a
/// half-density bitvector of n bits, and Elias-Fano rank over an n/32-element
/// monotone sequence (the shape of the S fragment-starts array).
void MeasureSelectMicro(size_t n, uint64_t seed, Row* row) {
  std::mt19937_64 rng(seed);
  BitVector bv(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng() & 1) bv.Set(i);
  }
  RankSelect rs{std::move(bv)};
  std::vector<uint64_t> probes(1 << 12);
  for (auto& p : probes) p = rng() % rs.ones();
  row->select1_ns =
      AccessNs(probes, [&](uint64_t k) { return static_cast<uint64_t>(rs.Select1(k)); });

  std::vector<uint64_t> values(std::max<size_t>(1, n / 32));
  uint64_t cur = 0;
  for (auto& v : values) {
    cur += rng() % 64;
    v = cur;
  }
  EliasFano ef(values);
  for (auto& p : probes) p = rng() % (values.back() + 1);
  row->ef_rank_ns =
      AccessNs(probes, [&](uint64_t x) { return static_cast<uint64_t>(ef.Rank(x)); });
}

// The batch-access columns: the same 4096 probes as the scalar access
// column, pre-sorted within consecutive blocks of B, served through the
// fragment-grouped AccessBatch kernel — ns per probe, directly comparable
// to access_ns. Guarded so pre-batch builds keep the columns at 0.
template <typename N>
void MeasureBatchAccess(const N& compressed, const std::vector<uint64_t>& idx,
                        Row* row) {
  if constexpr (requires(const N& n) {
                  n.AccessBatch(std::span<const uint64_t>{},
                                static_cast<int64_t*>(nullptr));
                }) {
    const std::pair<size_t, double Row::*> sizes[] = {
        {8, &Row::batch_access_ns_b8},
        {64, &Row::batch_access_ns_b64},
        {512, &Row::batch_access_ns_b512}};
    for (auto [batch, column] : sizes) {
      std::vector<uint64_t> sorted = idx;
      for (size_t at = 0; at < sorted.size(); at += batch) {
        std::sort(sorted.begin() + static_cast<ptrdiff_t>(at),
                  sorted.begin() + static_cast<ptrdiff_t>(
                                       std::min(at + batch, sorted.size())));
      }
      std::vector<int64_t> out(batch);
      uint64_t sink = 0;
      double ops = OpsPerSecond([&](size_t rep) {
        uint64_t s = 0;
        for (size_t at = 0; at < sorted.size(); at += batch) {
          const size_t n = std::min(batch, sorted.size() - at);
          compressed.AccessBatch({sorted.data() + at, n}, out.data());
          s += static_cast<uint64_t>(out[0]) + static_cast<uint64_t>(out[n - 1]);
        }
        sink += s + rep;
        return s;
      });
      if (sink == 0xDEADBEEFCAFEBABEULL) std::fprintf(stderr, "!");
      row->*column = 1e9 / (ops * static_cast<double>(sorted.size()));
    }
  } else {
    (void)compressed;
    (void)idx;
    (void)row;
  }
}

// Paired-build guard: compiled against a store without the decoded-block
// cache, the store columns stay 0.
template <typename O>
constexpr bool kHasBlockCache = requires(O o) { o.block_cache_bytes; };

// The per-codec comparison columns (schema 5/6): every registered codec
// compresses the dataset and serves the same probe set through the
// registry's SealedSeries surface — the uniform API the store queries by.
// bits_per_value is the actual serialized blob size. Schema 6 adds the
// sorted-512-probe batch kernel (with a hard bit-identity check against
// the raw values — the Release bench smoke run is the correctness gate)
// and the store-served scalar path with its decoded-block cache hit rate.
void MeasureCodecTable(const Dataset& ds, const std::vector<uint64_t>& idx,
                       Row* row) {
#if NEATS_BENCH_HAS_CODECS
  for (CodecId id : CodecRegistry::All()) {
    std::unique_ptr<SealedSeries> sealed =
        CodecRegistry::Compress(id, ds.values, {});
    std::vector<uint8_t> blob;
    sealed->Serialize(&blob);
    Row::CodecRow cr;
    cr.name = CodecName(id);
    cr.bits_per_value = 8.0 * static_cast<double>(blob.size()) /
                        static_cast<double>(ds.values.size());
    cr.random_access_ns = AccessNs(idx, [&](uint64_t i) {
      return static_cast<uint64_t>(sealed->Access(i));
    });

    // Batched access through the block-grouped kernels, same probes in
    // sorted blocks of 512 — directly comparable to random_access_ns.
    constexpr size_t kBatch = 512;
    std::vector<uint64_t> sorted = idx;
    for (size_t at = 0; at < sorted.size(); at += kBatch) {
      std::sort(sorted.begin() + static_cast<ptrdiff_t>(at),
                sorted.begin() + static_cast<ptrdiff_t>(
                                     std::min(at + kBatch, sorted.size())));
    }
    std::vector<int64_t> out(kBatch);
    for (size_t at = 0; at < sorted.size(); at += kBatch) {
      const size_t n = std::min(kBatch, sorted.size() - at);
      sealed->AccessBatch({sorted.data() + at, n}, out.data());
      for (size_t j = 0; j < n; ++j) {
        if (out[j] != ds.values[sorted[at + j]]) {
          std::fprintf(stderr,
                       "FATAL: %s batched access diverges from the values "
                       "at probe %" PRIu64 "\n",
                       cr.name.c_str(), sorted[at + j]);
          std::abort();
        }
      }
    }
    uint64_t sink = 0;
    double ops = OpsPerSecond([&](size_t rep) {
      uint64_t s = 0;
      for (size_t at = 0; at < sorted.size(); at += kBatch) {
        const size_t n = std::min(kBatch, sorted.size() - at);
        sealed->AccessBatch({sorted.data() + at, n}, out.data());
        s += static_cast<uint64_t>(out[0]) + static_cast<uint64_t>(out[n - 1]);
      }
      sink += s + rep;
      return s;
    });
    if (sink == 0xDEADBEEFCAFEBABEULL) std::fprintf(stderr, "!");
    cr.batch_access_ns_b512 =
        1e9 / (ops * static_cast<double>(sorted.size()));

    // The store-served scalar path: a fixed-codec store over the dataset,
    // probes warmed once (and checked), then timed — block codecs answer
    // from the decoded-block cache, so this is the cache-hit latency.
#if NEATS_BENCH_HAS_STORE
    if constexpr (kHasBlockCache<NeatsStoreOptions>) {
      NeatsStoreOptions so;
      so.shard_size = std::max<uint64_t>(4096, ds.values.size() / 8);
      so.codec = id;
      NeatsStore store(so);
      store.Append(ds.values);
      store.Flush();
      for (uint64_t i : idx) {
        if (store.Access(i) != ds.values[i]) std::abort();
      }
      cr.store_access_ns = AccessNs(idx, [&](uint64_t i) {
        return static_cast<uint64_t>(store.Access(i));
      });
      const DecodedBlockCache::Stats stats = store.block_cache_stats();
      const uint64_t lookups = stats.hits + stats.misses;
      cr.cache_hit_rate =
          lookups > 0
              ? static_cast<double>(stats.hits) / static_cast<double>(lookups)
              : 0.0;
    }
#endif
    row->codecs.push_back(std::move(cr));
  }
#else
  (void)ds;
  (void)idx;
  (void)row;
#endif
}

// Streaming ingest end to end: append the series in 4096-value slices into
// an in-memory NeatsStore (background sealing on one extra worker) and
// Flush; MB/s over the raw series size. One pass — sealing is
// compression-bound, so repetitions would only average compressor noise.
void MeasureStoreAppend(const Dataset& ds, double mb, Row* row) {
#if NEATS_BENCH_HAS_STORE
  NeatsStoreOptions options;
  options.shard_size = std::max<uint64_t>(4096, ds.values.size() / 8);
  options.seal_threads = 2;
  Timer timer;
  NeatsStore store(options);
  for (size_t at = 0; at < ds.values.size(); at += 4096) {
    const size_t n = std::min<size_t>(4096, ds.values.size() - at);
    store.Append(std::span<const int64_t>(ds.values.data() + at, n));
  }
  store.Flush();
  row->store_append_mbps = mb / timer.ElapsedSeconds();
  if (store.size() != ds.values.size()) std::abort();
#else
  (void)ds;
  (void)mb;
  (void)row;
#endif
}

// Template for the same reason as MeasureChunked: seed builds lack Cursor.
template <typename N>
void MeasureCursorScan(const N& compressed, Row* row) {
  if constexpr (requires { typename N::Cursor; }) {
    row->cursor_scan_mbps = ThroughputMBps(row->n, [&] {
      if (CursorScanChecksum(compressed) == 0xDEADBEEFCAFEBABEULL) {
        std::abort();
      }
    });
  } else {
    (void)compressed;
    (void)row;
  }
}

Row MeasureDataset(const DatasetSpec& spec) {
  Dataset ds = LoadDataset(spec);
  Row row;
  row.code = spec.code;
  row.n = ds.values.size();
  const double mb = RawMegabytes(row.n);

  // --- Compression, single-thread global partition (the seed path). ---
  Timer timer;
  Neats compressed = Neats::Compress(ds.values);
  row.compress_mbps_1t = mb / timer.ElapsedSeconds();
  row.bits_per_value =
      static_cast<double>(compressed.SizeInBits()) / static_cast<double>(row.n);

  // --- Compression, chunked mode (only when the build has the knobs). ---
  MeasureChunked<NeatsOptions>(ds, mb, &row);

  // --- Full-scan decompression. ---
  std::vector<int64_t> out;
  row.scan_mbps = ThroughputMBps(row.n, [&] {
    compressed.Decompress(&out);
    if (out[0] != ds.values[0]) std::abort();
  });

  // --- Cursor scan: sequential decode without materializing the output. ---
  MeasureCursorScan<Neats>(compressed, &row);

  // --- Random access: owned representation, then the zero-copy mmap view.
  // The legacy column re-times the same probes through the pre-directory
  // metadata path from the same binary — a drift-free paired comparison
  // (guarded so the source still compiles against pre-v3 builds). ---
  std::mt19937_64 rng(42);
  std::vector<uint64_t> idx(1 << 12);
  for (auto& i : idx) i = rng() % row.n;
  row.access_ns = AccessNs(
      idx, [&](uint64_t i) { return static_cast<uint64_t>(compressed.Access(i)); });
  if constexpr (requires { compressed.AccessViaLegacyStructures(uint64_t{0}); }) {
    row.access_ns_legacy = AccessNs(idx, [&](uint64_t i) {
      return static_cast<uint64_t>(compressed.AccessViaLegacyStructures(i));
    });
  }
  MeasureMmapAccess<Neats>(compressed, idx, &row);

  // --- Batched access (sorted blocks of 8/64/512 probes) and streaming
  // store ingest (schema 4). ---
  MeasureBatchAccess<Neats>(compressed, idx, &row);
  MeasureStoreAppend(ds, mb, &row);

  // --- The per-codec comparison table (schema 5). ---
  MeasureCodecTable(ds, idx, &row);

  // --- Succinct substrate microbenchmarks (select + Elias-Fano rank). ---
  MeasureSelectMicro(row.n, 42, &row);

  // --- Exact range sums over 1000-value windows. ---
  const uint64_t window = std::min<uint64_t>(1000, row.n);
  row.range_sum_mbps = ThroughputMBps(row.n, [&] {
    int64_t s = 0;
    for (uint64_t from = 0; from + window <= row.n; from += window) {
      s += compressed.RangeSum(from, window);
    }
    if (s == int64_t{0x0DDBA11}) std::abort();
  });
  return row;
}

/// Fills the cache-line columns by shelling out to the instrumented sibling
/// binary (bench_dir_lines --tsv) — the one build that carries the
/// NEATS_TOUCH probes, keeping this binary's timing loops instrumentation-
/// free. The columns stay 0 when the sibling is missing (e.g. when this
/// source is compiled against a pre-directory build for a paired run).
void FillCacheLineColumns(const char* argv0, std::vector<Row>* rows) {
  std::filesystem::path dir = std::filesystem::path(argv0).parent_path();
  if (dir.empty()) dir = ".";
  std::string cmd = "\"" + (dir / "bench_dir_lines").string() + "\" --tsv";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return;
  char code[16];
  double dir_lines, legacy_lines;
  while (std::fscanf(pipe, "%15s %lf %lf", code, &dir_lines, &legacy_lines) == 3) {
    for (Row& r : *rows) {
      if (r.code == code) {
        r.dir_lines_touched = dir_lines;
        r.legacy_lines_touched = legacy_lines;
      }
    }
  }
  pclose(pipe);
}

/// Runs the scenario engine's built-in suite (seeded, self-verifying — a
/// failure aborts the report with a scenario=X seed=Y repro line) and
/// returns the pre-rendered elements of the schema-7 "scenarios" array.
/// NEATS_BENCH_SCENARIO_SCALE scales the workloads; 0 skips the section.
std::string MeasureScenarios() {
#if NEATS_BENCH_HAS_SCENARIOS
  uint64_t scale = 1;
  if (const char* env = std::getenv("NEATS_BENCH_SCENARIO_SCALE")) {
    scale = std::strtoull(env, nullptr, 10);
  }
  if (scale == 0) return "";
  scenario::ScenarioOptions options;
  options.scale = scale;
  std::ostringstream os;
  bool first = true;
  for (const scenario::Scenario& s : scenario::BuiltinScenarios().All()) {
    std::printf("scenario %s ...\n", s.name.c_str());
    std::fflush(stdout);
    const scenario::ScenarioResult r = scenario::RunScenario(s, options);
    if (!first) os << ",\n";
    first = false;
    scenario::WriteScenarioJson(os, r, "    ");
  }
  return os.str();
#else
  return "";
#endif
}

// ---------------------------------------------------------------------------
// Schema 8: the observability layer's own numbers.

/// One paired metrics-on / metrics-off timing of the NeaTS scalar access
/// path (the hottest instrumented operation, and the one the 3% overhead
/// budget was engineered against).
struct OverheadRow {
  std::string code;
  double on_ns = 0;
  double off_ns = 0;
  double ratio = 0;
};

struct ObsSection {
  std::string store_metrics_json;   // pre-rendered value, "" when absent
  std::vector<OverheadRow> overhead;
  double median_ratio = 0;
};

#if NEATS_BENCH_HAS_OBS
/// Drives an instrumented store (every access sampled — this run measures
/// the store, not the sampling discount) through a fixed mixed workload and
/// returns its StatsSnapshot pre-rendered as the "store_metrics" JSON
/// value. Aborts if the snapshot is missing the op counters or the
/// access / access_batch percentiles the schema promises — the Release
/// bench smoke run is the gate that the instrumentation is actually live.
std::string MeasureStoreMetrics() {
  const DatasetSpec* spec = nullptr;
  for (const DatasetSpec& s : kDatasetSpecs) {
    if (std::string("CT") == s.code) spec = &s;  // CT: smooth sensor trend
  }
  Dataset ds = LoadDataset(*spec);
  NeatsStoreOptions options;
  options.shard_size = std::max<uint64_t>(4096, ds.values.size() / 8);
  options.latency_sample_every = 1;
  NeatsStore store(options);
  for (size_t at = 0; at < ds.values.size(); at += 4096) {
    const size_t n = std::min<size_t>(4096, ds.values.size() - at);
    store.Append(std::span<const int64_t>(ds.values.data() + at, n));
  }
  store.Flush();

  std::mt19937_64 rng(7);
  const uint64_t n = store.size();
  for (int pass = 0; pass < 16; ++pass) {
    for (int p = 0; p < 4096; ++p) {
      const uint64_t i = rng() % n;
      if (store.Access(i) != ds.values[i]) std::abort();
    }
  }
  std::vector<uint64_t> batch(512);
  std::vector<int64_t> out(512);
  for (int b = 0; b < 64; ++b) {
    for (auto& i : batch) i = rng() % n;
    std::sort(batch.begin(), batch.end());
    store.AccessBatch(batch, out);
  }
  const uint64_t window = std::min<uint64_t>(1024, n);
  std::vector<int64_t> range(window);
  for (int r = 0; r < 16; ++r) {
    const uint64_t from = rng() % (n - window + 1);
    store.DecompressRange(from, window, range.data());
    (void)store.RangeSum(from, window);
  }

  const obs::MetricsSnapshot snap = store.StatsSnapshot();
  const uint64_t* access = snap.counter("access.ops");
  const uint64_t* probes = snap.counter("access_batch.probes");
  const obs::LatencyHistogram* h_access = snap.histogram("access");
  const obs::LatencyHistogram* h_batch = snap.histogram("access_batch");
  if (access == nullptr || *access != 16 * 4096 || probes == nullptr ||
      *probes != 64 * 512 || h_access == nullptr || h_access->count() == 0 ||
      h_batch == nullptr || h_batch->count() == 0) {
    std::fprintf(stderr, "FATAL: store metrics snapshot is missing the "
                         "promised op counters or latency percentiles\n");
    std::abort();
  }
  std::printf(
      "store metrics: access n=%llu p50=%llu ns p99=%llu ns | "
      "access_batch n=%llu p50=%llu ns p99=%llu ns\n",
      static_cast<unsigned long long>(h_access->count()),
      static_cast<unsigned long long>(h_access->p50()),
      static_cast<unsigned long long>(h_access->p99()),
      static_cast<unsigned long long>(h_batch->count()),
      static_cast<unsigned long long>(h_batch->p50()),
      static_cast<unsigned long long>(h_batch->p99()));
  return obs::MetricsJson(snap, "  ");
}

/// The instrumentation-cost gate: per dataset, two stores identical except
/// for `metrics`, the same 4096 probes timed through the NeaTS scalar
/// access path in alternating rounds (min of 3 per store — alternation
/// cancels thermal / frequency drift, min discards scheduler noise). The
/// budget is on the *production* configuration, so the metrics-on store
/// keeps the default access sampling rate. Exceeding a 3% median ratio
/// across datasets aborts the report.
std::vector<OverheadRow> MeasureMetricsOverhead() {
  std::vector<OverheadRow> rows;
  for (const DatasetSpec& spec : kDatasetSpecs) {
    std::string code = spec.code;
    if (code != "CT" && code != "DP" && code != "UK" && code != "ECG") continue;
    Dataset ds = LoadDataset(spec);
    NeatsStoreOptions options;
    options.shard_size = std::max<uint64_t>(4096, ds.values.size() / 8);
    auto build = [&](bool metrics) {
      NeatsStoreOptions o = options;
      o.metrics = metrics;
      NeatsStore store(o);
      store.Append(ds.values);
      store.Flush();
      return store;
    };
    NeatsStore on = build(true);
    NeatsStore off = build(false);

    std::mt19937_64 rng(42);
    std::vector<uint64_t> idx(1 << 12);
    for (auto& i : idx) i = rng() % ds.values.size();
    for (uint64_t i : idx) {  // warm both + verify they agree with the data
      if (on.Access(i) != ds.values[i]) std::abort();
      if (off.Access(i) != ds.values[i]) std::abort();
    }

    OverheadRow row;
    row.code = code;
    row.on_ns = row.off_ns = 1e300;
    for (int round = 0; round < 3; ++round) {
      row.on_ns = std::min(row.on_ns, AccessNs(idx, [&](uint64_t i) {
        return static_cast<uint64_t>(on.Access(i));
      }));
      row.off_ns = std::min(row.off_ns, AccessNs(idx, [&](uint64_t i) {
        return static_cast<uint64_t>(off.Access(i));
      }));
    }
    row.ratio = row.on_ns / row.off_ns;
    std::printf("metrics overhead %s: on %.1f ns, off %.1f ns, ratio %.4f\n",
                row.code.c_str(), row.on_ns, row.off_ns, row.ratio);
    rows.push_back(std::move(row));
  }
  return rows;
}
#endif  // NEATS_BENCH_HAS_OBS

/// Fills the schema-8 observability section and enforces the 3% gate.
ObsSection MeasureObservability() {
  ObsSection section;
#if NEATS_BENCH_HAS_OBS
  std::printf("measuring store metrics ...\n");
  std::fflush(stdout);
  section.store_metrics_json = MeasureStoreMetrics();
  section.overhead = MeasureMetricsOverhead();
  std::vector<double> ratios;
  for (const OverheadRow& r : section.overhead) ratios.push_back(r.ratio);
  std::sort(ratios.begin(), ratios.end());
  section.median_ratio = ratios.empty() ? 0 : ratios[ratios.size() / 2];
  constexpr double kGate = 1.03;
  if (section.median_ratio > kGate) {
    std::fprintf(stderr,
                 "FATAL: metrics-on scalar access is %.2f%% slower than "
                 "metrics-off (budget 3%%) — the instrumentation regressed "
                 "the hot path\n",
                 (section.median_ratio - 1.0) * 100.0);
    std::exit(1);
  }
  std::printf("metrics overhead median ratio %.4f (gate %.2f)\n",
              section.median_ratio, kGate);
#endif
  return section;
}

/// The schema-9 "server" block: the loadgen's --out JSON (RPS and latency
/// percentiles per opcode against a running neats_server, plus coalesce /
/// shed counters), embedded verbatim. The loadgen runs out of process —
/// point NEATS_BENCH_SERVER at its report to fold it in; absent, the block
/// is {} so the schema stays stable whether or not a server run happened.
std::string LoadServerBlock() {
  const char* path = std::getenv("NEATS_BENCH_SERVER");
  if (path == nullptr || *path == '\0') return "{}";
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "NEATS_BENCH_SERVER: cannot open %s\n", path);
    return "{}";
  }
  std::string doc;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
    doc.pop_back();
  }
  if (doc.empty() || doc.front() != '{' || doc.back() != '}') {
    std::fprintf(stderr, "NEATS_BENCH_SERVER: %s is not a JSON object\n",
                 path);
    return "{}";
  }
  return doc;
}

void WriteJson(const std::vector<Row>& rows, const std::string& scenarios,
               const ObsSection& obs_section, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"neats\",\n  \"schema\": 9,\n");
  std::fprintf(f, "  \"server\": %s,\n", LoadServerBlock().c_str());
  if (scenarios.empty()) {
    std::fprintf(f, "  \"scenarios\": [],\n");
  } else {
    std::fprintf(f, "  \"scenarios\": [\n%s\n  ],\n", scenarios.c_str());
  }
  if (obs_section.store_metrics_json.empty()) {
    std::fprintf(f, "  \"store_metrics\": {},\n  \"metrics_overhead\": {},\n");
  } else {
    std::fprintf(f, "  \"store_metrics\":\n%s,\n",
                 obs_section.store_metrics_json.c_str());
    std::fprintf(f, "  \"metrics_overhead\": {\"gate\": 1.03, "
                    "\"median_ratio\": %.4f, \"datasets\": [",
                 obs_section.median_ratio);
    for (size_t i = 0; i < obs_section.overhead.size(); ++i) {
      const OverheadRow& r = obs_section.overhead[i];
      std::fprintf(f,
                   "{\"dataset\": \"%s\", \"metrics_on_ns\": %.1f, "
                   "\"metrics_off_ns\": %.1f, \"ratio\": %.4f}%s",
                   r.code.c_str(), r.on_ns, r.off_ns, r.ratio,
                   i + 1 < obs_section.overhead.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
  }
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"has_scaling_knobs\": %s,\n",
               kHasScalingKnobs<NeatsOptions> ? "true" : "false");
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"n\": %zu, "
                 "\"bits_per_value\": %.3f, "
                 "\"compress_mbps_1t\": %.3f, "
                 "\"compress_mbps_1t_chunked\": %.3f, "
                 "\"compress_mbps_4t_chunked\": %.3f, "
                 "\"scan_mbps\": %.1f, "
                 "\"cursor_scan_mbps\": %.1f, "
                 "\"access_ns\": %.1f, "
                 "\"access_ns_legacy\": %.1f, "
                 "\"random_access_ns_mmap\": %.1f, "
                 "\"range_sum_mbps\": %.1f, "
                 "\"select1_ns\": %.1f, "
                 "\"ef_rank_ns\": %.1f, "
                 "\"dir_lines_touched\": %.2f, "
                 "\"legacy_lines_touched\": %.2f, "
                 "\"batch_access_ns_b8\": %.1f, "
                 "\"batch_access_ns_b64\": %.1f, "
                 "\"batch_access_ns_b512\": %.1f, "
                 "\"store_append_mbps\": %.3f, "
                 "\"codecs\": [",
                 r.code.c_str(), r.n, r.bits_per_value, r.compress_mbps_1t,
                 r.compress_mbps_1t_chunked, r.compress_mbps_4t_chunked,
                 r.scan_mbps, r.cursor_scan_mbps, r.access_ns,
                 r.access_ns_legacy, r.access_ns_mmap, r.range_sum_mbps,
                 r.select1_ns, r.ef_rank_ns, r.dir_lines_touched,
                 r.legacy_lines_touched, r.batch_access_ns_b8,
                 r.batch_access_ns_b64, r.batch_access_ns_b512,
                 r.store_append_mbps);
    for (size_t c = 0; c < r.codecs.size(); ++c) {
      std::fprintf(f,
                   "{\"codec\": \"%s\", \"bits_per_value\": %.3f, "
                   "\"random_access_ns\": %.1f, "
                   "\"batch_access_ns_b512\": %.1f, "
                   "\"store_access_ns\": %.1f, "
                   "\"cache_hit_rate\": %.4f}%s",
                   r.codecs[c].name.c_str(), r.codecs[c].bits_per_value,
                   r.codecs[c].random_access_ns,
                   r.codecs[c].batch_access_ns_b512,
                   r.codecs[c].store_access_ns, r.codecs[c].cache_hit_rate,
                   c + 1 < r.codecs.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace neats::bench

int main(int argc, char** argv) {
  using namespace neats;
  using namespace neats::bench;
  const char* out_path = argc > 1 ? argv[1] : "BENCH_neats.json";

  // A spread of generator shapes: smooth sensor trends (CT), high-precision
  // noise (DP), stock ticks (UK), and a long quasi-periodic signal (ECG).
  std::vector<Row> rows;
  for (const DatasetSpec& spec : kDatasetSpecs) {
    std::string code = spec.code;
    if (code != "CT" && code != "DP" && code != "UK" && code != "ECG") continue;
    std::printf("measuring %s ...\n", spec.code);
    std::fflush(stdout);
    rows.push_back(MeasureDataset(spec));
    const Row& r = rows.back();
    std::printf(
        "  n=%zu  %.2f bits/value  compress %.2f MB/s (1t)"
        "  chunked %.2f/%.2f MB/s (1t/4t)  scan %.0f MB/s"
        "  cursor-scan %.0f MB/s  access %.0f ns (legacy %.0f ns, mmap %.0f ns)"
        "  batch-access %.0f/%.0f/%.0f ns (b8/b64/b512)"
        "  range-sum %.0f MB/s  store-append %.2f MB/s"
        "  select1 %.1f ns  ef-rank %.1f ns\n",
        r.n, r.bits_per_value, r.compress_mbps_1t, r.compress_mbps_1t_chunked,
        r.compress_mbps_4t_chunked, r.scan_mbps, r.cursor_scan_mbps,
        r.access_ns, r.access_ns_legacy, r.access_ns_mmap,
        r.batch_access_ns_b8, r.batch_access_ns_b64, r.batch_access_ns_b512,
        r.range_sum_mbps, r.store_append_mbps, r.select1_ns, r.ef_rank_ns);
    for (const Row::CodecRow& c : r.codecs) {
      std::printf(
          "    codec %-18s %7.2f bits/value  access %.0f ns"
          "  batch-b512 %.0f ns  store %.0f ns (hit rate %.2f)\n",
          c.name.c_str(), c.bits_per_value, c.random_access_ns,
          c.batch_access_ns_b512, c.store_access_ns, c.cache_hit_rate);
    }
  }
  FillCacheLineColumns(argv[0], &rows);
  for (const Row& r : rows) {
    if (r.dir_lines_touched > 0) {
      std::printf("%s: %.2f cache lines/access (legacy %.2f)\n", r.code.c_str(),
                  r.dir_lines_touched, r.legacy_lines_touched);
    }
  }
  const std::string scenarios = MeasureScenarios();
  const ObsSection obs_section = MeasureObservability();
  WriteJson(rows, scenarios, obs_section, out_path);
  std::printf("wrote %s\n", out_path);
  return 0;
}
