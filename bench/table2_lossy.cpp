// Reproduces Table II: compression ratios of the lossy approaches (AA, PLA,
// NeaTS-L) on the 16 datasets, using the paper's per-dataset error bound
// (expressed as a % of the value range), plus the Sec. IV-B summary metrics:
// MAPE and compression/decompression speeds.
//
// Shape to expect (paper): NeaTS-L beats PLA (avg +7%) and AA (avg +11.8%)
// in ratio on every dataset; AA is usually worse than PLA; PLA compresses
// fastest, NeaTS-L slowest; MAPE: AA < NeaTS-L < PLA.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/aa.hpp"
#include "baselines/pla.hpp"
#include "core/neats_lossy.hpp"
#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

namespace {

// The paper chooses each dataset's error bound as "the smallest ε such that
// NeaTS-L achieves better compression than the lossless NeaTS" (Sec. IV-B).
// We apply the same methodology to the synthetic stand-ins: double ε from
// one raw unit upwards until NeaTS-L undercuts the lossless ratio.
int64_t SelectEps(const std::vector<int64_t>& values) {
  Neats lossless = Neats::Compress(values);
  size_t lossless_bits = lossless.SizeInBits();
  int64_t eps = 1;
  for (int step = 0; step < 40; ++step) {
    NeatsLossy lossy = NeatsLossy::Compress(values, eps);
    if (lossy.SizeInBits() < lossless_bits) return eps;
    eps *= 2;
  }
  return eps;
}

double Mape(const std::vector<int64_t>& truth,
            const std::vector<int64_t>& approx) {
  double total = 0;
  size_t counted = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0) continue;
    total += std::abs(static_cast<double>(approx[i] - truth[i])) /
             std::abs(static_cast<double>(truth[i]));
    ++counted;
  }
  return counted == 0 ? 0 : 100.0 * total / static_cast<double>(counted);
}

}  // namespace

int main() {
  std::printf("== Table II reproduction (lossy: AA vs PLA vs NeaTS-L) ==\n");
  std::printf("(eps per dataset: smallest eps where NeaTS-L beats lossless "
              "NeaTS, as in Sec. IV-B)\n\n");
  std::printf("%-5s %12s %9s %9s %9s %11s %11s\n", "Data", "eps(%range)",
              "AA%", "PLA%", "NeaTS-L%", "impr.AA%", "impr.PLA%");

  double sum_impr_aa = 0, sum_impr_pla = 0;
  double mape_aa = 0, mape_pla = 0, mape_nl = 0;
  double mb_total = 0, t_aa = 0, t_pla = 0, t_nl = 0;
  double td_aa = 0, td_pla = 0, td_nl = 0;

  for (size_t d = 0; d < kNumDatasets; ++d) {
    const DatasetSpec& spec = kDatasetSpecs[d];
    Dataset ds = LoadDataset(spec);
    auto [lo, hi] = std::minmax_element(ds.values.begin(), ds.values.end());
    double range = static_cast<double>(*hi - *lo);
    int64_t eps = SelectEps(ds.values);
    double eps_pct = 100.0 * static_cast<double>(eps) / range;
    const double n64 = 64.0 * static_cast<double>(ds.values.size());
    const double mb = static_cast<double>(ds.values.size()) * 8.0 / 1048576.0;
    mb_total += mb;

    Timer t;
    auto aa = AdaptiveApproximation::Compress(ds.values, eps);
    t_aa += t.ElapsedSeconds();
    t.Reset();
    auto pla = Pla::Compress(ds.values, eps);
    t_pla += t.ElapsedSeconds();
    t.Reset();
    auto nl = NeatsLossy::Compress(ds.values, eps);
    t_nl += t.ElapsedSeconds();

    double r_aa = 100.0 * static_cast<double>(aa.SizeInBits()) / n64;
    double r_pla = 100.0 * static_cast<double>(pla.SizeInBits()) / n64;
    double r_nl = 100.0 * static_cast<double>(nl.SizeInBits()) / n64;
    double impr_aa = 100.0 * (r_aa - r_nl) / r_aa;
    double impr_pla = 100.0 * (r_pla - r_nl) / r_pla;
    sum_impr_aa += impr_aa;
    sum_impr_pla += impr_pla;

    std::vector<int64_t> out;
    t.Reset();
    aa.Decompress(&out);
    td_aa += t.ElapsedSeconds();
    mape_aa += Mape(ds.values, out);
    t.Reset();
    pla.Decompress(&out);
    td_pla += t.ElapsedSeconds();
    mape_pla += Mape(ds.values, out);
    t.Reset();
    nl.Decompress(&out);
    td_nl += t.ElapsedSeconds();
    mape_nl += Mape(ds.values, out);

    std::printf("%-5s %12.2e %9.2f %9.2f %9.2f %11.2f %11.2f\n", spec.code,
                eps_pct, r_aa, r_pla, r_nl, impr_aa, impr_pla);
  }

  double nd = static_cast<double>(kNumDatasets);
  std::printf("\nAverage NeaTS-L improvement: %.2f%% vs AA (paper: 11.77%%), "
              "%.2f%% vs PLA (paper: 7.02%%)\n",
              sum_impr_aa / nd, sum_impr_pla / nd);
  std::printf("MAPE (avg): AA %.2f%%  NeaTS-L %.2f%%  PLA %.2f%%  "
              "(paper: 2.47 / 2.85 / 4.37)\n",
              mape_aa / nd, mape_nl / nd, mape_pla / nd);
  std::printf("Compression speed (MB/s): PLA %.1f  AA %.1f  NeaTS-L %.1f  "
              "(paper order: PLA > AA > NeaTS-L)\n",
              mb_total / t_pla, mb_total / t_aa, mb_total / t_nl);
  std::printf("Decompression speed (MB/s): PLA %.0f  NeaTS-L %.0f  AA %.0f  "
              "(paper order: PLA > NeaTS > AA)\n",
              mb_total / td_pla, mb_total / td_nl, mb_total / td_aa);
  return 0;
}
