// Reproduces Figure 2: the trade-off between compression ratio and
// compression speed, averaged over the 16 datasets, including the NeaTS
// variants LeaTS (linear-only) and SNeaTS (model selection).
//
// Shapes to expect (paper): LzHuf-strong (Xz/Brotli role) at bottom-left
// (best ratio, slow); Gorilla top-right (fast, poor ratio); ALP on the Pareto
// front; NeaTS near the best ratios with modest speed; LeaTS ~5x and SNeaTS
// ~13x faster than NeaTS at slightly worse ratios.

#include <cstdio>
#include <vector>

#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

int main() {
  auto roster = LosslessRoster();
  // Add the two NeaTS variants of Sec. IV-C1.
  roster.push_back({"LeaTS", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new bench::internal::IntAdapter(
        CompressLeaTS(ds.values)));
  }});
  roster.push_back({"SNeaTS", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new bench::internal::IntAdapter(
        CompressSNeaTS(ds.values)));
  }});

  std::vector<double> sum_ratio(roster.size(), 0), sum_time(roster.size(), 0);
  double mb_total = 0;
  for (size_t d = 0; d < kNumDatasets; ++d) {
    Dataset ds = LoadDataset(kDatasetSpecs[d]);
    mb_total += static_cast<double>(ds.values.size()) * 8.0 / 1048576.0;
    for (size_t c = 0; c < roster.size(); ++c) {
      Timer t;
      auto blob = roster[c].compress(ds);
      sum_time[c] += t.ElapsedSeconds();
      sum_ratio[c] += RatioPct(blob->SizeInBits(), ds.values.size());
    }
  }

  std::printf("== Figure 2 reproduction: ratio vs compression speed "
              "(avg over 16 datasets) ==\n\n");
  std::printf("%-14s %12s %18s\n", "Compressor", "ratio (%)",
              "comp. speed (MB/s)");
  for (size_t c = 0; c < roster.size(); ++c) {
    std::printf("%-14s %12.2f %18.2f\n", roster[c].name.c_str(),
                sum_ratio[c] / static_cast<double>(kNumDatasets),
                mb_total / sum_time[c]);
  }

  size_t neats = 0, leats = 0, sneats = 0;
  for (size_t c = 0; c < roster.size(); ++c) {
    if (roster[c].name == "NeaTS") neats = c;
    if (roster[c].name == "LeaTS") leats = c;
    if (roster[c].name == "SNeaTS") sneats = c;
  }
  std::printf("\nLeaTS speedup over NeaTS: %.2fx (paper: 5.22x), "
              "ratio penalty %.2f%% (paper: 0.89%%)\n",
              sum_time[neats] / sum_time[leats],
              100.0 * (sum_ratio[leats] - sum_ratio[neats]) / sum_ratio[neats]);
  std::printf("SNeaTS speedup over NeaTS: %.2fx (paper: 12.86x), "
              "ratio penalty %.2f%% (paper: 8.18%%)\n",
              sum_time[neats] / sum_time[sneats],
              100.0 * (sum_ratio[sneats] - sum_ratio[neats]) / sum_ratio[neats]);
  return 0;
}
