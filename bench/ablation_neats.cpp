// Ablations over the NeaTS design choices called out in DESIGN.md:
//   (a) S as Elias-Fano vs plain bitvector with rank9 (Sec. III-C: the
//       bitvector gives O(1) random access at a space cost),
//   (b) the function set F (linear-only vs the paper's four kinds vs the
//       full catalogue with 3-parameter kinds),
//   (c) suffix edges in the partitioner on/off,
//   (d) the error-bound set E (dense powers of two vs sparse),
//   (e) model-selection sample size for SNeaTS.

#include <cstdio>
#include <random>
#include <vector>

#include "harness.hpp"

using namespace neats;
using namespace neats::bench;

namespace {

struct Row {
  const char* name;
  double ratio = 0, comp_s = 0, access_mb_s = 0;
};

Row Measure(const char* name, const Dataset& ds, const NeatsOptions& options) {
  Row row{name};
  Timer t;
  Neats blob = Neats::Compress(ds.values, options);
  row.comp_s = t.ElapsedSeconds();
  row.ratio = RatioPct(blob.SizeInBits(), ds.values.size());
  std::mt19937_64 rng(3);
  std::vector<size_t> probes(1 << 14);
  for (auto& p : probes) p = rng() % ds.values.size();
  row.access_mb_s = OpsPerSecond([&](size_t i) {
    return static_cast<uint64_t>(blob.Access(probes[i & (probes.size() - 1)]));
  }, 0.15) * 8.0 / 1048576.0;
  return row;
}

void Print(const Row& row) {
  std::printf("%-34s %10.2f %12.3f %16.2f\n", row.name, row.ratio, row.comp_s,
              row.access_mb_s);
}

}  // namespace

int main() {
  // A mid-size dataset with visible nonlinear structure.
  Dataset ds = MakeDataset("ECG", BenchSize(kDatasetSpecs[2]));
  std::printf("== NeaTS ablations (dataset ECG, n=%zu) ==\n\n",
              ds.values.size());
  std::printf("%-34s %10s %12s %16s\n", "variant", "ratio(%)", "comp(s)",
              "access(MB/s)");

  // (a) S representation.
  NeatsOptions ef, bv;
  bv.starts_index = StartsIndex::kBitVector;
  Print(Measure("S = Elias-Fano (default)", ds, ef));
  Print(Measure("S = plain bitvector + rank9", ds, bv));

  // (b) function set.
  NeatsOptions lin, four, full;
  lin.partition.kinds = {FunctionKind::kLinear};
  four.partition.kinds = {FunctionKind::kLinear, FunctionKind::kExponential,
                          FunctionKind::kQuadratic, FunctionKind::kRadical};
  full.partition.kinds = {
      FunctionKind::kLinear,      FunctionKind::kExponential,
      FunctionKind::kQuadratic,   FunctionKind::kRadical,
      FunctionKind::kPower,       FunctionKind::kLogarithm,
      FunctionKind::kQuadMixed,   FunctionKind::kCubicOdd,
      FunctionKind::kCubicMixed,  FunctionKind::kQuadraticFull,
      FunctionKind::kGaussian};
  Print(Measure("F = {linear}  (LeaTS)", ds, lin));
  Print(Measure("F = paper's 4 kinds (default)", ds, four));
  Print(Measure("F = full catalogue (11 kinds)", ds, full));

  // (c) suffix edges.
  NeatsOptions nosuffix;
  nosuffix.partition.use_suffix_edges = false;
  Print(Measure("no suffix edges", ds, nosuffix));

  // (d) E density.
  NeatsOptions sparse;
  auto dense_eps = DefaultEpsilons(ds.values);
  for (size_t i = 0; i < dense_eps.size(); i += 2) {
    sparse.partition.epsilons.push_back(dense_eps[i]);
  }
  Print(Measure("E = every other power of two", ds, sparse));

  // (e) model selection sample.
  for (double frac : {0.01, 0.1, 0.25}) {
    Timer t;
    Neats blob = Neats::CompressWithModelSelection(ds.values, {}, frac, 5);
    double secs = t.ElapsedSeconds();
    std::printf("%-24s sample=%4.0f%% %10.2f %12.3f %16s\n", "SNeaTS",
                100 * frac, RatioPct(blob.SizeInBits(), ds.values.size()),
                secs, "-");
  }
  return 0;
}
