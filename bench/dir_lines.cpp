// Cache-lines-per-query microbenchmark: how many distinct 64-byte cache
// lines one random access touches, measured by replaying queries against a
// build instrumented with the NEATS_TOUCH probes (src/common/touch_probe.hpp;
// this translation unit is compiled with -DNEATS_PROFILE_TOUCH, see
// CMakeLists.txt — do not link it together with uninstrumented TUs).
//
// Reported per dataset, for both metadata-resolution paths:
//   dir     Neats::Access — Elias-Fano predecessor + one interleaved
//           fragment-directory record (format v3)
//   legacy  Neats::AccessViaLegacyStructures — the same predecessor plus
//           separate probes into the B/O/K/D structures
//
// The count covers reads of frozen payload (bitvector words, rank/select
// directories, packed cells, directory records, parameters, correction
// words). Object-header fields (sizes, widths, pointers) live in the hot
// Neats object itself and are excluded — they are shared by both paths and
// resident after the first query anyway.
//
//   $ ./build/bench_dir_lines [--tsv]
//
// --tsv emits one machine-readable "CODE dir legacy" line per dataset;
// bench_bench_report shells out to this mode to fill the dir_lines_touched /
// legacy_lines_touched columns of BENCH_neats.json. Environment:
// NEATS_BENCH_N caps dataset sizes exactly as in bench_report.

#ifndef NEATS_PROFILE_TOUCH
#error "dir_lines.cpp must be compiled with -DNEATS_PROFILE_TOUCH"
#endif

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/neats.hpp"
#include "datasets/generators.hpp"
#include "harness.hpp"

namespace neats::bench {
namespace {

/// Runs `op` with the touch log armed and returns the number of distinct
/// cache lines it recorded.
template <typename Op>
size_t DistinctLines(Op&& op) {
  static thread_local std::vector<uint64_t> buf(1 << 16);
  touch::log = buf.data();
  touch::log_capacity = buf.size();
  touch::log_count = 0;
  op();
  touch::log = nullptr;
  std::sort(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(touch::log_count));
  return static_cast<size_t>(
      std::unique(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(touch::log_count)) -
      buf.begin());
}

struct Lines {
  double dir = 0;
  double legacy = 0;
};

Lines MeasureDataset(const DatasetSpec& spec) {
  Dataset ds = LoadDataset(spec);
  Neats compressed = Neats::Compress(ds.values);
  std::mt19937_64 rng(42);  // same probe distribution as bench_report
  std::vector<uint64_t> idx(1 << 12);
  for (auto& i : idx) i = rng() % ds.values.size();
  Lines lines;
  uint64_t sink = 0;
  for (uint64_t i : idx) {
    lines.dir += static_cast<double>(
        DistinctLines([&] { sink += static_cast<uint64_t>(compressed.Access(i)); }));
    lines.legacy += static_cast<double>(DistinctLines(
        [&] { sink += static_cast<uint64_t>(compressed.AccessViaLegacyStructures(i)); }));
  }
  if (sink == 0xDEADBEEFCAFEBABEULL) std::fprintf(stderr, "!");
  lines.dir /= static_cast<double>(idx.size());
  lines.legacy /= static_cast<double>(idx.size());
  return lines;
}

}  // namespace
}  // namespace neats::bench

int main(int argc, char** argv) {
  using namespace neats;
  using namespace neats::bench;
  const bool tsv = argc > 1 && std::strcmp(argv[1], "--tsv") == 0;
  if (!tsv) {
    std::printf("avg distinct cache lines per random access\n");
    std::printf("%-5s %8s %8s\n", "set", "dir", "legacy");
  }
  for (const DatasetSpec& spec : kDatasetSpecs) {
    std::string code = spec.code;
    if (code != "CT" && code != "DP" && code != "UK" && code != "ECG") continue;
    Lines lines = MeasureDataset(spec);
    if (tsv) {
      std::printf("%s %.2f %.2f\n", spec.code, lines.dir, lines.legacy);
    } else {
      std::printf("%-5s %8.2f %8.2f\n", spec.code, lines.dir, lines.legacy);
    }
    std::fflush(stdout);
  }
  return 0;
}
