// Microbenchmarks of the succinct substrate (google-benchmark): rank/select,
// Elias-Fano access/rank, wavelet-tree access/rank, packed-array reads, and
// the two hot NeaTS primitives (random access, fragment lookup).

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/neats.hpp"
#include "datasets/generators.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/wavelet_tree.hpp"

namespace {

using namespace neats;

constexpr size_t kN = 1 << 20;

RankSelect MakeRankSelect(double density) {
  std::mt19937_64 rng(1);
  BitVector bv(kN);
  for (size_t i = 0; i < kN; ++i) {
    if (rng() % 1000 < static_cast<uint64_t>(density * 1000)) bv.Set(i);
  }
  return RankSelect(std::move(bv));
}

void BM_Rank1(benchmark::State& state) {
  RankSelect rs = MakeRankSelect(0.5);
  std::mt19937_64 rng(2);
  size_t i = 0;
  std::vector<size_t> probes(4096);
  for (auto& p : probes) p = rng() % kN;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Rank1(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_Rank1);

void BM_Select1(benchmark::State& state) {
  RankSelect rs = MakeRankSelect(0.5);
  std::mt19937_64 rng(3);
  std::vector<uint64_t> probes(4096);
  for (auto& p : probes) p = rng() % rs.ones();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Select1(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_Select1);

void BM_EliasFanoAccess(benchmark::State& state) {
  std::mt19937_64 rng(4);
  std::vector<uint64_t> values;
  uint64_t cur = 0;
  for (size_t i = 0; i < kN / 4; ++i) {
    cur += rng() % 50;
    values.push_back(cur);
  }
  EliasFano ef(values);
  std::vector<size_t> probes(4096);
  for (auto& p : probes) p = rng() % values.size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ef.Access(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_EliasFanoAccess);

void BM_EliasFanoRank(benchmark::State& state) {
  std::mt19937_64 rng(5);
  std::vector<uint64_t> values;
  uint64_t cur = 0;
  for (size_t i = 0; i < kN / 4; ++i) {
    cur += rng() % 50;
    values.push_back(cur);
  }
  EliasFano ef(values);
  std::vector<uint64_t> probes(4096);
  for (auto& p : probes) p = rng() % values.back();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ef.Rank(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_EliasFanoRank);

void BM_WaveletTreeRank(benchmark::State& state) {
  std::mt19937 rng(6);
  std::vector<uint32_t> symbols(kN / 8);
  for (auto& s : symbols) s = rng() % 4;
  WaveletTree wt(symbols, 4);
  size_t i = 0;
  std::vector<size_t> probes(4096);
  for (auto& p : probes) p = rng() % symbols.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wt.Rank(static_cast<uint32_t>(i & 3),
                                     probes[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_WaveletTreeRank);

void BM_PackedArrayRead(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<uint64_t> values(kN / 4);
  int width = static_cast<int>(state.range(0));
  for (auto& v : values) v = rng() & LowMask(width);
  PackedArray pa(values, width);
  std::vector<size_t> probes(4096);
  for (auto& p : probes) p = rng() % values.size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa[probes[i++ & 4095]]);
  }
}
BENCHMARK(BM_PackedArrayRead)->Arg(7)->Arg(13)->Arg(40);

void BM_NeatsRandomAccess(benchmark::State& state) {
  Dataset ds = MakeDataset("US", 30000);
  Neats blob = Neats::Compress(ds.values);
  std::mt19937_64 rng(8);
  std::vector<size_t> probes(4096);
  for (auto& p : probes) p = rng() % ds.values.size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blob.Access(probes[i++ & 4095]));
  }
}
BENCHMARK(BM_NeatsRandomAccess);

void BM_NeatsDecompress(benchmark::State& state) {
  Dataset ds = MakeDataset("US", 30000);
  Neats blob = Neats::Compress(ds.values);
  std::vector<int64_t> out;
  for (auto _ : state) {
    blob.Decompress(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.values.size()) * 8);
}
BENCHMARK(BM_NeatsDecompress);

}  // namespace

BENCHMARK_MAIN();
