// Shared benchmark harness: uniform adapters over every lossless compressor,
// timing helpers, and table printing.
//
// Substitution note (see DESIGN.md): the general-purpose family is covered by
// three from-scratch engines taking the roles of the paper's five tools:
//   LzHuf-strong  — slow, strongest ratio      (role of Xz / Brotli)
//   LzHuf-fast    — balanced                    (role of Zstd)
//   FastLz        — fastest, weakest ratio      (role of Lz4 / Snappy)
// All compressors without native random access run block-wise (1000 values).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/alp.hpp"
#include "baselines/blockwise.hpp"
#include "baselines/chimp.hpp"
#include "baselines/dac.hpp"
#include "baselines/general_purpose.hpp"
#include "baselines/gorilla.hpp"
#include "baselines/leco.hpp"
#include "baselines/tsxor.hpp"
#include "common/timer.hpp"
#include "core/variants.hpp"
#include "datasets/generators.hpp"
#include "neats/neats.hpp"

namespace neats::bench {

/// Caps a dataset's default size: NEATS_BENCH_N=0 keeps the spec default,
/// otherwise sizes are clamped to the given value (default 120k for a
/// laptop-scale run).
inline size_t BenchSize(const DatasetSpec& spec) {
  static const size_t cap = [] {
    const char* env = std::getenv("NEATS_BENCH_N");
    if (env == nullptr) return size_t{120000};
    size_t v = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    return v == 0 ? SIZE_MAX : v;
  }();
  return std::min(spec.default_n, cap);
}

inline Dataset LoadDataset(const DatasetSpec& spec) {
  return MakeDataset(spec.code, BenchSize(spec));
}

/// Type-erased compressed blob.
class AnyCompressed {
 public:
  virtual ~AnyCompressed() = default;
  virtual size_t SizeInBits() const = 0;
  /// Full decompression; returns a checksum of the output (prevents the
  /// optimizer from discarding the work).
  virtual uint64_t DecompressAll() const = 0;
  /// Random access to one value, as a 64-bit checksum contribution.
  virtual uint64_t Access(size_t i) const = 0;
  /// Range decompression (random access + scan); returns a checksum.
  virtual uint64_t Range(size_t from, size_t len) const = 0;
};

namespace internal {

template <typename C>
class IntAdapter : public AnyCompressed {
 public:
  explicit IntAdapter(C compressed) : c_(std::move(compressed)) {}
  size_t SizeInBits() const override { return c_.SizeInBits(); }
  uint64_t DecompressAll() const override {
    // Every codec pays the same O(n) materialization here so the cross-codec
    // comparison stays apples-to-apples; the no-materialization cursor scan
    // is a separate metric (CursorScanChecksum, bench_report.cpp).
    std::vector<int64_t> out;
    c_.Decompress(&out);
    uint64_t checksum = 0;
    for (int64_t v : out) checksum += static_cast<uint64_t>(v);
    return checksum;
  }
  uint64_t Access(size_t i) const override {
    return static_cast<uint64_t>(c_.Access(i));
  }
  uint64_t Range(size_t from, size_t len) const override {
    std::vector<int64_t> out(len);
    RangeInto(from, len, out.data());
    uint64_t checksum = 0;
    for (int64_t v : out) checksum += static_cast<uint64_t>(v);
    return checksum;
  }

 private:
  void RangeInto(size_t from, size_t len, int64_t* out) const {
    if constexpr (requires { c_.DecompressRange(from, len, out); }) {
      c_.DecompressRange(from, len, out);
    } else {
      for (size_t j = 0; j < len; ++j) out[j] = c_.Access(from + j);
    }
  }
  C c_;
};

template <typename C>
class DoubleAdapter : public AnyCompressed {
 public:
  explicit DoubleAdapter(C compressed) : c_(std::move(compressed)) {}
  size_t SizeInBits() const override { return c_.SizeInBits(); }
  uint64_t DecompressAll() const override {
    std::vector<double> out;
    c_.Decompress(&out);
    uint64_t checksum = 0;
    for (double v : out) checksum += std::bit_cast<uint64_t>(v);
    return checksum;
  }
  uint64_t Access(size_t i) const override {
    return std::bit_cast<uint64_t>(c_.Access(i));
  }
  uint64_t Range(size_t from, size_t len) const override {
    std::vector<double> out(len);
    if constexpr (requires { c_.DecompressRange(from, len, out.data()); }) {
      c_.DecompressRange(from, len, out.data());
    } else {
      for (size_t j = 0; j < len; ++j) out[j] = c_.Access(from + j);
    }
    uint64_t checksum = 0;
    for (double v : out) checksum += std::bit_cast<uint64_t>(v);
    return checksum;
  }

 private:
  C c_;
};

}  // namespace internal

/// A named compressor with a type-erased Compress entry point.
struct Compressor {
  std::string name;
  bool general_purpose;
  std::function<std::unique_ptr<AnyCompressed>(const Dataset&)> compress;
};

/// The full lossless roster of Table III (substitutions noted in the names).
inline std::vector<Compressor> LosslessRoster() {
  using namespace internal;
  std::vector<Compressor> roster;
  roster.push_back({"LzHuf-strong", true, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        BlockwiseBytes<LzHufStrongPolicy>::Compress(ds.values)));
  }});
  roster.push_back({"LzHuf-fast", true, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        BlockwiseBytes<LzHufFastPolicy>::Compress(ds.values)));
  }});
  roster.push_back({"FastLz", true, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        BlockwiseBytes<FastLzPolicy>::Compress(ds.values)));
  }});
  roster.push_back({"Chimp128", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new DoubleAdapter(
        Blockwise<Chimp128>::Compress(ds.doubles)));
  }});
  roster.push_back({"Chimp", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new DoubleAdapter(
        Blockwise<Chimp>::Compress(ds.doubles)));
  }});
  roster.push_back({"TSXor", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new DoubleAdapter(
        Blockwise<TsXor>::Compress(ds.doubles)));
  }});
  roster.push_back({"DAC", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        Dac::Compress(ds.values)));
  }});
  roster.push_back({"Gorilla", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new DoubleAdapter(
        Blockwise<Gorilla>::Compress(ds.doubles)));
  }});
  roster.push_back({"LeCo", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        Leco::Compress(ds.values)));
  }});
  roster.push_back({"ALP", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new DoubleAdapter(
        Alp::Compress(ds.doubles)));
  }});
  roster.push_back({"NeaTS", false, [](const Dataset& ds) {
    return std::unique_ptr<AnyCompressed>(new IntAdapter(
        Neats::Compress(ds.values)));
  }});
  return roster;
}

/// Checksum of a full sequential scan through a compressor's Cursor,
/// decoding into a fixed 4096-value buffer — the streaming counterpart of
/// AnyCompressed::DecompressAll, with no O(n) output materialization.
template <typename C>
uint64_t CursorScanChecksum(const C& compressed) {
  typename C::Cursor cursor(compressed);
  int64_t buffer[4096];
  uint64_t checksum = 0;
  while (!cursor.done()) {
    uint64_t got = cursor.Read(4096, buffer);
    for (uint64_t j = 0; j < got; ++j) {
      checksum += static_cast<uint64_t>(buffer[j]);
    }
  }
  return checksum;
}

/// Compression ratio in percent (compressed bits / raw 64-bit values).
inline double RatioPct(size_t bits, size_t n) {
  return 100.0 * static_cast<double>(bits) / (64.0 * static_cast<double>(n));
}

/// Runs `op()` repeatedly until ~min_seconds elapse; returns ops per second.
template <typename Op>
double OpsPerSecond(Op&& op, double min_seconds = 0.2, size_t max_ops = 1u << 22) {
  // Warm-up.
  op(0);
  Timer timer;
  size_t done = 0;
  uint64_t sink = 0;
  while (timer.ElapsedSeconds() < min_seconds && done < max_ops) {
    sink += op(done);
    ++done;
  }
  double elapsed = timer.ElapsedSeconds();
  // Prevent the compiler from dropping the loop.
  if (sink == 0xDEADBEEFCAFEBABEULL) std::fprintf(stderr, "!");
  return static_cast<double>(done) / elapsed;
}

inline const char* kRuler =
    "--------------------------------------------------------------------"
    "--------------------------------------------------------------------";

}  // namespace neats::bench
