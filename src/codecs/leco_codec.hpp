// LecoCodec — LeCo adapted to the SeriesCodec surface (codec id 2).
//
// LeCo is already int64-native with real random access (Elias-Fano rank to
// the fragment, one residual read), so the adaptation is thin: the baseline
// grew Serialize/Deserialize/View and a fragment-at-a-time DecompressRange
// (src/baselines/leco.hpp), and this wrapper supplies the remaining batch /
// multi-range / range-sum surface through the CRTP defaults. Zero-copy: the
// LeCo payload arrays are Storage-backed, so View serves from the caller's
// buffer just like the NeaTS core.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/leco.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"

namespace neats {

/// Exact int64 SeriesCodec over LeCo linear fits + packed residuals.
class LecoCodec : public ScalarCodecBase<LecoCodec> {
 public:
  LecoCodec() = default;

  static constexpr bool kZeroCopyView = true;

  static LecoCodec Compress(std::span<const int64_t> values,
                            const NeatsOptions& options = {}) {
    (void)options;  // LeCo's partitioner is heuristic, no NeaTS knobs apply
    LecoCodec out;
    out.leco_ = Leco::Compress(values);
    return out;
  }

  uint64_t size() const { return leco_.size(); }
  size_t num_fragments() const { return leco_.num_fragments(); }

  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < leco_.size());
    return leco_.Access(k);
  }

  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    leco_.DecompressRange(from, len, out);
  }

  size_t SizeInBits() const { return leco_.SizeInBits(); }

  void Serialize(std::vector<uint8_t>* out) const { leco_.Serialize(out); }

  static LecoCodec Deserialize(std::span<const uint8_t> bytes) {
    LecoCodec out;
    out.leco_ = Leco::Deserialize(bytes);
    return out;
  }

  static LecoCodec View(std::span<const uint8_t> bytes) {
    LecoCodec out;
    out.leco_ = Leco::View(bytes);
    return out;
  }

 private:
  Leco leco_;
};

static_assert(SeriesCodec<LecoCodec>);

}  // namespace neats
