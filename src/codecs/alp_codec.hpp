// AlpCodec — ALP adapted to the int64 SeriesCodec surface (codec id 3).
//
// The store's values are decimal-scaled integers, which is exactly the data
// shape ALP was built for once they are viewed as doubles: d = (double)v
// encodes with exponent 0 as a frame-of-reference pseudo-decimal, so ALP
// behaves like a per-1024-vector FOR/bit-packing codec here. Values whose
// int64 -> double conversion is not exact (|v| > 2^53 territory) are carried
// in a sorted exception list next to the ALP payload and patched on every
// query, keeping the codec exact over the full ±2^61 range.
//
// Random access decodes the containing 1024-value vector (vector-at-a-time,
// as in the original engine), so AccessBatch inherits the scalar default;
// DecompressRange decodes each covered vector once. Not zero-copy: the ALP
// block payload deserializes into owned vectors.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/alp.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Exact int64 SeriesCodec over ALP pseudo-decimal vectors.
class AlpCodec : public ScalarCodecBase<AlpCodec> {
 public:
  AlpCodec() = default;

  static constexpr bool kZeroCopyView = false;

  static AlpCodec Compress(std::span<const int64_t> values,
                           const NeatsOptions& options = {}) {
    (void)options;  // ALP has no NeaTS-shaped knobs
    AlpCodec out;
    out.n_ = values.size();
    std::vector<double> doubles(values.size());
    for (size_t k = 0; k < values.size(); ++k) {
      doubles[k] = static_cast<double>(values[k]);
      if (!RoundTrips(values[k], doubles[k])) {
        out.exc_pos_.push_back(k);
        out.exc_val_.push_back(values[k]);
        doubles[k] = 0.0;  // encode a cheap placeholder instead
      }
    }
    out.alp_ = Alp::Compress(doubles);
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_exceptions() const { return exc_pos_.size(); }

  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), k);
    if (it != exc_pos_.end() && *it == k) {
      return exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
    }
    return CastBack(alp_.Access(k));
  }

  /// Decodes each covered ALP vector once, then patches the exceptions.
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    if (len == 0) return;
    NEATS_DCHECK(from + len <= n_);
    std::vector<double> buffer(len);
    alp_.DecompressRange(from, len, buffer.data());
    auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), from);
    for (uint64_t j = 0; j < len; ++j) {
      if (it != exc_pos_.end() && *it == from + j) {
        out[j] = exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
        ++it;
        continue;
      }
      out[j] = CastBack(buffer[j]);
    }
  }

  /// ALP's bit estimate plus the exception list and framing.
  size_t SizeInBits() const {
    return alp_.SizeInBits() + exc_pos_.size() * 2 * 64 + 5 * 64;
  }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    w.Put(exc_pos_.size());
    for (size_t e = 0; e < exc_pos_.size(); ++e) {
      w.Put(exc_pos_[e]);
      w.Put(static_cast<uint64_t>(exc_val_[e]));
    }
    alp_.SerializeInto(w);
  }

  static AlpCodec Deserialize(std::span<const uint8_t> bytes) {
    WordReader r(bytes, /*borrow=*/false);
    NEATS_REQUIRE(r.Get() == kMagic, "not an ALP blob");
    NEATS_REQUIRE(r.Get() == kFormatVersion,
                  "unsupported ALP format version");
    AlpCodec out;
    size_t num_exc = r.Get();
    NEATS_REQUIRE(num_exc <= (bytes.size() - r.position()) / 16,
                  "corrupt ALP blob");
    out.exc_pos_.reserve(num_exc);
    out.exc_val_.reserve(num_exc);
    for (size_t e = 0; e < num_exc; ++e) {
      out.exc_pos_.push_back(r.Get());
      out.exc_val_.push_back(static_cast<int64_t>(r.Get()));
    }
    out.alp_ = Alp::LoadFrom(r);
    NEATS_REQUIRE(r.position() == bytes.size(), "corrupt ALP blob");
    out.n_ = out.alp_.size();
    // Exception positions must be strictly increasing and in range — the
    // query paths binary-search them unchecked.
    for (size_t e = 0; e < num_exc; ++e) {
      NEATS_REQUIRE(out.exc_pos_[e] < out.n_ &&
                        (e == 0 || out.exc_pos_[e - 1] < out.exc_pos_[e]),
                    "corrupt ALP blob");
    }
    return out;
  }

  /// ALP blocks deserialize into owned vectors, so View is an owning load.
  static AlpCodec View(std::span<const uint8_t> bytes) {
    return Deserialize(bytes);
  }

 private:
  /// True iff (double)v reconstructs v exactly via the cast back.
  static bool RoundTrips(int64_t v, double d) {
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return false;
    }
    return static_cast<int64_t>(d) == v;
  }

  /// Range-guarded double -> int64 cast. Non-exception slots round-trip by
  /// construction, so the guard never fires on blobs this encoder wrote —
  /// it exists for forged blobs, where an out-of-range or NaN double would
  /// make the raw cast UB (the guarded value is garbage, which is all a
  /// corrupt payload is entitled to).
  static int64_t CastBack(double d) {
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return 0;
    }
    return static_cast<int64_t>(d);
  }

  static constexpr uint64_t kMagic = MagicWord("NEATSAP\0");
  static constexpr uint64_t kFormatVersion = 1;

  uint64_t n_ = 0;
  Alp alp_;
  std::vector<uint64_t> exc_pos_;  // sorted global indices
  std::vector<int64_t> exc_val_;
};

static_assert(SeriesCodec<AlpCodec>);

}  // namespace neats
