// AlpCodec — ALP adapted to the int64 SeriesCodec surface (codec id 3).
//
// The store's values are decimal-scaled integers, which is exactly the data
// shape ALP was built for once they are viewed as doubles: d = (double)v
// encodes with exponent 0 as a frame-of-reference pseudo-decimal, so ALP
// behaves like a per-1024-vector FOR/bit-packing codec here. Values whose
// int64 -> double conversion is not exact (|v| > 2^53 territory) are carried
// in a sorted exception list next to the ALP payload and patched on every
// query, keeping the codec exact over the full ±2^61 range.
//
// Random access reads one packed bit field (Alp::AccessPoint) — no vector
// decode. AccessBatch is a hybrid block-grouped kernel over the (sorted)
// probes: a vector with few probes answers each by point read, a densely
// probed vector is decoded once and all its probes answered from the
// buffer. DecompressRange decodes each covered vector once.
//
// Format v2 appends a per-vector word-offset index after the ALP payload
// (additive; FORMAT.md "ALP blob"): offsets are re-derived while parsing
// and the stored section is validated against them, giving the load a
// structural tripwire and readers a way to locate vector headers without a
// parse. v1 blobs load fine and re-serialize as v2. Zero-copy: the packed
// bit arrays of every vector borrow the blob in a View open.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/alp.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"
#include "succinct/storage.hpp"

namespace neats {

struct AlpCodecTestPeer;

/// Exact int64 SeriesCodec over ALP pseudo-decimal vectors.
class AlpCodec : public ScalarCodecBase<AlpCodec> {
 public:
  AlpCodec() = default;

  static constexpr bool kZeroCopyView = true;

  static AlpCodec Compress(std::span<const int64_t> values,
                           const NeatsOptions& options = {}) {
    (void)options;  // ALP has no NeaTS-shaped knobs
    AlpCodec out;
    out.n_ = values.size();
    std::vector<double> doubles(values.size());
    for (size_t k = 0; k < values.size(); ++k) {
      doubles[k] = static_cast<double>(values[k]);
      if (!RoundTrips(values[k], doubles[k])) {
        out.exc_pos_.push_back(k);
        out.exc_val_.push_back(values[k]);
        doubles[k] = 0.0;  // encode a cheap placeholder instead
      }
    }
    out.alp_ = Alp::Compress(doubles);
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_exceptions() const { return exc_pos_.size(); }

  /// Values per independently-decodable block (the store's decoded-block
  /// cache keys on this geometry).
  uint64_t BlockValues() const { return Alp::kVector; }

  /// Fully decodes vector b into out (sized BlockValues()), patching the
  /// codec-level int64 exceptions; returns how many values it held.
  uint64_t DecodeBlock(uint64_t b, int64_t* out) const {
    const uint64_t first = b * Alp::kVector;
    const size_t count = alp_.block_count(b);
    double buf[Alp::kVector];
    alp_.DecodeBlockInto(b, buf);
    auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), first);
    for (size_t j = 0; j < count; ++j) {
      if (it != exc_pos_.end() && *it == first + j) {
        out[j] = exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
        ++it;
      } else {
        out[j] = CastBack(buf[j]);
      }
    }
    return count;
  }

  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), k);
    if (it != exc_pos_.end() && *it == k) {
      return exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
    }
    return CastBack(alp_.AccessPoint(k));
  }

  /// Hybrid block-grouped batch kernel over non-decreasing probes: a
  /// sparsely probed vector answers each probe with a point read, a vector
  /// holding at least kVector/4 probes is decoded once and all its probes
  /// (duplicates included) answered from the buffer. The threshold is the
  /// measured breakeven: a point read costs a handful of ns (exception
  /// binary search + one ReadBits), the bulk unpack ~2 ns per vector slot.
  void AccessBatch(std::span<const uint64_t> idx, int64_t* out) const {
    constexpr size_t kDenseThreshold = Alp::kVector / 4;
    double buf[Alp::kVector];
    size_t p = 0;
    while (p < idx.size()) {
      const uint64_t b = idx[p] / Alp::kVector;
      const uint64_t block_end = (b + 1) * Alp::kVector;
      size_t q = p;
      while (q < idx.size() && idx[q] < block_end) ++q;
      if (q - p >= kDenseThreshold) {
        alp_.DecodeBlockInto(b, buf);
        for (size_t j = p; j < q; ++j) {
          out[j] = Patched(idx[j], buf[idx[j] - b * Alp::kVector]);
        }
      } else {
        for (size_t j = p; j < q; ++j) out[j] = Access(idx[j]);
      }
      p = q;
    }
  }

  /// Decodes each covered ALP vector once, then patches the exceptions.
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    if (len == 0) return;
    NEATS_DCHECK(from + len <= n_);
    std::vector<double> buffer(len);
    alp_.DecompressRange(from, len, buffer.data());
    auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), from);
    for (uint64_t j = 0; j < len; ++j) {
      if (it != exc_pos_.end() && *it == from + j) {
        out[j] = exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
        ++it;
        continue;
      }
      out[j] = CastBack(buffer[j]);
    }
  }

  /// ALP's bit estimate plus the exception list, offset index and framing.
  size_t SizeInBits() const {
    return alp_.SizeInBits() + exc_pos_.size() * 2 * 64 +
           (alp_.num_blocks() + 1) * 64 + 5 * 64;
  }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    w.Put(exc_pos_.size());
    for (size_t e = 0; e < exc_pos_.size(); ++e) {
      w.Put(exc_pos_[e]);
      w.Put(static_cast<uint64_t>(exc_val_[e]));
    }
    std::vector<uint64_t> offsets;
    alp_.SerializeInto(w, &offsets);
    // v2 vector-offset index (additive; FORMAT.md "ALP blob").
    w.Put(offsets.size());
    for (uint64_t o : offsets) w.Put(o);
  }

  static AlpCodec Deserialize(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/false);
  }

  /// Opens the blob borrowing the caller's buffer: every vector's packed
  /// bit array stays a view into `bytes`, which must be 8-byte-aligned and
  /// outlive the result (an mmap'd shard keeps its mapping).
  static AlpCodec View(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/true);
  }

 private:
  friend struct AlpCodecTestPeer;

  static AlpCodec Load(std::span<const uint8_t> bytes, bool borrow) {
    WordReader r(bytes, borrow);
    NEATS_REQUIRE(r.Get() == kMagic, "not an ALP blob");
    const uint64_t version = r.Get();
    NEATS_REQUIRE(version == 1 || version == kFormatVersion,
                  "unsupported ALP format version");
    AlpCodec out;
    size_t num_exc = r.Get();
    NEATS_REQUIRE(num_exc <= (bytes.size() - r.position()) / 16,
                  "corrupt ALP blob");
    out.exc_pos_.reserve(num_exc);
    out.exc_val_.reserve(num_exc);
    for (size_t e = 0; e < num_exc; ++e) {
      out.exc_pos_.push_back(r.Get());
      out.exc_val_.push_back(static_cast<int64_t>(r.Get()));
    }
    std::vector<uint64_t> offsets;
    out.alp_ = Alp::LoadFrom(r, &offsets);
    if (version == kFormatVersion) {
      // The stored offset index must agree with where the parse actually
      // found every vector header — a cheap structural tripwire, and what
      // keeps re-serialization canonical.
      NEATS_REQUIRE(r.Get() == offsets.size(), "corrupt ALP blob");
      for (uint64_t o : offsets) {
        NEATS_REQUIRE(r.Get() == o, "corrupt ALP blob");
      }
    }
    NEATS_REQUIRE(r.position() == bytes.size(), "corrupt ALP blob");
    out.n_ = out.alp_.size();
    // Exception positions must be strictly increasing and in range — the
    // query paths binary-search them unchecked.
    for (size_t e = 0; e < num_exc; ++e) {
      NEATS_REQUIRE(out.exc_pos_[e] < out.n_ &&
                        (e == 0 || out.exc_pos_[e - 1] < out.exc_pos_[e]),
                    "corrupt ALP blob");
    }
    return out;
  }

  /// The int64-exception patch for a value already decoded as a double.
  int64_t Patched(uint64_t k, double v) const {
    if (!exc_pos_.empty()) {
      auto it = std::lower_bound(exc_pos_.begin(), exc_pos_.end(), k);
      if (it != exc_pos_.end() && *it == k) {
        return exc_val_[static_cast<size_t>(it - exc_pos_.begin())];
      }
    }
    return CastBack(v);
  }

  /// True iff (double)v reconstructs v exactly via the cast back.
  static bool RoundTrips(int64_t v, double d) {
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return false;
    }
    return static_cast<int64_t>(d) == v;
  }

  /// Range-guarded double -> int64 cast. Non-exception slots round-trip by
  /// construction, so the guard never fires on blobs this encoder wrote —
  /// it exists for forged blobs, where an out-of-range or NaN double would
  /// make the raw cast UB (the guarded value is garbage, which is all a
  /// corrupt payload is entitled to).
  static int64_t CastBack(double d) {
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return 0;
    }
    return static_cast<int64_t>(d);
  }

  static constexpr uint64_t kMagic = MagicWord("NEATSAP\0");
  static constexpr uint64_t kFormatVersion = 2;

  uint64_t n_ = 0;
  Alp alp_;
  std::vector<uint64_t> exc_pos_;  // sorted global indices
  std::vector<int64_t> exc_val_;
};

static_assert(SeriesCodec<AlpCodec>);

/// Test-only back door: writes the legacy v1 framing (no vector-offset
/// index) so migration tests can exercise the v1 -> v2 load path without
/// keeping binary fixtures around.
struct AlpCodecTestPeer {
  static void SerializeV1(const AlpCodec& c, std::vector<uint8_t>* out) {
    out->clear();
    WordWriter w(out);
    w.Put(AlpCodec::kMagic);
    w.Put(uint64_t{1});
    w.Put(c.exc_pos_.size());
    for (size_t e = 0; e < c.exc_pos_.size(); ++e) {
      w.Put(c.exc_pos_[e]);
      w.Put(static_cast<uint64_t>(c.exc_val_[e]));
    }
    c.alp_.SerializeInto(w);
  }
};

}  // namespace neats
