// NeatsLossyExact — the exact-path adapter over NeaTS-L (codec id 1).
//
// NeaTS-L alone cannot serve a lossless store shard: it guarantees only
// |decoded - original| <= eps + 1. This codec makes it exact the same way
// NeaTS itself treats its learned functions: keep the lossy approximation as
// the predictor and bit-pack the per-value residuals at one fixed width next
// to it. Random access stays O(1) on top of the lossy predecessor scan (one
// extra ReadBits), and the representation degrades gracefully — a series the
// partitioner approximates tightly stores near-zero-width residuals.
//
// Wire format (flat word grammar of docs/FORMAT.md): magic "NEATSLX",
// version, n, residual base, residual width, the packed residual words, then
// the embedded NeaTS-L v2 blob (length-prefixed, word-aligned). View opens
// the residuals and the nested lossy blob zero-copy.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "core/codec_id.hpp"
#include "core/neats_lossy.hpp"
#include "core/series_codec.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Exact SeriesCodec built from a NeaTS-L approximation plus packed
/// fixed-width residual corrections.
class NeatsLossyExact : public ScalarCodecBase<NeatsLossyExact> {
 public:
  NeatsLossyExact() = default;

  static constexpr bool kZeroCopyView = true;

  /// Compresses `values` exactly. The error bound handed to the lossy
  /// partitioner comes from options.partition.epsilons (median) or, when
  /// unset, the median of the data-derived default E set — a middle ground
  /// between long fragments (big eps, wide residuals) and many fragments
  /// (small eps, narrow residuals).
  static NeatsLossyExact Compress(std::span<const int64_t> values,
                                  const NeatsOptions& options = {}) {
    std::vector<int64_t> eps = options.partition.epsilons;
    if (eps.empty()) eps = DefaultEpsilons(values);
    NeatsLossyExact out;
    out.lossy_ =
        NeatsLossy::Compress(values, eps[eps.size() / 2], options.partition);
    out.n_ = values.size();
    if (values.empty()) return out;
    std::vector<int64_t> approx;
    out.lossy_.Decompress(&approx);
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (size_t k = 0; k < values.size(); ++k) {
      int64_t r = values[k] - approx[k];
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    out.base_ = lo;
    out.width_ = BitWidth(static_cast<uint64_t>(hi - lo));
    BitWriter residuals;
    for (size_t k = 0; k < values.size(); ++k) {
      residuals.Append(static_cast<uint64_t>(values[k] - approx[k] - lo),
                       out.width_);
    }
    out.residuals_ = Storage<uint64_t>(residuals.TakeWords());
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_fragments() const { return lossy_.num_fragments(); }

  /// The exact value at k: the lossy prediction plus its packed residual.
  /// The sum runs in unsigned arithmetic: it cannot overflow for blobs this
  /// encoder wrote, but a forged blob can pick any base — wraparound is
  /// defined, signed overflow would be UB.
  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    uint64_t pred = static_cast<uint64_t>(lossy_.Access(k)) +
                    static_cast<uint64_t>(base_);
    if (width_ == 0) return static_cast<int64_t>(pred);
    uint64_t o = k * static_cast<uint64_t>(width_);
    return static_cast<int64_t>(pred + ReadBits(residuals_.data(), o, width_));
  }

  /// Exact serialized size (8 * Serialize output bytes): the five header
  /// words, the length-prefixed residual and blob sections, and the nested
  /// lossy blob (whose SizeInBits is its serialized size by contract).
  size_t SizeInBits() const {
    return (5 + 1 + residuals_.size() + 1) * 64 + lossy_.SizeInBits();
  }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    w.Put(n_);
    w.Put(static_cast<uint64_t>(base_));
    w.Put(static_cast<uint64_t>(width_));
    w.PutArray(residuals_);
    std::vector<uint8_t> blob;
    lossy_.Serialize(&blob);
    w.Put(blob.size());
    w.PutCells(blob.data(), blob.size());
  }

  static NeatsLossyExact Deserialize(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/false);
  }

  /// Opens a blob zero-copy (8-byte-aligned `bytes` outliving the result):
  /// the residual words and the nested NeaTS-L payload are both served as
  /// spans into `bytes`.
  static NeatsLossyExact View(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/true);
  }

 private:
  static NeatsLossyExact Load(std::span<const uint8_t> bytes, bool borrow) {
    WordReader r(bytes, borrow);
    NEATS_REQUIRE(r.Get() == kMagic, "not a NeaTS-LX blob");
    NEATS_REQUIRE(r.Get() == kFormatVersion,
                  "unsupported NeaTS-LX format version");
    NeatsLossyExact out;
    out.n_ = r.Get();
    out.base_ = static_cast<int64_t>(r.Get());
    uint64_t width = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56) && width <= 64,
                  "corrupt NeaTS-LX blob");
    out.width_ = static_cast<int>(width);
    out.residuals_ = r.GetArray<uint64_t>();
    NEATS_REQUIRE(out.residuals_.size() == CeilDiv(out.n_ * width, 64),
                  "corrupt NeaTS-LX blob");
    Storage<uint8_t> blob = r.GetCells<uint8_t>(r.Get());
    NEATS_REQUIRE(r.position() == bytes.size(), "corrupt NeaTS-LX blob");
    out.lossy_ = borrow ? NeatsLossy::View(blob.span())
                        : NeatsLossy::Deserialize(blob.span());
    NEATS_REQUIRE(out.lossy_.size() == out.n_, "corrupt NeaTS-LX blob");
    // Base/width consistency cannot be cross-checked against the lossy blob
    // (the residuals are exactly the information it dropped); the length
    // checks above bound every ReadBits inside the payload.
    return out;
  }

  static constexpr uint64_t kMagic = MagicWord("NEATSLX\0");
  static constexpr uint64_t kFormatVersion = 1;

  uint64_t n_ = 0;
  int64_t base_ = 0;
  int width_ = 0;
  NeatsLossy lossy_;
  Storage<uint64_t> residuals_;  // n_ fixed-width biased residuals
};

static_assert(SeriesCodec<NeatsLossyExact>);

}  // namespace neats
