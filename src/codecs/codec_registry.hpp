// The codec registry: runtime dispatch from a CodecId (the word a manifest
// row stores) to a concrete SeriesCodec, behind the type-erased SealedSeries
// interface the store serves shards through.
//
//   compress:  CodecRegistry::Compress(id, values, options)  -> SealedSeries
//   open:      CodecRegistry::Open(id, bytes, allow_view)    -> SealedSeries
//
// SealedSeries mirrors the SeriesCodec query surface one virtual call deep;
// SealedCodec<C> is the only implementation, stamped out per codec type, so
// adding a codec is: implement the concept, add a CodecId, add one switch
// case in WithCodecType. Open() uses C::View when the caller guarantees the
// bytes outlive the result (an mmap'd shard) and the codec supports
// borrowing (C::kZeroCopyView); otherwise it falls back to the owning
// Deserialize. Walkthrough: docs/ARCHITECTURE.md, "Codec layer".

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "codecs/alp_codec.hpp"
#include "codecs/leco_codec.hpp"
#include "codecs/lossy_exact_codec.hpp"
#include "codecs/xor_codec.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "core/series_codec.hpp"

namespace neats {

/// A sealed, immutable compressed series behind a stable virtual interface —
/// the unit a NeatsStore shard serves queries through, whatever codec
/// compressed it. AccessBatch requires non-decreasing probes, like the
/// concept it erases.
class SealedSeries {
 public:
  virtual ~SealedSeries() = default;

  virtual CodecId codec() const = 0;
  virtual uint64_t size() const = 0;
  virtual size_t SizeInBits() const = 0;
  virtual int64_t Access(uint64_t i) const = 0;
  virtual void AccessBatch(std::span<const uint64_t> idx,
                           int64_t* out) const = 0;
  virtual void DecompressRange(uint64_t from, uint64_t len,
                               int64_t* out) const = 0;
  virtual void DecompressRanges(std::span<const IndexRange> ranges,
                                int64_t* out) const = 0;
  virtual int64_t RangeSum(uint64_t from, uint64_t len) const = 0;
  /// Codecs without a corrections-free estimator answer exactly (bound 0).
  virtual Neats::ApproximateAggregate ApproximateRangeSum(
      uint64_t from, uint64_t len) const = 0;
  virtual void Serialize(std::vector<uint8_t>* out) const = 0;

  /// Block surface (core/series_codec.hpp, BlockStructuredCodec): values
  /// per independently-decodable block, or 0 when the codec is not
  /// block-structured — the store's decoded-block cache keys on this.
  virtual uint64_t BlockValues() const { return 0; }

  /// Fully decodes block b into out (sized BlockValues()); returns the
  /// count. Only callable when BlockValues() > 0.
  virtual uint64_t DecodeBlock(uint64_t b, int64_t* out) const {
    (void)b;
    (void)out;
    NEATS_REQUIRE(false, "codec has no block decode surface");
  }
};

/// The one SealedSeries implementation: forwards every virtual to the
/// wrapped SeriesCodec.
template <SeriesCodec C>
class SealedCodec final : public SealedSeries {
 public:
  SealedCodec(CodecId id, C codec) : id_(id), c_(std::move(codec)) {}

  CodecId codec() const override { return id_; }
  uint64_t size() const override { return c_.size(); }
  size_t SizeInBits() const override { return c_.SizeInBits(); }
  int64_t Access(uint64_t i) const override { return c_.Access(i); }
  void AccessBatch(std::span<const uint64_t> idx,
                   int64_t* out) const override {
    c_.AccessBatch(idx, out);
  }
  void DecompressRange(uint64_t from, uint64_t len,
                       int64_t* out) const override {
    c_.DecompressRange(from, len, out);
  }
  void DecompressRanges(std::span<const IndexRange> ranges,
                        int64_t* out) const override {
    c_.DecompressRanges(ranges, out);
  }
  int64_t RangeSum(uint64_t from, uint64_t len) const override {
    return c_.RangeSum(from, len);
  }
  Neats::ApproximateAggregate ApproximateRangeSum(
      uint64_t from, uint64_t len) const override {
    if constexpr (requires { c_.ApproximateRangeSum(from, len); }) {
      return c_.ApproximateRangeSum(from, len);
    } else {
      return {static_cast<double>(c_.RangeSum(from, len)), 0.0};
    }
  }
  void Serialize(std::vector<uint8_t>* out) const override {
    c_.Serialize(out);
  }
  uint64_t BlockValues() const override {
    if constexpr (BlockStructuredCodec<C>) {
      return c_.BlockValues();
    } else {
      return 0;
    }
  }
  uint64_t DecodeBlock(uint64_t b, int64_t* out) const override {
    if constexpr (BlockStructuredCodec<C>) {
      return c_.DecodeBlock(b, out);
    } else {
      return SealedSeries::DecodeBlock(b, out);
    }
  }

 private:
  CodecId id_;
  C c_;
};

namespace internal {

/// The single id -> type mapping: every registry operation funnels through
/// this switch, so registering a codec is one new case.
template <typename F>
auto WithCodecType(CodecId id, F&& f) {
  switch (id) {
    case CodecId::kNeats: return f(std::type_identity<Neats>{});
    case CodecId::kNeatsLossyExact:
      return f(std::type_identity<NeatsLossyExact>{});
    case CodecId::kLeco: return f(std::type_identity<LecoCodec>{});
    case CodecId::kAlp: return f(std::type_identity<AlpCodec>{});
    case CodecId::kGorilla: return f(std::type_identity<GorillaCodec>{});
    case CodecId::kChimp: return f(std::type_identity<ChimpCodec>{});
  }
  NEATS_REQUIRE(false, "unknown codec id");
}

}  // namespace internal

/// Runtime codec dispatch (see file comment).
struct CodecRegistry {
  /// Compresses `values` with the codec named by `id`.
  static std::unique_ptr<SealedSeries> Compress(CodecId id,
                                                std::span<const int64_t> values,
                                                const NeatsOptions& options) {
    return internal::WithCodecType(
        id, [&](auto t) -> std::unique_ptr<SealedSeries> {
          using C = typename decltype(t)::type;
          return std::make_unique<SealedCodec<C>>(id,
                                                  C::Compress(values, options));
        });
  }

  /// Opens a serialized blob. With allow_view (the caller keeps `bytes`
  /// alive and 8-byte-aligned — e.g. an mmap'd shard) codecs that support
  /// borrowing open zero-copy; everything else deserializes into owned
  /// storage. Throws on corrupt or mismatched blobs.
  static std::unique_ptr<SealedSeries> Open(CodecId id,
                                            std::span<const uint8_t> bytes,
                                            bool allow_view) {
    return internal::WithCodecType(
        id, [&](auto t) -> std::unique_ptr<SealedSeries> {
          using C = typename decltype(t)::type;
          C codec = (allow_view && C::kZeroCopyView) ? C::View(bytes)
                                                     : C::Deserialize(bytes);
          return std::make_unique<SealedCodec<C>>(id, std::move(codec));
        });
  }

  /// True when the codec's View borrows the caller's buffer (so an mmap'd
  /// shard should keep its mapping alive).
  static bool ZeroCopyView(CodecId id) {
    return internal::WithCodecType(id, [](auto t) {
      return decltype(t)::type::kZeroCopyView;
    });
  }

  /// Every registered codec id, in wire order.
  static std::vector<CodecId> All() {
    std::vector<CodecId> ids;
    ids.reserve(kNumCodecIds);
    for (uint32_t i = 0; i < kNumCodecIds; ++i) {
      ids.push_back(static_cast<CodecId>(i));
    }
    return ids;
  }
};

}  // namespace neats
