// GorillaCodec / ChimpCodec — the XOR-stream compressors adapted to the
// int64 SeriesCodec surface (codec ids 4 and 5).
//
// Gorilla and Chimp operate on raw 64-bit patterns (each value XOR-ed with a
// reference), so the adaptation is exact by construction: every int64 is
// bit_cast to a double on the way in and back on the way out — no numeric
// conversion, no exceptions list. The streams have no native random access,
// so they run block-wise (Blockwise, 1000 values per block, the paper's
// Sec. IV-A2 harness), with an intra-block skip index on top: every block
// carries the resumable decoder state (bit position, previous value, XOR
// window) at every kSkipInterval-th value, so
//
//   Access(k)        seeks to the nearest checkpoint at or before k and
//                    decodes at most kSkipInterval tokens — never a block;
//   AccessBatch      groups the (sorted) probes per block and walks one
//                    resumable cursor through each group, hopping over
//                    inter-probe gaps via the checkpoints — at most
//                    min(span, probes * kSkipInterval) tokens per block,
//                    mirroring the fragment-grouped Neats kernel;
//   DecompressRange  decodes each covered block once, from the checkpoint
//                    nearest its first needed value, straight into out.
//
// The skip index serializes additively as format v2 (FORMAT.md): a v1 blob
// still loads and rebuilds the index with one decode pass, and re-serializes
// to the same bytes a fresh v2 compression produces. Not zero-copy: blocks
// deserialize into owned vectors.
//
// These codecs earn their registry slot on step-and-repeat data: a repeated
// value costs Gorilla a single bit, which beats NeaTS's per-fragment
// function parameters when runs are short (see the mixed-codec store test).

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/blockwise.hpp"
#include "baselines/chimp.hpp"
#include "baselines/gorilla.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"
#include "succinct/storage.hpp"

namespace neats {

struct XorCodecTestPeer;

/// Exact int64 SeriesCodec over a block-wise XOR stream codec (Gorilla,
/// Chimp — anything with Compress(span<double>)/DecompressSlice/
/// BuildSkipIndex/SerializeInto).
template <typename Xor, uint64_t kMagic>
class XorSeriesCodec : public ScalarCodecBase<XorSeriesCodec<Xor, kMagic>> {
 public:
  XorSeriesCodec() = default;

  static constexpr bool kZeroCopyView = false;

  /// Checkpoint spacing of the skip index: the worst-case tokens decoded
  /// per scalar Access. 128 costs 3 words per checkpoint ≈ 1.5 bits/value
  /// at the default 1000-value blocks. Readers of format v2 require exactly
  /// this value — changing it is a format-version bump.
  static constexpr uint64_t kSkipInterval = 128;

  static XorSeriesCodec Compress(std::span<const int64_t> values,
                                 const NeatsOptions& options = {}) {
    (void)options;  // the XOR streams have no NeaTS-shaped knobs
    XorSeriesCodec out;
    out.n_ = values.size();
    std::vector<double> doubles(values.size());
    for (size_t k = 0; k < values.size(); ++k) {
      doubles[k] = std::bit_cast<double>(values[k]);
    }
    out.blocks_ = Blockwise<Xor>::Compress(doubles);
    out.BuildSkip();
    return out;
  }

  uint64_t size() const { return n_; }

  /// Values per independently-decodable block (the store's decoded-block
  /// cache keys on this geometry).
  uint64_t BlockValues() const { return blocks_.block_values(); }

  /// Fully decodes block b into out (sized BlockValues()); returns how many
  /// values it held (the last block may be partial).
  uint64_t DecodeBlock(uint64_t b, int64_t* out) const {
    const size_t count = blocks_.block_count(b);
    double buffer[kDefaultBlockValues];
    double* dst = buffer;
    std::vector<double> heap;
    if (count > kDefaultBlockValues) {  // non-default geometry from a blob
      heap.resize(count);
      dst = heap.data();
    }
    blocks_.block(b).DecompressSlice(0, count, nullptr, 0, dst);
    for (size_t j = 0; j < count; ++j) {
      out[j] = std::bit_cast<int64_t>(dst[j]);
    }
    return count;
  }

  /// One checkpoint seek + at most kSkipInterval decoded tokens.
  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    double v;
    DecodeInBlock(k / blocks_.block_values(), k % blocks_.block_values(), 1,
                  &v);
    return std::bit_cast<int64_t>(v);
  }

  /// Block-grouped batch kernel over non-decreasing probes: one resumable
  /// cursor per touched block walks the probes in order, hopping forward via
  /// the checkpoint index whenever a gap spans one and decoding straight
  /// through otherwise. A group therefore costs at most
  /// min(probe span, probes * kSkipInterval) decoded tokens — never more
  /// than serving the same probes scalar, minus the per-probe reader setup.
  void AccessBatch(std::span<const uint64_t> idx, int64_t* out) const {
    const uint64_t bv = blocks_.block_values();
    size_t p = 0;
    while (p < idx.size()) {
      const uint64_t b = idx[p] / bv;
      const uint64_t block_end = (b + 1) * bv;
      const auto& blk = blocks_.block(b);
      const auto& cps = skip_[b];
      auto cur = blk.Head();
      double v = 0;  // the value at cur.i - 1, once one has been decoded
      for (; p < idx.size() && idx[p] < block_end; ++p) {
        const size_t k = static_cast<size_t>(idx[p] - b * bv);
        if (k + 1 != cur.i) {  // else: duplicate of the previous probe
          const size_t ci = std::min(k / kSkipInterval, cps.size());
          if (ci > 0 && ci * kSkipInterval > cur.i) {
            blk.Seek(cur, cps[ci - 1], ci * kSkipInterval);
          }
          while (cur.i <= k) v = blk.Next(cur);
        }
        out[p] = std::bit_cast<int64_t>(v);
      }
    }
  }

  /// Decodes each covered block once — from the checkpoint nearest the
  /// slice's first value, not from the block head — and emits the slice.
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    if (len == 0) return;
    NEATS_DCHECK(from + len <= n_);
    const uint64_t bv = blocks_.block_values();
    std::vector<double> buf;
    uint64_t produced = 0;
    while (produced < len) {
      const uint64_t b = (from + produced) / bv;
      const size_t offset = static_cast<size_t>((from + produced) - b * bv);
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(len - produced, blocks_.block_count(b) - offset));
      buf.resize(take);
      DecodeInBlock(b, offset, take, buf.data());
      for (size_t j = 0; j < take; ++j) {
        out[produced + j] = std::bit_cast<int64_t>(buf[j]);
      }
      produced += take;
    }
  }

  size_t SizeInBits() const {
    size_t skip_words = 0;
    for (const auto& cps : skip_) skip_words += 3 * cps.size();
    return blocks_.SizeInBits() + (skip_words + 2) * 64 + 2 * 64;
  }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    blocks_.SerializeInto(w);
    // v2 skip-index section (additive; FORMAT.md "XOR-stream blob"): the
    // checkpoint geometry is derivable from the block geometry, so only
    // the interval, a total count (a cheap load-time tripwire) and the
    // flat per-block checkpoint triples go on the wire.
    w.Put(kSkipInterval);
    uint64_t total = 0;
    for (const auto& cps : skip_) total += cps.size();
    w.Put(total);
    for (const auto& cps : skip_) {
      for (const auto& s : cps) {
        w.Put(s.bit_pos);
        w.Put(s.prev);
        w.Put((static_cast<uint64_t>(static_cast<uint32_t>(s.lz)) << 32) |
              static_cast<uint32_t>(s.tz));
      }
    }
  }

  static XorSeriesCodec Deserialize(std::span<const uint8_t> bytes) {
    WordReader r(bytes, /*borrow=*/false);
    NEATS_REQUIRE(r.Get() == kMagic, "not a XOR-stream blob");
    const uint64_t version = r.Get();
    NEATS_REQUIRE(version == 1 || version == kFormatVersion,
                  "unsupported XOR-stream format version");
    XorSeriesCodec out;
    out.blocks_ = Blockwise<Xor>::LoadFrom(r);
    out.n_ = out.blocks_.size();
    if (version == 1) {
      // Pre-skip-index blob: rebuild the index with one decode pass per
      // block; re-serializing writes it back as v2.
      out.BuildSkip();
    } else {
      NEATS_REQUIRE(r.Get() == kSkipInterval,
                    "unsupported XOR-stream skip interval");
      const uint64_t total = r.Get();
      uint64_t expect = 0;
      for (size_t b = 0; b < out.blocks_.num_blocks(); ++b) {
        expect += (out.blocks_.block_count(b) - 1) / kSkipInterval;
      }
      NEATS_REQUIRE(total == expect, "corrupt XOR-stream skip index");
      out.skip_.resize(out.blocks_.num_blocks());
      for (size_t b = 0; b < out.blocks_.num_blocks(); ++b) {
        const size_t count = (out.blocks_.block_count(b) - 1) / kSkipInterval;
        out.skip_[b].reserve(count);
        for (size_t j = 0; j < count; ++j) {
          typename Xor::SkipState s;
          s.bit_pos = r.Get();
          s.prev = r.Get();
          const uint64_t packed = r.Get();
          s.lz = static_cast<int32_t>(static_cast<uint32_t>(packed >> 32));
          s.tz = static_cast<int32_t>(static_cast<uint32_t>(packed));
          // A forged checkpoint may decode garbage values, but it must
          // never be able to drive the decoder out of bounds.
          NEATS_REQUIRE(out.blocks_.block(b).CheckSkipState(s),
                        "corrupt XOR-stream skip index");
          out.skip_[b].push_back(s);
        }
      }
    }
    NEATS_REQUIRE(r.position() == bytes.size(), "corrupt XOR-stream blob");
    return out;
  }

  /// The blocks deserialize into owned vectors, so View is an owning load.
  static XorSeriesCodec View(std::span<const uint8_t> bytes) {
    return Deserialize(bytes);
  }

 private:
  friend struct XorCodecTestPeer;

  static constexpr uint64_t kFormatVersion = 2;

  /// Decodes `count` values starting at block-local index `from_local` of
  /// block b, resuming from the nearest checkpoint at or before it.
  void DecodeInBlock(size_t b, size_t from_local, size_t count,
                     double* out) const {
    const auto& cps = skip_[b];
    size_t ci = from_local / kSkipInterval;  // 0 = start from the head
    if (ci > cps.size()) ci = cps.size();
    if (ci == 0) {
      blocks_.block(b).DecompressSlice(from_local, count, nullptr, 0, out);
    } else {
      blocks_.block(b).DecompressSlice(from_local, count, &cps[ci - 1],
                                       ci * kSkipInterval, out);
    }
  }

  void BuildSkip() {
    skip_.assign(blocks_.num_blocks(), {});
    for (size_t b = 0; b < blocks_.num_blocks(); ++b) {
      blocks_.block(b).BuildSkipIndex(kSkipInterval, &skip_[b]);
    }
  }

  uint64_t n_ = 0;
  Blockwise<Xor> blocks_;
  std::vector<std::vector<typename Xor::SkipState>> skip_;  // per block
};

using GorillaCodec = XorSeriesCodec<Gorilla, MagicWord("NEATSGO\0")>;
using ChimpCodec = XorSeriesCodec<Chimp, MagicWord("NEATSCH\0")>;

static_assert(SeriesCodec<GorillaCodec>);
static_assert(SeriesCodec<ChimpCodec>);

/// Test-only back door: writes the legacy v1 framing (no skip-index
/// section) so migration tests can exercise the v1 -> v2 load path without
/// keeping binary fixtures around.
struct XorCodecTestPeer {
  template <typename Xor, uint64_t kMagic>
  static void SerializeV1(const XorSeriesCodec<Xor, kMagic>& c,
                          std::vector<uint8_t>* out) {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(uint64_t{1});
    c.blocks_.SerializeInto(w);
  }
};

}  // namespace neats
