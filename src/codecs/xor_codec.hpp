// GorillaCodec / ChimpCodec — the XOR-stream compressors adapted to the
// int64 SeriesCodec surface (codec ids 4 and 5).
//
// Gorilla and Chimp operate on raw 64-bit patterns (each value XOR-ed with a
// reference), so the adaptation is exact by construction: every int64 is
// bit_cast to a double on the way in and back on the way out — no numeric
// conversion, no exceptions list. The streams have no native random access,
// so they run block-wise (Blockwise, 1000 values per block, the paper's
// Sec. IV-A2 harness): Access decodes the containing block, DecompressRange
// decodes each covered block once. Not zero-copy: blocks deserialize into
// owned vectors.
//
// These codecs earn their registry slot on step-and-repeat data: a repeated
// value costs Gorilla a single bit, which beats NeaTS's per-fragment
// function parameters when runs are short (see the mixed-codec store test).

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/blockwise.hpp"
#include "baselines/chimp.hpp"
#include "baselines/gorilla.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/series_codec.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Exact int64 SeriesCodec over a block-wise XOR stream codec (Gorilla,
/// Chimp — anything with Compress(span<double>)/Decompress/SerializeInto).
template <typename Xor, uint64_t kMagic>
class XorSeriesCodec : public ScalarCodecBase<XorSeriesCodec<Xor, kMagic>> {
 public:
  XorSeriesCodec() = default;

  static constexpr bool kZeroCopyView = false;

  static XorSeriesCodec Compress(std::span<const int64_t> values,
                                 const NeatsOptions& options = {}) {
    (void)options;  // the XOR streams have no NeaTS-shaped knobs
    XorSeriesCodec out;
    out.n_ = values.size();
    std::vector<double> doubles(values.size());
    for (size_t k = 0; k < values.size(); ++k) {
      doubles[k] = std::bit_cast<double>(values[k]);
    }
    out.blocks_ = Blockwise<Xor>::Compress(doubles);
    return out;
  }

  uint64_t size() const { return n_; }

  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    return std::bit_cast<int64_t>(blocks_.Access(k));
  }

  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    if (len == 0) return;
    NEATS_DCHECK(from + len <= n_);
    std::vector<double> buffer(len);
    blocks_.DecompressRange(from, len, buffer.data());
    for (uint64_t j = 0; j < len; ++j) {
      out[j] = std::bit_cast<int64_t>(buffer[j]);
    }
  }

  size_t SizeInBits() const { return blocks_.SizeInBits() + 2 * 64; }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    blocks_.SerializeInto(w);
  }

  static XorSeriesCodec Deserialize(std::span<const uint8_t> bytes) {
    WordReader r(bytes, /*borrow=*/false);
    NEATS_REQUIRE(r.Get() == kMagic, "not a XOR-stream blob");
    NEATS_REQUIRE(r.Get() == kFormatVersion,
                  "unsupported XOR-stream format version");
    XorSeriesCodec out;
    out.blocks_ = Blockwise<Xor>::LoadFrom(r);
    NEATS_REQUIRE(r.position() == bytes.size(), "corrupt XOR-stream blob");
    out.n_ = out.blocks_.size();
    return out;
  }

  /// The blocks deserialize into owned vectors, so View is an owning load.
  static XorSeriesCodec View(std::span<const uint8_t> bytes) {
    return Deserialize(bytes);
  }

 private:
  static constexpr uint64_t kFormatVersion = 1;

  uint64_t n_ = 0;
  Blockwise<Xor> blocks_;
};

using GorillaCodec = XorSeriesCodec<Gorilla, MagicWord("NEATSGO\0")>;
using ChimpCodec = XorSeriesCodec<Chimp, MagicWord("NEATSCH\0")>;

static_assert(SeriesCodec<GorillaCodec>);
static_assert(SeriesCodec<ChimpCodec>);

}  // namespace neats
