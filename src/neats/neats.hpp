// neats/neats.hpp — the stable public umbrella of the library.
//
// One include pulls in the whole serving stack: the NeaTS core (lossless +
// lossy), the SeriesCodec concept and registry, the sharded NeatsStore, and
// the I/O helpers. On top it adds the Status / Result error surface: the
// library's internal contract is "corrupt input throws neats::Error", and
// the facade's open/load entry points catch at the boundary and hand back a
// Status instead — so applications choose between exceptions and
// status-checking without the core paying for both.
//
//   neats::Result<neats::NeatsStore> store = neats::OpenStoreDir(dir);
//   if (!store.ok()) { log(store.status().message()); return; }
//   int64_t v = store->Access(42);
//
// Everything the facade returns is fully constructed or not returned at
// all; a failed open leaves no half-open state behind.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "codecs/codec_registry.hpp"
#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "core/neats_lossy.hpp"
#include "core/series_codec.hpp"
#include "io/checksum.hpp"
#include "io/fs.hpp"
#include "io/manifest.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"
#include "store/neats_store.hpp"
#include "store/wal.hpp"

namespace neats {

/// The outcome of a facade operation: OK, or a failure with a message
/// (the text of the NEATS_REQUIRE that rejected the input) and a coarse
/// StatusCode (common/assert.hpp) — kIo for filesystem failures,
/// kUnavailable when a query routed into a quarantined shard, kDegraded
/// for reports on a partially-healthy store, kFailed otherwise.
class Status {
 public:
  Status() = default;  // OK

  static Status Ok() { return Status(); }
  static Status Failure(std::string message,
                        StatusCode code = StatusCode::kFailed) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kFailed : code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status plus, on success, a value of type T (move-only friendly).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                 // NOLINT
  Result(Status status) : status_(std::move(status)) {          // NOLINT
    NEATS_DCHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    NEATS_REQUIRE(ok(), "Result::value() on a failed Result");
    return *value_;
  }
  const T& value() const {
    NEATS_REQUIRE(ok(), "Result::value() on a failed Result");
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Runs `fn` and converts a thrown neats::Error (or any std::exception)
/// into a failed Result — the boundary adapter every facade entry point is
/// built from. Useful directly for one-off guarded calls:
///
///   auto r = neats::Checked([&] { return Neats::Deserialize(bytes); });
template <typename F>
auto Checked(F&& fn) -> Result<decltype(fn())> {
  try {
    return Result<decltype(fn())>(fn());
  } catch (const Error& e) {
    return Result<decltype(fn())>(Status::Failure(e.what(), e.code()));
  } catch (const std::exception& e) {
    return Result<decltype(fn())>(Status::Failure(e.what()));
  }
}

/// Status-returning variant of Checked for void operations.
template <typename F>
Status CheckedStatus(F&& fn) {
  try {
    fn();
    return Status::Ok();
  } catch (const Error& e) {
    return Status::Failure(e.what(), e.code());
  } catch (const std::exception& e) {
    return Status::Failure(e.what());
  }
}

/// Opens a flushed store directory (NeatsStore::OpenDir behind a Status).
inline Result<NeatsStore> OpenStoreDir(const std::string& dir,
                                       const NeatsStoreOptions& options = {}) {
  return Checked([&] { return NeatsStore::OpenDir(dir, options); });
}

/// Creates a fresh directory-backed store (NeatsStore::CreateDir behind a
/// Status; fails if the directory already holds a store).
inline Result<NeatsStore> CreateStoreDir(
    const std::string& dir, const NeatsStoreOptions& options = {}) {
  return Checked([&] { return NeatsStore::CreateDir(dir, options); });
}

/// Flushes a store, reporting write failures as a Status.
inline Status FlushStore(NeatsStore& store) {
  return CheckedStatus([&] { store.Flush(); });
}

/// Scrubs a directory-backed store — re-verifies every shard blob and
/// repairs quarantined shards from the WAL where possible (see
/// NeatsStore::Scrub). Returns OK when the store ends fully healthy, and a
/// kDegraded Status naming the still-quarantined shards otherwise.
inline Status ScrubStore(NeatsStore& store) {
  return CheckedStatus([&] {
    const NeatsStore::RepairReport& report = store.Scrub();
    if (!report.quarantined.empty()) {
      std::string msg = "store is degraded; quarantined shard(s):";
      for (const auto& q : report.quarantined) {
        msg += " " + std::to_string(q.shard);
      }
      throw Error(msg, StatusCode::kDegraded);
    }
  });
}

/// A NeaTS blob opened from a file: the mapping and the series borrowing
/// it. Move-only; the mapping's buffer is address-stable across moves, so
/// the borrowed spans stay valid.
struct MappedSeries {
  MmapFile map;
  Neats series;
  bool zero_copy = false;  // false = legacy v1 blob, deserialized
};

/// Opens a serialized NeaTS blob file for querying: flat-format (v2/v3)
/// blobs are mmap'd and served zero-copy, legacy v1 blobs fall back to an
/// owning load.
inline Result<MappedSeries> OpenSeriesFile(const std::string& path) {
  return Checked([&] {
    MappedSeries opened;
    opened.map = MmapFile::Open(path);
    if (Neats::IsZeroCopyOpenable(opened.map.bytes())) {
      opened.series = Neats::View(opened.map.bytes());
      opened.zero_copy = true;
    } else {
      opened.series = Neats::Deserialize(opened.map.bytes());
    }
    return opened;
  });
}

/// Loads a serialized NeaTS blob file into owned storage.
inline Result<Neats> LoadSeriesFile(const std::string& path) {
  return Checked([&] {
    std::vector<uint8_t> bytes = ReadFile(path);
    return Neats::Deserialize(bytes);
  });
}

/// Loads a one-value-per-line decimal text file (the paper's dataset
/// format) behind a Status.
inline Result<ParsedSeries> LoadDecimalSeries(const std::string& path) {
  return Checked([&] { return LoadDecimalFile(path); });
}

}  // namespace neats
