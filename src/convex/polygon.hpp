// Feasible-parameter convex polygon — the generalised O'Rourke algorithm.
//
// Computing the longest fragment that admits an eps-approximation by a
// two-parameter function reduces (paper, Theorem 1) to maintaining the convex
// region of parameters (m, b) satisfying
//
//     alpha_k <= t_k * m + b <= omega_k      for every covered point k,
//
// where t_k is strictly increasing in k. Each point contributes two parallel
// half-planes whose boundary slope -t_k is more negative than every edge of
// the current polygon (O'Rourke, Lemma 1), so the upper constraint only ever
// clips the right end of the polygon and the lower constraint the left end.
// This class maintains the polygon as two monotone chains (concave top,
// convex bottom, sharing their extreme vertices) stored in deques, achieving
// O(1) amortised cost per added point.
//
// Emptiness is detected in O(1) before mutating: along every edge the linear
// functional g(m, b) = t*m + b (for the incoming t) is strictly increasing
// left-to-right, hence g ranges over [g(leftmost), g(rightmost)] on the whole
// polygon, and the new constraint pair is satisfiable iff that interval
// intersects [alpha, omega].

#pragma once

#include <cstddef>
#include <deque>

#include "common/assert.hpp"

namespace neats {

/// A point in the transformed parameter space (m horizontal, b vertical).
struct DualPoint {
  long double m;
  long double b;
};

/// Convex polygon of feasible (m, b) parameter pairs under constraints
/// alpha_k <= t_k*m + b <= omega_k with strictly increasing t_k.
class FeasiblePolygon {
 public:
  FeasiblePolygon() = default;

  /// Removes all constraints.
  void Reset() {
    num_constraints_ = 0;
    top_.clear();
    bottom_.clear();
  }

  /// Tries to add the constraint alpha <= t*m + b <= omega.
  /// Requires alpha <= omega and t strictly greater than any t added before.
  /// Returns true on success; returns false (leaving the polygon unchanged)
  /// if the constraint would make the feasible set empty.
  bool AddConstraint(long double t, long double alpha, long double omega) {
    NEATS_DCHECK(alpha <= omega);
    if (num_constraints_ == 0) {
      strip_t_ = t;
      strip_alpha_ = alpha;
      strip_omega_ = omega;
      ++num_constraints_;
      return true;
    }
    if (num_constraints_ == 1) {
      // The first constraint defines an unbounded strip; the second bounds it
      // into a parallelogram (the strips are not parallel since t differs).
      NEATS_DCHECK(t > strip_t_);
      DualPoint lv = Corner(strip_omega_, t, alpha);     // on upper0, lower1
      DualPoint rv = Corner(strip_alpha_, t, omega);     // on lower0, upper1
      DualPoint top_mid = Corner(strip_omega_, t, omega);
      DualPoint bottom_mid = Corner(strip_alpha_, t, alpha);
      top_ = {lv, top_mid, rv};
      bottom_ = {lv, bottom_mid, rv};
      ++num_constraints_;
      return true;
    }

    // General case: O(1) emptiness test via the functional g = t*m + b.
    const DualPoint& lv = top_.front();
    const DualPoint& rv = top_.back();
    long double g_min = t * lv.m + lv.b;
    long double g_max = t * rv.m + rv.b;
    if (g_min > omega || g_max < alpha) return false;

    if (g_max > omega) ClipRight(t, omega);
    if (g_min < alpha) ClipLeft(t, alpha);
    ++num_constraints_;
    return true;
  }

  /// Returns a feasible (m, b). Requires at least one constraint.
  DualPoint PickPoint() const {
    NEATS_REQUIRE(num_constraints_ > 0, "no constraints added");
    if (num_constraints_ == 1) {
      // Strip: m = 0 works since alpha <= b <= omega is satisfiable directly.
      return {0.0L, (strip_alpha_ + strip_omega_) / 2.0L};
    }
    const DualPoint& lv = top_.front();
    const DualPoint& rv = top_.back();
    // The segment between the two extreme vertices lies inside the polygon.
    return {(lv.m + rv.m) / 2.0L, (lv.b + rv.b) / 2.0L};
  }

  size_t num_constraints() const { return num_constraints_; }

 private:
  // Intersection of b = -t0*m + c0 with b = -t1*m + c1 (t0 != t1).
  DualPoint Corner(long double c0, long double t1, long double c1) const {
    long double m = (c1 - c0) / (t1 - strip_t_);
    return {m, -strip_t_ * m + c0};
  }

  // Crossing of the segment a->b (with g(a) <= bound < g(b)) with the line
  // g(m, b) = t*m + b = bound.
  static DualPoint Crossing(const DualPoint& a, const DualPoint& b,
                            long double t, long double bound) {
    long double ga = t * a.m + a.b;
    long double gb = t * b.m + b.b;
    long double s = (bound - ga) / (gb - ga);
    return {a.m + s * (b.m - a.m), a.b + s * (b.b - a.b)};
  }

  // Applies b <= -t*m + omega, i.e. keeps g = t*m + b <= omega.
  // Precondition: g(leftmost) <= omega < g(rightmost).
  void ClipRight(long double t, long double omega) {
    auto g = [t](const DualPoint& p) { return t * p.m + p.b; };
    DualPoint popped_top = top_.back();
    top_.pop_back();
    while (g(top_.back()) > omega) {
      popped_top = top_.back();
      top_.pop_back();
    }
    DualPoint cross_top = Crossing(top_.back(), popped_top, t, omega);
    DualPoint popped_bottom = bottom_.back();
    bottom_.pop_back();
    while (g(bottom_.back()) > omega) {
      popped_bottom = bottom_.back();
      bottom_.pop_back();
    }
    DualPoint cross_bottom = Crossing(bottom_.back(), popped_bottom, t, omega);
    // New rightmost vertex is the bottom-chain crossing; the final top edge
    // runs along the clip line from the top crossing to it.
    top_.push_back(cross_top);
    top_.push_back(cross_bottom);
    bottom_.push_back(cross_bottom);
  }

  // Applies b >= -t*m + alpha, i.e. keeps g = t*m + b >= alpha.
  // Precondition: g(leftmost) < alpha <= g(rightmost).
  void ClipLeft(long double t, long double alpha) {
    auto g = [t](const DualPoint& p) { return t * p.m + p.b; };
    DualPoint popped_top = top_.front();
    top_.pop_front();
    while (g(top_.front()) < alpha) {
      popped_top = top_.front();
      top_.pop_front();
    }
    DualPoint cross_top = Crossing(top_.front(), popped_top, t, alpha);
    DualPoint popped_bottom = bottom_.front();
    bottom_.pop_front();
    while (g(bottom_.front()) < alpha) {
      popped_bottom = bottom_.front();
      bottom_.pop_front();
    }
    DualPoint cross_bottom = Crossing(bottom_.front(), popped_bottom, t, alpha);
    // New leftmost vertex is the top-chain crossing; the first bottom edge
    // runs along the clip line from it to the bottom crossing.
    bottom_.push_front(cross_bottom);
    bottom_.push_front(cross_top);
    top_.push_front(cross_top);
  }

  size_t num_constraints_ = 0;
  long double strip_t_ = 0;
  long double strip_alpha_ = 0;
  long double strip_omega_ = 0;
  std::deque<DualPoint> top_;     // concave chain, shared extremes with bottom_
  std::deque<DualPoint> bottom_;  // convex chain
};

}  // namespace neats
