// The per-query flight recorder: a fixed-size lock-free ring of recent
// trace events (op kind, shard, codec, tier hit, duration, status), so a
// kUnavailable burst or a quarantined scenario comes with its last-N-
// operations context instead of a bare error string.
//
// Concurrency model: writers claim a slot with one relaxed fetch_add on
// the global ticket counter, then publish through a per-slot seqlock (odd
// version = write in progress). Every slot field is a relaxed atomic word,
// so concurrent readers and lapping writers are race-free under TSan; a
// reader that observes a version change mid-copy discards that slot, and a
// writer that would lap a still-writing slot drops its event rather than
// blocking (the ring is diagnostics, not an audit log — under pathological
// lapping pressure losing one event beats stalling a query). Dump() is
// wait-free for writers and returns events oldest-first.
//
// The store records into the ring only on sampled ops, cold-path ops
// (append/flush/seal/scrub), and every error — so the hot access path pays
// the fetch_add only when it is being timed anyway.

#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace neats::obs {

/// Which serving tier answered an access-class op.
enum class TraceTier : uint8_t {
  kNone = 0,   // not applicable (append, flush, errors before routing)
  kSealed,     // a sealed shard's native codec path
  kCacheHit,   // decoded-block cache hit
  kCacheMiss,  // decoded-block cache miss (block decoded + inserted)
  kPending,    // raw values of a chunk still sealing
  kTail,       // raw hot tail
};

inline const char* TraceTierName(TraceTier t) {
  switch (t) {
    case TraceTier::kNone: return "-";
    case TraceTier::kSealed: return "sealed";
    case TraceTier::kCacheHit: return "cache_hit";
    case TraceTier::kCacheMiss: return "cache_miss";
    case TraceTier::kPending: return "pending";
    case TraceTier::kTail: return "tail";
  }
  return "?";
}

/// One decoded trace event (the ring stores it packed).
struct TraceEvent {
  uint64_t seq = 0;       // global op ticket; orders events across threads
  EventId op = EventId::kAccess;
  TraceTier tier = TraceTier::kNone;
  uint16_t status = 0;    // 0 = ok; else the neats::StatusCode numeric
  uint32_t codec = kNoCodec;  // CodecId numeric, kNoCodec when unrouted
  uint64_t shard = kNoShard;  // shard ordinal, kNoShard when unrouted
  uint64_t arg = 0;       // op argument: index / range start / value count
  uint32_t len = 0;       // probe or value count (saturated)
  uint32_t duration_ns = 0;  // 0 when untimed (error events), saturated

  static constexpr uint32_t kNoCodec = 0xffffffffu;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit FlightRecorder(size_t capacity)
      : slots_(std::bit_ceil(std::max<size_t>(capacity, 2))) {}

  size_t capacity() const { return slots_.size(); }

  /// Total events ever recorded (including any dropped by lapping).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }

  void Record(EventId op, TraceTier tier, uint16_t status, uint32_t codec,
              uint64_t shard, uint64_t arg, uint64_t len, uint64_t dur_ns) {
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & (slots_.size() - 1)];
    uint64_t v = s.ver.load(std::memory_order_relaxed);
    if ((v & 1) != 0) return;  // lapped a mid-write slot: drop, don't block
    if (!s.ver.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    s.seq.store(ticket, std::memory_order_relaxed);
    s.meta.store(Pack(op, tier, status, codec), std::memory_order_relaxed);
    s.shard.store(shard, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.lendur.store(Saturate32(len) | (uint64_t{Saturate32(dur_ns)} << 32),
                   std::memory_order_relaxed);
    s.ver.store(v + 2, std::memory_order_release);
  }

  /// A consistent copy of the ring's surviving events, oldest-first. Safe
  /// concurrently with writers; slots caught mid-write are skipped.
  std::vector<TraceEvent> Dump() const {
    std::vector<TraceEvent> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        const uint64_t v1 = s.ver.load(std::memory_order_acquire);
        if (v1 == 0) break;        // never written
        if ((v1 & 1) != 0) continue;  // mid-write; retry
        TraceEvent e;
        e.seq = s.seq.load(std::memory_order_relaxed);
        const uint64_t meta = s.meta.load(std::memory_order_relaxed);
        e.shard = s.shard.load(std::memory_order_relaxed);
        e.arg = s.arg.load(std::memory_order_relaxed);
        const uint64_t lendur = s.lendur.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.ver.load(std::memory_order_relaxed) != v1) continue;
        e.op = static_cast<EventId>(meta & 0xff);
        e.tier = static_cast<TraceTier>((meta >> 8) & 0xff);
        e.status = static_cast<uint16_t>((meta >> 16) & 0xffff);
        e.codec = static_cast<uint32_t>(meta >> 32);
        e.len = static_cast<uint32_t>(lendur & 0xffffffffu);
        e.duration_ns = static_cast<uint32_t>(lendur >> 32);
        out.push_back(e);
        break;
      }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    return out;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> ver{0};  // seqlock: odd = write in progress
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> meta{0};
    std::atomic<uint64_t> shard{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint64_t> lendur{0};
  };

  static uint64_t Pack(EventId op, TraceTier tier, uint16_t status,
                       uint32_t codec) {
    return static_cast<uint64_t>(op) |
           (static_cast<uint64_t>(tier) << 8) |
           (static_cast<uint64_t>(status) << 16) |
           (static_cast<uint64_t>(codec) << 32);
  }

  static uint32_t Saturate32(uint64_t v) {
    return v > 0xffffffffu ? 0xffffffffu : static_cast<uint32_t>(v);
  }

  std::atomic<uint64_t> next_{0};
  std::vector<Slot> slots_;
};

/// The last `limit` events as human-readable lines (the payload of a
/// dump-on-quarantine log event, and `neats_cli stats` output).
inline std::string TraceText(const std::vector<TraceEvent>& events,
                             size_t limit = 16) {
  std::string out;
  const size_t begin = events.size() > limit ? events.size() - limit : 0;
  for (size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  #" + std::to_string(e.seq) + " " + EventName(e.op) +
           " tier=" + TraceTierName(e.tier);
    if (e.shard != kNoShard) out += " shard=" + std::to_string(e.shard);
    out += " arg=" + std::to_string(e.arg) +
           " len=" + std::to_string(e.len) +
           " dur_ns=" + std::to_string(e.duration_ns) +
           " status=" + std::to_string(e.status) + "\n";
  }
  if (out.empty()) out = "  (no trace events recorded)\n";
  return out;
}

}  // namespace neats::obs
