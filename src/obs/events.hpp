// Event identifiers shared by the whole observability layer: the flight
// recorder stamps each trace event with one, the structured log hook
// (obs::LogSink) reports warnings under one, and the store's RepairReport
// carries the same ids — so a quarantine seen in a log line, a trace dump,
// and recovery_report() is one identity, not three spellings.

#pragma once

#include <cstdint>

namespace neats::obs {

/// What happened. The first block is query/ingest op kinds (the flight
/// recorder's bread and butter); the second is lifecycle/recovery events
/// that also flow through the log sink.
enum class EventId : uint8_t {
  // Op kinds.
  kAccess = 0,
  kAccessBatch,
  kRange,        // DecompressRange / DecompressRanges
  kRangeSum,
  kApproxRangeSum,
  kAppend,
  kFlush,
  kSeal,
  kScrub,
  // Lifecycle / recovery.
  kWalReplay,        // records replayed at OpenDir
  kWalTorn,          // torn final WAL record discarded
  kWalGap,           // unanchored WAL records discarded
  kQuarantine,       // a shard stopped serving
  kQuarantineLift,   // Scrub returned a shard to service
  kScrubRepair,      // one shard re-sealed from the WAL
  kOpenWarning,      // any other non-fatal OpenDir note
  kTraceDump,        // a flight-recorder dump emitted to the log sink
};

inline const char* EventName(EventId id) {
  switch (id) {
    case EventId::kAccess: return "access";
    case EventId::kAccessBatch: return "access_batch";
    case EventId::kRange: return "range";
    case EventId::kRangeSum: return "range_sum";
    case EventId::kApproxRangeSum: return "approx_range_sum";
    case EventId::kAppend: return "append";
    case EventId::kFlush: return "flush";
    case EventId::kSeal: return "seal";
    case EventId::kScrub: return "scrub";
    case EventId::kWalReplay: return "wal_replay";
    case EventId::kWalTorn: return "wal_torn";
    case EventId::kWalGap: return "wal_gap";
    case EventId::kQuarantine: return "quarantine";
    case EventId::kQuarantineLift: return "quarantine_lift";
    case EventId::kScrubRepair: return "scrub_repair";
    case EventId::kOpenWarning: return "open_warning";
    case EventId::kTraceDump: return "trace_dump";
  }
  return "unknown";
}

enum class Severity : uint8_t { kInfo = 0, kWarn, kError };

inline const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "I";
    case Severity::kWarn: return "W";
    case Severity::kError: return "E";
  }
  return "?";
}

/// "No shard" sentinel for events not tied to one shard.
inline constexpr uint64_t kNoShard = ~uint64_t{0};

}  // namespace neats::obs
