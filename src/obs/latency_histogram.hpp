// A log-linear latency histogram — the percentile primitive shared by the
// observability layer (src/obs/metrics.hpp) and the scenario engine's
// per-op reporting. Promoted here from src/scenario/ once the store itself
// grew latency metrics; scenario code keeps a compatibility alias.
//
// HDR-style bucketing: values below 2^kSubBits land in exact unit buckets;
// above that, each power-of-two octave is split into 2^kSubBits sub-buckets,
// so the relative quantization error is bounded by 2^-kSubBits (~3% at the
// default) across the whole nanosecond range. Recording is one shift + one
// increment — cheap enough to sit inside a per-op timing loop — and
// instances merge bucket-wise, which is how both consumers aggregate:
// scenario worker threads own private histograms and merge after joining;
// the metrics registry keeps per-thread atomic bucket shards and merges
// them into a plain histogram at snapshot time (AccumulateBucket /
// AccumulateSummary below are that merge's entry points).
//
// Empty-histogram contract: every percentile of an empty histogram is 0 —
// never the clamp max, never a bucket representative. Snapshots taken
// before any op ran must read as "no data", not as a latency.

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace neats::obs {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave, ~3% relative
  /// error on every reported percentile.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSub = uint64_t{1} << kSubBits;
  // Octave 0 holds [0, kSub) exactly; every higher msb position gets its
  // own octave, so any uint64 value is representable.
  static constexpr size_t kNumBuckets = (64 - kSubBits + 1) * kSub;

  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  /// Records one sample (nanoseconds by convention, but unit-agnostic).
  void Record(uint64_t v) {
    ++buckets_[BucketOf(v)];
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
  }

  /// Bucket-wise merge; the result reports over both sample sets.
  void Merge(const LatencyHistogram& o) {
    for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
  }

  /// Raw-merge entry points for the sharded recorder (metrics.hpp): fold in
  /// `n` samples already attributed to bucket `b`, then the shard's sum/max
  /// once. Equivalent to Merge() against the shard's logical histogram.
  void AccumulateBucket(size_t b, uint64_t n) {
    NEATS_DCHECK(b < kNumBuckets);
    buckets_[b] += n;
    count_ += n;
  }
  void AccumulateSummary(uint64_t sum, uint64_t max) {
    sum_ += sum;
    max_ = std::max(max_, max);
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// The q-quantile (q in [0, 1]) as a representative value of the bucket
  /// holding the sample of that rank: exact below 2^kSubBits, bucket
  /// midpoint (±~3%) above, clamped to the exact max so the tail quantiles
  /// never report past an observed value. Every quantile of an empty
  /// histogram is 0 (see the header comment; obs_test pins this).
  uint64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested sample, 1-based; q = 0.5 of 10 samples -> 5th.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    rank = std::clamp<uint64_t>(rank, 1, count_);
    uint64_t seen = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) return std::min(Representative(b), max_);
    }
    return max_;  // unreachable with count_ > 0
  }

  uint64_t p50() const { return Percentile(0.50); }
  uint64_t p99() const { return Percentile(0.99); }
  uint64_t p999() const { return Percentile(0.999); }

  /// The bucket a value lands in — public so the per-thread metric shards
  /// can bucket at record time and merge bucket-wise at snapshot time.
  static size_t BucketOf(uint64_t v) {
    if (v < kSub) return static_cast<size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int octave = msb - kSubBits + 1;  // >= 1 here
    const uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
    return static_cast<size_t>(octave) * kSub + static_cast<size_t>(sub);
  }

 private:
  /// Midpoint of bucket b's value range (its exact value in octave 0).
  static uint64_t Representative(size_t b) {
    const uint64_t octave = b >> kSubBits;
    const uint64_t sub = b & (kSub - 1);
    if (octave == 0) return sub;
    const uint64_t width = uint64_t{1} << (octave - 1);
    const uint64_t low = (kSub + sub) << (octave - 1);
    return low + width / 2;
  }

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace neats::obs
