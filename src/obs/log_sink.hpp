// The structured log hook: every quarantine, Scrub repair, and WAL-replay
// warning the store used to keep only in RepairReport strings also flows
// through one LogSink callback, so embedders can capture recovery events
// (ship them to their own logger, count them, assert on them in tests)
// instead of scraping stderr. The default sink prints one line per event
// to stderr; NeatsStoreOptions::log_sink replaces it.

#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "obs/events.hpp"

namespace neats::obs {

/// One structured log event. `shard` is kNoShard when the event is not
/// about a specific shard.
struct LogEvent {
  EventId id = EventId::kOpenWarning;
  Severity severity = Severity::kWarn;
  uint64_t shard = kNoShard;
  std::string message;
};

using LogSink = std::function<void(const LogEvent&)>;

/// The default sink: one "[neats] <sev> <event> [shard=N]: message" line on
/// stderr per event.
inline void StderrLog(const LogEvent& e) {
  if (e.shard == kNoShard) {
    std::fprintf(stderr, "[neats] %s %s: %s\n", SeverityName(e.severity),
                 EventName(e.id), e.message.c_str());
  } else {
    std::fprintf(stderr, "[neats] %s %s shard=%llu: %s\n",
                 SeverityName(e.severity), EventName(e.id),
                 static_cast<unsigned long long>(e.shard),
                 e.message.c_str());
  }
}

/// A sink that drops everything — for tests and tools that want silence.
inline LogSink NullLogSink() {
  return [](const LogEvent&) {};
}

}  // namespace neats::obs
