// Serializers for a MetricsSnapshot: a JSON object (the payload shape a
// future server stats endpoint returns, what `neats_cli stats` prints, and
// what bench_report / the scenario runner embed) and a human-readable text
// table. Histograms are emitted under "ops" with the same field names the
// scenario engine's per-op JSON uses (count / p50_ns / p99_ns / p999_ns /
// max_ns), so dashboards read workload-side and store-side percentiles
// with one schema.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace neats::obs {

namespace stats_internal {

/// Metric names are ASCII identifiers by construction; escape the few JSON
/// metacharacters anyway so a hostile name can't break the document.
inline void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace stats_internal

/// The snapshot as one JSON object:
///   {"counters": {...}, "gauges": {...}, "ops": {"access": {...}, ...}}
/// `indent` prefixes every line (so embedders align it inside a larger
/// document); the result carries no trailing newline.
inline std::string MetricsJson(const MetricsSnapshot& s,
                               const std::string& indent = "") {
  using stats_internal::AppendJsonString;
  std::string out;
  const std::string pad = indent + "  ";
  out += indent + "{\n" + pad + "\"counters\": {";
  for (size_t i = 0; i < s.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "  ";
    AppendJsonString(&out, s.counters[i].first);
    out += ": " + std::to_string(s.counters[i].second);
  }
  out += "},\n" + pad + "\"gauges\": {";
  for (size_t i = 0; i < s.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += pad + "  ";
    AppendJsonString(&out, s.gauges[i].first);
    out += ": " + std::to_string(s.gauges[i].second);
  }
  out += "},\n" + pad + "\"ops\": {";
  for (size_t i = 0; i < s.histograms.size(); ++i) {
    const LatencyHistogram& h = s.histograms[i].second;
    out += i == 0 ? "\n" : ",\n";
    out += pad + "  ";
    AppendJsonString(&out, s.histograms[i].first);
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.1f", h.mean());
    out += ": {\"count\": " + std::to_string(h.count()) +
           ", \"p50_ns\": " + std::to_string(h.p50()) +
           ", \"p99_ns\": " + std::to_string(h.p99()) +
           ", \"p999_ns\": " + std::to_string(h.p999()) +
           ", \"max_ns\": " + std::to_string(h.max()) +
           ", \"mean_ns\": " + mean + "}";
  }
  out += "}\n" + indent + "}";
  return out;
}

/// The snapshot as aligned human-readable lines (the CLI's default view).
/// Zero-valued counters are elided — a fresh store would otherwise print a
/// page of zeros.
inline std::string MetricsText(const MetricsSnapshot& s) {
  std::string out;
  out += "gauges:\n";
  for (const auto& [name, v] : s.gauges) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-24s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  out += "counters (nonzero):\n";
  bool any = false;
  for (const auto& [name, v] : s.counters) {
    if (v == 0) continue;
    any = true;
    char line[128];
    std::snprintf(line, sizeof(line), "  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  if (!any) out += "  (none)\n";
  out += "op latencies (sampled):\n";
  for (const auto& [name, h] : s.histograms) {
    if (h.count() == 0) continue;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s count=%-8llu p50=%lluns p99=%lluns max=%lluns\n",
                  name.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  static_cast<unsigned long long>(h.p50()),
                  static_cast<unsigned long long>(h.p99()),
                  static_cast<unsigned long long>(h.max()));
    out += line;
  }
  return out;
}

}  // namespace neats::obs
