// The metrics registry: named counters, gauges, and latency histograms
// with per-thread-sharded, relaxed-atomic recording and bucket-wise merge
// on read — cheap enough to sit on the store's nanosecond access path.
//
// Recording model (the whole design in one paragraph): every recording
// thread gets its own ThreadSlab per registry, found through a thread-local
// one-entry cache (one fs-relative load + two compares on the hot path).
// Each slab cell is written by exactly one thread, so increments are plain
// load+store pairs on relaxed atomics — no lock prefix, no contention, no
// false sharing with other writers — while any thread may read them
// (Snapshot sums across slabs). Totals are exact once writers are joined:
// the join gives the happens-before edge, each cell has a single writer,
// and merge is pure addition. A snapshot taken mid-flight is a consistent-
// enough running view (each counter individually coherent).
//
// Histograms record into per-slab bucket arrays (the same log-linear
// bucketing as obs::LatencyHistogram, which BucketOf is borrowed from) and
// merge bucket-wise into a plain LatencyHistogram at snapshot time. Timing
// every scalar access would double its cost in clock reads, so the
// registry also owns the sampling countdown: Tick(h, every) says "time
// this op" once per `every` ops per thread, keeping the amortized clock
// cost at a fraction of a nanosecond while counters stay exact.
//
// Lifecycle contract: register all metrics before the first recording
// (slabs size themselves from the registered counts); registries must
// outlive their recording threads' calls, like the object holding them.
// The thread-local cache keys on (registry address, serial), so a registry
// reallocated at a recycled address can never inherit a stale slab.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "obs/latency_histogram.hpp"

namespace neats::obs {

/// Monotonic now, nanoseconds — the unit every latency metric records.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

using CounterId = uint32_t;
using GaugeId = uint32_t;
using HistogramId = uint32_t;

/// A merged, point-in-time view of a registry (plus whatever extra rows
/// the owner appends — the store folds its block-cache counters in here).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;

  const uint64_t* counter(std::string_view name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  const int64_t* gauge(std::string_view name) const {
    for (const auto& [n, v] : gauges) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  const LatencyHistogram* histogram(std::string_view name) const {
    for (const auto& [n, h] : histograms) {
      if (n == name) return &h;
    }
    return nullptr;
  }
};

namespace metrics_internal {

/// A single-writer cell: its owning thread updates it with a plain
/// load+store pair (relaxed — no read-modify-write, so no lock prefix on
/// x86), any thread reads it relaxed. Exactness relies on the one-writer
/// discipline the slab layout guarantees.
struct Cell {
  std::atomic<uint64_t> v{0};
  void Add(uint64_t n) {
    v.store(v.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }
  uint64_t Load() const { return v.load(std::memory_order_relaxed); }
};

struct HistShard {
  std::vector<Cell> buckets;  // LatencyHistogram::kNumBuckets
  Cell count;
  Cell sum;
  Cell max;  // single writer: plain compare + store suffices
};

struct ThreadSlab {
  ThreadSlab(size_t num_counters, size_t num_hists)
      : counters(num_counters), countdown(num_hists, 1), hists(num_hists) {
    for (HistShard& h : hists) {
      h.buckets = std::vector<Cell>(LatencyHistogram::kNumBuckets);
    }
  }
  std::vector<Cell> counters;
  // Sampling countdowns are owner-thread-private (never read elsewhere),
  // so they are plain integers. Initialized to 1: the first op after slab
  // creation is always timed, so short runs still populate histograms.
  std::vector<uint32_t> countdown;
  std::vector<HistShard> hists;
};

/// Thread-local slab lookup cache: one hot entry plus a small overflow
/// scan. Entries key on (registry address, registry serial) and are only
/// ever compared, never dereferenced, unless both match — so entries for
/// destroyed registries are inert, and an address-recycled registry (new
/// serial) can never alias an old slab. The hot entry is trivially
/// constructible and destructible on purpose: a function-local
/// `thread_local constinit` of this type compiles to a bare TLS load with
/// no init-guard branch, which is what keeps the per-op metrics cost to a
/// couple of nanoseconds (the overflow vector lives behind the slow path
/// only).
struct TlsEntry {
  const void* reg = nullptr;
  uint64_t serial = 0;
  ThreadSlab* slab = nullptr;
};

inline std::atomic<uint64_t>& RegistrySerialCounter() {
  static std::atomic<uint64_t> counter{1};
  return counter;
}

}  // namespace metrics_internal

class MetricsRegistry {
  using Cell = metrics_internal::Cell;
  using ThreadSlab = metrics_internal::ThreadSlab;

 public:
  MetricsRegistry()
      : serial_(metrics_internal::RegistrySerialCounter().fetch_add(
            1, std::memory_order_relaxed)) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (setup phase, before recording threads exist) ---------

  CounterId AddCounter(std::string name) {
    NEATS_DCHECK(SlabsEmpty());
    counter_names_.push_back(std::move(name));
    return static_cast<CounterId>(counter_names_.size() - 1);
  }

  GaugeId AddGauge(std::string name) {
    NEATS_DCHECK(SlabsEmpty());
    gauge_names_.push_back(std::move(name));
    gauges_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    return static_cast<GaugeId>(gauge_names_.size() - 1);
  }

  HistogramId AddHistogram(std::string name) {
    NEATS_DCHECK(SlabsEmpty());
    hist_names_.push_back(std::move(name));
    return static_cast<HistogramId>(hist_names_.size() - 1);
  }

  // --- Recording (any thread, relaxed, per-thread slabs) -------------------

  void Count(CounterId id, uint64_t n = 1) { Slab().counters[id].Add(n); }

  /// Per-thread sampling countdown for histogram `id`: true once every
  /// `every` calls (and on the very first), telling the caller to time
  /// this op and Record() the result. `every` must be >= 1.
  bool Tick(HistogramId id, uint32_t every) {
    ThreadSlab& s = Slab();
    if (--s.countdown[id] != 0) return false;
    s.countdown[id] = every;
    return true;
  }

  /// The scalar hot-path combo: bump counter `c` and run histogram `h`'s
  /// sampling countdown in one slab lookup. Semantically identical to
  /// Count(c) followed by Tick(h, every); exists because the TLS lookup is
  /// most of the cost of either call on a sub-100ns operation.
  bool CountAndTick(CounterId c, HistogramId h, uint32_t every) {
    ThreadSlab& s = Slab();
    s.counters[c].Add(1);
    if (--s.countdown[h] != 0) return false;
    s.countdown[h] = every;
    return true;
  }

  void Record(HistogramId id, uint64_t ns) {
    metrics_internal::HistShard& h = Slab().hists[id];
    h.buckets[LatencyHistogram::BucketOf(ns)].Add(1);
    h.count.Add(1);
    h.sum.Add(ns);
    if (ns > h.max.Load()) {
      h.max.v.store(ns, std::memory_order_relaxed);
    }
  }

  /// Gauges are registry-level (instantaneous values, last write wins).
  void SetGauge(GaugeId id, int64_t v) const {
    gauges_[id]->store(v, std::memory_order_relaxed);
  }

  // --- Reading -------------------------------------------------------------

  uint64_t CounterValue(CounterId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& slab : slabs_) total += slab->counters[id].Load();
    return total;
  }

  LatencyHistogram HistogramValue(HistogramId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return MergeHistLocked(id);
  }

  /// Merges every slab into one snapshot. Exact once recording threads are
  /// joined; a coherent running view otherwise.
  MetricsSnapshot Snapshot() const {
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(mu_);
    out.counters.reserve(counter_names_.size());
    for (size_t c = 0; c < counter_names_.size(); ++c) {
      uint64_t total = 0;
      for (const auto& slab : slabs_) total += slab->counters[c].Load();
      out.counters.emplace_back(counter_names_[c], total);
    }
    out.gauges.reserve(gauge_names_.size());
    for (size_t g = 0; g < gauge_names_.size(); ++g) {
      out.gauges.emplace_back(gauge_names_[g],
                              gauges_[g]->load(std::memory_order_relaxed));
    }
    out.histograms.reserve(hist_names_.size());
    for (size_t h = 0; h < hist_names_.size(); ++h) {
      out.histograms.emplace_back(hist_names_[h], MergeHistLocked(h));
    }
    return out;
  }

 private:
  bool SlabsEmpty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slabs_.empty();
  }

  LatencyHistogram MergeHistLocked(size_t id) const {
    LatencyHistogram merged;
    for (const auto& slab : slabs_) {
      const metrics_internal::HistShard& h = slab->hists[id];
      for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
        const uint64_t n = h.buckets[b].Load();
        if (n != 0) merged.AccumulateBucket(b, n);
      }
      merged.AccumulateSummary(h.sum.Load(), h.max.Load());
    }
    return merged;
  }

  ThreadSlab& Slab() {
    thread_local constinit metrics_internal::TlsEntry hot{};
    if (hot.reg == this && hot.serial == serial_) [[likely]] {
      return *hot.slab;
    }
    return SlabSlow(hot);
  }

  ThreadSlab& SlabSlow(metrics_internal::TlsEntry& hot) {
    thread_local std::vector<metrics_internal::TlsEntry> others;
    for (metrics_internal::TlsEntry& e : others) {
      if (e.reg == this && e.serial == serial_) {
        std::swap(e, hot);
        return *hot.slab;
      }
    }
    auto owned =
        std::make_unique<ThreadSlab>(counter_names_.size(), hist_names_.size());
    ThreadSlab* slab = owned.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      slabs_.push_back(std::move(owned));
    }
    if (hot.reg != nullptr) {
      // Bound the overflow list: a thread churning through many registries
      // (the crash harness reopens hundreds of stores) drops oldest first.
      if (others.size() >= 64) others.erase(others.begin());
      others.push_back(hot);
    }
    hot = {this, serial_, slab};
    return *slab;
  }

  const uint64_t serial_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  // unique_ptr keeps each atomic at a stable address while the vector
  // grows during registration.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> gauges_;
  mutable std::mutex mu_;  // guards slabs_ (the list, not the cells)
  std::vector<std::unique_ptr<ThreadSlab>> slabs_;
};

}  // namespace neats::obs
