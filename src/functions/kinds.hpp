// The catalogue of two/three-parameter function kinds (paper, Table I).
//
// Every kind is described by the change of variables that turns its
// eps-approximation constraints into half-plane constraints
// alpha_k <= t_k*m + b <= omega_k (paper, Theorem 1):
//
//   kind                f(x)                   t_k        alpha_k / omega_k
//   -------------------------------------------------------------------------
//   Linear              m*x + b                x          y -+ eps
//   Quadratic           m*x^2 + b              x^2        y -+ eps
//   Radical             m*sqrt(x) + b          sqrt(x)    y -+ eps
//   Exponential         e^b * e^(m*x)          x          ln(y -+ eps)
//   Power               e^b * x^m              ln(x)      ln(y -+ eps)
//   Logarithm           m*ln(x) + b            ln(x)      y -+ eps
//   QuadMixed           m*x^2 + b*x            x          (y -+ eps)/x
//   CubicOdd            m*x^3 + b*x            x^2        (y -+ eps)/x
//   CubicMixed          m*x^3 + b*x^2          x          (y -+ eps)/x^2
//   QuadraticFull (3p)  m*x^2 + b*x + c        x + x_i    (y - y_i -+ eps)/(x - x_i)
//   Gaussian (3p)       e^(m*x^2 + b*x + c)    x + x_i    (ln(y -+ eps) - ln y_i)/(x - x_i)
//
// The two 3-parameter kinds are constrained to pass through the fragment's
// first data point (x_i, y_i), which fixes the third parameter c and reduces
// the feasible set to a 2D polygon (paper, Sec. III-A). All kinds operate on
// fragment-local coordinates x = (index - start + 1) >= 1 (paper, footnote 4),
// which both conditions the arithmetic and makes ln(x) well defined.
//
// Kinds taking ln(y -+ eps) require y - eps > 0; the NeaTS compressor
// guarantees positivity of values via a global shift (paper, footnote 2), and
// the approximator stops fragments of such kinds at any point where the
// current eps makes the logarithm undefined.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "common/assert.hpp"

namespace neats {

/// Identifier of an approximation function kind. Stable numbering: these ids
/// are stored inside the compressed representation (K array).
enum class FunctionKind : uint8_t {
  kLinear = 0,
  kQuadratic = 1,
  kRadical = 2,
  kExponential = 3,
  kPower = 4,
  kLogarithm = 5,
  kQuadMixed = 6,
  kCubicOdd = 7,
  kCubicMixed = 8,
  kQuadraticFull = 9,  // 3 parameters, through the first point
  kGaussian = 10,      // 3 parameters, through the first point
};

/// Number of kinds (size of the full catalogue).
inline constexpr int kNumFunctionKinds = 11;

/// Human-readable kind name.
inline std::string_view KindName(FunctionKind kind) {
  switch (kind) {
    case FunctionKind::kLinear: return "linear";
    case FunctionKind::kQuadratic: return "quadratic";
    case FunctionKind::kRadical: return "radical";
    case FunctionKind::kExponential: return "exponential";
    case FunctionKind::kPower: return "power";
    case FunctionKind::kLogarithm: return "logarithm";
    case FunctionKind::kQuadMixed: return "quad_mixed";
    case FunctionKind::kCubicOdd: return "cubic_odd";
    case FunctionKind::kCubicMixed: return "cubic_mixed";
    case FunctionKind::kQuadraticFull: return "quadratic_full";
    case FunctionKind::kGaussian: return "gaussian";
  }
  return "?";
}

/// Number of stored parameters for a kind (2, or 3 for through-first kinds).
inline constexpr int NumParams(FunctionKind kind) {
  return (kind == FunctionKind::kQuadraticFull ||
          kind == FunctionKind::kGaussian)
             ? 3
             : 2;
}

/// True for the 3-parameter kinds constrained through the first data point.
inline constexpr bool IsThroughFirst(FunctionKind kind) {
  return NumParams(kind) == 3;
}

/// One half-plane constraint pair in the transformed space.
struct TransformedConstraint {
  long double t;
  long double alpha;
  long double omega;
};

/// Computes the transformed constraint of `kind` for the data point with
/// fragment-local coordinate `xi` (>= 1) and value `y`, under error bound
/// `eps`. For through-first kinds, `y_first` is the value at the fragment's
/// first point and `xi` must be >= 2 (the first point carries no constraint).
/// Returns false if the point is outside the kind's domain (e.g. a
/// non-positive ln argument), in which case the fragment cannot cover it.
inline bool TransformConstraint(FunctionKind kind, int64_t xi, int64_t y,
                                int64_t eps, int64_t y_first,
                                TransformedConstraint* out) {
  const long double x = static_cast<long double>(xi);
  const long double lo = static_cast<long double>(y) - static_cast<long double>(eps);
  const long double hi = static_cast<long double>(y) + static_cast<long double>(eps);
  switch (kind) {
    case FunctionKind::kLinear:
      *out = {x, lo, hi};
      return true;
    case FunctionKind::kQuadratic:
      *out = {x * x, lo, hi};
      return true;
    case FunctionKind::kRadical:
      *out = {sqrtl(x), lo, hi};
      return true;
    case FunctionKind::kExponential:
      if (lo <= 0) return false;
      *out = {x, logl(lo), logl(hi)};
      return true;
    case FunctionKind::kPower:
      if (lo <= 0) return false;
      *out = {logl(x), logl(lo), logl(hi)};
      return true;
    case FunctionKind::kLogarithm:
      *out = {logl(x), lo, hi};
      return true;
    case FunctionKind::kQuadMixed:
      *out = {x, lo / x, hi / x};
      return true;
    case FunctionKind::kCubicOdd:
      *out = {x * x, lo / x, hi / x};
      return true;
    case FunctionKind::kCubicMixed:
      *out = {x, lo / (x * x), hi / (x * x)};
      return true;
    case FunctionKind::kQuadraticFull: {
      NEATS_DCHECK(xi >= 2);
      const long double dx = x - 1.0L;  // x_i == 1 in local coordinates
      const long double dy = static_cast<long double>(y - y_first);
      *out = {x + 1.0L, (dy - eps) / dx, (dy + eps) / dx};
      return true;
    }
    case FunctionKind::kGaussian: {
      NEATS_DCHECK(xi >= 2);
      if (lo <= 0 || y_first <= 0) return false;
      const long double dx = x - 1.0L;
      const long double ly0 = logl(static_cast<long double>(y_first));
      *out = {x + 1.0L, (logl(lo) - ly0) / dx, (logl(hi) - ly0) / dx};
      return true;
    }
  }
  return false;
}

/// True if a fragment of `kind` may start at a point with value `y_first`
/// under error bound `eps` (domain check for the first covered point).
inline bool KindApplicableAtStart(FunctionKind kind, int64_t y_first,
                                  int64_t eps) {
  switch (kind) {
    case FunctionKind::kExponential:
    case FunctionKind::kPower:
      return y_first - eps > 0;
    case FunctionKind::kGaussian:
      return y_first > 0;
    default:
      return true;
  }
}

/// Evaluates the approximation of `kind` with stored parameters `params`
/// (as produced by the approximator) at fragment-local coordinate `xi`.
/// Deterministic double-precision arithmetic: the compressor and the
/// decompressor call this exact routine, so residuals computed at encode
/// time reproduce bit-exactly at decode time.
inline double PredictValue(FunctionKind kind, const double* params,
                           int64_t xi) {
  const double x = static_cast<double>(xi);
  const double m = params[0];
  const double b = params[1];
  switch (kind) {
    case FunctionKind::kLinear: return m * x + b;
    case FunctionKind::kQuadratic: return m * x * x + b;
    case FunctionKind::kRadical: return m * std::sqrt(x) + b;
    case FunctionKind::kExponential: return std::exp(m * x + b);
    case FunctionKind::kPower: return std::exp(m * std::log(x) + b);
    case FunctionKind::kLogarithm: return m * std::log(x) + b;
    case FunctionKind::kQuadMixed: return (m * x + b) * x;
    case FunctionKind::kCubicOdd: return (m * x * x + b) * x;
    case FunctionKind::kCubicMixed: return (m * x + b) * x * x;
    case FunctionKind::kQuadraticFull: return (m * x + b) * x + params[2];
    case FunctionKind::kGaussian: return std::exp((m * x + b) * x + params[2]);
  }
  return 0.0;
}

/// Largest magnitude the compressor accepts for input values; predictions are
/// clamped to this band so residuals never overflow int64.
inline constexpr int64_t kMaxAbsValue = int64_t{1} << 61;

/// Floor of the prediction, clamped to the valid band (NaN maps to 0).
/// This is the ⌊f(x)⌋ of the paper, shared by Algorithms 2 and 3.
/// Written branchlessly so the per-fragment decode loops vectorise.
inline int64_t PredictFloor(FunctionKind kind, const double* params,
                            int64_t xi) {
  double v = PredictValue(kind, params, xi);
  v = std::isnan(v) ? 0.0 : v;
  v = std::min(v, static_cast<double>(kMaxAbsValue));
  v = std::max(v, -static_cast<double>(kMaxAbsValue));
  return static_cast<int64_t>(std::floor(v));
}

}  // namespace neats
