// Longest-fragment eps-approximation (paper, Theorem 1 and Corollary 1).
//
// Given a start index, a function kind and an error bound eps, computes the
// longest fragment T[start, end) that admits an eps-approximation of that
// kind, in time linear in the fragment length, by feeding the transformed
// constraints of each data point into the FeasiblePolygon.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "convex/polygon.hpp"
#include "functions/kinds.hpp"

namespace neats {

/// A fragment of the time series together with its fitted approximation.
/// Indices are 0-based; the fragment covers values[start, end).
///
/// `origin` is the index where the fit's local coordinate system starts
/// (local coordinate of index k is k - origin + 1). It equals `start` except
/// for fragments produced by the partitioner's *suffix edges*, which reuse
/// parameters fitted from an earlier origin: most nonlinear kinds are not
/// closed under coordinate translation, so the original origin must be kept.
struct Fragment {
  uint64_t start = 0;
  uint64_t end = 0;  // exclusive; end == start means "kind not applicable"
  uint64_t origin = 0;
  FunctionKind kind = FunctionKind::kLinear;
  int64_t epsilon = 0;   // error bound the fragment was fitted under
  double params[3] = {0, 0, 0};

  uint64_t length() const { return end - start; }

  /// Prediction ⌊f(k)⌋ at global index k (must satisfy k >= origin).
  int64_t Predict(uint64_t k) const {
    return PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1);
  }
};

/// Incremental fragment builder: feed points one at a time.
///
/// Usage: construct with (start, kind, eps, y_first), then call TryExtend for
/// values[start], values[start+1], ... until it returns false; Finish() then
/// yields the fitted parameters for the covered prefix.
class FragmentBuilder {
 public:
  FragmentBuilder(uint64_t start, FunctionKind kind, int64_t eps,
                  int64_t y_first)
      : start_(start), kind_(kind), eps_(eps), y_first_(y_first) {
    applicable_ = KindApplicableAtStart(kind, y_first, eps);
  }

  /// Tries to extend the fragment with values[index] == y, where index must
  /// advance by one on each call starting from start. Returns false if the
  /// fragment cannot cover this point (the builder stays valid for Finish).
  bool TryExtend(uint64_t index, int64_t y) {
    NEATS_DCHECK(index == start_ + covered_);
    if (!applicable_) return false;
    const int64_t xi = static_cast<int64_t>(index - start_) + 1;
    if (IsThroughFirst(kind_) && xi == 1) {
      // The first point is interpolated exactly via the third parameter.
      ++covered_;
      return true;
    }
    TransformedConstraint c;
    if (!TransformConstraint(kind_, xi, y, eps_, y_first_, &c)) return false;
    if (!polygon_.AddConstraint(c.t, c.alpha, c.omega)) return false;
    ++covered_;
    return true;
  }

  /// Number of points covered so far.
  uint64_t covered() const { return covered_; }

  /// True if the kind is applicable at the start point at all.
  bool applicable() const { return applicable_; }

  /// Returns the fitted fragment for the covered prefix (length >= 1 unless
  /// the kind was inapplicable, in which case end == start).
  Fragment Finish() const {
    Fragment frag;
    frag.start = start_;
    frag.end = start_ + covered_;
    frag.origin = start_;
    frag.kind = kind_;
    frag.epsilon = eps_;
    if (covered_ == 0) return frag;

    long double m = 0, b = 0;
    if (polygon_.num_constraints() > 0) {
      DualPoint p = polygon_.PickPoint();
      m = p.m;
      b = p.b;
    }
    frag.params[0] = static_cast<double>(m);
    frag.params[1] = static_cast<double>(b);
    if (IsThroughFirst(kind_)) {
      // Fix the third parameter so the curve passes through (1, y_first).
      // Computed from the *stored* double parameters for determinism.
      double sum = frag.params[0] + frag.params[1];
      if (kind_ == FunctionKind::kGaussian) {
        frag.params[2] = std::log(static_cast<double>(y_first_)) - sum;
      } else {
        frag.params[2] = static_cast<double>(y_first_) - sum;
      }
    }
    return frag;
  }

 private:
  uint64_t start_;
  FunctionKind kind_;
  int64_t eps_;
  int64_t y_first_;
  bool applicable_ = true;
  uint64_t covered_ = 0;
  FeasiblePolygon polygon_;
};

/// MAKEAPPROXIMATION of the paper: the longest fragment of `kind` starting at
/// `start` under error bound `eps`. Runs in O(fragment length).
inline Fragment LongestFragment(std::span<const int64_t> values, uint64_t start,
                                FunctionKind kind, int64_t eps) {
  NEATS_DCHECK(start < values.size());
  FragmentBuilder builder(start, kind, eps, values[start]);
  for (uint64_t k = start; k < values.size(); ++k) {
    if (!builder.TryExtend(k, values[k])) break;
  }
  return builder.Finish();
}

/// Fits `kind` on the exact range [start, end); the caller must know the
/// range is feasible (e.g. it is a sub-range of a fragment returned by
/// LongestFragment with the same kind and eps). Used by the partitioner to
/// re-express suffix fragments in their own local coordinates.
inline Fragment FitRange(std::span<const int64_t> values, uint64_t start,
                         uint64_t end, FunctionKind kind, int64_t eps) {
  FragmentBuilder builder(start, kind, eps, values[start]);
  for (uint64_t k = start; k < end; ++k) {
    bool ok = builder.TryExtend(k, values[k]);
    NEATS_REQUIRE(ok, "FitRange on an infeasible range");
  }
  return builder.Finish();
}

/// Corollary 1: the piecewise eps-approximation of the whole series with the
/// minimum number of fragments of a single kind. Points where the kind is
/// not applicable fall back to a Linear fragment (always applicable).
inline std::vector<Fragment> PiecewiseApproximation(
    std::span<const int64_t> values, FunctionKind kind, int64_t eps) {
  std::vector<Fragment> result;
  uint64_t start = 0;
  while (start < values.size()) {
    Fragment frag = LongestFragment(values, start, kind, eps);
    if (frag.length() == 0) {
      frag = LongestFragment(values, start, FunctionKind::kLinear, eps);
    }
    NEATS_DCHECK(frag.length() > 0);
    result.push_back(frag);
    start = frag.end;
  }
  return result;
}

}  // namespace neats
