// Wall-clock stopwatch used by the benchmark harnesses.

#pragma once

#include <chrono>
#include <cstdint>

namespace neats {

/// Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace neats
