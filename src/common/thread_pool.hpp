// A small fixed-size worker pool with a blocking parallel-for.
//
// Built for the compressor's hot loops: the partitioner fires a ParallelFor
// per rebuild event (up to one per node), so dispatch must be cheap — one
// mutex round-trip to publish the job, lock-free index claiming while it
// runs, and one notification round when the job drains. The calling thread
// participates in the work, so a pool constructed with `num_threads` spawns
// `num_threads - 1` workers and ParallelFor never deadlocks even on a pool
// of one.
//
// Indices are claimed one at a time from an atomic counter (work stealing),
// which load-balances the heterogeneous fragment-rebuild costs without any
// up-front splitting. Bodies must not throw.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neats {

/// Resolves a num_threads option: values >= 1 are taken as-is, 0 means "one
/// per hardware thread" (at least 1).
inline int ResolveNumThreads(int num_threads) {
  if (num_threads >= 1) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Fixed pool of worker threads executing ParallelFor jobs.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    int n = ResolveNumThreads(num_threads);
    workers_.reserve(static_cast<size_t>(n - 1));
    for (int i = 1; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total threads working on a job (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count). Blocks until all indices are
  /// done; the calling thread works too. Not reentrant from inside a body.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
      for (size_t i = 0; i < count; ++i) body(i);
      return;
    }
    Job job;
    job.body = &body;
    job.count = count;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++job_seq_;
    }
    wake_cv_.notify_all();
    RunJob(&job);
    // The job (a stack object) may only die once every worker that grabbed
    // its pointer has left RunJob: workers_inside is mutated under the mutex
    // exactly for this lifetime handshake.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.workers_inside == 0 &&
             job.done.load(std::memory_order_acquire) == job.count;
    });
    job_ = nullptr;
  }

 private:
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    int workers_inside = 0;  // guarded by ThreadPool::mutex_
  };

  void RunJob(Job* job) {
    size_t i;
    while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->count) {
      (*job->body)(i);
      job->done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      wake_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      Job* job = job_;
      if (job == nullptr) continue;  // raced with job completion
      ++job->workers_inside;
      lock.unlock();
      RunJob(job);
      lock.lock();
      if (--job->workers_inside == 0) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace neats
