// A small fixed-size worker pool with a blocking parallel-for.
//
// Built for the compressor's hot loops: the partitioner fires a ParallelFor
// per rebuild event (up to one per node), so dispatch must be cheap — one
// mutex round-trip to publish the job, lock-free index claiming while it
// runs, and one notification round when the job drains. The calling thread
// participates in the work, so a pool constructed with `num_threads` spawns
// `num_threads - 1` workers and ParallelFor never deadlocks even on a pool
// of one.
//
// Indices are claimed one at a time from an atomic counter (work stealing),
// which load-balances the heterogeneous fragment-rebuild costs without any
// up-front splitting. Bodies must not throw.
//
// Besides the blocking ParallelFor, the pool runs fire-and-forget tasks
// (Submit/DrainTasks): the store's background shard sealer hands whole
// chunks to the pool and only synchronizes at Flush time. Both kinds of
// work share the same workers.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace neats {

/// Resolves a num_threads option: values >= 1 are taken as-is, 0 means "one
/// per hardware thread" (at least 1).
inline int ResolveNumThreads(int num_threads) {
  if (num_threads >= 1) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Fixed pool of worker threads executing ParallelFor jobs.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    int n = ResolveNumThreads(num_threads);
    workers_.reserve(static_cast<size_t>(n - 1));
    for (int i = 1; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total threads working on a job (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count). Blocks until all indices are
  /// done; the calling thread works too. Not reentrant from inside a body.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
      for (size_t i = 0; i < count; ++i) body(i);
      return;
    }
    Job job;
    job.body = &body;
    job.count = count;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++job_seq_;
    }
    wake_cv_.notify_all();
    RunJob(&job);
    // The job (a stack object) may only die once every worker that grabbed
    // its pointer has left RunJob: workers_inside is mutated under the mutex
    // exactly for this lifetime handshake.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.workers_inside == 0 &&
             job.done.load(std::memory_order_acquire) == job.count;
    });
    job_ = nullptr;
  }

  /// Enqueues `task` to run asynchronously on a worker thread (FIFO order
  /// across Submit calls; tasks may interleave with ParallelFor jobs). On a
  /// pool with no workers the task runs inline before Submit returns, so
  /// callers get the same completion guarantees either way. Tasks must not
  /// throw. Drain with DrainTasks() before destroying the pool — workers
  /// shut down without running tasks still queued.
  void Submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_outstanding_;
      tasks_.push_back(std::move(task));
    }
    wake_cv_.notify_one();
    // Wake DrainTasks sleepers too: their wait predicate includes
    // "queue non-empty" precisely so they can help with tasks submitted
    // while they slept (e.g. a task that submits a follow-up task).
    done_cv_.notify_all();
  }

  /// Blocks until every task submitted so far has finished. The calling
  /// thread helps drain the queue, so DrainTasks makes progress even while
  /// all workers are busy inside long-running tasks.
  void DrainTasks() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (!tasks_.empty()) {
        RunOneQueuedTask(lock);
        continue;
      }
      if (tasks_outstanding_ == 0) return;
      done_cv_.wait(lock,
                    [&] { return tasks_outstanding_ == 0 || !tasks_.empty(); });
    }
  }

 private:
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    int workers_inside = 0;  // guarded by ThreadPool::mutex_
  };

  void RunJob(Job* job) {
    size_t i;
    while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->count) {
      (*job->body)(i);
      job->done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  /// Pops and runs the front queued task, releasing `lock` (which must be
  /// held) around the run and notifying drainers when the count hits zero.
  /// Precondition: !tasks_.empty(). Shared by WorkerLoop and DrainTasks so
  /// the task accounting lives in exactly one place.
  void RunOneQueuedTask(std::unique_lock<std::mutex>& lock) {
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    if (--tasks_outstanding_ == 0) done_cv_.notify_all();
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      wake_cv_.wait(lock, [&] {
        return stop_ || job_seq_ != seen || !tasks_.empty();
      });
      if (stop_) return;
      if (!tasks_.empty()) {
        RunOneQueuedTask(lock);
        continue;
      }
      seen = job_seq_;
      Job* job = job_;
      if (job == nullptr) continue;  // raced with job completion
      ++job->workers_inside;
      lock.unlock();
      RunJob(job);
      lock.lock();
      if (--job->workers_inside == 0) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> tasks_;  // async Submit queue
  size_t tasks_outstanding_ = 0;             // queued + running tasks
  Job* job_ = nullptr;
  uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace neats
