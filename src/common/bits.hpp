// Bit-manipulation primitives shared by the succinct data structures.
//
// Everything here is a thin, well-tested wrapper around <bit> plus the two
// broadword routines that the standard library does not provide: select of
// the i-th set bit inside a 64-bit word, and the bit width of value ranges.

#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

// BMI2 select fast path: opt in with -DNEATS_ENABLE_BMI2 (plus -mbmi2, see
// the NEATS_ENABLE_BMI2 CMake option). The portable broadword routine stays
// the default — and the fallback on toolchains without the intrinsic.
#if defined(NEATS_ENABLE_BMI2) && defined(__BMI2__)
#include <immintrin.h>
#define NEATS_HAS_BMI2_SELECT 1
#else
#define NEATS_HAS_BMI2_SELECT 0
#endif

namespace neats {

/// Number of set bits in `x`.
inline constexpr int Popcount(uint64_t x) { return std::popcount(x); }

/// Number of bits needed to represent `x` (0 -> 0, 1 -> 1, 255 -> 8, ...).
inline constexpr int BitWidth(uint64_t x) { return std::bit_width(x); }

/// Index (0-based, from LSB) of the lowest set bit. Precondition: x != 0.
inline constexpr int CountTrailingZeros(uint64_t x) { return std::countr_zero(x); }

/// Number of leading zero bits. Precondition behaviour: returns 64 for x == 0.
inline constexpr int CountLeadingZeros(uint64_t x) {
  return x == 0 ? 64 : std::countl_zero(x);
}

/// Ceiling of log2(x) for x >= 1; returns 0 for x in {0, 1}.
inline constexpr int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : 64 - CountLeadingZeros(x - 1);
}

/// Portable in-word select: position (0-based from LSB) of the k-th
/// (0-based) set bit of `x`. Precondition: Popcount(x) > k.
///
/// Broadword selection following Vigna's sux implementation: a parallel
/// byte-wise popcount locates the byte containing the target bit, then an
/// 8-entry lookup finishes inside the byte.
inline int SelectInWordBroadword(uint64_t x, int k) {
  constexpr uint64_t kOnesStep4 = 0x1111111111111111ULL;
  constexpr uint64_t kOnesStep8 = 0x0101010101010101ULL;
  constexpr uint64_t kMsbsStep8 = 0x80ULL * kOnesStep8;

  uint64_t s = x;
  s = s - ((s & (0xAULL * kOnesStep4)) >> 1);
  s = (s & (0x3ULL * kOnesStep4)) + ((s >> 2) & (0x3ULL * kOnesStep4));
  s = (s + (s >> 4)) & (0xFULL * kOnesStep8);
  uint64_t byte_sums = s * kOnesStep8;  // prefix popcounts per byte, inclusive

  uint64_t k_step8 = static_cast<uint64_t>(k) * kOnesStep8;
  // For each byte: 1 if byte_sum <= k, via the classic LEQ broadword trick.
  uint64_t geq_k_step8 =
      (((k_step8 | kMsbsStep8) - byte_sums) & kMsbsStep8);
  int place = Popcount(geq_k_step8) * 8;
  int byte_rank = k - static_cast<int>((byte_sums << 8) >> place & 0xFF);

  uint64_t byte = (x >> place) & 0xFF;
  // Select inside the byte with a small loop (byte has <= 8 bits).
  for (int i = 0; i < 8; ++i) {
    if (byte & (1ULL << i)) {
      if (byte_rank == 0) return place + i;
      --byte_rank;
    }
  }
  return -1;  // Unreachable if the precondition holds.
}

/// Position (0-based from LSB) of the k-th (0-based) set bit of `x`.
/// Precondition: Popcount(x) > k.
#if NEATS_HAS_BMI2_SELECT
inline int SelectInWord(uint64_t x, int k) {
  // Deposit a lone bit into the k-th set position of x, then locate it.
  return CountTrailingZeros(_pdep_u64(1ULL << k, x));
}
#else
inline int SelectInWord(uint64_t x, int k) {
  return SelectInWordBroadword(x, k);
}
#endif

/// Mask with the lowest `n` bits set; `n` may be 0..64.
inline constexpr uint64_t LowMask(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/// ZigZag encoding of a signed 64-bit integer into an unsigned one, so that
/// small-magnitude values (of either sign) map to small unsigned codes.
inline constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Integer ceiling division for non-negative operands.
inline constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace neats
