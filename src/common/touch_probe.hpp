// Compile-time cache-line touch probes for the random-access path.
//
// When a translation unit is compiled with -DNEATS_PROFILE_TOUCH, the
// NEATS_TOUCH(ptr) macro appends the 64-byte cache-line id of `ptr` to a
// thread-local log (when one is armed). The probes sit at every memory read
// the query paths perform on frozen payload — bitvector words, rank/select
// directories, packed-array cells, directory records, parameters and
// correction words — so a profiling harness can count the *distinct* cache
// lines one query touches (see bench/dir_lines.cpp and the "cache lines per
// Access" walkthrough in docs/ARCHITECTURE.md).
//
// In a normal build the macro expands to nothing: the default-configured
// library carries zero instrumentation overhead. Do not mix instrumented and
// uninstrumented translation units in one binary — the library is
// header-only, so that would be an ODR violation; instrument whole binaries
// (as the CMakeLists does for bench_dir_lines).

#pragma once

#ifdef NEATS_PROFILE_TOUCH

#include <cstddef>
#include <cstdint>

namespace neats::touch {

/// Probe log: when `log` is non-null, Record appends cache-line ids to it
/// (up to `log_capacity`). Arm it around a query, then count distinct ids.
inline thread_local std::uint64_t* log = nullptr;
inline thread_local std::size_t log_count = 0;
inline thread_local std::size_t log_capacity = 0;

inline void Record(const void* p) {
  if (log != nullptr && log_count < log_capacity) {
    log[log_count++] = static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(p) >> 6);  // 64-byte lines
  }
}

}  // namespace neats::touch

#define NEATS_TOUCH(p) ::neats::touch::Record(p)

#else

#define NEATS_TOUCH(p) ((void)0)

#endif
