// Lightweight runtime checks.
//
// NEATS_REQUIRE guards public-API preconditions and stays active in release
// builds (the cost is negligible next to the work the callers do). A failed
// check throws neats::Error; left uncaught it terminates the process with
// the message on stderr (the historical abort behaviour), while the public
// facade (neats/neats.hpp) catches it at the open/load boundaries and turns
// it into a Status instead of a crash.
// NEATS_DCHECK guards internal invariants and compiles away under NDEBUG.

#pragma once

#include <stdexcept>
#include <string>

namespace neats {

/// Coarse failure category carried by every neats::Error (and surfaced as
/// Status::code() at the facade). NEATS_REQUIRE throws kFailed; the
/// durability/recovery layer throws the typed codes directly: kIo for
/// filesystem failures (ENOSPC, failed fsync), kUnavailable for a query
/// that routes into a quarantined shard, kDegraded for operations reporting
/// on a store that opened with quarantined shards.
enum class StatusCode {
  kOk = 0,
  kFailed = 1,       // generic precondition / corrupt-input rejection
  kIo = 2,           // filesystem error (ENOSPC, fsync failure, ...)
  kUnavailable = 3,  // the queried range lives in a quarantined shard
  kDegraded = 4,     // the store is serving with quarantined shards
};

/// The error every failed NEATS_REQUIRE throws. what() carries the check's
/// message plus its source location, so an uncaught failure terminates with
/// a self-explanatory line and a caught one converts into a Status verbatim.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 StatusCode code = StatusCode::kFailed)
      : std::runtime_error(what), code_(code) {}

  /// The failure category (never kOk).
  StatusCode code() const { return code_; }

 private:
  StatusCode code_ = StatusCode::kFailed;
};

namespace internal {

[[noreturn]] inline void FailRequire(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::string what(msg[0] ? msg : expr);
  what += " [NEATS_REQUIRE ";
  what += file;
  what += ":";
  what += std::to_string(line);
  what += "]";
  throw Error(what);
}

}  // namespace internal
}  // namespace neats

#define NEATS_REQUIRE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) ::neats::internal::FailRequire(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define NEATS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define NEATS_DCHECK(cond) NEATS_REQUIRE(cond, "internal invariant")
#endif
