// Lightweight runtime checks.
//
// NEATS_REQUIRE guards public-API preconditions and stays active in release
// builds (the cost is negligible next to the work the callers do).
// NEATS_DCHECK guards internal invariants and compiles away under NDEBUG.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace neats::internal {

[[noreturn]] inline void FailRequire(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "NEATS_REQUIRE failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace neats::internal

#define NEATS_REQUIRE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) ::neats::internal::FailRequire(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define NEATS_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define NEATS_DCHECK(cond) NEATS_REQUIRE(cond, "internal invariant")
#endif
