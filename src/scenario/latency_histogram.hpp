// Compatibility alias: the latency histogram was promoted into the
// observability layer (src/obs/latency_histogram.hpp) when the store grew
// its own metrics — the scenario engine keeps using it under the old name
// and include path. New code should include the obs header directly.

#pragma once

#include "obs/latency_histogram.hpp"

namespace neats::scenario {

using LatencyHistogram = obs::LatencyHistogram;

}  // namespace neats::scenario
