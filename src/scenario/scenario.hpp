// The scenario engine: named, seeded, self-verifying production-workload
// scenarios driven against a real NeatsStore (ROADMAP item 5b).
//
// A Scenario is a name plus a run function. The run function gets a
// ScenarioContext carrying the options (seed / scale / reader count) and
// collecting the result: per-op latency histograms, verification counters,
// and a trace fingerprint. Scenarios spawn concurrent appender/reader
// tasks on a TaskGroup (the repo's ThreadPool underneath) and verify every
// read against a ground-truth model — exact values on healthy ranges,
// typed kUnavailable on quarantined ones. Failures throw with a one-line
// repro prefix ("scenario=X seed=Y: ...").
//
// Determinism contract: a scenario's workload trace — which ops run, with
// which arguments, against which data — is a pure function of (seed,
// scale, readers). Every task derives its op sequence from the seed alone
// (never from timing, thread ids, or store state), and readers synchronize
// with the appender through a scenario-owned atomic frontier rather than
// by polling the store, so the same options replay the same trace on any
// schedule. The trace fingerprint makes that checkable: each thread hashes
// its own (op, args) sequence order-sensitively, and the per-thread hashes
// combine commutatively, so the fingerprint is schedule-independent —
// same seed, same fingerprint, every run.
//
// The registry is the extension point: later subsystems (network
// front-end, catalog, tiering) register their own scenarios next to the
// built-ins in scenarios.hpp and get the same runner, verification
// discipline, and percentile reporting for free.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_json.hpp"
#include "scenario/latency_histogram.hpp"

namespace neats::scenario {

// --- Seeded randomness -----------------------------------------------------

/// SplitMix64 step: the engine's only randomness primitive. Cheap, seedable
/// from any 64-bit value, and fully specified — traces replay across
/// platforms and standard libraries.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A tiny deterministic generator. Derive one per task from the scenario
/// seed and a fixed stream id (e.g. the reader index) so every task's op
/// sequence is independent of scheduling.
class Rng {
 public:
  Rng(uint64_t seed, uint64_t stream) : state_(seed) {
    // Decorrelate streams sharing a seed: burn the stream id through the
    // mixer twice so low-entropy ids (0, 1, 2...) diverge immediately.
    state_ ^= 0x2545f4914f6cdd1dull * (stream + 1);
    (void)SplitMix64(&state_);
    (void)SplitMix64(&state_);
  }

  uint64_t Next() { return SplitMix64(&state_); }

  /// Uniform in [0, n); n must be positive. Modulo bias is irrelevant at
  /// workload-index magnitudes.
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

/// Order-sensitive hash step for per-thread trace fingerprints: fold the
/// next (op, args) tuple into the accumulator.
inline uint64_t MixTraceStep(uint64_t acc, uint64_t op, uint64_t a,
                             uint64_t b = 0) {
  uint64_t s = acc ^ (op * 0x9e3779b97f4a7c15ull);
  s = SplitMix64(&s) ^ a;
  s = SplitMix64(&s) ^ b;
  return SplitMix64(&s);
}

/// Monotonic now, nanoseconds — the unit every histogram records.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Options and result ----------------------------------------------------

struct ScenarioOptions {
  /// The seed every task's op sequence derives from. A failure report
  /// quotes it; replaying with the same seed replays the same trace.
  uint64_t seed = 42;

  /// Linear workload multiplier: values ingested and probes issued scale
  /// with it. 1 is a smoke-test size (the ctest tier); the runner's soak
  /// sweep uses larger values.
  uint64_t scale = 1;

  /// Concurrent reader tasks per scenario (the writer is one more).
  int readers = 3;
};

/// What one scenario run produced. `ops` maps an op kind ("point_access",
/// "append", ...) to the merged latency histogram of every such op across
/// all tasks.
struct ScenarioResult {
  std::string name;
  ScenarioOptions options;
  double wall_seconds = 0;
  uint64_t values_ingested = 0;
  uint64_t reads_verified = 0;
  uint64_t unavailable_reads = 0;  // typed kUnavailable, expected + counted
  uint64_t trace_fingerprint = 0;
  std::map<std::string, LatencyHistogram> ops;
  std::vector<std::string> notes;

  /// The store's own StatsSnapshot() taken at scenario end (empty when the
  /// scenario didn't attach one): store-side op counters and latency
  /// percentiles next to the workload-side `ops` above, so a report shows
  /// both views of the same run.
  obs::MetricsSnapshot store_metrics;
};

// --- Task group ------------------------------------------------------------

/// Runs a scenario's concurrent tasks on a dedicated ThreadPool sized so
/// every spawned task gets a worker immediately (spawn order can't
/// deadlock a frontier wait even on one hardware thread). Task bodies may
/// throw: the first exception is captured, `failed()` flips so sibling
/// tasks waiting on a frontier can bail out, and Wait() rethrows it on the
/// scenario thread.
class TaskGroup {
 public:
  explicit TaskGroup(int tasks) : pool_(tasks + 1) {}

  void Spawn(std::function<void()> fn) {
    pool_.Submit([this, fn = std::move(fn)] {
      try {
        fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!err_) err_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_release);
      }
    });
  }

  /// True once any task has thrown. Frontier-wait loops poll this so a
  /// dead appender doesn't strand its readers.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Blocks until every spawned task finished (the calling thread helps
  /// drain), then rethrows the first captured exception, if any.
  void Wait() {
    pool_.DrainTasks();
    if (err_) std::rethrow_exception(err_);
  }

 private:
  ThreadPool pool_;
  std::atomic<bool> failed_{false};
  std::mutex mu_;
  std::exception_ptr err_;
};

/// Spin-waits until `frontier` reaches `target` (readers tracking the
/// appender's published ingest progress). Returns false — caller should
/// abandon its op sequence — if a sibling task already failed.
inline bool AwaitFrontier(const std::atomic<uint64_t>& frontier,
                          uint64_t target, const TaskGroup& group) {
  while (frontier.load(std::memory_order_acquire) < target) {
    if (group.failed()) return false;
    std::this_thread::yield();
  }
  return true;
}

// --- Context ---------------------------------------------------------------

/// Handed to a scenario's run function: options in, result accumulation
/// out. The accumulation API is thread-safe; the intended shape is that
/// each task keeps private histograms / counters / a private fingerprint
/// and merges once, after its op loop.
class ScenarioContext {
 public:
  ScenarioContext(std::string name, const ScenarioOptions& options)
      : name_(std::move(name)), options_(options) {}

  const std::string& name() const { return name_; }
  const ScenarioOptions& options() const { return options_; }
  uint64_t seed() const { return options_.seed; }
  uint64_t scale() const { return options_.scale; }
  int readers() const { return options_.readers; }

  /// The one-line repro every failure message leads with.
  std::string Repro() const {
    return "scenario=" + name_ + " seed=" + std::to_string(options_.seed) +
           " scale=" + std::to_string(options_.scale) +
           " readers=" + std::to_string(options_.readers);
  }

  /// Scenario-level assertion: throws a neats::Error carrying the repro
  /// line. Safe to call from any task (TaskGroup routes it to Wait()).
  void Check(bool cond, const std::string& msg) const {
    if (!cond) throw Error(Repro() + ": " + msg);
  }

  /// Merges a task's private histogram into the scenario's op kind.
  void MergeOp(const std::string& op, const LatencyHistogram& h) {
    std::lock_guard<std::mutex> lock(mu_);
    result_.ops[op].Merge(h);
  }

  /// Folds a task's private trace hash into the scenario fingerprint.
  /// Addition keeps the combined value independent of merge order.
  void MixTrace(uint64_t thread_hash) {
    trace_.fetch_add(thread_hash, std::memory_order_relaxed);
  }

  void CountIngested(uint64_t n) {
    ingested_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountVerified(uint64_t n) {
    verified_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountUnavailable(uint64_t n) {
    unavailable_.fetch_add(n, std::memory_order_relaxed);
  }

  /// A freeform observation for the report ("codec mix: alp=12 gorilla=4").
  void Note(std::string note) {
    std::lock_guard<std::mutex> lock(mu_);
    result_.notes.push_back(std::move(note));
  }

  /// Stores the store-side metrics snapshot in the result (typically the
  /// last thing a scenario does, after its tasks are joined). Last call
  /// wins.
  void AttachStoreMetrics(obs::MetricsSnapshot snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    result_.store_metrics = std::move(snapshot);
  }

  /// Finalizes and returns the result (runner-only; tasks must be joined).
  ScenarioResult TakeResult(double wall_seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    result_.name = name_;
    result_.options = options_;
    result_.wall_seconds = wall_seconds;
    result_.values_ingested = ingested_.load(std::memory_order_relaxed);
    result_.reads_verified = verified_.load(std::memory_order_relaxed);
    result_.unavailable_reads = unavailable_.load(std::memory_order_relaxed);
    result_.trace_fingerprint = trace_.load(std::memory_order_relaxed);
    return std::move(result_);
  }

 private:
  std::string name_;
  ScenarioOptions options_;
  std::mutex mu_;  // guards result_.ops / result_.notes
  ScenarioResult result_;
  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> verified_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> trace_{0};
};

// --- Registry and runner ---------------------------------------------------

struct Scenario {
  std::string name;
  std::string description;
  std::function<void(ScenarioContext&)> run;
};

/// The named-scenario registry. Built-ins self-register via
/// RegisterBuiltinScenarios() (scenarios.hpp); later subsystems add their
/// own at startup and the runner / soak sweep picks them up by name.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Instance() {
    static ScenarioRegistry registry;
    return registry;
  }

  void Register(Scenario s) {
    NEATS_REQUIRE(!s.name.empty(), "scenario needs a name");
    NEATS_REQUIRE(Find(s.name) == nullptr,
                  "duplicate scenario registration");
    scenarios_.push_back(std::move(s));
  }

  const std::vector<Scenario>& All() const { return scenarios_; }

  const Scenario* Find(std::string_view name) const {
    for (const Scenario& s : scenarios_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

 private:
  std::vector<Scenario> scenarios_;
};

/// Runs one scenario to completion and returns its result. Any failure
/// propagates as a neats::Error whose message leads with the repro line.
inline ScenarioResult RunScenario(const Scenario& s,
                                  const ScenarioOptions& options) {
  ScenarioContext ctx(s.name, options);
  const uint64_t t0 = NowNs();
  s.run(ctx);
  return ctx.TakeResult(static_cast<double>(NowNs() - t0) * 1e-9);
}

// --- JSON emission ---------------------------------------------------------

/// One scenario result as a JSON object (the schema-7 bench report embeds
/// these under "scenarios"; the neats_scenarios runner emits an array of
/// them). Fingerprint is hex text — JSON numbers lose uint64 precision.
inline void WriteScenarioJson(std::ostream& os, const ScenarioResult& r,
                              const char* indent = "  ") {
  auto hist = [&](const LatencyHistogram& h) {
    os << "{\"count\": " << h.count() << ", \"p50_ns\": " << h.p50()
       << ", \"p99_ns\": " << h.p99() << ", \"p999_ns\": " << h.p999()
       << ", \"max_ns\": " << h.max() << "}";
  };
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(r.trace_fingerprint));
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.3f", r.wall_seconds);
  os << indent << "{\"scenario\": \"" << r.name
     << "\", \"seed\": " << r.options.seed
     << ", \"scale\": " << r.options.scale
     << ", \"readers\": " << r.options.readers << ",\n"
     << indent << " \"wall_s\": " << wall
     << ", \"values_ingested\": " << r.values_ingested
     << ", \"reads_verified\": " << r.reads_verified
     << ", \"unavailable_reads\": " << r.unavailable_reads
     << ", \"trace_fingerprint\": \"" << fp << "\",\n"
     << indent << " \"ops\": {";
  bool first = true;
  for (const auto& [op, h] : r.ops) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << op << "\": ";
    hist(h);
  }
  os << "},\n" << indent << " \"notes\": [";
  first = true;
  for (const std::string& note : r.notes) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << note << "\"";
  }
  os << "]";
  if (!r.store_metrics.counters.empty() ||
      !r.store_metrics.histograms.empty()) {
    os << ",\n"
       << indent << " \"store_metrics\":\n"
       << obs::MetricsJson(r.store_metrics, std::string(indent) + "  ");
  }
  os << "}";
}

/// A standalone report: a JSON array of scenario objects.
inline void WriteScenarioReport(std::ostream& os,
                                const std::vector<ScenarioResult>& results) {
  os << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    WriteScenarioJson(os, results[i]);
    os << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "]\n";
}

}  // namespace neats::scenario
