// The built-in scenario suite: six seeded production-workload shapes
// against a real NeatsStore, every read verified against ground truth.
//
//   steady_ingest_point_storm   one appender + N point-lookup readers
//                               trailing the ingest frontier
//   dashboard_fanout            multi-range refreshes + range sums over a
//                               flushed prefix while a trickle append runs
//   burst_append_during_seal    bursty appends with background seals racing
//                               batched reads over the pending chunks
//   reopen_under_load           OpenDir of a live directory while readers
//                               drain the old handle, both bit-identical
//   mixed_codec_auto_churn      kAuto seal policy over alternating data
//                               shapes -> a mixed-codec store under churn
//   corrupt_shard_recovery      lying-fsync torn shard: typed kUnavailable
//                               under concurrency, Scrub repair under load
//
// Workload sizes scale linearly with ScenarioOptions::scale; scale=1 is
// the ctest smoke tier (each scenario well under Debug-seconds), the soak
// sweep runs bigger. All randomness flows from ScenarioOptions::seed via
// scenario::Rng streams, so a failure's printed repro line replays the
// exact trace.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "datasets/generators.hpp"
#include "io/fault_fs.hpp"
#include "neats/neats.hpp"
#include "scenario/scenario.hpp"

namespace neats::scenario {
namespace scenarios_internal {

// Fingerprint op codes (folded into every trace-hash step).
inline constexpr uint64_t kOpPoint = 1;
inline constexpr uint64_t kOpRange = 2;
inline constexpr uint64_t kOpSum = 3;
inline constexpr uint64_t kOpBatch = 4;
inline constexpr uint64_t kOpAppend = 5;
inline constexpr uint64_t kOpReopen = 6;

/// Step levels with short ramps: compresses under every codec, and any
/// lost / duplicated / misrouted value is detectable (the crash harness
/// uses the same shape).
inline std::vector<int64_t> StepSeries(size_t n, uint64_t seed) {
  Rng rng(seed, /*stream=*/0x57e9);
  std::vector<int64_t> values;
  values.reserve(n);
  int64_t level = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 64 == 0) level = static_cast<int64_t>(rng.Below(1000000));
    values.push_back(level + static_cast<int64_t>(i % 7));
  }
  return values;
}

/// One reader task body: `probes` seeded point lookups over [0, n), each
/// awaiting the appender-published frontier before it fires, each verified
/// against `truth`. The shape scenarios 1 and 5 share.
inline void PointStormReader(ScenarioContext& ctx, const NeatsStore& store,
                             const std::vector<int64_t>& truth,
                             const std::atomic<uint64_t>& frontier,
                             const TaskGroup& group, int reader,
                             uint64_t probes) {
  Rng rng(ctx.seed(), static_cast<uint64_t>(reader) + 1);
  LatencyHistogram hist;
  uint64_t fp = 0;
  uint64_t verified = 0;
  for (uint64_t p = 0; p < probes; ++p) {
    const uint64_t idx = rng.Below(truth.size());
    fp = MixTraceStep(fp, kOpPoint, idx);
    if (!AwaitFrontier(frontier, idx + 1, group)) return;
    const uint64_t t0 = NowNs();
    const int64_t got = store.Access(idx);
    hist.Record(NowNs() - t0);
    ctx.Check(got == truth[idx],
              "point_access[" + std::to_string(idx) + "] = " +
                  std::to_string(got) + ", want " +
                  std::to_string(truth[idx]));
    ++verified;
  }
  ctx.MergeOp("point_access", hist);
  ctx.MixTrace(fp);
  ctx.CountVerified(verified);
}

/// The writer side of the storm scenarios: appends `truth` in seeded
/// ragged chunks, publishing the frontier after every acked Append.
inline void ChunkedAppender(ScenarioContext& ctx, NeatsStore& store,
                            const std::vector<int64_t>& truth,
                            std::atomic<uint64_t>* frontier,
                            uint64_t mean_chunk) {
  Rng rng(ctx.seed(), /*stream=*/0xA99E);
  LatencyHistogram hist;
  uint64_t fp = 0;
  uint64_t at = 0;
  while (at < truth.size()) {
    const uint64_t n = std::min<uint64_t>(
        truth.size() - at, mean_chunk / 2 + rng.Below(mean_chunk)); // >= 1
    fp = MixTraceStep(fp, kOpAppend, at, n);
    const uint64_t t0 = NowNs();
    store.Append({truth.data() + at, n});
    hist.Record(NowNs() - t0);
    at += n;
    frontier->store(at, std::memory_order_release);
  }
  ctx.MergeOp("append", hist);
  ctx.MixTrace(fp);
  ctx.CountIngested(at);
}

/// Full-range verification once the tasks are joined: the store must hold
/// exactly `truth`, end to end.
inline void VerifyWholeStore(ScenarioContext& ctx, const NeatsStore& store,
                             const std::vector<int64_t>& truth) {
  ctx.Check(store.size() == truth.size(),
            "store size " + std::to_string(store.size()) + ", want " +
                std::to_string(truth.size()));
  std::vector<int64_t> got(truth.size());
  store.DecompressRange(0, got.size(), got.data());
  for (size_t i = 0; i < truth.size(); ++i) {
    ctx.Check(got[i] == truth[i],
              "final sweep diverges at index " + std::to_string(i));
  }
  ctx.CountVerified(truth.size());
}

/// The scenario's closing move: pull the store's own StatsSnapshot() into
/// the result, so every report carries store-side counters and latency
/// percentiles next to the workload-side histograms, plus a headline note.
inline void AttachStoreObservability(ScenarioContext& ctx,
                                     const NeatsStore& store) {
  obs::MetricsSnapshot snap = store.StatsSnapshot();
  if (snap.counters.empty()) return;  // store ran with metrics disabled
  const uint64_t* access = snap.counter("access.ops");
  const uint64_t* seals = snap.counter("seal.count");
  ctx.Note("store metrics: access.ops=" +
           std::to_string(access != nullptr ? *access : 0) +
           " seal.count=" + std::to_string(seals != nullptr ? *seals : 0));
  ctx.AttachStoreMetrics(std::move(snap));
}

// --- 1. steady_ingest_point_storm ------------------------------------------

/// One appender streams a sensor series into a Gorilla store (inline
/// seals) while `readers` point-lookup tasks trail the ingest frontier —
/// the canonical write-path/read-path contention shape, and the one that
/// hammers the decoded-block cache from every thread at once.
inline void SteadyIngestPointStorm(ScenarioContext& ctx) {
  const uint64_t n = 16384 * ctx.scale();
  const Dataset ds = MakeDataset("CT", n, ctx.seed());
  NeatsStoreOptions options;
  options.shard_size = 2048;
  options.codec = CodecId::kGorilla;
  options.seal_threads = 1;
  NeatsStore store(options);

  std::atomic<uint64_t> frontier{0};
  TaskGroup group(ctx.readers() + 1);
  group.Spawn([&] { ChunkedAppender(ctx, store, ds.values, &frontier, 512); });
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      PointStormReader(ctx, store, ds.values, frontier, group, r,
                       4096 * ctx.scale());
    });
  }
  group.Wait();
  store.Flush();
  VerifyWholeStore(ctx, store, ds.values);
  const DecodedBlockCache::Stats cache = store.block_cache_stats();
  ctx.Note("block_cache hits=" + std::to_string(cache.hits) +
           " misses=" + std::to_string(cache.misses));
  AttachStoreObservability(ctx, store);
}

// --- 2. dashboard_fanout ----------------------------------------------------

/// Dashboard refreshes over a flushed ALP store: every refresh is one
/// DecompressRanges fan-out of several panel ranges plus a RangeSum,
/// verified value-for-value / against prefix sums, while a trickle
/// appender keeps the writer lock warm in the background.
inline void DashboardFanout(ScenarioContext& ctx) {
  const uint64_t n = 32768 * ctx.scale();
  const uint64_t trickle = 2048 * ctx.scale();
  const Dataset ds = MakeDataset("AP", n + trickle, ctx.seed());
  std::vector<int64_t> prefix(n + 1, 0);
  for (uint64_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + ds.values[i];

  io::FaultFs fs;
  NeatsStoreOptions options;
  options.shard_size = 4096;
  options.codec = CodecId::kAlp;
  options.seal_threads = 1;
  options.fs = &fs;
  NeatsStore store = NeatsStore::CreateDir("dashboard", options);
  store.Append({ds.values.data(), n});
  store.Flush();
  ctx.CountIngested(n);

  constexpr uint64_t kPanels = 8;
  TaskGroup group(ctx.readers() + 1);
  group.Spawn([&] {
    // The trickle: small appends with yields — enough writer-lock traffic
    // to surface reader starvation or torn routing, not enough to matter
    // to the refresh numbers.
    Rng rng(ctx.seed(), /*stream=*/0xA99E);
    uint64_t fp = 0;
    uint64_t at = n;
    while (at < n + trickle) {
      const uint64_t take =
          std::min<uint64_t>(n + trickle - at, 32 + rng.Below(96));
      fp = MixTraceStep(fp, kOpAppend, at, take);
      store.Append({ds.values.data() + at, take});
      at += take;
      std::this_thread::yield();
    }
    ctx.MixTrace(fp);
    ctx.CountIngested(at - n);
  });
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      Rng rng(ctx.seed(), static_cast<uint64_t>(r) + 1);
      LatencyHistogram refresh_hist, sum_hist;
      uint64_t fp = 0;
      uint64_t verified = 0;
      std::vector<IndexRange> panels(kPanels);
      std::vector<int64_t> got;
      for (uint64_t q = 0; q < 64 * ctx.scale(); ++q) {
        uint64_t total = 0;
        for (IndexRange& p : panels) {
          p.len = 64 + rng.Below(449);  // 64..512 points per panel
          p.from = rng.Below(n - p.len);
          fp = MixTraceStep(fp, kOpRange, p.from, p.len);
          total += p.len;
        }
        got.resize(total);
        uint64_t t0 = NowNs();
        store.DecompressRanges(panels, got.data());
        refresh_hist.Record(NowNs() - t0);
        uint64_t o = 0;
        for (const IndexRange& p : panels) {
          for (uint64_t i = 0; i < p.len; ++i, ++o) {
            ctx.Check(got[o] == ds.values[p.from + i],
                      "panel value diverges at index " +
                          std::to_string(p.from + i));
          }
          verified += p.len;
        }
        const uint64_t len = 128 + rng.Below(4096 - 128);
        const uint64_t from = rng.Below(n - len);
        fp = MixTraceStep(fp, kOpSum, from, len);
        t0 = NowNs();
        const int64_t sum = store.RangeSum(from, len);
        sum_hist.Record(NowNs() - t0);
        ctx.Check(sum == prefix[from + len] - prefix[from],
                  "range sum diverges at [" + std::to_string(from) + ", +" +
                      std::to_string(len) + ")");
        ++verified;
      }
      ctx.MergeOp("fanout_refresh", refresh_hist);
      ctx.MergeOp("range_sum", sum_hist);
      ctx.MixTrace(fp);
      ctx.CountVerified(verified);
    });
  }
  group.Wait();
  store.Flush();
  std::vector<int64_t> all(ds.values.begin(),
                           ds.values.begin() + n + trickle);
  VerifyWholeStore(ctx, store, all);
  AttachStoreObservability(ctx, store);
}

// --- 3. burst_append_during_seal --------------------------------------------

/// Bursty ingest with a background sealer (seal_threads=2): whole shards
/// sit in the pending queue while batched readers probe straight through
/// sealed / pending / tail territory — the promotion path under fire.
inline void BurstAppendDuringSeal(ScenarioContext& ctx) {
  const uint64_t n = 32768 * ctx.scale();
  const std::vector<int64_t> values = StepSeries(n, ctx.seed());
  NeatsStoreOptions options;
  options.shard_size = 1024;
  options.codec = CodecId::kChimp;
  options.seal_threads = 2;  // one background seal worker
  NeatsStore store(options);

  constexpr uint64_t kRounds = 48;
  constexpr uint64_t kBatch = 256;
  std::atomic<uint64_t> frontier{0};
  TaskGroup group(ctx.readers() + 1);
  group.Spawn([&] {
    // Bursts of back-to-back shard-sized appends, then a breath: each
    // burst outruns the sealer, so reads land on pending chunks for real.
    Rng rng(ctx.seed(), /*stream=*/0xA99E);
    LatencyHistogram hist;
    uint64_t fp = 0;
    uint64_t at = 0;
    while (at < n) {
      const uint64_t burst = std::min<uint64_t>(n - at, 4096);
      const uint64_t t0 = NowNs();
      for (uint64_t done = 0; done < burst;) {
        const uint64_t take = std::min<uint64_t>(burst - done, 256);
        fp = MixTraceStep(fp, kOpAppend, at, take);
        store.Append({values.data() + at, take});
        at += take;
        done += take;
        frontier.store(at, std::memory_order_release);
      }
      hist.Record(NowNs() - t0);
      std::this_thread::yield();
    }
    ctx.MergeOp("append_burst", hist);
    ctx.MixTrace(fp);
    ctx.CountIngested(at);
  });
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      Rng rng(ctx.seed(), static_cast<uint64_t>(r) + 1);
      LatencyHistogram hist;
      uint64_t fp = 0;
      uint64_t verified = 0;
      std::vector<uint64_t> idx(kBatch);
      std::vector<int64_t> out(kBatch);
      const uint64_t rounds = kRounds * ctx.scale();
      for (uint64_t q = 0; q < rounds; ++q) {
        // Deterministic per-round horizon: probes reach into data the
        // appender may only just have acked.
        const uint64_t horizon = std::max<uint64_t>((q + 1) * n / rounds, 1);
        if (!AwaitFrontier(frontier, horizon, group)) return;
        for (uint64_t j = 0; j < kBatch; ++j) {
          idx[j] = rng.Below(horizon);
          fp = MixTraceStep(fp, kOpBatch, idx[j]);
        }
        const uint64_t t0 = NowNs();
        store.AccessBatch(idx, out);
        hist.Record(NowNs() - t0);
        for (uint64_t j = 0; j < kBatch; ++j) {
          ctx.Check(out[j] == values[idx[j]],
                    "batch_access[" + std::to_string(idx[j]) + "] diverges");
        }
        verified += kBatch;
      }
      ctx.MergeOp("batch_access", hist);
      ctx.MixTrace(fp);
      ctx.CountVerified(verified);
    });
  }
  group.Wait();
  ctx.Note("pending seals at join: " +
           std::to_string(store.num_pending_seals()));
  store.Flush();
  VerifyWholeStore(ctx, store, values);
  AttachStoreObservability(ctx, store);
}

// --- 4. reopen_under_load ---------------------------------------------------

/// A flushed directory store is re-opened (several times) while readers
/// keep draining the old handle: both handles must serve bit-identical
/// values, and the open itself is timed as an op.
inline void ReopenUnderLoad(ScenarioContext& ctx) {
  const uint64_t n = 16384 * ctx.scale();
  const Dataset ds = MakeDataset("UK", n, ctx.seed());
  io::FaultFs fs;
  NeatsStoreOptions options;
  options.shard_size = 2048;
  options.codec = CodecId::kGorilla;
  options.seal_threads = 1;
  options.fs = &fs;
  NeatsStore store = NeatsStore::CreateDir("reopen", options);
  store.Append({ds.values.data(), ds.values.size()});
  store.Flush();
  ctx.CountIngested(n);

  TaskGroup group(ctx.readers() + 1);
  group.Spawn([&] {
    // The reopener: OpenDir the same directory the old handle still
    // serves, then verify seeded probes through the fresh handle.
    Rng rng(ctx.seed(), /*stream=*/0x09E4);
    LatencyHistogram open_hist, probe_hist;
    uint64_t fp = 0;
    uint64_t verified = 0;
    for (uint64_t round = 0; round < 4 * ctx.scale(); ++round) {
      fp = MixTraceStep(fp, kOpReopen, round);
      uint64_t t0 = NowNs();
      NeatsStore fresh = NeatsStore::OpenDir("reopen", options);
      open_hist.Record(NowNs() - t0);
      ctx.Check(!fresh.degraded(), "fresh handle opened degraded");
      ctx.Check(fresh.size() == n, "fresh handle size diverges");
      for (uint64_t p = 0; p < 512; ++p) {
        const uint64_t idx = rng.Below(n);
        fp = MixTraceStep(fp, kOpPoint, idx);
        t0 = NowNs();
        const int64_t got = fresh.Access(idx);
        probe_hist.Record(NowNs() - t0);
        ctx.Check(got == ds.values[idx],
                  "fresh handle diverges at index " + std::to_string(idx));
        ++verified;
      }
    }
    ctx.MergeOp("reopen_open", open_hist);
    ctx.MergeOp("point_access_new", probe_hist);
    ctx.MixTrace(fp);
    ctx.CountVerified(verified);
  });
  std::atomic<uint64_t> frontier{n};  // fully ingested: readers never wait
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      PointStormReader(ctx, store, ds.values, frontier, group, r,
                       2048 * ctx.scale());
    });
  }
  group.Wait();
  VerifyWholeStore(ctx, store, ds.values);
  AttachStoreObservability(ctx, store);
}

// --- 5. mixed_codec_auto_churn ----------------------------------------------

/// Alternating data shapes under SealPolicy::kAuto: ramp segments compress
/// to nothing under the linear-model codecs, noisy-walk segments win under
/// the XOR codecs, so churning appends + periodic flushes grow a genuinely
/// mixed-codec store — with readers trailing the frontier throughout.
inline void MixedCodecAutoChurn(ScenarioContext& ctx) {
  const uint64_t kSegment = 1024;
  const uint64_t segments = 24 * ctx.scale();
  std::vector<int64_t> values;
  values.reserve(segments * kSegment);
  Rng data_rng(ctx.seed(), /*stream=*/0xDA7A);
  for (uint64_t seg = 0; seg < segments; ++seg) {
    if (seg % 2 == 0) {
      // Linear ramp with a small slope: a one-fragment model fit.
      const int64_t base = static_cast<int64_t>(data_rng.Below(1 << 20));
      const int64_t slope = 1 + static_cast<int64_t>(data_rng.Below(7));
      for (uint64_t i = 0; i < kSegment; ++i) {
        values.push_back(base + slope * static_cast<int64_t>(i));
      }
    } else {
      // Jagged random walk: models fragment, XOR codecs shine.
      int64_t level = static_cast<int64_t>(data_rng.Below(1 << 20));
      for (uint64_t i = 0; i < kSegment; ++i) {
        level += static_cast<int64_t>(data_rng.Below(2001)) - 1000;
        values.push_back(level);
      }
    }
  }

  io::FaultFs fs;
  NeatsStoreOptions options;
  options.shard_size = kSegment;
  options.seal_policy = SealPolicy::kAuto;
  options.codec_candidates = {CodecId::kLeco, CodecId::kAlp,
                              CodecId::kGorilla, CodecId::kChimp};
  options.seal_threads = 1;
  options.fs = &fs;
  NeatsStore store = NeatsStore::CreateDir("churn", options);

  std::atomic<uint64_t> frontier{0};
  TaskGroup group(ctx.readers() + 1);
  group.Spawn([&] {
    // Segment-at-a-time appends; a Flush every few segments cycles the
    // WAL/manifest machinery under reader load.
    LatencyHistogram append_hist, flush_hist;
    uint64_t fp = 0;
    for (uint64_t seg = 0; seg < segments; ++seg) {
      fp = MixTraceStep(fp, kOpAppend, seg * kSegment, kSegment);
      uint64_t t0 = NowNs();
      store.Append({values.data() + seg * kSegment, kSegment});
      append_hist.Record(NowNs() - t0);
      frontier.store((seg + 1) * kSegment, std::memory_order_release);
      if ((seg + 1) % 6 == 0) {
        t0 = NowNs();
        store.Flush();
        flush_hist.Record(NowNs() - t0);
      }
    }
    ctx.MergeOp("append", append_hist);
    ctx.MergeOp("flush", flush_hist);
    ctx.MixTrace(fp);
    ctx.CountIngested(segments * kSegment);
  });
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      PointStormReader(ctx, store, values, frontier, group, r,
                       2048 * ctx.scale());
    });
  }
  group.Wait();
  store.Flush();
  VerifyWholeStore(ctx, store, values);

  std::map<CodecId, size_t> mix;
  for (size_t s = 0; s < store.num_shards(); ++s) ++mix[store.shard_codec(s)];
  std::string note = "codec mix:";
  for (const auto& [codec, count] : mix) {
    note += " " + std::string(CodecName(codec)) + "=" + std::to_string(count);
  }
  ctx.Note(note);
  ctx.Check(mix.size() >= 2,
            "auto-seal picked a single codec for every shard — " + note);
  AttachStoreObservability(ctx, store);
}

// --- 6. corrupt_shard_recovery ----------------------------------------------

/// The firmware-cache disaster, concurrently: shard 0's blob fsync lied,
/// the process died before the WAL reset, and the blob tore. The reopened
/// store serves degraded under a reader storm — probes into the hole get
/// typed kUnavailable (never a wrong value), probes elsewhere stay exact —
/// then Scrub() repairs from the WAL while the same readers keep firing.
inline void CorruptShardRecovery(ScenarioContext& ctx) {
  const uint64_t n = 2048 * ctx.scale();
  const std::vector<int64_t> values = StepSeries(n, ctx.seed());
  auto base_options = [](io::FaultFs* fs) {
    NeatsStoreOptions options;
    options.shard_size = 512;
    // Inline seals: the injected CrashFault must unwind on the scenario
    // thread, like the power cut it models.
    options.seal_threads = 1;
    options.codec = CodecId::kGorilla;
    options.fs = fs;
    // The quarantine below is the scenario's whole point — keep its log
    // events out of the test output (the counters still record them).
    options.log_sink = obs::NullLogSink();
    return options;
  };
  auto run = [&](io::FaultFs& fs) {
    NeatsStore store = NeatsStore::CreateDir("corrupt", base_options(&fs));
    store.Append({values.data(), values.size()});
    store.Flush();
  };

  // Pass 0, fault-free: locate the WAL reset (the Create right after the
  // final manifest commit's SyncDir) — the kill point that preserves the
  // WAL records Scrub repairs from.
  uint64_t reset_op = 0;
  {
    io::FaultFs fs;
    run(fs);
    for (const io::FaultFs::OpRecord& op : fs.trace()) {
      if (op.kind == io::FaultFs::OpKind::kSyncDir) reset_op = op.index + 1;
    }
    ctx.Check(reset_op != 0, "workload trace has no SyncDir");
  }

  io::FaultFs fs(io::FaultFs::Options{.seed = ctx.seed()});
  fs.LieOnSyncPath(StoreManifest::ShardFileName(0));
  fs.KillAtOp(reset_op);
  bool crashed = false;
  try {
    run(fs);
  } catch (const io::CrashFault&) {
    crashed = true;
  }
  ctx.Check(crashed, "kill point never fired");
  fs.Crash();
  fs.LieOnSyncPath("");  // the firmware behaves from here on

  // The seeded tear may keep any prefix of the never-persisted blob —
  // pin the scenario: shard 0 must actually be torn.
  const std::string shard0 = "corrupt/" + StoreManifest::ShardFileName(0);
  const StoreManifest manifest = StoreManifest::Deserialize(
      fs.ReadRaw(std::string("corrupt/") + StoreManifest::FileName()));
  std::vector<uint8_t> torn = fs.ReadRaw(shard0);
  if (torn.size() == manifest.shards[0].blob_bytes + kChecksumTrailerBytes) {
    torn.resize(torn.size() / 2);
    fs.SetRaw(shard0, torn);
  }

  NeatsStore store = NeatsStore::OpenDir("corrupt", base_options(&fs));
  ctx.Check(store.degraded(), "torn shard was not quarantined");
  const uint64_t hole = 512;  // shard 0's range: [0, 512)
  ctx.CountIngested(n);

  // Phase A (every reader, before Scrub may start): probes into the hole
  // must fail typed — deterministically, since the barrier below keeps
  // the repair from racing them. Phase B: full-range probes racing the
  // repair; a probe either verifies exactly or fails typed, never wrong.
  constexpr uint64_t kHoleProbes = 256;
  std::atomic<int> phase_a_done{0};
  TaskGroup group(ctx.readers());
  for (int r = 0; r < ctx.readers(); ++r) {
    group.Spawn([&, r] {
      Rng rng(ctx.seed(), static_cast<uint64_t>(r) + 1);
      LatencyHistogram degraded_hist, probe_hist;
      uint64_t fp = 0;
      uint64_t verified = 0, unavailable = 0;
      for (uint64_t p = 0; p < kHoleProbes; ++p) {
        const uint64_t idx = rng.Below(hole);
        fp = MixTraceStep(fp, kOpPoint, idx);
        const uint64_t t0 = NowNs();
        try {
          const int64_t got = store.Access(idx);
          ctx.Check(false, "quarantined read returned " +
                               std::to_string(got) + " at index " +
                               std::to_string(idx));
        } catch (const Error& e) {
          degraded_hist.Record(NowNs() - t0);
          ctx.Check(e.code() == StatusCode::kUnavailable,
                    "quarantined read failed untyped: " +
                        std::string(e.what()));
          ++unavailable;
        }
      }
      phase_a_done.fetch_add(1, std::memory_order_acq_rel);
      for (uint64_t p = 0; p < 1024 * ctx.scale(); ++p) {
        const uint64_t idx = rng.Below(n);
        fp = MixTraceStep(fp, kOpPoint, idx);
        const uint64_t t0 = NowNs();
        try {
          const int64_t got = store.Access(idx);
          probe_hist.Record(NowNs() - t0);
          ctx.Check(got == values[idx],
                    "degraded-store read diverges at index " +
                        std::to_string(idx));
          ++verified;
        } catch (const Error& e) {
          degraded_hist.Record(NowNs() - t0);
          ctx.Check(e.code() == StatusCode::kUnavailable &&
                        idx < hole,
                    "unexpected failure at index " + std::to_string(idx) +
                        ": " + std::string(e.what()));
          ++unavailable;
        }
      }
      ctx.MergeOp("degraded_probe", degraded_hist);
      ctx.MergeOp("point_access", probe_hist);
      ctx.MixTrace(fp);
      ctx.CountVerified(verified);
      ctx.CountUnavailable(unavailable);
    });
  }

  // Scrub under load, once every reader has finished its hole probes.
  while (phase_a_done.load(std::memory_order_acquire) < ctx.readers()) {
    if (group.failed()) break;
    std::this_thread::yield();
  }
  LatencyHistogram scrub_hist;
  const uint64_t t0 = NowNs();
  const NeatsStore::RepairReport& report = store.Scrub();
  scrub_hist.Record(NowNs() - t0);
  ctx.MergeOp("scrub", scrub_hist);
  ctx.Check(report.quarantined.empty(),
            "Scrub left a shard quarantined");
  ctx.Check(report.repaired.size() == 1 && report.repaired[0] == 0,
            "Scrub did not repair shard 0 from the WAL");
  group.Wait();

  ctx.Check(!store.degraded(), "store still degraded after repair");
  VerifyWholeStore(ctx, store, values);
  AttachStoreObservability(ctx, store);

  // The repair is durable: a fresh open is fully healthy.
  NeatsStore again = NeatsStore::OpenDir("corrupt", base_options(&fs));
  ctx.Check(!again.degraded(), "repair did not survive a reopen");
  VerifyWholeStore(ctx, again, values);
}

}  // namespace scenarios_internal

/// Registers the six built-in scenarios (idempotent).
inline void RegisterBuiltinScenarios() {
  static const bool registered = [] {
    using namespace scenarios_internal;
    ScenarioRegistry& reg = ScenarioRegistry::Instance();
    reg.Register({"steady_ingest_point_storm",
                  "one appender + point-lookup readers trailing the frontier",
                  SteadyIngestPointStorm});
    reg.Register({"dashboard_fanout",
                  "multi-range refreshes + range sums over a flushed prefix",
                  DashboardFanout});
    reg.Register({"burst_append_during_seal",
                  "bursty appends racing the background sealer and batched reads",
                  BurstAppendDuringSeal});
    reg.Register({"reopen_under_load",
                  "OpenDir of a live directory while readers drain the old handle",
                  ReopenUnderLoad});
    reg.Register({"mixed_codec_auto_churn",
                  "kAuto seal churn over alternating data shapes, readers trailing",
                  MixedCodecAutoChurn});
    reg.Register({"corrupt_shard_recovery",
                  "torn-shard quarantine + Scrub repair under a reader storm",
                  CorruptShardRecovery});
    return true;
  }();
  (void)registered;
}

/// The registry with the built-ins guaranteed present.
inline const ScenarioRegistry& BuiltinScenarios() {
  RegisterBuiltinScenarios();
  return ScenarioRegistry::Instance();
}

}  // namespace neats::scenario
