// CRC32C (Castagnoli) and the 16-byte checksum trailer the durability layer
// appends to every file it wants self-validating: sealed shard blobs, the
// store manifest (format v3), and every write-ahead-log record (the WAL
// embeds the CRC per record instead of per file; see src/store/wal.hpp).
//
// Trailer layout, appended after the payload bytes:
//
//   word 0   payload byte count (the file size minus 16)
//   word 1   high 32 bits: trailer magic "NCK1"; low 32 bits: CRC32C(payload)
//
// CheckChecksumTrailer distinguishes three states on read: kValid (trailer
// present, CRC matches), kAbsent (no trailer shape at the tail — a legacy
// file written before checksums existed), and kCorrupt (the tail claims to
// be a trailer but the CRC disagrees — bit rot or a torn write). Callers
// that *know* a trailer must be present (a manifest v3, a shard named by a
// checksummed manifest row) treat kAbsent as corruption too.

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace neats {

namespace internal {

inline const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// CRC32C over `bytes`, continuing from `crc` (pass the previous return
/// value to checksum a file in pieces; 0 starts a fresh checksum).
inline uint32_t Crc32c(std::span<const uint8_t> bytes, uint32_t crc = 0) {
  const auto& table = internal::Crc32cTable();
  crc = ~crc;
  for (uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// ASCII "NCK1" — the high half of the trailer's second word.
inline constexpr uint32_t kChecksumTrailerMagic = 0x314B434Eu;

/// Byte size of the checksum trailer.
inline constexpr size_t kChecksumTrailerBytes = 16;

/// Appends the 16-byte checksum trailer over the current contents of
/// `bytes` (which become the payload).
inline void AppendChecksumTrailer(std::vector<uint8_t>* bytes) {
  const uint64_t payload = bytes->size();
  const uint64_t tag = (uint64_t{kChecksumTrailerMagic} << 32) |
                       Crc32c({bytes->data(), bytes->size()});
  const size_t at = bytes->size();
  bytes->resize(at + kChecksumTrailerBytes);
  std::memcpy(bytes->data() + at, &payload, 8);
  std::memcpy(bytes->data() + at + 8, &tag, 8);
}

/// Outcome of probing a file's tail for a checksum trailer.
enum class TrailerState {
  kValid,    // trailer present, CRC matches the payload
  kAbsent,   // no trailer shape at the tail (legacy, pre-checksum file)
  kCorrupt,  // trailer shape present but the CRC disagrees
};

/// CheckChecksumTrailer result: the state, the payload bytes (everything
/// before the trailer for kValid/kCorrupt, the whole input for kAbsent) and
/// the payload CRC actually computed.
struct TrailerInfo {
  TrailerState state = TrailerState::kAbsent;
  std::span<const uint8_t> payload;
  uint32_t crc = 0;
};

/// Probes `bytes` for a trailing checksum trailer and verifies it.
inline TrailerInfo CheckChecksumTrailer(std::span<const uint8_t> bytes) {
  TrailerInfo info;
  info.payload = bytes;
  if (bytes.size() < kChecksumTrailerBytes) return info;
  uint64_t payload_bytes, tag;
  std::memcpy(&payload_bytes, bytes.data() + bytes.size() - 16, 8);
  std::memcpy(&tag, bytes.data() + bytes.size() - 8, 8);
  if ((tag >> 32) != kChecksumTrailerMagic ||
      payload_bytes != bytes.size() - kChecksumTrailerBytes) {
    return info;  // kAbsent: not a trailer
  }
  info.payload = bytes.subspan(0, bytes.size() - kChecksumTrailerBytes);
  info.crc = Crc32c(info.payload);
  info.state = info.crc == static_cast<uint32_t>(tag) ? TrailerState::kValid
                                                      : TrailerState::kCorrupt;
  return info;
}

}  // namespace neats
