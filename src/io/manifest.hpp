// The store manifest: the small routing file at the root of a NeatsStore
// directory (docs/FORMAT.md, "Store directory layout").
//
// A store directory holds one compressed blob per sealed shard plus
// MANIFEST.neats, which records the target shard size and, per shard, the
// global index range it covers, the byte size of its blob, and — since
// manifest v2 — the CodecId that compressed it (the codec registry routes
// open/query per shard by this word, which is what makes mixed-codec stores
// possible). The manifest is what OpenDir routes by: shard k serves global
// indices [shards[k].first, shards[k].first + shards[k].count), the blob
// lives in ShardFileName(k), and the recorded blob_bytes is cross-checked
// against the actual file before the blob is opened — a manifest/blob
// mismatch aborts instead of serving a half-written store.
//
// The wire format reuses the flat word grammar of format v2/v3 (WordWriter/
// WordReader): magic "NEATSMF\0", a version word, the target shard size,
// the shard count, then one row per shard — three words in version 1
// (first, count, blob_bytes; every shard is NeaTS), four in version 2 (the
// codec id appended), five in version 3 (a blob-CRC word appended: high 32
// bits 1 when a CRC32C of the blob payload is recorded in the low 32 bits,
// all-zero when it is not). A version-3 manifest additionally carries the
// 16-byte CRC32C checksum trailer (io/checksum.hpp) after its payload, so
// bit rot in the routing file itself is detected before any row is trusted.
// Version 1 and 2 manifests load forever (additive-revision policy,
// ROADMAP) but report a warning — they carry no checksums, so the caller
// knows to upgrade them on the next Flush(). Writes always emit version 3.
// Loads are hardened the same way as blob loads — counts are bounded by the
// backing bytes, coverage must be contiguous from index 0, codec ids must
// be assigned, and every violation aborts loudly (NEATS_REQUIRE), matching
// the clobber-sweep contract of the other loaders.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/codec_id.hpp"
#include "io/checksum.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Parsed (or to-be-written) contents of a store directory's manifest file.
struct StoreManifest {
  /// One sealed shard: global index range, blob size, and its codec.
  struct Shard {
    uint64_t first = 0;       // global index of the shard's first value
    uint64_t count = 0;       // number of values in the shard (> 0)
    uint64_t blob_bytes = 0;  // byte size of the blob's codec payload
    CodecId codec = CodecId::kNeats;  // codec that compressed the blob (v2)
    uint32_t crc = 0;      // CRC32C of the blob payload, if has_crc (v3)
    bool has_crc = false;  // false for rows loaded from a v1/v2 manifest
  };

  uint64_t shard_size = 0;  // target values per sealed shard (> 0)
  std::vector<Shard> shards;

  /// Total sealed values (the index one past the last shard).
  uint64_t total() const {
    return shards.empty() ? 0 : shards.back().first + shards.back().count;
  }

  /// Name of the manifest file inside a store directory.
  static const char* FileName() { return "MANIFEST.neats"; }

  /// Blob file name of shard `index` inside a store directory, zero-padded
  /// so directory listings sort in shard order.
  static std::string ShardFileName(size_t index) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "shard-%06zu.neats", index);
    return buf;
  }

  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kVersion);
    w.Put(shard_size);
    w.Put(shards.size());
    for (const Shard& s : shards) {
      w.Put(s.first);
      w.Put(s.count);
      w.Put(s.blob_bytes);
      w.Put(static_cast<uint64_t>(s.codec));
      w.Put(s.has_crc ? (uint64_t{1} << 32) | s.crc : 0);
    }
    AppendChecksumTrailer(out);
  }

  /// Parses Serialize output (version 3, checksum trailer required) or a
  /// legacy version-1/2 manifest (no checksums; a warning is appended to
  /// `warnings` when non-null). Aborts (NEATS_REQUIRE) on anything that is
  /// not a well-formed manifest: wrong magic/version, a failed checksum, a
  /// shard count the bytes cannot back, zero-sized shards, an unassigned
  /// codec id, or coverage that is not contiguous from global index 0.
  static StoreManifest Deserialize(std::span<const uint8_t> bytes,
                                   std::vector<std::string>* warnings =
                                       nullptr) {
    NEATS_REQUIRE(bytes.size() >= 16, "not a NeaTS store manifest");
    uint64_t magic, version;
    std::memcpy(&magic, bytes.data(), 8);
    std::memcpy(&version, bytes.data() + 8, 8);
    NEATS_REQUIRE(magic == kMagic, "not a NeaTS store manifest");
    NEATS_REQUIRE(version >= 1 && version <= kVersion,
                  "unsupported NeaTS store manifest version");
    std::span<const uint8_t> payload = bytes;
    if (version >= 3) {
      const TrailerInfo trailer = CheckChecksumTrailer(bytes);
      NEATS_REQUIRE(trailer.state == TrailerState::kValid,
                    "NeaTS store manifest fails its checksum");
      payload = trailer.payload;
    } else if (warnings != nullptr) {
      warnings->push_back(
          "manifest is version " + std::to_string(version) +
          " (no checksums); the next Flush() upgrades it to version 3");
    }
    const size_t row_words = version == 1 ? 3 : version == 2 ? 4 : 5;
    WordReader r(payload, /*borrow=*/false);
    r.Get();  // magic, checked above
    r.Get();  // version, checked above
    StoreManifest m;
    m.shard_size = r.Get();
    NEATS_REQUIRE(m.shard_size > 0 && m.shard_size <= (uint64_t{1} << 56),
                  "corrupt NeaTS store manifest");
    uint64_t count = r.Get();
    NEATS_REQUIRE(count <= (payload.size() - r.position()) / (8 * row_words),
                  "corrupt NeaTS store manifest");
    m.shards.reserve(count);
    uint64_t next_first = 0;
    for (uint64_t i = 0; i < count; ++i) {
      Shard s;
      s.first = r.Get();
      s.count = r.Get();
      s.blob_bytes = r.Get();
      if (version >= 2) {
        uint64_t codec = r.Get();
        NEATS_REQUIRE(IsValidCodecId(codec), "corrupt NeaTS store manifest");
        s.codec = static_cast<CodecId>(codec);
      }
      if (version >= 3) {
        const uint64_t crc_word = r.Get();
        NEATS_REQUIRE(crc_word >> 32 <= 1, "corrupt NeaTS store manifest");
        s.has_crc = (crc_word >> 32) == 1;
        s.crc = static_cast<uint32_t>(crc_word);
        NEATS_REQUIRE(s.has_crc || s.crc == 0,
                      "corrupt NeaTS store manifest");
      }
      // Contiguous coverage from 0 and the same wrap guard as the blob
      // loaders: a forged count cannot push `first + count` past 2^56.
      NEATS_REQUIRE(s.first == next_first && s.count > 0 &&
                        s.count <= (uint64_t{1} << 56) - s.first &&
                        s.blob_bytes > 0,
                    "corrupt NeaTS store manifest");
      next_first = s.first + s.count;
      m.shards.push_back(s);
    }
    NEATS_REQUIRE(r.position() == payload.size(),
                  "corrupt NeaTS store manifest");
    return m;
  }

 private:
  // Little-endian "NEATSMF\0" — same ASCII-sniffable convention as the blob
  // magics ("NEATSv2", "NEATSL2").
  static constexpr uint64_t kMagic = 0x00464D535441454EULL;
  static constexpr uint64_t kVersion = 3;
};

}  // namespace neats
