// The IO seam of the durability layer: every file the store layer writes or
// reads goes through a neats::io::FileSystem, so the same code runs against
// the production POSIX backend (PosixFileSystem()) and the deterministic
// fault-injection backend (FaultFs, src/io/fault_fs.hpp) that the
// crash-recovery harness drives.
//
// The interface is deliberately narrow — exactly the syscall surface a
// crash-consistent store needs, each method a boundary where FaultFs can
// inject a fault or a kill-point:
//
//   Create / OpenAppend  -> WritableFile (sequential Write + Sync + Close)
//   OpenRead             -> MappedRegion (mmap under POSIX, owned elsewhere)
//   Exists / FileSize / Remove / Rename / SyncDir / CreateDirs
//
// Durability contract (what the store layer relies on): bytes are on stable
// storage only after a successful WritableFile::Sync; a new or renamed name
// survives power loss only after SyncDir on its directory; Rename is atomic
// (the target is always the old or the new file, never a mix). Close never
// syncs. All failures throw neats::Error with StatusCode::kIo and an
// errno/strerror context so recovery failures are diagnosable from the
// message alone.

#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"

#if NEATS_HAS_FSYNC
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace neats::io {

/// Read-only file contents, 8-byte aligned: an mmap'd view (POSIX backend)
/// or an owned word-aligned buffer (FaultFs, non-POSIX fallback). Move-only;
/// anything borrowing bytes() must not outlive the region.
class MappedRegion {
 public:
  MappedRegion() = default;

  static MappedRegion FromMmap(MmapFile map) {
    MappedRegion r;
    r.map_ = std::move(map);
    return r;
  }

  static MappedRegion FromBytes(std::span<const uint8_t> bytes) {
    MappedRegion r;
    r.owned_.resize((bytes.size() + 7) / 8, 0);  // word-backed => aligned
    if (!bytes.empty()) {
      std::memcpy(r.owned_.data(), bytes.data(), bytes.size());
    }
    r.owned_size_ = bytes.size();
    return r;
  }

  std::span<const uint8_t> bytes() const {
    if (owned_size_ > 0 || !owned_.empty()) {
      return {reinterpret_cast<const uint8_t*>(owned_.data()), owned_size_};
    }
    return map_.bytes();
  }
  size_t size() const { return bytes().size(); }

  /// Page-cache hint; meaningful only for the mmap backend.
  void Advise(MmapFile::Advice advice) const { map_.Advise(advice); }

 private:
  MmapFile map_;
  std::vector<uint64_t> owned_;
  size_t owned_size_ = 0;
};

/// A sequentially-writable file handle. Write appends all of `bytes`
/// (looping over partial writes and EINTR internally); Sync persists
/// everything written so far to stable storage; Close releases the handle
/// without syncing (the destructor closes too).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual void Write(std::span<const uint8_t> bytes) = 0;
  virtual void Sync() = 0;
  virtual void Close() = 0;
};

/// The filesystem the store layer runs against (see file comment).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates (or truncates) `path` for writing.
  virtual std::unique_ptr<WritableFile> Create(const std::string& path) = 0;

  /// Opens `path` for appending, creating it empty if missing.
  virtual std::unique_ptr<WritableFile> OpenAppend(
      const std::string& path) = 0;

  /// Opens `path` read-only; throws (kIo/kFailed) if it cannot be read.
  virtual MappedRegion OpenRead(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;
  virtual uint64_t FileSize(const std::string& path) = 0;

  /// Atomically renames `from` onto `to` (replacing it).
  virtual void Rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path`; a missing file is not an error.
  virtual void Remove(const std::string& path) = 0;

  /// Persists the directory's entries (creations, renames, removals).
  virtual void SyncDir(const std::string& dir) = 0;

  /// mkdir -p.
  virtual void CreateDirs(const std::string& dir) = 0;
};

namespace internal {

[[noreturn]] inline void ThrowIo(const std::string& what,
                                 const std::string& path, int err) {
  throw Error(what + ": " + path + ": " + std::strerror(err),
              StatusCode::kIo);
}

#if NEATS_HAS_FSYNC

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { Close(); }

  void Write(std::span<const uint8_t> bytes) override {
    size_t at = 0;
    while (at < bytes.size()) {
      ssize_t wrote = ::write(fd_, bytes.data() + at, bytes.size() - at);
      if (wrote < 0) {
        if (errno == EINTR) continue;  // retry the interrupted syscall
        ThrowIo("write failed", path_, errno);
      }
      at += static_cast<size_t>(wrote);  // partial write: keep looping
    }
  }

  void Sync() override {
    if (::fsync(fd_) != 0) ThrowIo("fsync failed", path_, errno);
  }

  void Close() override {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string path_;
};

class PosixFileSystemImpl final : public FileSystem {
 public:
  std::unique_ptr<WritableFile> Create(const std::string& path) override {
    return OpenFlags(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override {
    return OpenFlags(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  MappedRegion OpenRead(const std::string& path) override {
    return MappedRegion::FromMmap(MmapFile::Open(path));
  }

  bool Exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  uint64_t FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) ThrowIo("cannot stat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  void Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      ThrowIo("rename to " + to + " failed", from, errno);
    }
  }

  void Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      ThrowIo("unlink failed", path, errno);
    }
  }

  void SyncDir(const std::string& dir) override { ::neats::SyncDir(dir); }

  void CreateDirs(const std::string& dir) override {
    std::filesystem::create_directories(dir);
  }

 private:
  static std::unique_ptr<WritableFile> OpenFlags(const std::string& path,
                                                 int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) ThrowIo("cannot open for writing", path, errno);
    return std::make_unique<PosixWritableFile>(fd, path);
  }
};

#else  // !NEATS_HAS_FSYNC — stdio fallback; Sync degrades to flush.

class StdioWritableFile final : public WritableFile {
 public:
  StdioWritableFile(std::FILE* fp, std::string path)
      : fp_(fp), path_(std::move(path)) {}
  ~StdioWritableFile() override { Close(); }

  void Write(std::span<const uint8_t> bytes) override {
    if (std::fwrite(bytes.data(), 1, bytes.size(), fp_) != bytes.size()) {
      ThrowIo("write failed", path_, errno);
    }
  }
  void Sync() override { std::fflush(fp_); }
  void Close() override {
    if (fp_ != nullptr) std::fclose(fp_);
    fp_ = nullptr;
  }

 private:
  std::FILE* fp_ = nullptr;
  std::string path_;
};

class PosixFileSystemImpl final : public FileSystem {
 public:
  std::unique_ptr<WritableFile> Create(const std::string& path) override {
    return OpenMode(path, "wb");
  }
  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override {
    return OpenMode(path, "ab");
  }
  MappedRegion OpenRead(const std::string& path) override {
    return MappedRegion::FromMmap(MmapFile::Open(path));
  }
  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }
  uint64_t FileSize(const std::string& path) override {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) ThrowIo("cannot stat", path, ec.value());
    return static_cast<uint64_t>(size);
  }
  void Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) ThrowIo("rename to " + to + " failed", from, ec.value());
  }
  void Remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  void SyncDir(const std::string& dir) override { (void)dir; }
  void CreateDirs(const std::string& dir) override {
    std::filesystem::create_directories(dir);
  }

 private:
  static std::unique_ptr<WritableFile> OpenMode(const std::string& path,
                                                const char* mode) {
    std::FILE* fp = std::fopen(path.c_str(), mode);
    if (fp == nullptr) ThrowIo("cannot open for writing", path, errno);
    return std::make_unique<StdioWritableFile>(fp, path);
  }
};

#endif  // NEATS_HAS_FSYNC

}  // namespace internal

/// The process-wide production filesystem.
inline FileSystem& PosixFileSystem() {
  static internal::PosixFileSystemImpl fs;
  return fs;
}

/// Create + Write + Sync + Close in one call — the durable blob write the
/// seal path and the manifest temp file use.
inline void WriteFileDurableTo(FileSystem& fs, const std::string& path,
                               std::span<const uint8_t> bytes) {
  std::unique_ptr<WritableFile> f = fs.Create(path);
  f->Write(bytes);
  f->Sync();
  f->Close();
}

}  // namespace neats::io
