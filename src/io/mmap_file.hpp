// Read-only memory-mapped file, the storage backend behind zero-copy opens:
//
//   neats::MmapFile map = neats::MmapFile::Open(path);  // keep alive!
//   neats::Neats view = neats::Neats::View(map.bytes());
//
// serves queries straight out of the page cache with no deserialization
// copy. The mapping must outlive every object borrowing from it — never
// pass a temporary MmapFile's bytes() to View. On platforms without POSIX
// mmap the file is read into a word-aligned heap buffer instead, so callers
// keep the same 8-byte-alignment guarantee either way.

#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NEATS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define NEATS_HAS_MMAP 0
#include <cstdio>
#include <filesystem>
#include <system_error>
#endif

namespace neats {

/// Move-only RAII wrapper over a read-only file mapping.
class MmapFile {
 public:
  MmapFile() = default;

  /// Maps `path` read-only. Throws neats::Error (kIo) with the path and the
  /// strerror text if the file cannot be opened, so recovery failures are
  /// diagnosable from the message alone.
  static MmapFile Open(const std::string& path) {
    MmapFile f;
#if NEATS_HAS_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) ThrowErrno("cannot open file for mmap", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      ThrowErrno("cannot stat file for mmap", path, err);
    }
    f.size_ = static_cast<size_t>(st.st_size);
    if (f.size_ > 0) {
      void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p == MAP_FAILED) {
        const int err = errno;
        ::close(fd);
        f.size_ = 0;
        ThrowErrno("mmap failed", path, err);
      }
      f.data_ = static_cast<const uint8_t*>(p);
    }
    ::close(fd);
#else
    std::error_code ec;
    const auto file_size = std::filesystem::file_size(path, ec);
    if (ec) {
      throw Error("cannot stat file: " + path + ": " + ec.message(),
                  StatusCode::kIo);
    }
    f.size_ = static_cast<size_t>(file_size);
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) ThrowErrno("cannot open file", path);
    f.fallback_.resize((f.size_ + 7) / 8);  // word-backed => 8-byte aligned
    if (f.size_ > 0) {
      if (std::fread(f.fallback_.data(), 1, f.size_, fp) != f.size_) {
        std::fclose(fp);
        throw Error("short read: " + path, StatusCode::kIo);
      }
      f.data_ = reinterpret_cast<const uint8_t*>(f.fallback_.data());
    }
    std::fclose(fp);
#endif
    return f;
  }

  MmapFile(MmapFile&& o) noexcept { *this = std::move(o); }
  MmapFile& operator=(MmapFile&& o) noexcept {
    if (this == &o) return *this;
    Reset();
#if !NEATS_HAS_MMAP
    fallback_ = std::move(o.fallback_);
    data_ = o.size_ > 0 ? reinterpret_cast<const uint8_t*>(fallback_.data())
                        : nullptr;
#else
    data_ = o.data_;
#endif
    size_ = o.size_;
    o.data_ = nullptr;
    o.size_ = 0;
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile() { Reset(); }

  /// The mapped bytes; 8-byte aligned (page-aligned under real mmap).
  std::span<const uint8_t> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }

  /// Page-cache access hints for the mapping.
  enum class Advice {
    kNormal,      // default readahead
    kSequential,  // aggressive readahead, drop-behind (full scans)
    kRandom,      // disable readahead (point queries)
    kWillNeed,    // prefetch the pages now (an imminent batch/range query)
  };

  /// Forwards `advice` to madvise over the whole mapping. Purely a hint —
  /// errors are ignored, and the heap-buffer fallback (no POSIX mmap) is a
  /// no-op. The store layer calls this to prefetch the shard(s) a batched
  /// query is about to walk (ROADMAP, scale-out).
  void Advise(Advice advice) const {
#if NEATS_HAS_MMAP
    if (data_ == nullptr) return;
    int flag = MADV_NORMAL;
    switch (advice) {
      case Advice::kNormal: flag = MADV_NORMAL; break;
      case Advice::kSequential: flag = MADV_SEQUENTIAL; break;
      case Advice::kRandom: flag = MADV_RANDOM; break;
      case Advice::kWillNeed: flag = MADV_WILLNEED; break;
    }
    (void)::madvise(const_cast<uint8_t*>(data_), size_, flag);
#else
    (void)advice;
#endif
  }

 private:
  [[noreturn]] static void ThrowErrno(const std::string& what,
                                      const std::string& path,
                                      int err = errno) {
    throw Error(what + ": " + path + ": " + std::strerror(err),
                StatusCode::kIo);
  }

  void Reset() {
#if NEATS_HAS_MMAP
    if (data_ != nullptr) ::munmap(const_cast<uint8_t*>(data_), size_);
#endif
    data_ = nullptr;
    size_ = 0;
  }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
#if !NEATS_HAS_MMAP
  std::vector<uint64_t> fallback_;
#endif
};

}  // namespace neats
