// Deterministic fault-injection filesystem for the crash-recovery harness.
//
// FaultFs implements the neats::io::FileSystem interface entirely in memory
// and models what a real disk guarantees — no more. Every inode tracks two
// byte strings: the *cache* (what reads see, i.e. the page cache) and the
// *durable* content (what survives power loss). Writes land in the cache;
// only WritableFile::Sync copies cache to durable. Directory operations
// (create, rename, remove) take effect in the live namespace immediately but
// stay *pending* until SyncDir persists them — exactly the POSIX contract
// the store's blob-then-manifest ordering relies on.
//
// Faults, all seeded and reproducible:
//
//   - Kill-points: every mutating call (create, each write chunk, fsync,
//     rename, remove, syncdir) increments a global op counter; KillAtOp(k)
//     throws CrashFault at op k *before* its effect applies. The op count of
//     a fault-free pass enumerates every kill-point for the sweep.
//   - Crash(): simulates the power cut after a kill — reverts to durable
//     state, keeps only a seeded prefix of the pending directory ops (dir
//     entries hit disk in order), and tears each file not fsynced since its
//     last change: a fresh/truncated file keeps either its old content or a
//     seeded prefix of the new bytes; an append-only file keeps its durable
//     prefix plus a seeded prefix of the unsynced tail (fsynced bytes are
//     never undone). Open handles from before the crash fail with kIo.
//   - FailAtOp(k): op k throws a kIo Error (transient syscall failure).
//   - LieOnSyncPath(substr): fsync on matching paths reports success but
//     persists nothing — the lying-fsync / firmware-cache scenario.
//   - SetCapacity(bytes): total cache bytes are capped; the write that would
//     exceed it applies a short write and throws ENOSPC-style kIo.
//
// Simplification (documented, deliberate): fsync on a file also persists its
// directory entry, as ext4/xfs do in practice; SyncDir is still required for
// renames and removals.

#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "io/fs.hpp"

namespace neats::io {

/// Thrown at a kill-point. Deliberately NOT a std::exception: a power cut
/// does not care about catch (const std::exception&) blocks, so neither does
/// this — it unwinds through the store's error handling untouched and only
/// the harness catches it.
struct CrashFault {
  uint64_t op = 0;  // the op index that "killed the process"
};

class FaultFs final : public FileSystem {
 public:
  enum class OpKind { kCreate, kWrite, kSync, kRename, kRemove, kSyncDir };

  struct OpRecord {
    uint64_t index = 0;  // 1-based global op index (the kill-point id)
    OpKind kind = OpKind::kWrite;
    std::string path;
  };

  struct Options {
    uint64_t seed = 1;
    uint64_t capacity_bytes = ~uint64_t{0};  // total cache bytes allowed
    size_t write_chunk = 4096;  // bytes per counted write op (tear grain)
  };

  FaultFs() : FaultFs(Options{}) {}
  explicit FaultFs(Options options) : opts_(options), rng_(options.seed) {}

  // --- fault controls -----------------------------------------------------

  /// Arms a one-shot kill: op number `k` (1-based) throws CrashFault.
  void KillAtOp(uint64_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    kill_at_ = k;
  }

  /// Arms a one-shot transient failure: op `k` throws a kIo Error.
  void FailAtOp(uint64_t k, std::string message) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_at_ = k;
    fail_msg_ = std::move(message);
  }

  /// fsync on paths containing `substr` succeeds without persisting
  /// anything. Empty disables.
  void LieOnSyncPath(std::string substr) {
    std::lock_guard<std::mutex> lock(mu_);
    lie_sync_substr_ = std::move(substr);
  }

  /// Caps total cache bytes; exceeding writes get ENOSPC-style kIo.
  void SetCapacity(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    opts_.capacity_bytes = bytes;
  }

  /// The power cut: reverts to crash-consistent durable state (see file
  /// comment) and invalidates all open handles. Disarms pending faults.
  void Crash() {
    std::lock_guard<std::mutex> lock(mu_);
    kill_at_ = 0;
    fail_at_ = 0;
    // Directory entries hit disk in order: a seeded prefix of the pending
    // namespace ops survives, the rest are lost.
    const size_t survive =
        pending_.empty() ? 0 : static_cast<size_t>(NextRand() % (pending_.size() + 1));
    for (size_t i = 0; i < survive; ++i) ApplyPending(pending_[i]);
    pending_.clear();
    std::set<Inode*> torn;
    for (auto& [path, inode] : dns_) {
      if (torn.insert(inode.get()).second) TearInode(*inode);
    }
    ns_ = dns_;
    ++epoch_;
  }

  // --- introspection for the harness --------------------------------------

  uint64_t op_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return op_count_;
  }

  std::vector<OpRecord> trace() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }

  /// XORs `mask` into the byte at `offset` of `path`, in both the cache and
  /// the durable copy — the bit-rot injection the checksum sweeps use.
  void CorruptByte(const std::string& path, size_t offset, uint8_t mask) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ns_.find(path);
    NEATS_REQUIRE(it != ns_.end(), "CorruptByte: no such file");
    Inode& ino = *it->second;
    NEATS_REQUIRE(offset < ino.cache.size(), "CorruptByte: offset past EOF");
    ino.cache[offset] ^= mask;
    if (offset < ino.durable.size()) ino.durable[offset] ^= mask;
  }

  /// Current (cache) content of `path`.
  std::vector<uint8_t> ReadRaw(const std::string& path) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ns_.find(path);
    NEATS_REQUIRE(it != ns_.end(), "ReadRaw: no such file");
    return it->second->cache;
  }

  /// Plants `path` with `bytes`, fully durable — for handcrafting legacy
  /// or corrupt files without going through the write path.
  void SetRaw(const std::string& path, std::vector<uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto inode = std::make_shared<Inode>();
    inode->cache = bytes;
    inode->durable = std::move(bytes);
    inode->synced_once = true;
    ns_[path] = inode;
    dns_[path] = inode;
  }

  // --- FileSystem interface -----------------------------------------------

  std::unique_ptr<WritableFile> Create(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    Op(OpKind::kCreate, path);
    auto it = ns_.find(path);
    std::shared_ptr<Inode> inode;
    if (it != ns_.end()) {
      inode = it->second;
      inode->cache.clear();
      inode->truncated_since_sync = true;
    } else {
      inode = std::make_shared<Inode>();
      inode->truncated_since_sync = true;
      ns_[path] = inode;
      pending_.push_back({OpKind::kCreate, path, {}, inode});
    }
    return std::make_unique<FaultFile>(this, std::move(inode), path, epoch_);
  }

  std::unique_ptr<WritableFile> OpenAppend(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ns_.find(path);
    std::shared_ptr<Inode> inode;
    if (it != ns_.end()) {
      inode = it->second;
    } else {
      Op(OpKind::kCreate, path);
      inode = std::make_shared<Inode>();
      ns_[path] = inode;
      pending_.push_back({OpKind::kCreate, path, {}, inode});
    }
    return std::make_unique<FaultFile>(this, std::move(inode), path, epoch_);
  }

  MappedRegion OpenRead(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ns_.find(path);
    if (it == ns_.end()) {
      throw Error("cannot open file: " + path + ": No such file or directory",
                  StatusCode::kIo);
    }
    return MappedRegion::FromBytes(
        {it->second->cache.data(), it->second->cache.size()});
  }

  bool Exists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    return ns_.count(path) != 0;
  }

  uint64_t FileSize(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ns_.find(path);
    if (it == ns_.end()) {
      throw Error("cannot stat: " + path + ": No such file or directory",
                  StatusCode::kIo);
    }
    return it->second->cache.size();
  }

  void Rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(mu_);
    Op(OpKind::kRename, from);
    auto it = ns_.find(from);
    if (it == ns_.end()) {
      throw Error("rename to " + to + " failed: " + from +
                      ": No such file or directory",
                  StatusCode::kIo);
    }
    std::shared_ptr<Inode> inode = it->second;
    ns_.erase(it);
    ns_[to] = inode;
    pending_.push_back({OpKind::kRename, from, to, inode});
  }

  void Remove(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    Op(OpKind::kRemove, path);
    if (ns_.erase(path) != 0) {
      pending_.push_back({OpKind::kRemove, path, {}, nullptr});
    }
  }

  void SyncDir(const std::string& dir) override {
    std::lock_guard<std::mutex> lock(mu_);
    Op(OpKind::kSyncDir, dir);
    std::vector<PendingOp> keep;
    for (PendingOp& op : pending_) {
      const bool under = ParentOf(op.a) == dir ||
                         (op.kind == OpKind::kRename && ParentOf(op.b) == dir);
      if (under) {
        ApplyPending(op);
      } else {
        keep.push_back(std::move(op));
      }
    }
    pending_ = std::move(keep);
  }

  void CreateDirs(const std::string& dir) override { (void)dir; }

 private:
  struct Inode {
    std::vector<uint8_t> cache;    // what reads (and mmaps) see
    std::vector<uint8_t> durable;  // what survives Crash()
    bool synced_once = false;
    bool truncated_since_sync = false;  // Create'd since the last fsync
  };

  struct PendingOp {
    OpKind kind;
    std::string a, b;  // path (and rename target)
    std::shared_ptr<Inode> inode;
  };

  class FaultFile final : public WritableFile {
   public:
    FaultFile(FaultFs* fs, std::shared_ptr<Inode> inode, std::string path,
              uint64_t epoch)
        : fs_(fs), inode_(std::move(inode)), path_(std::move(path)),
          epoch_(epoch) {}

    void Write(std::span<const uint8_t> bytes) override {
      fs_->DoWrite(*this, bytes);
    }
    void Sync() override { fs_->DoSync(*this); }
    void Close() override {}

   private:
    friend class FaultFs;
    FaultFs* fs_;
    std::shared_ptr<Inode> inode_;
    std::string path_;
    uint64_t epoch_;
  };

  void DoWrite(FaultFile& f, std::span<const uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    CheckEpoch(f);
    size_t at = 0;
    while (at < bytes.size()) {
      const size_t n = std::min(opts_.write_chunk, bytes.size() - at);
      Op(OpKind::kWrite, f.path_);
      const uint64_t used = TotalCacheBytes();
      if (used + n > opts_.capacity_bytes) {
        // Short write up to the cap, then the disk is full.
        const size_t fits =
            opts_.capacity_bytes > used
                ? static_cast<size_t>(opts_.capacity_bytes - used)
                : 0;
        auto& cache = f.inode_->cache;
        cache.insert(cache.end(), bytes.begin() + at, bytes.begin() + at + fits);
        throw Error("write failed: " + f.path_ + ": No space left on device",
                    StatusCode::kIo);
      }
      auto& cache = f.inode_->cache;
      cache.insert(cache.end(), bytes.begin() + at, bytes.begin() + at + n);
      at += n;
    }
  }

  void DoSync(FaultFile& f) {
    std::lock_guard<std::mutex> lock(mu_);
    CheckEpoch(f);
    Op(OpKind::kSync, f.path_);
    if (!lie_sync_substr_.empty() &&
        f.path_.find(lie_sync_substr_) != std::string::npos) {
      return;  // the lying fsync: report success, persist nothing
    }
    Inode& ino = *f.inode_;
    ino.durable = ino.cache;
    ino.synced_once = true;
    ino.truncated_since_sync = false;
    dns_[f.path_] = f.inode_;  // fsync persists the entry too (see top)
  }

  void CheckEpoch(const FaultFile& f) const {
    if (f.epoch_ != epoch_) {
      throw Error("stale file handle after crash: " + f.path_,
                  StatusCode::kIo);
    }
  }

  /// Counts the op, fires an armed fault *before* the op's effect applies.
  void Op(OpKind kind, const std::string& path) {
    ++op_count_;
    trace_.push_back({op_count_, kind, path});
    if (fail_at_ != 0 && op_count_ == fail_at_) {
      fail_at_ = 0;
      throw Error(fail_msg_ + ": " + path, StatusCode::kIo);
    }
    if (kill_at_ != 0 && op_count_ == kill_at_) {
      kill_at_ = 0;
      throw CrashFault{op_count_};
    }
  }

  void ApplyPending(const PendingOp& op) {
    switch (op.kind) {
      case OpKind::kCreate:
        dns_[op.a] = op.inode;
        break;
      case OpKind::kRename:
        dns_.erase(op.a);
        dns_[op.b] = op.inode;
        break;
      case OpKind::kRemove:
        dns_.erase(op.a);
        break;
      default:
        break;
    }
  }

  /// Rolls one surviving inode back to crash-consistent content.
  void TearInode(Inode& ino) {
    if (ino.truncated_since_sync) {
      // The truncate+rewrite was never fsynced: either none of it reached
      // the platter (old durable content survives) or a prefix did.
      if ((NextRand() & 1) != 0) {
        ino.cache = ino.durable;
      } else {
        const size_t len =
            ino.cache.empty()
                ? 0
                : static_cast<size_t>(NextRand() % (ino.cache.size() + 1));
        ino.cache.resize(len);
        ino.durable = ino.cache;
      }
    } else {
      // Append-only since the last fsync: the durable prefix is guaranteed,
      // a seeded prefix of the unsynced tail may have made it.
      const size_t extra = ino.cache.size() - ino.durable.size();
      const size_t keep =
          ino.durable.size() +
          (extra != 0 ? static_cast<size_t>(NextRand() % (extra + 1)) : 0);
      ino.cache.resize(keep);
      ino.durable = ino.cache;
    }
    ino.truncated_since_sync = false;
  }

  uint64_t TotalCacheBytes() const {
    std::set<const Inode*> seen;
    uint64_t total = 0;
    for (const auto& [path, inode] : ns_) {
      if (seen.insert(inode.get()).second) total += inode->cache.size();
    }
    return total;
  }

  static std::string ParentOf(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
  }

  uint64_t NextRand() {
    rng_ += 0x9E3779B97F4A7C15ull;  // splitmix64
    uint64_t z = rng_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  mutable std::mutex mu_;
  Options opts_;
  uint64_t rng_;
  std::map<std::string, std::shared_ptr<Inode>> ns_;   // live namespace
  std::map<std::string, std::shared_ptr<Inode>> dns_;  // durable namespace
  std::vector<PendingOp> pending_;  // namespace ops awaiting SyncDir
  uint64_t epoch_ = 0;              // bumped by Crash(); stale handles fail
  uint64_t op_count_ = 0;
  std::vector<OpRecord> trace_;
  uint64_t kill_at_ = 0;
  uint64_t fail_at_ = 0;
  std::string fail_msg_;
  std::string lie_sync_substr_;
};

}  // namespace neats::io
