// Text/file I/O helpers: loading one-value-per-line decimal time series
// (the format the paper's datasets ship in) with automatic detection of the
// number of fractional digits, and raw byte file round trips.

#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NEATS_HAS_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#else
#define NEATS_HAS_FSYNC 0
#endif

namespace neats {

/// A decimal time series parsed from text.
struct ParsedSeries {
  std::vector<int64_t> values;  // scaled by 10^digits
  int digits = 0;               // detected fractional digits
};

/// Parses one decimal value per line, scaling all values to integers by the
/// maximum number of fractional digits seen (paper, Sec. IV-A1).
inline ParsedSeries ParseDecimalLines(std::istream& in) {
  std::vector<std::pair<int64_t, int>> raw;  // (digits-scaled value, digits)
  std::string line;
  int max_digits = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t i = 0;
    bool negative = false;
    if (line[i] == '+' || line[i] == '-') negative = line[i++] == '-';
    int64_t mantissa = 0;
    int digits = 0;
    bool after_point = false, any = false;
    for (; i < line.size(); ++i) {
      char ch = line[i];
      if (ch == '.') {
        NEATS_REQUIRE(!after_point, "malformed number");
        after_point = true;
      } else if (std::isdigit(static_cast<unsigned char>(ch))) {
        mantissa = mantissa * 10 + (ch - '0');
        if (after_point) ++digits;
        any = true;
      } else if (ch == '\r' || ch == ' ') {
        break;
      } else {
        NEATS_REQUIRE(false, "malformed number");
      }
    }
    NEATS_REQUIRE(any, "empty number");
    raw.push_back({negative ? -mantissa : mantissa, digits});
    max_digits = std::max(max_digits, digits);
  }
  ParsedSeries out;
  out.digits = max_digits;
  out.values.reserve(raw.size());
  for (auto [v, d] : raw) {
    int64_t scale = 1;
    for (int j = d; j < max_digits; ++j) scale *= 10;
    out.values.push_back(v * scale);
  }
  return out;
}

/// Loads a one-value-per-line decimal file.
inline ParsedSeries LoadDecimalFile(const std::string& path) {
  std::ifstream in(path);
  NEATS_REQUIRE(in.good(), "cannot open input file");
  return ParseDecimalLines(in);
}

/// Writes bytes to a file.
inline void WriteFile(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  NEATS_REQUIRE(out.good(), "cannot open output file");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Writes bytes to a file and fsyncs the data to stable storage before
/// returning (POSIX; elsewhere this degrades to WriteFile). The store layer
/// uses this for sealed shard blobs and the manifest temp file so a
/// power loss after Flush cannot surface a manifest that names
/// partially-persisted blobs.
inline void WriteFileDurable(const std::string& path,
                             const std::vector<uint8_t>& bytes) {
#if NEATS_HAS_FSYNC
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("cannot open output file: " + path + ": " +
                    std::strerror(errno),
                StatusCode::kIo);
  }
  size_t at = 0;
  while (at < bytes.size()) {
    ssize_t wrote = ::write(fd, bytes.data() + at, bytes.size() - at);
    if (wrote < 0) {
      if (errno == EINTR) continue;  // interrupted syscall: retry
      const int err = errno;
      ::close(fd);
      throw Error("write failed: " + path + ": " + std::strerror(err),
                  StatusCode::kIo);
    }
    at += static_cast<size_t>(wrote);  // partial write: keep looping
  }
  const bool synced = ::fsync(fd) == 0;
  const int sync_err = errno;
  ::close(fd);
  if (!synced) {
    throw Error("fsync failed: " + path + ": " + std::strerror(sync_err),
                StatusCode::kIo);
  }
#else
  WriteFile(path, bytes);
#endif
}

/// fsyncs a directory, persisting the entries (creations, renames) inside
/// it. No-op where directory fds are unavailable.
inline void SyncDir(const std::string& dir) {
#if NEATS_HAS_FSYNC
  int fd = ::open(dir.c_str(), O_RDONLY);
  NEATS_REQUIRE(fd >= 0, "cannot open directory for fsync");
  bool synced = ::fsync(fd) == 0;
  ::close(fd);
  // Some filesystems refuse fsync on directories; treat that as a hint
  // miss, not an error — the rename itself is still atomic.
  (void)synced;
#else
  (void)dir;
#endif
}

/// Reads a whole file as bytes.
inline std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  NEATS_REQUIRE(in.good(), "cannot open input file");
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

}  // namespace neats
