// NeaTS-L: the lossy variant of NeaTS (paper, Sec. III-B, "Partitioning for
// lossy compression", evaluated in Sec. IV-B).
//
// A single error bound eps is used, corrections are dropped, and the
// partitioner minimises the storage of the function parameters alone. The
// result is a piecewise nonlinear eps-approximation with a maximum-error
// guarantee: |decoded[k] - original[k]| <= eps + 1 for every k (the +1
// accounts for the floor applied to predictions; the un-floored function is
// within eps).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "core/partitioner.hpp"
#include "functions/approximator.hpp"
#include "functions/kinds.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/fragment_directory.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/storage.hpp"
#include "succinct/wavelet_tree.hpp"

namespace neats {

/// Lossy compressed representation: fragments + functions, no corrections.
class NeatsLossy {
 public:
  NeatsLossy() = default;

  /// Compresses `values` under the error bound `eps` (>= 0).
  static NeatsLossy Compress(std::span<const int64_t> values, int64_t eps,
                             const PartitionOptions& options = {}) {
    NeatsLossy out;
    out.n_ = values.size();
    out.eps_ = eps;
    if (values.empty()) return out;

    int64_t lo = values[0];
    for (int64_t v : values) {
      NEATS_REQUIRE(v >= -kMaxAbsValue && v <= kMaxAbsValue,
                    "value outside ±2^61");
      lo = std::min(lo, v);
    }
    if (lo < 1) out.shift_ = 1 - lo;

    std::vector<int64_t> shifted;
    std::span<const int64_t> view = values;
    if (out.shift_ != 0) {
      shifted.reserve(values.size());
      for (int64_t v : values) shifted.push_back(v + out.shift_);
      view = shifted;
    }

    std::vector<Fragment> fragments = PartitionLossy(view, eps, options);
    out.Build(fragments);
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_fragments() const { return m_; }
  int64_t epsilon() const { return eps_; }

  /// The approximated value at index k: one Elias-Fano predecessor scan on
  /// the starts plus a single interleaved directory record read (kind,
  /// parameter offset and displacement together), as in Neats::Access.
  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    auto [i, start] = starts_.Predecessor(k);
    const FragmentDirectory::Record& rec = directory_[i];
    NEATS_TOUCH(kind_table_.data() + rec.kind);
    FunctionKind kind = kind_table_[rec.kind];
    const double* params = params_[rec.kind].data() + rec.param_index;
    NEATS_TOUCH(params);
    uint64_t origin = start - rec.displacement;
    return PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1) -
           shift_;
  }

  /// Access resolved through the separate K/D structures — the pre-directory
  /// path, kept as fuzz ground truth (see Neats::AccessViaLegacyStructures).
  int64_t AccessViaLegacyStructures(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    auto [i, start] = starts_.Predecessor(k);
    auto [dense, occ] = kinds_wt_.AccessAndRank(i);
    FunctionKind kind = kind_table_[dense];
    const double* params =
        params_[dense].data() + occ * static_cast<size_t>(NumParams(kind));
    uint64_t origin = start - displacement_[i];
    return PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1) -
           shift_;
  }

  /// Reconstructs the whole approximated series.
  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    for (size_t i = 0; i < m_; ++i) {
      uint64_t start = starts_.Access(i);
      uint64_t end = i + 1 < m_ ? starts_.Access(i + 1) : n_;
      const FragmentDirectory::Record& rec = directory_[i];
      FunctionKind kind = kind_table_[rec.kind];
      const double* params = params_[rec.kind].data() + rec.param_index;
      uint64_t origin = start - rec.displacement;
      int64_t* dst = out->data() + start;
      switch (kind) {
#define NEATS_LOSSY_CASE(K)                                          \
  case FunctionKind::K:                                              \
    PredictLoop<FunctionKind::K>(params, origin, start, end, dst);   \
    break;
        NEATS_LOSSY_CASE(kLinear)
        NEATS_LOSSY_CASE(kQuadratic)
        NEATS_LOSSY_CASE(kRadical)
        NEATS_LOSSY_CASE(kExponential)
        NEATS_LOSSY_CASE(kPower)
        NEATS_LOSSY_CASE(kLogarithm)
        NEATS_LOSSY_CASE(kQuadMixed)
        NEATS_LOSSY_CASE(kCubicOdd)
        NEATS_LOSSY_CASE(kCubicMixed)
        NEATS_LOSSY_CASE(kQuadraticFull)
        NEATS_LOSSY_CASE(kGaussian)
#undef NEATS_LOSSY_CASE
      }
    }
  }

  /// Size of the lossy representation in bits — exactly the v2 serialized
  /// size (8 * Serialize output bytes).
  size_t SizeInBits() const {
    size_t bits = (7 + kind_table_.size()) * 64 + 64;  // header + params count
    for (const auto& p : params_) bits += 64 + p.size() * 64;
    if (m_ == 0) return bits;
    return bits + starts_.SizeInBits() + displacement_.SizeInBits() +
           kinds_wt_.SizeInBits();
  }

  /// Format v2 (flat, word-aligned; same section grammar as Neats). Unlike
  /// the lossless format, the interleaved directory is *not* serialized:
  /// the lossy layout competes with PLA byte-for-byte on parameter storage
  /// alone, and its three-field records rebuild in O(m) at open time, so
  /// the wire format stays at version 2 (see docs/FORMAT.md).
  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagicV2);
    w.Put(kFormatVersion);
    w.Put(n_);
    w.Put(static_cast<uint64_t>(m_));
    w.Put(static_cast<uint64_t>(eps_));
    w.Put(static_cast<uint64_t>(shift_));
    w.Put(kind_table_.size());
    for (FunctionKind kind : kind_table_) w.Put(static_cast<uint64_t>(kind));
    if (m_ > 0) {
      starts_.Serialize(w);
      displacement_.Serialize(w);
      kinds_wt_.Serialize(w);
    }
    w.Put(params_.size());
    for (const auto& p : params_) w.PutArray(p);
  }

  /// Rebuilds from Serialize output into owned storage (the in-memory
  /// directory is rebuilt, as for pre-v3 Neats blobs).
  static NeatsLossy Deserialize(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/false);
  }

  /// Opens a blob zero-copy; `bytes` must be 8-byte aligned and outlive the
  /// returned object.
  static NeatsLossy View(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/true);
  }

 private:
  static NeatsLossy Load(std::span<const uint8_t> bytes, bool borrow) {
    WordReader r(bytes, borrow);
    NEATS_REQUIRE(r.Get() == kMagicV2, "not a NeaTS-L blob");
    NEATS_REQUIRE(r.Get() == kFormatVersion,
                  "unsupported NeaTS-L format version");
    NeatsLossy out;
    out.n_ = r.Get();
    out.m_ = r.Get();
    out.eps_ = static_cast<int64_t>(r.Get());
    out.shift_ = static_cast<int64_t>(r.Get());
    size_t kinds = r.Get();
    NEATS_REQUIRE(kinds <= static_cast<size_t>(kNumFunctionKinds),
                  "corrupt NeaTS-L blob");
    for (size_t i = 0; i < kinds; ++i) {
      out.kind_table_.push_back(static_cast<FunctionKind>(r.Get()));
    }
    if (out.m_ > 0) {
      out.starts_ = EliasFano::Load(r);
      out.displacement_ = PackedArray::Load(r);
      out.kinds_wt_ = WaveletTree::Load(r);
      NEATS_REQUIRE(out.starts_.size() == out.m_ &&
                        out.starts_.Access(0) == 0 &&
                        out.starts_.Access(out.m_ - 1) < out.n_ &&
                        out.displacement_.size() == out.m_ &&
                        out.kinds_wt_.size() == out.m_,
                    "corrupt NeaTS-L blob");
    }
    size_t n_params = r.Get();
    NEATS_REQUIRE(n_params == kinds || (out.m_ == 0 && n_params == 0),
                  "corrupt NeaTS-L blob");
    out.params_.reserve(n_params);
    for (size_t i = 0; i < n_params; ++i) {
      out.params_.push_back(r.GetArray<double>());
      NEATS_REQUIRE(
          out.params_[i].size() ==
              out.kinds_wt_.Rank(static_cast<uint32_t>(i), out.m_) *
                  static_cast<size_t>(NumParams(out.kind_table_[i])),
          "corrupt NeaTS-L blob");
    }
    out.directory_ = FragmentDirectory(out.ComputeDirectoryRecords());
    return out;
  }

  /// Directory records rebuilt from K/D (the lossy layout stores no
  /// corrections, so corr_offset and correction_bits are zero).
  std::vector<FragmentDirectory::Record> ComputeDirectoryRecords() const {
    std::vector<FragmentDirectory::Record> records(m_);
    for (size_t i = 0; i < m_; ++i) {
      auto [dense, occ] = kinds_wt_.AccessAndRank(i);
      FragmentDirectory::Record rec{};
      rec.displacement = displacement_[i];
      rec.param_index =
          occ * static_cast<size_t>(NumParams(kind_table_[dense]));
      rec.kind = static_cast<uint8_t>(dense);
      records[i] = rec;
    }
    return records;
  }
  // Tight per-kind loop; KIND is compile-time so the dispatch inside
  // PredictFloor folds away and polynomial kinds vectorise.
  template <FunctionKind KIND>
  void PredictLoop(const double* params, uint64_t origin, uint64_t from,
                   uint64_t to, int64_t* dst) const {
    for (uint64_t k = from; k < to; ++k) {
      dst[k - from] =
          PredictFloor(KIND, params, static_cast<int64_t>(k - origin) + 1) -
          shift_;
    }
  }

  void Build(const std::vector<Fragment>& fragments) {
    m_ = fragments.size();
    std::vector<int> kind_to_dense(kNumFunctionKinds, -1);
    std::vector<uint32_t> kind_symbols(m_);
    std::vector<uint64_t> starts(m_), displacement(m_);
    for (size_t i = 0; i < m_; ++i) {
      const Fragment& frag = fragments[i];
      int raw = static_cast<int>(frag.kind);
      if (kind_to_dense[raw] < 0) {
        kind_to_dense[raw] = static_cast<int>(kind_table_.size());
        kind_table_.push_back(frag.kind);
      }
      kind_symbols[i] = static_cast<uint32_t>(kind_to_dense[raw]);
      starts[i] = frag.start;
      displacement[i] = frag.start - frag.origin;
    }
    std::vector<std::vector<double>> params(kind_table_.size());
    std::vector<FragmentDirectory::Record> records(m_);
    for (size_t i = 0; i < m_; ++i) {
      FragmentDirectory::Record rec{};
      rec.displacement = displacement[i];
      rec.kind = static_cast<uint8_t>(kind_symbols[i]);
      rec.param_index = params[kind_symbols[i]].size();
      records[i] = rec;
      for (int j = 0; j < NumParams(fragments[i].kind); ++j) {
        params[kind_symbols[i]].push_back(fragments[i].params[j]);
      }
    }
    params_.reserve(params.size());
    for (auto& p : params) params_.emplace_back(std::move(p));
    starts_ = EliasFano(starts, n_);
    kinds_wt_ = WaveletTree(kind_symbols, static_cast<uint32_t>(kind_table_.size()));
    displacement_ = PackedArray::FromValues(displacement);
    directory_ = FragmentDirectory(std::move(records));
  }

  // Little-endian "NEATSL2\0" — ASCII-readable at the head of the blob.
  static constexpr uint64_t kMagicV2 = 0x00324C535441454EULL;
  static constexpr uint64_t kFormatVersion = 2;

  uint64_t n_ = 0;
  size_t m_ = 0;
  int64_t eps_ = 0;
  int64_t shift_ = 0;
  EliasFano starts_;
  WaveletTree kinds_wt_;
  PackedArray displacement_;
  FragmentDirectory directory_;  // interleaved K/D + param offsets
                                 // (in-memory only; rebuilt on load)
  std::vector<FunctionKind> kind_table_;
  std::vector<Storage<double>> params_;  // one array per dense kind
};

}  // namespace neats
