// NeaTS-L: the lossy variant of NeaTS (paper, Sec. III-B, "Partitioning for
// lossy compression", evaluated in Sec. IV-B).
//
// A single error bound eps is used, corrections are dropped, and the
// partitioner minimises the storage of the function parameters alone. The
// result is a piecewise nonlinear eps-approximation with a maximum-error
// guarantee: |decoded[k] - original[k]| <= eps + 1 for every k (the +1
// accounts for the floor applied to predictions; the un-floored function is
// within eps).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "core/partitioner.hpp"
#include "functions/approximator.hpp"
#include "functions/kinds.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/wavelet_tree.hpp"

namespace neats {

/// Lossy compressed representation: fragments + functions, no corrections.
class NeatsLossy {
 public:
  NeatsLossy() = default;

  /// Compresses `values` under the error bound `eps` (>= 0).
  static NeatsLossy Compress(std::span<const int64_t> values, int64_t eps,
                             const PartitionOptions& options = {}) {
    NeatsLossy out;
    out.n_ = values.size();
    out.eps_ = eps;
    if (values.empty()) return out;

    int64_t lo = values[0];
    for (int64_t v : values) {
      NEATS_REQUIRE(v >= -kMaxAbsValue && v <= kMaxAbsValue,
                    "value outside ±2^61");
      lo = std::min(lo, v);
    }
    if (lo < 1) out.shift_ = 1 - lo;

    std::vector<int64_t> shifted;
    std::span<const int64_t> view = values;
    if (out.shift_ != 0) {
      shifted.reserve(values.size());
      for (int64_t v : values) shifted.push_back(v + out.shift_);
      view = shifted;
    }

    std::vector<Fragment> fragments = PartitionLossy(view, eps, options);
    out.Build(fragments);
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_fragments() const { return m_; }
  int64_t epsilon() const { return eps_; }

  /// The approximated value at index k.
  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    size_t i = starts_.Rank(k) - 1;
    uint64_t start = starts_.Access(i);
    uint32_t dense = kinds_wt_.Access(i);
    FunctionKind kind = kind_table_[dense];
    size_t idx = kinds_wt_.Rank(dense, i);
    const double* params =
        params_[dense].data() + idx * static_cast<size_t>(NumParams(kind));
    uint64_t origin = start - displacement_[i];
    return PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1) -
           shift_;
  }

  /// Reconstructs the whole approximated series.
  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    for (size_t i = 0; i < m_; ++i) {
      uint64_t start = starts_.Access(i);
      uint64_t end = i + 1 < m_ ? starts_.Access(i + 1) : n_;
      uint32_t dense = kinds_wt_.Access(i);
      FunctionKind kind = kind_table_[dense];
      size_t idx = kinds_wt_.Rank(dense, i);
      const double* params =
          params_[dense].data() + idx * static_cast<size_t>(NumParams(kind));
      uint64_t origin = start - displacement_[i];
      int64_t* dst = out->data() + start;
      switch (kind) {
#define NEATS_LOSSY_CASE(K)                                          \
  case FunctionKind::K:                                              \
    PredictLoop<FunctionKind::K>(params, origin, start, end, dst);   \
    break;
        NEATS_LOSSY_CASE(kLinear)
        NEATS_LOSSY_CASE(kQuadratic)
        NEATS_LOSSY_CASE(kRadical)
        NEATS_LOSSY_CASE(kExponential)
        NEATS_LOSSY_CASE(kPower)
        NEATS_LOSSY_CASE(kLogarithm)
        NEATS_LOSSY_CASE(kQuadMixed)
        NEATS_LOSSY_CASE(kCubicOdd)
        NEATS_LOSSY_CASE(kCubicMixed)
        NEATS_LOSSY_CASE(kQuadraticFull)
        NEATS_LOSSY_CASE(kGaussian)
#undef NEATS_LOSSY_CASE
      }
    }
  }

  /// Size of the lossy representation in bits.
  size_t SizeInBits() const {
    size_t p_bits = 0;
    for (const auto& p : params_) p_bits += p.size() * 64 + 64;
    return 3 * 64 + starts_.SizeInBits() + kinds_wt_.SizeInBits() +
           displacement_.SizeInBits() + p_bits;
  }

 private:
  // Tight per-kind loop; KIND is compile-time so the dispatch inside
  // PredictFloor folds away and polynomial kinds vectorise.
  template <FunctionKind KIND>
  void PredictLoop(const double* params, uint64_t origin, uint64_t from,
                   uint64_t to, int64_t* dst) const {
    for (uint64_t k = from; k < to; ++k) {
      dst[k - from] =
          PredictFloor(KIND, params, static_cast<int64_t>(k - origin) + 1) -
          shift_;
    }
  }

  void Build(const std::vector<Fragment>& fragments) {
    m_ = fragments.size();
    std::vector<int> kind_to_dense(kNumFunctionKinds, -1);
    std::vector<uint32_t> kind_symbols(m_);
    std::vector<uint64_t> starts(m_), displacement(m_);
    for (size_t i = 0; i < m_; ++i) {
      const Fragment& frag = fragments[i];
      int raw = static_cast<int>(frag.kind);
      if (kind_to_dense[raw] < 0) {
        kind_to_dense[raw] = static_cast<int>(kind_table_.size());
        kind_table_.push_back(frag.kind);
      }
      kind_symbols[i] = static_cast<uint32_t>(kind_to_dense[raw]);
      starts[i] = frag.start;
      displacement[i] = frag.start - frag.origin;
    }
    params_.resize(kind_table_.size());
    for (size_t i = 0; i < m_; ++i) {
      for (int j = 0; j < NumParams(fragments[i].kind); ++j) {
        params_[kind_symbols[i]].push_back(fragments[i].params[j]);
      }
    }
    starts_ = EliasFano(starts, n_);
    kinds_wt_ = WaveletTree(kind_symbols, static_cast<uint32_t>(kind_table_.size()));
    displacement_ = PackedArray::FromValues(displacement);
  }

  uint64_t n_ = 0;
  size_t m_ = 0;
  int64_t eps_ = 0;
  int64_t shift_ = 0;
  EliasFano starts_;
  WaveletTree kinds_wt_;
  PackedArray displacement_;
  std::vector<FunctionKind> kind_table_;
  std::vector<std::vector<double>> params_;
};

}  // namespace neats
