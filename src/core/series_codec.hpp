// The SeriesCodec concept: the compile-time contract every compressed
// representation must meet to serve a NeatsStore shard (or a bench column)
// through one uniform API.
//
// A SeriesCodec compresses a span of int64 values and then answers the five
// query shapes of the serving layer — scalar Access, sorted AccessBatch,
// range and multi-range decompression, and exact range sums — plus the
// serialization trio (Serialize / Deserialize / View) and SizeInBits. Neats
// itself is the flagship model; NeatsLossyExact, LecoCodec, AlpCodec,
// GorillaCodec and ChimpCodec (src/codecs/) adapt the paper's competitors to
// the same surface so the comparison table becomes a per-shard engineering
// choice (ISSUE 5; docs/ARCHITECTURE.md, "Codec layer").
//
// Thin codecs do not have to implement the whole surface by hand:
// ScalarCodecBase is a CRTP adapter that derives AccessBatch,
// DecompressRange(s) and RangeSum from scalar Access. A derived codec that
// *can* do better simply declares its own method — the base's defaults
// always dispatch through the derived type, so a native DecompressRange is
// picked up by the derived RangeSum/DecompressRanges automatically.

#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "core/codec_id.hpp"
#include "core/neats.hpp"

namespace neats {

/// The compile-time contract of a servable compressed series representation.
///
/// Semantics the signatures cannot express:
///  - Compress/Deserialize/View produce an object answering queries over the
///    original values exactly (codecs built on a lossy core must carry
///    corrections that restore exactness — see NeatsLossyExact).
///  - AccessBatch requires non-decreasing probe indices (callers with
///    unsorted probes sort first, as NeatsStore::AccessBatch does).
///  - Serialize output fed back through Deserialize and re-serialized must
///    reproduce the bytes (canonical encoding; the conformance suite checks).
///  - View opens a blob borrowing the caller's (8-byte-aligned, outliving)
///    buffer when kZeroCopyView is true, and may fall back to an owning load
///    when it is false.
///  - Loaders reject corrupt blobs by throwing (NEATS_REQUIRE) instead of
///    serving out-of-bounds reads.
template <typename C>
concept SeriesCodec =
    std::default_initializable<C> && std::movable<C> &&
    requires(const C c, std::span<const int64_t> values,
             const NeatsOptions& options, std::span<const uint64_t> idx,
             std::span<const IndexRange> ranges, int64_t* out,
             std::vector<uint8_t>* blob, std::span<const uint8_t> bytes) {
      { C::Compress(values, options) } -> std::same_as<C>;
      { c.size() } -> std::convertible_to<uint64_t>;
      { c.Access(uint64_t{}) } -> std::same_as<int64_t>;
      { c.AccessBatch(idx, out) };
      { c.DecompressRange(uint64_t{}, uint64_t{}, out) };
      { c.DecompressRanges(ranges, out) };
      { c.RangeSum(uint64_t{}, uint64_t{}) } -> std::same_as<int64_t>;
      { c.SizeInBits() } -> std::convertible_to<size_t>;
      { c.Serialize(blob) };
      { C::Deserialize(bytes) } -> std::same_as<C>;
      { C::View(bytes) } -> std::same_as<C>;
      { C::kZeroCopyView } -> std::convertible_to<bool>;
    };

/// Optional extension of SeriesCodec for block-structured representations
/// (ALP's 1024-value vectors, the XOR streams' 1000-value blocks): the codec
/// exposes its block geometry and a whole-block decode, so callers that
/// amortize decodes across queries — the store's decoded-block cache — can
/// key on (block index) and reuse one decode for every probe that lands in
/// it. BlockValues() is the fixed values-per-block; DecodeBlock(b, out)
/// fills out (sized BlockValues()) and returns the actual count (the last
/// block may be partial). Detected structurally: SealedCodec forwards the
/// surface when the codec provides it and reports BlockValues() == 0
/// otherwise, so non-block codecs (Neats, LeCo) need no stubs.
template <typename C>
concept BlockStructuredCodec =
    SeriesCodec<C> && requires(const C c, int64_t* out) {
      { c.BlockValues() } -> std::convertible_to<uint64_t>;
      { c.DecodeBlock(uint64_t{}, out) } -> std::convertible_to<uint64_t>;
    };

/// CRTP adapter supplying the batch/range surface from scalar Access, so a
/// codec only has to implement Compress, size, Access, SizeInBits and the
/// serialization trio to conform. Every default dispatches through the
/// derived type: a codec that declares its own DecompressRange (say, a
/// block codec decoding a block at a time) automatically accelerates the
/// inherited DecompressRanges and RangeSum too.
template <typename Derived>
class ScalarCodecBase {
 public:
  /// Batched point queries over non-decreasing probe indices.
  void AccessBatch(std::span<const uint64_t> idx, int64_t* out) const {
    for (size_t j = 0; j < idx.size(); ++j) out[j] = self().Access(idx[j]);
  }

  /// Decompresses values[from, from + len) into out.
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    for (uint64_t k = 0; k < len; ++k) out[k] = self().Access(from + k);
  }

  /// Every range's values, concatenated into out.
  void DecompressRanges(std::span<const IndexRange> ranges,
                        int64_t* out) const {
    for (const IndexRange& r : ranges) {
      self().DecompressRange(r.from, r.len, out);
      out += r.len;
    }
  }

  /// Exact sum over values[from, from + len), streamed in fixed chunks.
  int64_t RangeSum(uint64_t from, uint64_t len) const {
    constexpr uint64_t kChunk = 1024;
    int64_t buffer[kChunk];
    int64_t sum = 0;
    while (len > 0) {
      const uint64_t take = std::min(len, kChunk);
      self().DecompressRange(from, take, buffer);
      for (uint64_t j = 0; j < take; ++j) sum += buffer[j];
      from += take;
      len -= take;
    }
    return sum;
  }

 private:
  const Derived& self() const { return static_cast<const Derived&>(*this); }
};

}  // namespace neats
