// Named NeaTS variants evaluated in the paper (Sec. IV-C1, Figure 2).
//
//   LeaTS   — Algorithm 1 restricted to linear functions only: faster
//             compression, slightly worse ratio.
//   SNeaTS  — model selection: the partitioner first runs on a sample (the
//             first 10% of the series) and only the top-5 most-used
//             (kind, eps) pairs are kept for the full run.

#pragma once

#include <span>

#include "core/neats.hpp"

namespace neats {

/// LeaTS: NeaTS with F = {Linear}.
inline Neats CompressLeaTS(std::span<const int64_t> values,
                           NeatsOptions options = {}) {
  options.partition.kinds = {FunctionKind::kLinear};
  options.partition.pairs.clear();
  return Neats::Compress(values, options);
}

/// SNeaTS: NeaTS with the model-selection procedure (top-5 pairs on the
/// first 10% of the data; the sample run is included in compression time).
inline Neats CompressSNeaTS(std::span<const int64_t> values,
                            const NeatsOptions& options = {}) {
  return Neats::CompressWithModelSelection(values, options, 0.1, 5);
}

}  // namespace neats
