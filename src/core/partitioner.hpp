// Space-optimal partitioning of a time series into approximated fragments
// (paper, Algorithm 1).
//
// The series induces a DAG with one node per data point plus a sink: every
// fragment T[i, j) that is eps-approximated by a function f contributes the
// edge (i, j) weighted by the bit size of its encoding, together with all of
// its prefix edges (i, k) and suffix edges (k, j). The shortest 0 -> n path
// is the space-minimal partition. As in the paper, the |F| x |E| piecewise
// approximations are not precomputed: one edge per (f, eps) pair is kept
// "active" and lazily rebuilt, and prefix/suffix edges are relaxed on the
// fly while sweeping the nodes in topological (left-to-right) order, giving
// O(|F| |E| n) total time.
//
// Suffix fragments keep the parameters (and the coordinate origin) of the
// active fragment they were cut from: most nonlinear kinds are not closed
// under coordinate translation, so re-fitting them at the suffix start is
// not possible — the origin travels with the fragment instead (see
// Fragment::origin).

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/thread_pool.hpp"
#include "functions/approximator.hpp"
#include "functions/kinds.hpp"

namespace neats {

/// Bit size of the corrections of one value under error bound eps
/// (⌈log(2*eps + 1)⌉ of the paper).
inline int CorrectionBits(int64_t eps) {
  return CeilLog2(2 * static_cast<uint64_t>(eps) + 1);
}

/// Number of bits used to store one correction of a fragment whose residuals
/// span [lo, hi] (two's-complement style, bias 2^(b-1)). This is the width
/// BuildLayout actually stores — CorrectionBits(eps) is only its upper bound.
inline int ResidualBits(int64_t lo, int64_t hi) {
  int bits = 0;
  if (lo < 0) bits = CeilLog2(static_cast<uint64_t>(-lo)) + 1;
  if (hi > 0) bits = std::max(bits, CeilLog2(static_cast<uint64_t>(hi) + 1) + 1);
  return bits;
}

/// Tuning knobs of the partitioner.
struct PartitionOptions {
  /// Set F of function kinds to combine. The paper's default: linear,
  /// exponential, quadratic, and radical (Sec. IV-A).
  std::vector<FunctionKind> kinds = {
      FunctionKind::kLinear, FunctionKind::kExponential,
      FunctionKind::kQuadratic, FunctionKind::kRadical};

  /// Set E of error bounds. Empty means "derive from the data":
  /// {0} ∪ {2^i : i = 0 .. ⌈log Δ⌉} with Δ the value range (Sec. III-B).
  std::vector<int64_t> epsilons;

  /// Explicit (kind, eps) pairs. When non-empty, this list is used instead
  /// of the cross product kinds × epsilons (model selection keeps the top
  /// pairs, not a cross product; paper, Sec. IV-C1).
  std::vector<std::pair<FunctionKind, int64_t>> pairs;

  /// Bits charged for each stored function parameter.
  int bits_per_parameter = 64;

  /// Estimated per-fragment metadata bits (entries of S, B, O, K, D).
  int fragment_overhead_bits = 48;

  /// Whether to emit suffix edges (disabling them is an ablation; the result
  /// is still a valid partition, just possibly larger).
  bool use_suffix_edges = true;

  /// Threads used for Phase-1 edge rebuilds, which are independent across
  /// the (kind, eps) active pairs. 1 = serial, 0 = all hardware threads.
  /// The partition produced is bit-identical for every thread count.
  int num_threads = 1;
};

/// Derives the default E set from the data: {0} ∪ {2^i : i <= ⌈log Δ⌉}.
inline std::vector<int64_t> DefaultEpsilons(std::span<const int64_t> values) {
  int64_t lo = values.empty() ? 0 : values[0];
  int64_t hi = lo;
  for (int64_t v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  uint64_t delta = static_cast<uint64_t>(hi - lo) + 1;
  std::vector<int64_t> eps = {0};
  for (int i = 0; i <= CeilLog2(delta) && i < 62; ++i) {
    eps.push_back(int64_t{1} << i);
  }
  return eps;
}

namespace internal {

/// Weight of the lossless encoding of a fragment: corrections + parameters
/// + per-fragment metadata (w_{f,eps}(i, j) of the paper).
inline uint64_t LosslessWeight(const Fragment& frag,
                               const PartitionOptions& options) {
  return frag.length() * static_cast<uint64_t>(CorrectionBits(frag.epsilon)) +
         static_cast<uint64_t>(NumParams(frag.kind)) *
             static_cast<uint64_t>(options.bits_per_parameter) +
         static_cast<uint64_t>(options.fragment_overhead_bits);
}

/// Weight of the lossy encoding: parameters + metadata only (corrections are
/// dropped; paper, Sec. III-B "Partitioning for lossy compression").
inline uint64_t LossyWeight(const Fragment& frag,
                            const PartitionOptions& options) {
  return static_cast<uint64_t>(NumParams(frag.kind)) *
             static_cast<uint64_t>(options.bits_per_parameter) +
         static_cast<uint64_t>(options.fragment_overhead_bits);
}

/// Core of Algorithm 1, parameterised on the edge-weight model.
template <typename WeightFn>
std::vector<Fragment> PartitionImpl(std::span<const int64_t> values,
                                    const PartitionOptions& options,
                                    const std::vector<int64_t>& epsilons,
                                    WeightFn&& weight) {
  const uint64_t n = values.size();
  if (n == 0) return {};
  NEATS_REQUIRE(!options.kinds.empty(), "need at least one function kind");

  struct PrevEntry {
    uint64_t from = 0;
    Fragment frag;  // length() == 0 marks "unset"
  };
  constexpr uint64_t kInf = UINT64_MAX / 2;
  std::vector<uint64_t> distance(n + 1, kInf);
  std::vector<PrevEntry> previous(n + 1);
  distance[0] = 0;

  // Active fragment per (f, eps) pair; end <= k triggers a rebuild.
  struct Active {
    FunctionKind kind;
    int64_t eps;
    Fragment frag;   // valid iff frag.length() > 0
    uint64_t next_k; // node at which to rebuild
  };
  std::vector<Active> active;
  if (!options.pairs.empty()) {
    active.reserve(options.pairs.size());
    for (const auto& [kind, eps] : options.pairs) {
      active.push_back({kind, eps, Fragment{}, 0});
    }
  } else {
    active.reserve(options.kinds.size() * epsilons.size());
    for (FunctionKind kind : options.kinds) {
      for (int64_t eps : epsilons) {
        active.push_back({kind, eps, Fragment{}, 0});
      }
    }
  }

  auto relax = [&](uint64_t i, uint64_t j, const Fragment& frag) {
    if (distance[i] >= kInf) return;
    uint64_t w = weight(frag);
    if (distance[i] + w < distance[j]) {
      distance[j] = distance[i] + w;
      previous[j] = {i, frag};
    }
  };

  // Pool for Phase-1 rebuilds; rebuilds of distinct (kind, eps) pairs touch
  // disjoint Active entries and only read `values`, so running them
  // concurrently is safe and the result is bit-identical to the serial
  // sweep (relaxation order below is unchanged).
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(options.num_threads) > 1 && active.size() > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min<int>(ResolveNumThreads(options.num_threads),
                      static_cast<int>(active.size())));
  }
  std::vector<uint32_t> rebuild;  // indices of pairs exhausted at node k
  rebuild.reserve(active.size());
  // Hoisted out of the k loop so the per-dispatch std::function conversion
  // (a heap allocation) is paid once, not per rebuild event.
  uint64_t rebuild_k = 0;
  const std::function<void(size_t)> rebuild_one = [&](size_t j) {
    Active& a = active[rebuild[j]];
    a.frag = LongestFragment(values, rebuild_k, a.kind, a.eps);
    a.next_k = (a.frag.length() == 0) ? rebuild_k + 1 : a.frag.end;
  };

  for (uint64_t k = 0; k < n; ++k) {
    // Phase 1 (paper lines 8-15): rebuild exhausted edges; relax prefix
    // edges of the still-active ones into node k.
    rebuild.clear();
    for (uint32_t idx = 0; idx < active.size(); ++idx) {
      if (active[idx].next_k <= k) rebuild.push_back(idx);
    }
    rebuild_k = k;
    if (pool != nullptr && rebuild.size() > 1) {
      pool->ParallelFor(rebuild.size(), rebuild_one);
    } else {
      for (size_t j = 0; j < rebuild.size(); ++j) rebuild_one(j);
    }
    {
      size_t next_rebuilt = 0;  // rebuild[] is sorted by construction
      for (uint32_t idx = 0; idx < active.size(); ++idx) {
        if (next_rebuilt < rebuild.size() && rebuild[next_rebuilt] == idx) {
          ++next_rebuilt;  // just rebuilt at k: no prefix edge into k
          continue;
        }
        Active& a = active[idx];
        if (a.frag.length() > 0 && a.frag.start < k) {
          Fragment prefix = a.frag;
          prefix.end = k;
          relax(prefix.start, k, prefix);
        }
      }
    }
    // Phase 2 (paper lines 16-20): relax suffix edges leaving node k. The
    // two-phase order matters: distance[k] must be final (all incoming
    // prefix edges processed) before the suffix edges out of k are used.
    for (Active& a : active) {
      if (a.frag.length() == 0 || a.frag.start > k || a.frag.end <= k) continue;
      if (!options.use_suffix_edges && a.frag.start != k) continue;
      Fragment suffix = a.frag;
      suffix.start = k;  // origin stays at the original fit start
      relax(k, suffix.end, suffix);
    }
  }

  NEATS_REQUIRE(distance[n] < kInf, "series not covered — internal error");

  // Read the shortest path backwards (paper lines 21-26).
  std::vector<Fragment> result;
  uint64_t k = n;
  while (k != 0) {
    const PrevEntry& entry = previous[k];
    NEATS_DCHECK(entry.frag.length() > 0);
    result.push_back(entry.frag);
    k = entry.from;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace internal

/// The bit size BuildLayout will actually charge for `frag` — corrections at
/// the width of the real residual range (not the CorrectionBits(eps) bound
/// the partitioner plans with) plus parameters and per-fragment metadata.
inline uint64_t StoredFragmentBits(std::span<const int64_t> values,
                                   const Fragment& frag,
                                   const PartitionOptions& options) {
  int64_t lo = 0, hi = 0;
  for (uint64_t k = frag.start; k < frag.end; ++k) {
    int64_t r = values[k] - frag.Predict(k);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return frag.length() * static_cast<uint64_t>(ResidualBits(lo, hi)) +
         static_cast<uint64_t>(NumParams(frag.kind)) *
             static_cast<uint64_t>(options.bits_per_parameter) +
         static_cast<uint64_t>(options.fragment_overhead_bits);
}

namespace internal {

/// Boundary-merge pass of the chunked partitioner: when the fragment ending
/// at a chunk boundary and the one starting it share (kind, eps), refit the
/// union from a's start and keep the merged fragment when the fit is still
/// feasible AND the stored encoding does not grow (the merged residual width
/// can exceed either part's, so feasibility alone is not enough). Returns
/// the merged fragment through `out`; false leaves the pair split. The
/// refit's origin is a.start, so a suffix-born `a` loses its displaced
/// origin — correct, since the refit re-verifies the union from scratch.
inline bool TryMergeAtBoundary(std::span<const int64_t> values,
                               const Fragment& a, const Fragment& b,
                               const PartitionOptions& options, Fragment* out) {
  if (a.kind != b.kind || a.epsilon != b.epsilon || a.end != b.start) {
    return false;
  }
  FragmentBuilder builder(a.start, a.kind, a.epsilon,
                          values[a.start]);
  for (uint64_t k = a.start; k < b.end; ++k) {
    if (!builder.TryExtend(k, values[k])) return false;
  }
  Fragment merged = builder.Finish();
  NEATS_DCHECK(merged.end == b.end);
  if (StoredFragmentBits(values, merged, options) >
      StoredFragmentBits(values, a, options) +
          StoredFragmentBits(values, b, options)) {
    return false;
  }
  *out = merged;
  return true;
}

}  // namespace internal

/// Partitions `values` to minimise the bit size of the lossless NeaTS
/// encoding (functions + corrections). Returns contiguous fragments covering
/// [0, n).
inline std::vector<Fragment> PartitionLossless(std::span<const int64_t> values,
                                               const PartitionOptions& options = {}) {
  std::vector<int64_t> eps = options.epsilons;
  if (eps.empty()) eps = DefaultEpsilons(values);
  return internal::PartitionImpl(values, options, eps,
                                 [&](const Fragment& f) {
                                   return internal::LosslessWeight(f, options);
                                 });
}

/// Chunked variant of PartitionLossless: cuts the series into disjoint
/// blocks of `chunk_size` values, partitions each block independently (the
/// blocks run concurrently on `num_threads` threads), and stitches the
/// per-block fragment lists with a boundary-merge pass: adjacent fragments
/// meeting at a block boundary that share (kind, eps) are re-fitted as one
/// and merged whenever the union is still feasible and not larger — so a
/// fit that happens to span a boundary (a long trend cut mid-flight) is
/// recovered instead of paying two parameter sets and two metadata rows.
/// Merged fragments cascade across further boundaries up to a fixed span
/// cap (kMaxMergeSpanChunks blocks), which keeps the stitch pass linear.
/// The result is a valid partition of the whole series and is deterministic
/// — identical for every thread count — because the block boundaries are
/// fixed, each block's partition is deterministic, and the merge pass runs
/// serially on the stitched list. It can still differ from the global
/// partition, trading a (now smaller) sliver of compression ratio for
/// near-linear compression scaling.
///
/// When `options.epsilons` is empty the E set is derived once from the whole
/// series, not per block, so every block searches the same (kind, eps) grid.
inline std::vector<Fragment> PartitionLosslessChunked(
    std::span<const int64_t> values, uint64_t chunk_size, int num_threads,
    const PartitionOptions& options = {}) {
  const uint64_t n = values.size();
  if (chunk_size == 0 || chunk_size >= n) {
    return PartitionLossless(values, options);
  }
  PartitionOptions chunk_options = options;
  if (chunk_options.epsilons.empty()) {
    chunk_options.epsilons = DefaultEpsilons(values);
  }
  chunk_options.num_threads = 1;  // parallelism lives across blocks here

  const size_t num_chunks = static_cast<size_t>(CeilDiv(n, chunk_size));
  std::vector<std::vector<Fragment>> per_chunk(num_chunks);
  auto run_chunk = [&](size_t c) {
    uint64_t begin = static_cast<uint64_t>(c) * chunk_size;
    uint64_t end = std::min<uint64_t>(n, begin + chunk_size);
    per_chunk[c] = PartitionLossless(values.subspan(begin, end - begin),
                                     chunk_options);
    for (Fragment& frag : per_chunk[c]) {
      frag.start += begin;
      frag.end += begin;
      frag.origin += begin;
    }
  };
  if (ResolveNumThreads(num_threads) > 1 && num_chunks > 1) {
    ThreadPool pool(std::min<int>(ResolveNumThreads(num_threads),
                                  static_cast<int>(num_chunks)));
    pool.ParallelFor(num_chunks, run_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
  }

  // Boundary-merge stitch. The cascade is capped: once a merged fragment
  // spans kMaxMergeSpanChunks blocks, further boundaries keep the split.
  // Every attempt costs O(merged length) (refit + residual-width scans),
  // so without the cap a fit spanning k blocks would cost O(k^2 * chunk)
  // across its boundaries — the cap bounds the whole pass at O(n) with a
  // small constant, and gives back only ~one fragment's metadata per
  // kMaxMergeSpanChunks blocks on endlessly mergeable input.
  constexpr uint64_t kMaxMergeSpanChunks = 16;
  const uint64_t max_merge_len = kMaxMergeSpanChunks * chunk_size;
  std::vector<Fragment> result;
  for (std::vector<Fragment>& frags : per_chunk) {
    size_t at = 0;
    if (!result.empty() && !frags.empty() &&
        result.back().length() + frags.front().length() <= max_merge_len) {
      Fragment merged;
      if (internal::TryMergeAtBoundary(values, result.back(), frags.front(),
                                       chunk_options, &merged)) {
        result.back() = merged;  // cascades: a block-spanning merge may
        at = 1;                  // merge again at the next boundary
      }
    }
    result.insert(result.end(), frags.begin() + static_cast<ptrdiff_t>(at),
                  frags.end());
  }
  return result;
}

/// Partitions `values` for lossy compression under the single error bound
/// `eps`, minimising the space of the functions alone. Linear time in
/// |F| * n.
inline std::vector<Fragment> PartitionLossy(std::span<const int64_t> values,
                                            int64_t eps,
                                            const PartitionOptions& options = {}) {
  return internal::PartitionImpl(values, options, {eps},
                                 [&](const Fragment& f) {
                                   return internal::LossyWeight(f, options);
                                 });
}

}  // namespace neats
