// Stable codec identifiers for the codec-pluggable serving layer.
//
// Every compressed representation that can serve a store shard has a CodecId;
// the id is what MANIFEST.neats (v2) records per shard and what the codec
// registry (src/codecs/codec_registry.hpp) dispatches open/compress by. The
// numeric values are wire format — never renumber, only append (docs/FORMAT.md,
// "Codec-id table").

#pragma once

#include <cstdint>

namespace neats {

/// Identifies a concrete SeriesCodec implementation on the wire.
enum class CodecId : uint32_t {
  kNeats = 0,           // NeaTS lossless (format v3 blob, zero-copy open)
  kNeatsLossyExact = 1,  // NeaTS-L approximation + packed residuals (exact)
  kLeco = 2,            // LeCo-style linear fits + packed residuals
  kAlp = 3,             // ALP pseudo-decimal vectors (+ int64 exception list)
  kGorilla = 4,         // Gorilla XOR stream, block-wise random access
  kChimp = 5,           // Chimp XOR stream, block-wise random access
};

/// One past the largest assigned CodecId value.
inline constexpr uint32_t kNumCodecIds = 6;

/// True when a raw manifest word names an assigned codec id.
constexpr bool IsValidCodecId(uint64_t raw) { return raw < kNumCodecIds; }

/// Short stable name (used by the bench report and diagnostics).
constexpr const char* CodecName(CodecId id) {
  switch (id) {
    case CodecId::kNeats: return "neats";
    case CodecId::kNeatsLossyExact: return "neats-lossy-exact";
    case CodecId::kLeco: return "leco";
    case CodecId::kAlp: return "alp";
    case CodecId::kGorilla: return "gorilla";
    case CodecId::kChimp: return "chimp";
  }
  return "unknown";
}

/// Little-endian magic word of an 8-character tag — the codec blob headers
/// are built from these so the first bytes of any blob spell out its format
/// in ASCII, matching the "NEATSv2" / "NEATSL2" / "NEATSMF" convention.
constexpr uint64_t MagicWord(const char (&tag)[9]) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(tag[i]);
  }
  return v;
}

}  // namespace neats
