// The NeaTS lossless compressor (paper, Sec. III-C).
//
// Compressed layout — the tuple ⟨S, B, O, C, K, P⟩ of the paper, plus a small
// displacement array D introduced by this implementation:
//
//   S  fragment start positions; Elias-Fano (O(1) access, O(log) rank) or,
//      optionally, a plain bitvector with rank9 for O(1)-time random access
//      (both variants are described in the paper).
//   B  per-fragment correction bit widths, in a packed array.
//   O  cumulative correction bit offsets, Elias-Fano.
//   C  the corrections themselves, bit-packed back to back.
//   K  per-fragment function kinds, a wavelet tree over the (dense) kind ids.
//   P  per-kind concatenation of the function parameters; the parameters of
//      fragment i live at index K.rank_{K[i]}(i) of its kind's array.
//   D  per-fragment displacement start - origin (non-zero only for fragments
//      born as suffix edges, whose parameters keep the original fit origin;
//      width is 0 bits whenever no suffix fragment survives in the partition).
//
// On top of the tuple sits an interleaved per-fragment directory (format v3,
// src/succinct/fragment_directory.hpp): the B/O/K/D cells plus the parameter
// offset of each fragment, bit-packed into one contiguous record. Queries
// resolve the fragment with one Elias-Fano predecessor scan on S and then
// read a single directory record instead of probing B, O, K and D
// separately; the individual structures remain the serialized source of
// truth (and the ground truth the loaders verify the directory against).
//
// Full decompression is Algorithm 2; random access is Algorithm 3; range
// decompression combines one random access with a forward scan.

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "core/partitioner.hpp"
#include "functions/approximator.hpp"
#include "functions/kinds.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/fragment_directory.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/storage.hpp"
#include "succinct/wavelet_tree.hpp"

namespace neats {

/// How the S array (fragment starts) is represented.
enum class StartsIndex {
  kEliasFano,  // compressed, rank in O(min(log m, log n/m))
  kBitVector,  // plain n-bit vector with rank9, rank in O(1)
};

/// Compression options for Neats::Compress.
struct NeatsOptions {
  PartitionOptions partition;
  StartsIndex starts_index = StartsIndex::kEliasFano;

  /// Threads used during compression. 1 = serial, 0 = all hardware threads.
  /// Without chunking this parallelizes the partitioner's Phase-1 edge
  /// rebuilds (bit-identical output for every thread count); with
  /// `chunk_size` set it additionally partitions the chunks concurrently.
  int num_threads = 1;

  /// When non-zero, the series is cut into disjoint blocks of this many
  /// values, each block is partitioned independently (concurrently on
  /// `num_threads` threads) and the fragment lists are stitched. The output
  /// is deterministic — identical bytes for every thread count — but may be
  /// slightly larger than the global partition, since fragments never span
  /// a block boundary. 0 = single global partition.
  uint64_t chunk_size = 0;
};

/// A half-open index range [from, from + len) of the decompressed series —
/// the unit of the multi-range query APIs (Neats::DecompressRanges and the
/// store layer's batch surface).
struct IndexRange {
  uint64_t from = 0;
  uint64_t len = 0;
};

/// A lossless, randomly-accessible compressed representation of an integer
/// time series.
class Neats {
 public:
  Neats() = default;

  /// Compresses `values`. Values must lie within ±2^61 (see kMaxAbsValue).
  static Neats Compress(std::span<const int64_t> values,
                        const NeatsOptions& options = {}) {
    std::vector<int64_t> eps = options.partition.epsilons;
    if (eps.empty()) eps = DefaultEpsilons(ShiftView(values).shifted);
    return CompressImpl(values, options, eps);
  }

  /// SNeaTS (paper, Sec. IV-C1): runs the partitioner on the first
  /// `sample_fraction` of the series, keeps the `top_pairs` most used
  /// (kind, eps) pairs, and compresses the whole series with only those.
  static Neats CompressWithModelSelection(std::span<const int64_t> values,
                                          const NeatsOptions& options = {},
                                          double sample_fraction = 0.1,
                                          size_t top_pairs = 5);

  /// Number of values.
  uint64_t size() const { return n_; }

  /// Number of fragments in the partition.
  size_t num_fragments() const { return m_; }

  /// Algorithm 3: the value at index k, in O(rank) time. On the Elias-Fano
  /// starts index the fragment index and its start position come out of one
  /// fused predecessor scan; everything else the decode needs — kind,
  /// parameter offset, displacement, correction width and correction offset —
  /// is a single interleaved directory record (format v3), so the metadata
  /// resolution costs one extra cache line instead of separate probes into
  /// the B, O, K and D structures.
  int64_t Access(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    if (starts_mode_ == StartsIndex::kEliasFano) {
      auto [i, start] = starts_ef_.Predecessor(k);
      return DecodeAt(i, start, k);
    }
    size_t i = FragmentIndexOf(k);
    return DecodeAt(i, FragmentStart(i), k);
  }

  /// Algorithm 3 resolved through the individual S/B/O/K/D structures — the
  /// metadata path every query used before the interleaved directory
  /// existed. Kept as the ground truth the directory is fuzzed against and
  /// as the paired `access_ns_legacy` baseline column of bench_report;
  /// production callers should use Access.
  int64_t AccessViaLegacyStructures(uint64_t k) const {
    NEATS_DCHECK(k < n_);
    size_t i;
    uint64_t start;
    if (starts_mode_ == StartsIndex::kEliasFano) {
      auto [pi, pstart] = starts_ef_.Predecessor(k);
      i = pi;
      start = pstart;
    } else {
      i = FragmentIndexOf(k);
      start = FragmentStart(i);
    }
    auto [dense, occ] = kinds_wt_.AccessAndRank(i);
    NEATS_TOUCH(kind_table_.data() + dense);
    FunctionKind kind = kind_table_[dense];
    const double* params =
        params_[dense].data() + occ * static_cast<size_t>(NumParams(kind));
    NEATS_TOUCH(params);
    int bits = static_cast<int>(widths_[i]);
    uint64_t origin = start - displacement_[i];
    int64_t pred =
        PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1);
    if (bits == 0) return pred - shift_;
    int64_t bias = int64_t{1} << (bits - 1);
    uint64_t o = offsets_.Access(i) + (k - start) * static_cast<uint64_t>(bits);
    NEATS_TOUCH(corrections_.data() + (o >> 6));
    int64_t c =
        static_cast<int64_t>(ReadBits(corrections_.data(), o, bits)) - bias;
    return pred + c - shift_;
  }

  /// Batched Algorithm 3: decodes the values at positions `idx` — which must
  /// be non-decreasing (duplicates allowed; callers with unsorted probes sort
  /// first, as NeatsStore::AccessBatch does) — into out[0..idx.size()).
  /// Consecutive probes covered by the same fragment decode from one cached
  /// state: the fragment is resolved by the Elias-Fano PredecessorScanner
  /// (a forward high-bits walk between nearby probes, a plain bucket scan
  /// across far jumps — never more than scalar Access pays) and its
  /// directory record is read once per fragment run, so the per-probe cost
  /// of a dense sorted batch approaches the predict + correction read
  /// alone. Unlike the cursor path, the fragment *end* is never computed —
  /// the scanner itself reports when a probe crosses into the next
  /// fragment, saving the extra select per fragment that sparse batches
  /// would otherwise pay over scalar Access.
  void AccessBatch(std::span<const uint64_t> idx, int64_t* out) const {
    FragState st;
    size_t cur = SIZE_MAX;
    if (starts_mode_ == StartsIndex::kEliasFano) {
      EliasFano::PredecessorScanner scanner(starts_ef_);
      for (size_t p = 0; p < idx.size(); ++p) {
        NEATS_DCHECK(idx[p] < n_ && (p == 0 || idx[p - 1] <= idx[p]));
        auto [i, start] = scanner.Next(idx[p]);
        if (i != cur) {
          st = LoadFragmentState(i, start);
          cur = i;
        }
        out[p] = DecodeFragValue(st, idx[p]);
      }
      return;
    }
    for (size_t p = 0; p < idx.size(); ++p) {
      NEATS_DCHECK(idx[p] < n_ && (p == 0 || idx[p - 1] <= idx[p]));
      size_t i = FragmentIndexOf(idx[p]);
      if (i != cur) {
        st = LoadFragmentState(i, FragmentStart(i));
        cur = i;
      }
      out[p] = DecodeFragValue(st, idx[p]);
    }
  }

  /// Multi-range decompression: concatenates the values of every range into
  /// `out` (sized to the sum of the lengths), sharing one cursor across the
  /// whole batch — consecutive ranges that land in nearby fragments reuse
  /// the cached decode state through the cursor's monotone-seek hop chain
  /// instead of paying a fresh rank per range.
  void DecompressRanges(std::span<const IndexRange> ranges, int64_t* out) const;

  /// Sequential-access cursor over the decompressed values; see the class
  /// definition below. Iteration and monotone seeks skip the per-call
  /// FragmentIndexOf rank that Access pays.
  class Cursor;

  /// Algorithm 2: appends all n values to `out` (cleared first).
  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    DecompressRange(0, n_, out->data());
  }

  /// Decompresses values[k, k + len) into out (one cursor seek + scan).
  void DecompressRange(uint64_t k, uint64_t len, int64_t* out) const;

  /// Total size of the compressed representation in bits — exactly the v3
  /// serialized size (8 * Serialize output bytes), kept in lockstep with the
  /// writer so benches and the CLI report what lands on disk.
  size_t SizeInBits() const {
    size_t bits = HeaderSizeInBits() + 64 + corrections_.size() * 64 + 64;
    for (const auto& p : params_) bits += 64 + p.size() * 64;
    if (m_ > 0) {
      size_t s_bits = starts_mode_ == StartsIndex::kEliasFano
                          ? starts_ef_.SizeInBits()
                          : starts_bv_.SizeInBits();
      bits += s_bits + widths_.SizeInBits() + displacement_.SizeInBits() +
              offsets_.SizeInBits() + kinds_wt_.SizeInBits();
    }
    return bits + directory_.SizeInBitsAt(bits);
  }

  /// Result of an approximate aggregate: the estimate plus a hard bound on
  /// its distance from the exact answer.
  struct ApproximateAggregate {
    double value;
    double error_bound;
  };

  /// Approximate sum over values[from, from+len) computed from the learned
  /// functions alone — the corrections (and hence most of the compressed
  /// payload) are never touched, which is the aggregate-query direction the
  /// paper suggests as future work (Sec. VI). Each skipped correction lies
  /// in [-2^(B[i]-1), 2^(B[i]-1) - 1], so the result is off by at most
  /// len_i * 2^(B[i]-1) per covered fragment; the bound returned is exact.
  ApproximateAggregate ApproximateRangeSum(uint64_t from, uint64_t len) const {
    NEATS_DCHECK(from + len <= n_);
    ApproximateAggregate agg{0.0, 0.0};
    if (len == 0) return agg;
    size_t i = FragmentIndexOf(from);
    uint64_t covered = 0;
    while (covered < len) {
      uint64_t start = FragmentStart(i);
      uint64_t end = FragmentEnd(i);
      uint64_t lo = std::max(from + covered, start);
      uint64_t hi = std::min(from + len, end);
      const FragmentDirectory::Record& rec = directory_[i];
      FunctionKind kind = kind_table_[rec.kind];
      const double* params = params_[rec.kind].data() + rec.param_index;
      uint64_t origin = start - rec.displacement;
      for (uint64_t k = lo; k < hi; ++k) {
        agg.value += static_cast<double>(
            PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1));
      }
      int bits = rec.correction_bits;
      double max_corr = bits == 0 ? 0.0
                                  : static_cast<double>(uint64_t{1} << (bits - 1));
      agg.error_bound += static_cast<double>(hi - lo) * max_corr;
      covered += hi - lo;
      ++i;
    }
    agg.value -= static_cast<double>(shift_) * static_cast<double>(len);
    return agg;
  }

  /// Exact sum over values[from, from+len), streamed through a cursor in
  /// fixed-size chunks — no O(len) allocation.
  int64_t RangeSum(uint64_t from, uint64_t len) const;

  /// Serializes the compressed representation to bytes in format v3: the
  /// flat, 8-byte-aligned little-endian v2 layout (docs/FORMAT.md) plus the
  /// interleaved fragment directory as an additive trailing section (same
  /// "NEATSv2" magic family, version word 3). Every succinct structure is
  /// stored together with its rank/select directories, so View can open the
  /// blob zero-copy — no deserialization copy; the stored directories are
  /// verified against the payload on load.
  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagicV2);
    w.Put(kFormatVersion);
    w.Put(n_);
    w.Put(static_cast<uint64_t>(m_));
    w.Put(static_cast<uint64_t>(shift_));
    w.Put(starts_mode_ == StartsIndex::kEliasFano ? 0 : 1);
    w.Put(kind_table_.size());
    for (FunctionKind kind : kind_table_) w.Put(static_cast<uint64_t>(kind));
    if (m_ > 0) {
      if (starts_mode_ == StartsIndex::kEliasFano) {
        starts_ef_.Serialize(w);
      } else {
        starts_bv_.Serialize(w);
      }
      widths_.Serialize(w);
      displacement_.Serialize(w);
      offsets_.Serialize(w);
      kinds_wt_.Serialize(w);
    }
    w.PutArray(corrections_);
    w.Put(params_.size());
    for (const auto& p : params_) w.PutArray(p);
    directory_.Serialize(w);
  }

  /// Rebuilds a Neats object from Serialize output, copying the payload into
  /// owned storage. Understands format v3, format v2 (no directory section —
  /// the directory is rebuilt on load) and the legacy v1 layout (which
  /// stored the logical fragment table and rebuilt every index).
  static Neats Deserialize(std::span<const uint8_t> bytes) {
    NEATS_REQUIRE(bytes.size() >= 8, "not a NeaTS blob");
    uint64_t magic;
    std::memcpy(&magic, bytes.data(), 8);
    if (magic == kMagicV1) return DeserializeV1(bytes);
    NEATS_REQUIRE(magic == kMagicV2, "not a NeaTS blob");
    return LoadFlat(bytes, /*borrow=*/false);
  }

  /// Opens a flat (v2/v3) blob zero-copy: every payload array is a span into
  /// `bytes`, which must be 8-byte aligned (mmap and heap buffers both are)
  /// and must outlive the returned object and everything decoded from it.
  /// A v3 blob maps the fragment directory in place too; a v2 blob has none
  /// stored, so only its directory is rebuilt into owned memory.
  static Neats View(std::span<const uint8_t> bytes) {
    NEATS_REQUIRE(bytes.size() >= 8, "not a NeaTS blob");
    uint64_t magic;
    std::memcpy(&magic, bytes.data(), 8);
    NEATS_REQUIRE(magic == kMagicV2,
                  "zero-copy open requires a format-v2/v3 NeaTS blob");
    return LoadFlat(bytes, /*borrow=*/true);
  }

  /// True when this object borrows its payload from an external buffer
  /// (i.e. it was produced by View rather than Compress/Deserialize).
  bool borrowed() const { return corrections_.borrowed(); }

  /// SeriesCodec trait: View genuinely borrows the caller's buffer, so a
  /// store shard mapped from disk serves with no deserialization copy.
  static constexpr bool kZeroCopyView = true;

  /// Dispatch probe: true when `bytes` carries the flat-format magic
  /// (shared by v2 and v3) at an 8-byte-aligned address, i.e. the blob
  /// should be routed to View rather than the legacy-v1 Deserialize path.
  /// This is a format sniff, not a validity proof — View still rejects
  /// corrupt content by aborting (NEATS_REQUIRE), exactly like Deserialize.
  static bool IsZeroCopyOpenable(std::span<const uint8_t> bytes) {
    if (bytes.size() < 8) return false;
    if ((reinterpret_cast<uintptr_t>(bytes.data()) & 7) != 0) return false;
    uint64_t magic;
    std::memcpy(&magic, bytes.data(), 8);
    return magic == kMagicV2;
  }

  /// Introspection: a decoded view of fragment i (for examples & benches).
  struct FragmentInfo {
    uint64_t start, end, origin;
    FunctionKind kind;
    int correction_bits;
    double params[3];
  };
  FragmentInfo GetFragment(size_t i) const {
    const FragmentDirectory::Record& rec = directory_[i];
    FragmentInfo info;
    info.start = FragmentStart(i);
    info.end = FragmentEnd(i);
    info.origin = info.start - rec.displacement;
    info.kind = kind_table_[rec.kind];
    info.correction_bits = static_cast<int>(rec.correction_bits);
    const double* p = params_[rec.kind].data() + rec.param_index;
    for (int j = 0; j < 3; ++j) {
      info.params[j] = j < NumParams(info.kind) ? p[j] : 0.0;
    }
    return info;
  }

 private:
  friend class NeatsTestPeer;

  struct ShiftedValues {
    std::vector<int64_t> storage;
    std::span<const int64_t> shifted;
    int64_t shift = 0;
  };

  /// Applies the positivity shift of footnote 2: y' = y + shift with
  /// shift = 1 - min(y) when min(y) < 1, so log-domain kinds stay usable.
  static ShiftedValues ShiftView(std::span<const int64_t> values) {
    ShiftedValues sv;
    int64_t lo = 0;
    for (int64_t v : values) {
      NEATS_REQUIRE(v >= -kMaxAbsValue && v <= kMaxAbsValue,
                    "value outside ±2^61");
      lo = std::min(lo, v);
    }
    if (values.empty() || lo >= 1) {
      sv.shifted = values;
      return sv;
    }
    sv.shift = 1 - lo;
    sv.storage.reserve(values.size());
    for (int64_t v : values) sv.storage.push_back(v + sv.shift);
    sv.shifted = sv.storage;
    return sv;
  }

  static Neats CompressImpl(std::span<const int64_t> values,
                            const NeatsOptions& options,
                            const std::vector<int64_t>& epsilons) {
    Neats out;
    out.n_ = values.size();
    out.starts_mode_ = options.starts_index;
    if (values.empty()) return out;

    ShiftedValues sv = ShiftView(values);
    out.shift_ = sv.shift;

    PartitionOptions popts = options.partition;
    popts.epsilons = epsilons;
    if (popts.num_threads == 1) popts.num_threads = options.num_threads;
    std::vector<Fragment> fragments =
        options.chunk_size > 0
            ? PartitionLosslessChunked(sv.shifted, options.chunk_size,
                                       options.num_threads, popts)
            : PartitionLossless(sv.shifted, popts);
    out.BuildLayout(sv.shifted, fragments, options);
    return out;
  }

  /// Shared body of Deserialize (copy mode) and View (borrow mode) for the
  /// flat formats v2 and v3. In borrow mode every GetArray returns a span
  /// into `bytes`.
  static Neats LoadFlat(std::span<const uint8_t> bytes, bool borrow) {
    WordReader r(bytes, borrow);
    NEATS_REQUIRE(r.Get() == kMagicV2, "not a NeaTS blob");
    const uint64_t version = r.Get();
    NEATS_REQUIRE(version == 2 || version == kFormatVersion,
                  "unsupported NeaTS format version");
    Neats out;
    out.n_ = r.Get();
    out.m_ = r.Get();
    // Bound n so every length*width product below stays far from uint64
    // wrap (2^56 values * 64 bits = 2^62) — a wrapped product could forge
    // the fragment-walk consistency check.
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56) && out.m_ <= out.n_,
                  "corrupt NeaTS blob");
    out.shift_ = static_cast<int64_t>(r.Get());
    out.starts_mode_ = r.Get() == 0 ? StartsIndex::kEliasFano
                                    : StartsIndex::kBitVector;
    size_t kinds = r.Get();
    NEATS_REQUIRE(kinds <= static_cast<size_t>(kNumFunctionKinds),
                  "corrupt NeaTS blob");
    for (size_t i = 0; i < kinds; ++i) {
      out.kind_table_.push_back(static_cast<FunctionKind>(r.Get()));
    }
    if (out.m_ > 0) {
      if (out.starts_mode_ == StartsIndex::kEliasFano) {
        out.starts_ef_ = EliasFano::Load(r);
        // Fragment 0 must start at value 0 and the last start must lie in
        // [0, n): Access relies on both (a rank of 0 would underflow).
        NEATS_REQUIRE(out.starts_ef_.size() == out.m_ &&
                          out.starts_ef_.Access(0) == 0 &&
                          out.starts_ef_.Access(out.m_ - 1) < out.n_,
                      "corrupt NeaTS blob");
      } else {
        out.starts_bv_ = RankSelect::Load(r);
        NEATS_REQUIRE(out.starts_bv_.size() == out.n_ &&
                          out.starts_bv_.ones() == out.m_ &&
                          out.starts_bv_.Get(0),
                      "corrupt NeaTS blob");
      }
      out.widths_ = PackedArray::Load(r);
      out.displacement_ = PackedArray::Load(r);
      out.offsets_ = EliasFano::Load(r);
      out.kinds_wt_ = WaveletTree::Load(r);
      NEATS_REQUIRE(out.widths_.size() == out.m_ &&
                        out.displacement_.size() == out.m_ &&
                        out.offsets_.size() == out.m_ + 1 &&
                        out.kinds_wt_.size() == out.m_,
                    "corrupt NeaTS blob");
    }
    out.corrections_ = r.GetArray<uint64_t>();
    // Cross-check the sections against each other: the offsets EF must end
    // exactly at the bit size of the corrections payload, and every
    // fragment's correction span must equal its length times its width —
    // otherwise a query could compute a bit offset outside the payload.
    // O(m) constant-time probes, no allocation, so View stays zero-copy.
    uint64_t total_bits = out.m_ > 0 ? out.offsets_.Access(out.m_) : 0;
    NEATS_REQUIRE(out.corrections_.size() == CeilDiv(total_bits, 64),
                  "corrupt NeaTS blob");
    if (out.m_ > 0) {
      NEATS_REQUIRE(kinds > 0, "corrupt NeaTS blob");
      uint64_t prev_start = out.FragmentStart(0);  // == 0, checked above
      uint64_t prev_off = out.offsets_.Access(0);
      NEATS_REQUIRE(prev_off == 0, "corrupt NeaTS blob");
      for (size_t i = 1; i <= out.m_; ++i) {
        uint64_t start = i < out.m_ ? out.FragmentStart(i) : out.n_;
        uint64_t off = out.offsets_.Access(i);
        uint64_t width = out.widths_[i - 1];
        NEATS_REQUIRE(start > prev_start && off >= prev_off && width <= 64 &&
                          off - prev_off == (start - prev_start) * width,
                      "corrupt NeaTS blob");
        prev_start = start;
        prev_off = off;
      }
    }
    size_t n_params = r.Get();
    NEATS_REQUIRE(n_params == kinds || (out.m_ == 0 && n_params == 0),
                  "corrupt NeaTS blob");
    out.params_.reserve(n_params);
    for (size_t i = 0; i < n_params; ++i) {
      out.params_.push_back(r.GetArray<double>());
      // Each kind's array must hold exactly the parameters its fragments
      // index into (occurrences * arity) — DecodeAt reads unchecked.
      NEATS_REQUIRE(
          out.params_[i].size() ==
              out.kinds_wt_.Rank(static_cast<uint32_t>(i), out.m_) *
                  static_cast<size_t>(NumParams(out.kind_table_[i])),
          "corrupt NeaTS blob");
    }
    // The interleaved directory is redundant with S/B/O/K/D, and queries
    // trust its records without bounds checks — so a stored directory (v3)
    // is verified record-for-record against one rebuilt from the sections
    // just validated (O(m), transient, like RankSelect's directory check);
    // a v2 blob simply gets the rebuilt directory.
    if (version >= 3) {
      out.directory_ = FragmentDirectory::Load(r);
      NEATS_REQUIRE(out.directory_.Matches(out.ComputeDirectoryRecords()),
                    "corrupt NeaTS blob");
    } else {
      out.directory_ = FragmentDirectory(out.ComputeDirectoryRecords());
    }
    return out;
  }

  /// Legacy v1 reader: the blob stores the logical fragment table and the
  /// succinct indexes are rebuilt (and therefore owned) on load.
  static Neats DeserializeV1(std::span<const uint8_t> bytes) {
    size_t pos = 0;
    auto get64 = [&bytes, &pos]() {
      NEATS_REQUIRE(pos + 8 <= bytes.size(), "truncated NeaTS blob");
      uint64_t v = 0;
      for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(bytes[pos++]) << (8 * b);
      return v;
    };
    NEATS_REQUIRE(get64() == kMagicV1, "not a NeaTS blob");
    // Any count word is bounded by the bytes that could back it, so corrupt
    // blobs abort instead of triggering huge allocations or OOB reads.
    auto bounded = [&bytes, &pos](uint64_t count, size_t cell_bytes) {
      NEATS_REQUIRE(count <= (bytes.size() - pos) / cell_bytes,
                    "truncated NeaTS blob");
      return static_cast<size_t>(count);
    };
    Neats out;
    out.n_ = get64();
    out.m_ = bounded(get64(), 32);  // four words per fragment row
    // Same wrap guard as LoadV2: keeps the offsets accumulation exact.
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56) && out.m_ <= out.n_,
                  "corrupt NeaTS blob");
    out.shift_ = static_cast<int64_t>(get64());
    out.starts_mode_ = get64() == 0 ? StartsIndex::kEliasFano
                                    : StartsIndex::kBitVector;
    size_t kinds = bounded(get64(), 8);
    NEATS_REQUIRE(kinds <= static_cast<size_t>(kNumFunctionKinds) &&
                      (kinds > 0 || out.m_ == 0),
                  "corrupt NeaTS blob");
    for (size_t i = 0; i < kinds; ++i) {
      out.kind_table_.push_back(static_cast<FunctionKind>(get64()));
    }
    std::vector<uint64_t> starts(out.m_), widths(out.m_), disp(out.m_);
    std::vector<uint32_t> kind_symbols(out.m_);
    std::vector<size_t> params_needed(kinds, 0);
    for (size_t i = 0; i < out.m_; ++i) {
      starts[i] = get64();
      kind_symbols[i] = static_cast<uint32_t>(get64());
      widths[i] = get64();
      disp[i] = get64();
      NEATS_REQUIRE(kind_symbols[i] < kinds && widths[i] <= 64 &&
                        (i == 0 ? starts[i] == 0 : starts[i] > starts[i - 1]) &&
                        starts[i] < out.n_,
                    "corrupt NeaTS blob");
      params_needed[kind_symbols[i]] += static_cast<size_t>(
          NumParams(out.kind_table_[kind_symbols[i]]));
    }
    out.params_.reserve(kinds);
    for (size_t k = 0; k < kinds; ++k) {
      std::vector<double> p(bounded(get64(), 8));
      for (double& v : p) v = std::bit_cast<double>(get64());
      NEATS_REQUIRE(p.size() == params_needed[k], "corrupt NeaTS blob");
      out.params_.emplace_back(std::move(p));
    }
    uint64_t total_bits = get64();
    std::vector<uint64_t> corrections(bounded(get64(), 8));
    for (uint64_t& w : corrections) w = get64();
    NEATS_REQUIRE(corrections.size() == CeilDiv(total_bits, 64),
                  "corrupt NeaTS blob");
    out.corrections_ = Storage<uint64_t>(std::move(corrections));

    if (out.m_ > 0) {
      // Rebuild the succinct indexes.
      if (out.starts_mode_ == StartsIndex::kEliasFano) {
        out.starts_ef_ = EliasFano(starts, out.n_);
      } else {
        BitVector bv(out.n_);
        for (uint64_t s : starts) bv.Set(s);
        out.starts_bv_ = RankSelect(std::move(bv));
      }
      std::vector<uint64_t> offsets(out.m_ + 1, 0);
      for (size_t i = 0; i < out.m_; ++i) {
        uint64_t end = i + 1 < out.m_ ? starts[i + 1] : out.n_;
        offsets[i + 1] = offsets[i] + (end - starts[i]) * widths[i];
      }
      NEATS_REQUIRE(offsets[out.m_] == total_bits, "corrupt NeaTS blob");
      out.widths_ = PackedArray::FromValues(widths);
      out.displacement_ = PackedArray::FromValues(disp);
      out.offsets_ = EliasFano(offsets, total_bits + 1);
      out.kinds_wt_ = WaveletTree(kind_symbols, static_cast<uint32_t>(kinds));
      out.directory_ = FragmentDirectory(out.ComputeDirectoryRecords());
    }
    return out;
  }

  /// Rebuilds the interleaved directory records from the S/B/O/K/D
  /// structures, in fragment order — the inverse of what BuildLayout packs
  /// at compress time. Loaders use this both to populate the directory for
  /// pre-v3 blobs and as the expected value a stored v3 directory must
  /// match byte-for-byte (zero pad included).
  std::vector<FragmentDirectory::Record> ComputeDirectoryRecords() const {
    std::vector<FragmentDirectory::Record> records(m_);
    for (size_t i = 0; i < m_; ++i) {
      auto [dense, occ] = kinds_wt_.AccessAndRank(i);
      FragmentDirectory::Record rec{};
      rec.corr_offset = offsets_.Access(i);
      rec.displacement = displacement_[i];
      rec.param_index =
          occ * static_cast<size_t>(NumParams(kind_table_[dense]));
      rec.kind = static_cast<uint8_t>(dense);
      rec.correction_bits = static_cast<uint8_t>(widths_[i]);
      records[i] = rec;
    }
    return records;
  }

  void BuildLayout(std::span<const int64_t> shifted,
                   const std::vector<Fragment>& fragments,
                   const NeatsOptions& options) {
    const size_t m = fragments.size();

    // Dense kind table: only kinds actually used get an id.
    std::vector<int> kind_to_dense(kNumFunctionKinds, -1);
    std::vector<uint32_t> kind_symbols(m);
    for (size_t i = 0; i < m; ++i) {
      int raw = static_cast<int>(fragments[i].kind);
      if (kind_to_dense[raw] < 0) {
        kind_to_dense[raw] = static_cast<int>(kind_table_.size());
        kind_table_.push_back(fragments[i].kind);
      }
      kind_symbols[i] = static_cast<uint32_t>(kind_to_dense[raw]);
    }
    kinds_wt_ = WaveletTree(kind_symbols,
                            static_cast<uint32_t>(kind_table_.size()));
    std::vector<std::vector<double>> params(kind_table_.size());

    m_ = m;
    std::vector<uint64_t> starts(m);
    std::vector<uint64_t> widths(m), displacement(m), offsets(m + 1);
    std::vector<FragmentDirectory::Record> records(m);
    BitWriter corrections;

    for (size_t i = 0; i < m; ++i) {
      const Fragment& frag = fragments[i];
      starts[i] = frag.start;
      displacement[i] = frag.start - frag.origin;
      FragmentDirectory::Record rec{};  // zero pad: canonical bytes
      rec.displacement = displacement[i];
      rec.kind = static_cast<uint8_t>(kind_symbols[i]);
      rec.param_index = params[kind_symbols[i]].size();
      for (int j = 0; j < NumParams(frag.kind); ++j) {
        params[kind_symbols[i]].push_back(frag.params[j]);
      }
      // Residual pass 1: actual range (floating-point-safe width).
      int64_t lo = 0, hi = 0;
      for (uint64_t k = frag.start; k < frag.end; ++k) {
        int64_t r = shifted[k] - frag.Predict(k);
        lo = std::min(lo, r);
        hi = std::max(hi, r);
      }
      int bits = ResidualBits(lo, hi);
      widths[i] = static_cast<uint64_t>(bits);
      offsets[i] = corrections.bit_size();
      rec.correction_bits = static_cast<uint8_t>(bits);
      rec.corr_offset = offsets[i];
      records[i] = rec;
      // Residual pass 2: emit with bias 2^(bits-1).
      int64_t bias = bits == 0 ? 0 : (int64_t{1} << (bits - 1));
      for (uint64_t k = frag.start; k < frag.end; ++k) {
        int64_t r = shifted[k] - frag.Predict(k);
        corrections.Append(static_cast<uint64_t>(r + bias), bits);
      }
    }
    offsets[m] = corrections.bit_size();

    if (starts_mode_ == StartsIndex::kEliasFano) {
      starts_ef_ = EliasFano(starts, n_);
    } else {
      BitVector bv(n_);
      for (uint64_t s : starts) bv.Set(s);
      starts_bv_ = RankSelect(std::move(bv));
    }
    widths_ = PackedArray::FromValues(widths);
    displacement_ = PackedArray::FromValues(displacement);
    offsets_ = EliasFano(offsets, offsets[m] + 1);
    corrections_ = Storage<uint64_t>(corrections.TakeWords());
    directory_ = FragmentDirectory(std::move(records));
    params_.reserve(params.size());
    for (auto& p : params) params_.emplace_back(std::move(p));
    (void)options;
  }

  /// Index of the fragment covering position k (S.rank(k) - 1).
  size_t FragmentIndexOf(uint64_t k) const {
    if (starts_mode_ == StartsIndex::kEliasFano) {
      return starts_ef_.Rank(k) - 1;
    }
    return static_cast<size_t>(starts_bv_.Rank1(k + 1)) - 1;
  }

  uint64_t FragmentStart(size_t i) const {
    return starts_mode_ == StartsIndex::kEliasFano
               ? starts_ef_.Access(i)
               : starts_bv_.Select1(i);
  }
  uint64_t FragmentEnd(size_t i) const {
    return i + 1 < m_ ? FragmentStart(i + 1) : n_;
  }

  /// Decodes the value at position k of fragment i (whose start is already
  /// known) from the fragment's directory record: one contiguous record
  /// read supplies kind, parameter offset, displacement, correction width
  /// and correction offset, replacing the wavelet-tree traversal plus the
  /// B/D/O probes of the legacy layout.
  int64_t DecodeAt(size_t i, uint64_t start, uint64_t k) const {
    const FragmentDirectory::Record& rec = directory_[i];
    NEATS_TOUCH(kind_table_.data() + rec.kind);
    FunctionKind kind = kind_table_[rec.kind];
    const double* params = params_[rec.kind].data() + rec.param_index;
    NEATS_TOUCH(params);
    uint64_t origin = start - rec.displacement;
    int64_t pred = PredictFloor(kind, params, static_cast<int64_t>(k - origin) + 1);
    const int bits = rec.correction_bits;
    if (bits == 0) return pred - shift_;  // pure function: no corrections
    int64_t bias = int64_t{1} << (bits - 1);
    uint64_t o = rec.corr_offset + (k - start) * static_cast<uint64_t>(bits);
    NEATS_TOUCH(corrections_.data() + (o >> 6));
    int64_t c = static_cast<int64_t>(ReadBits(corrections_.data(), o, bits)) - bias;
    return pred + c - shift_;
  }

  /// Decoded per-fragment state, loaded once per fragment and carried by
  /// cursors: everything needed to decode any value of the fragment without
  /// touching the succinct indexes again.
  struct FragState {
    uint64_t start = 0, end = 0, origin = 0;
    uint64_t corr_base = 0;  // absolute bit offset of the first correction
    const double* params = nullptr;
    FunctionKind kind = FunctionKind::kLinear;
    int bits = 0;
    int64_t bias = 0;
  };

  /// The decode-relevant fields of fragment i (everything but `end`), from
  /// one directory record read. The batch kernel caches exactly this — it
  /// learns about fragment transitions from the predecessor scanner, so it
  /// never pays the extra starts select that computing `end` would cost.
  FragState LoadFragmentState(size_t i, uint64_t start) const {
    const FragmentDirectory::Record& rec = directory_[i];
    FragState s;
    s.start = start;
    s.kind = kind_table_[rec.kind];
    s.params = params_[rec.kind].data() + rec.param_index;
    s.bits = rec.correction_bits;
    s.bias = s.bits == 0 ? 0 : (int64_t{1} << (s.bits - 1));
    s.origin = start - rec.displacement;
    s.corr_base = rec.corr_offset;
    return s;
  }

  /// Loads fragment i given its start (already known to sequential callers —
  /// the next start is the previous end). Everything else comes out of the
  /// fragment's directory record in one read.
  FragState LoadFragment(size_t i, uint64_t start) const {
    FragState s = LoadFragmentState(i, start);
    s.end = FragmentEnd(i);
    return s;
  }

  /// Loads fragment i from scratch (one starts access + the record read).
  FragState LoadFragment(size_t i) const {
    return LoadFragment(i, FragmentStart(i));
  }

  /// Decodes the value at position k of the loaded fragment `s`
  /// (s.start <= k < s.end) — the one-value decode shared by Cursor::Value
  /// and the batch kernel's per-group loop.
  int64_t DecodeFragValue(const FragState& s, uint64_t k) const {
    int64_t pred = PredictFloor(s.kind, s.params,
                                static_cast<int64_t>(k - s.origin) + 1);
    uint64_t o = s.corr_base + (k - s.start) * static_cast<uint64_t>(s.bits);
    int64_t c =
        static_cast<int64_t>(ReadBits(corrections_.data(), o, s.bits)) - s.bias;
    return pred + c - shift_;
  }

  // Tight per-kind decode loop; KIND is a compile-time constant so the
  // dispatch inside PredictFloor folds away. Corrections are unpacked in
  // bulk (UnpackBitsRun) into a small stack buffer instead of paying an
  // unaligned ReadBits per element.
  template <FunctionKind KIND>
  void DecodeLoop(const double* params, uint64_t origin, uint64_t from,
                  uint64_t to, int bits, uint64_t bit_offset,
                  int64_t* out) const {
    if (bits == 0) {  // pure function: no corrections stored at all
      for (uint64_t k = from; k < to; ++k) {
        out[k - from] =
            PredictFloor(KIND, params, static_cast<int64_t>(k - origin) + 1) -
            shift_;
      }
      return;
    }
    const int64_t base = (int64_t{1} << (bits - 1)) + shift_;
    const uint64_t* words = corrections_.data();
    constexpr uint64_t kRun = 128;
    uint64_t corr[kRun];
    uint64_t k = from;
    uint64_t o = bit_offset;
    while (k < to) {
      const uint64_t run = std::min<uint64_t>(kRun, to - k);
      UnpackBitsRun(words, o, bits, run, corr);
      for (uint64_t j = 0; j < run; ++j) {
        int64_t pred =
            PredictFloor(KIND, params, static_cast<int64_t>(k + j - origin) + 1);
        out[k + j - from] = pred + static_cast<int64_t>(corr[j]) - base;
      }
      k += run;
      o += run * static_cast<uint64_t>(bits);
    }
  }

  /// Decodes values[from, to) of a loaded fragment (kind-dispatched loop).
  void DecodeRun(const FragState& s, uint64_t from, uint64_t to,
                 int64_t* out) const {
    uint64_t o = s.corr_base + (from - s.start) * static_cast<uint64_t>(s.bits);
    switch (s.kind) {
      case FunctionKind::kLinear:
        return DecodeLoop<FunctionKind::kLinear>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kQuadratic:
        return DecodeLoop<FunctionKind::kQuadratic>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kRadical:
        return DecodeLoop<FunctionKind::kRadical>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kExponential:
        return DecodeLoop<FunctionKind::kExponential>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kPower:
        return DecodeLoop<FunctionKind::kPower>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kLogarithm:
        return DecodeLoop<FunctionKind::kLogarithm>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kQuadMixed:
        return DecodeLoop<FunctionKind::kQuadMixed>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kCubicOdd:
        return DecodeLoop<FunctionKind::kCubicOdd>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kCubicMixed:
        return DecodeLoop<FunctionKind::kCubicMixed>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kQuadraticFull:
        return DecodeLoop<FunctionKind::kQuadraticFull>(s.params, s.origin, from, to, s.bits, o, out);
      case FunctionKind::kGaussian:
        return DecodeLoop<FunctionKind::kGaussian>(s.params, s.origin, from, to, s.bits, o, out);
    }
  }

  /// Bits of the serialized header: magic, version, n, m, shift, starts
  /// mode, kind-table length, and one word per kind-table entry (matches the
  /// fixed-size prefix Serialize emits before the section list).
  size_t HeaderSizeInBits() const { return (7 + kind_table_.size()) * 64; }

  static constexpr uint64_t kMagicV1 = 0x5354414554414E45ULL;  // legacy
  // Little-endian "NEATSv2\0": the mapped bytes of a flat blob start with
  // the ASCII name, so `head -c7` / file sniffers see it verbatim. The magic
  // names the format *family*; additive revisions (v3's directory section)
  // bump the version word, not the magic (ROADMAP format policy).
  static constexpr uint64_t kMagicV2 = 0x003276535441454EULL;
  static constexpr uint64_t kFormatVersion = 3;

  uint64_t n_ = 0;
  size_t m_ = 0;
  int64_t shift_ = 0;
  StartsIndex starts_mode_ = StartsIndex::kEliasFano;

  EliasFano starts_ef_;   // S (Elias-Fano variant)
  RankSelect starts_bv_;  // S (plain bitvector variant)

  PackedArray widths_;             // B
  EliasFano offsets_;              // O
  Storage<uint64_t> corrections_;  // C
  WaveletTree kinds_wt_;           // K
  PackedArray displacement_;       // D
  FragmentDirectory directory_;    // interleaved B/O/K/D + param offsets (v3)
  std::vector<FunctionKind> kind_table_;
  std::vector<Storage<double>> params_;  // P, one array per dense kind
};

/// Sequential-access cursor: caches the current fragment's decoded state
/// (kind, params, correction width, bit offsets) plus the fragment index.
/// next()/Read() advance fragment-to-fragment in O(1) — the next start is
/// the current end and everything else comes out of the next fragment's
/// directory record, so neither the S rank nor any B/O/K/D probe of
/// Algorithm 3 is paid. Monotone Seek() hops the chain the same way (in
/// either direction) and only falls back to a full rank for long jumps.
class Neats::Cursor {
 public:
  /// Positions the cursor at `position` (clamped to n = end-of-series).
  /// A non-zero start pays one FragmentIndexOf rank, like Access would —
  /// the hop heuristic of Seek only helps once the cursor is warm.
  explicit Cursor(const Neats& neats, uint64_t position = 0) : neats_(&neats) {
    if (neats_->m_ == 0) return;
    if (position >= neats_->n_) position = neats_->n_;
    if (position == neats_->n_ || position == 0) {
      // The first fragment starts at value 0.
      st_ = neats_->LoadFragment(0, 0);
      pos_ = position;
      return;
    }
    frag_ = neats_->FragmentIndexOf(position);
    st_ = neats_->LoadFragment(frag_);
    pos_ = position;
  }

  /// Current position in [0, n]; n means exhausted.
  uint64_t position() const { return pos_; }

  /// True once the cursor has moved past the last value.
  bool done() const { return pos_ >= neats_->n_; }

  /// The value at the current position (the cursor does not advance).
  int64_t Value() const {
    NEATS_DCHECK(!done());
    return neats_->DecodeFragValue(st_, pos_);
  }

  /// The value at the current position, then advances by one.
  int64_t Next() {
    int64_t v = Value();
    ++pos_;
    if (pos_ == st_.end && pos_ < neats_->n_) AdvanceFragment();
    return v;
  }

  /// Moves to position k (<= n). Seeks inside the current fragment (in either
  /// direction) reuse the cached decode state outright; seeks to nearby
  /// fragments hop the chain — forward or backward — in O(1) per fragment.
  /// Only a jump further than kMaxSeekHops fragments away falls back to the
  /// full FragmentIndexOf rank.
  void Seek(uint64_t k) {
    NEATS_DCHECK(k <= neats_->n_);
    if (k >= neats_->n_) {
      pos_ = neats_->n_;
      return;
    }
    if (k >= st_.start && k < st_.end) {
      pos_ = k;
      return;
    }
    if (k >= st_.end) {
      for (int hops = 0; hops < kMaxSeekHops && k >= st_.end; ++hops) {
        AdvanceFragment();
      }
      if (k < st_.end) {
        pos_ = k;
        return;
      }
    } else {
      // Backward: the previous fragment's start is one Elias-Fano access and
      // its record one read, so short backward seeks never pay the rank.
      for (int hops = 0; hops < kMaxSeekHops && k < st_.start; ++hops) {
        RetreatFragment();
      }
      if (k >= st_.start) {
        pos_ = k;  // k < st_.end holds: the chain is contiguous
        return;
      }
    }
    frag_ = neats_->FragmentIndexOf(k);
    st_ = neats_->LoadFragment(frag_);
    pos_ = k;
  }

  /// Bulk-decodes up to `len` values starting at the current position into
  /// `out` (fragment-at-a-time, vectorised inner loops) and advances past
  /// them. Returns the number produced (less than `len` only at the end).
  uint64_t Read(uint64_t len, int64_t* out) {
    uint64_t want = std::min(len, neats_->n_ - pos_);
    uint64_t produced = 0;
    while (produced < want) {
      uint64_t to = std::min(pos_ + (want - produced), st_.end);
      neats_->DecodeRun(st_, pos_, to, out + produced);
      produced += to - pos_;
      pos_ = to;
      if (pos_ == st_.end && pos_ < neats_->n_) AdvanceFragment();
    }
    return want;
  }

 private:
  static constexpr int kMaxSeekHops = 8;

  void AdvanceFragment() {
    ++frag_;
    st_ = neats_->LoadFragment(frag_, st_.end);
  }

  /// Inverse of AdvanceFragment; precondition: frag_ > 0.
  void RetreatFragment() {
    --frag_;
    st_ = neats_->LoadFragment(frag_);
  }

  const Neats* neats_;
  size_t frag_ = 0;
  uint64_t pos_ = 0;
  FragState st_;
};

inline void Neats::DecompressRange(uint64_t k, uint64_t len,
                                   int64_t* out) const {
  NEATS_DCHECK(k + len <= n_);
  if (len == 0) return;
  Cursor cursor(*this, k);
  cursor.Read(len, out);
}

inline void Neats::DecompressRanges(std::span<const IndexRange> ranges,
                                    int64_t* out) const {
  if (ranges.empty()) return;
  Cursor cursor(*this, ranges[0].from);
  uint64_t off = 0;
  for (const IndexRange& r : ranges) {
    NEATS_DCHECK(r.from + r.len <= n_);
    cursor.Seek(r.from);
    cursor.Read(r.len, out + off);
    off += r.len;
  }
}

inline int64_t Neats::RangeSum(uint64_t from, uint64_t len) const {
  NEATS_DCHECK(from + len <= n_);
  constexpr uint64_t kChunk = 1024;
  int64_t buffer[kChunk];
  Cursor cursor(*this, from);
  int64_t sum = 0;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t got = cursor.Read(std::min(remaining, kChunk), buffer);
    for (uint64_t j = 0; j < got; ++j) sum += buffer[j];
    remaining -= got;
  }
  return sum;
}

inline Neats Neats::CompressWithModelSelection(std::span<const int64_t> values,
                                               const NeatsOptions& options,
                                               double sample_fraction,
                                               size_t top_pairs) {
  if (values.size() < 1000) return Compress(values, options);
  ShiftedValues sv = ShiftView(values);

  size_t sample_n = std::max<size_t>(1000, static_cast<size_t>(
      static_cast<double>(values.size()) * sample_fraction));
  sample_n = std::min(sample_n, values.size());

  PartitionOptions popts = options.partition;
  if (popts.epsilons.empty()) popts.epsilons = DefaultEpsilons(sv.shifted);
  std::vector<Fragment> sample_frags =
      PartitionLossless(sv.shifted.subspan(0, sample_n), popts);

  // Vote: total covered length per (kind, eps) pair.
  struct PairUse {
    FunctionKind kind;
    int64_t eps;
    uint64_t covered = 0;
  };
  std::vector<PairUse> uses;
  for (const Fragment& f : sample_frags) {
    bool found = false;
    for (PairUse& u : uses) {
      if (u.kind == f.kind && u.eps == f.epsilon) {
        u.covered += f.length();
        found = true;
        break;
      }
    }
    if (!found) uses.push_back({f.kind, f.epsilon, f.length()});
  }
  std::sort(uses.begin(), uses.end(),
            [](const PairUse& a, const PairUse& b) { return a.covered > b.covered; });
  if (uses.size() > top_pairs) uses.resize(top_pairs);

  NeatsOptions pruned = options;
  pruned.partition.kinds.clear();
  pruned.partition.epsilons.clear();
  for (const PairUse& u : uses) {
    if (std::find(pruned.partition.kinds.begin(), pruned.partition.kinds.end(),
                  u.kind) == pruned.partition.kinds.end()) {
      pruned.partition.kinds.push_back(u.kind);
    }
    if (std::find(pruned.partition.epsilons.begin(),
                  pruned.partition.epsilons.end(),
                  u.eps) == pruned.partition.epsilons.end()) {
      pruned.partition.epsilons.push_back(u.eps);
    }
  }
  if (pruned.partition.kinds.empty()) return Compress(values, options);
  return CompressImpl(values, pruned, pruned.partition.epsilons);
}

}  // namespace neats
