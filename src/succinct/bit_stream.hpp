// Append-only bit stream writer and positional bit reader.
//
// The writer packs fields of arbitrary width (0..64 bits) back to back into a
// word array; the reader extracts a field given its absolute bit offset. Both
// are branch-light and used as the storage primitive for corrections (the C
// array of the NeaTS layout) and for all packed structures built on top.

#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace neats {

/// Append-only writer of variable-width bit fields.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the lowest `width` bits of `value`. `width` must be in [0, 64].
  void Append(uint64_t value, int width) {
    NEATS_REQUIRE(width >= 0 && width <= 64, "field width out of range");
    if (width == 0) return;
    value &= LowMask(width);
    size_t word = bit_size_ >> 6;
    int offset = static_cast<int>(bit_size_ & 63);
    if (word + 1 >= words_.size()) words_.resize(words_.size() * 2 + 2, 0);
    words_[word] |= value << offset;
    if (offset + width > 64) {
      words_[word + 1] = value >> (64 - offset);
    }
    bit_size_ += static_cast<size_t>(width);
  }

  /// Appends a single bit.
  void AppendBit(bool bit) { Append(bit ? 1 : 0, 1); }

  /// Number of bits written so far.
  size_t bit_size() const { return bit_size_; }

  /// Finalizes the stream and returns the backing words (trimmed).
  std::vector<uint64_t> TakeWords() {
    words_.resize(CeilDiv(bit_size_, 64));
    return std::move(words_);
  }

  /// Read-only view of the words written so far (includes trailing slack).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  size_t bit_size_ = 0;
};

/// Reads a `width`-bit field starting at absolute bit offset `pos`.
/// `width` must be in [0, 64]; the field must lie within the array.
inline uint64_t ReadBits(const uint64_t* words, size_t pos, int width) {
  if (width == 0) return 0;
  size_t word = pos >> 6;
  int offset = static_cast<int>(pos & 63);
  uint64_t value = words[word] >> offset;
  if (offset + width > 64) {
    value |= words[word + 1] << (64 - offset);
  }
  return value & LowMask(width);
}

/// Unpacks `count` consecutive `width`-bit fields starting at absolute bit
/// offset `pos` into `out` — equivalent to `count` ReadBits calls at
/// pos, pos + width, ..., but word-at-a-time: each backing word is loaded
/// once and the in-word cursor is carried across fields instead of being
/// re-derived (word index, shift, mask) per element. This is the bulk path
/// under every fragment decode loop.
inline void UnpackBitsRun(const uint64_t* words, size_t pos, int width,
                          size_t count, uint64_t* out) {
  NEATS_DCHECK(width >= 0 && width <= 64);
  if (count == 0) return;
  if (width == 0) {
    for (size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  if (width == 64) {  // every field spans exactly 64 bits; shifts below
                      // would be UB, and ReadBits is already optimal here
    for (size_t i = 0; i < count; ++i) out[i] = ReadBits(words, pos + i * 64, 64);
    return;
  }
  const uint64_t mask = LowMask(width);
  size_t word = pos >> 6;
  uint64_t cur = words[word] >> (pos & 63);  // valid low bits of the word
  int avail = 64 - static_cast<int>(pos & 63);
  for (size_t i = 0; i < count; ++i) {
    if (avail >= width) {
      out[i] = cur & mask;
      cur >>= width;
      avail -= width;
    } else {
      // Field i straddles into the next word; `cur` holds exactly `avail`
      // valid low bits (upper bits are zero from the logical shifts).
      uint64_t next = words[++word];
      out[i] = (cur | (next << avail)) & mask;
      cur = next >> (width - avail);
      avail = 64 - (width - avail);
    }
  }
}

/// Positional reader over a bit stream; convenience wrapper around ReadBits.
class BitReader {
 public:
  BitReader(const uint64_t* words, size_t bit_size)
      : words_(words), bit_size_(bit_size) {}

  /// Reads the next `width` bits and advances the cursor. The bound stays a
  /// hard check in release builds: the XOR decoders walk streams whose step
  /// widths come from the (possibly corrupt) stream itself, so an overrun
  /// must fail loudly instead of reading past the backing words.
  uint64_t Read(int width) {
    NEATS_REQUIRE(pos_ + static_cast<size_t>(width) <= bit_size_,
                  "corrupt bit stream (overrun)");
    uint64_t v = ReadBits(words_, pos_, width);
    pos_ += static_cast<size_t>(width);
    return v;
  }

  /// Reads one bit and advances.
  bool ReadBit() { return Read(1) != 0; }

  /// Moves the cursor to an absolute bit offset.
  void Seek(size_t pos) {
    NEATS_DCHECK(pos <= bit_size_);
    pos_ = pos;
  }

  size_t position() const { return pos_; }
  size_t bit_size() const { return bit_size_; }

 private:
  const uint64_t* words_;
  size_t bit_size_;
  size_t pos_ = 0;
};

}  // namespace neats
