// Elias-Fano encoding of monotone (non-decreasing) integer sequences.
//
// A sequence of m values in [0, u) takes m*ceil(log(u/m)) + 2m + o(m) bits and
// supports Access in O(1) (one sampled Select1) and Rank — the number of
// elements <= x — via one sampled Select0 plus a word-at-a-time bucket scan:
// the bucket of elements sharing the high part of x is a run of consecutive
// 1 bits in the high bitvector, so its size comes from popcount/ctz on whole
// words (RankSelect::OnesRunLength) and the in-bucket low-part search is a
// linear probe for small buckets or a binary search for pile-ups — never a
// per-bit Get loop. These are exactly the operations the NeaTS layout needs
// on the S (fragment starts) and O (correction offsets) arrays (Sec. III-C).

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Immutable Elias-Fano-coded monotone sequence.
class EliasFano {
 public:
  EliasFano() = default;

  /// Builds from a non-decreasing sequence of values.
  /// `universe` must be strictly greater than the last (largest) value;
  /// pass 0 to derive it from the data.
  explicit EliasFano(const std::vector<uint64_t>& values, uint64_t universe = 0)
      : size_(values.size()) {
    if (values.empty()) return;
    if (universe == 0) universe = values.back() + 1;
    NEATS_REQUIRE(universe > values.back(), "universe too small");
    uint64_t m = values.size();
    low_bits_ = (universe / m <= 1) ? 0 : BitWidth(universe / m) - 1;

    std::vector<uint64_t> lows;
    lows.reserve(values.size());
    uint64_t prev = 0;
    for (uint64_t v : values) {
      NEATS_REQUIRE(v >= prev, "sequence must be non-decreasing");
      prev = v;
      lows.push_back(v & LowMask(low_bits_));
    }
    low_ = PackedArray(lows, low_bits_);

    size_t high_len = m + (values.back() >> low_bits_) + 1;
    BitVector high(high_len);
    for (size_t i = 0; i < values.size(); ++i) {
      high.Set((values[i] >> low_bits_) + i);
    }
    high_ = RankSelect(std::move(high));
  }

  /// Value at index `i`, in O(1).
  uint64_t Access(size_t i) const {
    NEATS_DCHECK(i < size_);
    uint64_t hi = high_.Select1(i) - i;
    return (hi << low_bits_) | low_[i];
  }

  /// Number of elements <= x (the S.rank(k) operation of the paper).
  size_t Rank(uint64_t x) const {
    if (size_ == 0) return 0;
    return Scan(x).rank;
  }

  size_t size() const { return size_; }

  /// Fused Rank + Access of the predecessor: returns {i, Access(i)} for the
  /// largest element <= x, reusing the bucket scan's knowledge of the high
  /// part so the common case pays no extra select. This is the
  /// fragment-lookup primitive of Algorithm 3 (index AND start in one pass).
  /// Precondition: at least one element <= x (Rank(x) >= 1).
  std::pair<size_t, uint64_t> Predecessor(uint64_t x) const {
    NEATS_DCHECK(size_ > 0);
    ScanResult s = Scan(x);
    NEATS_DCHECK(s.rank > 0);
    if (s.rank > s.start) {
      // The predecessor sits inside bucket hb: its value is known without
      // touching the high bitvector again.
      return {s.rank - 1, (s.hb << low_bits_) | low_[s.rank - 1]};
    }
    // Predecessor lives in an earlier bucket; one select recovers it.
    return {s.rank - 1, Access(s.rank - 1)};
  }

  /// Stateful batched predecessor — the entry point behind Neats::AccessBatch.
  ///
  /// Feed non-decreasing queries to Next(); each returns {i, Access(i)} for
  /// the largest element <= x, like Predecessor(x). The first query (and any
  /// query that jumps far ahead) pays one full bucket scan — nothing more, so
  /// a batch of far-apart probes costs the same as scalar Predecessor calls —
  /// while nearby queries advance a forward cursor over the high bitvector
  /// instead: one Select1 to park the cursor after a reseed (lazy, only once
  /// a walk actually happens), then a word-wise NextOne per skipped element.
  /// A dense sorted batch therefore resolves in O(elements walked) total
  /// rather than O(scan) per probe.
  class PredecessorScanner {
   public:
    explicit PredecessorScanner(const EliasFano& ef) : ef_(&ef) {}

    /// Predecessor {index, value} of `x`. Queries must be non-decreasing
    /// across calls; precondition as Predecessor (some element <= x).
    std::pair<size_t, uint64_t> Next(uint64_t x) {
      NEATS_DCHECK(ef_->size_ > 0);
      if (idx_ == kUnseeded) {
        Reseed(x);
        return cur_;
      }
      if (idx_ >= ef_->size_) {  // already at the last element
        NEATS_DCHECK(cur_.second <= x);
        return cur_;
      }
      // Reseed when x skips more than kResyncBuckets high-bit buckets past
      // the current predecessor — beyond that, walking the gap element-by-
      // element could cost more than the O(1) sampled-select scan.
      if ((x >> ef_->low_bits_) >
          (cur_.second >> ef_->low_bits_) + kResyncBuckets) {
        Reseed(x);
        return cur_;
      }
      if (!pos_valid_) {  // first walk since the last reseed: park the cursor
        pos_ = ef_->high_.Select1(idx_);
        pos_valid_ = true;
      }
      while (idx_ < ef_->size_) {
        uint64_t succ = ((pos_ - idx_) << ef_->low_bits_) | ef_->low_[idx_];
        if (succ > x) break;
        cur_ = {idx_, succ};
        ++idx_;
        if (idx_ < ef_->size_) pos_ = ef_->high_.NextOne(pos_ + 1);
      }
      NEATS_DCHECK(cur_.second <= x);
      return cur_;
    }

   private:
    static constexpr uint64_t kResyncBuckets = 64;
    static constexpr size_t kUnseeded = SIZE_MAX;

    void Reseed(uint64_t x) {
      ScanResult s = ef_->Scan(x);
      NEATS_DCHECK(s.rank > 0);
      cur_.first = s.rank - 1;
      cur_.second = s.rank > s.start ? (s.hb << ef_->low_bits_) |
                                           ef_->low_[s.rank - 1]
                                     : ef_->Access(s.rank - 1);
      idx_ = s.rank;
      pos_valid_ = false;
    }

    const EliasFano* ef_;
    size_t idx_ = kUnseeded;  // index of the successor candidate
    size_t pos_ = 0;          // position of idx_'s high bit (if pos_valid_)
    bool pos_valid_ = false;
    std::pair<size_t, uint64_t> cur_{0, 0};
  };

  /// Payload size in bits.
  size_t SizeInBits() const {
    return low_.SizeInBits() + high_.SizeInBits() + 2 * 64;
  }

  void Serialize(WordWriter& w) const {
    w.Put(size_);
    w.Put(static_cast<uint64_t>(low_bits_));
    low_.Serialize(w);
    high_.Serialize(w);
  }

  static EliasFano Load(WordReader& r) {
    EliasFano ef;
    ef.size_ = r.Get();
    ef.low_bits_ = static_cast<int>(r.Get());
    // The builder caps low_bits_ at 63 (BitWidth(u/m) - 1); 64 would make
    // every query shift by the full word width — UB.
    NEATS_REQUIRE(ef.low_bits_ >= 0 && ef.low_bits_ <= 63,
                  "corrupt NeaTS blob");
    ef.low_ = PackedArray::Load(r);
    ef.high_ = RankSelect::Load(r);
    NEATS_REQUIRE(ef.low_.size() == ef.size_ && ef.high_.ones() == ef.size_,
                  "corrupt NeaTS blob");
    return ef;
  }

 private:
  struct ScanResult {
    size_t rank;   // number of elements <= x
    size_t start;  // index of the first element with high part >= x's
    uint64_t hb;   // x's high part; rank > start iff the predecessor is in
                   // bucket hb (so its value is (hb << low_bits) | low)
  };

  /// The bucket scan shared by Rank and Predecessor. Precondition: size_ > 0.
  ScanResult Scan(uint64_t x) const {
    uint64_t hb = x >> low_bits_;
    // Index of the first element whose high part is >= hb.
    size_t high_zeros = high_.size() - high_.ones();
    size_t start;
    if (hb == 0) {
      start = 0;
    } else if (hb > high_zeros) {
      return {size_, size_, hb};  // all high parts are < hb
    } else {
      start = high_.Select0(hb - 1) - (hb - 1);
    }
    if (start >= size_) return {size_, start, hb};
    // The elements with high part == hb are a run of consecutive 1 bits
    // beginning right after the (hb-1)-th zero; measure it word-wise.
    size_t pos = start + static_cast<size_t>(hb);
    if (!high_.Get(pos)) return {start, start, hb};  // empty bucket
    size_t len = high_.OnesRunLength(pos);
    return {start + CountLowsAtMost(x, start, len), start, hb};
  }

  /// Number of elements in the bucket [start, start+len) — all sharing x's
  /// high part — whose low part is <= x's low part. The lows inside a bucket
  /// are non-decreasing: probe linearly when the bucket is small,
  /// binary-search single-bucket pile-ups.
  size_t CountLowsAtMost(uint64_t x, size_t start, size_t len) const {
    if (low_bits_ == 0) return len;  // every element equals x's high part
    uint64_t xl = x & LowMask(low_bits_);
    size_t lo = start, hi = start + len;
    if (len <= 16) {
      while (lo < hi && low_[lo] <= xl) ++lo;
      return lo - start;
    }
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (low_[mid] <= xl) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo - start;
  }

  size_t size_ = 0;
  int low_bits_ = 0;
  PackedArray low_;
  RankSelect high_;
};

}  // namespace neats
