// Elias-Fano encoding of monotone (non-decreasing) integer sequences.
//
// A sequence of m values in [0, u) takes m*ceil(log(u/m)) + 2m + o(m) bits and
// supports Access in O(1) (one Select1) and Rank — the number of elements
// <= x — in O(log) plus an O(1)-amortised in-bucket scan. These are exactly
// the operations the NeaTS layout needs on the S (fragment starts) and O
// (cumulative correction offsets) arrays (paper, Sec. III-C).

#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/packed_array.hpp"

namespace neats {

/// Immutable Elias-Fano-coded monotone sequence.
class EliasFano {
 public:
  EliasFano() = default;

  /// Builds from a non-decreasing sequence of values.
  /// `universe` must be strictly greater than the last (largest) value;
  /// pass 0 to derive it from the data.
  explicit EliasFano(const std::vector<uint64_t>& values, uint64_t universe = 0)
      : size_(values.size()) {
    if (values.empty()) return;
    if (universe == 0) universe = values.back() + 1;
    NEATS_REQUIRE(universe > values.back(), "universe too small");
    uint64_t m = values.size();
    low_bits_ = (universe / m <= 1) ? 0 : BitWidth(universe / m) - 1;

    std::vector<uint64_t> lows;
    lows.reserve(values.size());
    uint64_t prev = 0;
    for (uint64_t v : values) {
      NEATS_REQUIRE(v >= prev, "sequence must be non-decreasing");
      prev = v;
      lows.push_back(v & LowMask(low_bits_));
    }
    low_ = PackedArray(lows, low_bits_);

    size_t high_len = m + (values.back() >> low_bits_) + 1;
    BitVector high(high_len);
    for (size_t i = 0; i < values.size(); ++i) {
      high.Set((values[i] >> low_bits_) + i);
    }
    high_ = RankSelect(std::move(high));
  }

  /// Value at index `i`, in O(1).
  uint64_t Access(size_t i) const {
    NEATS_DCHECK(i < size_);
    uint64_t hi = high_.Select1(i) - i;
    return (hi << low_bits_) | low_[i];
  }

  /// Number of elements <= x (the S.rank(k) operation of the paper).
  size_t Rank(uint64_t x) const {
    if (size_ == 0) return 0;
    uint64_t hb = x >> low_bits_;
    // Index of the first element whose high part is >= hb.
    size_t start;
    size_t high_zeros = high_.size() - high_.ones();
    if (hb == 0) {
      start = 0;
    } else if (hb > high_zeros) {
      return size_;  // all high parts are < hb
    } else {
      start = high_.Select0(hb - 1) - (hb - 1);
    }
    // Scan the bucket of elements with high part == hb.
    uint64_t xl = x & LowMask(low_bits_);
    size_t i = start;
    size_t pos = (start < size_) ? high_.Select1(start) : 0;
    while (i < size_ && high_.Get(pos) && (pos - i) == hb) {
      if (low_bits_ > 0 && low_[i] > xl) break;
      ++i;
      ++pos;
    }
    return i;
  }

  size_t size() const { return size_; }

  /// Payload size in bits.
  size_t SizeInBits() const {
    return low_.SizeInBits() + high_.SizeInBits() + 2 * 64;
  }

 private:
  size_t size_ = 0;
  int low_bits_ = 0;
  PackedArray low_;
  RankSelect high_;
};

}  // namespace neats
