// Plain bitvector plus a rank/select index.
//
// The rank index follows the rank9 layout idea: absolute counts every 512-bit
// superblock plus per-word relative counts, giving O(1) Rank1. Select1/Select0
// binary-search the superblock counts and finish with a broadword in-word
// select, giving O(log n) worst case, which is plenty for the places NeaTS
// uses them (Elias-Fano buckets and the optional O(1)-access S bitvector).

#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace neats {

/// Mutable bitvector; freeze it by building a RankSelect index over it.
class BitVector {
 public:
  BitVector() = default;

  /// Creates an all-zero bitvector of `n` bits.
  explicit BitVector(size_t n) : size_(n), words_(CeilDiv(n, 64), 0) {}

  /// Sets bit `i` to 1.
  void Set(size_t i) {
    NEATS_DCHECK(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  /// Returns bit `i`.
  bool Get(size_t i) const {
    NEATS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Appends a bit at the end.
  void PushBack(bool bit) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (bit) words_.back() |= 1ULL << (size_ & 63);
    ++size_;
  }

  size_t size() const { return size_; }
  const std::vector<uint64_t>& words() const { return words_; }

  /// Payload size in bits.
  size_t SizeInBits() const { return words_.size() * 64 + 64; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Immutable rank/select index over a BitVector (which it stores by value).
class RankSelect {
 public:
  RankSelect() = default;

  explicit RankSelect(BitVector bits) : bits_(std::move(bits)) {
    const auto& words = bits_.words();
    size_t n_words = words.size();
    size_t n_super = CeilDiv(n_words, kWordsPerSuper) + 1;
    super_.assign(n_super, 0);
    rel_.assign(n_words + 1, 0);
    uint64_t total = 0;
    for (size_t w = 0; w < n_words; ++w) {
      if (w % kWordsPerSuper == 0) super_[w / kWordsPerSuper] = total;
      rel_[w] = static_cast<uint16_t>(total - super_[w / kWordsPerSuper]);
      total += static_cast<uint64_t>(Popcount(words[w]));
    }
    for (size_t s = CeilDiv(n_words, kWordsPerSuper); s < n_super; ++s) {
      super_[s] = total;
    }
    rel_[n_words] = static_cast<uint16_t>(
        total - super_[n_words / kWordsPerSuper]);
    ones_ = total;
  }

  /// Number of 1 bits in positions [0, i). `i` may equal size().
  uint64_t Rank1(size_t i) const {
    NEATS_DCHECK(i <= bits_.size());
    size_t w = i >> 6;
    uint64_t r = super_[w / kWordsPerSuper] + rel_[w];
    if (i & 63) r += Popcount(bits_.words()[w] & LowMask(static_cast<int>(i & 63)));
    return r;
  }

  /// Number of 0 bits in positions [0, i).
  uint64_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the k-th (0-based) 1 bit. Precondition: k < ones().
  size_t Select1(uint64_t k) const {
    NEATS_DCHECK(k < ones_);
    // Binary search the last superblock with count <= k.
    size_t lo = 0, hi = super_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (super_[mid] <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    uint64_t rem = k - super_[lo];
    size_t w = lo * kWordsPerSuper;
    const auto& words = bits_.words();
    // Scan at most kWordsPerSuper words.
    while (true) {
      int pc = Popcount(words[w]);
      if (rem < static_cast<uint64_t>(pc)) break;
      rem -= static_cast<uint64_t>(pc);
      ++w;
    }
    return (w << 6) + static_cast<size_t>(SelectInWord(words[w], static_cast<int>(rem)));
  }

  /// Position of the k-th (0-based) 0 bit. Precondition: k < size() - ones().
  size_t Select0(uint64_t k) const {
    NEATS_DCHECK(k < bits_.size() - ones_);
    size_t lo = 0, hi = super_.size() - 1;
    // Zeros before superblock s start: s*512 - super_[s].
    auto zeros_before = [&](size_t s) { return s * kSuperBits - super_[s]; };
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (zeros_before(mid) <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    uint64_t rem = k - zeros_before(lo);
    size_t w = lo * kWordsPerSuper;
    const auto& words = bits_.words();
    while (true) {
      int zc = 64 - Popcount(words[w]);
      if (rem < static_cast<uint64_t>(zc)) break;
      rem -= static_cast<uint64_t>(zc);
      ++w;
    }
    return (w << 6) + static_cast<size_t>(SelectInWord(~words[w], static_cast<int>(rem)));
  }

  bool Get(size_t i) const { return bits_.Get(i); }
  size_t size() const { return bits_.size(); }
  uint64_t ones() const { return ones_; }

  /// Payload size in bits: bits + rank directories.
  size_t SizeInBits() const {
    return bits_.SizeInBits() + super_.size() * 64 + rel_.size() * 16 + 64;
  }

 private:
  static constexpr size_t kWordsPerSuper = 8;   // 512-bit superblocks
  static constexpr size_t kSuperBits = 512;

  BitVector bits_;
  std::vector<uint64_t> super_;  // absolute rank at each superblock start
  std::vector<uint16_t> rel_;    // per-word rank relative to superblock
  uint64_t ones_ = 0;
};

}  // namespace neats
