// Plain bitvector plus a rank/select index.
//
// BitVector is the mutable builder and always owns its words. RankSelect is
// the frozen form: its payload and directories live in Storage<T> cells that
// are either owned (built in memory / copied by Deserialize) or borrowed from
// a serialized blob (zero-copy View; see storage.hpp and docs/FORMAT.md).
//
// The rank index follows the rank9 layout idea: absolute counts every 512-bit
// superblock plus per-word relative counts, giving O(1) Rank1. Select1 and
// Select0 use sampled select directories — the bit position of every 512th
// 1 (resp. 0) — to jump straight to a narrow superblock window, so a select
// is a couple of directory probes plus an in-superblock word scan instead of
// the former binary search over all superblocks.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Mutable bitvector; freeze it by building a RankSelect index over it.
class BitVector {
 public:
  BitVector() = default;

  /// Creates an all-zero bitvector of `n` bits.
  explicit BitVector(size_t n) : size_(n), words_(CeilDiv(n, 64), 0) {}

  /// Sets bit `i` to 1.
  void Set(size_t i) {
    NEATS_DCHECK(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  /// Returns bit `i`.
  bool Get(size_t i) const {
    NEATS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Appends a bit at the end.
  void PushBack(bool bit) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (bit) words_.back() |= 1ULL << (size_ & 63);
    ++size_;
  }

  size_t size() const { return size_; }
  const std::vector<uint64_t>& words() const { return words_; }

  /// Releases the backing words (the vector has exactly ceil(n/64) entries).
  std::vector<uint64_t> TakeWords() { return std::move(words_); }

  /// Payload size in bits.
  size_t SizeInBits() const { return words_.size() * 64 + 64; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Immutable rank/select index over a frozen bitvector.
class RankSelect {
 public:
  RankSelect() = default;

  explicit RankSelect(BitVector bits) : nbits_(bits.size()) {
    std::vector<uint64_t> words = bits.TakeWords();
    Directories dirs = BuildDirectories(words.data(), words.size());
    ones_ = dirs.ones;
    words_ = Storage<uint64_t>(std::move(words));
    super_ = Storage<uint64_t>(std::move(dirs.super));
    rel_ = Storage<uint16_t>(std::move(dirs.rel));
    sel1_ = Storage<uint64_t>(std::move(dirs.sel1));
    sel0_ = Storage<uint64_t>(std::move(dirs.sel0));
  }

  /// Number of 1 bits in positions [0, i). `i` may equal size().
  uint64_t Rank1(size_t i) const {
    NEATS_DCHECK(i <= nbits_);
    size_t w = i >> 6;
    NEATS_TOUCH(super_.data() + w / kWordsPerSuper);
    NEATS_TOUCH(rel_.data() + w);
    uint64_t r = super_[w / kWordsPerSuper] + rel_[w];
    if (i & 63) {
      NEATS_TOUCH(words_.data() + w);
      r += Popcount(words_[w] & LowMask(static_cast<int>(i & 63)));
    }
    return r;
  }

  /// Number of 0 bits in positions [0, i).
  uint64_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the k-th (0-based) 1 bit. Precondition: k < ones().
  size_t Select1(uint64_t k) const {
    NEATS_DCHECK(k < ones_);
    size_t s = FindSuperblock(k, sel1_, [this](size_t sb) {
      NEATS_TOUCH(super_.data() + sb);
      return super_[sb];
    });
    // Start the word scan at the later of the superblock start and the
    // sampled bit's own word — both have rank <= k, and rel_ recovers the
    // rank at any word boundary, so the scan skips up to 7 words.
    size_t w = s * kWordsPerSuper;
    size_t ws = static_cast<size_t>(sel1_[k / kSelectSample] >> 6);
    if (ws > w) w = ws;
    NEATS_TOUCH(super_.data() + w / kWordsPerSuper);
    NEATS_TOUCH(rel_.data() + w);
    uint64_t rem = k - super_[w / kWordsPerSuper] - rel_[w];
    while (true) {
      NEATS_TOUCH(words_.data() + w);
      int pc = Popcount(words_[w]);
      if (rem < static_cast<uint64_t>(pc)) break;
      rem -= static_cast<uint64_t>(pc);
      ++w;
    }
    return (w << 6) + static_cast<size_t>(SelectInWord(words_[w], static_cast<int>(rem)));
  }

  /// Position of the k-th (0-based) 0 bit. Precondition: k < size() - ones().
  size_t Select0(uint64_t k) const {
    NEATS_DCHECK(k < nbits_ - ones_);
    // Zeros before superblock s start: s*512 - super_[s].
    size_t s = FindSuperblock(k, sel0_, [this](size_t sb) {
      NEATS_TOUCH(super_.data() + sb);
      return sb * kSuperBits - super_[sb];
    });
    size_t w = s * kWordsPerSuper;
    size_t ws = static_cast<size_t>(sel0_[k / kSelectSample] >> 6);
    if (ws > w) w = ws;
    NEATS_TOUCH(super_.data() + w / kWordsPerSuper);
    NEATS_TOUCH(rel_.data() + w);
    uint64_t rem = k - (w * 64 - super_[w / kWordsPerSuper] - rel_[w]);
    while (true) {
      NEATS_TOUCH(words_.data() + w);
      int zc = 64 - Popcount(words_[w]);
      if (rem < static_cast<uint64_t>(zc)) break;
      rem -= static_cast<uint64_t>(zc);
      ++w;
    }
    return (w << 6) + static_cast<size_t>(SelectInWord(~words_[w], static_cast<int>(rem)));
  }

  /// Length of the run of consecutive 1 bits starting at position `pos`
  /// (which must be a set bit), scanning word-at-a-time. This is the
  /// bucket-size primitive behind the word-wise Elias-Fano rank.
  size_t OnesRunLength(size_t pos) const {
    NEATS_DCHECK(pos < nbits_ && Get(pos));
    size_t w = pos >> 6;
    NEATS_TOUCH(words_.data() + w);
    // Zeros (and any padding past size()) terminate the run, so the scan
    // never walks beyond the logical bitvector. Invert before shifting: the
    // zeros the shift feeds in at the top then mean "run continues past this
    // word", not a spurious terminator.
    uint64_t inv = (~words_[w]) >> (pos & 63);
    if (inv != 0) return static_cast<size_t>(CountTrailingZeros(inv));
    size_t run = 64 - (pos & 63);
    while (++w < words_.size()) {
      NEATS_TOUCH(words_.data() + w);
      inv = ~words_[w];
      if (inv != 0) return run + static_cast<size_t>(CountTrailingZeros(inv));
      run += 64;
    }
    return run;
  }

  /// Position of the first 1 bit at or after `pos`, scanning word-at-a-time.
  /// Precondition: such a bit exists (pos <= position of the last 1). This is
  /// the forward-iteration primitive behind EliasFano::PredecessorScanner —
  /// stepping to the next element's high bit without paying a Select1.
  size_t NextOne(size_t pos) const {
    NEATS_DCHECK(pos < nbits_);
    size_t w = pos >> 6;
    NEATS_TOUCH(words_.data() + w);
    uint64_t cur = words_[w] >> (pos & 63);
    if (cur != 0) return pos + static_cast<size_t>(CountTrailingZeros(cur));
    while (true) {
      ++w;
      NEATS_DCHECK(w < words_.size());
      NEATS_TOUCH(words_.data() + w);
      if (words_[w] != 0) {
        return (w << 6) + static_cast<size_t>(CountTrailingZeros(words_[w]));
      }
    }
  }

  bool Get(size_t i) const {
    NEATS_DCHECK(i < nbits_);
    NEATS_TOUCH(words_.data() + (i >> 6));
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  size_t size() const { return nbits_; }
  uint64_t ones() const { return ones_; }

  /// True when the payload is borrowed from an external buffer.
  bool borrowed() const { return words_.borrowed(); }

  /// Size in bits, exactly as serialized: nbits + ones + five counted
  /// arrays (payload words, rank superblocks, word-padded relative ranks,
  /// and both select directories).
  size_t SizeInBits() const {
    return 7 * 64 + words_.size() * 64 + super_.size() * 64 +
           CeilDiv(rel_.size() * 16, 64) * 64 +
           (sel1_.size() + sel0_.size()) * 64;
  }

  /// Format v2: all directories are serialized; Load verifies them against
  /// the payload (one popcount pass) instead of rebuilding owned copies, so
  /// a borrow-mode open keeps the payload and directories zero-copy.
  void Serialize(WordWriter& w) const {
    w.Put(nbits_);
    w.Put(ones_);
    w.PutArray(words_);
    w.PutArray(super_);
    w.PutArray(rel_);
    w.PutArray(sel1_);
    w.PutArray(sel0_);
  }

  static RankSelect Load(WordReader& r) {
    RankSelect rs;
    rs.nbits_ = r.Get();
    rs.ones_ = r.Get();
    rs.words_ = r.GetArray<uint64_t>();
    rs.super_ = r.GetArray<uint64_t>();
    rs.rel_ = r.GetArray<uint16_t>();
    rs.sel1_ = r.GetArray<uint64_t>();
    rs.sel0_ = r.GetArray<uint64_t>();
    NEATS_REQUIRE(rs.words_.size() == CeilDiv(rs.nbits_, 64),
                  "corrupt NeaTS blob");
    // Padding bits past size() must be zero — the select/run scans rely on
    // it, and a nonzero pad would let "ones" exist beyond the bitvector.
    NEATS_REQUIRE((rs.nbits_ & 63) == 0 || rs.words_.empty() ||
                      (rs.words_[rs.words_.size() - 1] >>
                       (rs.nbits_ & 63)) == 0,
                  "corrupt NeaTS blob");
    // Queries index the directories without bounds checks, so inconsistent
    // (not just mis-sized) directory contents would become wild reads.
    // Rebuild them from the payload — one popcount pass, transient — and
    // demand an exact match; the words themselves stay zero-copy.
    Directories dirs = BuildDirectories(rs.words_.data(), rs.words_.size());
    NEATS_REQUIRE(
        rs.ones_ == dirs.ones &&
            std::equal(dirs.super.begin(), dirs.super.end(),
                       rs.super_.data(), rs.super_.data() + rs.super_.size()),
        "corrupt NeaTS blob");
    NEATS_REQUIRE(
        std::equal(dirs.rel.begin(), dirs.rel.end(), rs.rel_.data(),
                   rs.rel_.data() + rs.rel_.size()) &&
            std::equal(dirs.sel1.begin(), dirs.sel1.end(), rs.sel1_.data(),
                       rs.sel1_.data() + rs.sel1_.size()) &&
            std::equal(dirs.sel0.begin(), dirs.sel0.end(), rs.sel0_.data(),
                       rs.sel0_.data() + rs.sel0_.size()),
        "corrupt NeaTS blob");
    return rs;
  }

 private:
  static constexpr size_t kWordsPerSuper = 8;   // 512-bit superblocks
  static constexpr size_t kSuperBits = 512;
  static constexpr uint64_t kSelectSample = 512;  // sampled every 512th bit

  struct Directories {
    std::vector<uint64_t> super;
    std::vector<uint16_t> rel;
    std::vector<uint64_t> sel1, sel0;
    uint64_t ones = 0;
  };

  /// Derives all rank/select directories from the payload in one popcount
  /// pass. The constructor adopts the result; Load rebuilds it to verify a
  /// blob's stored directories, so query-time scans can trust them blindly.
  static Directories BuildDirectories(const uint64_t* words, size_t n_words) {
    Directories d;
    const size_t n_super = CeilDiv(n_words, kWordsPerSuper) + 1;
    d.super.assign(n_super, 0);
    d.rel.assign(n_words + 1, 0);
    uint64_t total = 0;   // ones so far
    uint64_t next1 = 0;   // next sampled 1-rank
    uint64_t next0 = 0;   // next sampled 0-rank
    for (size_t w = 0; w < n_words; ++w) {
      if (w % kWordsPerSuper == 0) d.super[w / kWordsPerSuper] = total;
      d.rel[w] = static_cast<uint16_t>(total - d.super[w / kWordsPerSuper]);
      const uint64_t word = words[w];
      const uint64_t pc = static_cast<uint64_t>(Popcount(word));
      while (next1 < total + pc) {
        d.sel1.push_back((w << 6) +
                         static_cast<uint64_t>(SelectInWord(word, static_cast<int>(next1 - total))));
        next1 += kSelectSample;
      }
      const uint64_t zeros = w * 64 - total;
      while (next0 < zeros + (64 - pc)) {
        d.sel0.push_back((w << 6) +
                         static_cast<uint64_t>(SelectInWord(~word, static_cast<int>(next0 - zeros))));
        next0 += kSelectSample;
      }
      total += pc;
    }
    for (size_t s = CeilDiv(n_words, kWordsPerSuper); s < n_super; ++s) {
      d.super[s] = total;
    }
    d.rel[n_words] = static_cast<uint16_t>(total - d.super[n_words / kWordsPerSuper]);
    d.ones = total;
    return d;
  }

  /// Locates the superblock containing the k-th target bit using the sampled
  /// directory `samples` (position of every kSelectSample-th target bit) and
  /// the monotone per-superblock count `count_before`. The two samples
  /// bracketing k narrow the search to a window that is a couple of
  /// superblocks wide in practice; a bounded binary search covers the
  /// pathological sparse case.
  template <typename CountBefore>
  size_t FindSuperblock(uint64_t k, const Storage<uint64_t>& samples,
                        CountBefore count_before) const {
    const size_t n_sb = CeilDiv(words_.size(), kWordsPerSuper);
    const size_t j = static_cast<size_t>(k / kSelectSample);
    NEATS_TOUCH(samples.data() + j);
    size_t lo = static_cast<size_t>(samples[j] / kSuperBits);
    size_t hi = n_sb - 1;
    if (j + 1 < samples.size()) {
      NEATS_TOUCH(samples.data() + j + 1);
      hi = std::min(hi, static_cast<size_t>(samples[j + 1] / kSuperBits));
    }
    if (hi - lo > 8) {
      while (lo < hi) {
        size_t mid = (lo + hi + 1) / 2;
        if (count_before(mid) <= k) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
    } else {
      while (lo < hi && count_before(lo + 1) <= k) ++lo;
    }
    return lo;
  }

  size_t nbits_ = 0;
  uint64_t ones_ = 0;
  Storage<uint64_t> words_;  // the frozen bitvector payload
  Storage<uint64_t> super_;  // absolute rank at each superblock start
  Storage<uint16_t> rel_;    // per-word rank relative to superblock
  Storage<uint64_t> sel1_;   // position of every kSelectSample-th 1 bit
  Storage<uint64_t> sel0_;   // position of every kSelectSample-th 0 bit
};

}  // namespace neats
