// Interleaved per-fragment directory: the hot metadata of each fragment in
// one contiguous record.
//
// Algorithm 3 (random access) needs five facts about the fragment covering a
// query position: its function kind, where its parameters live, its
// displacement (start - origin), its correction bit width, and where its
// corrections start in the C stream. Stored separately — K (wavelet tree),
// B (packed widths), D (packed displacements), O (Elias-Fano offsets) — those
// lookups scatter over ~10 cache lines per query. This directory interleaves
// all five into one bit-packed record per fragment, so after the single
// Elias-Fano predecessor scan on S the rest of the metadata resolves inside
// one (rarely two, when a record straddles a line boundary) cache line.
//
// Records are packed with per-structure minimal field widths, exactly like
// PackedArray cells: each of the five fields takes BitWidth(max value over
// all fragments) bits, so a typical record is 40-60 bits and the whole
// directory costs well under one bit per value — the interleaving buys
// locality without giving back the compression ratio. The serialized payload
// is padded to start on a 64-byte boundary relative to the blob start, so an
// mmap'd blob (page-aligned) reads records at predictable line offsets.
//
// The directory is redundant: every field is derivable from S/B/O/K/D, and
// the loaders exploit that — a v3 blob's stored directory is verified
// against one rebuilt from the other sections (like RankSelect verifies its
// stored rank/select directories), and v1/v2 blobs get a directory rebuilt
// on load. Queries then trust the records without bounds checks.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Immutable array of interleaved per-fragment metadata records.
class FragmentDirectory {
 public:
  /// One fragment's hot metadata, in build/query currency. The packed wire
  /// form stores each field with the directory-wide minimal width.
  struct Record {
    uint64_t corr_offset = 0;     // absolute bit offset of first correction
    uint64_t displacement = 0;    // start - origin (the D cell)
    uint64_t param_index = 0;     // offset into the kind's parameter array
    uint8_t kind = 0;             // dense kind id (index into the kind table)
    uint8_t correction_bits = 0;  // width of one correction (the B cell)

    bool operator==(const Record&) const = default;
  };

  /// Serialized record words start at a multiple of this many bytes from
  /// the blob start (the section is padded with zero words).
  static constexpr size_t kPayloadAlignment = 64;

  FragmentDirectory() = default;

  /// Freezes `records` (one per fragment, in fragment order), choosing the
  /// minimal width for each of the five fields.
  explicit FragmentDirectory(const std::vector<Record>& records)
      : size_(records.size()) {
    Record max;
    for (const Record& r : records) {
      max.corr_offset = std::max(max.corr_offset, r.corr_offset);
      max.displacement = std::max(max.displacement, r.displacement);
      max.param_index = std::max(max.param_index, r.param_index);
      max.kind = std::max(max.kind, r.kind);
      max.correction_bits = std::max(max.correction_bits, r.correction_bits);
    }
    widths_[kCorr] = BitWidth(max.corr_offset);
    widths_[kDisp] = BitWidth(max.displacement);
    widths_[kParam] = BitWidth(max.param_index);
    widths_[kKind] = BitWidth(max.kind);
    widths_[kBits] = BitWidth(max.correction_bits);
    FinishWidths();
    BitWriter writer;
    for (const Record& r : records) {
      writer.Append(r.corr_offset, widths_[kCorr]);
      writer.Append(r.displacement, widths_[kDisp]);
      writer.Append(r.param_index, widths_[kParam]);
      writer.Append(r.kind, widths_[kKind]);
      writer.Append(r.correction_bits, widths_[kBits]);
    }
    words_ = Storage<uint64_t>(writer.TakeWords());
  }

  /// Record of fragment `i` — the one metadata read of a directory query.
  /// All five fields unpack from `record_width_` consecutive bits.
  Record operator[](size_t i) const {
    NEATS_DCHECK(i < size_);
    const size_t base = i * record_width_;
    const uint64_t* w = words_.data();
    if (record_width_ > 0) {
      NEATS_TOUCH(w + (base >> 6));
      NEATS_TOUCH(w + ((base + record_width_ - 1) >> 6));
    }
    Record r;
    r.corr_offset = ReadBits(w, base + offsets_[kCorr], widths_[kCorr]);
    r.displacement = ReadBits(w, base + offsets_[kDisp], widths_[kDisp]);
    r.param_index = ReadBits(w, base + offsets_[kParam], widths_[kParam]);
    r.kind = static_cast<uint8_t>(
        ReadBits(w, base + offsets_[kKind], widths_[kKind]));
    r.correction_bits = static_cast<uint8_t>(
        ReadBits(w, base + offsets_[kBits], widths_[kBits]));
    return r;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bits of one packed record (the sum of the five field widths).
  int record_width() const { return record_width_; }

  /// True when the packed words are borrowed from an external buffer.
  bool borrowed() const { return words_.borrowed(); }

  /// Section grammar: count word, five field-width words, zero words up to
  /// the next 64-byte blob offset, then the packed record words.
  void Serialize(WordWriter& w) const {
    w.Put(size_);
    for (int f = 0; f < kNumFields; ++f) {
      w.Put(static_cast<uint64_t>(widths_[f]));
    }
    w.AlignTo(kPayloadAlignment);
    w.PutCells(words_.data(), words_.size());
  }

  static FragmentDirectory Load(WordReader& r) {
    FragmentDirectory d;
    d.size_ = r.Get();
    // Stricter than the 2^56 cap elsewhere so size * record_width (up to
    // 5 * 64 bits) cannot wrap uint64; petabyte-scale directories are not a
    // thing this side of the check.
    NEATS_REQUIRE(d.size_ <= (uint64_t{1} << 53), "corrupt NeaTS blob");
    for (int f = 0; f < kNumFields; ++f) {
      uint64_t width = r.Get();
      NEATS_REQUIRE(width <= 64, "corrupt NeaTS blob");
      d.widths_[f] = static_cast<int>(width);
    }
    d.FinishWidths();
    r.AlignTo(kPayloadAlignment);
    d.words_ = r.GetCells<uint64_t>(
        CeilDiv(d.size_ * static_cast<size_t>(d.record_width_), 64));
    return d;
  }

  /// Serialized size in bits of a directory whose section begins
  /// `bits_before` bits into the blob (the alignment pad depends on the
  /// position, so callers sum the preceding sections first).
  size_t SizeInBitsAt(size_t bits_before) const {
    constexpr size_t kAlignBits = kPayloadAlignment * 8;
    size_t pos = bits_before + (1 + kNumFields) * 64;
    size_t pad = (kAlignBits - pos % kAlignBits) % kAlignBits;
    return (1 + kNumFields) * 64 + pad + words_.size() * 64;
  }

  /// True iff this directory is exactly the one a fresh build from
  /// `expected` would produce — same canonical (minimal) field widths, same
  /// packed words. This is the loader's verification pass: equality here
  /// guarantees both correct records and canonical re-serialization.
  bool Matches(const std::vector<Record>& expected) const {
    FragmentDirectory canon(expected);
    return size_ == canon.size_ &&
           std::memcmp(widths_, canon.widths_, sizeof(widths_)) == 0 &&
           words_.size() == canon.words_.size() &&
           (words_.empty() ||
            std::memcmp(words_.data(), canon.words_.data(),
                        words_.size() * sizeof(uint64_t)) == 0);
  }

 private:
  enum Field { kCorr = 0, kDisp, kParam, kKind, kBits, kNumFields };

  /// Derives the in-record field offsets and the total record width.
  void FinishWidths() {
    int off = 0;
    for (int f = 0; f < kNumFields; ++f) {
      offsets_[f] = off;
      off += widths_[f];
    }
    record_width_ = off;
  }

  size_t size_ = 0;
  int widths_[kNumFields] = {0, 0, 0, 0, 0};
  int offsets_[kNumFields] = {0, 0, 0, 0, 0};
  int record_width_ = 0;
  Storage<uint64_t> words_;  // packed records, back to back
};

}  // namespace neats
