// Wavelet matrix over a small integer alphabet.
//
// NeaTS stores the per-fragment function kinds K[1..m] as a string over the
// alphabet {0, ..., |F|-1} and needs K.rank_f(i) — the number of occurrences
// of kind f among the first i fragments — to locate a fragment's parameters
// inside the per-kind parameter array P_f (paper, Sec. III-C). The wavelet
// matrix (Claude, Navarro & Ordonez) gives Access and Rank in O(log sigma)
// with one rank-enabled bitvector per bit level.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Immutable wavelet matrix supporting Access(i) and Rank(symbol, i).
class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds from a sequence of symbols drawn from [0, alphabet_size).
  /// Pass alphabet_size = 0 to derive it from the data.
  explicit WaveletTree(const std::vector<uint32_t>& symbols,
                       uint32_t alphabet_size = 0)
      : size_(symbols.size()) {
    uint32_t max_sym = 0;
    for (uint32_t s : symbols) max_sym = std::max(max_sym, s);
    if (alphabet_size == 0) alphabet_size = max_sym + 1;
    NEATS_REQUIRE(max_sym < alphabet_size, "symbol out of range");
    levels_count_ = std::max(1, CeilLog2(alphabet_size));

    std::vector<uint32_t> cur = symbols;
    std::vector<uint32_t> next(cur.size());
    std::vector<uint64_t> zeros;
    levels_.reserve(static_cast<size_t>(levels_count_));
    zeros.reserve(static_cast<size_t>(levels_count_));
    for (int level = 0; level < levels_count_; ++level) {
      int bit = levels_count_ - 1 - level;
      BitVector bv(cur.size());
      size_t zero_count = 0;
      for (size_t i = 0; i < cur.size(); ++i) {
        if ((cur[i] >> bit) & 1) {
          bv.Set(i);
        } else {
          ++zero_count;
        }
      }
      // Stable partition: zeros first, then ones.
      size_t z = 0, o = zero_count;
      for (size_t i = 0; i < cur.size(); ++i) {
        if ((cur[i] >> bit) & 1) {
          next[o++] = cur[i];
        } else {
          next[z++] = cur[i];
        }
      }
      std::swap(cur, next);
      zeros.push_back(zero_count);
      levels_.emplace_back(std::move(bv));
    }
    zeros_ = Storage<uint64_t>(std::move(zeros));
  }

  /// Symbol at position `i`.
  uint32_t Access(size_t i) const {
    NEATS_DCHECK(i < size_);
    uint32_t sym = 0;
    size_t pos = i;
    for (int level = 0; level < levels_count_; ++level) {
      const RankSelect& bv = levels_[static_cast<size_t>(level)];
      sym <<= 1;
      if (bv.Get(pos)) {
        sym |= 1;
        pos = zeros_[static_cast<size_t>(level)] + bv.Rank1(pos);
      } else {
        pos = bv.Rank0(pos);
      }
    }
    return sym;
  }

  /// Access(i) and Rank(Access(i), i) in a single traversal: the rank lower
  /// boundary rides along with the access position, so each level costs two
  /// Rank1 probes instead of the three a separate Access + Rank would pay.
  /// Returns {symbol at i, occurrences of that symbol in [0, i)}.
  std::pair<uint32_t, size_t> AccessAndRank(size_t i) const {
    NEATS_DCHECK(i < size_);
    uint32_t sym = 0;
    size_t pos = i, lo = 0;
    for (int level = 0; level < levels_count_; ++level) {
      const RankSelect& bv = levels_[static_cast<size_t>(level)];
      NEATS_TOUCH(zeros_.data() + level);
      sym <<= 1;
      if (bv.Get(pos)) {
        sym |= 1;
        lo = zeros_[static_cast<size_t>(level)] + bv.Rank1(lo);
        pos = zeros_[static_cast<size_t>(level)] + bv.Rank1(pos);
      } else {
        lo = bv.Rank0(lo);
        pos = bv.Rank0(pos);
      }
    }
    return {sym, pos - lo};
  }

  /// Number of occurrences of `symbol` in the prefix [0, i). `i` may be size().
  size_t Rank(uint32_t symbol, size_t i) const {
    NEATS_DCHECK(i <= size_);
    size_t lo = 0, hi = i;
    for (int level = 0; level < levels_count_; ++level) {
      const RankSelect& bv = levels_[static_cast<size_t>(level)];
      int bit = levels_count_ - 1 - level;
      if ((symbol >> bit) & 1) {
        lo = zeros_[static_cast<size_t>(level)] + bv.Rank1(lo);
        hi = zeros_[static_cast<size_t>(level)] + bv.Rank1(hi);
      } else {
        lo = bv.Rank0(lo);
        hi = bv.Rank0(hi);
      }
    }
    return hi - lo;
  }

  size_t size() const { return size_; }

  /// Size in bits, exactly as serialized: size + level count + the
  /// per-level zero counts and rank/select structures.
  size_t SizeInBits() const {
    size_t bits = 2 * 64 + zeros_.size() * 64;
    for (const auto& level : levels_) bits += level.SizeInBits();
    return bits;
  }

  void Serialize(WordWriter& w) const {
    w.Put(size_);
    w.Put(static_cast<uint64_t>(levels_count_));
    w.PutCells(zeros_.data(), zeros_.size());
    for (const auto& level : levels_) level.Serialize(w);
  }

  static WaveletTree Load(WordReader& r) {
    WaveletTree wt;
    wt.size_ = r.Get();
    wt.levels_count_ = static_cast<int>(r.Get());
    NEATS_REQUIRE(wt.levels_count_ >= 0 && wt.levels_count_ <= 32,
                  "corrupt NeaTS blob");
    wt.zeros_ = r.GetCells<uint64_t>(static_cast<size_t>(wt.levels_count_));
    wt.levels_.reserve(static_cast<size_t>(wt.levels_count_));
    for (int level = 0; level < wt.levels_count_; ++level) {
      wt.levels_.push_back(RankSelect::Load(r));
      const RankSelect& bv = wt.levels_.back();
      NEATS_REQUIRE(bv.size() == wt.size_ &&
                        wt.zeros_[static_cast<size_t>(level)] ==
                            bv.size() - bv.ones(),
                    "corrupt NeaTS blob");
    }
    return wt;
  }

 private:
  size_t size_ = 0;
  int levels_count_ = 0;
  std::vector<RankSelect> levels_;
  Storage<uint64_t> zeros_;
};

}  // namespace neats
