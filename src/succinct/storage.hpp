// Storage policy for the frozen succinct structures, plus the word-oriented
// writer/reader behind serialization format v2.
//
// Every immutable structure (RankSelect, PackedArray, EliasFano, WaveletTree)
// keeps its payload in a Storage<T>: either an owned std::vector<T> (built in
// memory or copied out of a blob by Deserialize) or a borrowed span into an
// external buffer (an mmap'd file opened zero-copy by Neats::View). Mutable
// builders (BitVector, BitWriter) always own their words; freezing moves the
// buffer into a Storage.
//
// Format v2 is a flat little-endian sequence of 64-bit words: scalars are one
// word each, arrays are a count word followed by the cells padded up to a
// whole number of words. Because every section starts 8-byte-aligned relative
// to the blob start, a reader in borrow mode can hand out spans pointing
// straight into the serialized bytes (see docs/FORMAT.md).

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace neats {

static_assert(std::endian::native == std::endian::little,
              "NeaTS format v2 assumes a little-endian host");

/// Owned-or-borrowed immutable array of trivially-copyable cells.
template <typename T>
class Storage {
 public:
  Storage() = default;

  /// Takes ownership of `v`.
  explicit Storage(std::vector<T> v)
      : vec_(std::move(v)), data_(vec_.data()), size_(vec_.size()) {}

  /// Borrows `s`; the caller keeps the backing memory alive.
  static Storage ViewOf(std::span<const T> s) {
    Storage st;
    st.data_ = s.data();
    st.size_ = s.size();
    st.borrowed_ = true;
    return st;
  }

  Storage(const Storage& o) { *this = o; }
  Storage& operator=(const Storage& o) {
    if (this == &o) return *this;
    vec_ = o.vec_;
    borrowed_ = o.borrowed_;
    data_ = borrowed_ ? o.data_ : vec_.data();
    size_ = o.size_;
    return *this;
  }
  // Moving a vector keeps its heap buffer, so repointing at vec_.data() is
  // exact; borrowed storage just copies the span.
  Storage(Storage&& o) noexcept { *this = std::move(o); }
  Storage& operator=(Storage&& o) noexcept {
    if (this == &o) return *this;
    vec_ = std::move(o.vec_);
    borrowed_ = o.borrowed_;
    data_ = borrowed_ ? o.data_ : vec_.data();
    size_ = o.size_;
    o.data_ = nullptr;
    o.size_ = 0;
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  std::span<const T> span() const { return {data_, size_}; }

  /// True when this storage borrows memory it does not own.
  bool borrowed() const { return borrowed_; }

 private:
  std::vector<T> vec_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

/// Appends 64-bit words (and word-padded cell arrays) to a byte buffer.
class WordWriter {
 public:
  explicit WordWriter(std::vector<uint8_t>* out) : out_(out) {}

  void Put(uint64_t v) {
    const size_t at = out_->size();
    out_->resize(at + 8);
    std::memcpy(out_->data() + at, &v, 8);
  }

  /// Appends `count` cells, zero-padding the tail to a word boundary.
  /// The caller serializes the count separately (widths differ per use).
  template <typename T>
  void PutCells(const T* cells, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return;  // empty Storage has a null data pointer
    const size_t bytes = count * sizeof(T);
    const size_t padded = CeilDiv(bytes, 8) * 8;
    const size_t at = out_->size();
    out_->resize(at + padded, 0);
    std::memcpy(out_->data() + at, cells, bytes);
  }

  /// Count word followed by the padded cells — the inverse of GetArray.
  template <typename T>
  void PutArray(const Storage<T>& s) {
    Put(s.size());
    PutCells(s.data(), s.size());
  }

  /// Appends zero words until the output size is a multiple of `alignment`
  /// bytes (a power-of-two multiple of 8). Readers skip the pad with
  /// WordReader::AlignTo; the zeros keep the format canonical.
  void AlignTo(size_t alignment) {
    while (out_->size() % alignment != 0) Put(0);
  }

  /// Bytes written into the output buffer so far (the writer appends, so
  /// this is the offset the next Put lands at — serializers use it to
  /// record section offsets, e.g. the ALP block-offset index).
  size_t position() const { return out_->size(); }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads WordWriter output. In borrow mode arrays come back as views into
/// the input buffer (which must be 8-byte aligned and outlive the result);
/// in copy mode they are materialized into owned vectors.
class WordReader {
 public:
  WordReader(std::span<const uint8_t> bytes, bool borrow)
      : bytes_(bytes), borrow_(borrow) {
    if (borrow_) {
      NEATS_REQUIRE(
          (reinterpret_cast<uintptr_t>(bytes_.data()) & 7) == 0,
          "zero-copy open requires an 8-byte-aligned buffer");
    }
  }

  uint64_t Get() {
    NEATS_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated NeaTS blob");
    uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  /// Reads `count` cells (padded to a word boundary on the wire).
  template <typename T>
  Storage<T> GetCells(size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Divide, don't multiply: an attacker-controlled count word must not be
    // able to wrap count*sizeof(T) past the truncation check below.
    NEATS_REQUIRE(count <= (bytes_.size() - pos_) / sizeof(T),
                  "truncated NeaTS blob");
    const size_t bytes = count * sizeof(T);
    const size_t padded = CeilDiv(bytes, 8) * 8;
    NEATS_REQUIRE(pos_ + padded <= bytes_.size(), "truncated NeaTS blob");
    const uint8_t* at = bytes_.data() + pos_;
    pos_ += padded;
    if (borrow_) {
      return Storage<T>::ViewOf({reinterpret_cast<const T*>(at), count});
    }
    std::vector<T> v(count);
    if (bytes > 0) std::memcpy(v.data(), at, bytes);
    return Storage<T>(std::move(v));
  }

  /// Count word followed by the cells — the inverse of PutArray.
  template <typename T>
  Storage<T> GetArray() {
    return GetCells<T>(Get());
  }

  /// Skips the zero pad WordWriter::AlignTo wrote; non-zero pad words are
  /// rejected (they would break canonical re-serialization).
  void AlignTo(size_t alignment) {
    while (pos_ % alignment != 0) {
      NEATS_REQUIRE(Get() == 0, "corrupt NeaTS blob");
    }
  }

  bool borrow() const { return borrow_; }
  size_t position() const { return pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool borrow_ = false;
};

}  // namespace neats
