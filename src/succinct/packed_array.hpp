// Fixed-width packed integer array.
//
// Stores n unsigned integers of a common bit width w (0..64) contiguously,
// using exactly ceil(n*w/64) words. Used for the B array (correction widths),
// the low parts of Elias-Fano, and any place the NeaTS layout needs an array
// whose cells are "just enough bits for the largest value" (paper, Sec III-C).
// The words live in a Storage<uint64_t>: owned when built, borrowed when the
// array is opened zero-copy out of a serialized blob.

#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/touch_probe.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Immutable fixed-width array of unsigned integers.
class PackedArray {
 public:
  PackedArray() = default;

  /// Builds from `values`, choosing the minimal width that fits max(values).
  static PackedArray FromValues(const std::vector<uint64_t>& values) {
    uint64_t max_v = 0;
    for (uint64_t v : values) max_v = std::max(max_v, v);
    return PackedArray(values, BitWidth(max_v));
  }

  /// Builds from `values` with an explicit width (each value must fit).
  PackedArray(const std::vector<uint64_t>& values, int width)
      : size_(values.size()), width_(width) {
    NEATS_REQUIRE(width >= 0 && width <= 64, "width out of range");
    BitWriter writer;
    for (uint64_t v : values) {
      NEATS_DCHECK(width == 64 || v <= LowMask(width));
      writer.Append(v, width);
    }
    words_ = Storage<uint64_t>(writer.TakeWords());
  }

  /// Value at index `i`.
  uint64_t operator[](size_t i) const {
    NEATS_DCHECK(i < size_);
    const size_t bit = i * static_cast<size_t>(width_);
    if (width_ > 0) {
      NEATS_TOUCH(words_.data() + (bit >> 6));
      NEATS_TOUCH(words_.data() + ((bit + static_cast<size_t>(width_) - 1) >> 6));
    }
    return ReadBits(words_.data(), bit, width_);
  }

  size_t size() const { return size_; }
  int width() const { return width_; }

  /// Total size in bits, including nothing but the payload words.
  size_t SizeInBits() const { return words_.size() * 64 + 2 * 64; }

  void Serialize(WordWriter& w) const {
    w.Put(size_);
    w.Put(static_cast<uint64_t>(width_));
    w.PutCells(words_.data(), words_.size());
  }

  static PackedArray Load(WordReader& r) {
    PackedArray a;
    a.size_ = r.Get();
    a.width_ = static_cast<int>(r.Get());
    NEATS_REQUIRE(a.width_ >= 0 && a.width_ <= 64, "corrupt NeaTS blob");
    // Bound the element count so size*width cannot wrap uint64 (2^56 cells
    // of 64 bits is 2^62 bits — far beyond any real blob but overflow-safe);
    // the truncation check in GetCells then sees the true word count.
    NEATS_REQUIRE(a.size_ <= (uint64_t{1} << 56), "corrupt NeaTS blob");
    a.words_ = r.GetCells<uint64_t>(
        CeilDiv(a.size_ * static_cast<size_t>(a.width_), 64));
    return a;
  }

 private:
  Storage<uint64_t> words_;
  size_t size_ = 0;
  int width_ = 0;
};

}  // namespace neats
