// The decoded-block LRU cache behind NeatsStore's point-query paths.
//
// Block-structured codecs (ALP, Gorilla, Chimp — anything answering
// SealedSeries::BlockValues() > 0) decode whole blocks; repeated point
// queries into the same block should not repeat that work. The store keeps
// one process-wide-per-store cache of decoded blocks keyed by
// (shard, codec, block): Access/AccessBatch consult it before any decode
// and insert what they had to decode, bounded by a byte budget with
// least-recently-used eviction (NeatsStoreOptions::block_cache_bytes).
//
// Entries are shared_ptr<const vector<int64_t>>, so a reader keeps its
// block alive even if the entry is evicted mid-query. The store's
// threading contract allows concurrent const queries, so every cache
// operation takes a mutex; decodes happen outside the lock (two threads
// racing on the same miss both decode — the values are identical, the
// second insert just refreshes the entry). Sealed shards are immutable and
// Scrub repairs re-seal the same values with the same codec, so entries
// never go stale.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace neats {

/// Byte-bounded LRU cache of decoded blocks (see file comment).
class DecodedBlockCache {
 public:
  using BlockPtr = std::shared_ptr<const std::vector<int64_t>>;

  /// Running counters plus a point-in-time size snapshot; readable while
  /// queries run (stats() takes the same mutex the queries do).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  // cached blocks right now
    uint64_t bytes = 0;    // their accounted footprint
  };

  explicit DecodedBlockCache(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// The cached block, bumped to most-recently-used — or null (a miss; the
  /// caller decodes and Inserts). Counts the hit or miss.
  BlockPtr Lookup(uint64_t shard, uint32_t codec, uint64_t block) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(Key{shard, codec, block});
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->values;
  }

  /// Caches a decoded block (refreshing any racing duplicate) and evicts
  /// from the LRU tail past the byte budget. A block that alone exceeds
  /// the whole budget is not cached.
  void Insert(uint64_t shard, uint32_t codec, uint64_t block,
              BlockPtr values) {
    const uint64_t cost =
        values->size() * sizeof(int64_t) + kEntryOverheadBytes;
    if (cost > capacity_) return;
    std::lock_guard<std::mutex> lock(mu_);
    const Key key{shard, codec, block};
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->values = std::move(values);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{key, std::move(values), cost});
    map_.emplace(key, lru_.begin());
    bytes_ += cost;
    while (bytes_ > capacity_) {
      const Entry& victim = lru_.back();
      bytes_ -= victim.cost;
      map_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, evictions_, lru_.size(), bytes_};
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    bytes_ = 0;
  }

 private:
  /// Map/list bookkeeping charged per entry on top of the value bytes, so
  /// a pathological many-tiny-blocks workload cannot blow past the budget
  /// through overhead the byte count would not see.
  static constexpr uint64_t kEntryOverheadBytes = 96;

  struct Key {
    uint64_t shard = 0;
    uint32_t codec = 0;
    uint64_t block = 0;
    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.shard * 0x9E3779B97F4A7C15ull;
      h ^= (k.block + 0x9E3779B97F4A7C15ull) + (h << 6) + (h >> 2);
      h ^= (static_cast<uint64_t>(k.codec) << 32) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    Key key;
    BlockPtr values;
    uint64_t cost = 0;
  };

  mutable std::mutex mu_;
  uint64_t capacity_ = 0;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
};

}  // namespace neats
