// Write-ahead log for the NeatsStore hot tail (docs/FORMAT.md, "Write-ahead
// log").
//
// Sealed shards are durable the moment their blob is fsynced, but the
// unsealed tail used to live only in memory: a crash before Flush() lost
// every buffered append. The WAL closes that window. Append() writes the
// values to WAL.neats and fsyncs it *before* acking; Flush() truncates the
// WAL back to a bare header once the manifest durably covers everything;
// OpenDir() replays surviving records on top of the manifested prefix.
//
// The format is the flat word grammar of the other NeaTS files, but unlike
// blobs and manifests the WAL is append-only and may legally end mid-record
// (the crash happened mid-write), so integrity is per record, not per file:
//
//   header    magic "NEATSWL\0" word, version word (1)
//   record    n (value count) | first (global index) | n value words |
//             check word: high 32 bits mark "NWR1", low 32 bits
//             CRC32C over the record's preceding (n + 2) * 8 bytes
//
// Replay() walks records until the first one that is truncated or fails its
// CRC, returns everything before it, and flags the log as torn. A torn tail
// is NOT corruption — it is the expected shape of a crash — so Replay never
// throws; the store logs a warning and rewrites the log clean.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "io/checksum.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Little-endian "NEATSWL\0" — same ASCII-sniffable convention as the
/// manifest and blob magics.
inline constexpr uint64_t kWalMagic = 0x004C57535441454EULL;

/// WAL format version.
inline constexpr uint64_t kWalVersion = 1;

/// High half of every record's check word — ASCII "NWR1".
inline constexpr uint32_t kWalRecordMark = 0x3152574Eu;

/// Name of the write-ahead log inside a store directory.
inline const char* WalFileName() { return "WAL.neats"; }

/// Appends the two-word WAL header to `out`.
inline void AppendWalHeader(std::vector<uint8_t>* out) {
  WordWriter w(out);
  w.Put(kWalMagic);
  w.Put(kWalVersion);
}

/// Appends one checksummed record covering `values` at global index `first`.
inline void AppendWalRecord(std::vector<uint8_t>* out, uint64_t first,
                            std::span<const int64_t> values) {
  const size_t start = out->size();
  WordWriter w(out);
  w.Put(values.size());
  w.Put(first);
  w.PutCells(values.data(), values.size());
  const uint32_t crc = Crc32c({out->data() + start, out->size() - start});
  w.Put((uint64_t{kWalRecordMark} << 32) | crc);
}

/// One replayed record: `values` starting at global index `first`.
struct WalRecord {
  uint64_t first = 0;
  std::vector<int64_t> values;
};

/// Replay outcome. `torn` means the log ended in a truncated or
/// CRC-failing record (or a damaged header) — everything in `records` is
/// still intact and trustworthy; `warning` describes the tear.
struct WalReplayResult {
  std::vector<WalRecord> records;
  bool torn = false;
  std::string warning;
};

/// Scans a WAL image and returns every intact record in order (see file
/// comment). Never throws: any malformed byte ends the scan with torn=true.
inline WalReplayResult ReplayWal(std::span<const uint8_t> bytes) {
  WalReplayResult result;
  if (bytes.empty()) return result;  // no log at all: nothing to replay
  uint64_t magic = 0, version = 0;
  if (bytes.size() >= 8) std::memcpy(&magic, bytes.data(), 8);
  if (bytes.size() >= 16) std::memcpy(&version, bytes.data() + 8, 8);
  if (bytes.size() < 16 || magic != kWalMagic || version != kWalVersion) {
    result.torn = true;
    result.warning = "write-ahead log header is damaged; discarding the log";
    return result;
  }
  size_t pos = 16;
  while (pos < bytes.size()) {
    const size_t avail_words = (bytes.size() - pos) / 8;
    uint64_t n = 0;
    if (avail_words >= 1) std::memcpy(&n, bytes.data() + pos, 8);
    // A record needs n + 3 words; an impossible count is the same as a
    // truncated record — the tail is torn.
    if (avail_words < 3 || n > avail_words - 3) {
      result.torn = true;
      break;
    }
    const size_t body_bytes = (static_cast<size_t>(n) + 2) * 8;
    uint64_t check = 0;
    std::memcpy(&check, bytes.data() + pos + body_bytes, 8);
    const uint32_t crc = Crc32c({bytes.data() + pos, body_bytes});
    if ((check >> 32) != kWalRecordMark ||
        static_cast<uint32_t>(check) != crc) {
      result.torn = true;
      break;
    }
    WalRecord rec;
    std::memcpy(&rec.first, bytes.data() + pos + 8, 8);
    rec.values.resize(n);
    if (n > 0) {
      std::memcpy(rec.values.data(), bytes.data() + pos + 16, n * 8);
    }
    result.records.push_back(std::move(rec));
    pos += body_bytes + 8;
  }
  if (result.torn) {
    result.warning = "write-ahead log ends in a torn record; replayed " +
                     std::to_string(result.records.size()) +
                     " intact record(s) and discarded the tail";
  }
  return result;
}

}  // namespace neats
