// The serving layer: a long (and growing) series as a set of sealed,
// independently-compressed shards behind one routing index, plus a
// write-ahead hot tail for streaming ingest (the storage-engine deployment
// of Sec. IV-C1, grown into a subsystem).
//
// Shape of the store:
//
//   [ shard 0 ][ shard 1 ] ... [ shard s-1 ][ pending seals ][ hot tail ]
//     sealed codec blobs, immutable            raw chunks       raw vector
//     (owned, or mmap'd zero-copy where        compressing in
//      the codec supports it)                  the background
//
// Every shard is a SealedSeries — any codec of the registry
// (src/codecs/codec_registry.hpp) can serve one, and shards of one store may
// use different codecs. The seal policy decides: kFixed compresses every
// chunk with `options.codec`; kAuto compresses each chunk with every
// candidate codec and keeps the smallest blob, so the store adapts per shard
// to whatever regime the data is in (the paper's comparison table as a live
// engineering choice). The per-shard codec id travels in MANIFEST.neats
// (manifest v2, src/io/manifest.hpp).
//
// Append() buffers into the hot tail; every time the tail reaches
// `shard_size` values a chunk is cut off and handed to the thread pool,
// which compresses it into a new shard in the background (the raw values
// stay queryable until the seal lands, so queries never wait on a
// compressor). Flush() seals the remaining tail, drains the pool and — for
// a directory-backed store — writes one blob per shard plus the manifest;
// blobs and the manifest are fsync'd (write-to-temp + rename + directory
// fsync), so a completed Flush survives power loss. OpenDir() routes by the
// manifest and re-opens every blob zero-copy where its codec supports
// borrowing (Neats, LeCo, NeatsLossyExact), deserializing the rest.
//
// Durability & recovery (docs/ARCHITECTURE.md, "Durability & recovery"):
//
//   - Every file operation routes through a neats::io::FileSystem
//     (NeatsStoreOptions::fs), so the whole layer runs unchanged against
//     the fault-injection backend (io/fault_fs.hpp) in the crash harness.
//   - A directory-backed store write-ahead-logs the hot tail: Append()
//     puts a checksummed record in WAL.neats and fsyncs it before
//     returning, Flush() resets the log once the manifest durably covers
//     everything, and OpenDir() replays surviving records (discarding a
//     torn final record — the expected shape of a crash).
//   - Sealed blobs and the manifest carry CRC32C trailers (manifest v3).
//     OpenDir() verifies each shard against its manifest row and
//     *quarantines* failures — a shard that is corrupt or missing stops
//     serving, but the store still opens, healthy shards answer queries
//     bit-identically, and a query routed into the quarantined range
//     throws a typed Error (StatusCode::kUnavailable) instead of a wrong
//     value. recovery_report() enumerates the damage; Scrub() re-verifies
//     every blob and re-seals quarantined shards whose value range is
//     still covered by intact WAL records.
//
// Every query routes through the in-memory routing index (shard ->
// [first, first+count)) and stitches across shard boundaries:
//
//   Access(i)              one shard lookup + one codec Access
//   AccessBatch(idx, out)  probes of any order: argsorted, grouped per
//                          shard (with an mmap WILLNEED prefetch hint per
//                          routed shard), then resolved by the shard
//                          codec's batch kernel
//   DecompressRange(s)     per-shard scans, stitched; consecutive ranges
//                          covered by the same shard go to the codec as one
//                          DecompressRanges call, so one cursor serves the
//                          whole group instead of re-seeking per range
//   RangeSum /             exact and corrections-free approximate sums,
//   ApproximateRangeSum    combined across the covered shards
//
// Threading contract: single writer, many readers. One thread at a time may
// mutate the store (Append/Flush/Scrub — they take the store's writer lock);
// any number of threads may run const queries concurrently — with each other,
// with the background seals, *and* with the writer (queries take the reader
// side of the same lock, so they see the topology either before or after a
// mutation, never mid-flight). The scenario engine (src/scenario/) drives
// exactly this shape — concurrent appenders/readers with every read verified
// — under ThreadSanitizer in CI. Moves and destruction still require outside
// quiescence, like any standard container.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codecs/codec_registry.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "io/checksum.hpp"
#include "io/fs.hpp"
#include "io/manifest.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log_sink.hpp"
#include "obs/metrics.hpp"
#include "store/block_cache.hpp"
#include "store/wal.hpp"

namespace neats {

/// How a chunk's codec is chosen at seal time.
enum class SealPolicy {
  kFixed,  // every shard uses NeatsStoreOptions::codec
  kAuto,   // compress with every candidate codec, keep the smallest blob
};

/// Tuning knobs of a NeatsStore.
struct NeatsStoreOptions {
  /// Values per sealed shard. Smaller shards seal sooner and parallelize
  /// better; larger shards amortize per-shard metadata and compress a bit
  /// tighter. Ignored by OpenDir (the manifest's value wins, so a store
  /// keeps its geometry across reopen).
  uint64_t shard_size = uint64_t{1} << 16;

  /// Compression options passed to the sealing codec (NeaTS uses all of
  /// them; other codecs take what applies, e.g. partition epsilons for
  /// NeatsLossyExact).
  NeatsOptions neats;

  /// Worker threads of the background sealer. 1 = a pool with no extra
  /// workers (seals run inline at the Append that cuts the chunk);
  /// 0 = one per hardware thread.
  int seal_threads = 1;

  /// Codec selection per sealed chunk (see SealPolicy).
  SealPolicy seal_policy = SealPolicy::kFixed;

  /// The codec of every shard under SealPolicy::kFixed.
  CodecId codec = CodecId::kNeats;

  /// Candidate set of SealPolicy::kAuto, tried in order (a strictly smaller
  /// blob wins; ties keep the earlier candidate, so the choice is
  /// deterministic). Empty = every registered codec.
  std::vector<CodecId> codec_candidates;

  /// The filesystem every store file goes through. Null = the production
  /// POSIX backend; the crash harness passes an io::FaultFs. Must outlive
  /// the store.
  io::FileSystem* fs = nullptr;

  /// Write-ahead-log the hot tail of a directory-backed store (Append
  /// fsyncs the record before acking). Disabling trades the pre-Flush
  /// crash guarantee for one fsync less per Append.
  bool wal = true;

  /// Parallel query fan-out: a DecompressRanges / RangeSum spanning
  /// several sealed shards and at least this many sealed values dispatches
  /// one task per covered shard on the seal pool (queries stay sequential
  /// below the threshold — fan-out has dispatch overhead, and small
  /// queries are cursor-bound, not core-bound). 0 disables fan-out. Only
  /// helps with seal_threads > 1: the pool the sealer shares is the pool
  /// the fan-out rides.
  uint64_t parallel_query_values = uint64_t{1} << 17;

  /// Byte budget of the decoded-block LRU cache (store/block_cache.hpp)
  /// consulted by Access/AccessBatch before any block-structured codec
  /// (ALP, Gorilla, Chimp) decode; 0 disables it. Shards of codecs with
  /// native point access (Neats, LeCo) never touch the cache. The default
  /// holds ~1M decoded values — enough to pin the hot blocks of a
  /// point-lookup storm while staying small next to the mapped blobs.
  uint64_t block_cache_bytes = uint64_t{8} << 20;

  // --- Observability (src/obs/, docs/ARCHITECTURE.md "Observability") ----

  /// Maintain the store's metrics registry and flight recorder: per-op
  /// latency histograms, op/WAL/seal/quarantine counters, StatsSnapshot()
  /// and TraceDump(). Recording is per-thread relaxed-atomic — the
  /// bench_report overhead guard holds the scalar-access cost under 3% —
  /// but a store that wants the last nanosecond can turn it all off.
  bool metrics = true;

  /// Scalar Access latency sampling: 1 in `latency_sample_every` accesses
  /// is timed into the "access" histogram (counters always count every
  /// op). Batch and cold ops are always timed — their per-call cost is
  /// amortized. 1 = time every access.
  uint32_t latency_sample_every = 64;

  /// Flight-recorder ring capacity in events (rounded up to a power of
  /// two); 0 disables trace recording. Sampled ops, cold ops, and every
  /// error land in the ring; see NeatsStore::TraceDump().
  size_t trace_events = 256;

  /// Structured log hook for quarantine / Scrub / WAL-replay events
  /// (obs::LogSink). Default (empty) prints one line per event to stderr;
  /// obs::NullLogSink() silences them. Ignored when metrics = false.
  obs::LogSink log_sink;
};

namespace store_internal {

/// The store's wiring into the observability layer: one registry with
/// every metric id resolved at construction (so recording sites index
/// arrays instead of hashing names), the flight recorder, and the log
/// sink. Heap-owned by the store so background seal tasks can capture the
/// stable pointer across store moves.
struct StoreObs {
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder;
  obs::LogSink sink;
  uint32_t sample_every;

  // Counter / gauge / histogram ids, resolved once.
  obs::CounterId c_access, c_batch_calls, c_batch_probes, c_range_calls,
      c_range_values, c_sum_calls, c_sum_values, c_approx_calls,
      c_append_calls, c_append_values, c_bytes_in, c_wal_records,
      c_wal_fsyncs, c_wal_replayed, c_flush, c_seals, c_seal_bytes,
      c_scrub_calls, c_scrub_repaired, c_quarantine_in, c_quarantine_out,
      c_errors;
  obs::CounterId c_seal_codec[kNumCodecIds];
  obs::GaugeId g_size, g_shards, g_pending, g_tail, g_quarantined,
      g_cache_entries, g_cache_bytes;
  obs::HistogramId h_access, h_batch, h_range, h_sum, h_append, h_flush,
      h_seal, h_scrub;

  StoreObs(uint32_t sample, size_t trace_events, obs::LogSink log_sink)
      : recorder(trace_events == 0 ? 2 : trace_events),
        sink(log_sink ? std::move(log_sink) : obs::LogSink(obs::StderrLog)),
        sample_every(sample == 0 ? 1 : sample),
        trace_enabled_(trace_events > 0) {
    c_access = registry.AddCounter("access.ops");
    c_batch_calls = registry.AddCounter("access_batch.calls");
    c_batch_probes = registry.AddCounter("access_batch.probes");
    c_range_calls = registry.AddCounter("range.calls");
    c_range_values = registry.AddCounter("range.values");
    c_sum_calls = registry.AddCounter("range_sum.calls");
    c_sum_values = registry.AddCounter("range_sum.values");
    c_approx_calls = registry.AddCounter("approx_sum.calls");
    c_append_calls = registry.AddCounter("append.calls");
    c_append_values = registry.AddCounter("append.values");
    c_bytes_in = registry.AddCounter("bytes.in");
    c_wal_records = registry.AddCounter("wal.records");
    c_wal_fsyncs = registry.AddCounter("wal.fsyncs");
    c_wal_replayed = registry.AddCounter("wal.replayed_records");
    c_flush = registry.AddCounter("flush.calls");
    c_seals = registry.AddCounter("seal.count");
    c_seal_bytes = registry.AddCounter("seal.blob_bytes");
    c_scrub_calls = registry.AddCounter("scrub.calls");
    c_scrub_repaired = registry.AddCounter("scrub.repaired");
    c_quarantine_in = registry.AddCounter("quarantine.entered");
    c_quarantine_out = registry.AddCounter("quarantine.exited");
    c_errors = registry.AddCounter("errors");
    for (uint32_t id = 0; id < kNumCodecIds; ++id) {
      c_seal_codec[id] = registry.AddCounter(
          std::string("seal.codec.") + CodecName(static_cast<CodecId>(id)));
    }
    g_size = registry.AddGauge("store.values");
    g_shards = registry.AddGauge("store.shards");
    g_pending = registry.AddGauge("store.pending_seals");
    g_tail = registry.AddGauge("store.tail_values");
    g_quarantined = registry.AddGauge("store.quarantined_shards");
    g_cache_entries = registry.AddGauge("cache.entries");
    g_cache_bytes = registry.AddGauge("cache.bytes");
    h_access = registry.AddHistogram("access");
    h_batch = registry.AddHistogram("access_batch");
    h_range = registry.AddHistogram("range");
    h_sum = registry.AddHistogram("range_sum");
    h_append = registry.AddHistogram("append");
    h_flush = registry.AddHistogram("flush");
    h_seal = registry.AddHistogram("seal");
    h_scrub = registry.AddHistogram("scrub");
  }

  bool trace_enabled() const { return trace_enabled_; }

  void Trace(obs::EventId op, obs::TraceTier tier, uint16_t status,
             uint32_t codec, uint64_t shard, uint64_t arg, uint64_t len,
             uint64_t dur_ns) {
    if (trace_enabled_) {
      recorder.Record(op, tier, status, codec, shard, arg, len, dur_ns);
    }
  }

  /// A recovery-class event: counted into the trace ring AND reported
  /// through the structured log hook.
  void Log(obs::EventId id, obs::Severity sev, uint64_t shard,
           std::string msg) {
    Trace(id, obs::TraceTier::kNone, 0, obs::TraceEvent::kNoCodec, shard,
          0, 0, 0);
    sink(obs::LogEvent{id, sev, shard, std::move(msg)});
  }

  /// A failed op: counted, traced with its status code, never logged (a
  /// kUnavailable storm must not flood the sink — the quarantine that
  /// caused it already did, with a trace dump).
  void Error(obs::EventId op, uint64_t arg, uint16_t status) {
    registry.Count(c_errors);
    Trace(op, obs::TraceTier::kNone, status, obs::TraceEvent::kNoCodec,
          obs::kNoShard, arg, 0, 0);
  }

  /// Emits the flight recorder's recent events through the log sink — the
  /// dump-on-quarantine path, so degraded states arrive with their
  /// last-N-operations context.
  void DumpTrace(const std::string& why) {
    sink(obs::LogEvent{obs::EventId::kTraceDump, obs::Severity::kWarn,
                       obs::kNoShard,
                       why + "; recent operations:\n" +
                           obs::TraceText(recorder.Dump())});
  }

 private:
  bool trace_enabled_;
};

}  // namespace store_internal

/// A sharded, append-able, randomly-accessible compressed series store.
class NeatsStore {
 public:
  /// What OpenDir()/Scrub() found wrong with a store directory and what
  /// they did about it. Empty everywhere = a fully healthy store.
  struct RepairReport {
    /// One quarantined shard: its routing row and why it stopped serving.
    struct ShardState {
      size_t shard = 0;      // index (and blob file ordinal)
      uint64_t first = 0;    // global index range the shard covers
      uint64_t count = 0;
      CodecId codec = CodecId::kNeats;
      std::string error;     // what the verification failed with
      /// The structured-log/flight-recorder event id this entry correlates
      /// with (obs::EventId) — a log sink and a repair report describing
      /// the same incident agree on it.
      obs::EventId event = obs::EventId::kQuarantine;
    };
    std::vector<ShardState> quarantined;  // shards currently not serving
    std::vector<size_t> repaired;         // shards Scrub() re-sealed
    std::vector<std::string> warnings;    // non-fatal recovery notes
  };

  NeatsStore() : NeatsStore(NeatsStoreOptions{}) {}

  explicit NeatsStore(const NeatsStoreOptions& options)
      : options_(options),
        fs_(options.fs != nullptr ? options.fs : &io::PosixFileSystem()),
        pool_(std::make_unique<ThreadPool>(
            ResolveNumThreads(options.seal_threads))) {
    NEATS_REQUIRE(options_.shard_size > 0, "shard_size must be positive");
    if (options_.block_cache_bytes > 0) {
      cache_ = std::make_unique<DecodedBlockCache>(options_.block_cache_bytes);
    }
    if (options_.metrics) {
      obs_ = std::make_unique<store_internal::StoreObs>(
          options_.latency_sample_every, options_.trace_events,
          options_.log_sink);
    }
    // Validated here, where the caller can catch — a bad id discovered
    // inside a background seal task would terminate the process instead.
    NEATS_REQUIRE(IsValidCodecId(static_cast<uint64_t>(options_.codec)),
                  "unknown codec id");
    for (CodecId id : options_.codec_candidates) {
      NEATS_REQUIRE(IsValidCodecId(static_cast<uint64_t>(id)),
                    "unknown codec id");
    }
  }

  /// A directory-backed store rooted at `dir` (created if missing): sealed
  /// shards are written there as codec blobs and served zero-copy via mmap
  /// once sealed; Flush() writes the manifest that OpenDir routes by.
  /// Refuses a directory that already holds a manifest — a fresh store's
  /// seals would overwrite the existing store's blobs out from under it;
  /// reopen with OpenDir (or clear the directory) instead. Stale files an
  /// abandoned store left behind (a WAL, a manifest temp) are removed.
  static NeatsStore CreateDir(const std::string& dir,
                              const NeatsStoreOptions& options = {}) {
    NeatsStore store(options);
    store.fs_->CreateDirs(dir);
    NEATS_REQUIRE(!store.fs_->Exists(dir + "/" + StoreManifest::FileName()),
                  "directory already holds a store — use OpenDir");
    store.dir_ = dir;
    store.fs_->Remove(dir + "/" + WalFileName());
    store.fs_->Remove(dir + "/" + StoreManifest::FileName() +
                      std::string(".tmp"));
    // Durably commit an empty manifest right away, so the directory is
    // OpenDir-able after a crash at ANY later point — including before the
    // first Flush(), when the WAL holds the only copy of acked appends.
    store.WriteManifest();
    return store;
  }

  /// Opens a store directory: parses the manifest (any version; pre-v3
  /// versions add an upgrade warning to the recovery report), verifies and
  /// opens every shard blob through the codec registry — zero-copy where
  /// the shard's codec supports borrowing — and replays the write-ahead
  /// log over the manifested prefix. A shard that fails verification
  /// (missing blob, size mismatch, bad checksum, codec rejection) is
  /// *quarantined*, not fatal: the store opens, healthy shards serve, and
  /// recovery_report() says what happened. Only a damaged manifest — the
  /// routing root itself — still throws. `options` supplies the
  /// compression knobs *and seal policy* for future seals (the manifest
  /// persists per-shard geometry and codec ids, not the policy that chose
  /// them; the manifest's shard_size wins).
  static NeatsStore OpenDir(const std::string& dir,
                            const NeatsStoreOptions& options = {}) {
    NeatsStore store(options);
    store.dir_ = dir;
    io::FileSystem& fs = *store.fs_;
    const std::string manifest_path = dir + "/" + StoreManifest::FileName();
    const std::string tmp = manifest_path + ".tmp";
    if (fs.Exists(tmp)) {
      // A crash between the temp write and the rename left this behind;
      // the real manifest is still authoritative.
      fs.Remove(tmp);
      store.report_.warnings.push_back(
          "removed stale manifest temp file left by an interrupted Flush");
    }
    const io::MappedRegion manifest_bytes = fs.OpenRead(manifest_path);
    const StoreManifest manifest = StoreManifest::Deserialize(
        manifest_bytes.bytes(), &store.report_.warnings);
    if (store.obs_ != nullptr) {
      // Everything collected so far (stale temp file, manifest version
      // upgrades) goes through the structured log hook; RecoverWal below
      // reports its own warnings under their specific event ids.
      for (const std::string& w : store.report_.warnings) {
        store.obs_->Log(obs::EventId::kOpenWarning, obs::Severity::kWarn,
                        obs::kNoShard, w);
      }
    }
    store.options_.shard_size = manifest.shard_size;
    store.shards_.reserve(manifest.shards.size());
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
      store.shards_.push_back(store.OpenShard(s, manifest.shards[s]));
    }
    store.sealed_total_ = manifest.total();
    store.manifest_total_ = manifest.total();
    store.next_ordinal_ = store.shards_.size();
    store.RecoverWal();
    return store;
  }

  NeatsStore(NeatsStore&&) = default;

  /// Move assignment first drains this store's own background seals: their
  /// tasks hold pointers into the pending chunks about to be destroyed, so
  /// a memberwise move while a seal is in flight would be a use-after-free.
  NeatsStore& operator=(NeatsStore&& o) {
    if (this != &o) {
      if (pool_ != nullptr) pool_->DrainTasks();
      // The destination keeps its own lock object (a moved-from source may
      // have lost its to a move construction); both stores must be quiescent
      // here anyway.
      if (mu_ == nullptr) mu_ = std::make_unique<std::shared_mutex>();
      options_ = std::move(o.options_);
      dir_ = std::move(o.dir_);
      fs_ = o.fs_;
      shards_ = std::move(o.shards_);
      sealed_total_ = o.sealed_total_;
      manifest_total_ = o.manifest_total_;
      pending_ = std::move(o.pending_);
      pending_total_ = o.pending_total_;
      tail_ = std::move(o.tail_);
      next_ordinal_ = o.next_ordinal_;
      wal_ = std::move(o.wal_);
      wal_dirty_ = o.wal_dirty_;
      report_ = std::move(o.report_);
      obs_ = std::move(o.obs_);
      cache_ = std::move(o.cache_);
      pool_ = std::move(o.pool_);
    }
    return *this;
  }

  /// Waits for in-flight background seals (their tasks reference the
  /// pending chunks this object owns). Does NOT flush: an unflushed
  /// directory store simply keeps its already-written shard blobs and the
  /// previous manifest.
  ~NeatsStore() {
    if (pool_ != nullptr) pool_->DrainTasks();
  }

  // --- Ingest -------------------------------------------------------------

  /// Appends `values`; every full `shard_size` chunk is sealed into a new
  /// shard in the background and only the sub-shard remainder is buffered
  /// in the hot tail. Full chunks are cut straight from the incoming span
  /// (after topping up whatever the tail already holds), so a bulk append
  /// of many shards' worth of data is linear — the tail is never repeatedly
  /// erased from the front. Also promotes any seals that completed since
  /// the last call, so the sealed prefix advances without ever blocking the
  /// append path on a compressor.
  ///
  /// Directory-backed stores log the values to the WAL and fsync it before
  /// anything else — when Append returns, the data survives a crash.
  void Append(std::span<const int64_t> values) {
    std::unique_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) {
      PromoteSealed();
      LogToWal(values);
      AppendImpl(values);
      return;
    }
    const uint64_t at = SizeImpl();
    try {
      const uint64_t t0 = obs::NowNs();
      PromoteSealed();
      LogToWal(values);
      AppendImpl(values);
      const uint64_t dur = obs::NowNs() - t0;
      // Counted after the body so the counters mean *acked* appends (a
      // failed WAL write rethrows without mutating the store).
      ob->registry.Count(ob->c_append_calls);
      ob->registry.Count(ob->c_append_values, values.size());
      ob->registry.Count(ob->c_bytes_in, values.size() * sizeof(int64_t));
      ob->registry.Record(ob->h_append, dur);
      ob->Trace(obs::EventId::kAppend, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, at, values.size(),
                dur);
    } catch (const Error& e) {
      ob->Error(obs::EventId::kAppend, at, static_cast<uint16_t>(e.code()));
      throw;
    }
  }

  /// Seals the remaining tail (as a final, possibly partial shard), drains
  /// the background sealer, and — for a directory-backed store — writes the
  /// manifest durably and resets the WAL it now supersedes. Afterwards
  /// every value lives in a sealed shard; appending may continue (new
  /// shards, manifest rewritten by the next Flush).
  void Flush() {
    std::unique_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    const uint64_t t0 = ob != nullptr ? obs::NowNs() : 0;
    try {
      FlushLocked();
    } catch (const Error& e) {
      if (ob != nullptr) {
        ob->Error(obs::EventId::kFlush, SizeImpl(),
                  static_cast<uint16_t>(e.code()));
      }
      throw;
    }
    if (ob != nullptr) {
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Count(ob->c_flush);
      ob->registry.Record(ob->h_flush, dur);
      ob->Trace(obs::EventId::kFlush, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, SizeImpl(), 0, dur);
    }
  }

  // --- Recovery -----------------------------------------------------------

  /// What OpenDir() and the last Scrub() found and did. Returns a reference
  /// into the store, so read it quiesced — not while another thread may be
  /// inside Scrub() rewriting it.
  const RepairReport& recovery_report() const { return report_; }

  /// True while any shard is quarantined (queries into its range throw
  /// kUnavailable; everything else keeps serving).
  bool degraded() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return DegradedImpl();
  }

  /// Re-verifies every healthy shard blob against its recorded checksum
  /// (quarantining new failures) and tries to repair quarantined shards:
  /// a shard whose value range is still fully covered by intact WAL
  /// records is re-compressed with its original codec, written durably,
  /// and returned to service; the manifest is rewritten when anything was
  /// repaired. Returns the updated report — `repaired` lists the shards
  /// brought back, `quarantined` what is still down.
  const RepairReport& Scrub() {
    std::unique_lock<std::shared_mutex> lock(*mu_);
    NEATS_REQUIRE(!dir_.empty(), "Scrub requires a directory-backed store");
    store_internal::StoreObs* ob = obs_.get();
    const uint64_t t0 = ob != nullptr ? obs::NowNs() : 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].series == nullptr) continue;
      try {
        VerifyShardBlob(s);
      } catch (const std::exception& e) {
        Quarantine(s, e.what());
      }
    }
    RepairFromWal();
    RebuildQuarantineList();
    if (ob != nullptr) {
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Count(ob->c_scrub_calls);
      ob->registry.Record(ob->h_scrub, dur);
      ob->Trace(obs::EventId::kScrub, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, shards_.size(),
                report_.repaired.size(), dur);
    }
    return report_;
  }

  // --- Introspection ------------------------------------------------------

  /// Total number of values in the store (sealed + sealing + hot tail).
  uint64_t size() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return SizeImpl();
  }

  /// Sealed-and-promoted shards (everything, after a Flush).
  size_t num_shards() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return shards_.size();
  }

  /// The codec serving sealed shard `s` (what the manifest records).
  CodecId shard_codec(size_t s) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return shards_[s].codec;
  }

  /// Chunks currently compressing in the background.
  size_t num_pending_seals() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return pending_.size();
  }

  /// Values still in the raw hot tail.
  uint64_t tail_size() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return tail_.size();
  }

  /// Values per sealed shard (from the options, or the manifest after
  /// OpenDir).
  uint64_t shard_size() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    return options_.shard_size;
  }

  /// Hit/miss/eviction counters and current footprint of the decoded-block
  /// cache; all zeros when it is disabled (block_cache_bytes = 0).
  DecodedBlockCache::Stats block_cache_stats() const {
    return cache_ != nullptr ? cache_->stats() : DecodedBlockCache::Stats{};
  }

  /// True when the store maintains its metrics registry and flight
  /// recorder (NeatsStoreOptions::metrics).
  bool metrics_enabled() const { return obs_ != nullptr; }

  /// A merged, point-in-time view of every store metric: exact op/WAL/
  /// seal/quarantine counters, sampled per-op latency histograms, and
  /// current-topology gauges. The decoded-block cache's own counters are
  /// folded in as `cache.*` rows and a derived `bytes.out` (8 bytes per
  /// value served through Access/AccessBatch/ranges/sums) rides along, so
  /// one snapshot is the whole exposition surface. Empty when metrics are
  /// disabled. Safe concurrently with queries and writers; totals are
  /// exact for operations that happened-before the call.
  obs::MetricsSnapshot StatsSnapshot() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    if (obs_ == nullptr) return {};
    store_internal::StoreObs& ob = *obs_;
    ob.registry.SetGauge(ob.g_size, static_cast<int64_t>(SizeImpl()));
    ob.registry.SetGauge(ob.g_shards, static_cast<int64_t>(shards_.size()));
    ob.registry.SetGauge(ob.g_pending,
                         static_cast<int64_t>(pending_.size()));
    ob.registry.SetGauge(ob.g_tail, static_cast<int64_t>(tail_.size()));
    int64_t quarantined = 0;
    for (const Shard& s : shards_) {
      if (s.series == nullptr) ++quarantined;
    }
    ob.registry.SetGauge(ob.g_quarantined, quarantined);
    const DecodedBlockCache::Stats cs =
        cache_ != nullptr ? cache_->stats() : DecodedBlockCache::Stats{};
    ob.registry.SetGauge(ob.g_cache_entries,
                         static_cast<int64_t>(cs.entries));
    ob.registry.SetGauge(ob.g_cache_bytes, static_cast<int64_t>(cs.bytes));
    obs::MetricsSnapshot snap = ob.registry.Snapshot();
    snap.counters.emplace_back("cache.hits", cs.hits);
    snap.counters.emplace_back("cache.misses", cs.misses);
    snap.counters.emplace_back("cache.evictions", cs.evictions);
    const uint64_t served = *snap.counter("access.ops") +
                            *snap.counter("access_batch.probes") +
                            *snap.counter("range.values") +
                            *snap.counter("range_sum.values");
    snap.counters.emplace_back("bytes.out", served * sizeof(int64_t));
    return snap;
  }

  /// The flight recorder's surviving trace events, oldest-first; empty
  /// when metrics or tracing (NeatsStoreOptions::trace_events = 0) are
  /// off. The store dumps the same ring through the log sink whenever a
  /// shard is quarantined at runtime.
  std::vector<obs::TraceEvent> TraceDump() const {
    return obs_ != nullptr ? obs_->recorder.Dump()
                           : std::vector<obs::TraceEvent>{};
  }

  /// Compressed size of the sealed shards plus 64 bits per not-yet-sealed
  /// value (pending chunks and the hot tail are raw; a quarantined shard
  /// counts as raw too — its compressed form is not trustworthy).
  size_t SizeInBits() const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    size_t bits = (pending_total_ + tail_.size()) * 64;
    for (const Shard& s : shards_) {
      bits += s.series != nullptr ? s.series->SizeInBits() : s.count * 64;
    }
    return bits;
  }

  // --- Queries ------------------------------------------------------------

  /// The value at global index i: one routing lookup, then the covering
  /// shard codec's Access (or a raw read from a pending chunk / the tail).
  /// Block-structured shards answer from the decoded-block cache when it
  /// holds the containing block (a hash probe + one array read — Neats-class
  /// latency), decoding and caching the block otherwise.
  int64_t Access(uint64_t i) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    NEATS_DCHECK(i < SizeImpl());
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) return AccessLocked(i, nullptr);
    try {
      // The counter is exact; the clock pair is sampled (1 in sample_every
      // per thread) so timing costs a fraction of a nanosecond amortized.
      // One combined slab lookup — the bench report's metrics_overhead
      // gate holds this whole branch to <3% of the access itself.
      if (!ob->registry.CountAndTick(ob->c_access, ob->h_access,
                                     ob->sample_every)) {
        return AccessLocked(i, nullptr);
      }
      obs::TraceEvent ev;
      const uint64_t t0 = obs::NowNs();
      const int64_t v = AccessLocked(i, &ev);
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Record(ob->h_access, dur);
      ob->Trace(obs::EventId::kAccess, ev.tier, 0, ev.codec, ev.shard, i, 1,
                dur);
      return v;
    } catch (const Error& e) {
      ob->Error(obs::EventId::kAccess, i, static_cast<uint16_t>(e.code()));
      throw;
    }
  }

  /// Batched point queries, any probe order, duplicates allowed. Probes are
  /// argsorted, grouped per shard, and each shard group is resolved by the
  /// shard codec's batch kernel (after a WILLNEED prefetch hint on the
  /// shard's mapping); out[j] receives the value at idx[j] (the sort is
  /// internal, results come back in input order).
  void AccessBatch(std::span<const uint64_t> idx,
                   std::span<int64_t> out) const {
    NEATS_DCHECK(idx.size() == out.size());
    if (idx.empty()) return;
    std::shared_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) {
      AccessBatchLocked(idx, out);
      return;
    }
    ob->registry.Count(ob->c_batch_calls);
    ob->registry.Count(ob->c_batch_probes, idx.size());
    try {
      const uint64_t t0 = obs::NowNs();
      AccessBatchLocked(idx, out);
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Record(ob->h_batch, dur);
      ob->Trace(obs::EventId::kAccessBatch, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, idx[0], idx.size(),
                dur);
    } catch (const Error& e) {
      ob->Error(obs::EventId::kAccessBatch, idx[0],
                static_cast<uint16_t>(e.code()));
      throw;
    }
  }

 private:
  /// AccessBatch body under the reader lock (the public wrapper only adds
  /// metrics around it).
  void AccessBatchLocked(std::span<const uint64_t> idx,
                         std::span<int64_t> out) const {
    std::vector<size_t> order(idx.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::sort(order.begin(), order.end(),
              [&idx](size_t a, size_t b) { return idx[a] < idx[b]; });
    std::vector<uint64_t> local;
    std::vector<int64_t> local_out;
    size_t p = 0;
    while (p < idx.size()) {
      const uint64_t k = idx[order[p]];
      NEATS_DCHECK(k < SizeImpl());
      if (k >= sealed_total_) {  // pending chunks + tail: raw reads
        out[order[p]] = AccessUnsealed(k);
        ++p;
        continue;
      }
      const Shard& s = HealthyShardOf(k);
      const uint64_t end = s.first + s.count;
      size_t q = p;
      local.clear();
      while (q < idx.size() && idx[order[q]] < end) {
        local.push_back(idx[order[q]] - s.first);
        ++q;
      }
      // Probes are sorted, so each routed shard forms exactly one group:
      // one WILLNEED hint per shard per call, never per probe.
      s.map.Advise(MmapFile::Advice::kWillNeed);
      local_out.resize(local.size());
      const uint64_t bv =
          cache_ != nullptr ? s.series->BlockValues() : uint64_t{0};
      if (bv > 0) {
        // Block-structured shard: answer each touched block's probes from
        // one cached (or once-decoded) block.
        size_t a = 0;
        while (a < local.size()) {
          const uint64_t blk = local[a] / bv;
          size_t z = a;
          while (z < local.size() && local[z] / bv == blk) ++z;
          const auto values = CachedBlock(s, blk);
          for (size_t j = a; j < z; ++j) {
            local_out[j] = (*values)[local[j] % bv];
          }
          a = z;
        }
      } else {
        s.series->AccessBatch(local, local_out.data());
      }
      for (size_t j = p; j < q; ++j) out[order[j]] = local_out[j - p];
      p = q;
    }
  }

 public:
  /// Decompresses values[from, from + len) into out, stitching across shard
  /// boundaries (per-shard scans; raw memcpy past the sealed prefix).
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) {
      DecompressRangeImpl(from, len, out);
      return;
    }
    ob->registry.Count(ob->c_range_calls);
    ob->registry.Count(ob->c_range_values, len);
    try {
      const uint64_t t0 = obs::NowNs();
      DecompressRangeImpl(from, len, out);
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Record(ob->h_range, dur);
      ob->Trace(obs::EventId::kRange, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, from, len, dur);
    } catch (const Error& e) {
      ob->Error(obs::EventId::kRange, from, static_cast<uint16_t>(e.code()));
      throw;
    }
  }

  /// Multi-range decompression: every range's values, concatenated into
  /// `out` (sized to the sum of the range lengths). Consecutive (sub)ranges
  /// covered by the same sealed shard are batched into one codec-level
  /// DecompressRanges call, so the codec reuses a single cursor across the
  /// group (its monotone-seek hop chain) instead of paying a fresh rank per
  /// range; each routed shard also gets a WILLNEED prefetch hint before its
  /// group is decoded.
  void DecompressRanges(std::span<const IndexRange> ranges,
                        int64_t* out) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) {
      DecompressRangesLocked(ranges, out);
      return;
    }
    uint64_t values = 0;
    for (const IndexRange& r : ranges) values += r.len;
    ob->registry.Count(ob->c_range_calls);
    ob->registry.Count(ob->c_range_values, values);
    try {
      const uint64_t t0 = obs::NowNs();
      DecompressRangesLocked(ranges, out);
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Record(ob->h_range, dur);
      ob->Trace(obs::EventId::kRange, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard,
                ranges.empty() ? 0 : ranges[0].from, values, dur);
    } catch (const Error& e) {
      ob->Error(obs::EventId::kRange, ranges.empty() ? 0 : ranges[0].from,
                static_cast<uint16_t>(e.code()));
      throw;
    }
  }

 private:
  struct Shard;  // defined below, with the rest of the shard machinery

  /// One sealed shard's slice of a multi-range query: the shard-local
  /// subranges that landed on it consecutively and the output cursor where
  /// their values go. Groups are independent by construction (disjoint
  /// output spans, distinct series objects), which is what makes the
  /// fan-out below embarrassingly parallel.
  struct ShardGroup {
    const Shard* shard = nullptr;
    int64_t* out = nullptr;
    std::vector<IndexRange> local;  // shard-local coordinates
    uint64_t values = 0;
  };

  /// Runs the per-shard groups of a multi-range query, fanning out one
  /// task per group on the seal pool when the query is big enough (see
  /// NeatsStoreOptions::parallel_query_values). Quarantine was already
  /// rejected during routing (HealthyShardOf throws before any task is
  /// spawned), so body exceptions are the rare codec/I/O kind — captured
  /// and rethrown on the calling thread, because pool bodies must not
  /// throw. Sequential and parallel execution produce identical bytes;
  /// only scheduling differs.
  void ExecuteShardGroups(std::span<ShardGroup> groups) const {
    uint64_t sealed_values = 0;
    for (const ShardGroup& g : groups) sealed_values += g.values;
    const uint64_t threshold = options_.parallel_query_values;
    if (threshold == 0 || groups.size() < 2 || sealed_values < threshold ||
        pool_ == nullptr || pool_->num_threads() < 2) {
      for (const ShardGroup& g : groups) {
        g.shard->series->DecompressRanges(g.local, g.out);
      }
      return;
    }
    std::mutex err_mu;
    std::exception_ptr err;
    pool_->ParallelFor(groups.size(), [&](size_t i) {
      try {
        const ShardGroup& g = groups[i];
        g.shard->series->DecompressRanges(g.local, g.out);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
    });
    if (err) std::rethrow_exception(err);
  }

  /// DecompressRanges body under the reader lock (either side: RebuildWal
  /// calls in here holding the writer lock). Builds the per-shard groups
  /// sequentially — routing errors (quarantine) surface here, before any
  /// parallel work starts — then executes them via ExecuteShardGroups.
  /// Not-yet-sealed spans decode inline during the build; they live in
  /// plain buffers and are bounded by the tail, never worth a task.
  void DecompressRangesLocked(std::span<const IndexRange> ranges,
                              int64_t* out) const {
    std::vector<ShardGroup> groups;
    std::vector<const Shard*> advised;  // one WILLNEED per shard per call
    const Shard* cur = nullptr;  // group-continuity: an unsealed span or a
                                 // shard switch ends the open group
    for (const IndexRange& r : ranges) {
      uint64_t from = r.from;
      uint64_t len = r.len;
      NEATS_DCHECK(from + len <= SizeImpl());
      while (len > 0) {
        if (from < sealed_total_) {
          const Shard& s = HealthyShardOf(from);
          const uint64_t take = std::min(len, s.first + s.count - from);
          if (cur != &s) {
            cur = &s;
            // Unsorted ranges can revisit a shard in a later group; advise
            // each routed shard once per call, not once per group.
            if (std::find(advised.begin(), advised.end(), &s) ==
                advised.end()) {
              advised.push_back(&s);
              s.map.Advise(MmapFile::Advice::kWillNeed);
            }
            groups.push_back(ShardGroup{&s, out, {}, 0});
          }
          groups.back().local.push_back({from - s.first, take});
          groups.back().values += take;
          out += take;
          from += take;
          len -= take;
          continue;
        }
        cur = nullptr;
        const uint64_t took = DecompressPrefix(from, len, out);
        from += took;
        len -= took;
        out += took;
      }
    }
    ExecuteShardGroups(groups);
  }

 public:
  /// Exact sum over values[from, from + len), combined across shards.
  int64_t RangeSum(uint64_t from, uint64_t len) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) return RangeSumLocked(from, len);
    ob->registry.Count(ob->c_sum_calls);
    ob->registry.Count(ob->c_sum_values, len);
    try {
      const uint64_t t0 = obs::NowNs();
      const int64_t sum = RangeSumLocked(from, len);
      const uint64_t dur = obs::NowNs() - t0;
      ob->registry.Record(ob->h_sum, dur);
      ob->Trace(obs::EventId::kRangeSum, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, from, len, dur);
      return sum;
    } catch (const Error& e) {
      ob->Error(obs::EventId::kRangeSum, from,
                static_cast<uint16_t>(e.code()));
      throw;
    }
  }

 private:
  /// RangeSum body under the reader lock. A sum spanning several sealed
  /// shards fans out one partial sum per shard on the seal pool (same
  /// threshold policy as ExecuteShardGroups); int64 addition is
  /// associative, so per-shard partials accumulated in segment order give
  /// the exact sequential answer.
  int64_t RangeSumLocked(uint64_t from, uint64_t len) const {
    NEATS_DCHECK(from + len <= SizeImpl());
    struct Segment {
      const Shard* shard;
      uint64_t local_from;
      uint64_t take;
    };
    std::vector<Segment> segments;
    int64_t sum = 0;
    uint64_t sealed_values = 0;
    while (len > 0) {
      if (from < sealed_total_) {
        const Shard& s = HealthyShardOf(from);
        const uint64_t take = std::min(len, s.first + s.count - from);
        segments.push_back({&s, from - s.first, take});
        sealed_values += take;
        from += take;
        len -= take;
        continue;
      }
      for (uint64_t k = from; k < from + len; ++k) sum += AccessUnsealed(k);
      break;
    }
    const uint64_t threshold = options_.parallel_query_values;
    if (threshold == 0 || segments.size() < 2 ||
        sealed_values < threshold || pool_ == nullptr ||
        pool_->num_threads() < 2) {
      for (const Segment& g : segments) {
        sum += g.shard->series->RangeSum(g.local_from, g.take);
      }
      return sum;
    }
    std::vector<int64_t> partial(segments.size(), 0);
    std::mutex err_mu;
    std::exception_ptr err;
    pool_->ParallelFor(segments.size(), [&](size_t i) {
      try {
        partial[i] =
            segments[i].shard->series->RangeSum(segments[i].local_from,
                                                segments[i].take);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
    });
    if (err) std::rethrow_exception(err);
    for (int64_t p : partial) sum += p;
    return sum;
  }

 public:
  /// Approximate sum over values[from, from + len): Neats shards answer
  /// from the learned functions alone (with the error bounds added up),
  /// shards of codecs without an estimator — and not-yet-sealed values —
  /// contribute exactly.
  Neats::ApproximateAggregate ApproximateRangeSum(uint64_t from,
                                                  uint64_t len) const {
    std::shared_lock<std::shared_mutex> lock(*mu_);
    store_internal::StoreObs* ob = obs_.get();
    if (ob == nullptr) return ApproximateRangeSumLocked(from, len);
    ob->registry.Count(ob->c_approx_calls);
    try {
      const uint64_t t0 = obs::NowNs();
      const Neats::ApproximateAggregate agg =
          ApproximateRangeSumLocked(from, len);
      ob->Trace(obs::EventId::kApproxRangeSum, obs::TraceTier::kNone, 0,
                obs::TraceEvent::kNoCodec, obs::kNoShard, from, len,
                obs::NowNs() - t0);
      return agg;
    } catch (const Error& e) {
      ob->Error(obs::EventId::kApproxRangeSum, from,
                static_cast<uint16_t>(e.code()));
      throw;
    }
  }

 private:
  /// ApproximateRangeSum body under the reader lock.
  Neats::ApproximateAggregate ApproximateRangeSumLocked(uint64_t from,
                                                        uint64_t len) const {
    NEATS_DCHECK(from + len <= SizeImpl());
    Neats::ApproximateAggregate agg{0.0, 0.0};
    while (len > 0) {
      if (from < sealed_total_) {
        const Shard& s = HealthyShardOf(from);
        const uint64_t take = std::min(len, s.first + s.count - from);
        Neats::ApproximateAggregate part =
            s.series->ApproximateRangeSum(from - s.first, take);
        agg.value += part.value;
        agg.error_bound += part.error_bound;
        from += take;
        len -= take;
        continue;
      }
      for (uint64_t k = from; k < from + len; ++k) {
        agg.value += static_cast<double>(AccessUnsealed(k));
      }
      break;
    }
    return agg;
  }

 private:
  /// size() without the reader lock — for callers already holding either
  /// side of mu_.
  uint64_t SizeImpl() const {
    return sealed_total_ + pending_total_ + tail_.size();
  }

  /// degraded() without the reader lock (see SizeImpl).
  bool DegradedImpl() const {
    for (const Shard& s : shards_) {
      if (s.series == nullptr) return true;
    }
    return false;
  }

  /// DecompressRange body — shared by the public query (reader lock) and
  /// RebuildWal (writer lock). Delegates to the multi-range body so a
  /// single long range spanning several sealed shards gets the same
  /// per-shard fan-out as a multi-range query.
  void DecompressRangeImpl(uint64_t from, uint64_t len, int64_t* out) const {
    NEATS_DCHECK(from + len <= SizeImpl());
    const IndexRange one{from, len};
    DecompressRangesLocked({&one, 1}, out);
  }

  /// Access body under the reader lock. `ev` is null on the untimed fast
  /// path (identical routing to the pre-metrics store); a sampled, traced
  /// access passes an event to receive the routing outcome — which tier
  /// answered, which shard, which codec.
  int64_t AccessLocked(uint64_t i, obs::TraceEvent* ev) const {
    if (i < sealed_total_) {
      const Shard& s = HealthyShardOf(i);
      const uint64_t local = i - s.first;
      if (ev != nullptr) {
        ev->tier = obs::TraceTier::kSealed;
        ev->shard = static_cast<uint64_t>(&s - shards_.data());
        ev->codec = static_cast<uint32_t>(s.codec);
      }
      if (cache_ != nullptr) {
        const uint64_t bv = s.series->BlockValues();
        if (bv > 0) {
          if (ev == nullptr) {
            return (*CachedBlock(s, local / bv))[local % bv];
          }
          // One cache consult either way — the hit flag rides along so the
          // trace can say which tier answered without a second probe
          // (block_cache_stats() stays exactly hits+misses == probes).
          bool hit = false;
          const auto values = CachedBlock(s, local / bv, &hit);
          ev->tier = hit ? obs::TraceTier::kCacheHit
                         : obs::TraceTier::kCacheMiss;
          return (*values)[local % bv];
        }
      }
      return s.series->Access(local);
    }
    if (ev != nullptr) {
      ev->tier = i < sealed_total_ + pending_total_ ? obs::TraceTier::kPending
                                                    : obs::TraceTier::kTail;
    }
    return AccessUnsealed(i);
  }

  /// One sealed shard: its slice of the global index space and the
  /// type-erased series serving it — owned right after an in-memory seal,
  /// or borrowing `map` when the codec opened the blob zero-copy. A null
  /// `series` means the shard is quarantined (`quarantine` says why): its
  /// routing row stays so neighbors keep their slots, but queries into it
  /// throw kUnavailable.
  struct Shard {
    uint64_t first = 0;
    uint64_t count = 0;
    uint64_t blob_bytes = 0;  // codec payload size (file minus the trailer)
    CodecId codec = CodecId::kNeats;
    uint32_t crc = 0;      // CRC32C of the blob payload, if has_crc
    bool has_crc = false;  // false only for unverified legacy (v1/v2) rows
    std::unique_ptr<SealedSeries> series;  // null = quarantined
    std::string quarantine;  // why the shard is not serving
    io::MappedRegion map;  // backs `series` when served from disk
  };

  /// A chunk handed to the background sealer. The raw values keep serving
  /// queries until the seal is promoted; the seal task writes only
  /// `sealed`, `codec`, `blob_bytes`, `error` and finally `done` (the
  /// publication flag). A task must never let an exception escape into the
  /// pool (ThreadPool tasks must not throw), so a failed seal — disk full
  /// while writing the blob, a compressor precondition — lands in `error`
  /// and is rethrown on the caller's thread at the next promotion, where
  /// the facade (neats::FlushStore) converts it into a Status.
  struct PendingChunk {
    uint64_t first = 0;
    size_t ordinal = 0;  // shard number -> blob file name
    std::vector<int64_t> values;
    std::unique_ptr<SealedSeries> sealed;
    CodecId codec = CodecId::kNeats;
    uint64_t blob_bytes = 0;
    uint32_t crc = 0;  // CRC32C of the blob payload
    std::string error;  // non-empty = the seal failed with this message
    StatusCode error_code = StatusCode::kFailed;  // its failure category
    std::atomic<bool> done{false};
  };

  /// Routing lookup: the sealed shard covering global index i.
  const Shard& ShardOf(uint64_t i) const {
    NEATS_DCHECK(i < sealed_total_);
    size_t lo = 0, hi = shards_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (shards_[mid].first <= i) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return shards_[lo];
  }

  /// ShardOf, refusing to route into a quarantined shard: the query gets a
  /// typed kUnavailable error instead of any chance of a wrong value.
  const Shard& HealthyShardOf(uint64_t i) const {
    const Shard& s = ShardOf(i);
    if (s.series == nullptr) {
      throw Error("shard " + std::to_string(&s - shards_.data()) +
                      " is quarantined: " + s.quarantine,
                  StatusCode::kUnavailable);
    }
    return s;
  }

  /// The decoded block serving (shard-local) block `block` of shard `s`,
  /// from the cache when present, decoding (outside the cache lock) and
  /// inserting on a miss. Only called when cache_ is non-null and the
  /// shard's codec is block-structured (BlockValues() > 0).
  DecodedBlockCache::BlockPtr CachedBlock(const Shard& s, uint64_t block,
                                          bool* was_hit = nullptr) const {
    const uint64_t shard_index =
        static_cast<uint64_t>(&s - shards_.data());
    const uint32_t codec = static_cast<uint32_t>(s.codec);
    if (auto hit = cache_->Lookup(shard_index, codec, block)) {
      if (was_hit != nullptr) *was_hit = true;
      return hit;
    }
    if (was_hit != nullptr) *was_hit = false;
    auto values =
        std::make_shared<std::vector<int64_t>>(s.series->BlockValues());
    const uint64_t count = s.series->DecodeBlock(block, values->data());
    values->resize(count);
    cache_->Insert(shard_index, codec, block, values);
    return values;
  }

  /// Raw read past the sealed prefix (pending chunks, then the tail).
  int64_t AccessUnsealed(uint64_t i) const {
    NEATS_DCHECK(i >= sealed_total_ && i < SizeImpl());
    for (const auto& c : pending_) {
      if (i < c->first + c->values.size()) return c->values[i - c->first];
    }
    return tail_[i - sealed_total_ - pending_total_];
  }

  /// Decompresses as much of [from, from + len) as one contiguous source
  /// (shard, pending chunk, or tail) covers; returns how many values.
  uint64_t DecompressPrefix(uint64_t from, uint64_t len, int64_t* out) const {
    if (from < sealed_total_) {
      const Shard& s = HealthyShardOf(from);
      const uint64_t take = std::min(len, s.first + s.count - from);
      s.map.Advise(MmapFile::Advice::kWillNeed);
      s.series->DecompressRange(from - s.first, take, out);
      return take;
    }
    for (const auto& c : pending_) {
      if (from < c->first + c->values.size()) {
        const uint64_t at = from - c->first;
        const uint64_t take = std::min<uint64_t>(len, c->values.size() - at);
        std::copy_n(c->values.data() + at, take, out);
        return take;
      }
    }
    const uint64_t at = from - sealed_total_ - pending_total_;
    std::copy_n(tail_.data() + at, len, out);
    return len;
  }

  /// Compresses one chunk per the seal policy: kFixed uses the configured
  /// codec; kAuto tries every candidate and keeps the one with the smallest
  /// serialized blob (strictly smaller wins, ties keep the earlier
  /// candidate — deterministic for a fixed candidate order). Returns the
  /// sealed series together with its blob.
  struct SealResult {
    CodecId codec = CodecId::kNeats;
    std::unique_ptr<SealedSeries> series;
    std::vector<uint8_t> blob;
  };
  static SealResult SealValues(std::span<const int64_t> values,
                               const NeatsStoreOptions& options) {
    SealResult best;
    if (options.seal_policy == SealPolicy::kFixed) {
      best.codec = options.codec;
      best.series = CodecRegistry::Compress(options.codec, values,
                                            options.neats);
      best.series->Serialize(&best.blob);
      return best;
    }
    std::vector<CodecId> candidates = options.codec_candidates;
    if (candidates.empty()) candidates = CodecRegistry::All();
    std::vector<uint8_t> blob;
    for (CodecId id : candidates) {
      std::unique_ptr<SealedSeries> series =
          CodecRegistry::Compress(id, values, options.neats);
      series->Serialize(&blob);
      if (best.series == nullptr || blob.size() < best.blob.size()) {
        best.codec = id;
        best.series = std::move(series);
        best.blob = std::move(blob);
        blob = {};
      }
    }
    return best;
  }

  /// Wraps `values` (one chunk, non-empty) into a pending seal and submits
  /// it to the pool. The lambda captures everything it needs by value
  /// (plus the stable chunk pointer and the filesystem, which outlives the
  /// store), so it never touches `this`. Note the fault contract: a
  /// CrashFault from an injected kill-point is NOT a std::exception, so it
  /// escapes this handler like a real power cut would — the crash harness
  /// runs with seal_threads = 1 (inline seals) so it unwinds on the caller
  /// thread instead of terminating a worker.
  void SealChunk(std::vector<int64_t> values) {
    auto chunk = std::make_unique<PendingChunk>();
    chunk->first = sealed_total_ + pending_total_;
    chunk->ordinal = next_ordinal_++;
    chunk->values = std::move(values);
    pending_total_ += chunk->values.size();
    PendingChunk* raw = chunk.get();
    pending_.push_back(std::move(chunk));
    pool_->Submit([raw, opts = options_, dir = dir_, fs = fs_,
                   ob = obs_.get()] {
      // `ob` outlives the task: obs_ is destroyed after pool_ drains (and
      // a store move transfers the unique_ptr, keeping the address).
      const uint64_t t0 = ob != nullptr ? obs::NowNs() : 0;
      try {
        SealResult sealed = SealValues(raw->values, opts);
        raw->codec = sealed.codec;
        raw->sealed = std::move(sealed.series);
        raw->blob_bytes = sealed.blob.size();
        raw->crc = Crc32c({sealed.blob.data(), sealed.blob.size()});
        if (!dir.empty()) {
          // Durable before publication: payload + checksum trailer hit
          // stable storage before any manifest can name the blob.
          AppendChecksumTrailer(&sealed.blob);
          io::WriteFileDurableTo(
              *fs, dir + "/" + StoreManifest::ShardFileName(raw->ordinal),
              {sealed.blob.data(), sealed.blob.size()});
        }
        if (ob != nullptr) {
          const uint64_t dur = obs::NowNs() - t0;
          ob->registry.Count(ob->c_seals);
          ob->registry.Count(
              ob->c_seal_codec[static_cast<uint32_t>(raw->codec)]);
          ob->registry.Count(ob->c_seal_bytes, raw->blob_bytes);
          ob->registry.Record(ob->h_seal, dur);
          ob->Trace(obs::EventId::kSeal, obs::TraceTier::kNone, 0,
                    static_cast<uint32_t>(raw->codec), raw->ordinal,
                    raw->first, raw->values.size(), dur);
        }
      } catch (const Error& e) {
        raw->error = e.what();  // rethrown at promotion, caller thread
        raw->error_code = e.code();
        if (ob != nullptr) {
          ob->Error(obs::EventId::kSeal, raw->first,
                    static_cast<uint16_t>(e.code()));
        }
      } catch (const std::exception& e) {
        raw->error = e.what();
        raw->error_code = StatusCode::kFailed;
        if (ob != nullptr) {
          ob->Error(obs::EventId::kSeal, raw->first,
                    static_cast<uint16_t>(StatusCode::kFailed));
        }
      }
      raw->done.store(true, std::memory_order_release);
    });
  }

  /// Moves completed seals (in order) from the pending queue into the
  /// routing index. Directory-backed shards whose codec supports borrowing
  /// are re-opened zero-copy from the blob the seal task just wrote, so
  /// they never hold the owned representation; everything else keeps the
  /// owned object from the seal. The raw chunk memory is released here.
  void PromoteSealed() {
    while (!pending_.empty() &&
           pending_.front()->done.load(std::memory_order_acquire)) {
      PendingChunk& c = *pending_.front();
      // A failed seal surfaces here, on the caller's thread, as the same
      // neats::Error contract every loader uses (the facade turns it into
      // a Status). The chunk stays pending — its raw values keep serving
      // queries, and every later Append/Flush re-reports the failure.
      if (!c.error.empty()) {
        throw Error("background seal failed: " + c.error, c.error_code);
      }
      Shard s;
      s.first = c.first;
      s.count = c.values.size();
      s.blob_bytes = c.blob_bytes;
      s.codec = c.codec;
      s.crc = c.crc;
      s.has_crc = true;
      if (!dir_.empty() && CodecRegistry::ZeroCopyView(c.codec)) {
        s.map = fs_->OpenRead(dir_ + "/" +
                              StoreManifest::ShardFileName(c.ordinal));
        // The trailer we just wrote; strip it so the codec sees its payload.
        const TrailerInfo trailer = CheckChecksumTrailer(s.map.bytes());
        NEATS_DCHECK(trailer.state == TrailerState::kValid);
        s.series = CodecRegistry::Open(c.codec, trailer.payload,
                                       /*allow_view=*/true);
      } else {
        s.series = std::move(c.sealed);
      }
      sealed_total_ += s.count;
      pending_total_ -= s.count;
      shards_.push_back(std::move(s));
      pending_.pop_front();
    }
  }

  /// Flush body under the writer lock (the public wrapper only adds
  /// metrics around it).
  void FlushLocked() {
    if (!tail_.empty()) {
      SealChunk(std::move(tail_));
      tail_ = {};
    }
    pool_->DrainTasks();
    PromoteSealed();
    NEATS_DCHECK(pending_.empty());
    if (!dir_.empty()) {
      WriteManifest();
      ResetWal();
    }
  }

  void WriteManifest() {
    StoreManifest manifest;
    manifest.shard_size = options_.shard_size;
    manifest.shards.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = shards_[i];
      if (!s.has_crc && s.series != nullptr) {
        // Healthy shard from a pre-checksum (v1/v2) manifest: compute its
        // payload CRC now so the rewritten manifest v3 row covers it.
        const io::MappedRegion map =
            fs_->OpenRead(dir_ + "/" + StoreManifest::ShardFileName(i));
        const TrailerInfo trailer = CheckChecksumTrailer(map.bytes());
        s.crc = trailer.state == TrailerState::kValid
                    ? trailer.crc
                    : Crc32c(map.bytes());  // bare legacy blob: no trailer
        s.has_crc = true;
      }
      StoreManifest::Shard row;
      row.first = s.first;
      row.count = s.count;
      row.blob_bytes = s.blob_bytes;
      row.codec = s.codec;
      row.crc = s.crc;
      row.has_crc = s.has_crc;
      manifest.shards.push_back(row);
    }
    std::vector<uint8_t> bytes;
    manifest.Serialize(&bytes);
    // Write-to-temp + rename: a process crash mid-Flush can never destroy
    // the previous manifest — until the atomic rename lands, OpenDir keeps
    // routing by the old file (which only names fully-written blobs, since
    // shards are written and fsync'd before the manifest). The temp file is
    // fsync'd before the rename and the directory after it, so a completed
    // Flush also survives power loss (ROADMAP, scale-out durability).
    const std::string path = dir_ + "/" + StoreManifest::FileName();
    const std::string tmp = path + ".tmp";
    io::WriteFileDurableTo(*fs_, tmp, {bytes.data(), bytes.size()});
    try {
      fs_->Rename(tmp, path);
    } catch (...) {
      try {
        fs_->Remove(tmp);  // no orphaned temp file after a failed rename
      } catch (...) {
        // The cleanup is best-effort; the rename failure is the error.
      }
      throw;
    }
    fs_->SyncDir(dir_);
    manifest_total_ = manifest.total();
  }

  // --- Durability helpers -------------------------------------------------

  /// The Append body shared by the ingest path and WAL replay (replay must
  /// not re-log what it reads from the WAL).
  void AppendImpl(std::span<const int64_t> values) {
    const size_t shard = static_cast<size_t>(options_.shard_size);
    size_t at = 0;
    if (!tail_.empty()) {  // invariant: tail_.size() < shard
      const size_t take = std::min(shard - tail_.size(), values.size());
      tail_.insert(tail_.end(), values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(take));
      at = take;
      if (tail_.size() < shard) return;
      SealChunk(std::move(tail_));
      tail_ = {};
    }
    while (values.size() - at >= shard) {
      SealChunk(std::vector<int64_t>(
          values.begin() + static_cast<ptrdiff_t>(at),
          values.begin() + static_cast<ptrdiff_t>(at + shard)));
      at += shard;
    }
    tail_.assign(values.begin() + static_cast<ptrdiff_t>(at), values.end());
  }

  std::string WalPath() const { return dir_ + "/" + WalFileName(); }

  /// Durably logs `values` (at global index size()) before AppendImpl sees
  /// them. A failed log write marks the WAL dirty and rethrows without
  /// mutating the store — the ack contract stays honest — and the next
  /// attempt rewrites the log wholesale from the in-memory tail.
  void LogToWal(std::span<const int64_t> values) {
    if (dir_.empty() || !options_.wal) return;
    if (wal_dirty_) RebuildWal();
    EnsureWal();
    std::vector<uint8_t> record;
    AppendWalRecord(&record, SizeImpl(), values);
    try {
      wal_->Write({record.data(), record.size()});
      wal_->Sync();
    } catch (...) {
      wal_dirty_ = true;
      throw;
    }
    if (obs_ != nullptr) {
      obs_->registry.Count(obs_->c_wal_records);
      obs_->registry.Count(obs_->c_wal_fsyncs);
    }
  }

  /// Opens (or creates, with a header) the WAL append handle.
  void EnsureWal() {
    if (wal_ != nullptr) return;
    if (!fs_->Exists(WalPath()) || fs_->FileSize(WalPath()) == 0) {
      wal_ = fs_->Create(WalPath());
      std::vector<uint8_t> header;
      AppendWalHeader(&header);
      wal_->Write({header.data(), header.size()});
    } else {
      wal_ = fs_->OpenAppend(WalPath());
    }
  }

  /// After a successful Flush the manifest covers every value, so the WAL
  /// restarts empty — unless shards are quarantined, in which case the old
  /// records are kept: they may be the only copy Scrub() can repair from.
  void ResetWal() {
    if (!options_.wal || DegradedImpl()) return;
    wal_ = fs_->Create(WalPath());
    std::vector<uint8_t> header;
    AppendWalHeader(&header);
    wal_->Write({header.data(), header.size()});
    wal_->Sync();
    wal_dirty_ = false;
  }

  /// Rewrites the WAL from the in-memory un-manifested suffix (one record
  /// covering [manifest_total_, size())), atomically via temp + rename.
  /// Recovery of last resort after a failed WAL append.
  void RebuildWal() {
    std::vector<uint8_t> bytes;
    AppendWalHeader(&bytes);
    if (SizeImpl() > manifest_total_) {
      std::vector<int64_t> values(SizeImpl() - manifest_total_);
      DecompressRangeImpl(manifest_total_, values.size(), values.data());
      AppendWalRecord(&bytes, manifest_total_,
                      {values.data(), values.size()});
    }
    const std::string tmp = WalPath() + ".tmp";
    io::WriteFileDurableTo(*fs_, tmp, {bytes.data(), bytes.size()});
    fs_->Rename(tmp, WalPath());
    fs_->SyncDir(dir_);
    wal_ = fs_->OpenAppend(WalPath());
    wal_dirty_ = false;
  }

  /// OpenDir tail: replays intact WAL records past the manifested prefix
  /// and, if the log ended torn (the expected shape of a crash), rewrites
  /// it to contain exactly the surviving records.
  void RecoverWal() {
    if (!options_.wal) return;
    if (!fs_->Exists(WalPath())) return;
    const io::MappedRegion map = fs_->OpenRead(WalPath());
    WalReplayResult replay = ReplayWal(map.bytes());
    if (!replay.warning.empty()) {
      report_.warnings.push_back(replay.warning);
      if (obs_ != nullptr) {
        obs_->Log(obs::EventId::kWalTorn, obs::Severity::kWarn,
                  obs::kNoShard, replay.warning);
      }
    }
    bool rewrite = replay.torn;
    size_t usable = replay.records.size();
    for (size_t i = 0; i < replay.records.size(); ++i) {
      const WalRecord& rec = replay.records[i];
      const uint64_t rec_end = rec.first + rec.values.size();
      if (rec_end <= SizeImpl()) continue;  // already manifested (stale)
      if (rec.first > SizeImpl()) {
        // A hole: everything past it cannot be anchored to the store.
        std::string gap = "write-ahead log has a gap at index " +
                          std::to_string(SizeImpl()) + "; discarding " +
                          std::to_string(replay.records.size() - i) +
                          " unanchored record(s)";
        if (obs_ != nullptr) {
          obs_->Log(obs::EventId::kWalGap, obs::Severity::kWarn,
                    obs::kNoShard, gap);
        }
        report_.warnings.push_back(std::move(gap));
        rewrite = true;
        usable = i;
        break;
      }
      const size_t skip = static_cast<size_t>(SizeImpl() - rec.first);
      AppendImpl({rec.values.data() + skip, rec.values.size() - skip});
      if (obs_ != nullptr) obs_->registry.Count(obs_->c_wal_replayed);
    }
    if (rewrite) {
      // Keep every intact record — including stale ones covering
      // manifested shards, which Scrub() may need for repairs.
      std::vector<uint8_t> bytes;
      AppendWalHeader(&bytes);
      for (size_t i = 0; i < usable; ++i) {
        const WalRecord& rec = replay.records[i];
        AppendWalRecord(&bytes, rec.first,
                        {rec.values.data(), rec.values.size()});
      }
      const std::string tmp = WalPath() + ".tmp";
      io::WriteFileDurableTo(*fs_, tmp, {bytes.data(), bytes.size()});
      fs_->Rename(tmp, WalPath());
      fs_->SyncDir(dir_);
    }
    wal_ = fs_->OpenAppend(WalPath());
  }

  /// Opens and fully verifies one manifest row at OpenDir; any failure is
  /// caught by the caller and quarantines the shard instead of throwing.
  Shard OpenShard(size_t index, const StoreManifest::Shard& row) {
    Shard shard;
    shard.first = row.first;
    shard.count = row.count;
    shard.blob_bytes = row.blob_bytes;
    shard.codec = row.codec;
    shard.crc = row.crc;
    shard.has_crc = row.has_crc;
    const std::string path =
        dir_ + "/" + StoreManifest::ShardFileName(index);
    try {
      io::MappedRegion map = fs_->OpenRead(path);
      std::span<const uint8_t> payload;
      if (map.size() == row.blob_bytes + kChecksumTrailerBytes) {
        const TrailerInfo trailer = CheckChecksumTrailer(map.bytes());
        NEATS_REQUIRE(trailer.state == TrailerState::kValid,
                      "shard blob fails its checksum");
        NEATS_REQUIRE(!row.has_crc || trailer.crc == row.crc,
                      "shard blob checksum disagrees with manifest");
        payload = trailer.payload;
        shard.crc = trailer.crc;
        shard.has_crc = true;
      } else if (map.size() == row.blob_bytes && !row.has_crc) {
        // Bare legacy blob named by a v1/v2 manifest: no checksum to hold
        // it to — the codec's structural validation is the only gate.
        payload = map.bytes();
      } else {
        NEATS_REQUIRE(false, "store shard blob disagrees with manifest");
      }
      shard.series = CodecRegistry::Open(row.codec, payload,
                                         /*allow_view=*/true);
      NEATS_REQUIRE(shard.series->size() == row.count,
                    "store shard blob disagrees with manifest");
      // A codec that deserialized into owned storage no longer needs the
      // mapping; drop it so the address space mirrors what actually serves.
      if (!CodecRegistry::ZeroCopyView(row.codec)) {
        shard.map = io::MappedRegion();
      } else {
        shard.map = std::move(map);
      }
    } catch (const std::exception& e) {
      shard.series = nullptr;
      shard.map = io::MappedRegion();
      shard.quarantine = std::string(e.what()) + " (" + path + ")";
      report_.quarantined.push_back(
          {index, row.first, row.count, row.codec, shard.quarantine});
      if (obs_ != nullptr) {
        obs_->registry.Count(obs_->c_quarantine_in);
        obs_->Log(obs::EventId::kQuarantine, obs::Severity::kError, index,
                  "shard quarantined at open: " + shard.quarantine);
      }
    }
    return shard;
  }

  /// Re-reads shard `index`'s blob file and re-checks size + checksum —
  /// the Scrub pass that catches bit rot after open. Throws on mismatch.
  void VerifyShardBlob(size_t index) {
    const Shard& s = shards_[index];
    const std::string path =
        dir_ + "/" + StoreManifest::ShardFileName(index);
    const io::MappedRegion map = fs_->OpenRead(path);
    if (map.size() == s.blob_bytes + kChecksumTrailerBytes) {
      const TrailerInfo trailer = CheckChecksumTrailer(map.bytes());
      NEATS_REQUIRE(trailer.state == TrailerState::kValid,
                    "shard blob fails its checksum");
      NEATS_REQUIRE(!s.has_crc || trailer.crc == s.crc,
                    "shard blob checksum disagrees with manifest");
    } else if (map.size() == s.blob_bytes && !s.has_crc) {
      // Legacy blob without a trailer: nothing cryptographic to re-check.
    } else {
      NEATS_REQUIRE(false, "store shard blob disagrees with manifest");
    }
  }

  void Quarantine(size_t index, const std::string& why) {
    Shard& s = shards_[index];
    s.series = nullptr;
    s.map = io::MappedRegion();
    s.quarantine = why;
    if (obs_ != nullptr) {
      obs_->registry.Count(obs_->c_quarantine_in);
      obs_->Log(obs::EventId::kQuarantine, obs::Severity::kError, index,
                "shard quarantined: " + why);
      // A runtime quarantine is the flight recorder's moment: ship the
      // last-N-operations context out with the incident.
      obs_->DumpTrace("shard " + std::to_string(index) + " quarantined");
    }
  }

  /// Scrub step 2: re-seal every quarantined shard whose value range is
  /// fully covered by intact WAL records, then rewrite the manifest if
  /// anything came back.
  void RepairFromWal() {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (shards_[i].series == nullptr) candidates.push_back(i);
    }
    if (candidates.empty()) return;
    WalReplayResult replay;
    if (fs_->Exists(WalPath())) {
      const io::MappedRegion map = fs_->OpenRead(WalPath());
      replay = ReplayWal(map.bytes());
    }
    bool repaired_any = false;
    for (size_t index : candidates) {
      Shard& s = shards_[index];
      std::vector<int64_t> values(s.count);
      std::vector<uint8_t> covered(s.count, 0);
      for (const WalRecord& rec : replay.records) {
        const uint64_t lo = std::max(rec.first, s.first);
        const uint64_t hi = std::min(rec.first + rec.values.size(),
                                     s.first + s.count);
        for (uint64_t g = lo; g < hi; ++g) {
          values[g - s.first] = rec.values[g - rec.first];
          covered[g - s.first] = 1;
        }
      }
      if (std::find(covered.begin(), covered.end(), 0) != covered.end()) {
        continue;  // the WAL no longer covers this range; cannot repair
      }
      std::unique_ptr<SealedSeries> series = CodecRegistry::Compress(
          s.codec, {values.data(), values.size()}, options_.neats);
      std::vector<uint8_t> blob;
      series->Serialize(&blob);
      s.blob_bytes = blob.size();
      s.crc = Crc32c({blob.data(), blob.size()});
      s.has_crc = true;
      AppendChecksumTrailer(&blob);
      io::WriteFileDurableTo(
          *fs_, dir_ + "/" + StoreManifest::ShardFileName(index),
          {blob.data(), blob.size()});
      fs_->SyncDir(dir_);
      if (CodecRegistry::ZeroCopyView(s.codec)) {
        s.map = fs_->OpenRead(dir_ + "/" +
                              StoreManifest::ShardFileName(index));
        const TrailerInfo trailer = CheckChecksumTrailer(s.map.bytes());
        NEATS_DCHECK(trailer.state == TrailerState::kValid);
        s.series = CodecRegistry::Open(s.codec, trailer.payload,
                                       /*allow_view=*/true);
      } else {
        s.series = std::move(series);
      }
      s.quarantine.clear();
      report_.repaired.push_back(index);
      repaired_any = true;
      if (obs_ != nullptr) {
        obs_->registry.Count(obs_->c_scrub_repaired);
        obs_->registry.Count(obs_->c_quarantine_out);
        obs_->Log(obs::EventId::kScrubRepair, obs::Severity::kInfo, index,
                  "shard re-sealed from WAL records and returned to "
                  "service");
      }
    }
    // The repaired blobs may differ byte-for-byte from the originals (a
    // re-compression), so the manifest rows must be republished.
    if (repaired_any) WriteManifest();
  }

  /// Refreshes report_.quarantined from the live shard states.
  void RebuildQuarantineList() {
    report_.quarantined.clear();
    for (size_t i = 0; i < shards_.size(); ++i) {
      const Shard& s = shards_[i];
      if (s.series == nullptr) {
        report_.quarantined.push_back(
            {i, s.first, s.count, s.codec, s.quarantine});
      }
    }
  }

  NeatsStoreOptions options_;
  std::string dir_;  // empty = in-memory store
  io::FileSystem* fs_ = nullptr;  // never null after construction

  std::vector<Shard> shards_;  // sealed + promoted, contiguous from index 0
  uint64_t sealed_total_ = 0;  // values covered by shards_
  uint64_t manifest_total_ = 0;  // values covered by the durable manifest
  std::deque<std::unique_ptr<PendingChunk>> pending_;  // seals in flight
  uint64_t pending_total_ = 0;                         // their value count
  std::vector<int64_t> tail_;  // write-ahead hot tail (raw)
  size_t next_ordinal_ = 0;    // next shard blob number
  std::unique_ptr<io::WritableFile> wal_;  // open WAL append handle
  bool wal_dirty_ = false;  // a WAL append failed; rebuild before reuse
  RepairReport report_;     // what OpenDir/Scrub found and did

  // The observability wiring (metrics registry, flight recorder, log
  // sink); null when options_.metrics is false. Heap-owned so background
  // seal tasks capture a pointer that stays valid across store moves; it
  // is destroyed after pool_ (declared later) drains.
  std::unique_ptr<store_internal::StoreObs> obs_;

  // Decoded-block LRU over the block-structured codecs' shards; null when
  // options_.block_cache_bytes is 0. The cache itself is mutex-guarded, so
  // const query paths may populate it concurrently.
  std::unique_ptr<DecodedBlockCache> cache_;

  // The single-writer/multi-reader lock over the store topology: queries
  // take it shared, Append/Flush/Scrub exclusive. Heap-allocated so the
  // store stays movable (moves require outside quiescence, as before);
  // the writer keeps it across a whole mutation — including a Flush's seal
  // drain — so readers observe every promotion atomically.
  mutable std::unique_ptr<std::shared_mutex> mu_ =
      std::make_unique<std::shared_mutex>();

  // Declared last so it is destroyed first: no worker can outlive the
  // chunks its tasks reference. (~NeatsStore drains explicitly anyway.)
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace neats
