// The serving layer: a long (and growing) series as a set of sealed,
// independently-compressed shards behind one routing index, plus a
// write-ahead hot tail for streaming ingest (the storage-engine deployment
// of Sec. IV-C1, grown into a subsystem).
//
// Shape of the store:
//
//   [ shard 0 ][ shard 1 ] ... [ shard s-1 ][ pending seals ][ hot tail ]
//     sealed codec blobs, immutable            raw chunks       raw vector
//     (owned, or mmap'd zero-copy where        compressing in
//      the codec supports it)                  the background
//
// Every shard is a SealedSeries — any codec of the registry
// (src/codecs/codec_registry.hpp) can serve one, and shards of one store may
// use different codecs. The seal policy decides: kFixed compresses every
// chunk with `options.codec`; kAuto compresses each chunk with every
// candidate codec and keeps the smallest blob, so the store adapts per shard
// to whatever regime the data is in (the paper's comparison table as a live
// engineering choice). The per-shard codec id travels in MANIFEST.neats
// (manifest v2, src/io/manifest.hpp).
//
// Append() buffers into the hot tail; every time the tail reaches
// `shard_size` values a chunk is cut off and handed to the thread pool,
// which compresses it into a new shard in the background (the raw values
// stay queryable until the seal lands, so queries never wait on a
// compressor). Flush() seals the remaining tail, drains the pool and — for
// a directory-backed store — writes one blob per shard plus the manifest;
// blobs and the manifest are fsync'd (write-to-temp + rename + directory
// fsync), so a completed Flush survives power loss. OpenDir() routes by the
// manifest and re-opens every blob zero-copy where its codec supports
// borrowing (Neats, LeCo, NeatsLossyExact), deserializing the rest.
//
// Every query routes through the in-memory routing index (shard ->
// [first, first+count)) and stitches across shard boundaries:
//
//   Access(i)              one shard lookup + one codec Access
//   AccessBatch(idx, out)  probes of any order: argsorted, grouped per
//                          shard (with an mmap WILLNEED prefetch hint per
//                          routed shard), then resolved by the shard
//                          codec's batch kernel
//   DecompressRange(s)     per-shard scans, stitched; consecutive ranges
//                          covered by the same shard go to the codec as one
//                          DecompressRanges call, so one cursor serves the
//                          whole group instead of re-seeking per range
//   RangeSum /             exact and corrections-free approximate sums,
//   ApproximateRangeSum    combined across the covered shards
//
// Threading contract: one writer (Append/Flush) at a time, like a standard
// container; read queries may run concurrently with the *background seals*
// (sealing only writes fields queries never touch) but not with the writer.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codecs/codec_registry.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "core/codec_id.hpp"
#include "core/neats.hpp"
#include "io/manifest.hpp"
#include "io/mmap_file.hpp"
#include "io/text_io.hpp"

namespace neats {

/// How a chunk's codec is chosen at seal time.
enum class SealPolicy {
  kFixed,  // every shard uses NeatsStoreOptions::codec
  kAuto,   // compress with every candidate codec, keep the smallest blob
};

/// Tuning knobs of a NeatsStore.
struct NeatsStoreOptions {
  /// Values per sealed shard. Smaller shards seal sooner and parallelize
  /// better; larger shards amortize per-shard metadata and compress a bit
  /// tighter. Ignored by OpenDir (the manifest's value wins, so a store
  /// keeps its geometry across reopen).
  uint64_t shard_size = uint64_t{1} << 16;

  /// Compression options passed to the sealing codec (NeaTS uses all of
  /// them; other codecs take what applies, e.g. partition epsilons for
  /// NeatsLossyExact).
  NeatsOptions neats;

  /// Worker threads of the background sealer. 1 = a pool with no extra
  /// workers (seals run inline at the Append that cuts the chunk);
  /// 0 = one per hardware thread.
  int seal_threads = 1;

  /// Codec selection per sealed chunk (see SealPolicy).
  SealPolicy seal_policy = SealPolicy::kFixed;

  /// The codec of every shard under SealPolicy::kFixed.
  CodecId codec = CodecId::kNeats;

  /// Candidate set of SealPolicy::kAuto, tried in order (a strictly smaller
  /// blob wins; ties keep the earlier candidate, so the choice is
  /// deterministic). Empty = every registered codec.
  std::vector<CodecId> codec_candidates;
};

/// A sharded, append-able, randomly-accessible compressed series store.
class NeatsStore {
 public:
  NeatsStore() : NeatsStore(NeatsStoreOptions{}) {}

  explicit NeatsStore(const NeatsStoreOptions& options)
      : options_(options),
        pool_(std::make_unique<ThreadPool>(
            ResolveNumThreads(options.seal_threads))) {
    NEATS_REQUIRE(options_.shard_size > 0, "shard_size must be positive");
    // Validated here, where the caller can catch — a bad id discovered
    // inside a background seal task would terminate the process instead.
    NEATS_REQUIRE(IsValidCodecId(static_cast<uint64_t>(options_.codec)),
                  "unknown codec id");
    for (CodecId id : options_.codec_candidates) {
      NEATS_REQUIRE(IsValidCodecId(static_cast<uint64_t>(id)),
                    "unknown codec id");
    }
  }

  /// A directory-backed store rooted at `dir` (created if missing): sealed
  /// shards are written there as codec blobs and served zero-copy via mmap
  /// once sealed; Flush() writes the manifest that OpenDir routes by.
  /// Refuses a directory that already holds a manifest — a fresh store's
  /// seals would overwrite the existing store's blobs out from under it;
  /// reopen with OpenDir (or clear the directory) instead.
  static NeatsStore CreateDir(const std::string& dir,
                              const NeatsStoreOptions& options = {}) {
    std::filesystem::create_directories(dir);
    NEATS_REQUIRE(
        !std::filesystem::exists(dir + "/" + StoreManifest::FileName()),
        "directory already holds a store — use OpenDir");
    NeatsStore store(options);
    store.dir_ = dir;
    return store;
  }

  /// Opens a flushed store directory: parses the manifest, opens every
  /// shard blob through the codec registry — zero-copy (MmapFile + View)
  /// where the shard's codec supports borrowing — and cross-checks each
  /// against its manifest row (blob byte size, value count). The store is
  /// fully queryable and appendable afterwards; `options` supplies the
  /// compression knobs *and seal policy* for future seals (the manifest
  /// persists per-shard geometry and codec ids, not the policy that chose
  /// them — a caller who wants kAuto after reopen passes it again; the
  /// manifest's shard_size wins).
  static NeatsStore OpenDir(const std::string& dir,
                            const NeatsStoreOptions& options = {}) {
    NeatsStore store(options);
    store.dir_ = dir;
    StoreManifest manifest = StoreManifest::Deserialize(
        ReadFile(dir + "/" + StoreManifest::FileName()));
    store.options_.shard_size = manifest.shard_size;
    store.shards_.reserve(manifest.shards.size());
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
      const StoreManifest::Shard& row = manifest.shards[s];
      Shard shard;
      shard.first = row.first;
      shard.count = row.count;
      shard.blob_bytes = row.blob_bytes;
      shard.codec = row.codec;
      shard.map = MmapFile::Open(dir + "/" + StoreManifest::ShardFileName(s));
      NEATS_REQUIRE(shard.map.size() == row.blob_bytes,
                    "store shard blob disagrees with manifest");
      shard.series = CodecRegistry::Open(row.codec, shard.map.bytes(),
                                         /*allow_view=*/true);
      NEATS_REQUIRE(shard.series->size() == row.count,
                    "store shard blob disagrees with manifest");
      // A codec that deserialized into owned storage no longer needs the
      // mapping; drop it so the address space mirrors what actually serves.
      if (!CodecRegistry::ZeroCopyView(row.codec)) shard.map = MmapFile();
      store.shards_.push_back(std::move(shard));
    }
    store.sealed_total_ = manifest.total();
    store.next_ordinal_ = store.shards_.size();
    return store;
  }

  NeatsStore(NeatsStore&&) = default;

  /// Move assignment first drains this store's own background seals: their
  /// tasks hold pointers into the pending chunks about to be destroyed, so
  /// a memberwise move while a seal is in flight would be a use-after-free.
  NeatsStore& operator=(NeatsStore&& o) {
    if (this != &o) {
      if (pool_ != nullptr) pool_->DrainTasks();
      options_ = std::move(o.options_);
      dir_ = std::move(o.dir_);
      shards_ = std::move(o.shards_);
      sealed_total_ = o.sealed_total_;
      pending_ = std::move(o.pending_);
      pending_total_ = o.pending_total_;
      tail_ = std::move(o.tail_);
      next_ordinal_ = o.next_ordinal_;
      pool_ = std::move(o.pool_);
    }
    return *this;
  }

  /// Waits for in-flight background seals (their tasks reference the
  /// pending chunks this object owns). Does NOT flush: an unflushed
  /// directory store simply keeps its already-written shard blobs and the
  /// previous manifest.
  ~NeatsStore() {
    if (pool_ != nullptr) pool_->DrainTasks();
  }

  // --- Ingest -------------------------------------------------------------

  /// Appends `values`; every full `shard_size` chunk is sealed into a new
  /// shard in the background and only the sub-shard remainder is buffered
  /// in the hot tail. Full chunks are cut straight from the incoming span
  /// (after topping up whatever the tail already holds), so a bulk append
  /// of many shards' worth of data is linear — the tail is never repeatedly
  /// erased from the front. Also promotes any seals that completed since
  /// the last call, so the sealed prefix advances without ever blocking the
  /// append path on a compressor.
  void Append(std::span<const int64_t> values) {
    PromoteSealed();
    const size_t shard = static_cast<size_t>(options_.shard_size);
    size_t at = 0;
    if (!tail_.empty()) {  // invariant: tail_.size() < shard
      const size_t take = std::min(shard - tail_.size(), values.size());
      tail_.insert(tail_.end(), values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(take));
      at = take;
      if (tail_.size() < shard) return;
      SealChunk(std::move(tail_));
      tail_ = {};
    }
    while (values.size() - at >= shard) {
      SealChunk(std::vector<int64_t>(
          values.begin() + static_cast<ptrdiff_t>(at),
          values.begin() + static_cast<ptrdiff_t>(at + shard)));
      at += shard;
    }
    tail_.assign(values.begin() + static_cast<ptrdiff_t>(at), values.end());
  }

  /// Seals the remaining tail (as a final, possibly partial shard), drains
  /// the background sealer, and — for a directory-backed store — writes the
  /// manifest durably. Afterwards every value lives in a sealed shard;
  /// appending may continue (new shards, manifest rewritten by the next
  /// Flush).
  void Flush() {
    if (!tail_.empty()) {
      SealChunk(std::move(tail_));
      tail_ = {};
    }
    pool_->DrainTasks();
    PromoteSealed();
    NEATS_DCHECK(pending_.empty());
    if (!dir_.empty()) WriteManifest();
  }

  // --- Introspection ------------------------------------------------------

  /// Total number of values in the store (sealed + sealing + hot tail).
  uint64_t size() const {
    return sealed_total_ + pending_total_ + tail_.size();
  }

  /// Sealed-and-promoted shards (everything, after a Flush).
  size_t num_shards() const { return shards_.size(); }

  /// The codec serving sealed shard `s` (what the manifest records).
  CodecId shard_codec(size_t s) const { return shards_[s].codec; }

  /// Chunks currently compressing in the background.
  size_t num_pending_seals() const { return pending_.size(); }

  /// Values still in the raw hot tail.
  uint64_t tail_size() const { return tail_.size(); }

  /// Values per sealed shard (from the options, or the manifest after
  /// OpenDir).
  uint64_t shard_size() const { return options_.shard_size; }

  /// Compressed size of the sealed shards plus 64 bits per not-yet-sealed
  /// value (pending chunks and the hot tail are raw).
  size_t SizeInBits() const {
    size_t bits = (pending_total_ + tail_.size()) * 64;
    for (const Shard& s : shards_) bits += s.series->SizeInBits();
    return bits;
  }

  // --- Queries ------------------------------------------------------------

  /// The value at global index i: one routing lookup, then the covering
  /// shard codec's Access (or a raw read from a pending chunk / the tail).
  int64_t Access(uint64_t i) const {
    NEATS_DCHECK(i < size());
    if (i < sealed_total_) {
      const Shard& s = ShardOf(i);
      return s.series->Access(i - s.first);
    }
    return AccessUnsealed(i);
  }

  /// Batched point queries, any probe order, duplicates allowed. Probes are
  /// argsorted, grouped per shard, and each shard group is resolved by the
  /// shard codec's batch kernel (after a WILLNEED prefetch hint on the
  /// shard's mapping); out[j] receives the value at idx[j] (the sort is
  /// internal, results come back in input order).
  void AccessBatch(std::span<const uint64_t> idx,
                   std::span<int64_t> out) const {
    NEATS_DCHECK(idx.size() == out.size());
    if (idx.empty()) return;
    std::vector<size_t> order(idx.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::sort(order.begin(), order.end(),
              [&idx](size_t a, size_t b) { return idx[a] < idx[b]; });
    std::vector<uint64_t> local;
    std::vector<int64_t> local_out;
    size_t p = 0;
    while (p < idx.size()) {
      const uint64_t k = idx[order[p]];
      NEATS_DCHECK(k < size());
      if (k >= sealed_total_) {  // pending chunks + tail: raw reads
        out[order[p]] = AccessUnsealed(k);
        ++p;
        continue;
      }
      const Shard& s = ShardOf(k);
      const uint64_t end = s.first + s.count;
      size_t q = p;
      local.clear();
      while (q < idx.size() && idx[order[q]] < end) {
        local.push_back(idx[order[q]] - s.first);
        ++q;
      }
      s.map.Advise(MmapFile::Advice::kWillNeed);
      local_out.resize(local.size());
      s.series->AccessBatch(local, local_out.data());
      for (size_t j = p; j < q; ++j) out[order[j]] = local_out[j - p];
      p = q;
    }
  }

  /// Decompresses values[from, from + len) into out, stitching across shard
  /// boundaries (per-shard scans; raw memcpy past the sealed prefix).
  void DecompressRange(uint64_t from, uint64_t len, int64_t* out) const {
    NEATS_DCHECK(from + len <= size());
    while (len > 0) {
      const uint64_t took = DecompressPrefix(from, len, out);
      from += took;
      len -= took;
      out += took;
    }
  }

  /// Multi-range decompression: every range's values, concatenated into
  /// `out` (sized to the sum of the range lengths). Consecutive (sub)ranges
  /// covered by the same sealed shard are batched into one codec-level
  /// DecompressRanges call, so the codec reuses a single cursor across the
  /// group (its monotone-seek hop chain) instead of paying a fresh rank per
  /// range; each routed shard also gets a WILLNEED prefetch hint before its
  /// group is decoded.
  void DecompressRanges(std::span<const IndexRange> ranges,
                        int64_t* out) const {
    std::vector<IndexRange> group;  // shard-local coordinates
    const Shard* cur = nullptr;
    int64_t* group_out = nullptr;
    auto flush = [&] {
      if (cur == nullptr) return;
      cur->map.Advise(MmapFile::Advice::kWillNeed);
      cur->series->DecompressRanges(group, group_out);
      group.clear();
      cur = nullptr;
    };
    for (const IndexRange& r : ranges) {
      uint64_t from = r.from;
      uint64_t len = r.len;
      NEATS_DCHECK(from + len <= size());
      while (len > 0) {
        if (from < sealed_total_) {
          const Shard& s = ShardOf(from);
          const uint64_t take = std::min(len, s.first + s.count - from);
          if (&s != cur) {
            flush();
            cur = &s;
            group_out = out;
          }
          group.push_back({from - s.first, take});
          out += take;
          from += take;
          len -= take;
          continue;
        }
        flush();
        const uint64_t took = DecompressPrefix(from, len, out);
        from += took;
        len -= took;
        out += took;
      }
    }
    flush();
  }

  /// Exact sum over values[from, from + len), combined across shards.
  int64_t RangeSum(uint64_t from, uint64_t len) const {
    NEATS_DCHECK(from + len <= size());
    int64_t sum = 0;
    while (len > 0) {
      if (from < sealed_total_) {
        const Shard& s = ShardOf(from);
        const uint64_t take = std::min(len, s.first + s.count - from);
        sum += s.series->RangeSum(from - s.first, take);
        from += take;
        len -= take;
        continue;
      }
      for (uint64_t k = from; k < from + len; ++k) sum += AccessUnsealed(k);
      break;
    }
    return sum;
  }

  /// Approximate sum over values[from, from + len): Neats shards answer
  /// from the learned functions alone (with the error bounds added up),
  /// shards of codecs without an estimator — and not-yet-sealed values —
  /// contribute exactly.
  Neats::ApproximateAggregate ApproximateRangeSum(uint64_t from,
                                                  uint64_t len) const {
    NEATS_DCHECK(from + len <= size());
    Neats::ApproximateAggregate agg{0.0, 0.0};
    while (len > 0) {
      if (from < sealed_total_) {
        const Shard& s = ShardOf(from);
        const uint64_t take = std::min(len, s.first + s.count - from);
        Neats::ApproximateAggregate part =
            s.series->ApproximateRangeSum(from - s.first, take);
        agg.value += part.value;
        agg.error_bound += part.error_bound;
        from += take;
        len -= take;
        continue;
      }
      for (uint64_t k = from; k < from + len; ++k) {
        agg.value += static_cast<double>(AccessUnsealed(k));
      }
      break;
    }
    return agg;
  }

 private:
  /// One sealed shard: its slice of the global index space and the
  /// type-erased series serving it — owned right after an in-memory seal,
  /// or borrowing `map` when the codec opened the blob zero-copy.
  struct Shard {
    uint64_t first = 0;
    uint64_t count = 0;
    uint64_t blob_bytes = 0;  // serialized size (equals the blob file size)
    CodecId codec = CodecId::kNeats;
    std::unique_ptr<SealedSeries> series;
    MmapFile map;  // backs `series` when the shard is served from disk
  };

  /// A chunk handed to the background sealer. The raw values keep serving
  /// queries until the seal is promoted; the seal task writes only
  /// `sealed`, `codec`, `blob_bytes`, `error` and finally `done` (the
  /// publication flag). A task must never let an exception escape into the
  /// pool (ThreadPool tasks must not throw), so a failed seal — disk full
  /// while writing the blob, a compressor precondition — lands in `error`
  /// and is rethrown on the caller's thread at the next promotion, where
  /// the facade (neats::FlushStore) converts it into a Status.
  struct PendingChunk {
    uint64_t first = 0;
    size_t ordinal = 0;  // shard number -> blob file name
    std::vector<int64_t> values;
    std::unique_ptr<SealedSeries> sealed;
    CodecId codec = CodecId::kNeats;
    uint64_t blob_bytes = 0;
    std::string error;  // non-empty = the seal failed with this message
    std::atomic<bool> done{false};
  };

  /// Routing lookup: the sealed shard covering global index i.
  const Shard& ShardOf(uint64_t i) const {
    NEATS_DCHECK(i < sealed_total_);
    size_t lo = 0, hi = shards_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (shards_[mid].first <= i) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return shards_[lo];
  }

  /// Raw read past the sealed prefix (pending chunks, then the tail).
  int64_t AccessUnsealed(uint64_t i) const {
    NEATS_DCHECK(i >= sealed_total_ && i < size());
    for (const auto& c : pending_) {
      if (i < c->first + c->values.size()) return c->values[i - c->first];
    }
    return tail_[i - sealed_total_ - pending_total_];
  }

  /// Decompresses as much of [from, from + len) as one contiguous source
  /// (shard, pending chunk, or tail) covers; returns how many values.
  uint64_t DecompressPrefix(uint64_t from, uint64_t len, int64_t* out) const {
    if (from < sealed_total_) {
      const Shard& s = ShardOf(from);
      const uint64_t take = std::min(len, s.first + s.count - from);
      s.map.Advise(MmapFile::Advice::kWillNeed);
      s.series->DecompressRange(from - s.first, take, out);
      return take;
    }
    for (const auto& c : pending_) {
      if (from < c->first + c->values.size()) {
        const uint64_t at = from - c->first;
        const uint64_t take = std::min<uint64_t>(len, c->values.size() - at);
        std::copy_n(c->values.data() + at, take, out);
        return take;
      }
    }
    const uint64_t at = from - sealed_total_ - pending_total_;
    std::copy_n(tail_.data() + at, len, out);
    return len;
  }

  /// Compresses one chunk per the seal policy: kFixed uses the configured
  /// codec; kAuto tries every candidate and keeps the one with the smallest
  /// serialized blob (strictly smaller wins, ties keep the earlier
  /// candidate — deterministic for a fixed candidate order). Returns the
  /// sealed series together with its blob.
  struct SealResult {
    CodecId codec = CodecId::kNeats;
    std::unique_ptr<SealedSeries> series;
    std::vector<uint8_t> blob;
  };
  static SealResult SealValues(std::span<const int64_t> values,
                               const NeatsStoreOptions& options) {
    SealResult best;
    if (options.seal_policy == SealPolicy::kFixed) {
      best.codec = options.codec;
      best.series = CodecRegistry::Compress(options.codec, values,
                                            options.neats);
      best.series->Serialize(&best.blob);
      return best;
    }
    std::vector<CodecId> candidates = options.codec_candidates;
    if (candidates.empty()) candidates = CodecRegistry::All();
    std::vector<uint8_t> blob;
    for (CodecId id : candidates) {
      std::unique_ptr<SealedSeries> series =
          CodecRegistry::Compress(id, values, options.neats);
      series->Serialize(&blob);
      if (best.series == nullptr || blob.size() < best.blob.size()) {
        best.codec = id;
        best.series = std::move(series);
        best.blob = std::move(blob);
        blob = {};
      }
    }
    return best;
  }

  /// Wraps `values` (one chunk, non-empty) into a pending seal and submits
  /// it to the pool. The lambda captures everything it needs by value
  /// (plus the stable chunk pointer), so it never touches `this`.
  void SealChunk(std::vector<int64_t> values) {
    auto chunk = std::make_unique<PendingChunk>();
    chunk->first = sealed_total_ + pending_total_;
    chunk->ordinal = next_ordinal_++;
    chunk->values = std::move(values);
    pending_total_ += chunk->values.size();
    PendingChunk* raw = chunk.get();
    pending_.push_back(std::move(chunk));
    pool_->Submit([raw, opts = options_, dir = dir_] {
      try {
        SealResult sealed = SealValues(raw->values, opts);
        raw->codec = sealed.codec;
        raw->sealed = std::move(sealed.series);
        raw->blob_bytes = sealed.blob.size();
        if (!dir.empty()) {
          // Durable before publication: the blob bytes are on stable
          // storage before any manifest can name them.
          WriteFileDurable(
              dir + "/" + StoreManifest::ShardFileName(raw->ordinal),
              sealed.blob);
        }
      } catch (const std::exception& e) {
        raw->error = e.what();  // rethrown at promotion, on a caller thread
      }
      raw->done.store(true, std::memory_order_release);
    });
  }

  /// Moves completed seals (in order) from the pending queue into the
  /// routing index. Directory-backed shards whose codec supports borrowing
  /// are re-opened zero-copy from the blob the seal task just wrote, so
  /// they never hold the owned representation; everything else keeps the
  /// owned object from the seal. The raw chunk memory is released here.
  void PromoteSealed() {
    while (!pending_.empty() &&
           pending_.front()->done.load(std::memory_order_acquire)) {
      PendingChunk& c = *pending_.front();
      // A failed seal surfaces here, on the caller's thread, as the same
      // neats::Error contract every loader uses (the facade turns it into
      // a Status). The chunk stays pending — its raw values keep serving
      // queries, and every later Append/Flush re-reports the failure.
      if (!c.error.empty()) {
        throw Error("background seal failed: " + c.error);
      }
      Shard s;
      s.first = c.first;
      s.count = c.values.size();
      s.blob_bytes = c.blob_bytes;
      s.codec = c.codec;
      if (!dir_.empty() && CodecRegistry::ZeroCopyView(c.codec)) {
        s.map = MmapFile::Open(dir_ + "/" +
                               StoreManifest::ShardFileName(c.ordinal));
        s.series = CodecRegistry::Open(c.codec, s.map.bytes(),
                                       /*allow_view=*/true);
      } else {
        s.series = std::move(c.sealed);
      }
      sealed_total_ += s.count;
      pending_total_ -= s.count;
      shards_.push_back(std::move(s));
      pending_.pop_front();
    }
  }

  void WriteManifest() const {
    StoreManifest manifest;
    manifest.shard_size = options_.shard_size;
    manifest.shards.reserve(shards_.size());
    for (const Shard& s : shards_) {
      manifest.shards.push_back({s.first, s.count, s.blob_bytes, s.codec});
    }
    std::vector<uint8_t> bytes;
    manifest.Serialize(&bytes);
    // Write-to-temp + rename: a process crash mid-Flush can never destroy
    // the previous manifest — until the atomic rename lands, OpenDir keeps
    // routing by the old file (which only names fully-written blobs, since
    // shards are written and fsync'd before the manifest). The temp file is
    // fsync'd before the rename and the directory after it, so a completed
    // Flush also survives power loss (ROADMAP, scale-out durability).
    const std::string path = dir_ + "/" + StoreManifest::FileName();
    const std::string tmp = path + ".tmp";
    WriteFileDurable(tmp, bytes);
    std::filesystem::rename(tmp, path);
    SyncDir(dir_);
  }

  NeatsStoreOptions options_;
  std::string dir_;  // empty = in-memory store

  std::vector<Shard> shards_;  // sealed + promoted, contiguous from index 0
  uint64_t sealed_total_ = 0;  // values covered by shards_
  std::deque<std::unique_ptr<PendingChunk>> pending_;  // seals in flight
  uint64_t pending_total_ = 0;                         // their value count
  std::vector<int64_t> tail_;  // write-ahead hot tail (raw)
  size_t next_ordinal_ = 0;    // next shard blob number

  // Declared last so it is destroyed first: no worker can outlive the
  // chunks its tasks reference. (~NeatsStore drains explicitly anyway.)
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace neats
