// Synthetic stand-ins for the paper's 16 real-world datasets (Sec. IV-A1).
//
// The originals (NEON sensor feeds, INFORE stock ticks, a 12-lead ECG
// archive, Geolife GPS traces, meteoblue exports, ...) are not available
// offline, so each dataset code gets a seeded generator reproducing the two
// properties that drive every compressor in this study: the local trend /
// noise structure of the signal, and the decimal precision of its values
// (values are fixed-precision decimals scaled to integers by 10^digits,
// exactly like the paper's preprocessing). Dataset sizes default to a
// laptop-scale fraction of the originals, preserving their relative order.

#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace neats {

/// A generated dataset: scaled integer values plus the double view that a
/// decimal parser would produce for the same fixed-precision text.
struct Dataset {
  std::string code;
  std::string name;
  int fractional_digits = 0;
  uint64_t seed = 0;             // the generator seed this data came from,
                                 // quoted by scenario/bench repro lines
  std::vector<int64_t> values;   // decimal value * 10^digits
  std::vector<double> doubles;   // values[i] / 10^digits (correctly rounded)
};

/// Descriptors of the paper's 16 datasets, in Table III order (by size).
struct DatasetSpec {
  const char* code;
  const char* name;
  int digits;
  size_t default_n;  // paper size / ~1000, min 4096
};

inline constexpr DatasetSpec kDatasetSpecs[] = {
    {"IT", "IR-bio-temp", 2, 477000},
    {"US", "Stocks-USA", 2, 282000},
    {"ECG", "Electrocardiogram", 3, 226000},
    {"WD", "Wind-direction", 2, 199000},
    {"AP", "Air-pressure", 5, 138000},
    {"UK", "Stocks-UK", 1, 59000},
    {"GE", "Stocks-DE", 3, 43000},
    {"LAT", "Geolife-latitude", 4, 25000},
    {"LON", "Geolife-longitude", 4, 25000},
    {"DP", "Dewpoint-temp", 3, 5000},
    {"CT", "City-temp", 1, 4096},
    {"DU", "PM10-dust", 3, 4096},
    {"BT", "Basel-temp", 9, 4096},
    {"BW", "Basel-wind", 7, 4096},
    {"BM", "Bird-migration", 5, 4096},
    {"BP", "Bitcoin-price", 4, 4096},
};

inline constexpr size_t kNumDatasets = std::size(kDatasetSpecs);

namespace datasets_internal {

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}
  double Uniform() { return dist_(gen_); }
  double Normal() {
    return norm_(gen_);
  }
  uint64_t Next() { return gen_(); }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::normal_distribution<double> norm_{0.0, 1.0};
};

/// Diurnal + seasonal sensor signal with AR(1) noise and flat dropouts.
inline double SensorTemp(Rng& rng, size_t i, double* ar_state, double daily,
                         double seasonal_amp, double noise_scale) {
  double t = static_cast<double>(i);
  double seasonal = seasonal_amp * std::sin(2 * M_PI * t / (daily * 365));
  double diurnal = 8.0 * std::sin(2 * M_PI * t / daily - 1.3);
  *ar_state = 0.98 * *ar_state + noise_scale * rng.Normal();
  return 15.0 + seasonal + diurnal + *ar_state;
}

}  // namespace datasets_internal

/// Generates the dataset with the given code. `n` = 0 uses the spec default.
inline Dataset MakeDataset(std::string_view code, size_t n = 0,
                           uint64_t seed = 42) {
  using datasets_internal::Rng;
  const DatasetSpec* spec = nullptr;
  for (const auto& s : kDatasetSpecs) {
    if (code == s.code) spec = &s;
  }
  NEATS_REQUIRE(spec != nullptr, "unknown dataset code");
  if (n == 0) n = spec->default_n;

  Dataset ds;
  ds.code = spec->code;
  ds.name = spec->name;
  ds.fractional_digits = spec->digits;
  ds.seed = seed;
  ds.values.reserve(n);

  Rng rng(seed ^ std::hash<std::string_view>{}(code));
  const double scale = std::pow(10.0, spec->digits);
  std::vector<double> raw(n);

  if (code == "IT") {  // infrared biological temperature, 1-minute cadence
    double ar = 0;
    size_t dropout_left = 0;
    double held = 0;
    for (size_t i = 0; i < n; ++i) {
      double v = datasets_internal::SensorTemp(rng, i, &ar, 1440, 12.0, 0.05);
      if (dropout_left > 0) {
        --dropout_left;
        v = held;
      } else if (rng.Uniform() < 0.0005) {
        dropout_left = 20 + rng.Next() % 200;
        held = v;
      }
      raw[i] = v;
    }
  } else if (code == "US" || code == "UK" || code == "GE") {
    // Stock ticks: geometric random walk with volatility clustering, jumps,
    // and runs of unchanged prices (quiet market).
    double price = code == "US" ? 150.0 : (code == "UK" ? 65.0 : 92.0);
    double vol = 0.0004;
    for (size_t i = 0; i < n; ++i) {
      vol = 0.97 * vol + 0.03 * 0.0004 + 0.00015 * std::abs(rng.Normal());
      if (rng.Uniform() < 0.35) {
        // no trade: price unchanged
      } else {
        price *= std::exp(vol * rng.Normal());
        if (rng.Uniform() < 0.0008) price *= std::exp(0.01 * rng.Normal());
      }
      raw[i] = price;
    }
  } else if (code == "ECG") {
    // PQRST-like cycles with RR variability and baseline wander (millivolts).
    double phase = 0;
    double rr = 280;
    for (size_t i = 0; i < n; ++i) {
      phase += 1.0;
      if (phase >= rr) {
        phase -= rr;
        rr = 260 + 40 * rng.Uniform();
      }
      double p = phase / rr;  // 0..1 within the beat
      double v = 0;
      auto bump = [&](double center, double width, double amp) {
        double d = (p - center) / width;
        v += amp * std::exp(-d * d);
      };
      bump(0.18, 0.025, 0.15);   // P
      bump(0.405, 0.008, -0.12); // Q
      bump(0.42, 0.010, 1.1);    // R
      bump(0.44, 0.010, -0.25);  // S
      bump(0.62, 0.045, 0.3);    // T
      v += 0.05 * std::sin(2 * M_PI * static_cast<double>(i) / 2400.0);
      v += 0.004 * rng.Normal();
      raw[i] = v;
    }
  } else if (code == "WD") {
    // Wind direction in degrees: a slow prevailing direction with large
    // per-sample gust jitter and wrap-around — notoriously noisy.
    double dir = 200;
    for (size_t i = 0; i < n; ++i) {
      dir += 2.5 * rng.Normal();
      if (rng.Uniform() < 0.002) dir += 90 * (rng.Uniform() - 0.5);
      double sample = dir + 25.0 * rng.Normal();
      sample = std::fmod(std::fmod(sample, 360.0) + 360.0, 360.0);
      raw[i] = sample;
    }
  } else if (code == "AP") {
    // Sea-level barometric pressure in hPa, extremely smooth, 5 decimals.
    double p = 1013.25;
    double trend = 0;
    for (size_t i = 0; i < n; ++i) {
      trend = 0.999 * trend + 0.00002 * rng.Normal();
      p += trend + 0.00008 * rng.Normal();
      raw[i] = p;
    }
  } else if (code == "LAT" || code == "LON") {
    // GPS trajectories near Beijing: stops and smooth movement legs.
    double coord = code == "LAT" ? 39.9042 : 116.4074;
    double velocity = 0;
    size_t leg_left = 0;
    bool moving = false;
    for (size_t i = 0; i < n; ++i) {
      if (leg_left == 0) {
        moving = rng.Uniform() < 0.6;
        leg_left = 100 + rng.Next() % 2000;
        velocity = moving ? 3e-4 * rng.Normal() : 0.0;
      }
      --leg_left;
      coord += velocity + (moving ? 4e-5 : 6e-6) * rng.Normal();
      raw[i] = coord;
    }
  } else if (code == "DP") {
    double ar = 0;
    for (size_t i = 0; i < n; ++i) {
      raw[i] = datasets_internal::SensorTemp(rng, i, &ar, 48, 9.0, 0.12) - 8.0;
    }
  } else if (code == "CT") {
    // Daily city temperatures, many cities concatenated (level jumps).
    double base = 15;
    size_t city_left = 0;
    for (size_t i = 0; i < n; ++i) {
      if (city_left == 0) {
        city_left = 365 * (1 + rng.Next() % 3);
        base = -5 + 35 * rng.Uniform();
      }
      --city_left;
      double t = static_cast<double>(i % 365);
      raw[i] = base + 12 * std::sin(2 * M_PI * t / 365) + 3.5 * rng.Normal();
    }
  } else if (code == "DU") {
    // PM10: low baseline with lognormal pollution episodes.
    double level = 12;
    double episode = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Uniform() < 0.003) episode += std::exp(1.5 + rng.Normal());
      episode *= 0.97;
      level = 0.995 * level + 0.005 * 12 + 0.4 * rng.Normal();
      raw[i] = std::max(0.5, level + episode);
    }
  } else if (code == "BT") {
    // Basel temperature with 9 (!) fractional digits: the precision itself
    // is the compression challenge.
    double ar = 0;
    for (size_t i = 0; i < n; ++i) {
      raw[i] = datasets_internal::SensorTemp(rng, i, &ar, 24, 10.0, 0.35);
    }
  } else if (code == "BW") {
    // Basel wind speed, 7 digits: Weibull-like gusts.
    double g = 4;
    for (size_t i = 0; i < n; ++i) {
      g = 0.9 * g + 0.1 * 4.0 + 1.1 * std::abs(rng.Normal());
      raw[i] = g * (0.8 + 0.4 * rng.Uniform());
    }
  } else if (code == "BM") {
    // Bird migration: long smooth arcs with stopovers.
    double pos = 12.5;
    double v = 0;
    size_t phase_left = 0;
    bool flying = false;
    for (size_t i = 0; i < n; ++i) {
      if (phase_left == 0) {
        flying = !flying;
        phase_left = flying ? 300 + rng.Next() % 600 : 100 + rng.Next() % 400;
        v = flying ? 0.001 * (0.5 + rng.Uniform()) : 0.0;
      }
      --phase_left;
      pos += v + (flying ? 1e-4 : 2e-5) * rng.Normal();
      raw[i] = pos;
    }
  } else {  // BP: bitcoin price, jumpy geometric walk
    double price = 30000;
    double vol = 0.002;
    for (size_t i = 0; i < n; ++i) {
      vol = 0.95 * vol + 0.05 * 0.002 + 0.0008 * std::abs(rng.Normal());
      price *= std::exp(vol * rng.Normal());
      if (rng.Uniform() < 0.004) price *= std::exp(0.02 * rng.Normal());
      raw[i] = price;
    }
  }

  ds.doubles.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t scaled = static_cast<int64_t>(std::llround(raw[i] * scale));
    ds.values.push_back(scaled);
    // The double a decimal parser would produce for this fixed-precision
    // value (correctly rounded quotient).
    ds.doubles[i] = static_cast<double>(scaled) / scale;
  }
  return ds;
}

/// All dataset codes in Table III order.
inline std::vector<std::string> AllDatasetCodes() {
  std::vector<std::string> codes;
  for (const auto& s : kDatasetSpecs) codes.push_back(s.code);
  return codes;
}

}  // namespace neats
