// Byte-codec policies binding the general-purpose LZ compressors to the
// block-wise wrapper. The three effort levels reproduce the anchors of the
// paper's general-purpose family:
//   LzHufStrongPolicy — slow, strongest ratio   (role of Xz / Brotli)
//   LzHufFastPolicy   — balanced                (role of Zstd)
//   FastLzPolicy      — fastest, weakest ratio  (role of Lz4 / Snappy)

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/fastlz.hpp"
#include "baselines/lzhuf.hpp"

namespace neats {

struct FastLzPolicy {
  static constexpr const char* kName = "FastLz";
  static std::vector<uint8_t> CompressBytes(std::span<const uint8_t> in) {
    return FastLz::CompressBytes(in);
  }
  static void DecompressBytes(std::span<const uint8_t> in,
                              std::span<uint8_t> out) {
    FastLz::DecompressBytes(in, out);
  }
};

struct LzHufStrongPolicy {
  static constexpr const char* kName = "LzHuf-strong";
  static std::vector<uint8_t> CompressBytes(std::span<const uint8_t> in) {
    return LzHuf::CompressBytes(in, LzHuf::StrongOptions());
  }
  static void DecompressBytes(std::span<const uint8_t> in,
                              std::span<uint8_t> out) {
    LzHuf::DecompressBytes(in, out);
  }
};

struct LzHufFastPolicy {
  static constexpr const char* kName = "LzHuf-fast";
  static std::vector<uint8_t> CompressBytes(std::span<const uint8_t> in) {
    return LzHuf::CompressBytes(in, LzHuf::FastOptions());
  }
  static void DecompressBytes(std::span<const uint8_t> in,
                              std::span<uint8_t> out) {
    LzHuf::DecompressBytes(in, out);
  }
};

}  // namespace neats
