// Directly Addressable Codes (Brisaboa, Ladra & Navarro, IP&M 2013).
//
// A variable-length code with direct access: each value is split into b-bit
// chunks, level l stores the l-th chunk of every value that has one, and a
// per-level bitvector marks whether the value continues into level l+1.
// Access walks the levels with one Rank1 per level. Signed inputs are
// ZigZag-mapped first.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "succinct/bit_vector.hpp"
#include "succinct/packed_array.hpp"

namespace neats {

/// DAC-compressed sequence of signed 64-bit integers.
class Dac {
 public:
  Dac() = default;

  /// Compresses with chunks of `chunk_bits` bits (default one byte).
  static Dac Compress(std::span<const int64_t> values, int chunk_bits = 8) {
    Dac out;
    out.n_ = values.size();
    out.chunk_bits_ = chunk_bits;
    if (values.empty()) return out;

    int max_levels = (64 + chunk_bits - 1) / chunk_bits;
    std::vector<std::vector<uint64_t>> chunks(
        static_cast<size_t>(max_levels));
    std::vector<BitVector> cont(static_cast<size_t>(max_levels));

    // Column-wise construction: process level by level over the survivors.
    std::vector<uint64_t> survivors(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      survivors[i] = ZigZagEncode(values[i]);
    }
    int level = 0;
    while (!survivors.empty() && level < max_levels) {
      std::vector<uint64_t> next;
      for (uint64_t v : survivors) {
        chunks[static_cast<size_t>(level)].push_back(v & LowMask(chunk_bits));
        uint64_t rest = chunk_bits >= 64 ? 0 : v >> chunk_bits;
        bool more = rest != 0 && level + 1 < max_levels;
        cont[static_cast<size_t>(level)].PushBack(more);
        if (more) next.push_back(rest);
      }
      survivors = std::move(next);
      ++level;
    }
    out.levels_ = level;
    out.chunks_.reserve(static_cast<size_t>(level));
    out.cont_.reserve(static_cast<size_t>(level));
    for (int l = 0; l < level; ++l) {
      out.chunks_.emplace_back(chunks[static_cast<size_t>(l)], chunk_bits);
      out.cont_.emplace_back(std::move(cont[static_cast<size_t>(l)]));
    }
    return out;
  }

  /// Direct access to value i: one Rank1 per traversed level.
  int64_t Access(size_t i) const {
    uint64_t v = 0;
    int shift = 0;
    size_t idx = i;
    for (int l = 0; l < levels_; ++l) {
      v |= chunks_[static_cast<size_t>(l)][idx] << shift;
      if (!cont_[static_cast<size_t>(l)].Get(idx)) break;
      idx = static_cast<size_t>(cont_[static_cast<size_t>(l)].Rank1(idx));
      shift += chunk_bits_;
    }
    return ZigZagDecode(v);
  }

  /// Sequential full decompression (per-level cursors, no Rank needed).
  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    std::vector<size_t> cursor(static_cast<size_t>(levels_), 0);
    for (size_t i = 0; i < n_; ++i) {
      uint64_t v = 0;
      int shift = 0;
      for (int l = 0; l < levels_; ++l) {
        size_t idx = cursor[static_cast<size_t>(l)]++;
        v |= chunks_[static_cast<size_t>(l)][idx] << shift;
        if (!cont_[static_cast<size_t>(l)].Get(idx)) break;
        shift += chunk_bits_;
      }
      (*out)[i] = ZigZagDecode(v);
    }
  }

  size_t size() const { return n_; }

  size_t SizeInBits() const {
    size_t bits = 3 * 64;
    for (const auto& c : chunks_) bits += c.SizeInBits();
    for (const auto& c : cont_) bits += c.SizeInBits();
    return bits;
  }

 private:
  size_t n_ = 0;
  int chunk_bits_ = 8;
  int levels_ = 0;
  std::vector<PackedArray> chunks_;
  std::vector<RankSelect> cont_;
};

}  // namespace neats
