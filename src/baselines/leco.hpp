// LeCo-style learned compression (after Liu, Zeng & Zhang, SIGMOD 2024).
//
// LeCo fits a regression model per fragment and stores fixed-width residuals;
// fragments come from a *heuristic* partitioner (greedy split on an estimated
// compression-ratio gain, then merge of neighbouring fragments), in contrast
// to NeaTS's error-bounded optimal fits and shortest-path partitioning.
//
// This implementation follows that recipe: least-squares linear fit per
// fragment, residuals bit-packed with a per-fragment frame of reference,
// greedy growth in steps while the marginal cost decreases, then a merge
// pass. Random access reads one fragment header and one residual.

#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/packed_array.hpp"

namespace neats {

/// LeCo-style compressed sequence of signed 64-bit integers.
class Leco {
 public:
  Leco() = default;

  static Leco Compress(std::span<const int64_t> values) {
    Leco out;
    out.n_ = values.size();
    if (values.empty()) return out;

    // --- Phase 1: greedy growth in steps of kStep values. ---
    std::vector<uint64_t> boundaries;  // fragment starts
    uint64_t start = 0;
    while (start < values.size()) {
      boundaries.push_back(start);
      uint64_t end = std::min<uint64_t>(start + kStep, values.size());
      double best_bpv = CostOf(values, start, end) /
                        static_cast<double>(end - start);
      while (end < values.size() && end - start < kMaxFragment) {
        uint64_t trial = std::min<uint64_t>(end + kStep, values.size());
        double bpv = CostOf(values, start, trial) /
                     static_cast<double>(trial - start);
        if (bpv > best_bpv * 1.02) break;  // marginal cost grows: split here
        best_bpv = std::min(best_bpv, bpv);
        end = trial;
      }
      start = end;
    }

    // --- Phase 2: merge neighbouring fragments when it pays off. ---
    bool merged = true;
    int passes = 0;
    while (merged && passes++ < 4) {
      merged = false;
      std::vector<uint64_t> next;
      size_t i = 0;
      while (i < boundaries.size()) {
        uint64_t a = boundaries[i];
        uint64_t a_end = i + 1 < boundaries.size() ? boundaries[i + 1]
                                                   : values.size();
        if (i + 1 < boundaries.size()) {
          uint64_t b_end = i + 2 < boundaries.size() ? boundaries[i + 2]
                                                     : values.size();
          double separate = CostOf(values, a, a_end) + CostOf(values, a_end, b_end);
          double joined = CostOf(values, a, b_end);
          if (joined <= separate) {
            next.push_back(a);
            i += 2;
            merged = true;
            continue;
          }
        }
        next.push_back(a);
        ++i;
      }
      boundaries = std::move(next);
    }

    out.Build(values, boundaries);
    return out;
  }

  size_t size() const { return n_; }
  size_t num_fragments() const { return slopes_.size(); }

  /// Random access: Elias-Fano rank to find the fragment, then one residual.
  int64_t Access(size_t i) const {
    size_t f = starts_.Rank(i) - 1;
    uint64_t start = starts_.Access(f);
    int bits = static_cast<int>(widths_[f]);
    uint64_t o = offsets_.Access(f) +
                 (i - start) * static_cast<uint64_t>(bits);
    int64_t r = static_cast<int64_t>(ReadBits(residual_words_.data(), o, bits));
    return PredictAt(f, i - start) + bases_[f] + r;
  }

  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    size_t m = slopes_.size();
    for (size_t f = 0; f < m; ++f) {
      uint64_t start = starts_.Access(f);
      uint64_t end = f + 1 < m ? starts_.Access(f + 1) : n_;
      int bits = static_cast<int>(widths_[f]);
      uint64_t o = offsets_.Access(f);
      int64_t base = bases_[f];
      double slope = slopes_[f], intercept = intercepts_[f];
      for (uint64_t k = start; k < end; ++k, o += static_cast<uint64_t>(bits)) {
        int64_t pred = static_cast<int64_t>(
            std::floor(slope * static_cast<double>(k - start) + intercept));
        int64_t r = static_cast<int64_t>(
            ReadBits(residual_words_.data(), o, bits));
        (*out)[k] = pred + base + r;
      }
    }
  }

  size_t SizeInBits() const {
    return 2 * 64 + starts_.SizeInBits() + widths_.SizeInBits() +
           offsets_.SizeInBits() + residual_words_.size() * 64 +
           slopes_.size() * (64 + 64 + 64) + 64;
  }

 private:
  static constexpr uint64_t kStep = 256;
  static constexpr uint64_t kMaxFragment = 8192;  // caps the O(len^2) growth

  struct Fit {
    double slope, intercept;
    int64_t min_r, max_r;
  };

  /// Least-squares fit plus residual range on [start, end).
  static Fit FitRangeLs(std::span<const int64_t> values, uint64_t start,
                        uint64_t end) {
    const uint64_t len = end - start;
    // Closed-form least squares over x = 0..len-1.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (uint64_t k = start; k < end; ++k) {
      double x = static_cast<double>(k - start);
      double y = static_cast<double>(values[k]);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    double nd = static_cast<double>(len);
    double denom = nd * sxx - sx * sx;
    Fit fit;
    fit.slope = denom == 0 ? 0 : (nd * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / nd;
    fit.min_r = INT64_MAX;
    fit.max_r = INT64_MIN;
    for (uint64_t k = start; k < end; ++k) {
      int64_t pred = static_cast<int64_t>(std::floor(
          fit.slope * static_cast<double>(k - start) + fit.intercept));
      int64_t r = values[k] - pred;
      fit.min_r = std::min(fit.min_r, r);
      fit.max_r = std::max(fit.max_r, r);
    }
    return fit;
  }

  /// Estimated bit cost of one fragment (header + packed residuals).
  static double CostOf(std::span<const int64_t> values, uint64_t start,
                       uint64_t end) {
    Fit fit = FitRangeLs(values, start, end);
    int bits = BitWidth(static_cast<uint64_t>(fit.max_r - fit.min_r));
    return kHeaderBitsPerFragment +
           static_cast<double>(end - start) * static_cast<double>(bits);
  }

  static constexpr double kHeaderBitsPerFragment = 3 * 64 + 48;

  void Build(std::span<const int64_t> values,
             const std::vector<uint64_t>& boundaries) {
    size_t m = boundaries.size();
    std::vector<uint64_t> starts(boundaries), widths(m), offsets(m + 1);
    BitWriter residuals;
    slopes_.resize(m);
    intercepts_.resize(m);
    bases_.resize(m);
    for (size_t f = 0; f < m; ++f) {
      uint64_t start = boundaries[f];
      uint64_t end = f + 1 < m ? boundaries[f + 1] : values.size();
      Fit fit = FitRangeLs(values, start, end);
      int bits = BitWidth(static_cast<uint64_t>(fit.max_r - fit.min_r));
      slopes_[f] = fit.slope;
      intercepts_[f] = fit.intercept;
      bases_[f] = fit.min_r;
      widths[f] = static_cast<uint64_t>(bits);
      offsets[f] = residuals.bit_size();
      for (uint64_t k = start; k < end; ++k) {
        int64_t pred = static_cast<int64_t>(std::floor(
            fit.slope * static_cast<double>(k - start) + fit.intercept));
        residuals.Append(static_cast<uint64_t>(values[k] - pred - fit.min_r),
                         bits);
      }
    }
    offsets[m] = residuals.bit_size();
    starts_ = EliasFano(starts, n_);
    widths_ = PackedArray::FromValues(widths);
    offsets_ = EliasFano(offsets, offsets[m] + 1);
    residual_words_ = residuals.TakeWords();
  }

  int64_t PredictAt(size_t f, uint64_t local) const {
    return static_cast<int64_t>(std::floor(
        slopes_[f] * static_cast<double>(local) + intercepts_[f]));
  }

  size_t n_ = 0;
  EliasFano starts_;
  PackedArray widths_;
  EliasFano offsets_;
  std::vector<uint64_t> residual_words_;
  std::vector<double> slopes_, intercepts_;
  std::vector<int64_t> bases_;
};

}  // namespace neats
