// LeCo-style learned compression (after Liu, Zeng & Zhang, SIGMOD 2024).
//
// LeCo fits a regression model per fragment and stores fixed-width residuals;
// fragments come from a *heuristic* partitioner (greedy split on an estimated
// compression-ratio gain, then merge of neighbouring fragments), in contrast
// to NeaTS's error-bounded optimal fits and shortest-path partitioning.
//
// This implementation follows that recipe: least-squares linear fit per
// fragment, residuals bit-packed with a per-fragment frame of reference,
// greedy growth in steps while the marginal cost decreases, then a merge
// pass. Random access reads one fragment header and one residual.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/elias_fano.hpp"
#include "succinct/packed_array.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// LeCo-style compressed sequence of signed 64-bit integers.
class Leco {
 public:
  Leco() = default;

  static Leco Compress(std::span<const int64_t> values) {
    Leco out;
    out.n_ = values.size();
    if (values.empty()) return out;

    // --- Phase 1: greedy growth in steps of kStep values. ---
    std::vector<uint64_t> boundaries;  // fragment starts
    uint64_t start = 0;
    while (start < values.size()) {
      boundaries.push_back(start);
      uint64_t end = std::min<uint64_t>(start + kStep, values.size());
      double best_bpv = CostOf(values, start, end) /
                        static_cast<double>(end - start);
      while (end < values.size() && end - start < kMaxFragment) {
        uint64_t trial = std::min<uint64_t>(end + kStep, values.size());
        double bpv = CostOf(values, start, trial) /
                     static_cast<double>(trial - start);
        if (bpv > best_bpv * 1.02) break;  // marginal cost grows: split here
        best_bpv = std::min(best_bpv, bpv);
        end = trial;
      }
      start = end;
    }

    // --- Phase 2: merge neighbouring fragments when it pays off. ---
    bool merged = true;
    int passes = 0;
    while (merged && passes++ < 4) {
      merged = false;
      std::vector<uint64_t> next;
      size_t i = 0;
      while (i < boundaries.size()) {
        uint64_t a = boundaries[i];
        uint64_t a_end = i + 1 < boundaries.size() ? boundaries[i + 1]
                                                   : values.size();
        if (i + 1 < boundaries.size()) {
          uint64_t b_end = i + 2 < boundaries.size() ? boundaries[i + 2]
                                                     : values.size();
          double separate = CostOf(values, a, a_end) + CostOf(values, a_end, b_end);
          double joined = CostOf(values, a, b_end);
          if (joined <= separate) {
            next.push_back(a);
            i += 2;
            merged = true;
            continue;
          }
        }
        next.push_back(a);
        ++i;
      }
      boundaries = std::move(next);
    }

    out.Build(values, boundaries);
    return out;
  }

  size_t size() const { return n_; }
  size_t num_fragments() const { return slopes_.size(); }

  /// Random access: Elias-Fano rank to find the fragment, then one residual.
  int64_t Access(size_t i) const {
    size_t f = starts_.Rank(i) - 1;
    uint64_t start = starts_.Access(f);
    int bits = static_cast<int>(widths_[f]);
    uint64_t o = offsets_.Access(f) +
                 (i - start) * static_cast<uint64_t>(bits);
    uint64_t r = ReadBits(residual_words_.data(), o, bits);
    return Reassemble(PredictAt(f, i - start), bases_[f], r);
  }

  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    if (n_ > 0) DecompressRange(0, n_, out->data());
  }

  /// Decompresses values[from, from + len) into out: one rank to find the
  /// first fragment, then a fragment-at-a-time scan (no per-value rank).
  void DecompressRange(size_t from, size_t len, int64_t* out) const {
    if (len == 0) return;
    NEATS_DCHECK(from + len <= n_);
    const size_t m = slopes_.size();
    size_t f = starts_.Rank(from) - 1;
    size_t produced = 0;
    while (produced < len) {
      uint64_t start = starts_.Access(f);
      uint64_t end = f + 1 < m ? starts_.Access(f + 1) : n_;
      uint64_t lo = std::max<uint64_t>(from + produced, start);
      uint64_t hi = std::min<uint64_t>(from + len, end);
      int bits = static_cast<int>(widths_[f]);
      uint64_t o = offsets_.Access(f) +
                   (lo - start) * static_cast<uint64_t>(bits);
      int64_t base = bases_[f];
      double slope = slopes_[f], intercept = intercepts_[f];
      for (uint64_t k = lo; k < hi; ++k, o += static_cast<uint64_t>(bits)) {
        int64_t pred = FloorToInt64(
            slope * static_cast<double>(k - start) + intercept);
        out[produced++] =
            Reassemble(pred, base, ReadBits(residual_words_.data(), o, bits));
      }
      ++f;
    }
  }

  size_t SizeInBits() const {
    return 2 * 64 + starts_.SizeInBits() + widths_.SizeInBits() +
           offsets_.SizeInBits() + residual_words_.size() * 64 +
           slopes_.size() * (64 + 64 + 64) + 64;
  }

  /// Serializes in the flat word grammar of format v2/v3 (docs/FORMAT.md):
  /// magic "NEATSLC", version, n, m, the succinct sections, then the
  /// residual words and per-fragment model arrays. Every section is word
  /// aligned, so View opens the blob zero-copy.
  void Serialize(std::vector<uint8_t>* out) const {
    out->clear();
    WordWriter w(out);
    w.Put(kMagic);
    w.Put(kFormatVersion);
    w.Put(n_);
    w.Put(slopes_.size());
    if (!slopes_.empty()) {
      starts_.Serialize(w);
      widths_.Serialize(w);
      offsets_.Serialize(w);
    }
    w.PutArray(residual_words_);
    w.PutArray(slopes_);
    w.PutArray(intercepts_);
    w.PutArray(bases_);
  }

  /// Rebuilds from Serialize output into owned storage.
  static Leco Deserialize(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/false);
  }

  /// Opens a blob zero-copy; `bytes` must be 8-byte aligned and outlive the
  /// returned object.
  static Leco View(std::span<const uint8_t> bytes) {
    return Load(bytes, /*borrow=*/true);
  }

 private:
  /// Shared body of Deserialize and View, hardened like the NeaTS loaders:
  /// the fragment geometry is cross-checked (contiguous starts, offset
  /// deltas equal to length*width, residual words backing the final offset)
  /// so Access can trust the packed arrays without per-query bounds checks.
  static Leco Load(std::span<const uint8_t> bytes, bool borrow) {
    WordReader r(bytes, borrow);
    NEATS_REQUIRE(r.Get() == kMagic, "not a LeCo blob");
    NEATS_REQUIRE(r.Get() == kFormatVersion,
                  "unsupported LeCo format version");
    Leco out;
    out.n_ = r.Get();
    size_t m = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56) && m <= out.n_ &&
                      (m > 0 || out.n_ == 0),
                  "corrupt LeCo blob");
    uint64_t total_bits = 0;
    if (m > 0) {
      out.starts_ = EliasFano::Load(r);
      out.widths_ = PackedArray::Load(r);
      out.offsets_ = EliasFano::Load(r);
      NEATS_REQUIRE(out.starts_.size() == m && out.starts_.Access(0) == 0 &&
                        out.starts_.Access(m - 1) < out.n_ &&
                        out.widths_.size() == m &&
                        out.offsets_.size() == m + 1 &&
                        out.offsets_.Access(0) == 0,
                    "corrupt LeCo blob");
      uint64_t prev_start = 0, prev_off = 0;
      for (size_t f = 1; f <= m; ++f) {
        uint64_t start = f < m ? out.starts_.Access(f) : out.n_;
        uint64_t off = out.offsets_.Access(f);
        uint64_t width = out.widths_[f - 1];
        NEATS_REQUIRE(start > prev_start && off >= prev_off && width <= 64 &&
                          off - prev_off == (start - prev_start) * width,
                      "corrupt LeCo blob");
        prev_start = start;
        prev_off = off;
      }
      total_bits = out.offsets_.Access(m);
    }
    out.residual_words_ = r.GetArray<uint64_t>();
    NEATS_REQUIRE(out.residual_words_.size() == CeilDiv(total_bits, 64),
                  "corrupt LeCo blob");
    out.slopes_ = r.GetArray<double>();
    out.intercepts_ = r.GetArray<double>();
    out.bases_ = r.GetArray<int64_t>();
    NEATS_REQUIRE(out.slopes_.size() == m && out.intercepts_.size() == m &&
                      out.bases_.size() == m,
                  "corrupt LeCo blob");
    return out;
  }
  static constexpr uint64_t kStep = 256;
  static constexpr uint64_t kMaxFragment = 8192;  // caps the O(len^2) growth

  struct Fit {
    double slope, intercept;
    int64_t min_r, max_r;
  };

  /// Least-squares fit plus residual range on [start, end).
  static Fit FitRangeLs(std::span<const int64_t> values, uint64_t start,
                        uint64_t end) {
    const uint64_t len = end - start;
    // Closed-form least squares over x = 0..len-1.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (uint64_t k = start; k < end; ++k) {
      double x = static_cast<double>(k - start);
      double y = static_cast<double>(values[k]);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    double nd = static_cast<double>(len);
    double denom = nd * sxx - sx * sx;
    Fit fit;
    fit.slope = denom == 0 ? 0 : (nd * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / nd;
    fit.min_r = INT64_MAX;
    fit.max_r = INT64_MIN;
    for (uint64_t k = start; k < end; ++k) {
      int64_t pred = static_cast<int64_t>(std::floor(
          fit.slope * static_cast<double>(k - start) + fit.intercept));
      int64_t r = values[k] - pred;
      fit.min_r = std::min(fit.min_r, r);
      fit.max_r = std::max(fit.max_r, r);
    }
    return fit;
  }

  /// Estimated bit cost of one fragment (header + packed residuals).
  static double CostOf(std::span<const int64_t> values, uint64_t start,
                       uint64_t end) {
    Fit fit = FitRangeLs(values, start, end);
    int bits = BitWidth(static_cast<uint64_t>(fit.max_r - fit.min_r));
    return kHeaderBitsPerFragment +
           static_cast<double>(end - start) * static_cast<double>(bits);
  }

  static constexpr double kHeaderBitsPerFragment = 3 * 64 + 48;

  void Build(std::span<const int64_t> values,
             const std::vector<uint64_t>& boundaries) {
    size_t m = boundaries.size();
    std::vector<uint64_t> starts(boundaries), widths(m), offsets(m + 1);
    BitWriter residuals;
    std::vector<double> slopes(m), intercepts(m);
    std::vector<int64_t> bases(m);
    for (size_t f = 0; f < m; ++f) {
      uint64_t start = boundaries[f];
      uint64_t end = f + 1 < m ? boundaries[f + 1] : values.size();
      Fit fit = FitRangeLs(values, start, end);
      int bits = BitWidth(static_cast<uint64_t>(fit.max_r - fit.min_r));
      slopes[f] = fit.slope;
      intercepts[f] = fit.intercept;
      bases[f] = fit.min_r;
      widths[f] = static_cast<uint64_t>(bits);
      offsets[f] = residuals.bit_size();
      for (uint64_t k = start; k < end; ++k) {
        int64_t pred = static_cast<int64_t>(std::floor(
            fit.slope * static_cast<double>(k - start) + fit.intercept));
        residuals.Append(static_cast<uint64_t>(values[k] - pred - fit.min_r),
                         bits);
      }
    }
    offsets[m] = residuals.bit_size();
    starts_ = EliasFano(starts, n_);
    widths_ = PackedArray::FromValues(widths);
    offsets_ = EliasFano(offsets, offsets[m] + 1);
    residual_words_ = Storage<uint64_t>(residuals.TakeWords());
    slopes_ = Storage<double>(std::move(slopes));
    intercepts_ = Storage<double>(std::move(intercepts));
    bases_ = Storage<int64_t>(std::move(bases));
  }

  int64_t PredictAt(size_t f, uint64_t local) const {
    return FloorToInt64(slopes_[f] * static_cast<double>(local) +
                        intercepts_[f]);
  }

  /// Range-guarded floor-to-int64. The guard never fires for models this
  /// encoder fitted (predictions stay near the data); it exists for forged
  /// blobs, whose stored slope/intercept doubles are arbitrary — an
  /// out-of-range or NaN cast would be UB.
  static int64_t FloorToInt64(double x) {
    double fl = std::floor(x);
    if (!(fl >= -9223372036854775808.0 && fl < 9223372036854775808.0)) {
      return 0;
    }
    return static_cast<int64_t>(fl);
  }

  /// prediction + base + residual via unsigned adds: wraparound (possible
  /// only with forged base/residual words) is defined, signed overflow
  /// would be UB.
  static int64_t Reassemble(int64_t pred, int64_t base, uint64_t residual) {
    return static_cast<int64_t>(static_cast<uint64_t>(pred) +
                                static_cast<uint64_t>(base) + residual);
  }

  // Little-endian "NEATSLC\0" — ASCII-readable at the head of the blob,
  // like the other magics of the format family.
  static constexpr uint64_t kMagic = 0x00434C535441454EULL;
  static constexpr uint64_t kFormatVersion = 1;

  size_t n_ = 0;
  EliasFano starts_;
  PackedArray widths_;
  EliasFano offsets_;
  // Storage-backed payload arrays: owned after Compress/Deserialize, spans
  // into the caller's buffer after View (same policy as the NeaTS core).
  Storage<uint64_t> residual_words_;
  Storage<double> slopes_, intercepts_;
  Storage<int64_t> bases_;
};

}  // namespace neats
