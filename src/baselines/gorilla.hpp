// Gorilla floating-point compression (Pelkonen et al., VLDB 2015).
//
// Each double is XOR-ed with its predecessor; the result is encoded with the
// classic leading/trailing-zero window scheme:
//   '0'            — XOR is zero (value repeats)
//   '10' + bits    — meaningful bits fall inside the previous window
//   '11' + 5b lz + 6b len + bits — new window (len 64 stored as 0)

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Gorilla-compressed sequence of doubles.
class Gorilla {
 public:
  Gorilla() = default;

  static Gorilla Compress(std::span<const double> values) {
    Gorilla out;
    out.n_ = values.size();
    if (values.empty()) return out;
    BitWriter writer;
    uint64_t prev = std::bit_cast<uint64_t>(values[0]);
    writer.Append(prev, 64);
    int prev_lz = -1, prev_tz = -1;  // invalid: no window yet
    for (size_t i = 1; i < values.size(); ++i) {
      uint64_t cur = std::bit_cast<uint64_t>(values[i]);
      uint64_t x = cur ^ prev;
      prev = cur;
      if (x == 0) {
        writer.AppendBit(false);
        continue;
      }
      int lz = std::min(CountLeadingZeros(x), 31);
      int tz = CountTrailingZeros(x);
      if (prev_lz >= 0 && lz >= prev_lz && tz >= prev_tz) {
        // Reuse the previous window.
        writer.AppendBit(true);
        writer.AppendBit(false);
        int len = 64 - prev_lz - prev_tz;
        writer.Append(x >> prev_tz, len);
      } else {
        writer.AppendBit(true);
        writer.AppendBit(true);
        int len = 64 - lz - tz;
        writer.Append(static_cast<uint64_t>(lz), 5);
        writer.Append(static_cast<uint64_t>(len == 64 ? 0 : len), 6);
        writer.Append(x >> tz, len);
        prev_lz = lz;
        prev_tz = tz;
      }
    }
    out.bits_ = writer.bit_size();
    out.words_ = writer.TakeWords();
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    if (n_ == 0) return;
    BitReader reader(words_.data(), bits_);
    uint64_t prev = reader.Read(64);
    (*out)[0] = std::bit_cast<double>(prev);
    int lz = 0, tz = 0;
    for (size_t i = 1; i < n_; ++i) {
      if (!reader.ReadBit()) {
        (*out)[i] = std::bit_cast<double>(prev);
        continue;
      }
      if (reader.ReadBit()) {
        lz = static_cast<int>(reader.Read(5));
        int len = static_cast<int>(reader.Read(6));
        if (len == 0) len = 64;
        tz = 64 - lz - len;
        // A corrupt stream can encode lz + len > 64; a negative shift below
        // would be UB, so reject the stream instead of decoding it.
        NEATS_REQUIRE(tz >= 0, "corrupt Gorilla stream");
        prev ^= reader.Read(len) << tz;
      } else {
        int len = 64 - lz - tz;
        prev ^= reader.Read(len) << tz;
      }
      (*out)[i] = std::bit_cast<double>(prev);
    }
  }

  size_t size() const { return n_; }
  size_t SizeInBits() const { return bits_ + 64; }

  /// Appends the stream to a flat word writer (no magic — the caller frames
  /// it; see src/codecs/xor_codec.hpp for the framed SeriesCodec wrapper).
  void SerializeInto(WordWriter& w) const {
    w.Put(n_);
    w.Put(bits_);
    w.Put(words_.size());
    w.PutCells(words_.data(), words_.size());
  }

  /// Inverse of SerializeInto; rejects streams whose word count cannot back
  /// the declared bit size.
  static Gorilla LoadFrom(WordReader& r) {
    Gorilla out;
    out.n_ = r.Get();
    out.bits_ = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56), "corrupt Gorilla stream");
    Storage<uint64_t> words = r.GetCells<uint64_t>(r.Get());
    NEATS_REQUIRE(words.size() == CeilDiv(out.bits_, 64) &&
                      (out.n_ == 0) == (out.bits_ == 0),
                  "corrupt Gorilla stream");
    out.words_.assign(words.data(), words.data() + words.size());
    return out;
  }

 private:
  size_t n_ = 0;
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace neats
