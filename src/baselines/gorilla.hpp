// Gorilla floating-point compression (Pelkonen et al., VLDB 2015).
//
// Each double is XOR-ed with its predecessor; the result is encoded with the
// classic leading/trailing-zero window scheme:
//   '0'            — XOR is zero (value repeats)
//   '10' + bits    — meaningful bits fall inside the previous window
//   '11' + 5b lz + 6b len + bits — new window (len 64 stored as 0)

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// Gorilla-compressed sequence of doubles.
class Gorilla {
 public:
  Gorilla() = default;

  static Gorilla Compress(std::span<const double> values) {
    Gorilla out;
    out.n_ = values.size();
    if (values.empty()) return out;
    BitWriter writer;
    uint64_t prev = std::bit_cast<uint64_t>(values[0]);
    writer.Append(prev, 64);
    int prev_lz = -1, prev_tz = -1;  // invalid: no window yet
    for (size_t i = 1; i < values.size(); ++i) {
      uint64_t cur = std::bit_cast<uint64_t>(values[i]);
      uint64_t x = cur ^ prev;
      prev = cur;
      if (x == 0) {
        writer.AppendBit(false);
        continue;
      }
      int lz = std::min(CountLeadingZeros(x), 31);
      int tz = CountTrailingZeros(x);
      if (prev_lz >= 0 && lz >= prev_lz && tz >= prev_tz) {
        // Reuse the previous window.
        writer.AppendBit(true);
        writer.AppendBit(false);
        int len = 64 - prev_lz - prev_tz;
        writer.Append(x >> prev_tz, len);
      } else {
        writer.AppendBit(true);
        writer.AppendBit(true);
        int len = 64 - lz - tz;
        writer.Append(static_cast<uint64_t>(lz), 5);
        writer.Append(static_cast<uint64_t>(len == 64 ? 0 : len), 6);
        writer.Append(x >> tz, len);
        prev_lz = lz;
        prev_tz = tz;
      }
    }
    out.bits_ = writer.bit_size();
    out.words_ = writer.TakeWords();
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    DecompressSlice(0, n_, nullptr, 0, out->data());
  }

  /// Resumable decoder state captured right before one value's token: the
  /// stream bit position, the previous raw value, and the current
  /// leading/trailing-zero window. A skip index of these (one every K
  /// values; see XorSeriesCodec) turns Access from O(block) into O(K).
  struct SkipState {
    uint64_t bit_pos = 0;
    uint64_t prev = 0;
    int32_t lz = 0;
    int32_t tz = 0;
  };

  /// Resumable forward decoder: `i` is the index of the next value Next()
  /// yields. One cursor can answer many ascending targets — batch kernels
  /// hop it forward via Seek() when a checkpoint skips past a gap and decode
  /// straight through otherwise, never re-reading a token.
  struct Cursor {
    BitReader reader;
    uint64_t prev = 0;
    int lz = 0;
    int tz = 0;
    size_t i = 0;
  };

  /// A cursor positioned before value 0.
  Cursor Head() const { return Cursor{BitReader(words_.data(), bits_)}; }

  /// Repositions the cursor at `cp`, the state recorded before value `at`
  /// (at >= 1). The state must come from BuildSkipIndex or pass
  /// CheckSkipState.
  void Seek(Cursor& c, const SkipState& cp, size_t at) const {
    c.reader.Seek(cp.bit_pos);
    c.prev = cp.prev;
    c.lz = cp.lz;
    c.tz = cp.tz;
    c.i = at;
  }

  /// Decodes and returns value `c.i`, advancing the cursor by one.
  double Next(Cursor& c) const {
    if (c.i == 0) {
      c.prev = c.reader.Read(64);
    } else {
      Step(c.reader, c.prev, c.lz, c.tz);
    }
    ++c.i;
    return std::bit_cast<double>(c.prev);
  }

  /// Decodes values [from, from + count) into out. `cp` is the SkipState
  /// recorded before value `cp_at` was decoded (cp_at <= from), or null to
  /// start from the head of the stream. States from a serialized blob must
  /// pass CheckSkipState first — a forged state may decode garbage (all a
  /// corrupt payload is entitled to) but never reads out of bounds.
  void DecompressSlice(size_t from, size_t count, const SkipState* cp,
                       size_t cp_at, double* out) const {
    if (count == 0) return;
    NEATS_DCHECK(from + count <= n_);
    Cursor c = Head();
    if (cp != nullptr) {
      NEATS_DCHECK(cp_at >= 1 && cp_at <= from);
      Seek(c, *cp, cp_at);
    }
    while (c.i < from) (void)Next(c);
    for (size_t j = 0; j < count; ++j) out[j] = Next(c);
  }

  /// Records the decoder state before every (j + 1) * interval-th value, so
  /// DecompressSlice can start at most `interval` values before any target.
  /// One full decode pass; out gets floor((n - 1) / interval) states.
  void BuildSkipIndex(size_t interval, std::vector<SkipState>* out) const {
    out->clear();
    if (n_ <= 1) return;
    Cursor c = Head();
    (void)Next(c);
    for (size_t i = 1; i < n_; ++i) {
      if (i % interval == 0) {
        out->push_back({c.reader.position(), c.prev,
                        static_cast<int32_t>(c.lz), static_cast<int32_t>(c.tz)});
      }
      (void)Next(c);
    }
  }

  /// True when a (possibly forged) SkipState is safe to resume from: the
  /// bit position lands inside the stream past the 64-bit head literal and
  /// the window is one this format can produce (lz from 5 bits capped at
  /// 31, tz >= 0, lz + tz <= 64 so the reuse-window read length is never
  /// negative). Safety only — a validated state can still decode garbage.
  bool CheckSkipState(const SkipState& s) const {
    return s.bit_pos >= 64 && s.bit_pos <= bits_ && s.lz >= 0 && s.lz <= 31 &&
           s.tz >= 0 && s.tz <= 63 && s.lz + s.tz <= 64;
  }

  size_t size() const { return n_; }
  size_t SizeInBits() const { return bits_ + 64; }

  /// Appends the stream to a flat word writer (no magic — the caller frames
  /// it; see src/codecs/xor_codec.hpp for the framed SeriesCodec wrapper).
  void SerializeInto(WordWriter& w) const {
    w.Put(n_);
    w.Put(bits_);
    w.Put(words_.size());
    w.PutCells(words_.data(), words_.size());
  }

  /// Inverse of SerializeInto; rejects streams whose word count cannot back
  /// the declared bit size.
  static Gorilla LoadFrom(WordReader& r) {
    Gorilla out;
    out.n_ = r.Get();
    out.bits_ = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56), "corrupt Gorilla stream");
    Storage<uint64_t> words = r.GetCells<uint64_t>(r.Get());
    NEATS_REQUIRE(words.size() == CeilDiv(out.bits_, 64) &&
                      (out.n_ == 0) == (out.bits_ == 0),
                  "corrupt Gorilla stream");
    out.words_.assign(words.data(), words.data() + words.size());
    return out;
  }

 private:
  /// Decodes one token, advancing (prev, lz, tz) — the whole decoder state.
  void Step(BitReader& reader, uint64_t& prev, int& lz, int& tz) const {
    if (!reader.ReadBit()) return;  // '0': value repeats
    if (reader.ReadBit()) {
      lz = static_cast<int>(reader.Read(5));
      int len = static_cast<int>(reader.Read(6));
      if (len == 0) len = 64;
      tz = 64 - lz - len;
      // A corrupt stream can encode lz + len > 64; a negative shift below
      // would be UB, so reject the stream instead of decoding it.
      NEATS_REQUIRE(tz >= 0, "corrupt Gorilla stream");
      prev ^= reader.Read(len) << tz;
    } else {
      int len = 64 - lz - tz;
      prev ^= reader.Read(len) << tz;
    }
  }

  size_t n_ = 0;
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace neats
