// ALP-style adaptive lossless floating-point compression (after Afroozeh,
// Kuffo & Boncz, SIGMOD 2024).
//
// Doubles that originated as decimals are encoded per 1024-value vector via
// the pseudo-decimal scheme: pick the exponent e (sampled) maximising the
// number of values for which d = round(x * 10^e) reconstructs x bit-exactly
// as d / 10^e; store the d's with frame-of-reference bit-packing, and the
// failures ("exceptions") verbatim next to their positions. Decompression
// is a tight multiply-and-bitunpack loop; random access reads one packed
// bit field directly (AccessPoint) or decodes the containing vector
// (Access, vector-at-a-time as in the original engine).

#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

/// ALP-style compressed sequence of doubles.
class Alp {
 public:
  Alp() = default;

  static constexpr size_t kVector = 1024;
  static constexpr int kMaxExponent = 18;

  static Alp Compress(std::span<const double> values) {
    Alp out;
    out.n_ = values.size();
    size_t num_blocks = CeilDiv(values.size(), kVector);
    out.blocks_.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t begin = b * kVector;
      size_t end = std::min(values.size(), begin + kVector);
      out.blocks_.push_back(EncodeBlock(values.subspan(begin, end - begin)));
    }
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    for (size_t b = 0; b < blocks_.size(); ++b) {
      DecodeBlock(blocks_[b], out->data() + b * kVector);
    }
  }

  /// Random access: decodes the containing 1024-value vector.
  double Access(size_t i) const {
    double buffer[kVector];
    DecodeBlock(blocks_[i / kVector], buffer);
    return buffer[i % kVector];
  }

  /// Point access: O(log exceptions) + one bit-field read — no vector
  /// decode. The FOR+bit-packed layout is directly addressable, so only
  /// the (typically empty) exception list needs a search.
  double AccessPoint(size_t i) const {
    const Block& blk = blocks_[i / kVector];
    const uint16_t p = static_cast<uint16_t>(i % kVector);
    if (!blk.exceptions.empty()) {
      auto it = std::lower_bound(
          blk.exceptions.begin(), blk.exceptions.end(), p,
          [](const Exception& e, uint16_t q) { return e.position < q; });
      if (it != blk.exceptions.end() && it->position == p) {
        return std::bit_cast<double>(it->raw);
      }
    }
    // An all-exception block (exponent < 0) lists every position, so the
    // lookup above always hit; only packed blocks reach here.
    NEATS_DCHECK(blk.exponent >= 0);
    const int64_t d = static_cast<int64_t>(
        static_cast<uint64_t>(blk.base) +
        ReadBits(blk.packed.data(),
                 static_cast<uint64_t>(p) * blk.width, blk.width));
    return static_cast<double>(d) / Pow10(blk.exponent);
  }

  // Block geometry, for wrappers that decode vector-at-a-time themselves
  // (AlpCodec's hybrid batch kernel, the store's decoded-block cache).
  size_t num_blocks() const { return blocks_.size(); }
  size_t block_count(size_t b) const { return blocks_[b].count; }

  /// Fully decodes vector b into out (sized block_count(b)).
  void DecodeBlockInto(size_t b, double* out) const {
    DecodeBlock(blocks_[b], out);
  }

  /// Range decompression: decodes each covered vector once.
  void DecompressRange(size_t from, size_t len, double* out) const {
    double buffer[kVector];
    size_t produced = 0;
    while (produced < len) {
      size_t b = (from + produced) / kVector;
      DecodeBlock(blocks_[b], buffer);
      size_t offset = (from + produced) - b * kVector;
      size_t take = std::min(len - produced,
                             static_cast<size_t>(blocks_[b].count) - offset);
      std::memcpy(out + produced, buffer + offset, take * sizeof(double));
      produced += take;
    }
  }

  size_t size() const { return n_; }

  size_t SizeInBits() const {
    size_t bits = 2 * 64;
    for (const auto& blk : blocks_) {
      bits += 8 + 8 + 16 + 64 + 64;  // e, width, counts, base
      bits += blk.packed.size() * 64;
      bits += blk.exceptions.size() * (16 + 64);
    }
    return bits;
  }

  /// Appends the blocks to a flat word writer (no magic — the caller frames
  /// it; see src/codecs/alp_codec.hpp for the framed SeriesCodec wrapper).
  /// When `block_offsets` is non-null it receives, per block, the word
  /// offset of the block's header relative to the payload start — the
  /// skip-index section AlpCodec serializes in format v2.
  void SerializeInto(WordWriter& w,
                     std::vector<uint64_t>* block_offsets = nullptr) const {
    const size_t base = w.position();
    if (block_offsets != nullptr) block_offsets->clear();
    w.Put(n_);
    w.Put(blocks_.size());
    for (const Block& blk : blocks_) {
      if (block_offsets != nullptr) {
        block_offsets->push_back((w.position() - base) / 8);
      }
      w.Put(static_cast<uint64_t>(blk.count) |
            (static_cast<uint64_t>(static_cast<uint8_t>(blk.exponent)) << 16) |
            (static_cast<uint64_t>(blk.width) << 24));
      w.Put(static_cast<uint64_t>(blk.base));
      w.Put(blk.packed.size());
      w.PutCells(blk.packed.data(), blk.packed.size());
      w.Put(blk.exceptions.size());
      for (const Exception& ex : blk.exceptions) {
        w.Put(ex.position);
        w.Put(ex.raw);
      }
    }
  }

  /// Inverse of SerializeInto. Every count, width and exception position is
  /// validated against the block geometry before any decode can trust it —
  /// DecodeBlock writes out[ex.position] unchecked, so a forged position
  /// must never survive the load. In a borrowing reader the packed words
  /// stay views into the blob (zero-copy open). `block_offsets`, when
  /// non-null, receives each block header's word offset relative to the
  /// payload start, mirroring SerializeInto.
  static Alp LoadFrom(WordReader& r,
                      std::vector<uint64_t>* block_offsets = nullptr) {
    const size_t base = r.position();
    if (block_offsets != nullptr) block_offsets->clear();
    Alp out;
    out.n_ = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56), "corrupt ALP blob");
    size_t num_blocks = r.Get();
    NEATS_REQUIRE(num_blocks == CeilDiv(out.n_, kVector), "corrupt ALP blob");
    out.blocks_.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      Block blk;
      if (block_offsets != nullptr) {
        block_offsets->push_back((r.position() - base) / 8);
      }
      uint64_t head = r.Get();
      blk.count = static_cast<uint16_t>(head & 0xFFFF);
      blk.exponent = static_cast<int8_t>((head >> 16) & 0xFF);
      blk.width = static_cast<uint8_t>((head >> 24) & 0xFF);
      size_t expected =
          std::min<size_t>(kVector, out.n_ - b * kVector);
      NEATS_REQUIRE(blk.count == expected && (head >> 32) == 0 &&
                        blk.exponent >= -1 && blk.exponent <= kMaxExponent &&
                        blk.width <= 64,
                    "corrupt ALP blob");
      blk.base = static_cast<int64_t>(r.Get());
      blk.packed = r.GetCells<uint64_t>(r.Get());
      size_t want_words =
          blk.exponent < 0
              ? 0
              : CeilDiv(static_cast<uint64_t>(blk.count) * blk.width, 64);
      NEATS_REQUIRE(blk.packed.size() == want_words, "corrupt ALP blob");
      size_t num_ex = r.Get();
      NEATS_REQUIRE(num_ex <= blk.count &&
                        (blk.exponent >= 0 || num_ex == blk.count),
                    "corrupt ALP blob");
      blk.exceptions.reserve(num_ex);
      for (size_t e = 0; e < num_ex; ++e) {
        Exception ex;
        uint64_t pos = r.Get();
        // Strictly increasing and in range: duplicates could leave output
        // slots uninitialized in an all-exception block (DecodeBlock fills
        // exactly the listed positions there).
        NEATS_REQUIRE(pos < blk.count &&
                          (e == 0 || pos > blk.exceptions.back().position),
                      "corrupt ALP blob");
        ex.position = static_cast<uint16_t>(pos);
        ex.raw = r.Get();
        blk.exceptions.push_back(ex);
      }
      out.blocks_.push_back(std::move(blk));
    }
    return out;
  }

 private:
  struct Exception {
    uint16_t position;
    uint64_t raw;
  };

  struct Block {
    uint16_t count = 0;
    int8_t exponent = 0;   // -1: all-exception block (packed empty)
    uint8_t width = 0;
    int64_t base = 0;
    Storage<uint64_t> packed;           // FOR+bit-packed d values; borrows
                                        // the blob in a zero-copy open
    std::vector<Exception> exceptions;  // bit-exact failures
  };

  static double Pow10(int e) {
    static const double kTable[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,
                                    1e7,  1e8,  1e9,  1e10, 1e11, 1e12, 1e13,
                                    1e14, 1e15, 1e16, 1e17, 1e18};
    return kTable[e];
  }

  /// True iff x survives the round trip through d = round(x * 10^e).
  /// Reconstruction uses d / 10^e — a correctly-rounded quotient, which is
  /// exactly the double a decimal parser produces for "d * 10^-e", so
  /// decimal-origin data round-trips with almost no exceptions. The decode
  /// loop must use the very same expression.
  static bool Encodable(double x, int e, int64_t* d_out) {
    double scaled = x * Pow10(e);
    if (!(scaled > -9.2e18 && scaled < 9.2e18)) return false;
    double rounded = std::nearbyint(scaled);
    int64_t d = static_cast<int64_t>(rounded);
    double back = static_cast<double>(d) / Pow10(e);
    if (std::bit_cast<uint64_t>(back) != std::bit_cast<uint64_t>(x)) {
      return false;
    }
    *d_out = d;
    return true;
  }

  static Block EncodeBlock(std::span<const double> values) {
    Block blk;
    blk.count = static_cast<uint16_t>(values.size());
    // Sample up to 32 values to choose the exponent.
    int best_e = -1;
    int best_hits = -1;
    size_t stride = std::max<size_t>(1, values.size() / 32);
    for (int e = 0; e <= kMaxExponent; ++e) {
      int hits = 0;
      int64_t d;
      for (size_t i = 0; i < values.size(); i += stride) {
        if (Encodable(values[i], e, &d)) ++hits;
      }
      if (hits > best_hits) {
        best_hits = hits;
        best_e = e;
      }
      if (hits == static_cast<int>((values.size() + stride - 1) / stride) &&
          best_hits == hits) {
        break;  // first exponent that encodes the whole sample: prefer small e
      }
    }
    blk.exponent = static_cast<int8_t>(best_e);

    std::vector<int64_t> ds(values.size());
    std::vector<bool> ok(values.size());
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (size_t i = 0; i < values.size(); ++i) {
      ok[i] = Encodable(values[i], best_e, &ds[i]);
      if (ok[i]) {
        lo = std::min(lo, ds[i]);
        hi = std::max(hi, ds[i]);
      }
    }
    if (lo > hi) {  // every value is an exception
      blk.exponent = -1;
      for (size_t i = 0; i < values.size(); ++i) {
        blk.exceptions.push_back(
            {static_cast<uint16_t>(i), std::bit_cast<uint64_t>(values[i])});
      }
      return blk;
    }
    blk.base = lo;
    blk.width = static_cast<uint8_t>(BitWidth(static_cast<uint64_t>(hi - lo)));
    BitWriter writer;
    for (size_t i = 0; i < values.size(); ++i) {
      if (ok[i]) {
        writer.Append(static_cast<uint64_t>(ds[i] - lo), blk.width);
      } else {
        writer.Append(0, blk.width);  // placeholder, patched by exception
        blk.exceptions.push_back(
            {static_cast<uint16_t>(i), std::bit_cast<uint64_t>(values[i])});
      }
    }
    blk.packed = Storage<uint64_t>(writer.TakeWords());
    return blk;
  }

  static void DecodeBlock(const Block& blk, double* out) {
    if (blk.exponent < 0) {
      for (const Exception& ex : blk.exceptions) {
        out[ex.position] = std::bit_cast<double>(ex.raw);
      }
      return;
    }
    const double div = Pow10(blk.exponent);
    const int width = blk.width;
    const uint64_t* words = blk.packed.data();
    uint64_t o = 0;
    for (size_t i = 0; i < blk.count; ++i, o += static_cast<uint64_t>(width)) {
      // Unsigned add: base + residual cannot overflow for blobs this
      // encoder wrote, but a forged blob can pick any base — wraparound is
      // defined (and decodes to garbage), signed overflow would be UB.
      int64_t d = static_cast<int64_t>(static_cast<uint64_t>(blk.base) +
                                       ReadBits(words, o, width));
      out[i] = static_cast<double>(d) / div;
    }
    for (const Exception& ex : blk.exceptions) {
      out[ex.position] = std::bit_cast<double>(ex.raw);
    }
  }

  size_t n_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace neats
