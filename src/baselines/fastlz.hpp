// Fast byte-oriented LZ compressor (LZ4/Snappy class).
//
// Greedy LZ77 with a 64 KiB window and an LZ4-like block format:
//   token byte: high nibble = literal run length, low nibble = match length
//   minus 4 (15 in a nibble = continued in 255-run extension bytes), then the
//   literals, then a 2-byte little-endian match offset.
// The final sequence carries literals only. This reproduces the fast/weak
// anchor of the general-purpose family in the paper's trade-off plots (the
// role played there by Lz4 and Snappy).

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace neats {

/// Stateless fast-LZ codec over raw bytes.
class FastLz {
 public:
  static std::vector<uint8_t> CompressBytes(std::span<const uint8_t> in) {
    std::vector<uint8_t> out;
    out.reserve(in.size() / 2 + 16);
    const size_t n = in.size();
    std::vector<uint32_t> table(1u << kHashBits, kNoPos);

    size_t anchor = 0;  // first unemitted literal
    size_t pos = 0;
    while (pos + kMinMatch <= n) {
      uint32_t h = Hash(Read32(in.data() + pos));
      uint32_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos);
      if (cand != kNoPos && pos - cand <= kMaxOffset &&
          Read32(in.data() + cand) == Read32(in.data() + pos)) {
        // Extend the match.
        size_t len = kMinMatch;
        while (pos + len < n && in[cand + len] == in[pos + len] &&
               len < kMaxMatch) {
          ++len;
        }
        EmitSequence(&out, in.data() + anchor, pos - anchor,
                     static_cast<uint16_t>(pos - cand), len);
        pos += len;
        anchor = pos;
      } else {
        ++pos;
      }
    }
    // Trailing literals.
    EmitSequence(&out, in.data() + anchor, n - anchor, 0, 0);
    return out;
  }

  /// Decompresses into `out`, whose exact size must be known by the caller.
  static void DecompressBytes(std::span<const uint8_t> in,
                              std::span<uint8_t> out) {
    size_t ip = 0, op = 0;
    while (ip < in.size()) {
      uint8_t token = in[ip++];
      size_t lit = token >> 4;
      if (lit == 15) {
        uint8_t b;
        do {
          b = in[ip++];
          lit += b;
        } while (b == 255);
      }
      // Guarded: memcpy's pointer arguments must be non-null even for a
      // zero-length copy, and out.data() is null when out is empty.
      if (lit > 0) std::memcpy(out.data() + op, in.data() + ip, lit);
      ip += lit;
      op += lit;
      if (ip >= in.size()) break;  // final sequence has no match
      size_t offset = in[ip] | (static_cast<size_t>(in[ip + 1]) << 8);
      ip += 2;
      size_t len = (token & 0xF) + kMinMatch;
      if ((token & 0xF) == 15) {
        uint8_t b;
        do {
          b = in[ip++];
          len += b;
        } while (b == 255);
      }
      // Overlapping copy must run byte by byte.
      for (size_t i = 0; i < len; ++i, ++op) {
        out[op] = out[op - offset];
      }
    }
    NEATS_REQUIRE(op == out.size(), "corrupt fastlz stream");
  }

 private:
  static constexpr int kHashBits = 16;
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxMatch = kMinMatch + 14 + 255 * 8;  // practical cap
  static constexpr size_t kMaxOffset = 65535;
  static constexpr uint32_t kNoPos = UINT32_MAX;

  static uint32_t Read32(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  }

  static uint32_t Hash(uint32_t v) {
    return (v * 2654435761u) >> (32 - kHashBits);
  }

  static void EmitRun(std::vector<uint8_t>* out, size_t value) {
    while (value >= 255) {
      out->push_back(255);
      value -= 255;
    }
    out->push_back(static_cast<uint8_t>(value));
  }

  static void EmitSequence(std::vector<uint8_t>* out, const uint8_t* literals,
                           size_t lit_len, uint16_t offset, size_t match_len) {
    uint8_t token = 0;
    token |= static_cast<uint8_t>((lit_len >= 15 ? 15 : lit_len) << 4);
    size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
    token |= static_cast<uint8_t>(match_code >= 15 ? 15 : match_code);
    out->push_back(token);
    if (lit_len >= 15) EmitRun(out, lit_len - 15);
    out->insert(out->end(), literals, literals + lit_len);
    if (match_len == 0) return;  // final literal-only sequence
    out->push_back(static_cast<uint8_t>(offset & 0xFF));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (match_code >= 15) EmitRun(out, match_code - 15);
  }
};

}  // namespace neats
